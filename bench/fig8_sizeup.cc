// Figure 8 — size-up at degree-of-parallelism 1 (§6.4): execution time of the
// SUM and JOIN microbenchmarks with and without the HetExchange operators, on
// one CPU core and on one GPU, sweeping the input size. The router is forced
// into the plan at DOP 1 (the optimizer would normally elide it).
//
// Paper shapes: identical times (<10% apart) for inputs >= 512 MB-equivalent
// (block-granularity operators amortize); below that, the fixed router
// initialization/pinning cost (~10 ms at paper scale) shows up, worst for the
// GPU sum at the smallest input (~50%).
//
// Fabric leg: the same sized-up GPU sum with its input resident in the *other*
// GPU's memory, on a 2-GPU scale-out fabric with and without the NVLink peer
// mesh. With the mesh every block crosses in one peer hop; without it the same
// move stages through host memory over two PCIe hops — the peer/staged ratio
// stays below 1 and settles as the per-block fixed costs amortize with size.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <memory>
#include <vector>

#include "bench_util.h"

namespace {

using hetex::bench::MicroJoinQuery;
using hetex::bench::MicroSumQuery;
using hetex::core::System;
using hetex::plan::ExecPolicy;

// 1/8 miniature: paper sweeps 0.125-16 GB; we sweep 4 MB-512 MB of actual data
// with fixed latencies scaled 1/8 (router init 1.25 ms).
constexpr double kLatencyScale = 1.0 / 8;
const uint64_t kSizePointsMB[] = {4, 16, 64, 256, 512};
constexpr uint64_t kBuildRows = 128'000;

std::map<std::string, double> modeled_s;

hetex::core::QueryResult Run(System* system, const hetex::plan::QuerySpec& spec,
                             bool hetex, hetex::sim::DeviceType device) {
  ExecPolicy policy = ExecPolicy::Bare(device);
  if (hetex) {
    // HetExchange present but restricted to one compute unit (DOP 1).
    policy.use_hetexchange = true;
    policy.cpu_workers = device == hetex::sim::DeviceType::kCpu ? 1 : 0;
    policy.mode = device == hetex::sim::DeviceType::kCpu
                      ? ExecPolicy::Mode::kCpuOnly
                      : ExecPolicy::Mode::kGpuOnly;
  }
  policy.block_rows = 128 * 1024;
  hetex::core::QueryExecutor executor(system);
  return executor.Execute(spec, policy);
}

void RegisterAll(System* system, uint64_t size_mb) {
  for (const auto& spec : {MicroSumQuery(), MicroJoinQuery()}) {
    for (const auto& [label, device] :
         {std::pair{"cpu", hetex::sim::DeviceType::kCpu},
          std::pair{"gpu", hetex::sim::DeviceType::kGpu}}) {
      for (bool hetexchange : {false, true}) {
        const std::string key = spec.name + "/" + label + "/" +
                                (hetexchange ? "hetex" : "bare") + "/" +
                                std::to_string(size_mb) + "MB";
        hetex::bench::RegisterModeled(
            "fig8/" + key, [system, spec, device = device, hetexchange, key] {
              auto r = Run(system, spec, hetexchange, device);
              modeled_s[key] = r.modeled_seconds;
              return r;
            });
      }
    }
  }
}

/// 2-GPU scale-out fabric for the peer-data series; `with_peer_mesh` = false
/// drops the NVLink mesh so the identical GPU0<->GPU1 move host-stages.
std::unique_ptr<System> MakePeerSystem(bool with_peer_mesh) {
  System::Options options;
  options.topology = hetex::sim::Topology::ScaleOutOptions(2);
  if (!with_peer_mesh) options.topology.peer_links.clear();
  options.topology.inter_socket_bw = 0;  // isolate the GPU<->GPU route
  options.topology.cost_model.ScaleFixedLatencies(kLatencyScale);
  options.blocks.host_arena_blocks = 768;
  options.blocks.gpu_arena_blocks = 512;
  return std::make_unique<System>(options);
}

void RegisterPeerSeries(System* system, const char* route, uint64_t size_mb) {
  const auto spec = MicroSumQuery();
  const std::string key = std::string("micro-sum/gpu-peer/") + route + "/" +
                          std::to_string(size_mb) + "MB";
  hetex::bench::RegisterModeled("fig8/" + key, [system, spec, key] {
    ExecPolicy policy = ExecPolicy::GpuOnly({0});
    policy.block_rows = 128 * 1024;
    hetex::core::QueryExecutor executor(system);
    auto r = executor.Execute(spec, policy);
    modeled_s[key] = r.modeled_seconds;
    return r;
  });
}

void PrintSummary(const std::vector<uint64_t>& sizes) {
  for (const auto& spec : {MicroSumQuery(), MicroJoinQuery()}) {
    std::printf("\n=== Figure 8 (%s): HetExchange overhead at DOP=1 "
                "(hetex/bare modeled-time ratio) ===\n",
                spec.name.c_str());
    for (const char* label : {"cpu", "gpu"}) {
      std::printf("%s:", label);
      for (uint64_t mb : sizes) {
        const std::string base = spec.name + "/" + std::string(label) + "/";
        const double h = modeled_s[base + "hetex/" + std::to_string(mb) + "MB"];
        const double b = modeled_s[base + "bare/" + std::to_string(mb) + "MB"];
        std::printf("  %4lluMB %.2fx", static_cast<unsigned long long>(mb),
                    b > 0 ? h / b : 0.0);
      }
      std::printf("\n");
    }
  }
  std::printf("\npaper: <=1.10x for >=512MB-equivalent inputs; up to ~1.5x for "
              "the smallest GPU sum\n");

  std::printf("\n=== peer-data size-up: GPU sum on gpu0, input in gpu1's memory "
              "(peer/staged modeled-time ratio) ===\n");
  for (uint64_t mb : sizes) {
    const std::string base =
        "micro-sum/gpu-peer/";
    const double p = modeled_s[base + "peer/" + std::to_string(mb) + "MB"];
    const double s = modeled_s[base + "staged/" + std::to_string(mb) + "MB"];
    std::printf("  %4lluMB %.2fx", static_cast<unsigned long long>(mb),
                s > 0 ? p / s : 0.0);
  }
  std::printf("\nNVLink hop vs two staged PCIe hops: the ratio stays < 1\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<uint64_t> sizes(std::begin(kSizePointsMB), std::end(kSizePointsMB));

  // One System per size point (its tables differ), all registered up front.
  std::vector<std::unique_ptr<System>> systems;
  for (uint64_t mb : sizes) {
    System::Options options;
    options.topology.cost_model.ScaleFixedLatencies(kLatencyScale);
    options.blocks.host_arena_blocks = 768;
    systems.push_back(std::make_unique<System>(options));
    hetex::bench::MakeMicroTables(systems.back().get(), mb * 1024 * 1024 / 4,
                                  kBuildRows);
    RegisterAll(systems.back().get(), mb);

    // Peer-data series: identical input, resident in gpu1's memory, summed on
    // gpu0 — once over the NVLink mesh, once host-staged without it.
    for (const auto& [route, meshed] :
         {std::pair{"peer", true}, std::pair{"staged", false}}) {
      systems.push_back(MakePeerSystem(meshed));
      System* sys = systems.back().get();
      hetex::bench::MakeMicroTables(sys, mb * 1024 * 1024 / 4, kBuildRows,
                                    /*keep_staging=*/true);
      for (const char* t : {"micro", "micro_build"}) {
        HETEX_CHECK_OK(sys->catalog().at(t).Place({sys->GpuNodes()[1]},
                                                  &sys->memory()));
      }
      RegisterPeerSeries(sys, route, mb);
    }
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary(sizes);
  return 0;
}
