// Figure 8 — size-up at degree-of-parallelism 1 (§6.4): execution time of the
// SUM and JOIN microbenchmarks with and without the HetExchange operators, on
// one CPU core and on one GPU, sweeping the input size. The router is forced
// into the plan at DOP 1 (the optimizer would normally elide it).
//
// Paper shapes: identical times (<10% apart) for inputs >= 512 MB-equivalent
// (block-granularity operators amortize); below that, the fixed router
// initialization/pinning cost (~10 ms at paper scale) shows up, worst for the
// GPU sum at the smallest input (~50%).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>
#include <memory>
#include <vector>

#include "bench_util.h"

namespace {

using hetex::bench::MicroJoinQuery;
using hetex::bench::MicroSumQuery;
using hetex::core::System;
using hetex::plan::ExecPolicy;

// 1/8 miniature: paper sweeps 0.125-16 GB; we sweep 4 MB-512 MB of actual data
// with fixed latencies scaled 1/8 (router init 1.25 ms).
constexpr double kLatencyScale = 1.0 / 8;
const uint64_t kSizePointsMB[] = {4, 16, 64, 256, 512};
constexpr uint64_t kBuildRows = 128'000;

std::map<std::string, double> modeled_s;

hetex::core::QueryResult Run(System* system, const hetex::plan::QuerySpec& spec,
                             bool hetex, hetex::sim::DeviceType device) {
  ExecPolicy policy = ExecPolicy::Bare(device);
  if (hetex) {
    // HetExchange present but restricted to one compute unit (DOP 1).
    policy.use_hetexchange = true;
    policy.cpu_workers = device == hetex::sim::DeviceType::kCpu ? 1 : 0;
    policy.mode = device == hetex::sim::DeviceType::kCpu
                      ? ExecPolicy::Mode::kCpuOnly
                      : ExecPolicy::Mode::kGpuOnly;
  }
  policy.block_rows = 128 * 1024;
  hetex::core::QueryExecutor executor(system);
  return executor.Execute(spec, policy);
}

void RegisterAll(System* system, uint64_t size_mb) {
  for (const auto& spec : {MicroSumQuery(), MicroJoinQuery()}) {
    for (const auto& [label, device] :
         {std::pair{"cpu", hetex::sim::DeviceType::kCpu},
          std::pair{"gpu", hetex::sim::DeviceType::kGpu}}) {
      for (bool hetexchange : {false, true}) {
        const std::string key = spec.name + "/" + label + "/" +
                                (hetexchange ? "hetex" : "bare") + "/" +
                                std::to_string(size_mb) + "MB";
        hetex::bench::RegisterModeled(
            "fig8/" + key, [system, spec, device = device, hetexchange, key] {
              auto r = Run(system, spec, hetexchange, device);
              modeled_s[key] = r.modeled_seconds;
              return r;
            });
      }
    }
  }
}

void PrintSummary(const std::vector<uint64_t>& sizes) {
  for (const auto& spec : {MicroSumQuery(), MicroJoinQuery()}) {
    std::printf("\n=== Figure 8 (%s): HetExchange overhead at DOP=1 "
                "(hetex/bare modeled-time ratio) ===\n",
                spec.name.c_str());
    for (const char* label : {"cpu", "gpu"}) {
      std::printf("%s:", label);
      for (uint64_t mb : sizes) {
        const std::string base = spec.name + "/" + std::string(label) + "/";
        const double h = modeled_s[base + "hetex/" + std::to_string(mb) + "MB"];
        const double b = modeled_s[base + "bare/" + std::to_string(mb) + "MB"];
        std::printf("  %4lluMB %.2fx", static_cast<unsigned long long>(mb),
                    b > 0 ? h / b : 0.0);
      }
      std::printf("\n");
    }
  }
  std::printf("\npaper: <=1.10x for >=512MB-equivalent inputs; up to ~1.5x for "
              "the smallest GPU sum\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::vector<uint64_t> sizes(std::begin(kSizePointsMB), std::end(kSizePointsMB));

  // One System per size point (its tables differ), all registered up front.
  std::vector<std::unique_ptr<System>> systems;
  for (uint64_t mb : sizes) {
    System::Options options;
    options.topology.cost_model.ScaleFixedLatencies(kLatencyScale);
    options.blocks.host_arena_blocks = 768;
    systems.push_back(std::make_unique<System>(options));
    hetex::bench::MakeMicroTables(systems.back().get(), mb * 1024 * 1024 / 4,
                                  kBuildRows);
    RegisterAll(systems.back().get(), mb);
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary(sizes);
  return 0;
}
