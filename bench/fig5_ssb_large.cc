// Figure 5 — SSB with non-GPU-fitting working sets (paper SF1000, scaled to
// SF1 with a proportionally scaled GPU memory capacity): all data starts in
// (pinned) CPU memory; GPU engines must stream over PCIe. Adds Proteus Hybrid.
//
// Paper shapes reproduced: Proteus GPU saturates the interconnect (~21 GB/s
// effective over both links); DBMS G is pageable-memory bound and fails Q2.2
// (unsupported) and Q4.3 (OOM); CPU engines win only where their throughput
// beats the PCIe bound (Q1.x, Q3.4); Proteus Hybrid wins everything, with
// throughput ~88.5% of the sum of its CPU-only and GPU-only configurations.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"

namespace {

using hetex::bench::SsbBenchEnv;
using hetex::plan::ExecPolicy;

constexpr double kScale = 1.0;  // paper SF1000, scaled 1:1000
// Scaled so fact working sets exceed aggregate device memory while dimension
// hash tables still fit (SSB's part table scales logarithmically, so a strict
// 1:1000 capacity would not even hold state the real 8 GB GPU holds easily).
constexpr uint64_t kGpuCapacity = 48ull << 20;

SsbBenchEnv* env = nullptr;
std::map<std::string, double> modeled_s;

void Note(const std::string& key, const hetex::core::QueryResult& r) {
  modeled_s[key] = r.status.ok() ? r.modeled_seconds : -1.0;
}

void RegisterAll() {
  for (const auto& spec : env->ssb->AllQueries()) {
    hetex::bench::RegisterModeled("fig5/DBMS_C/" + spec.name, [spec] {
      auto r = env->RunDbmsC(spec);
      Note("DBMS_C/" + spec.name, r);
      return r;
    });
    hetex::bench::RegisterModeled("fig5/Proteus_CPU/" + spec.name, [spec] {
      auto r = env->RunProteus(spec, ExecPolicy::CpuOnly());
      Note("Proteus_CPU/" + spec.name, r);
      return r;
    });
    hetex::bench::RegisterModeled("fig5/Proteus_Hybrid/" + spec.name, [spec] {
      auto r = env->RunProteus(spec, ExecPolicy::Hybrid());
      Note("Proteus_Hybrid/" + spec.name, r);
      return r;
    });
    hetex::bench::RegisterModeled("fig5/Proteus_GPU/" + spec.name, [spec] {
      auto r = env->RunProteus(spec, ExecPolicy::GpuOnly());
      Note("Proteus_GPU/" + spec.name, r);
      return r;
    });
    hetex::bench::RegisterModeled("fig5/DBMS_G/" + spec.name, [spec] {
      auto r = env->RunDbmsG(spec, /*data_on_gpu=*/false);
      Note("DBMS_G/" + spec.name, r);
      return r;
    });
  }
}

void PrintSummary() {
  const auto& cm = env->system->cost_model();
  std::printf(
      "\n=== Figure 5 summary (modeled ms; dotted line = PCIe bound at %.0f GB/s "
      "aggregate) ===\n",
      2 * cm.pcie_bw / 1e9);
  std::printf("%-6s %10s %10s %10s %10s %10s %9s %11s\n", "query", "DBMS_C",
              "Prot.CPU", "Prot.Hyb", "Prot.GPU", "DBMS_G", "PCIe-bnd",
              "hyb/(C+G)");
  double ratio_sum = 0;
  int ratio_n = 0;
  for (const auto& spec : env->ssb->AllQueries()) {
    const double c = modeled_s["DBMS_C/" + spec.name] * 1e3;
    const double pc = modeled_s["Proteus_CPU/" + spec.name] * 1e3;
    const double ph = modeled_s["Proteus_Hybrid/" + spec.name] * 1e3;
    const double pg = modeled_s["Proteus_GPU/" + spec.name] * 1e3;
    const double g = modeled_s["DBMS_G/" + spec.name] * 1e3;
    const double ws = static_cast<double>(env->StatsFor(spec).fact_bytes);
    const double pcie_bound_ms = ws / (2 * cm.pcie_bw) * 1e3;
    // Throughput ratio: hybrid vs sum of CPU-only + GPU-only throughputs.
    double ratio = 0;
    if (pc > 0 && pg > 0 && ph > 0) {
      ratio = (1.0 / ph) / (1.0 / pc + 1.0 / pg);
      ratio_sum += ratio;
      ++ratio_n;
    }
    auto cell = [](double v) {
      char buf[32];
      if (v < 0) return std::string("DNF");
      std::snprintf(buf, sizeof(buf), "%.2f", v);
      return std::string(buf);
    };
    std::printf("%-6s %10s %10s %10s %10s %10s %9.2f %10.1f%%\n",
                spec.name.c_str(), cell(c).c_str(), cell(pc).c_str(),
                cell(ph).c_str(), cell(pg).c_str(), cell(g).c_str(),
                pcie_bound_ms, ratio * 100);
  }
  std::printf("paper: hybrid throughput ~88.5%% of CPU+GPU sum; measured mean: "
              "%.1f%%\n",
              ratio_n ? 100 * ratio_sum / ratio_n : 0);
  std::printf("paper: hybrid 1.5-5.1x vs CPU DBMS and 3.4-11.4x vs GPU DBMS\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // Dimensions scale less than the fact table so their hash tables keep the
  // paper-scale size classes (LLC/DRAM-resident rather than L2-resident).
  SsbBenchEnv e(kScale, /*paper_sf=*/1000, kGpuCapacity,
                {/*customer=*/600'000, /*supplier=*/150'000, /*part=*/400'000});
  env = &e;
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}
