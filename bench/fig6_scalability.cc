// Figure 6 — scalability on SSB (paper SF1000, scaled): speed-up of each query
// flight versus single-threaded execution, sweeping the number of CPU cores
// (interleaved across sockets) with and without the two GPUs.
//
// Paper shapes: near-linear CPU scaling to ~16-20 cores (flight 1 scales best,
// flight 2 worst); adding 2 GPUs is worth ~8-10 extra cores for flight 1 and
// several extra CPU *sockets* for flights 2-4 (join-heavy, random-access-bound).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"

namespace {

using hetex::bench::SsbBenchEnv;
using hetex::plan::ExecPolicy;

constexpr double kScale = 0.5;
constexpr uint64_t kGpuCapacity = 48ull << 20;
const int kCorePoints[] = {1, 2, 4, 8, 16, 24};

SsbBenchEnv* env = nullptr;
// flight (1-4) -> "cores/gpus" -> summed modeled seconds over the flight.
std::map<int, std::map<std::string, double>> flight_time;

void RegisterAll() {
  const int flights[4] = {3, 3, 4, 3};
  for (int f = 1; f <= 4; ++f) {
    for (int i = 1; i <= flights[f - 1]; ++i) {
      const auto spec = env->ssb->Query(f, i);
      for (int cores : kCorePoints) {
        for (int gpus : {0, 2}) {
          const std::string cfg =
              std::to_string(cores) + "c/" + std::to_string(gpus) + "g";
          const std::string name = "fig6/Q" + std::to_string(f) + "." +
                                   std::to_string(i) + "/" + cfg;
          hetex::bench::RegisterModeled(name, [spec, cores, gpus, f, cfg] {
            ExecPolicy policy = gpus == 0 ? ExecPolicy::CpuOnly(cores)
                                          : ExecPolicy::Hybrid(cores, {0, 1});
            auto r = env->RunProteus(spec, policy);
            if (r.status.ok()) flight_time[f][cfg] += r.modeled_seconds;
            return r;
          });
        }
      }
    }
  }
}

void PrintSummary() {
  std::printf("\n=== Figure 6 summary: speed-up over single-threaded CPU, per "
              "query flight ===\n");
  std::printf("%-10s", "cores");
  for (int cores : kCorePoints) std::printf(" %6dc", cores);
  std::printf("\n");
  for (int f = 1; f <= 4; ++f) {
    const double base = flight_time[f]["1c/0g"];
    for (int gpus : {0, 2}) {
      std::printf("Q%d (%dgpu) ", f, gpus);
      for (int cores : kCorePoints) {
        const std::string cfg =
            std::to_string(cores) + "c/" + std::to_string(gpus) + "g";
        const double t = flight_time[f][cfg];
        std::printf(" %6.1fx", t > 0 ? base / t : 0.0);
      }
      std::printf("\n");
    }
  }
  std::printf("paper: CPU-only scaling coefficients ~87.5%%/65%%/74%%/77%% per "
              "core (flights 1-4); 2 GPUs ~= 8-10 cores for flight 1, more for "
              "flights 2-4\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  SsbBenchEnv e(kScale, /*paper_sf=*/1000, kGpuCapacity,
                {/*customer=*/600'000, /*supplier=*/150'000, /*part=*/400'000});
  env = &e;
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}
