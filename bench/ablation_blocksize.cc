// Ablation — block granularity (§3.2 "HetExchange amortizes data transfer cost
// by executing transfers at block granularity"): sweep the staging-block size
// for the hybrid SUM microbenchmark. Small blocks pay per-block control +
// kernel-launch + DMA-latency costs; large blocks reduce parallelism/overlap.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"

namespace {

using hetex::core::System;

System* g_system = nullptr;
std::map<uint64_t, double> modeled_s;
const uint64_t kBlockRowsPoints[] = {4096, 16384, 65536, 262144, 1048576};

void RegisterAll() {
  for (uint64_t block_rows : kBlockRowsPoints) {
    hetex::bench::RegisterModeled(
        "ablation_blocksize/gpu_sum/rows:" + std::to_string(block_rows),
        [block_rows] {
          auto policy = hetex::plan::ExecPolicy::GpuOnly();
          policy.block_rows = block_rows;
          hetex::core::QueryExecutor executor(g_system);
          auto r = executor.Execute(hetex::bench::MicroSumQuery(), policy);
          modeled_s[block_rows] = r.modeled_seconds;
          return r;
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  System::Options options;
  options.blocks.block_bytes = 8ull << 20;  // allow up to 1M-row blocks
  options.blocks.host_arena_blocks = 96;
  options.blocks.gpu_arena_blocks = 64;
  System system(options);
  g_system = &system;
  hetex::bench::MakeMicroTables(&system, 64'000'000, 1000);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Block-size ablation (GPU-only sum, 256 MB input) ===\n");
  for (const auto& [rows, t] : modeled_s) {
    std::printf("block %8llu rows (%5llu KiB): %7.2f ms modeled\n",
                static_cast<unsigned long long>(rows),
                static_cast<unsigned long long>(rows * 4 / 1024), t * 1e3);
  }
  std::printf("expected: mid-size blocks win; tiny blocks pay per-block fixed "
              "costs, huge blocks lose overlap/parallelism\n");
  return 0;
}
