// Ablation — transfer paths (§3.2, §6.2): GPU-only SUM under (a) HetExchange
// mem-move DMA from pinned memory, (b) mem-move from pageable memory (the DBMS G
// handicap), and (c) UVA zero-copy without mem-move (the bare-Proteus GPU path).
// All three move the same bytes over the same link; only the mechanism differs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"

namespace {

using hetex::core::System;
using hetex::plan::ExecPolicy;

System* g_system = nullptr;
std::map<std::string, double> modeled_s;

void Register(const std::string& name, ExecPolicy policy, bool pinned) {
  hetex::bench::RegisterModeled(
      "ablation_transfer/" + name, [name, policy, pinned] {
        auto& table = g_system->catalog().at("micro");
        HETEX_CHECK_OK(
            table.Place(g_system->HostNodes(), &g_system->memory(), pinned));
        hetex::core::QueryExecutor executor(g_system);
        auto r = executor.Execute(hetex::bench::MicroSumQuery(), policy);
        modeled_s[name] = r.modeled_seconds;
        return r;
      });
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  System::Options options;
  options.blocks.host_arena_blocks = 512;
  System system(options);
  g_system = &system;
  hetex::bench::MakeMicroTables(&system, 64'000'000, 1000, /*keep_staging=*/true);

  Register("memmove_pinned", ExecPolicy::GpuOnly(), /*pinned=*/true);
  Register("memmove_pageable", ExecPolicy::GpuOnly(), /*pinned=*/false);
  Register("uva_zero_copy", ExecPolicy::Bare(hetex::sim::DeviceType::kGpu),
           /*pinned=*/true);

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Transfer-path ablation (GPU sum, 256 MB host-resident) ===\n");
  for (const auto& [name, t] : modeled_s) {
    std::printf("%-20s %8.2f ms modeled (%.1f GB/s effective)\n", name.c_str(),
                t * 1e3, 256e6 / t / 1e9);
  }
  std::printf("expected: pinned DMA ~2x pageable; UVA single-GPU roughly one "
              "link's bandwidth without multi-GPU scaling\n");
  return 0;
}
