#ifndef HETEX_BENCH_BENCH_UTIL_H_
#define HETEX_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "baselines/dbms_c.h"
#include "baselines/dbms_g.h"
#include "common/rng.h"
#include "core/executor.h"
#include "core/system.h"
#include "ssb/ssb.h"

namespace hetex::bench {

/// \brief Shared benchmark environment: the simulated paper server plus an SSB
/// database at a chosen scale.
///
/// The paper's SF100 ("fits in aggregate GPU memory") and SF1000 ("must stream
/// over PCIe") regimes are reproduced by scaling the dataset and the modeled GPU
/// capacity together (DESIGN.md §1).
/// Dimension-row overrides for SsbBenchEnv (0 = scale-derived).
struct DimSizes {
  uint64_t customer = 0;
  uint64_t supplier = 0;
  uint64_t part = 0;
};

class SsbBenchEnv {
 public:
  /// \param paper_sf the paper scale factor this environment reproduces; the
  ///        dataset is scaled to `scale`, and all *per-query* fixed costs
  ///        (router init, baseline startup) are scaled by scale/paper_sf so the
  ///        fixed-cost-to-work ratio matches the paper's regime (DESIGN.md §1).
  SsbBenchEnv(double scale, double paper_sf, uint64_t gpu_capacity_bytes,
              DimSizes dims = {}, uint64_t host_arena_blocks = 768)
      : latency_scale_(scale / paper_sf) {
    core::System::Options options;
    options.topology.gpu_capacity = gpu_capacity_bytes;
    // Self-similar miniature: fixed latencies and the block granularity shrink
    // by the same factor as the data.
    options.topology.cost_model.ScaleFixedLatencies(latency_scale_);
    block_rows_ = std::max<uint64_t>(
        512, static_cast<uint64_t>(128.0 * 1024 * latency_scale_));
    options.blocks.block_bytes = std::max<uint64_t>(block_rows_ * 8, 16 << 10);
    options.blocks.host_arena_blocks = host_arena_blocks;
    options.blocks.gpu_arena_blocks = 384;
    system = std::make_unique<core::System>(options);

    ssb::Ssb::Options ssb_options;
    ssb_options.scale = scale;
    ssb_options.customer_rows = dims.customer;
    ssb_options.supplier_rows = dims.supplier;
    ssb_options.part_rows = dims.part;
    ssb = std::make_unique<ssb::Ssb>(ssb_options, &system->catalog());
    PlaceAllOnHost();
  }

  void PlaceAllOnHost() {
    for (const char* t : {"lineorder", "date", "customer", "supplier", "part"}) {
      HETEX_CHECK_OK(
          system->catalog().at(t).Place(system->HostNodes(), &system->memory()));
    }
    fact_on_gpu_ = false;
  }

  /// Fig. 4 regime: the fact table is randomly partitioned across the GPUs'
  /// device memories (dimensions stay host-resident; they are broadcast at build
  /// time and are a small fraction of the working set — see EXPERIMENTS.md).
  void PlaceFactOnGpus() {
    HETEX_CHECK_OK(system->catalog().at("lineorder").Place(system->GpuNodes(),
                                                           &system->memory()));
    fact_on_gpu_ = true;
  }

  bool fact_on_gpu() const { return fact_on_gpu_; }

  core::QueryResult RunProteus(const plan::QuerySpec& spec,
                               plan::ExecPolicy policy) {
    policy.block_rows = block_rows_;
    core::QueryExecutor executor(system.get());
    return executor.Execute(spec, policy);
  }

  /// Operator cardinalities are evaluated once per query and shared between the
  /// DBMS C and DBMS G emulations (and across repetitions).
  const baselines::OpStats& StatsFor(const plan::QuerySpec& spec) {
    auto it = stats_cache_.find(spec.name);
    if (it == stats_cache_.end()) {
      it = stats_cache_
               .emplace(spec.name,
                        baselines::EvaluateWithStats(spec, system->catalog()))
               .first;
    }
    return it->second;
  }

  core::QueryResult RunDbmsC(const plan::QuerySpec& spec) {
    baselines::DbmsCOptions options;
    options.startup_seconds *= latency_scale_;
    baselines::DbmsC engine(system.get(), options);
    return engine.Execute(spec, &StatsFor(spec));
  }

  core::QueryResult RunDbmsG(const plan::QuerySpec& spec, bool data_on_gpu) {
    baselines::DbmsGOptions options;
    options.data_on_gpu = data_on_gpu;
    options.startup_seconds *= latency_scale_;
    baselines::DbmsG engine(system.get(), options);
    return engine.Execute(spec, &StatsFor(spec));
  }

  std::unique_ptr<core::System> system;
  std::unique_ptr<ssb::Ssb> ssb;

  double latency_scale() const { return latency_scale_; }
  uint64_t block_rows() const { return block_rows_; }

 private:
  double latency_scale_;
  uint64_t block_rows_ = 128 * 1024;
  std::map<std::string, baselines::OpStats> stats_cache_;
  bool fact_on_gpu_ = false;
};

/// BENCH_scaleup.json — the artifact bench_fig7_scaleup prints on stdout (CI
/// tees it from the Release job's `--check` run). One JSON object:
///
///   {
///     "lineorder_rows": <uint>,      // fact rows per sweep point
///     "gpu_sweep": [                 // one entry per fabric size (1, 2, 4
///       {                            // GPUs; fact partitioned across GPUs)
///         "num_gpus": <int>,
///         "queries": <int>,          // queries pushed through the scheduler
///         "makespan_modeled_s": <s>, // virtual-time makespan of the batch
///         "qps_modeled": <qps>,      // queries / makespan_modeled_s
///         "p99_latency_s": <s>,      // per-query modeled latency p99
///         "wall_s": <s>              // host wall clock (diagnostic only)
///       }, ...
///     ],
///     "peer_leg": {                  // all tables in gpu0's memory, query
///       "query": "Qf.i",             // pinned to gpu1: NVLink mesh vs the
///       "peer_modeled_s": <s>,       // same fabric without it (host-staged)
///       "staged_modeled_s": <s>,
///       "speedup": <x>,              // staged / peer, > 1 when peer wins
///       "peer_est_s": <s>,           // coster estimates of the same routes
///       "staged_est_s": <s>,
///       "coster_ordering_ok": <bool> // estimated ordering == measured
///     },
///     "baseline": {                  // 1-GPU single-socket no-fabric system
///       "queries": <int>,            // all 13 SSB queries, optimizer-picked
///       "parity_ok": <bool>,         // picked-plan rows == reference rows
///       "coster_max_ratio": <x>      // picked / measured-best, gated <= 1.2
///     }
///   }
///
/// `--check` gates (exit nonzero + "CHECK FAILED:" on stderr): qps_modeled
/// strictly rises 1 -> 2 -> 4 GPUs, the peer leg beats host staging with the
/// coster agreeing on the ordering, and the baseline stays at parity with
/// coster_max_ratio <= 1.2 — the PR 8 solo regime is bit-identical.

/// BENCH_soak.json — the artifact bench_soak_bench prints on stdout (CI tees
/// it from the Release job's `--check` run). One JSON object:
///
///   {
///     "lineorder_rows": <uint>,       // fact rows in the served SSB mix
///     "max_concurrent": <int>,        // scheduler admission width
///     "micro_cycles": <int>,          // timed reservation cycles per level
///     "mean_solo_latency_s": <s>,     // pre-soak pool mean (rate calibration)
///     "offered_qps": <qps>,           // Poisson arrival rate, all levels
///     "levels": [                     // one entry per in-flight-session
///       {                             // level: 64, 128, 256
///         "sessions": <int>,          // sessions pushed through the scheduler
///         "ok": <int>,                // sessions that completed OK
///         "achieved_qps": <qps>,      // ok / virtual-time makespan
///         "p99_latency_s": <s>,       // queue wait + modeled latency p99
///         "dram_segments": <uint>,    // live System max socket-timeline size
///         "ns_per_reservation": <ns>, // micro Register+BlockEnd+Release cost
///         "micro_segments": <uint>,   // micro timeline size (Bound()-capped)
///         "solo_fast_path": <bool>,   // horizon session saw BlockEnd==false
///         "wall_s": <s>               // host wall clock (diagnostic only)
///       }, ...
///     ],
///     "ns_flat_ratio": <x>,           // ns(256 sessions) / ns(64 sessions)
///     "solo_max_rel_dev": <x>,        // post- vs pre-soak solo latency dev
///     "solo_parity_ok": <bool>        // solo_max_rel_dev <= 1e-4
///   }
///
/// `--check` gates (exit nonzero + "CHECK FAILED:" on stderr): every session
/// completes, every level's segment counts stay under the 4096 timeline cap,
/// the horizon-anchored solo fast path holds at every level (the bit-exact
/// half of the parity claim), solo_parity_ok, and ns_flat_ratio <= 3 — the
/// O(log n) insert/probe plus Bound()-capped segment count keep reservation
/// cost flat as in-flight sessions quadruple.

/// Registers a 1-iteration manual-time benchmark whose reported time is the
/// *modeled* latency on the simulated paper server.
template <typename Fn>
void RegisterModeled(const std::string& name, Fn fn) {
  benchmark::RegisterBenchmark(name.c_str(), [fn](benchmark::State& state) {
    for (auto _ : state) {
      core::QueryResult result = fn();
      if (!result.status.ok()) {
        state.SkipWithError(result.status.ToString().c_str());
        return;
      }
      state.SetIterationTime(result.modeled_seconds);
      state.counters["wall_ms"] = result.wall_seconds * 1e3;
      state.counters["rows"] = static_cast<double>(result.rows.size());
    }
  })->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);
}

/// Builds the two microbenchmark tables of §6.4: `micro` (one int32 column of
/// `rows`, the SUM input) and `micro_build` (the 7.7 MB-modeled build side whose
/// key domain the micro fact keys hit uniformly).
inline void MakeMicroTables(core::System* system, uint64_t rows,
                            uint64_t build_rows, bool keep_staging = false) {
  Rng rng(7);
  storage::Table* fact = system->catalog().CreateTable("micro");
  storage::Column* a = fact->AddColumn("a", storage::ColType::kInt32);
  storage::Column* key = fact->AddColumn("k", storage::ColType::kInt32);
  for (uint64_t i = 0; i < rows; ++i) {
    a->Append(static_cast<int64_t>(i & 0xFFFF));
    key->Append(static_cast<int64_t>(rng.Uniform(build_rows) + 1));
  }
  HETEX_CHECK_OK(fact->Place(system->HostNodes(), &system->memory()));
  if (!keep_staging) fact->DropStaging();

  storage::Table* build = system->catalog().CreateTable("micro_build");
  storage::Column* bk = build->AddColumn("bk", storage::ColType::kInt64);
  for (uint64_t i = 0; i < build_rows; ++i) {
    bk->Append(static_cast<int64_t>(i + 1));
  }
  HETEX_CHECK_OK(build->Place({system->HostNodes()[0]}, &system->memory()));
}

/// SELECT SUM(a) FROM micro — the bandwidth-bound microbenchmark.
inline plan::QuerySpec MicroSumQuery() {
  plan::QuerySpec q;
  q.name = "micro-sum";
  q.fact_table = "micro";
  q.aggs.push_back({plan::Col("a"), jit::AggFunc::kSum, "sum_a"});
  q.expected_groups = 1;
  return q;
}

/// SELECT COUNT(*) FROM micro JOIN micro_build ON k = bk — the random-access-
/// bound microbenchmark (non-partitioned 1:N join).
inline plan::QuerySpec MicroJoinQuery() {
  plan::QuerySpec q;
  q.name = "micro-join";
  q.fact_table = "micro";
  q.joins.push_back({"micro_build", nullptr, "bk", {}, "k"});
  q.aggs.push_back({nullptr, jit::AggFunc::kCount, "cnt"});
  q.expected_groups = 1;
  return q;
}

}  // namespace hetex::bench

#endif  // HETEX_BENCH_BENCH_UTIL_H_
