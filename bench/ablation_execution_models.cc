// Ablation — execution models (§2.2 motivation, §7 "Vectorization vs.
// compilation"): the same SSB queries through three CPU execution models on
// identical hardware and calibration:
//   (a) interpreted Volcano iterators (one virtual next() per tuple per op),
//   (b) vector-at-a-time with per-operator materialization (the DBMS C model),
//   (c) JIT-fused pipelines with register pipelining (this repo's engine).
// The paper's premise is (a) << (b) <= (c) for analytical scans; this ablation
// regenerates that ordering from mechanism.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "baselines/volcano.h"
#include "bench_util.h"

namespace {

using hetex::bench::SsbBenchEnv;

SsbBenchEnv* env = nullptr;
std::map<std::string, double> modeled_s;

void RegisterAll() {
  for (const auto& spec : {env->ssb->Query(1, 1), env->ssb->Query(2, 1),
                           env->ssb->Query(3, 2)}) {
    hetex::bench::RegisterModeled(
        "ablation_exec/volcano/" + spec.name, [spec] {
          hetex::baselines::VolcanoEngine engine(env->system.get());
          auto r = engine.Execute(spec);
          modeled_s["volcano/" + spec.name] = r.modeled_seconds;
          return r;
        });
    hetex::bench::RegisterModeled(
        "ablation_exec/vectorized/" + spec.name, [spec] {
          auto r = env->RunDbmsC(spec);
          modeled_s["vectorized/" + spec.name] = r.modeled_seconds;
          return r;
        });
    hetex::bench::RegisterModeled(
        "ablation_exec/jit/" + spec.name, [spec] {
          auto r = env->RunProteus(spec, hetex::plan::ExecPolicy::CpuOnly());
          modeled_s["jit/" + spec.name] = r.modeled_seconds;
          return r;
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  SsbBenchEnv e(/*scale=*/0.2, /*paper_sf=*/100, /*gpu_capacity=*/8ull << 30);
  env = &e;
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Execution-model ablation (24 CPU workers, modeled ms) ===\n");
  std::printf("%-6s %12s %12s %12s %18s\n", "query", "volcano", "vectorized",
              "jit", "volcano/jit");
  for (const char* q : {"Q1.1", "Q2.1", "Q3.2"}) {
    const double v = modeled_s["volcano/" + std::string(q)] * 1e3;
    const double x = modeled_s["vectorized/" + std::string(q)] * 1e3;
    const double j = modeled_s["jit/" + std::string(q)] * 1e3;
    std::printf("%-6s %12.2f %12.2f %12.2f %17.1fx\n", q, v, x, j, v / j);
  }
  std::printf("expected (paper 2.2/7): interpretation is the bottleneck; "
              "vectorized execution recovers most of it; JIT fusion wins on "
              "low-selectivity queries\n");
  return 0;
}
