// Throughput benchmark: the mixed SSB workload pushed through the concurrent
// query scheduler at rising admission caps. Reports queries/sec on the modeled
// server plus p50/p99 client-observed latency (admission queue wait included)
// per concurrency level, as JSON — the offered-load curve of the server model.
//
// Usage:
//   bench_throughput_bench [--check] [--rows N] [--repeat K]
//                          [--faults] [--fault-seed S]
//
// --check exits nonzero unless (a) modeled queries/sec rises from concurrency
// 1 to 4, (b) every query's rows match the concurrency-1 run (parity gate),
// and (c) p99 execution latency at concurrency 1 matches the solo Execute
// path within tolerance — a scheduled-but-serial query must see the same
// idle-server timeline a solo query does (catches epoch-anchoring
// regressions: a session anchored short of the resource horizon would
// inherit phantom queueing from finished queries).
//
// --faults runs the same offered load under the fault plane (seeded transient
// DMA/kernel/staging faults plus a scripted mid-workload GPU loss window) and
// reports, per concurrency level, the completed-query qps/p99 plus the
// degraded and failed fractions. OK results are still parity-checked against
// the scalar reference. Informational only — never a gate (--check is ignored
// in this mode).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/scheduler.h"
#include "core/system.h"
#include "sim/fault.h"
#include "ssb/reference.h"
#include "ssb/ssb.h"

namespace hetex {
namespace {

struct LevelStats {
  int concurrency = 0;
  int queries = 0;
  double makespan_modeled_s = 0;  ///< virtual batch completion time
  double qps_modeled = 0;         ///< queries / makespan (modeled)
  double p50_latency_s = 0;       ///< queue wait + execution, modeled
  double p99_latency_s = 0;
  double p99_exec_s = 0;          ///< execution only (queue wait excluded)
  double mean_queue_wait_s = 0;
  double wall_s = 0;              ///< host wall clock of the functional run
  int ok = 0;                     ///< queries that completed with OK status
  int failed = 0;                 ///< queries that ended in a terminal fault
  int degraded = 0;               ///< OK after retries / re-planning
  int retries_total = 0;          ///< recovery attempts summed over the level
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace
}  // namespace hetex

int main(int argc, char** argv) {
  using namespace hetex;  // NOLINT — bench brevity

  uint64_t rows = 60'000;
  int repeat = 2;
  bool check = false;
  bool faults = false;
  uint64_t fault_seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strcmp(argv[i], "--faults") == 0) faults = true;
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (faults && check) {
    std::fprintf(stderr, "note: --faults is informational, ignoring --check\n");
    check = false;
  }

  core::System::Options opts;
  opts.topology.num_sockets = 2;
  opts.topology.cores_per_socket = 2;
  opts.topology.num_gpus = 2;
  opts.topology.gpu_sim_threads = 2;
  opts.topology.host_capacity_per_socket = 4ull << 30;
  opts.topology.gpu_capacity = 1ull << 30;
  opts.blocks.block_bytes = 64 << 10;
  opts.blocks.host_arena_blocks = 512;
  opts.blocks.gpu_arena_blocks = 256;
  if (faults) {
    opts.faults.enabled = true;
    opts.faults.seed = fault_seed;
    opts.faults.dma_fault_rate = 0.02;
    opts.faults.kernel_fault_rate = 0.02;
    opts.faults.staging_fault_rate = 0.005;
  }
  core::System system(opts);
  if (faults) {
    // One GPU drops out for a window in the middle of the busy period:
    // queries caught mid-flight re-plan onto the survivors.
    system.fault().LoseGpu(0, /*from=*/0.02, /*until=*/0.12);
  }

  ssb::Ssb::Options ssb_opts;
  ssb_opts.lineorder_rows = rows;
  ssb_opts.scale = 0.002;
  ssb::Ssb ssb(ssb_opts, &system.catalog());
  for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
    HETEX_CHECK_OK(
        system.catalog().at(name).Place(system.HostNodes(), &system.memory()));
  }

  // The mixed workload: 8 distinct SSB queries spanning all four flights,
  // repeated `repeat` times per level.
  const std::vector<std::pair<int, int>> kMix = {
      {1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}, {3, 2}, {4, 1}, {4, 2}};
  std::vector<plan::QuerySpec> workload;
  for (int r = 0; r < repeat; ++r) {
    for (const auto& [flight, idx] : kMix) workload.push_back(ssb.Query(flight, idx));
  }

  // Solo baseline: every workload query through the plain Execute path (one
  // at a time, idle arrivals). The scheduler at concurrency 1 must reproduce
  // these execution latencies — it runs the same queries serially, each
  // anchored at the resource horizon. Skipped under --faults (the baseline
  // would itself be perturbed; OK rows are checked against the scalar
  // reference instead).
  std::vector<double> solo_exec;
  if (!faults) {
    core::QueryExecutor executor(&system);
    for (const auto& spec : workload) {
      core::QueryResult r = executor.Execute(spec);
      HETEX_CHECK(r.status.ok()) << spec.name << ": " << r.status.ToString();
      solo_exec.push_back(r.modeled_seconds);
    }
  }
  const double solo_p99 = Percentile(solo_exec, 0.99);

  std::vector<std::vector<std::vector<int64_t>>> reference_rows;
  if (faults) {
    for (const auto& spec : workload) {
      reference_rows.push_back(ssb::ReferenceExecute(spec, system.catalog()));
    }
  }

  std::vector<LevelStats> levels;
  std::vector<std::vector<std::vector<int64_t>>> baseline_rows;
  bool parity_ok = true;

  for (int concurrency : {1, 2, 4, 8}) {
    core::QueryScheduler scheduler(&system, {.max_concurrent = concurrency});
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<core::QueryHandle> handles;
    handles.reserve(workload.size());
    for (const auto& spec : workload) handles.push_back(scheduler.Submit(spec));

    LevelStats level;
    level.concurrency = concurrency;
    level.queries = static_cast<int>(workload.size());
    std::vector<double> latencies;
    std::vector<double> exec_latencies;
    double base = 0, last_end = 0, wait_sum = 0;
    bool first = true;
    for (size_t i = 0; i < handles.size(); ++i) {
      core::QueryResult r = scheduler.Wait(handles[i]);
      if (!faults) {
        HETEX_CHECK(r.status.ok())
            << workload[i].name << ": " << r.status.ToString();
      }
      level.retries_total += r.retries;
      if (r.degraded) ++level.degraded;
      if (!r.status.ok()) {
        // Terminal fault under injection: counted, excluded from the latency
        // percentiles (they describe completed queries).
        ++level.failed;
        continue;
      }
      ++level.ok;
      const double arrival = r.session_epoch - r.queue_wait;
      if (first || arrival < base) base = arrival;
      first = false;
      last_end = std::max(last_end, r.session_epoch + r.modeled_seconds);
      latencies.push_back(r.queue_wait + r.modeled_seconds);
      exec_latencies.push_back(r.modeled_seconds);
      wait_sum += r.queue_wait;
      if (faults) {
        // Degraded-mode recovery must stay bit-transparent.
        if (r.rows != reference_rows[i]) {
          parity_ok = false;
          std::fprintf(stderr,
                       "PARITY FAILURE: %s rows diverge from reference at "
                       "concurrency %d\n",
                       workload[i].name.c_str(), concurrency);
        }
      } else if (concurrency == 1) {
        baseline_rows.push_back(std::move(r.rows));
      } else if (r.rows != baseline_rows[i]) {
        parity_ok = false;
        std::fprintf(stderr, "PARITY FAILURE: %s rows diverge at concurrency %d\n",
                     workload[i].name.c_str(), concurrency);
      }
    }
    level.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
    level.makespan_modeled_s = last_end - base;
    level.qps_modeled =
        level.makespan_modeled_s > 0
            ? static_cast<double>(level.ok) / level.makespan_modeled_s
            : 0;
    level.p50_latency_s = Percentile(latencies, 0.50);
    level.p99_latency_s = Percentile(latencies, 0.99);
    level.p99_exec_s = Percentile(exec_latencies, 0.99);
    level.mean_queue_wait_s =
        latencies.empty() ? 0
                          : wait_sum / static_cast<double>(latencies.size());
    levels.push_back(level);
  }

  std::printf("{\n  \"lineorder_rows\": %" PRIu64 ",\n  \"faults\": %s,"
              "\n  \"solo_p99_exec_s\": %.6f,\n  \"levels\": [\n",
              rows, faults ? "true" : "false", solo_p99);
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelStats& l = levels[i];
    const double degraded_fraction =
        l.queries > 0 ? static_cast<double>(l.degraded) / l.queries : 0;
    std::printf("    {\"concurrency\": %d, \"queries\": %d, "
                "\"makespan_modeled_s\": %.6f, \"qps_modeled\": %.2f, "
                "\"p50_latency_s\": %.6f, \"p99_latency_s\": %.6f, "
                "\"p99_exec_s\": %.6f, "
                "\"mean_queue_wait_s\": %.6f, \"wall_s\": %.3f, "
                "\"ok\": %d, \"failed\": %d, \"degraded_fraction\": %.4f, "
                "\"retries_total\": %d}%s\n",
                l.concurrency, l.queries, l.makespan_modeled_s, l.qps_modeled,
                l.p50_latency_s, l.p99_latency_s, l.p99_exec_s,
                l.mean_queue_wait_s, l.wall_s, l.ok, l.failed,
                degraded_fraction, l.retries_total,
                i + 1 < levels.size() ? "," : "");
  }
  if (faults) {
    const sim::FaultInjector::Counters c = system.fault().counters();
    std::printf("  ],\n  \"fault_counters\": {\"dma\": %" PRIu64
                ", \"kernel\": %" PRIu64 ", \"staging\": %" PRIu64
                ", \"compile\": %" PRIu64 ", \"device_loss_rejections\": %" PRIu64
                "},\n  \"parity_ok\": %s\n}\n",
                c.dma_faults, c.kernel_faults, c.staging_faults,
                c.compile_faults, c.device_loss_rejections,
                parity_ok ? "true" : "false");
  } else {
    std::printf("  ]\n}\n");
  }

  if (check) {
    const double qps1 = levels[0].qps_modeled;
    const double qps4 = levels[2].qps_modeled;
    if (!parity_ok) {
      std::fprintf(stderr, "CHECK FAILED: concurrent rows diverge from serial\n");
      return 1;
    }
    if (qps4 <= qps1) {
      std::fprintf(stderr,
                   "CHECK FAILED: queries/sec did not rise with concurrency "
                   "(c1=%.2f, c4=%.2f)\n",
                   qps1, qps4);
      return 1;
    }
    // Epoch-anchoring gate: at concurrency 1 the scheduler is the solo path
    // plus admission — its p99 execution latency must match solo Execute.
    // (The optimizer runs in both paths; at concurrency 1 each session sees
    // zero link backlog, so it must pick the same plans.)
    const double p99_c1 = levels[0].p99_exec_s;
    const double tolerance = 0.05;
    if (solo_p99 <= 0 ||
        p99_c1 < solo_p99 * (1 - tolerance) ||
        p99_c1 > solo_p99 * (1 + tolerance)) {
      std::fprintf(stderr,
                   "CHECK FAILED: concurrency-1 p99 exec latency %.6fs drifts "
                   "from solo Execute p99 %.6fs (epoch anchoring regression?)\n",
                   p99_c1, solo_p99);
      return 1;
    }
    std::fprintf(stderr,
                 "check ok: qps c1=%.2f c4=%.2f (%.2fx), parity ok, "
                 "c1 p99 exec %.6fs within %.0f%% of solo %.6fs\n",
                 qps1, qps4, qps4 / qps1, p99_c1, tolerance * 100, solo_p99);
  }
  return 0;
}
