// Figure 7 — scale-up on the topology fabric (§6.4): the SSB probe mix pushed
// through the concurrent scheduler on 1-, 2- and 4-GPU scale-out fabrics
// (fully-connected NVLink peer mesh + NUMA inter-socket link), plus two
// routing/regression legs. Reports JSON (BENCH_scaleup.json — schema in
// bench/bench_util.h).
//
// Usage:
//   bench_fig7_scaleup [--check] [--rows N] [--repeat K]
//
// --check exits nonzero unless
//   (a) modeled queries/sec on the SSB probe mix rises monotonically from
//       1 -> 2 -> 4 GPUs (the encapsulated-parallelism scale-up claim),
//   (b) peer-routed GPU<->GPU build broadcasts beat host-staged routing on a
//       multi-join query (same data, same policy, peer mesh vs no peer mesh),
//       and the coster's estimates agree with the measured ordering, and
//   (c) the pre-fabric baseline — a 1-GPU single-socket topology with no peer
//       or inter-socket links — still passes the solo SSB matrix bit-exactly
//       against the scalar reference with the optimizer's picked plan within
//       1.2x of the measured-best candidate (the PR 8 regression gate).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/scheduler.h"
#include "core/system.h"
#include "plan/optimizer.h"
#include "ssb/reference.h"
#include "ssb/ssb.h"

namespace hetex {
namespace {

/// One point of the GPU sweep: the probe mix at a fixed admission cap.
struct SweepPoint {
  int num_gpus = 0;
  int queries = 0;
  double makespan_modeled_s = 0;
  double qps_modeled = 0;
  double p99_latency_s = 0;
  double wall_s = 0;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

// Self-similar miniature (the fig4/fig5 convention): per-query fixed costs
// shrink with the dataset so the bandwidth/compute story — what the fabric
// sweep varies — dominates the modeled time, not router bring-up.
constexpr double kLatencyScale = 1.0 / 60;

core::System::Options FabricOptions(int num_gpus) {
  core::System::Options opts;
  opts.topology = sim::Topology::ScaleOutOptions(num_gpus);
  opts.topology.cost_model.ScaleFixedLatencies(kLatencyScale);
  // Miniature server: small core counts and arenas keep the functional run
  // fast; the fabric shape (links, mesh, sockets) is what the sweep varies.
  opts.topology.cores_per_socket = 2;
  opts.topology.gpu_sim_threads = 2;
  opts.topology.host_capacity_per_socket = 4ull << 30;
  opts.topology.gpu_capacity = 1ull << 30;
  opts.blocks.block_bytes = 64 << 10;
  opts.blocks.host_arena_blocks = 512;
  opts.blocks.gpu_arena_blocks = 256;
  return opts;
}

void LoadSsb(core::System* system, ssb::Ssb::Options ssb_opts,
             std::vector<std::unique_ptr<ssb::Ssb>>* keep) {
  keep->push_back(std::make_unique<ssb::Ssb>(ssb_opts, &system->catalog()));
  for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
    HETEX_CHECK_OK(
        system->catalog().at(name).Place(system->HostNodes(), &system->memory()));
  }
}

}  // namespace
}  // namespace hetex

int main(int argc, char** argv) {
  using namespace hetex;  // NOLINT — bench brevity

  uint64_t rows = 480'000;
  int repeat = 3;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    }
  }

  ssb::Ssb::Options ssb_opts;
  ssb_opts.lineorder_rows = rows;
  ssb_opts.scale = 0.002;
  std::vector<std::unique_ptr<ssb::Ssb>> ssb_keep;

  // --------------------------------------------------------------- GPU sweep
  // The probe mix of throughput_bench (all four SSB flights), scheduled at a
  // fixed admission cap on 1/2/4-GPU scale-out fabrics in the paper's Fig. 4
  // regime: the fact table partitioned across the GPUs' device memories
  // (aggregate scan bandwidth grows with the fabric), dimensions host-resident.
  // The backlog-steered optimizer spreads builds across the fabric — more GPUs
  // means more local fact partitions, more peer-reachable build homes and more
  // probe lanes, so modeled qps must rise with the hardware.
  const std::vector<std::pair<int, int>> kMix = {
      {1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}, {3, 2}, {4, 1}, {4, 2}};
  std::vector<SweepPoint> sweep;
  for (int num_gpus : {1, 2, 4}) {
    core::System system(FabricOptions(num_gpus));
    LoadSsb(&system, ssb_opts, &ssb_keep);
    HETEX_CHECK_OK(system.catalog().at("lineorder").Place(system.GpuNodes(),
                                                          &system.memory()));
    std::vector<plan::QuerySpec> workload;
    for (int r = 0; r < repeat; ++r) {
      for (const auto& [flight, idx] : kMix) {
        workload.push_back(ssb_keep.back()->Query(flight, idx));
      }
    }

    const auto wall_start = std::chrono::steady_clock::now();
    core::QueryScheduler scheduler(&system, {.max_concurrent = 8});
    std::vector<core::QueryHandle> handles;
    handles.reserve(workload.size());
    for (const auto& spec : workload) handles.push_back(scheduler.Submit(spec));

    SweepPoint point;
    point.num_gpus = num_gpus;
    point.queries = static_cast<int>(workload.size());
    std::vector<double> latencies;
    double base = 0, last_end = 0;
    bool first = true;
    for (size_t i = 0; i < handles.size(); ++i) {
      core::QueryResult r = scheduler.Wait(handles[i]);
      HETEX_CHECK(r.status.ok()) << workload[i].name << " on " << num_gpus
                                 << " GPU(s): " << r.status.ToString();
      const double arrival = r.session_epoch - r.queue_wait;
      if (first || arrival < base) base = arrival;
      first = false;
      last_end = std::max(last_end, r.session_epoch + r.modeled_seconds);
      latencies.push_back(r.queue_wait + r.modeled_seconds);
    }
    point.makespan_modeled_s = last_end - base;
    point.qps_modeled = point.makespan_modeled_s > 0
                            ? static_cast<double>(point.queries) /
                                  point.makespan_modeled_s
                            : 0;
    point.p99_latency_s = Percentile(latencies, 0.99);
    point.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();
    sweep.push_back(point);
  }

  // ---------------------------------------------------------------- peer leg
  // Multi-join query (Q3.1: customer + supplier + date) with the fact table
  // and every dimension table resident in GPU 0's memory, executed on GPU 1:
  // the hash-table builds and the fact stream all cross GPU<->GPU, over the
  // NVLink peer link when the fabric has one, staged through host memory over
  // two PCIe hops when it doesn't. Same data, same policy.
  const std::pair<int, int> kPeerQuery = {3, 1};
  double peer_s = 0, staged_s = 0, peer_est = 0, staged_est = 0;
  for (bool with_peer : {true, false}) {
    core::System::Options opts = FabricOptions(2);
    if (!with_peer) opts.topology.peer_links.clear();
    opts.topology.inter_socket_bw = 0;  // isolate the peer-vs-staged delta
    core::System system(opts);
    LoadSsb(&system, ssb_opts, &ssb_keep);
    for (const char* t : {"lineorder", "date", "customer", "supplier", "part"}) {
      HETEX_CHECK_OK(system.catalog().at(t).Place({system.GpuNodes()[0]},
                                                  &system.memory()));
    }
    const auto spec = ssb_keep.back()->Query(kPeerQuery.first, kPeerQuery.second);
    plan::ExecPolicy policy = plan::ExecPolicy::GpuOnly({1});
    policy.block_rows = 4096;

    core::QueryExecutor executor(&system);
    const core::QueryResult r = executor.Execute(spec, policy);
    HETEX_CHECK(r.status.ok()) << r.status.ToString();

    plan::PlanCoster::Options coster_opts;
    coster_opts.pack_block_rows = system.blocks().options().block_bytes / 8;
    plan::PlanCoster coster(spec, system.catalog(), system.topology(),
                            coster_opts);
    const auto est =
        coster.Cost(plan::BuildHetPlan(spec, policy, system.topology()));
    HETEX_CHECK(est.ok()) << est.status().ToString();
    (with_peer ? peer_s : staged_s) = r.modeled_seconds;
    (with_peer ? peer_est : staged_est) = est.value().total;
  }
  const bool coster_ordering_ok = peer_est < staged_est;

  // ------------------------------------------------------------ baseline leg
  // Pre-fabric regression gate: a 1-GPU single-socket topology with no peer
  // mesh and no inter-socket link must behave exactly as before the fabric
  // landed — the full solo SSB matrix matches the scalar reference bit-exactly
  // and the optimizer's picked plan stays within 1.2x of the measured-best
  // candidate on every query.
  bool baseline_parity_ok = true;
  double coster_max_ratio = 0;
  int baseline_queries = 0;
  {
    core::System::Options opts;
    opts.topology.num_sockets = 1;
    opts.topology.cores_per_socket = 4;
    opts.topology.num_gpus = 1;
    opts.topology.gpu_sim_threads = 2;
    opts.topology.host_capacity_per_socket = 4ull << 30;
    opts.topology.gpu_capacity = 1ull << 30;
    opts.blocks.block_bytes = 64 << 10;
    opts.blocks.host_arena_blocks = 512;
    opts.blocks.gpu_arena_blocks = 256;
    core::System system(opts);
    ssb::Ssb::Options base_ssb = ssb_opts;
    base_ssb.lineorder_rows = std::min<uint64_t>(rows, 20'000);
    LoadSsb(&system, base_ssb, &ssb_keep);

    core::QueryExecutor executor(&system);
    for (int flight = 1; flight <= 4; ++flight) {
      for (int idx = 1; idx <= ssb::Ssb::FlightSize(flight); ++idx) {
        const auto spec = ssb_keep.back()->Query(flight, idx);
        ++baseline_queries;
        plan::ExecPolicy base_policy = plan::ExecPolicy::Hybrid(3);
        base_policy.block_rows = 4096;
        plan::OptimizeResult opt;
        const Status st = executor.Optimize(spec, base_policy, &opt);
        HETEX_CHECK(st.ok()) << spec.name << ": " << st.ToString();
        double best = -1, picked = -1;
        for (size_t i = 0; i < opt.ranked.size(); ++i) {
          const core::QueryResult m =
              executor.ExecutePlan(spec, opt.ranked[i].candidate.plan);
          HETEX_CHECK(m.status.ok())
              << opt.ranked[i].candidate.label << ": " << m.status.ToString();
          if (i == 0) {
            picked = m.modeled_seconds;
            if (m.rows != ssb::ReferenceExecute(spec, system.catalog())) {
              baseline_parity_ok = false;
              std::fprintf(stderr, "PARITY FAILURE: %s picked-plan rows "
                                   "diverge from reference\n",
                           spec.name.c_str());
            }
          }
          if (best < 0 || m.modeled_seconds < best) best = m.modeled_seconds;
        }
        coster_max_ratio = std::max(coster_max_ratio, picked / best);
      }
    }
  }

  // ------------------------------------------------------------------- JSON
  std::printf("{\n  \"lineorder_rows\": %" PRIu64 ",\n  \"gpu_sweep\": [\n",
              rows);
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::printf("    {\"num_gpus\": %d, \"queries\": %d, "
                "\"makespan_modeled_s\": %.6f, \"qps_modeled\": %.2f, "
                "\"p99_latency_s\": %.6f, \"wall_s\": %.3f}%s\n",
                p.num_gpus, p.queries, p.makespan_modeled_s, p.qps_modeled,
                p.p99_latency_s, p.wall_s, i + 1 < sweep.size() ? "," : "");
  }
  std::printf("  ],\n  \"peer_leg\": {\"query\": \"Q%d.%d\", "
              "\"peer_modeled_s\": %.6f, \"staged_modeled_s\": %.6f, "
              "\"speedup\": %.3f, \"peer_est_s\": %.6f, "
              "\"staged_est_s\": %.6f, \"coster_ordering_ok\": %s},\n",
              kPeerQuery.first, kPeerQuery.second, peer_s, staged_s,
              peer_s > 0 ? staged_s / peer_s : 0, peer_est, staged_est,
              coster_ordering_ok ? "true" : "false");
  std::printf("  \"baseline\": {\"queries\": %d, \"parity_ok\": %s, "
              "\"coster_max_ratio\": %.4f}\n}\n",
              baseline_queries, baseline_parity_ok ? "true" : "false",
              coster_max_ratio);

  if (check) {
    bool ok = true;
    for (size_t i = 1; i < sweep.size(); ++i) {
      if (sweep[i].qps_modeled <= sweep[i - 1].qps_modeled) {
        std::fprintf(stderr,
                     "CHECK FAILED: modeled qps did not rise from %d to %d "
                     "GPUs (%.2f -> %.2f)\n",
                     sweep[i - 1].num_gpus, sweep[i].num_gpus,
                     sweep[i - 1].qps_modeled, sweep[i].qps_modeled);
        ok = false;
      }
    }
    if (peer_s >= staged_s) {
      std::fprintf(stderr,
                   "CHECK FAILED: peer-routed build broadcast (%.6fs) did not "
                   "beat host-staged routing (%.6fs)\n",
                   peer_s, staged_s);
      ok = false;
    }
    if (!coster_ordering_ok) {
      std::fprintf(stderr,
                   "CHECK FAILED: coster estimate ordering disagrees with the "
                   "measured peer-vs-staged ordering (est %.6fs vs %.6fs)\n",
                   peer_est, staged_est);
      ok = false;
    }
    if (!baseline_parity_ok) {
      std::fprintf(stderr, "CHECK FAILED: baseline solo SSB matrix diverges "
                           "from the scalar reference\n");
      ok = false;
    }
    if (coster_max_ratio > 1.2) {
      std::fprintf(stderr,
                   "CHECK FAILED: baseline picked plan %.4fx the measured "
                   "best (bound 1.2x)\n",
                   coster_max_ratio);
      ok = false;
    }
    if (!ok) return 1;
    std::fprintf(stderr,
                 "check ok: qps 1g=%.2f 2g=%.2f 4g=%.2f, peer %.3fx over "
                 "staged (coster agrees), baseline parity ok, coster ratio "
                 "%.4f <= 1.2\n",
                 sweep[0].qps_modeled, sweep[1].qps_modeled,
                 sweep[2].qps_modeled, peer_s > 0 ? staged_s / peer_s : 0,
                 coster_max_ratio);
  }
  return 0;
}
