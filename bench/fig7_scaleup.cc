// Figure 7 — microbenchmark scale-up (§6.4): a bandwidth-bound SUM query (top)
// and a random-access-bound 1:N JOIN-count query (bottom), sweeping CPU workers
// with 0/1/2 GPUs. Dashed baselines: bare Proteus (no HetExchange operators) on
// one CPU core and one GPU (UVA).
//
// Paper shapes: the sum scales ~linearly to ~16 cores then saturates DRAM
// (~89.7 GB/s); GPUs add ~PCIe-bandwidth worth of throughput that diminishes as
// cores saturate the same DRAM; the join is random-access-bound, so GPUs help
// far more; single-unit HetExchange overhead vs bare Proteus is negligible.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"

namespace {

using hetex::bench::MicroJoinQuery;
using hetex::bench::MicroSumQuery;
using hetex::core::System;
using hetex::plan::ExecPolicy;

// 1/60 miniature of the paper's 23 GB input (same fixed-latency scaling).
constexpr double kLatencyScale = 1.0 / 60;
constexpr uint64_t kRows = 96'000'000;        // 384 MB int32 column
constexpr uint64_t kBuildRows = 128'000;      // ~7.7 MB-modeled build side
const int kCorePoints[] = {1, 2, 4, 8, 16, 24};

System* g_system = nullptr;
std::map<std::string, double> modeled_s;

hetex::core::QueryResult Run(const hetex::plan::QuerySpec& spec,
                             ExecPolicy policy) {
  policy.block_rows = 128 * 1024;
  hetex::core::QueryExecutor executor(g_system);
  return executor.Execute(spec, policy);
}

void RegisterAll() {
  for (const auto& spec : {MicroSumQuery(), MicroJoinQuery()}) {
    // Bare baselines (dashed lines).
    hetex::bench::RegisterModeled("fig7/" + spec.name + "/bare_1cpu", [spec] {
      auto r = Run(spec, ExecPolicy::Bare(hetex::sim::DeviceType::kCpu));
      modeled_s[spec.name + "/bare_1cpu"] = r.modeled_seconds;
      return r;
    });
    hetex::bench::RegisterModeled("fig7/" + spec.name + "/bare_1gpu", [spec] {
      auto r = Run(spec, ExecPolicy::Bare(hetex::sim::DeviceType::kGpu));
      modeled_s[spec.name + "/bare_1gpu"] = r.modeled_seconds;
      return r;
    });
    // HetExchange sweeps.
    for (int gpus : {0, 1, 2}) {
      for (int cores : kCorePoints) {
        const std::string key = spec.name + "/" + std::to_string(cores) + "c" +
                                std::to_string(gpus) + "g";
        hetex::bench::RegisterModeled("fig7/" + key, [spec, cores, gpus, key] {
          ExecPolicy policy;
          if (gpus == 0) {
            policy = ExecPolicy::CpuOnly(cores);
          } else {
            std::vector<int> ids;
            for (int g = 0; g < gpus; ++g) ids.push_back(g);
            policy = ExecPolicy::Hybrid(cores, ids);
          }
          auto r = Run(spec, policy);
          modeled_s[key] = r.modeled_seconds;
          return r;
        });
      }
      // GPU-only points (x = 0 CPU cores).
      if (gpus > 0) {
        const std::string key =
            spec.name + "/0c" + std::to_string(gpus) + "g";
        hetex::bench::RegisterModeled("fig7/" + key, [spec, gpus, key] {
          std::vector<int> ids;
          for (int g = 0; g < gpus; ++g) ids.push_back(g);
          auto r = Run(spec, ExecPolicy::Hybrid(0, ids));
          modeled_s[key] = r.modeled_seconds;
          return r;
        });
      }
    }
  }
}

void PrintSummary() {
  for (const auto& spec : {MicroSumQuery(), MicroJoinQuery()}) {
    const double base = modeled_s[spec.name + "/bare_1cpu"];
    std::printf("\n=== Figure 7 (%s): speed-up over bare 1-CPU Proteus ===\n",
                spec.name.c_str());
    std::printf("(bare 1 gpu: %.1fx)\n",
                base / modeled_s[spec.name + "/bare_1gpu"]);
    for (int gpus : {0, 1, 2}) {
      std::printf("%d GPU(s): ", gpus);
      if (gpus > 0) {
        std::printf("[0c %5.1fx] ",
                    base / modeled_s[spec.name + "/0c" + std::to_string(gpus) +
                                     "g"]);
      }
      for (int cores : kCorePoints) {
        const std::string key = spec.name + "/" + std::to_string(cores) + "c" +
                                std::to_string(gpus) + "g";
        std::printf("%dc %5.1fx  ", cores, base / modeled_s[key]);
      }
      std::printf("\n");
    }
  }
  std::printf("\npaper: sum saturates DRAM (~90 GB/s) past ~16 cores; 2 GPUs add "
              "~19 GB/s that diminishes; join gains much more from GPUs; "
              "1-unit HetExchange ~= bare Proteus\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  System::Options options;
  options.topology.cost_model.ScaleFixedLatencies(kLatencyScale);
  options.blocks.host_arena_blocks = 768;
  System system(options);
  g_system = &system;
  hetex::bench::MakeMicroTables(&system, kRows, kBuildRows);
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}
