// Open-loop serving benchmark: Poisson arrivals from a repeated-dimension-
// table SSB mix pushed through the concurrent scheduler, A/B-ing the serving
// layer's cross-query reuse (shared hash-table builds + result cache) at a
// fixed offered load. Reports offered vs achieved queries/sec, p50/p99
// client-observed latency and the cache/share hit rates per leg, as JSON.
//
// Usage:
//   bench_open_loop_bench [--check] [--queries N] [--rows R] [--seed S]
//                         [--factor F] [--max-concurrent C] [--ab-steer]
//
// The driver is open-loop: arrival offsets are drawn once (exponential gaps at
// `factor x max_concurrent / mean solo latency`) and replayed identically into
// every leg — the offered load does not adapt to the server. The whole trace
// is submitted upfront; the scheduler's admission control and the virtual
// arrival offsets shape the timeline, and the result cache is consulted at
// dequeue time (a query only hits on results completed earlier on it).
//
// --check exits nonzero unless (a) every completed query's rows are
// bit-identical to the scalar reference in every leg, and (b) the reuse-on
// leg achieves >= 1.3x the reuse-off achieved qps at the same offered load.
// --ab-steer adds a third leg with backlog-steered admission disabled
// (load-blind planning) — informational, roughly doubles the runtime.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/scheduler.h"
#include "core/system.h"
#include "ssb/reference.h"
#include "ssb/ssb.h"

namespace hetex {
namespace {

// The repeated-dimension-table mix: flights 2-4 all join the small dimension
// tables (date, supplier, customer, part) that cross-query build sharing
// dedups, and repeat often enough that the result cache converges to hits.
const std::vector<std::pair<int, int>> kPool = {
    {2, 1}, {2, 2}, {3, 1}, {3, 2}, {4, 1}, {4, 2}};

struct LegStats {
  std::string name;
  int queries = 0;
  int ok = 0;
  double achieved_qps = 0;
  double p50_latency_s = 0;
  double p99_latency_s = 0;
  double mean_queue_wait_s = 0;
  double cache_hit_rate = 0;
  int shared_builds = 0;
  int shared_attaches = 0;
  double share_attach_rate = 0;  ///< attaches / (builds + attaches)
  double wall_s = 0;
  bool parity_ok = true;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

core::System::Options SystemOptions(core::ReuseOptions reuse) {
  core::System::Options opts;
  opts.topology.num_sockets = 2;
  opts.topology.cores_per_socket = 2;
  opts.topology.num_gpus = 2;
  opts.topology.gpu_sim_threads = 2;
  opts.topology.host_capacity_per_socket = 4ull << 30;
  opts.topology.gpu_capacity = 1ull << 30;
  opts.blocks.block_bytes = 64 << 10;
  opts.blocks.host_arena_blocks = 512;
  opts.blocks.gpu_arena_blocks = 256;
  opts.reuse = reuse;
  return opts;
}

std::unique_ptr<ssb::Ssb> LoadSsb(core::System* system, uint64_t rows) {
  ssb::Ssb::Options ssb_opts;
  ssb_opts.lineorder_rows = rows;
  ssb_opts.scale = 0.002;
  auto ssb = std::make_unique<ssb::Ssb>(ssb_opts, &system->catalog());
  for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
    HETEX_CHECK_OK(
        system->catalog().at(name).Place(system->HostNodes(), &system->memory()));
  }
  return ssb;
}

LegStats RunLeg(const std::string& name, core::ReuseOptions reuse, bool steer,
                uint64_t rows, int max_concurrent,
                const std::vector<int>& draws,
                const std::vector<double>& arrivals,
                const std::vector<std::vector<std::vector<int64_t>>>& reference) {
  core::System system(SystemOptions(reuse));
  auto ssb = LoadSsb(&system, rows);
  std::vector<plan::QuerySpec> pool;
  for (const auto& [flight, idx] : kPool) pool.push_back(ssb->Query(flight, idx));

  core::QueryScheduler::Options sopts;
  sopts.max_concurrent = max_concurrent;
  sopts.steer_admission = steer;
  core::QueryScheduler scheduler(&system, sopts);

  LegStats leg;
  leg.name = name;
  leg.queries = static_cast<int>(draws.size());
  const auto wall_start = std::chrono::steady_clock::now();

  std::vector<core::QueryHandle> handles;
  handles.reserve(draws.size());
  for (size_t i = 0; i < draws.size(); ++i) {
    core::SubmitOptions opts;
    opts.arrival_offset = arrivals[i];
    handles.push_back(scheduler.Submit(pool[draws[i]], opts));
  }

  std::vector<double> latencies;
  double base = 0, last_end = 0, wait_sum = 0;
  bool first = true;
  int cache_hits = 0;
  for (size_t qi = 0; qi < handles.size(); ++qi) {
    core::QueryResult r = scheduler.Wait(handles[qi]);
    HETEX_CHECK(r.status.ok())
        << leg.name << " query " << qi << ": " << r.status.ToString();
    ++leg.ok;
    if (r.cache_hit) ++cache_hits;
    leg.shared_builds += r.shared_builds;
    leg.shared_attaches += r.shared_attaches;
    const double arrival = r.session_epoch - r.queue_wait;
    if (first || arrival < base) base = arrival;
    first = false;
    last_end = std::max(last_end, r.session_epoch + r.modeled_seconds);
    latencies.push_back(r.queue_wait + r.modeled_seconds);
    wait_sum += r.queue_wait;
    if (r.rows != reference[static_cast<size_t>(draws[qi])]) {
      leg.parity_ok = false;
      std::fprintf(stderr, "PARITY FAILURE: leg %s query %zu (%s) diverges\n",
                   leg.name.c_str(), qi, pool[draws[qi]].name.c_str());
    }
  }

  leg.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count();
  const double makespan = last_end - base;
  leg.achieved_qps = makespan > 0 ? static_cast<double>(leg.ok) / makespan : 0;
  leg.p50_latency_s = Percentile(latencies, 0.50);
  leg.p99_latency_s = Percentile(latencies, 0.99);
  leg.mean_queue_wait_s =
      latencies.empty() ? 0 : wait_sum / static_cast<double>(latencies.size());
  leg.cache_hit_rate =
      leg.ok > 0 ? static_cast<double>(cache_hits) / leg.ok : 0;
  const int share_total = leg.shared_builds + leg.shared_attaches;
  leg.share_attach_rate =
      share_total > 0 ? static_cast<double>(leg.shared_attaches) / share_total
                      : 0;
  return leg;
}

}  // namespace
}  // namespace hetex

int main(int argc, char** argv) {
  using namespace hetex;  // NOLINT — bench brevity

  uint64_t rows = 12'000;
  int queries = 10'000;
  uint64_t seed = 0x09E17007ull;
  double factor = 2.0;
  int max_concurrent = 8;
  bool check = false;
  bool ab_steer = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strcmp(argv[i], "--ab-steer") == 0) ab_steer = true;
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--factor") == 0 && i + 1 < argc) {
      factor = std::atof(argv[++i]);
    }
    if (std::strcmp(argv[i], "--max-concurrent") == 0 && i + 1 < argc) {
      max_concurrent = std::atoi(argv[++i]);
    }
  }

  // Calibration: mean solo modeled latency of the pool (reuse off, idle
  // server) sets the offered rate, and the scalar reference rows anchor the
  // parity gate for every leg.
  double mean_solo = 0;
  std::vector<std::vector<std::vector<int64_t>>> reference;
  {
    core::System system(SystemOptions(core::ReuseOptions{}));
    auto ssb = LoadSsb(&system, rows);
    core::QueryExecutor executor(&system);
    for (const auto& [flight, idx] : kPool) {
      const plan::QuerySpec spec = ssb->Query(flight, idx);
      core::QueryResult r = executor.Execute(spec);
      HETEX_CHECK(r.status.ok()) << spec.name << ": " << r.status.ToString();
      mean_solo += r.modeled_seconds;
      reference.push_back(ssb::ReferenceExecute(spec, system.catalog()));
    }
    mean_solo /= static_cast<double>(kPool.size());
  }
  const double offered_qps =
      factor * static_cast<double>(max_concurrent) / mean_solo;

  // One arrival trace, replayed into every leg: Poisson process at the
  // offered rate, query identity drawn uniformly from the pool.
  Rng rng(seed);
  std::vector<int> draws;
  std::vector<double> arrivals;
  double t = 0;
  for (int i = 0; i < queries; ++i) {
    t += -std::log(1.0 - rng.NextDouble()) / offered_qps;
    arrivals.push_back(t);
    draws.push_back(static_cast<int>(rng.Uniform(kPool.size())));
  }

  core::ReuseOptions reuse_on;
  reuse_on.shared_builds = true;
  reuse_on.result_cache = true;

  std::vector<LegStats> legs;
  legs.push_back(RunLeg("reuse_off", core::ReuseOptions{}, /*steer=*/true, rows,
                        max_concurrent, draws, arrivals, reference));
  legs.push_back(RunLeg("reuse_on", reuse_on, /*steer=*/true, rows,
                        max_concurrent, draws, arrivals, reference));
  if (ab_steer) {
    legs.push_back(RunLeg("reuse_off_unsteered", core::ReuseOptions{},
                          /*steer=*/false, rows, max_concurrent, draws,
                          arrivals, reference));
  }

  std::printf("{\n  \"lineorder_rows\": %" PRIu64 ",\n  \"queries\": %d,\n"
              "  \"max_concurrent\": %d,\n  \"mean_solo_latency_s\": %.6f,\n"
              "  \"offered_qps\": %.2f,\n  \"legs\": [\n",
              rows, queries, max_concurrent, mean_solo, offered_qps);
  for (size_t i = 0; i < legs.size(); ++i) {
    const LegStats& l = legs[i];
    std::printf(
        "    {\"name\": \"%s\", \"ok\": %d, \"achieved_qps\": %.2f, "
        "\"p50_latency_s\": %.6f, \"p99_latency_s\": %.6f, "
        "\"mean_queue_wait_s\": %.6f, \"cache_hit_rate\": %.4f, "
        "\"shared_builds\": %d, \"shared_attaches\": %d, "
        "\"share_attach_rate\": %.4f, \"wall_s\": %.3f, \"parity_ok\": %s}%s\n",
        l.name.c_str(), l.ok, l.achieved_qps, l.p50_latency_s, l.p99_latency_s,
        l.mean_queue_wait_s, l.cache_hit_rate, l.shared_builds,
        l.shared_attaches, l.share_attach_rate, l.wall_s,
        l.parity_ok ? "true" : "false", i + 1 < legs.size() ? "," : "");
  }
  std::printf("  ]\n}\n");

  if (check) {
    for (const LegStats& l : legs) {
      if (!l.parity_ok) {
        std::fprintf(stderr, "CHECK FAILED: leg %s rows diverge from reference\n",
                     l.name.c_str());
        return 1;
      }
    }
    const double off = legs[0].achieved_qps;
    const double on = legs[1].achieved_qps;
    if (off <= 0 || on < 1.3 * off) {
      std::fprintf(stderr,
                   "CHECK FAILED: reuse-on achieved %.2f qps, needs >= 1.3x "
                   "reuse-off %.2f qps at offered %.2f\n",
                   on, off, offered_qps);
      return 1;
    }
    std::fprintf(stderr,
                 "check ok: offered %.2f qps, reuse off %.2f -> on %.2f "
                 "(%.2fx), cache hit rate %.2f, share attach rate %.2f\n",
                 offered_qps, off, on, on / off, legs[1].cache_hit_rate,
                 legs[1].share_attach_rate);
  }
  return 0;
}
