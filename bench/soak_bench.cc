// Soak benchmark for the virtual-time DRAM contention model: sweeps 64/128/256
// in-flight sessions through one long-lived System so the per-socket interval
// timelines accumulate hundreds of closed execution-phase intervals, and gates
// that (a) the cost of one reservation cycle stays roughly flat across the
// sweep (the O(log n) + bounded-segment claim), and (b) solo query latencies
// after the soak are bit-identical to the pre-soak idle-server run (a fresh
// session anchored at the horizon overlaps nothing, so the uncontended
// fast path — the closed-form divisor — must still be taken verbatim).
//
// Usage:
//   bench_soak_bench [--check] [--rows R] [--seed S] [--max-concurrent C]
//                    [--cycles K] [--factor F]
//
// Two parts per level L in {64, 128, 256}:
//   micro  — a bare sim::DramServer preloaded with L staggered closed
//            intervals, then K timed Register -> BlockEnd -> Release cycles
//            (one reservation each). Reports ns/reservation and the segment
//            count the Bound() cap holds the timeline to, and asserts that a
//            fresh session registered at the horizon still takes the
//            uncontended fast path (BlockEnd == false) — the bit-exact proof
//            that the accumulated timeline cannot touch a solo query's
//            closed-form arithmetic.
//   served — L one-query sessions from an SSB mix pushed through the
//            concurrent scheduler at a fixed offered load (Poisson arrivals),
//            all into the SAME System as every previous level. Reports
//            achieved qps, p99 latency and the live DRAM segment count.
//
// --check exits nonzero unless every served query succeeds, the solo fast
// path holds at every level, post-soak solo latencies match pre-soak within
// 1e-4 relative (the engine has pre-existing run-to-run jitter of ~2e-6
// relative from thread-completion-order block distribution — measured
// identically on the previous revision — while any real contention leak
// shifts latency by >= 1e-1 relative), segment counts stay under the
// timeline cap, and ns/reservation at 256 sessions is <= 3x the 64-session
// figure.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/scheduler.h"
#include "core/system.h"
#include "sim/bandwidth.h"
#include "ssb/ssb.h"

namespace hetex {
namespace {

const std::vector<std::pair<int, int>> kPool = {{1, 1}, {2, 1}, {3, 1}, {4, 1}};

constexpr int kLevels[] = {64, 128, 256};

struct MicroStats {
  double ns_per_reservation = 0;
  size_t segments = 0;
  bool solo_fast_path = false;
};

// One reservation cycle = what a CPU execution phase costs the DramServer:
// open an interval, price one block against the timeline, close the interval.
MicroStats RunMicro(int sessions, int cycles, uint64_t seed) {
  sim::DramServer dram(45e9, 6e9);
  const double dt = 1e-3;
  const double span = sessions * dt;
  for (int i = 0; i < sessions; ++i) {
    const uint64_t t =
        dram.Register(static_cast<uint64_t>(i), i * dt, /*workers=*/4);
    dram.Release(t, i * dt + 0.5);
  }
  Rng rng(seed);
  auto cycle = [&](uint64_t session) {
    const sim::VTime start = rng.NextDouble() * span;
    const uint64_t tok = dram.Register(session, start, /*workers=*/4);
    sim::VTime end = 0;
    dram.BlockEnd(session, /*own_workers=*/4, /*bytes=*/1e5, /*compute=*/0.0,
                  start, &end);
    dram.Release(tok, start + 5e-4);
  };
  for (int i = 0; i < 512; ++i) cycle(1'000'000);  // warmup: hit the Bound cap
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < cycles; ++i) cycle(2'000'000 + static_cast<uint64_t>(i));
  const auto t1 = std::chrono::steady_clock::now();
  MicroStats out;
  out.ns_per_reservation =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / cycles;
  out.segments = dram.num_segments();
  // A fresh session anchored at the horizon overlaps none of the thousands of
  // accumulated intervals: BlockEnd must take the uncontended fast path, so
  // its caller prices the block with the pre-interval-timeline closed form —
  // bit-identical solo behavior by construction.
  const sim::VTime solo_start = dram.horizon();
  const uint64_t solo = dram.Register(3'000'000, solo_start, 4);
  sim::VTime end = 0;
  out.solo_fast_path =
      !dram.BlockEnd(3'000'000, 4, 1e6, 0.0, solo_start, &end);
  dram.Release(solo);
  return out;
}

core::System::Options SystemOptions() {
  core::System::Options opts;
  opts.topology.num_sockets = 2;
  opts.topology.cores_per_socket = 2;
  opts.topology.num_gpus = 2;
  opts.topology.gpu_sim_threads = 2;
  opts.topology.host_capacity_per_socket = 4ull << 30;
  opts.topology.gpu_capacity = 1ull << 30;
  opts.blocks.block_bytes = 64 << 10;
  opts.blocks.host_arena_blocks = 512;
  opts.blocks.gpu_arena_blocks = 256;
  return opts;
}

size_t MaxDramSegments(core::System* system) {
  size_t m = 0;
  const sim::Topology& topo = system->topology();
  for (int s = 0; s < topo.num_sockets(); ++s) {
    m = std::max(m, topo.socket_dram(s).num_segments());
  }
  return m;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

struct LevelStats {
  int sessions = 0;
  MicroStats micro;
  int ok = 0;
  double achieved_qps = 0;
  double p99_latency_s = 0;
  size_t dram_segments = 0;
  double wall_s = 0;
};

LevelStats RunLevel(core::System* system, const std::vector<plan::QuerySpec>& pool,
                    int sessions, int max_concurrent, double offered_qps,
                    uint64_t seed) {
  LevelStats level;
  level.sessions = sessions;

  Rng rng(seed);
  core::QueryScheduler::Options sopts;
  sopts.max_concurrent = max_concurrent;
  core::QueryScheduler scheduler(system, sopts);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<core::QueryHandle> handles;
  handles.reserve(static_cast<size_t>(sessions));
  double t = 0;
  for (int i = 0; i < sessions; ++i) {
    t += -std::log(1.0 - rng.NextDouble()) / offered_qps;
    core::SubmitOptions opts;
    opts.arrival_offset = t;
    handles.push_back(scheduler.Submit(pool[i % pool.size()], opts));
  }

  std::vector<double> latencies;
  double base = 0, last_end = 0;
  bool first = true;
  for (size_t qi = 0; qi < handles.size(); ++qi) {
    core::QueryResult r = scheduler.Wait(handles[qi]);
    HETEX_CHECK(r.status.ok())
        << "soak session " << qi << ": " << r.status.ToString();
    ++level.ok;
    const double arrival = r.session_epoch - r.queue_wait;
    if (first || arrival < base) base = arrival;
    first = false;
    last_end = std::max(last_end, r.session_epoch + r.modeled_seconds);
    latencies.push_back(r.queue_wait + r.modeled_seconds);
  }
  level.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               wall_start)
                     .count();
  const double makespan = last_end - base;
  level.achieved_qps =
      makespan > 0 ? static_cast<double>(level.ok) / makespan : 0;
  level.p99_latency_s = Percentile(latencies, 0.99);
  level.dram_segments = MaxDramSegments(system);
  return level;
}

std::vector<double> SoloLatencies(core::System* system,
                                  const std::vector<plan::QuerySpec>& pool) {
  core::QueryExecutor executor(system);
  std::vector<double> out;
  for (const plan::QuerySpec& spec : pool) {
    core::QueryResult r = executor.Execute(spec);
    HETEX_CHECK(r.status.ok()) << spec.name << ": " << r.status.ToString();
    out.push_back(r.modeled_seconds);
  }
  return out;
}

}  // namespace
}  // namespace hetex

int main(int argc, char** argv) {
  using namespace hetex;  // NOLINT — bench brevity

  uint64_t rows = 10'000;
  uint64_t seed = 0x50A4ull;
  int max_concurrent = 16;
  int cycles = 20'000;
  double factor = 2.0;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--max-concurrent") == 0 && i + 1 < argc) {
      max_concurrent = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--factor") == 0 && i + 1 < argc) {
      factor = std::atof(argv[++i]);
    }
  }

  // One System for the whole sweep: every level's sessions pile more closed
  // intervals onto the same per-socket timelines before the next level runs.
  core::System system(SystemOptions());
  ssb::Ssb::Options ssb_opts;
  ssb_opts.lineorder_rows = rows;
  ssb_opts.scale = 0.002;
  ssb::Ssb ssb(ssb_opts, &system.catalog());
  for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
    HETEX_CHECK_OK(
        system.catalog().at(name).Place(system.HostNodes(), &system.memory()));
  }
  std::vector<plan::QuerySpec> pool;
  for (const auto& [flight, idx] : kPool) pool.push_back(ssb.Query(flight, idx));

  // Pre-soak solo reference: the bit-parity baseline and the offered-rate
  // calibration in one pass.
  const std::vector<double> solo_before = SoloLatencies(&system, pool);
  double mean_solo = 0;
  for (double s : solo_before) mean_solo += s;
  mean_solo /= static_cast<double>(solo_before.size());
  const double offered_qps =
      factor * static_cast<double>(max_concurrent) / mean_solo;

  std::vector<LevelStats> levels;
  for (int sessions : kLevels) {
    LevelStats level =
        RunLevel(&system, pool, sessions, max_concurrent, offered_qps,
                 seed + static_cast<uint64_t>(sessions));
    level.micro = RunMicro(sessions, cycles, seed ^ static_cast<uint64_t>(sessions));
    levels.push_back(level);
  }

  // Post-soak solo parity: a fresh session anchors past every accumulated
  // interval, so its latencies must match the pre-soak run up to the engine's
  // pre-existing scheduling jitter (~2e-6 relative; see the header comment).
  // The bit-exact half of the claim is the per-level micro fast-path flag.
  const std::vector<double> solo_after = SoloLatencies(&system, pool);
  double solo_max_rel_dev = 0;
  for (size_t i = 0; i < solo_before.size(); ++i) {
    solo_max_rel_dev =
        std::max(solo_max_rel_dev, std::abs(solo_after[i] - solo_before[i]) /
                                       solo_before[i]);
  }
  const bool solo_parity = solo_max_rel_dev <= 1e-4;

  const double ns_lo = levels.front().micro.ns_per_reservation;
  const double ns_hi = levels.back().micro.ns_per_reservation;
  const double ns_ratio = ns_lo > 0 ? ns_hi / ns_lo : 0;

  std::printf("{\n  \"lineorder_rows\": %" PRIu64 ",\n"
              "  \"max_concurrent\": %d,\n  \"micro_cycles\": %d,\n"
              "  \"mean_solo_latency_s\": %.6f,\n  \"offered_qps\": %.2f,\n"
              "  \"levels\": [\n",
              rows, max_concurrent, cycles, mean_solo, offered_qps);
  for (size_t i = 0; i < levels.size(); ++i) {
    const LevelStats& l = levels[i];
    std::printf(
        "    {\"sessions\": %d, \"ok\": %d, \"achieved_qps\": %.2f, "
        "\"p99_latency_s\": %.6f, \"dram_segments\": %zu, "
        "\"ns_per_reservation\": %.1f, \"micro_segments\": %zu, "
        "\"solo_fast_path\": %s, \"wall_s\": %.3f}%s\n",
        l.sessions, l.ok, l.achieved_qps, l.p99_latency_s, l.dram_segments,
        l.micro.ns_per_reservation, l.micro.segments,
        l.micro.solo_fast_path ? "true" : "false", l.wall_s,
        i + 1 < levels.size() ? "," : "");
  }
  std::printf("  ],\n  \"ns_flat_ratio\": %.2f,\n"
              "  \"solo_max_rel_dev\": %.3g,\n  \"solo_parity_ok\": %s\n}\n",
              ns_ratio, solo_max_rel_dev, solo_parity ? "true" : "false");

  if (check) {
    for (const LevelStats& l : levels) {
      if (l.ok != l.sessions) {
        std::fprintf(stderr, "CHECK FAILED: level %d completed %d/%d sessions\n",
                     l.sessions, l.ok, l.sessions);
        return 1;
      }
      if (l.dram_segments > 4096 || l.micro.segments > 4096) {
        std::fprintf(stderr,
                     "CHECK FAILED: level %d segment count escaped the cap "
                     "(dram %zu, micro %zu)\n",
                     l.sessions, l.dram_segments, l.micro.segments);
        return 1;
      }
      if (!l.micro.solo_fast_path) {
        std::fprintf(stderr,
                     "CHECK FAILED: level %d horizon-anchored session left the "
                     "uncontended fast path\n",
                     l.sessions);
        return 1;
      }
    }
    if (!solo_parity) {
      std::fprintf(stderr,
                   "CHECK FAILED: post-soak solo latencies diverge from the "
                   "pre-soak idle-server run (max rel dev %.3g > 1e-4)\n",
                   solo_max_rel_dev);
      return 1;
    }
    if (ns_ratio <= 0 || ns_ratio > 3.0) {
      std::fprintf(stderr,
                   "CHECK FAILED: ns/reservation not flat across the sweep "
                   "(%.1f ns at %d sessions vs %.1f ns at %d, ratio %.2f > 3)\n",
                   ns_hi, levels.back().sessions, ns_lo, levels.front().sessions,
                   ns_ratio);
      return 1;
    }
    std::fprintf(stderr,
                 "check ok: %d/%d/%d sessions, ns/reservation %.0f -> %.0f "
                 "(ratio %.2f), solo fast path held, solo latencies within "
                 "%.3g of pre-soak\n",
                 kLevels[0], kLevels[1], kLevels[2], ns_lo, ns_hi, ns_ratio,
                 solo_max_rel_dev);
  }
  return 0;
}
