// Table 1 — the device-provider interface: every method of the paper's Table 1
// is exercised through both providers. This benchmark measures the wall-clock
// cost of each provider operation (they run on the simulating host) and, for
// Execute, the modeled per-tuple cost on the simulated device — demonstrating
// that one operator codebase specializes to either device via the provider
// alone (paper §4.1, Fig. 3).

#include <benchmark/benchmark.h>

#include "core/system.h"
#include "jit/device_provider.h"

namespace {

using hetex::core::System;

System* g_system = nullptr;

std::unique_ptr<hetex::jit::DeviceProvider> MakeProvider(bool gpu) {
  return g_system->MakeProvider(gpu ? hetex::sim::DeviceId::Gpu(0)
                                    : hetex::sim::DeviceId::Cpu(0));
}

void BM_AllocStateVar(benchmark::State& state) {
  auto provider = MakeProvider(state.range(0) != 0);
  for (auto _ : state) {
    void* p = provider->AllocStateVar(4096);
    benchmark::DoNotOptimize(p);
    provider->FreeStateVar(p);
  }
}

void BM_GetReleaseBuffer(benchmark::State& state) {
  auto provider = MakeProvider(state.range(0) != 0);
  for (auto _ : state) {
    hetex::memory::Block* b = provider->GetBuffer();
    benchmark::DoNotOptimize(b);
    provider->ReleaseBuffer(b);
  }
  g_system->blocks().FlushReleases();
}

void BM_ConvertToMachineCode(benchmark::State& state) {
  auto provider = MakeProvider(state.range(0) != 0);
  hetex::jit::ProgramBuilder b;
  const int r = b.AllocReg();
  b.EmitOp(hetex::jit::OpCode::kLoadCol, r, 0);
  const int acc = b.AllocLocalAcc(hetex::jit::AggFunc::kSum);
  b.EmitOp(hetex::jit::OpCode::kAggLocal, acc, r,
           static_cast<int>(hetex::jit::AggFunc::kSum));
  const hetex::jit::PipelineProgram master = b.Finalize("table1");
  for (auto _ : state) {
    hetex::jit::PipelineProgram copy = master;
    benchmark::DoNotOptimize(provider->ConvertToMachineCode(&copy));
  }
}

/// Executes the same sum pipeline through both providers; reports the modeled
/// per-tuple cost (ns) as the benchmark counter. The CPU specialization elides
/// atomics and runs rows 0..n; the GPU one grid-strides with device atomics.
void BM_ExecuteSumPipeline(benchmark::State& state) {
  const bool gpu = state.range(0) != 0;
  auto provider = MakeProvider(gpu);
  if (!gpu) {
    static_cast<hetex::jit::CpuProvider&>(*provider).set_socket_concurrency(1);
  }

  hetex::jit::ProgramBuilder b;
  const int r = b.AllocReg();
  b.EmitOp(hetex::jit::OpCode::kLoadCol, r, 0);
  const int acc = b.AllocLocalAcc(hetex::jit::AggFunc::kSum);
  b.EmitOp(hetex::jit::OpCode::kAggLocal, acc, r,
           static_cast<int>(hetex::jit::AggFunc::kSum));
  hetex::jit::PipelineProgram program = b.Finalize("table1-sum");
  HETEX_CHECK_OK(provider->ConvertToMachineCode(&program));

  constexpr uint64_t kRows = 64 * 1024;
  std::vector<int32_t> data(kRows, 3);
  hetex::jit::ColumnBinding col{reinterpret_cast<const std::byte*>(data.data()), 4};
  int64_t instance_accs[8] = {};
  auto* shared =
      static_cast<std::atomic<int64_t>*>(provider->AllocStateVar(64));
  shared[0].store(0);

  double modeled = 0;
  for (auto _ : state) {
    hetex::jit::ExecRequest req;
    req.cols = &col;
    req.n_cols = 1;
    req.rows = kRows;
    req.instance_accs = instance_accs;
    req.shared_accs = shared;
    req.earliest = 0;
    // Fresh session each iteration: anchoring past the resource horizon makes
    // the shared kernel stream look idle (the session-scoped reset).
    provider->set_session_epoch(g_system->VirtualHorizon());
    auto result = provider->Execute(program, req);
    benchmark::DoNotOptimize(result.end);
    modeled = result.end;
  }
  state.counters["modeled_us_per_block"] = modeled * 1e6;
  provider->FreeStateVar(shared);
}

BENCHMARK(BM_AllocStateVar)->Arg(0)->Arg(1)->ArgName("gpu");
BENCHMARK(BM_GetReleaseBuffer)->Arg(0)->Arg(1)->ArgName("gpu");
BENCHMARK(BM_ConvertToMachineCode)->Arg(0)->Arg(1)->ArgName("gpu");
BENCHMARK(BM_ExecuteSumPipeline)->Arg(0)->Arg(1)->ArgName("gpu");

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  System system((System::Options()));
  g_system = &system;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
