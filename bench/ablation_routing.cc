// Ablation — routing policies (§3.1): the same hybrid join under (a) the
// virtual-time load-balancing router, (b) a blind round-robin router, and (c)
// the split filter-stage plan with hash-pack + hash routing (the paper's
// Fig. 1e shape). Load balancing matters because CPU workers and GPUs have very
// different per-block service times; hash routing adds a packing stage but
// partitions the probe side.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"

namespace {

using hetex::core::System;
using hetex::plan::ExecPolicy;

System* g_system = nullptr;
std::map<std::string, double> modeled_s;

void Register(const std::string& name, ExecPolicy policy) {
  hetex::bench::RegisterModeled("ablation_routing/" + name, [name, policy] {
    hetex::core::QueryExecutor executor(g_system);
    auto r = executor.Execute(hetex::bench::MicroJoinQuery(), policy);
    modeled_s[name] = r.modeled_seconds;
    return r;
  });
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  System::Options options;
  options.blocks.host_arena_blocks = 1024;
  System system(options);
  g_system = &system;
  hetex::bench::MakeMicroTables(&system, 48'000'000, 1'000'000);

  ExecPolicy lb = ExecPolicy::Hybrid(8);
  Register("load_balance", lb);

  ExecPolicy rr = ExecPolicy::Hybrid(8);
  rr.load_balance = false;
  Register("round_robin", rr);

  ExecPolicy split = ExecPolicy::Hybrid(8);
  split.split_probe_stage = true;
  Register("split_hash_router", split);

  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("\n=== Routing-policy ablation (hybrid join, 8 CPU workers + 2 "
              "GPUs) ===\n");
  for (const auto& [name, t] : modeled_s) {
    std::printf("%-20s %8.2f ms modeled\n", name.c_str(), t * 1e3);
  }
  std::printf("expected: load-balance <= round-robin (heterogeneous service "
              "times); the split plan pays an extra pack/route/unpack stage\n");
  return 0;
}
