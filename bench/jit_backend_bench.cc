// JIT backend microbenchmark: rows/sec of the row interpreter (tier 0), the
// vectorized batch backend (tier 1) and the native codegen backend (tier 2,
// out-of-process compile + dlopen) on the two pipeline shapes that dominate
// SSB execution — filter→emit (a split plan's stage A) and filter→probe→agg
// (the fused fact pipeline). Output is JSON so the speedups — and the kernel
// cache's cold-compile vs warm-load latencies — are recorded numbers, not
// claims.
//
// Usage:
//   bench_jit_backend_bench [--check] [--rows N]
//
// --check exits nonzero if (a) the vectorized tier is not faster than the
// interpreter on the filter-heavy microbench, or (b) the native tier is slower
// than the vectorized tier on the fused probe/agg shape — unless codegen fell
// back for a named, counted reason (missing compiler, unprovable shape), which
// is reported and tolerated: fallback is a mode, not a failure.
//
// Honors HETEX_KERNEL_DIR / HETEX_COMPILER_CMD: pointing the bench at a warm
// kernel directory makes the first build a disk load (reported as such, with
// zero compiler invocations) — the CI restart-reuse smoke does exactly that.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "jit/codegen.h"
#include "jit/interpreter.h"
#include "jit/kernel_cache.h"
#include "jit/program.h"
#include "jit/vectorizer.h"
#include "memory/memory_manager.h"
#include "sim/topology.h"

namespace hetex {
namespace {

using jit::AggFunc;
using jit::OpCode;
using jit::PipelineProgram;
using jit::ProgramBuilder;

/// Finalizes a program for all tiers without a device provider: validation is
/// assumed (generated here), tier 1 comes straight from the vectorizer, and
/// the binding schema (four int32 columns, bound positionally by MakeData) is
/// attached so the tier-2 codegen can specialize column loads.
PipelineProgram Lower(PipelineProgram p) {
  p.finalized = true;
  p.n_input_cols = 4;
  p.input_widths = {4, 4, 4, 4};
  jit::VectorizeResult vec = jit::TryVectorize(p);
  HETEX_CHECK(vec.program != nullptr)
      << "bench pipeline failed to vectorize: " << vec.reason;
  p.vec = vec.program;
  p.tier = jit::ExecTier::kVectorized;
  return p;
}

/// filter→emit: load two int32 columns, keep rows with a < threshold (~50%),
/// emit both survivors' columns. The shape of a split plan's stage A.
PipelineProgram FilterEmitProgram() {
  ProgramBuilder b;
  const int a = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, a, 0);
  const int k = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, k, 1);
  const int threshold = b.AllocReg();
  b.EmitOp(OpCode::kConst, threshold, 0, 0, 0, 25);  // ~50% pass
  const int pred = b.AllocReg();
  b.EmitOp(OpCode::kCmpLt, pred, a, threshold);
  b.EmitOp(OpCode::kFilter, pred);
  const int first = b.AllocReg();
  b.AllocReg();
  b.EmitOp(OpCode::kShl, first, a, 0, 0, 0);      // mov
  b.EmitOp(OpCode::kShl, first + 1, k, 0, 0, 0);  // mov
  b.EmitOp(OpCode::kEmit, first, 2);
  return Lower(b.Finalize("bench.filter-emit"));
}

/// filter→probe→agg, the fused fact pipeline in its SSB Q1 form: a
/// three-predicate conjunctive filter (quantity < 25, 1 <= discount <= 3,
/// ~25% combined), a probe of the date dimension, and SUM(price * discount
/// + payload) + COUNT.
PipelineProgram FilterProbeAggProgram() {
  ProgramBuilder b;
  const int qty = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, qty, 0);
  const int disc = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, disc, 2);
  const int c25 = b.AllocReg();
  b.EmitOp(OpCode::kConst, c25, 0, 0, 0, 25);
  const int c1 = b.AllocReg();
  b.EmitOp(OpCode::kConst, c1, 0, 0, 0, 1);
  const int c3 = b.AllocReg();
  b.EmitOp(OpCode::kConst, c3, 0, 0, 0, 3);
  const int p0 = b.AllocReg();
  b.EmitOp(OpCode::kCmpLt, p0, qty, c25);
  const int p1 = b.AllocReg();
  b.EmitOp(OpCode::kCmpGe, p1, disc, c1);
  const int p2 = b.AllocReg();
  b.EmitOp(OpCode::kCmpLe, p2, disc, c3);
  const int p01 = b.AllocReg();
  b.EmitOp(OpCode::kAnd, p01, p0, p1);
  const int pred = b.AllocReg();
  b.EmitOp(OpCode::kAnd, pred, p01, p2);
  b.EmitOp(OpCode::kFilter, pred);
  // Survivor columns resolve after the filter, as the query compiler emits them.
  const int k = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, k, 1);
  const int price = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, price, 3);
  const int revenue = b.AllocReg();
  b.EmitOp(OpCode::kMul, revenue, price, disc);

  const int iter = b.AllocReg();
  b.EmitOp(OpCode::kHtProbeInit, iter, k, 0);
  const int loop = b.NewLabel();
  const int exit = b.NewLabel();
  b.Bind(loop);
  b.EmitOp(OpCode::kJmpIfNeg, iter, exit);
  const int payload = b.AllocReg();
  b.EmitOp(OpCode::kHtLoadPayload, payload, iter, 0, 1);
  const int keyed = b.AllocReg();
  b.EmitOp(OpCode::kAdd, keyed, revenue, payload);
  const int sum = b.AllocLocalAcc(AggFunc::kSum);
  b.EmitOp(OpCode::kAggLocal, sum, keyed, static_cast<int>(AggFunc::kSum));
  const int cnt = b.AllocLocalAcc(AggFunc::kCount);
  b.EmitOp(OpCode::kAggLocal, cnt, payload, static_cast<int>(AggFunc::kCount));
  b.EmitOp(OpCode::kHtIterNext, iter, k, 0);
  b.EmitOp(OpCode::kJmp, loop);
  b.Bind(exit);
  return Lower(b.Finalize("bench.filter-probe-agg"));
}

struct BenchData {
  std::vector<int32_t> col_a;     // col 0: filter_emit value / Q1 quantity
  std::vector<int32_t> col_k;     // col 1: join key
  std::vector<int32_t> col_disc;  // col 2: Q1 discount (0..10)
  std::vector<int32_t> col_price; // col 3: Q1 price
  std::vector<jit::ColumnBinding> bindings;
  uint64_t rows;
};

BenchData MakeData(uint64_t rows, uint64_t key_domain) {
  BenchData d;
  d.rows = rows;
  d.col_a.resize(rows);
  d.col_k.resize(rows);
  d.col_disc.resize(rows);
  d.col_price.resize(rows);
  Rng rng(42);
  for (uint64_t i = 0; i < rows; ++i) {
    d.col_a[i] = static_cast<int32_t>(i % 50);  // quantity-like
    d.col_k[i] = static_cast<int32_t>(rng.Uniform(key_domain) + 1);
    d.col_disc[i] = static_cast<int32_t>(rng.Uniform(11));
    d.col_price[i] = static_cast<int32_t>(rng.Uniform(100000));
  }
  d.bindings.push_back({reinterpret_cast<const std::byte*>(d.col_a.data()), 4});
  d.bindings.push_back({reinterpret_cast<const std::byte*>(d.col_k.data()), 4});
  d.bindings.push_back({reinterpret_cast<const std::byte*>(d.col_disc.data()), 4});
  d.bindings.push_back({reinterpret_cast<const std::byte*>(d.col_price.data()), 4});
  return d;
}

/// Tier-2 build telemetry for one shape: cold build latency (a compiler run or
/// a verified disk load) and warm reload latency (a second cache instance on
/// the same directory — the restart path, always compile-free).
struct NativeBuild {
  std::shared_ptr<jit::NativeKernel> kernel;  // null on codegen fallback
  std::string fallback_reason;                // named, when kernel is null/failed
  const char* origin = "none";                // "compiled" | "disk"
  double first_build_seconds = 0;
  double warm_load_seconds = 0;
};

struct Shape {
  std::string name;
  PipelineProgram program;
  jit::JoinHashTable* ht = nullptr;  // probe shapes only
  bool has_emit = false;
  NativeBuild native;
};

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Generates, builds and warm-reloads the tier-2 kernel for a shape.
NativeBuild BuildNative(const PipelineProgram& program,
                        const jit::CodegenOptions& opts) {
  NativeBuild b;
  const jit::GenerateResult gen = jit::GenerateSource(program);
  if (gen.source.empty()) {
    b.fallback_reason = gen.reason;
    return b;
  }
  {
    jit::KernelCache cold(opts);
    const auto t0 = std::chrono::steady_clock::now();
    b.kernel = cold.GetOrBuild(gen, program.label);
    b.first_build_seconds = Seconds(t0, std::chrono::steady_clock::now());
  }
  if (b.kernel->failed()) {
    b.fallback_reason = b.kernel->error;
    b.kernel.reset();
    return b;
  }
  b.origin =
      b.kernel->origin == jit::NativeKernel::Origin::kDisk ? "disk" : "compiled";
  {
    jit::KernelCache warm(opts);
    const auto t0 = std::chrono::steady_clock::now();
    auto reloaded = warm.GetOrBuild(gen, program.label);
    b.warm_load_seconds = Seconds(t0, std::chrono::steady_clock::now());
    HETEX_CHECK(reloaded->ready() && warm.counters().compiler_invocations == 0)
        << "warm reload of '" << program.label << "' was not compile-free";
  }
  return b;
}

enum class Tier { kInterpreter, kVectorized, kNative };

/// Runs one shape through one tier `iters` times; returns rows/sec and fills
/// `stats_out` with one iteration's CostStats (for the parity cross-check).
double Throughput(const Shape& shape, const BenchData& data, Tier tier,
                  int iters, sim::CostStats* stats_out) {
  PipelineProgram p = shape.program;
  p.tier = tier == Tier::kVectorized ? jit::ExecTier::kVectorized
                                     : jit::ExecTier::kInterpreter;
  p.native = tier == Tier::kNative ? shape.native.kernel : nullptr;

  // Reusable emit sink: capacity-bounded, recycled by on_full like a real pack.
  std::vector<int64_t> out_a(1 << 16), out_k(1 << 16);
  jit::EmitTarget emit;
  emit.cols.push_back({reinterpret_cast<std::byte*>(out_a.data()), 8});
  emit.cols.push_back({reinterpret_cast<std::byte*>(out_k.data()), 8});
  emit.capacity = out_a.size();
  emit.on_full = [&emit] { emit.ResetCursor(); };

  void* ht_slots[1] = {shape.ht};
  double best = 0;
  for (int it = 0; it < iters; ++it) {
    sim::CostStats stats;
    int64_t accs[jit::kMaxLocalAccs] = {};
    jit::ExecCtx ctx;
    ctx.cols = data.bindings.data();
    ctx.n_cols = static_cast<int>(data.bindings.size());
    ctx.emit = &emit;
    ctx.local_accs = accs;
    ctx.ht_slots = ht_slots;
    ctx.stats = &stats;
    emit.ResetCursor();

    const auto t0 = std::chrono::steady_clock::now();
    const Status st = jit::Run(p, ctx, data.rows);
    const auto t1 = std::chrono::steady_clock::now();
    HETEX_CHECK(st.ok()) << st.ToString();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const double rate = static_cast<double>(data.rows) / secs;
    if (rate > best) best = rate;
    *stats_out = stats;
  }
  return best;
}

void CheckStatsEqual(const sim::CostStats& a, const sim::CostStats& b,
                     const std::string& name, const char* tier) {
  HETEX_CHECK(a.tuples == b.tuples && a.ops == b.ops &&
              a.bytes_read == b.bytes_read && a.bytes_written == b.bytes_written &&
              a.near_accesses == b.near_accesses &&
              a.mid_accesses == b.mid_accesses &&
              a.far_accesses == b.far_accesses && a.atomics == b.atomics)
      << "tier CostStats diverge on " << name << " (" << tier << ")";
}

}  // namespace
}  // namespace hetex

int main(int argc, char** argv) {
  using namespace hetex;  // NOLINT — bench brevity

  bool check = false;
  uint64_t rows = 1 << 21;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strcmp(argv[i], "--rows") == 0 && i + 1 < argc) {
      rows = std::strtoull(argv[++i], nullptr, 10);
    }
  }

  constexpr uint64_t kBuildRows = 2556;  // the SSB date dimension (7 years)
  const BenchData data = MakeData(rows, kBuildRows);

  memory::MemoryManager mm(/*node=*/0, /*capacity=*/1ull << 30);
  jit::JoinHashTable ht(&mm, kBuildRows, /*payload_width=*/1);
  for (uint64_t i = 0; i < kBuildRows; ++i) {
    const int64_t key = static_cast<int64_t>(i + 1);
    const int64_t payload = static_cast<int64_t>(i & 0xFF);
    ht.Insert(key, &payload);
  }

  // Tier-2 build: HETEX_KERNEL_DIR / HETEX_COMPILER_CMD are honored, so a warm
  // directory turns the cold build into a verified disk load (zero compiles).
  jit::CodegenOptions copts = jit::CodegenOptions::FromEnv();
  copts.enabled = true;
  copts.async = false;  // the bench times the build, it doesn't hide it

  std::vector<Shape> shapes;
  shapes.push_back({"filter_emit", FilterEmitProgram(), nullptr, true, {}});
  shapes.push_back({"filter_probe_agg", FilterProbeAggProgram(), &ht, false, {}});
  for (Shape& shape : shapes) shape.native = BuildNative(shape.program, copts);

  constexpr int kIters = 5;
  bool check_failed = false;
  std::printf("{\n  \"rows\": %" PRIu64 ",\n", rows);
  const jit::CodegenCounters cc = jit::GetCodegenCounters();
  std::printf("  \"kernel_cache\": {\"compiler_invocations\": %" PRIu64
              ", \"disk_hits\": %" PRIu64 ", \"fallbacks\": %" PRIu64 "},\n",
              cc.compiler_invocations, cc.disk_hits, cc.fallbacks);
  std::printf("  \"benchmarks\": [\n");
  for (size_t i = 0; i < shapes.size(); ++i) {
    const Shape& shape = shapes[i];
    sim::CostStats interp_stats, vec_stats, native_stats;
    const double interp =
        Throughput(shape, data, Tier::kInterpreter, kIters, &interp_stats);
    const double vec =
        Throughput(shape, data, Tier::kVectorized, kIters, &vec_stats);
    const double speedup = vec / interp;

    // Tier parity is part of the contract: same results, same CostStats.
    CheckStatsEqual(interp_stats, vec_stats, shape.name, "vectorized");

    std::printf("    {\"name\": \"%s\",\n"
                "     \"interpreter_rows_per_sec\": %.3e,\n"
                "     \"vectorized_rows_per_sec\": %.3e,\n"
                "     \"speedup\": %.2f,\n",
                shape.name.c_str(), interp, vec, speedup);
    if (shape.native.kernel != nullptr) {
      const double native =
          Throughput(shape, data, Tier::kNative, kIters, &native_stats);
      CheckStatsEqual(interp_stats, native_stats, shape.name, "native");
      const double native_speedup = native / vec;
      std::printf("     \"native_rows_per_sec\": %.3e,\n"
                  "     \"native_speedup_vs_vectorized\": %.2f,\n"
                  "     \"native_origin\": \"%s\",\n"
                  "     \"native_first_build_seconds\": %.4f,\n"
                  "     \"native_warm_load_seconds\": %.6f}%s\n",
                  native, native_speedup, shape.native.origin,
                  shape.native.first_build_seconds,
                  shape.native.warm_load_seconds,
                  i + 1 < shapes.size() ? "," : "");
      // Gates: the fused probe/agg shape, where per-tuple control flow is
      // where specialized native code must beat batch primitives — and
      // filter_emit, where tier 2 batches survivors through AppendBatch in
      // 512-row chunks (same path tier 1 rides), so native must at least
      // match the vectorizer there too.
      if (check &&
          (shape.name == "filter_probe_agg" || shape.name == "filter_emit") &&
          native_speedup < 1.0) {
        check_failed = true;
      }
    } else {
      std::printf("     \"native_fallback\": \"%s\"}%s\n",
                  shape.native.fallback_reason.c_str(),
                  i + 1 < shapes.size() ? "," : "");
      std::fprintf(stderr, "note: tier-2 fallback on %s: %s (counted, gate waived)\n",
                   shape.name.c_str(), shape.native.fallback_reason.c_str());
    }
    if (check && shape.name == "filter_emit" && speedup <= 1.0) {
      check_failed = true;
    }
  }
  std::printf("  ]\n}\n");

  if (check_failed) {
    std::fprintf(stderr,
                 "FAIL: a faster tier lost to its fallback tier on the "
                 "microbench it must win\n");
    return 1;
  }
  return 0;
}
