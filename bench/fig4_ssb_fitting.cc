// Figure 4 — SSB with GPU-fitting working sets (paper SF100, scaled to SF0.2):
// execution time of DBMS C, Proteus CPU, Proteus GPU and DBMS G for all 13 SSB
// queries, with the working set pre-loaded in GPU device memory for the GPU
// systems. Reported times are modeled latencies on the simulated paper server.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"

namespace {

using hetex::bench::SsbBenchEnv;
using hetex::plan::ExecPolicy;

constexpr double kScale = 0.2;                 // paper SF100, scaled 1:500
constexpr uint64_t kGpuCapacity = 8ull << 30;  // everything fits (the regime)

SsbBenchEnv* env = nullptr;
std::map<std::string, double> modeled_ms;  // "system/query" -> modeled ms

void Note(const std::string& key, const hetex::core::QueryResult& r) {
  modeled_ms[key] = r.status.ok() ? r.modeled_seconds * 1e3 : -1.0;
}

void RegisterAll() {
  const auto queries = env->ssb->AllQueries();

  // Host-resident engines first (placement switches once to GPU after them).
  for (const auto& spec : queries) {
    hetex::bench::RegisterModeled("fig4/DBMS_C/" + spec.name, [spec] {
      auto r = env->RunDbmsC(spec);
      Note("DBMS_C/" + spec.name, r);
      return r;
    });
  }
  for (const auto& spec : queries) {
    hetex::bench::RegisterModeled("fig4/Proteus_CPU/" + spec.name, [spec] {
      auto r = env->RunProteus(spec, ExecPolicy::CpuOnly());
      Note("Proteus_CPU/" + spec.name, r);
      return r;
    });
  }
  for (const auto& spec : queries) {
    hetex::bench::RegisterModeled("fig4/Proteus_GPU/" + spec.name, [spec] {
      if (!env->fact_on_gpu()) env->PlaceFactOnGpus();
      ExecPolicy policy = ExecPolicy::GpuOnly();
      policy.data_on_gpu = true;
      auto r = env->RunProteus(spec, policy);
      Note("Proteus_GPU/" + spec.name, r);
      return r;
    });
  }
  for (const auto& spec : queries) {
    hetex::bench::RegisterModeled("fig4/DBMS_G/" + spec.name, [spec] {
      auto r = env->RunDbmsG(spec, /*data_on_gpu=*/true);
      Note("DBMS_G/" + spec.name, r);
      return r;
    });
  }
}

void PrintSummary() {
  std::printf("\n=== Figure 4 summary (modeled ms; paper shape: GPU engines win, "
              "Proteus >= its per-device rival) ===\n");
  std::printf("%-6s %12s %12s %12s %12s %10s %10s\n", "query", "DBMS_C",
              "ProteusCPU", "ProteusGPU", "DBMS_G", "GPUspeedup", "CPUspeedup");
  double max_gpu_speedup = 0;
  double max_cpu_speedup = 0;
  for (const auto& spec : env->ssb->AllQueries()) {
    const double c = modeled_ms["DBMS_C/" + spec.name];
    const double pc = modeled_ms["Proteus_CPU/" + spec.name];
    const double pg = modeled_ms["Proteus_GPU/" + spec.name];
    const double g = modeled_ms["DBMS_G/" + spec.name];
    const double gpu_speedup = (g > 0 && pg > 0) ? g / pg : 0;
    const double cpu_speedup = (c > 0 && pc > 0) ? c / pc : 0;
    max_gpu_speedup = std::max(max_gpu_speedup, gpu_speedup);
    max_cpu_speedup = std::max(max_cpu_speedup, cpu_speedup);
    auto fmt = [](double v) { return v < 0 ? std::string("DNF") : std::to_string(v); };
    std::printf("%-6s %12.2f %12.2f %12.2f %12s %9.2fx %9.2fx\n",
                spec.name.c_str(), c, pc, pg, fmt(g).c_str(), gpu_speedup,
                cpu_speedup);
  }
  std::printf("paper: Proteus up to 2x vs CPU DBMS, up to 10.8x vs GPU DBMS "
              "(SF100).  measured max: %.1fx CPU, %.1fx GPU\n",
              max_cpu_speedup, max_gpu_speedup);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  SsbBenchEnv e(kScale, /*paper_sf=*/100, kGpuCapacity);
  env = &e;
  RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  PrintSummary();
  return 0;
}
