#ifndef HETEX_TESTS_TEST_UTIL_H_
#define HETEX_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <memory>

#include "core/executor.h"
#include "core/system.h"
#include "ssb/reference.h"
#include "ssb/ssb.h"

namespace hetex::test {

/// Iteration scale knob shared by the stress and fuzz harnesses: small by
/// default (CI-friendly), larger for local soaks
/// (`FUZZ_ITERS=100 ./hetex_tests --gtest_filter='*Fuzz*:*Stress*'`).
inline int FuzzIters(int dflt) {
  const char* env = std::getenv("FUZZ_ITERS");
  if (env == nullptr) return dflt;
  const int v = std::atoi(env);
  return v > 0 ? v : dflt;
}

/// True when the CI chaos job runs the suite under environment-driven fault
/// injection (HETEX_FAULTS=1). Stress/fuzz assertions that demand an OK status
/// relax to "OK or a named fault" in that mode — correctness (parity of OK
/// results, leak-freedom) is still asserted unconditionally.
inline bool FaultsEnabled() {
  const char* env = std::getenv("HETEX_FAULTS");
  return env != nullptr && std::atoi(env) != 0;
}

/// Small simulated server + tiny SSB database for fast tests.
struct TestEnv {
  /// `reuse` defaults to the env-resolved knobs (HETEX_SHARED_BUILDS /
  /// HETEX_RESULT_CACHE_MB) so the chaos job can run the whole suite
  /// reuse-enabled; tests pin explicit options where the mode matters.
  explicit TestEnv(uint64_t lineorder_rows = 40'000, int sockets = 2, int gpus = 2,
                   core::ReuseOptions reuse = core::ReuseOptions::FromEnv()) {
    core::System::Options opts;
    opts.reuse = reuse;
    opts.topology.num_sockets = sockets;
    opts.topology.cores_per_socket = 2;
    opts.topology.num_gpus = gpus;
    opts.topology.gpu_sim_threads = 2;
    opts.topology.host_capacity_per_socket = 4ull << 30;
    opts.topology.gpu_capacity = 1ull << 30;
    opts.blocks.block_bytes = 64 << 10;
    opts.blocks.host_arena_blocks = 256;
    opts.blocks.gpu_arena_blocks = 128;
    system = std::make_unique<core::System>(opts);

    ssb::Ssb::Options ssb_opts;
    ssb_opts.lineorder_rows = lineorder_rows;
    ssb_opts.scale = 0.002;
    ssb = std::make_unique<ssb::Ssb>(ssb_opts, &system->catalog());
    PlaceAllOnHost();
  }

  void PlaceAllOnHost() {
    for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
      HETEX_CHECK_OK(
          system->catalog().at(name).Place(system->HostNodes(), &system->memory()));
    }
  }

  core::QueryResult Run(const plan::QuerySpec& spec,
                        const plan::ExecPolicy& policy) {
    core::QueryExecutor executor(system.get());
    return executor.Execute(spec, policy);
  }

  std::vector<std::vector<int64_t>> Reference(const plan::QuerySpec& spec) {
    return ssb::ReferenceExecute(spec, system->catalog());
  }

  /// ExecPolicy with test-friendly block granularity.
  static plan::ExecPolicy Tune(plan::ExecPolicy policy) {
    policy.block_rows = 4096;
    return policy;
  }

  std::unique_ptr<core::System> system;
  std::unique_ptr<ssb::Ssb> ssb;
};

}  // namespace hetex::test

#endif  // HETEX_TESTS_TEST_UTIL_H_
