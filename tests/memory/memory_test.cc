#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "memory/block_manager.h"
#include "memory/memory_manager.h"
#include "sim/topology.h"

namespace hetex::memory {
namespace {

TEST(MemoryManager, AllocateTracksUsage) {
  MemoryManager mm(0, 1 << 20);
  auto r = mm.Allocate(1000);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(mm.used(), 1024u);  // rounded to 64
  mm.Free(r.value());
  EXPECT_EQ(mm.used(), 0u);
}

TEST(MemoryManager, AllocationIsAligned) {
  MemoryManager mm(0, 1 << 20);
  auto r = mm.Allocate(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(r.value()) % 64, 0u);
  mm.Free(r.value());
}

TEST(MemoryManager, CapacityEnforced) {
  MemoryManager mm(0, 4096);
  auto a = mm.Allocate(4096);
  ASSERT_TRUE(a.ok());
  auto b = mm.Allocate(64);
  EXPECT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kOutOfMemory);
  mm.Free(a.value());
  EXPECT_TRUE(mm.Allocate(64).ok());
}

TEST(MemoryManager, ModeledChargeWithoutAllocation) {
  MemoryManager mm(0, 1000);
  EXPECT_TRUE(mm.ChargeModeled(900).ok());
  EXPECT_FALSE(mm.ChargeModeled(200).ok());
  mm.ReleaseModeled(900);
  EXPECT_EQ(mm.used(), 0u);
}

TEST(BlockManager, AcquireReleaseRecycles) {
  BlockManager bm(0, 4096, 4);
  EXPECT_EQ(bm.free_blocks(), 4u);
  Block* b = bm.Acquire();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->capacity, 4096u);
  EXPECT_EQ(b->node, 0);
  EXPECT_EQ(bm.in_use(), 1u);
  bm.Release(b);
  EXPECT_EQ(bm.free_blocks(), 4u);
}

TEST(BlockManager, ExhaustionReturnsNull) {
  BlockManager bm(0, 64, 2);
  Block* a = bm.Acquire();
  Block* b = bm.Acquire();
  EXPECT_EQ(bm.Acquire(), nullptr);
  bm.Release(a);
  bm.Release(b);
}

TEST(BlockManager, RefcountedMulticastRelease) {
  BlockManager bm(0, 64, 2);
  Block* b = bm.Acquire();
  BlockManager::AddRef(b);  // two logical holders
  bm.Release(b);
  EXPECT_EQ(bm.in_use(), 1u);  // still held
  bm.Release(b);
  EXPECT_EQ(bm.in_use(), 0u);
}

TEST(BlockManager, AcquireBatch) {
  BlockManager bm(0, 64, 8);
  Block* out[5];
  EXPECT_EQ(bm.AcquireBatch(out, 5), 5u);
  EXPECT_EQ(bm.free_blocks(), 3u);
  for (Block* b : out) bm.Release(b);
}

class BlockRegistryTest : public ::testing::Test {
 protected:
  BlockRegistryTest()
      : topo_(sim::Topology::Options{}),
        registry_(topo_, {/*block_bytes=*/4096, /*host=*/32, /*gpu=*/16,
                          /*remote_batch=*/4}) {}
  sim::Topology topo_;
  BlockRegistry registry_;
};

TEST_F(BlockRegistryTest, LocalAcquireSkipsRemotePath) {
  Block* b = registry_.Acquire(0, 0);
  EXPECT_EQ(registry_.remote_roundtrips(), 0u);
  registry_.Release(b, 0);
}

TEST_F(BlockRegistryTest, RemoteAcquisitionBatches) {
  const sim::MemNodeId gpu_node = topo_.gpu(0).mem;
  const sim::MemNodeId host = topo_.socket(0).mem;
  std::vector<Block*> got;
  for (int i = 0; i < 4; ++i) got.push_back(registry_.Acquire(gpu_node, host));
  // 4 acquisitions from one batch: exactly one remote round-trip.
  EXPECT_EQ(registry_.remote_roundtrips(), 1u);
  got.push_back(registry_.Acquire(gpu_node, host));
  EXPECT_EQ(registry_.remote_roundtrips(), 2u);
  for (Block* b : got) registry_.Release(b, host);
  registry_.FlushReleases();
}

TEST_F(BlockRegistryTest, RemoteReleasesBatchToo) {
  const sim::MemNodeId gpu_node = topo_.gpu(0).mem;
  const sim::MemNodeId host = topo_.socket(0).mem;
  std::vector<Block*> got;
  for (int i = 0; i < 4; ++i) got.push_back(registry_.Acquire(gpu_node, host));
  const uint64_t before = registry_.remote_roundtrips();
  for (int i = 0; i < 3; ++i) registry_.Release(got[i], host);
  EXPECT_EQ(registry_.remote_roundtrips(), before);  // buffered, no trip yet
  registry_.Release(got[3], host);                    // 4th hits batch size
  EXPECT_EQ(registry_.remote_roundtrips(), before + 1);
}

TEST_F(BlockRegistryTest, FlushReturnsEverything) {
  const sim::MemNodeId gpu_node = topo_.gpu(0).mem;
  const sim::MemNodeId host = topo_.socket(0).mem;
  Block* b = registry_.Acquire(gpu_node, host);
  registry_.Release(b, host);
  registry_.FlushReleases();
  EXPECT_EQ(registry_.manager(gpu_node).in_use(), 0u);
}

TEST_F(BlockRegistryTest, StarvedAcquireReclaimsParkedCacheBlocks) {
  const sim::MemNodeId gpu_node = topo_.gpu(0).mem;  // 16-block arena
  const sim::MemNodeId host = topo_.socket(0).mem;
  // Drain the whole GPU arena through the remote path: 16 acquired, and every
  // refill leaves up to remote_batch-1 blocks parked in the prefetch stash.
  std::vector<Block*> held;
  for (int i = 0; i < 13; ++i) held.push_back(registry_.Acquire(gpu_node, host));
  // 13 handed out, 3 parked in the host->gpu prefetch stash: the arena itself
  // is empty. Release 2 remotely — sub-batch, so they park in rc.released too.
  registry_.Release(held.back(), host);
  held.pop_back();
  registry_.Release(held.back(), host);
  held.pop_back();
  EXPECT_EQ(registry_.manager(gpu_node).free_blocks(), 0u);
  // GPU-local acquires must reclaim the parked blocks instead of stalling
  // until the 30s starvation abort: the first two sweep the release batch,
  // the third escalates to confiscating the idle prefetch stash (~5ms).
  std::vector<Block*> local;
  for (int i = 0; i < 3; ++i) {
    Block* b = registry_.Acquire(gpu_node, gpu_node);
    ASSERT_NE(b, nullptr);
    local.push_back(b);
  }
  for (Block* b : local) registry_.Release(b, gpu_node);
  for (Block* b : held) registry_.Release(b, host);
  registry_.FlushReleases();
  EXPECT_EQ(registry_.manager(gpu_node).in_use(), 0u);
}

// ---------------------------------------------------------------------------
// Bounded backpressure: an exhausted arena can delay an Acquire, never hang it.
// ---------------------------------------------------------------------------

TEST(BlockRegistryBackpressure, SustainedExhaustionTimesOutWithNamedStatus) {
  sim::Topology topo{sim::Topology::Options{}};
  BlockRegistry registry(topo,
                         {.block_bytes = 4096,
                          .host_arena_blocks = 4,
                          .gpu_arena_blocks = 4,
                          .remote_batch = 2,
                          .acquire_timeout_seconds = 0.2});
  const sim::MemNodeId host = topo.socket(0).mem;
  std::vector<Block*> held;
  for (int i = 0; i < 4; ++i) {
    Block* b = registry.Acquire(host, host);
    ASSERT_NE(b, nullptr);
    held.push_back(b);
  }
  // Arena empty, nothing reclaimable anywhere: the wait is bounded and the
  // failure is a named status, not the old 30 s abort.
  Status error = Status::OK();
  Block* starved = registry.Acquire(host, host, &error);
  EXPECT_EQ(starved, nullptr);
  EXPECT_EQ(error.code(), StatusCode::kResourceExhausted) << error.ToString();

  // Releasing makes the arena healthy again for the next caller.
  for (Block* b : held) registry.Release(b, host);
  Block* again = registry.Acquire(host, host);
  ASSERT_NE(again, nullptr);
  registry.Release(again, host);
  EXPECT_EQ(registry.manager(host).in_use(), 0u);
}

TEST(BlockRegistryBackpressure, CancelFlagWakesBlockedAcquire) {
  sim::Topology topo{sim::Topology::Options{}};
  BlockRegistry registry(topo,
                         {.block_bytes = 4096,
                          .host_arena_blocks = 4,
                          .gpu_arena_blocks = 4,
                          .remote_batch = 2,
                          .acquire_timeout_seconds = 30.0});
  const sim::MemNodeId host = topo.socket(0).mem;
  std::vector<Block*> held;
  for (int i = 0; i < 4; ++i) held.push_back(registry.Acquire(host, host));

  std::atomic<bool> cancel{false};
  Status error = Status::OK();
  Block* result = nullptr;
  std::thread blocked([&] {
    result = registry.Acquire(host, host, &error, &cancel);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cancel.store(true);
  blocked.join();  // wakes well before the 30 s bound
  EXPECT_EQ(result, nullptr);
  EXPECT_EQ(error.code(), StatusCode::kCancelled) << error.ToString();
  for (Block* b : held) registry.Release(b, host);
}

TEST(BlockRegistryBackpressure, InjectedStagingSpikeFailsFastWithoutWaiting) {
  sim::FaultOptions fopts;
  fopts.enabled = true;
  fopts.staging_fault_rate = 1.0;
  sim::FaultInjector injector(fopts);

  sim::Topology topo{sim::Topology::Options{}};
  BlockRegistry registry(topo, {.block_bytes = 4096,
                                .host_arena_blocks = 4,
                                .gpu_arena_blocks = 4,
                                .remote_batch = 2});
  registry.set_fault_injector(&injector);
  const sim::MemNodeId host = topo.socket(0).mem;
  const size_t free_before = registry.manager(host).free_blocks();

  Status error = Status::OK();
  Block* b = registry.Acquire(host, host, &error);
  EXPECT_EQ(b, nullptr);
  EXPECT_EQ(error.code(), StatusCode::kResourceExhausted) << error.ToString();
  EXPECT_EQ(injector.counters().staging_faults, 1u);
  // The spike rejected the request before touching the (healthy) arena.
  EXPECT_EQ(registry.manager(host).free_blocks(), free_before);
}

TEST_F(BlockRegistryTest, ConcurrentAcquireReleaseIsSafe) {
  const sim::MemNodeId host0 = topo_.socket(0).mem;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        Block* b = registry_.Acquire(host0, host0);
        ASSERT_NE(b, nullptr);
        registry_.Release(b, host0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry_.manager(host0).in_use(), 0u);
}

}  // namespace
}  // namespace hetex::memory
