#include "common/status.h"

#include <gtest/gtest.h>

namespace hetex {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::OutOfMemory("arena full");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(st.message(), "arena full");
  EXPECT_EQ(st.ToString(), "OutOfMemory: arena full");
}

TEST(Status, EveryFactoryProducesMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    HETEX_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace hetex
