#include "common/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace hetex {
namespace {

TEST(MpmcQueue, FifoOrder) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.Pop(), i);
}

TEST(MpmcQueue, TryPushFailsWhenFull) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(MpmcQueue, TryPopOnEmptyReturnsNullopt) {
  MpmcQueue<int> q;
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

TEST(MpmcQueue, CloseWakesConsumersAndDrains) {
  MpmcQueue<int> q;
  EXPECT_TRUE(q.Push(1));
  q.Close();
  EXPECT_EQ(q.Pop(), 1);            // drains queued items first
  EXPECT_EQ(q.Pop(), std::nullopt);  // then reports end-of-stream
  EXPECT_FALSE(q.Push(2));           // producers fail after close
}

TEST(MpmcQueue, BlockedConsumerWakesOnClose) {
  MpmcQueue<int> q;
  std::thread consumer([&] { EXPECT_EQ(q.Pop(), std::nullopt); });
  q.Close();
  consumer.join();
}

TEST(MpmcQueue, ConcurrentProducersConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  MpmcQueue<int> q(64);  // small capacity: exercises backpressure
  std::atomic<int64_t> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  const int64_t n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(MpmcQueue, BackpressureBlocksProducerUntilPop) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(2));
    pushed.store(true);
  });
  // The producer must be blocked on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop(), 2);
}

}  // namespace
}  // namespace hetex
