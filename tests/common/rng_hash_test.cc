#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/rng.h"

namespace hetex {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += (a.Next() != b.Next());
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBool(0.25);
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.02);
}

TEST(HashMix64, InjectiveOnSmallDomain) {
  std::set<uint64_t> seen;
  for (uint64_t k = 0; k < 100000; ++k) seen.insert(HashMix64(k));
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(HashMix64, AvalanchesLowBits) {
  // Consecutive keys should land in different buckets of a small table.
  std::set<uint64_t> buckets;
  for (uint64_t k = 0; k < 64; ++k) buckets.insert(HashMix64(k) & 1023);
  EXPECT_GT(buckets.size(), 55u);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(HashCombine(HashMix64(1), 2), HashCombine(HashMix64(2), 1));
}

}  // namespace
}  // namespace hetex
