#include "jit/hash_table.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace hetex::jit {
namespace {

class HashTableTest : public ::testing::Test {
 protected:
  HashTableTest() : mm_(0, 256ull << 20) {}
  memory::MemoryManager mm_;
};

TEST_F(HashTableTest, InsertAndProbeSingleMatch) {
  JoinHashTable ht(&mm_, 16, 2);
  int64_t payload[2] = {100, 200};
  ht.Insert(7, payload);
  uint64_t hops = 0;
  int64_t e = ht.FindKeyFrom(ht.ProbeHead(7), 7, &hops);
  ASSERT_GE(e, 0);
  EXPECT_EQ(ht.PayloadOf(e)[0], 100);
  EXPECT_EQ(ht.PayloadOf(e)[1], 200);
}

TEST_F(HashTableTest, MissingKeyProbesToMinusOne) {
  JoinHashTable ht(&mm_, 16, 0);
  ht.Insert(1, nullptr);
  uint64_t hops = 0;
  EXPECT_EQ(ht.FindKeyFrom(ht.ProbeHead(999), 999, &hops), -1);
}

TEST_F(HashTableTest, DuplicateKeysChainAllMatches) {
  JoinHashTable ht(&mm_, 16, 1);
  for (int64_t i = 0; i < 5; ++i) {
    int64_t payload = i * 10;
    ht.Insert(42, &payload);
  }
  uint64_t hops = 0;
  std::vector<int64_t> found;
  for (int64_t e = ht.FindKeyFrom(ht.ProbeHead(42), 42, &hops); e >= 0;
       e = ht.FindKeyFrom(ht.NextEntry(e), 42, &hops)) {
    found.push_back(ht.PayloadOf(e)[0]);
  }
  std::sort(found.begin(), found.end());
  EXPECT_EQ(found, (std::vector<int64_t>{0, 10, 20, 30, 40}));
}

TEST_F(HashTableTest, ChainsSkipColldingOtherKeys) {
  // Fill densely so bucket collisions are certain, then verify exact matching.
  JoinHashTable ht(&mm_, 1000, 1);
  for (int64_t k = 0; k < 1000; ++k) {
    int64_t payload = k * 3;
    ht.Insert(k, &payload);
  }
  uint64_t hops = 0;
  for (int64_t k = 0; k < 1000; ++k) {
    int64_t e = ht.FindKeyFrom(ht.ProbeHead(k), k, &hops);
    ASSERT_GE(e, 0) << "key " << k;
    EXPECT_EQ(ht.PayloadOf(e)[0], k * 3);
    EXPECT_EQ(ht.FindKeyFrom(ht.NextEntry(e), k, &hops), -1);
  }
}

TEST_F(HashTableTest, NegativeKeysWork) {
  JoinHashTable ht(&mm_, 8, 1);
  int64_t payload = 5;
  ht.Insert(-12345, &payload);
  uint64_t hops = 0;
  EXPECT_GE(ht.FindKeyFrom(ht.ProbeHead(-12345), -12345, &hops), 0);
}

TEST_F(HashTableTest, ConcurrentBuildFindsEverything) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  JoinHashTable ht(&mm_, kThreads * kPerThread, 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        int64_t key = t * kPerThread + i;
        ht.Insert(key, &key);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ht.size(), static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t hops = 0;
  for (int64_t k = 0; k < kThreads * kPerThread; k += 97) {
    int64_t e = ht.FindKeyFrom(ht.ProbeHead(k), k, &hops);
    ASSERT_GE(e, 0);
    EXPECT_EQ(ht.PayloadOf(e)[0], k);
  }
}

TEST_F(HashTableTest, BytesReflectFootprint) {
  JoinHashTable small(&mm_, 16, 0);
  JoinHashTable big(&mm_, 100000, 4);
  EXPECT_GT(big.bytes(), small.bytes());
  EXPECT_GE(big.bytes(), 100000 * (2 + 4) * 8ull);
}

TEST_F(HashTableTest, MemoryReturnedOnDestruction) {
  const uint64_t before = mm_.used();
  {
    JoinHashTable ht(&mm_, 1000, 2);
    EXPECT_GT(mm_.used(), before);
  }
  EXPECT_EQ(mm_.used(), before);
}

TEST_F(HashTableTest, AggUpdateCreatesAndFolds) {
  AggFunc funcs[2] = {AggFunc::kSum, AggFunc::kMax};
  AggHashTable ht(&mm_, 64, 2, funcs);
  uint64_t probes = 0;
  int64_t v1[2] = {5, 7};
  int64_t v2[2] = {3, 2};
  ht.Update(1, v1, false, &probes);
  ht.Update(1, v2, false, &probes);
  EXPECT_EQ(ht.size(), 1u);
  ht.ForEach([&](int64_t key, const int64_t* accs) {
    EXPECT_EQ(key, 1);
    EXPECT_EQ(accs[0], 8);   // sum
    EXPECT_EQ(accs[1], 7);   // max
  });
}

TEST_F(HashTableTest, AggManyGroups) {
  AggFunc funcs[1] = {AggFunc::kSum};
  AggHashTable ht(&mm_, 512, 1, funcs);
  uint64_t probes = 0;
  for (int64_t k = 0; k < 500; ++k) {
    for (int64_t rep = 0; rep < 3; ++rep) {
      int64_t v = k;
      ht.Update(k, &v, false, &probes);
    }
  }
  EXPECT_EQ(ht.size(), 500u);
  std::map<int64_t, int64_t> seen;
  ht.ForEach([&](int64_t key, const int64_t* accs) { seen[key] = accs[0]; });
  for (int64_t k = 0; k < 500; ++k) EXPECT_EQ(seen[k], 3 * k);
}

TEST_F(HashTableTest, AggAtomicModeConcurrentUpdates) {
  AggFunc funcs[1] = {AggFunc::kSum};
  AggHashTable ht(&mm_, 128, 1, funcs);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      uint64_t probes = 0;
      for (int64_t i = 0; i < 10000; ++i) {
        int64_t one = 1;
        ht.Update(i % 100, &one, /*atomic=*/true, &probes);
      }
    });
  }
  for (auto& th : threads) th.join();
  int64_t total = 0;
  ht.ForEach([&](int64_t, const int64_t* accs) { total += accs[0]; });
  EXPECT_EQ(total, 8 * 10000);
  EXPECT_EQ(ht.size(), 100u);
}

TEST_F(HashTableTest, AggMinMaxIdentities) {
  AggFunc funcs[2] = {AggFunc::kMin, AggFunc::kMax};
  AggHashTable ht(&mm_, 8, 2, funcs);
  uint64_t probes = 0;
  int64_t v[2] = {-5, -5};
  ht.Update(0, v, false, &probes);
  ht.ForEach([&](int64_t, const int64_t* accs) {
    EXPECT_EQ(accs[0], -5);
    EXPECT_EQ(accs[1], -5);
  });
}

TEST(AggApply, AtomicMatchesPlainSemantics) {
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kMin, AggFunc::kMax}) {
    int64_t plain = AggIdentity(f);
    std::atomic<int64_t> atomic{AggIdentity(f)};
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
      const int64_t v = rng.UniformRange(-50, 50);
      AggApply(f, &plain, v);
      AggApplyAtomic(f, &atomic, v);
    }
    EXPECT_EQ(plain, atomic.load()) << static_cast<int>(f);
  }
}

}  // namespace
}  // namespace hetex::jit
