#include "jit/kernel_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "jit/codegen.h"
#include "jit/interpreter.h"
#include "jit/program.h"
#include "test_util.h"

namespace hetex::jit {
namespace {

namespace fs = std::filesystem;

/// A per-test, per-process kernel directory: tests exercise the disk cache
/// hermetically and parallel ctest invocations cannot share objects.
std::string FreshDir(const std::string& tag) {
  const fs::path d = fs::temp_directory_path() /
                     ("hetex-kc-test-" + tag + "-" +
                      std::to_string(static_cast<long>(::getpid())));
  fs::remove_all(d);
  return d.string();
}

CodegenOptions SyncOptions(const std::string& tag) {
  CodegenOptions opts;
  opts.enabled = true;
  opts.async = false;  // GetOrBuild returns a settled kernel
  opts.kernel_dir = FreshDir(tag);
  return opts;
}

/// filter + arithmetic + hash + emit: enough shape to exercise constant
/// folding, the filter early-out and the emit hook in generated code.
PipelineProgram FilterMathProgram() {
  ProgramBuilder b;
  const int x = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, x, 0);
  const int y = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, y, 1);
  const int lim = b.AllocReg();
  b.EmitOp(OpCode::kConst, lim, 0, 0, 0, 50);
  const int keep = b.AllocReg();
  b.EmitOp(OpCode::kCmpLt, keep, x, lim);
  b.EmitOp(OpCode::kFilter, keep);
  const int sum = b.AllocReg();
  b.EmitOp(OpCode::kAdd, sum, x, y);
  const int h = b.AllocReg();
  b.EmitOp(OpCode::kHash, h, sum);
  const int mixed = b.AllocReg();
  b.EmitOp(OpCode::kAdd, mixed, sum, h);
  b.EmitOp(OpCode::kEmit, mixed, 1);
  PipelineProgram p = b.Finalize("kc-filter-math");
  p.n_input_cols = 2;
  p.input_widths = {8, 8};
  p.finalized = true;  // unit test drives the backends directly
  return p;
}

PipelineProgram DivProgram() {
  ProgramBuilder b;
  const int x = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, x, 0);
  const int y = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, y, 1);
  const int q = b.AllocReg();
  b.EmitOp(OpCode::kDiv, q, x, y);
  b.EmitOp(OpCode::kEmit, q, 1);
  PipelineProgram p = b.Finalize("kc-div");
  p.n_input_cols = 2;
  p.input_widths = {8, 8};
  p.finalized = true;
  return p;
}

struct RunOutput {
  Status status;
  std::vector<int64_t> emitted;
  sim::CostStats stats;
};

/// Runs `program` over int64 columns through RunRows (tier 0) or RunNative
/// (tier 2, requires program.native ready), capturing emitted rows and stats.
RunOutput Execute(const PipelineProgram& program,
                  const std::vector<std::vector<int64_t>>& cols, bool native) {
  RunOutput out;
  std::vector<ColumnBinding> bindings;
  for (const auto& c : cols) {
    bindings.push_back({reinterpret_cast<const std::byte*>(c.data()), 8});
  }
  std::vector<int64_t> storage(1024, 0);
  EmitTarget emit;
  emit.cols.push_back({reinterpret_cast<std::byte*>(storage.data()), 8});
  emit.capacity = 1024;
  emit.ResetCursor();
  int64_t accs[kMaxLocalAccs] = {};
  void* slots[kMaxHtSlots] = {};

  ExecCtx ctx;
  ctx.cols = bindings.data();
  ctx.n_cols = static_cast<int>(bindings.size());
  ctx.emit = &emit;
  ctx.local_accs = accs;
  ctx.ht_slots = slots;
  ctx.stats = &out.stats;
  ctx.row_begin = 0;
  ctx.row_step = 1;
  const uint64_t rows = cols.empty() ? 0 : cols[0].size();
  out.status = native ? RunNative(program, ctx, rows) : RunRows(program, ctx, rows);
  for (uint64_t i = 0; i < emit.rows(); ++i) out.emitted.push_back(storage[i]);
  return out;
}

void ExpectStatsEq(const sim::CostStats& a, const sim::CostStats& b) {
  EXPECT_EQ(a.tuples, b.tuples);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.atomics, b.atomics);
  EXPECT_EQ(a.near_accesses, b.near_accesses);
  EXPECT_EQ(a.mid_accesses, b.mid_accesses);
  EXPECT_EQ(a.far_accesses, b.far_accesses);
}

std::vector<std::vector<int64_t>> TestColumns(int rows) {
  std::vector<std::vector<int64_t>> cols(2);
  for (int i = 0; i < rows; ++i) {
    cols[0].push_back((i * 37) % 101 - 13);
    cols[1].push_back(i + 1);
  }
  return cols;
}

TEST(KernelCacheTest, NativeKernelMatchesInterpreterExactly) {
  const PipelineProgram program = FilterMathProgram();
  const GenerateResult gen = GenerateSource(program);
  ASSERT_FALSE(gen.source.empty()) << gen.reason;

  KernelCache cache(SyncOptions("parity"));
  PipelineProgram native_prog = program;
  native_prog.native = cache.GetOrBuild(gen, program.label);
  ASSERT_TRUE(native_prog.native->ready()) << native_prog.native->error;

  const auto cols = TestColumns(257);
  const RunOutput interp = Execute(program, cols, /*native=*/false);
  const RunOutput native = Execute(native_prog, cols, /*native=*/true);
  ASSERT_TRUE(interp.status.ok()) << interp.status.ToString();
  ASSERT_TRUE(native.status.ok()) << native.status.ToString();
  EXPECT_EQ(interp.emitted, native.emitted);
  ExpectStatsEq(interp.stats, native.stats);
}

TEST(KernelCacheTest, DivisionByZeroFaultsLikeTheInterpreter) {
  const PipelineProgram program = DivProgram();
  const GenerateResult gen = GenerateSource(program);
  ASSERT_FALSE(gen.source.empty()) << gen.reason;

  KernelCache cache(SyncOptions("divfault"));
  PipelineProgram native_prog = program;
  native_prog.native = cache.GetOrBuild(gen, program.label);
  ASSERT_TRUE(native_prog.native->ready()) << native_prog.native->error;

  // Row 2 divides by zero; rows 0-1 must already be emitted and counted.
  const std::vector<std::vector<int64_t>> cols = {{10, 20, 30, 40}, {2, 5, 0, 4}};
  const RunOutput interp = Execute(program, cols, /*native=*/false);
  const RunOutput native = Execute(native_prog, cols, /*native=*/true);
  ASSERT_FALSE(interp.status.ok());
  ASSERT_FALSE(native.status.ok());
  EXPECT_NE(native.status.ToString().find("division by zero"), std::string::npos)
      << native.status.ToString();
  EXPECT_EQ(interp.emitted, native.emitted);
  ExpectStatsEq(interp.stats, native.stats);
}

TEST(KernelCacheTest, WarmDirectoryLoadsWithZeroCompilerInvocations) {
  const PipelineProgram program = FilterMathProgram();
  const GenerateResult gen = GenerateSource(program);
  ASSERT_FALSE(gen.source.empty()) << gen.reason;
  const CodegenOptions opts = SyncOptions("warm");

  {
    KernelCache cold(opts);
    auto kernel = cold.GetOrBuild(gen, program.label);
    ASSERT_TRUE(kernel->ready()) << kernel->error;
    EXPECT_EQ(kernel->origin, NativeKernel::Origin::kCompiled);
    EXPECT_EQ(cold.counters().compiles, 1u);
    EXPECT_GE(cold.counters().compiler_invocations, 1u);
    EXPECT_EQ(cold.counters().disk_hits, 0u);
  }

  // Fresh cache (fresh process stand-in), same directory: the kernel loads
  // from disk after hash verification — the compiler never runs.
  KernelCache warm(opts);
  PipelineProgram native_prog = program;
  native_prog.native = warm.GetOrBuild(gen, program.label);
  ASSERT_TRUE(native_prog.native->ready()) << native_prog.native->error;
  EXPECT_EQ(native_prog.native->origin, NativeKernel::Origin::kDisk);
  EXPECT_EQ(warm.counters().disk_hits, 1u);
  EXPECT_EQ(warm.counters().compiles, 0u);
  EXPECT_EQ(warm.counters().compiler_invocations, 0u);

  // And the disk-loaded kernel computes the same answer.
  const auto cols = TestColumns(64);
  const RunOutput interp = Execute(program, cols, /*native=*/false);
  const RunOutput native = Execute(native_prog, cols, /*native=*/true);
  ASSERT_TRUE(native.status.ok()) << native.status.ToString();
  EXPECT_EQ(interp.emitted, native.emitted);
}

TEST(KernelCacheTest, CorruptedObjectIsRejectedAndRecompiled) {
  const PipelineProgram program = FilterMathProgram();
  const GenerateResult gen = GenerateSource(program);
  ASSERT_FALSE(gen.source.empty()) << gen.reason;
  const CodegenOptions opts = SyncOptions("corrupt");

  {
    KernelCache cold(opts);
    auto kernel = cold.GetOrBuild(gen, program.label);
    ASSERT_TRUE(kernel->ready()) << kernel->error;
  }

  fs::path so_path;
  for (const auto& entry : fs::directory_iterator(opts.kernel_dir)) {
    if (entry.path().extension() == ".so") so_path = entry.path();
  }
  ASSERT_FALSE(so_path.empty());

  // Corrupt the object in place (size unchanged): only the content hash in the
  // .meta sidecar can catch this.
  {
    std::fstream f(so_path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(fs::file_size(so_path) / 2));
    const char garbage[] = "hetex-corruption-test";
    f.write(garbage, sizeof(garbage));
  }
  {
    KernelCache cache(opts);
    auto kernel = cache.GetOrBuild(gen, program.label);
    ASSERT_TRUE(kernel->ready()) << kernel->error;
    EXPECT_EQ(kernel->origin, NativeKernel::Origin::kCompiled);
    EXPECT_EQ(cache.counters().rejected_objects, 1u);
    EXPECT_EQ(cache.counters().disk_hits, 0u);
    EXPECT_EQ(cache.counters().compiles, 1u);

    PipelineProgram native_prog = program;
    native_prog.native = kernel;
    const auto cols = TestColumns(64);
    EXPECT_EQ(Execute(program, cols, false).emitted,
              Execute(native_prog, cols, true).emitted);
  }

  // Truncation (size mismatch) is caught the same way.
  fs::resize_file(so_path, fs::file_size(so_path) / 3);
  {
    KernelCache cache(opts);
    auto kernel = cache.GetOrBuild(gen, program.label);
    ASSERT_TRUE(kernel->ready()) << kernel->error;
    EXPECT_EQ(kernel->origin, NativeKernel::Origin::kCompiled);
    EXPECT_EQ(cache.counters().rejected_objects, 1u);
  }
}

TEST(KernelCacheTest, ConcurrentRequestsCoalesceToOneCompile) {
  const PipelineProgram program = FilterMathProgram();
  const GenerateResult gen = GenerateSource(program);
  ASSERT_FALSE(gen.source.empty()) << gen.reason;

  CodegenOptions opts;
  opts.enabled = true;
  opts.async = true;
  opts.compile_threads = 2;
  opts.kernel_dir = FreshDir("concurrent");
  KernelCache cache(opts);

  constexpr int kThreads = 8;
  std::shared_ptr<NativeKernel> kernels[kThreads];
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { kernels[i] = cache.GetOrBuild(gen, program.label); });
  }
  for (auto& t : threads) t.join();
  cache.WaitIdle();

  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(kernels[i], kernels[0]);
  ASSERT_TRUE(kernels[0]->ready()) << kernels[0]->error;
  const KernelCache::Counters c = cache.counters();
  EXPECT_EQ(c.requests, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(c.compiles, 1u);
  EXPECT_EQ(c.in_process_hits, static_cast<uint64_t>(kThreads - 1));
}

TEST(KernelCacheTest, MissingCompilerFailsClosedWithNamedReason) {
  const PipelineProgram program = FilterMathProgram();
  const GenerateResult gen = GenerateSource(program);
  ASSERT_FALSE(gen.source.empty()) << gen.reason;

  CodegenOptions opts = SyncOptions("nocompiler");
  opts.compiler_cmd = "/nonexistent-hetex-compiler -shared";
  KernelCache cache(opts);
  auto kernel = cache.GetOrBuild(gen, program.label);
  EXPECT_TRUE(kernel->failed());
  EXPECT_FALSE(kernel->ready());
  EXPECT_FALSE(kernel->error.empty());
  EXPECT_EQ(cache.counters().compile_failures, 1u);
  // A broken object must never have been installed on disk.
  for (const auto& entry : fs::directory_iterator(opts.kernel_dir)) {
    EXPECT_NE(entry.path().extension(), ".so") << entry.path();
  }
}

/// A second, structurally different program (distinct source → distinct
/// signature → its own hx_* triple on disk) for eviction tests.
PipelineProgram SumProgram() {
  ProgramBuilder b;
  const int x = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, x, 0);
  const int y = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, y, 1);
  const int s = b.AllocReg();
  b.EmitOp(OpCode::kAdd, s, x, y);
  b.EmitOp(OpCode::kEmit, s, 1);
  PipelineProgram p = b.Finalize("kc-sum");
  p.n_input_cols = 2;
  p.input_widths = {8, 8};
  p.finalized = true;
  return p;
}

size_t CountSharedObjects(const std::string& dir) {
  size_t n = 0;
  if (!fs::exists(dir)) return 0;  // a faulted build never creates the dir
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".so") ++n;
  }
  return n;
}

TEST(KernelCacheTest, SizeCapEvictsOldestTripleAndKeepsLoadedKernelAlive) {
  const PipelineProgram prog_a = FilterMathProgram();
  const PipelineProgram prog_b = SumProgram();
  const GenerateResult gen_a = GenerateSource(prog_a);
  const GenerateResult gen_b = GenerateSource(prog_b);
  ASSERT_FALSE(gen_a.source.empty()) << gen_a.reason;
  ASSERT_FALSE(gen_b.source.empty()) << gen_b.reason;

  CodegenOptions opts = SyncOptions("evict");
  // A cap below any real object size: every compile that lands evicts every
  // other triple in the directory (the just-written stem is protected).
  opts.max_dir_bytes = 1;
  std::shared_ptr<NativeKernel> kernel_a;
  {
    KernelCache cache(opts);
    kernel_a = cache.GetOrBuild(gen_a, prog_a.label);
    ASSERT_TRUE(kernel_a->ready()) << kernel_a->error;
    EXPECT_EQ(cache.counters().evictions, 0u);  // nothing else to evict yet

    auto kernel_b = cache.GetOrBuild(gen_b, prog_b.label);
    ASSERT_TRUE(kernel_b->ready()) << kernel_b->error;
    // B's compile pushed the directory over the cap: A's whole triple went.
    EXPECT_EQ(cache.counters().evictions, 1u);
    EXPECT_EQ(CountSharedObjects(opts.kernel_dir), 1u);
  }

  // The evicted-but-loaded kernel keeps executing correctly: dlopen holds the
  // mapping, only the disk copy is gone.
  PipelineProgram native_a = prog_a;
  native_a.native = kernel_a;
  const auto cols = TestColumns(128);
  EXPECT_EQ(Execute(prog_a, cols, /*native=*/false).emitted,
            Execute(native_a, cols, /*native=*/true).emitted);

  // A fresh process stand-in asking for A again finds no disk copy and simply
  // recompiles — eviction degrades reuse, never correctness.
  KernelCache fresh(opts);
  auto kernel_a2 = fresh.GetOrBuild(gen_a, prog_a.label);
  ASSERT_TRUE(kernel_a2->ready()) << kernel_a2->error;
  EXPECT_EQ(kernel_a2->origin, NativeKernel::Origin::kCompiled);
  EXPECT_EQ(fresh.counters().disk_hits, 0u);
  EXPECT_EQ(fresh.counters().compiles, 1u);
  EXPECT_EQ(fresh.counters().evictions, 1u);  // B's triple went this time
  EXPECT_EQ(CountSharedObjects(opts.kernel_dir), 1u);
}

TEST(KernelCacheTest, UnlimitedDirectoryNeverEvicts) {
  CodegenOptions opts = SyncOptions("noevict");  // max_dir_bytes == 0
  KernelCache cache(opts);
  const PipelineProgram prog_a = FilterMathProgram();
  const PipelineProgram prog_b = SumProgram();
  ASSERT_TRUE(cache.GetOrBuild(GenerateSource(prog_a), prog_a.label)->ready());
  ASSERT_TRUE(cache.GetOrBuild(GenerateSource(prog_b), prog_b.label)->ready());
  EXPECT_EQ(cache.counters().evictions, 0u);
  EXPECT_EQ(CountSharedObjects(opts.kernel_dir), 2u);
}

TEST(KernelCacheTest, InjectedCompileFaultFailsClosedWithoutInstalling) {
  sim::FaultOptions fopts;
  fopts.enabled = true;
  fopts.compile_fault_rate = 1.0;
  sim::FaultInjector injector(fopts);

  const PipelineProgram program = FilterMathProgram();
  const GenerateResult gen = GenerateSource(program);
  ASSERT_FALSE(gen.source.empty()) << gen.reason;

  CodegenOptions opts = SyncOptions("compilefault");
  KernelCache cache(opts);
  cache.set_fault_injector(&injector);
  auto kernel = cache.GetOrBuild(gen, program.label);
  EXPECT_TRUE(kernel->failed());
  EXPECT_FALSE(kernel->ready());
  EXPECT_FALSE(kernel->error.empty());
  EXPECT_EQ(cache.counters().compile_failures, 1u);
  EXPECT_EQ(injector.counters().compile_faults, 1u);
  // The faulted build never reached the compiler or the disk.
  EXPECT_EQ(cache.counters().compiler_invocations, 0u);
  EXPECT_EQ(CountSharedObjects(opts.kernel_dir), 0u);

  // The program still answers through its fallback tier (the interpreter runs
  // it here exactly as the vectorized tier would in the engine).
  const auto cols = TestColumns(64);
  const RunOutput interp = Execute(program, cols, /*native=*/false);
  EXPECT_TRUE(interp.status.ok()) << interp.status.ToString();
}

/// End-to-end fail-closed discipline: a System configured for tier 2 whose
/// compiler does not exist still answers queries — served by the vectorizer,
/// with the failure counted, identical to a codegen-free System.
TEST(KernelCacheTest, NoCompilerSystemFallsBackToVectorizer) {
  auto make_system = [](bool codegen) {
    core::System::Options opts;
    opts.topology.num_sockets = 1;
    opts.topology.cores_per_socket = 2;
    opts.topology.num_gpus = 0;
    if (codegen) {
      opts.codegen.enabled = true;
      opts.codegen.async = false;
      opts.codegen.compiler_cmd = "/nonexistent-hetex-compiler -shared";
      opts.codegen.kernel_dir = FreshDir("e2e-nocompiler");
    }
    return std::make_unique<core::System>(opts);
  };
  auto run_query = [](core::System* system) {
    ssb::Ssb::Options ssb_opts;
    ssb_opts.lineorder_rows = 10'000;
    ssb_opts.scale = 0.002;
    ssb::Ssb ssb(ssb_opts, &system->catalog());
    for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
      HETEX_CHECK_OK(
          system->catalog().at(name).Place(system->HostNodes(), &system->memory()));
    }
    plan::ExecPolicy policy = plan::ExecPolicy::CpuOnly(1);
    policy.block_rows = 4096;
    core::QueryExecutor executor(system);
    return executor.Execute(ssb.Query(1, 1), policy);
  };

  const CodegenCounters before = GetCodegenCounters();
  auto broken = make_system(/*codegen=*/true);
  const auto broken_result = run_query(broken.get());
  ASSERT_TRUE(broken_result.status.ok()) << broken_result.status.ToString();
  const CodegenCounters after = GetCodegenCounters();
  EXPECT_GT(after.compile_failures, before.compile_failures);
  EXPECT_GT(after.fallbacks, before.fallbacks);
  EXPECT_EQ(after.native_invocations, before.native_invocations);

  auto plain = make_system(/*codegen=*/false);
  const auto plain_result = run_query(plain.get());
  ASSERT_TRUE(plain_result.status.ok());
  EXPECT_EQ(broken_result.rows, plain_result.rows);
  ExpectStatsEq(broken_result.stats, plain_result.stats);
}

}  // namespace
}  // namespace hetex::jit
