#include "jit/device_provider.h"

#include <gtest/gtest.h>

#include "core/system.h"

namespace hetex::jit {
namespace {

/// Table 1 parity: every provider method behaves per its device semantics while
/// the generated program stays identical (the paper's Fig. 3 property).
class ProviderTest : public ::testing::TestWithParam<bool> {  // param: is_gpu
 protected:
  ProviderTest() : system_(MakeOptions()) {
    provider_ = system_.MakeProvider(GetParam() ? sim::DeviceId::Gpu(0)
                                                : sim::DeviceId::Cpu(0));
  }
  static core::System::Options MakeOptions() {
    core::System::Options o;
    o.topology.gpu_sim_threads = 2;
    o.blocks.host_arena_blocks = 16;
    o.blocks.gpu_arena_blocks = 16;
    return o;
  }

  PipelineProgram SumProgram() {
    ProgramBuilder b;
    const int v = b.AllocReg();
    b.EmitOp(OpCode::kLoadCol, v, 0);
    const int acc = b.AllocLocalAcc(AggFunc::kSum);
    b.EmitOp(OpCode::kAggLocal, acc, v, static_cast<int>(AggFunc::kSum));
    PipelineProgram p = b.Finalize("provider-sum");
    HETEX_CHECK_OK(provider_->ConvertToMachineCode(&p));
    return p;
  }

  core::System system_;
  std::unique_ptr<DeviceProvider> provider_;
};

TEST_P(ProviderTest, DeviceIdentity) {
  EXPECT_EQ(provider_->type() == sim::DeviceType::kGpu, GetParam());
  EXPECT_EQ(provider_->device().is_gpu(), GetParam());
  EXPECT_EQ(provider_->mem_node(),
            system_.topology().LocalMemNode(provider_->device()));
}

TEST_P(ProviderTest, WorkerThreadsMatchParallelismModel) {
  if (GetParam()) {
    EXPECT_GT(provider_->WorkerThreads(), 1);  // kernel grid
  } else {
    EXPECT_EQ(provider_->WorkerThreads(), 1);  // single-threaded worker
  }
}

TEST_P(ProviderTest, AllocStateVarUsesLocalNode) {
  const uint64_t before = provider_->memory_manager().used();
  void* p = provider_->AllocStateVar(1 << 10);
  ASSERT_NE(p, nullptr);
  EXPECT_GT(provider_->memory_manager().used(), before);
  provider_->FreeStateVar(p);
  EXPECT_EQ(provider_->memory_manager().used(), before);
}

TEST_P(ProviderTest, BuffersComeFromLocalArena) {
  memory::Block* b = provider_->GetBuffer();
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->node, provider_->mem_node());
  provider_->ReleaseBuffer(b);
}

TEST_P(ProviderTest, ConvertToMachineCodeValidates) {
  ProgramBuilder b;
  b.EmitOp(OpCode::kEnd);
  PipelineProgram ok = b.Finalize("ok");
  EXPECT_TRUE(provider_->ConvertToMachineCode(&ok).ok());
  EXPECT_TRUE(ok.finalized);

  PipelineProgram bad;
  bad.code.push_back(Instr{OpCode::kJmp, 0, 99, 0, 0, 0, 0});
  bad.code.push_back(Instr{OpCode::kEnd, 0, 0, 0, 0, 0, 0});
  EXPECT_FALSE(provider_->ConvertToMachineCode(&bad).ok());
}

TEST_P(ProviderTest, ExecuteComputesCorrectSum) {
  PipelineProgram program = SumProgram();
  constexpr uint64_t kRows = 10000;
  std::vector<int32_t> data(kRows);
  int64_t expected = 0;
  for (uint64_t i = 0; i < kRows; ++i) {
    data[i] = static_cast<int32_t>(i % 100);
    expected += data[i];
  }
  ColumnBinding col{reinterpret_cast<const std::byte*>(data.data()), 4};

  int64_t instance_accs[kMaxLocalAccs] = {};
  auto* shared = static_cast<std::atomic<int64_t>*>(provider_->AllocStateVar(64));
  shared[0].store(0);

  ExecRequest req;
  req.cols = &col;
  req.n_cols = 1;
  req.rows = kRows;
  req.instance_accs = instance_accs;
  req.shared_accs = shared;
  req.earliest = 1.5;
  ExecResult result = provider_->Execute(program, req);

  const int64_t got = GetParam() ? shared[0].load() : instance_accs[0];
  EXPECT_EQ(got, expected);
  EXPECT_GT(result.end, 1.5);  // time moved forward from `earliest`
  EXPECT_EQ(result.stats.tuples, kRows);
  provider_->FreeStateVar(shared);
}

TEST_P(ProviderTest, AtomicCostsOnlyOnGpu) {
  PipelineProgram program = SumProgram();
  std::vector<int32_t> data(1000, 1);
  ColumnBinding col{reinterpret_cast<const std::byte*>(data.data()), 4};
  int64_t instance_accs[kMaxLocalAccs] = {};
  auto* shared = static_cast<std::atomic<int64_t>*>(provider_->AllocStateVar(64));
  shared[0].store(0);
  ExecRequest req;
  req.cols = &col;
  req.n_cols = 1;
  req.rows = 1000;
  req.instance_accs = instance_accs;
  req.shared_accs = shared;
  ExecResult result = provider_->Execute(program, req);
  if (GetParam()) {
    // Neighborhood leaders flush with worker-scoped atomics.
    EXPECT_GT(result.stats.atomics, 0u);
  } else {
    // Single thread per worker: atomics elided (Fig. 3).
    EXPECT_EQ(result.stats.atomics, 0u);
  }
  provider_->FreeStateVar(shared);
}

INSTANTIATE_TEST_SUITE_P(CpuAndGpu, ProviderTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Gpu" : "Cpu";
                         });

TEST(CpuProviderConcurrency, FluidShareSlowsCrowdedSocket) {
  core::System system{core::System::Options{}};
  auto p1 = system.MakeProvider(sim::DeviceId::Cpu(0));
  auto p12 = system.MakeProvider(sim::DeviceId::Cpu(0));
  static_cast<CpuProvider&>(*p1).set_socket_concurrency(1);
  static_cast<CpuProvider&>(*p12).set_socket_concurrency(12);

  ProgramBuilder b;
  const int v = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, v, 0);
  const int acc = b.AllocLocalAcc(AggFunc::kSum);
  b.EmitOp(OpCode::kAggLocal, acc, v, static_cast<int>(AggFunc::kSum));
  PipelineProgram program = b.Finalize("share");
  HETEX_CHECK_OK(p1->ConvertToMachineCode(&program));

  std::vector<int64_t> data(100000, 1);
  ColumnBinding col{reinterpret_cast<const std::byte*>(data.data()), 8};
  int64_t accs[kMaxLocalAccs] = {};
  ExecRequest req;
  req.cols = &col;
  req.n_cols = 1;
  req.rows = data.size();
  req.instance_accs = accs;

  const double t1 = p1->Execute(program, req).end;
  const double t12 = p12->Execute(program, req).end;
  // 12 workers on a 45 GB/s socket: each sees 3.75 GB/s vs 6 GB/s solo.
  EXPECT_NEAR(t12 / t1, 6.0 / 3.75, 0.05);
}

}  // namespace
}  // namespace hetex::jit
