#include <gtest/gtest.h>

#include "jit/device_provider.h"
#include "jit/program.h"

namespace hetex::jit {
namespace {

/// ValidateProgram rejection matrix: every malformed shape surfaces a Status
/// (never UB or a silent accept). Programs are hand-assembled to hit each rule.
PipelineProgram Raw(std::vector<Instr> code, int n_regs, int n_local_accs = 0) {
  PipelineProgram p;
  p.code = std::move(code);
  p.n_regs = n_regs;
  p.n_local_accs = n_local_accs;
  p.label = "valid.test";
  return p;
}

Instr I(OpCode op, int a = 0, int b = 0, int c = 0, int d = 0, int64_t imm = 0) {
  return Instr{op, 0, static_cast<int16_t>(a), static_cast<int16_t>(b),
               static_cast<int16_t>(c), static_cast<int16_t>(d), imm};
}

TEST(Validation, AcceptsMinimalProgram) {
  EXPECT_TRUE(ValidateProgram(Raw({I(OpCode::kEnd)}, 0)).ok());
}

TEST(Validation, RejectsMissingEnd) {
  EXPECT_FALSE(ValidateProgram(Raw({}, 0)).ok());
  EXPECT_FALSE(
      ValidateProgram(Raw({I(OpCode::kConst, 0)}, 1)).ok());
}

TEST(Validation, RejectsRegisterOutOfRange) {
  // Destination register beyond n_regs.
  Status st = ValidateProgram(
      Raw({I(OpCode::kConst, 3), I(OpCode::kEnd)}, /*n_regs=*/2));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("register out of range"), std::string::npos);
  // Source register of an ALU op.
  EXPECT_FALSE(ValidateProgram(
                   Raw({I(OpCode::kAdd, 0, 1, 5), I(OpCode::kEnd)}, 2))
                   .ok());
  // Negative register index.
  EXPECT_FALSE(ValidateProgram(
                   Raw({I(OpCode::kFilter, -1), I(OpCode::kEnd)}, 2))
                   .ok());
}

TEST(Validation, RejectsRegisterWindowsOutOfRange) {
  // Emit window a..a+b crossing n_regs.
  Status st = ValidateProgram(
      Raw({I(OpCode::kEmit, 2, 3), I(OpCode::kEnd)}, /*n_regs=*/4));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("emit register window"), std::string::npos);
  // HtInsert payload window.
  EXPECT_FALSE(
      ValidateProgram(Raw({I(OpCode::kHtInsert, 0, 0, 3, 4), I(OpCode::kEnd)}, 4))
          .ok());
  // HtLoadPayload destination window.
  EXPECT_FALSE(ValidateProgram(
                   Raw({I(OpCode::kHtLoadPayload, 3, 0, 0, 2), I(OpCode::kEnd)}, 4))
                   .ok());
  // GroupByAgg value window (d = 0 is also invalid).
  EXPECT_FALSE(
      ValidateProgram(Raw({I(OpCode::kGroupByAgg, 0, 0, 0, 0), I(OpCode::kEnd)}, 4))
          .ok());
}

TEST(Validation, RejectsHtSlotOutOfRange) {
  Status st = ValidateProgram(
      Raw({I(OpCode::kHtProbeInit, 0, 1, kMaxHtSlots), I(OpCode::kEnd)}, 2));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("hash-table slot"), std::string::npos);
  EXPECT_FALSE(ValidateProgram(
                   Raw({I(OpCode::kHtInsert, -1, 0, 0, 0), I(OpCode::kEnd)}, 2))
                   .ok());
  EXPECT_FALSE(ValidateProgram(
                   Raw({I(OpCode::kGroupByAgg, 99, 0, 0, 1), I(OpCode::kEnd)}, 2))
                   .ok());
}

TEST(Validation, RejectsJumpOutOfRangeAndUnboundLabels) {
  Status st = ValidateProgram(
      Raw({I(OpCode::kJmp, 99), I(OpCode::kEnd)}, 0));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("jump out of range"), std::string::npos);
  // A negative target is an unpatched (unbound) label, reported distinctly.
  st = ValidateProgram(Raw({I(OpCode::kJmpIfNeg, 0, -1), I(OpCode::kEnd)}, 1));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("unbound label"), std::string::npos);
}

TEST(Validation, RejectsLocalAccOutOfRange) {
  Status st = ValidateProgram(Raw(
      {I(OpCode::kAggLocal, 2, 0, 0), I(OpCode::kEnd)}, 1, /*n_local_accs=*/1));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("local accumulator"), std::string::npos);
}

TEST(Validation, RejectsZeroConstantDivisor) {
  // regs[1] = 0; regs[2] = regs[0] / regs[1] — statically rejectable UB.
  Status st = ValidateProgram(Raw({I(OpCode::kLoadCol, 0, 0),
                                   I(OpCode::kConst, 1, 0, 0, 0, 0),
                                   I(OpCode::kDiv, 2, 0, 1), I(OpCode::kEnd)},
                                  3));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("divisor register can hold a zero constant"),
            std::string::npos);
  // A nonzero constant divisor passes.
  EXPECT_TRUE(ValidateProgram(Raw({I(OpCode::kLoadCol, 0, 0),
                                   I(OpCode::kConst, 1, 0, 0, 0, 7),
                                   I(OpCode::kDiv, 2, 0, 1), I(OpCode::kEnd)},
                                  3))
                  .ok());
}

TEST(Validation, RejectsExcessRegisterPressure) {
  PipelineProgram p = Raw({I(OpCode::kEnd)}, kMaxRegs + 1);
  EXPECT_FALSE(ValidateProgram(p).ok());
}

}  // namespace
}  // namespace hetex::jit
