#include "jit/interpreter.h"

#include <gtest/gtest.h>

#include <vector>

#include "jit/device_provider.h"
#include "jit/program.h"

namespace hetex::jit {
namespace {

/// Helper: finalize + run a program over `rows` of the given int64 columns,
/// collecting emitted values into `out` (single int64 output column).
struct VmHarness {
  explicit VmHarness(int n_out_cols = 1) : out_cols(n_out_cols) {}

  std::vector<int64_t> Run(PipelineProgram program,
                           const std::vector<std::vector<int64_t>>& cols,
                           uint64_t row_begin = 0, uint64_t row_step = 1) {
    DeviceProvider* unused = nullptr;
    (void)unused;
    program.finalized = true;  // unit test drives the raw interpreter
    bindings.clear();
    for (const auto& c : cols) {
      bindings.push_back({reinterpret_cast<const std::byte*>(c.data()), 8});
    }
    out_storage.assign(out_cols, std::vector<int64_t>(1024, 0));
    emit.cols.clear();
    for (auto& col : out_storage) {
      emit.cols.push_back({reinterpret_cast<std::byte*>(col.data()), 8});
    }
    emit.capacity = 1024;
    emit.ResetCursor();

    ExecCtx ctx;
    ctx.cols = bindings.data();
    ctx.n_cols = static_cast<int>(bindings.size());
    ctx.emit = &emit;
    ctx.local_accs = accs;
    ctx.ht_slots = slots;
    ctx.stats = &stats;
    ctx.row_begin = row_begin;
    ctx.row_step = row_step;
    RunRows(program, ctx, cols.empty() ? 0 : cols[0].size());

    std::vector<int64_t> out;
    for (uint64_t i = 0; i < emit.rows(); ++i) out.push_back(out_storage[0][i]);
    return out;
  }

  int out_cols;
  std::vector<ColumnBinding> bindings;
  std::vector<std::vector<int64_t>> out_storage;
  EmitTarget emit;
  int64_t accs[kMaxLocalAccs] = {};
  void* slots[8] = {};
  sim::CostStats stats;
};

PipelineProgram UnaryProgram(OpCode op, int64_t imm = 0) {
  ProgramBuilder b;
  const int in = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, in, 0);
  const int out = b.AllocReg();
  b.EmitOp(op, out, in, 0, 0, imm);
  b.EmitOp(OpCode::kEmit, out, 1);
  return b.Finalize("unary");
}

PipelineProgram BinaryProgram(OpCode op) {
  ProgramBuilder b;
  const int lhs = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, lhs, 0);
  const int rhs = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, rhs, 1);
  const int out = b.AllocReg();
  b.EmitOp(op, out, lhs, rhs);
  b.EmitOp(OpCode::kEmit, out, 1);
  return b.Finalize("binary");
}

struct BinOpCase {
  OpCode op;
  int64_t a, b, expected;
};

class BinOpTest : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(BinOpTest, ComputesExpected) {
  const auto& c = GetParam();
  VmHarness vm;
  auto out = vm.Run(BinaryProgram(c.op), {{c.a}, {c.b}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinOpTest,
    ::testing::Values(BinOpCase{OpCode::kAdd, 7, 5, 12},
                      BinOpCase{OpCode::kAdd, -7, 5, -2},
                      BinOpCase{OpCode::kSub, 7, 5, 2},
                      BinOpCase{OpCode::kMul, -3, 9, -27},
                      BinOpCase{OpCode::kDiv, 27, 4, 6},
                      BinOpCase{OpCode::kDiv, -27, 4, -6}));

INSTANTIATE_TEST_SUITE_P(
    Comparisons, BinOpTest,
    ::testing::Values(BinOpCase{OpCode::kCmpLt, 1, 2, 1},
                      BinOpCase{OpCode::kCmpLt, 2, 2, 0},
                      BinOpCase{OpCode::kCmpLe, 2, 2, 1},
                      BinOpCase{OpCode::kCmpGt, 3, 2, 1},
                      BinOpCase{OpCode::kCmpGt, 2, 3, 0},
                      BinOpCase{OpCode::kCmpGe, 2, 2, 1},
                      BinOpCase{OpCode::kCmpEq, 5, 5, 1},
                      BinOpCase{OpCode::kCmpEq, 5, 6, 0},
                      BinOpCase{OpCode::kCmpNe, 5, 6, 1},
                      BinOpCase{OpCode::kCmpNe, 6, 6, 0}));

INSTANTIATE_TEST_SUITE_P(
    Logic, BinOpTest,
    ::testing::Values(BinOpCase{OpCode::kAnd, 1, 1, 1},
                      BinOpCase{OpCode::kAnd, 1, 0, 0},
                      BinOpCase{OpCode::kAnd, 7, -2, 1},  // nonzero = true
                      BinOpCase{OpCode::kOr, 0, 0, 0},
                      BinOpCase{OpCode::kOr, 0, 3, 1}));

TEST(Interpreter, NotAndShlAndConst) {
  VmHarness vm;
  EXPECT_EQ(vm.Run(UnaryProgram(OpCode::kNot), {{0}})[0], 1);
  EXPECT_EQ(vm.Run(UnaryProgram(OpCode::kNot), {{5}})[0], 0);
  EXPECT_EQ(vm.Run(UnaryProgram(OpCode::kShl, 4), {{3}})[0], 48);

  ProgramBuilder b;
  const int r = b.AllocReg();
  b.EmitOp(OpCode::kConst, r, 0, 0, 0, -99);
  b.EmitOp(OpCode::kEmit, r, 1);
  EXPECT_EQ(vm.Run(b.Finalize("const"), {{0}})[0], -99);
}

TEST(Interpreter, HashMatchesHashMix64) {
  VmHarness vm;
  auto out = vm.Run(UnaryProgram(OpCode::kHash), {{42}});
  EXPECT_EQ(out[0], static_cast<int64_t>(HashMix64(42)));
}

TEST(Interpreter, FilterDropsFailingTuples) {
  ProgramBuilder b;
  const int v = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, v, 0);
  const int three = b.AllocReg();
  b.EmitOp(OpCode::kConst, three, 0, 0, 0, 3);
  const int pred = b.AllocReg();
  b.EmitOp(OpCode::kCmpGt, pred, v, three);
  b.EmitOp(OpCode::kFilter, pred);
  b.EmitOp(OpCode::kEmit, v, 1);
  VmHarness vm;
  auto out = vm.Run(b.Finalize("filter"), {{1, 5, 2, 8, 3, 9}});
  EXPECT_EQ(out, (std::vector<int64_t>{5, 8, 9}));
}

TEST(Interpreter, GridStrideVisitsDisjointRows) {
  // Two logical threads with step 2 must cover all rows exactly once.
  VmHarness vm;
  auto p = UnaryProgram(OpCode::kAdd);  // out = in + in? b=in c=0 -> in+reg0
  // Simpler: emit the loaded value.
  ProgramBuilder b;
  const int v = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, v, 0);
  b.EmitOp(OpCode::kEmit, v, 1);
  auto program = b.Finalize("id");
  auto even = vm.Run(program, {{10, 11, 12, 13, 14}}, 0, 2);
  EXPECT_EQ(even, (std::vector<int64_t>{10, 12, 14}));
  VmHarness vm2;
  auto odd = vm2.Run(program, {{10, 11, 12, 13, 14}}, 1, 2);
  EXPECT_EQ(odd, (std::vector<int64_t>{11, 13}));
}

TEST(Interpreter, JumpsFormLoops) {
  // Program: counter = col0; loop: emit counter; counter -= 1; if counter != 0
  // jump back. Exercises backward kJmpIfFalse-free looping via kJmpIfNeg.
  ProgramBuilder b;
  const int counter = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, counter, 0);
  const int one = b.AllocReg();
  b.EmitOp(OpCode::kConst, one, 0, 0, 0, 1);
  const int loop = b.NewLabel();
  b.Bind(loop);
  b.EmitOp(OpCode::kEmit, counter, 1);
  b.EmitOp(OpCode::kSub, counter, counter, one);
  const int done = b.NewLabel();
  b.EmitOp(OpCode::kJmpIfFalse, counter, done);
  b.EmitOp(OpCode::kJmp, loop);
  b.Bind(done);
  VmHarness vm;
  auto out = vm.Run(b.Finalize("loop"), {{3}});
  EXPECT_EQ(out, (std::vector<int64_t>{3, 2, 1}));
}

TEST(Interpreter, AggLocalFunctions) {
  for (auto [func, expected] :
       {std::pair{AggFunc::kSum, int64_t{10}}, std::pair{AggFunc::kCount, int64_t{4}},
        std::pair{AggFunc::kMin, int64_t{1}}, std::pair{AggFunc::kMax, int64_t{4}}}) {
    ProgramBuilder b;
    const int v = b.AllocReg();
    b.EmitOp(OpCode::kLoadCol, v, 0);
    const int acc = b.AllocLocalAcc(func);
    b.EmitOp(OpCode::kAggLocal, acc, v, static_cast<int>(func));
    auto program = b.Finalize("agg");
    VmHarness vm;
    vm.accs[0] = AggIdentity(func);
    vm.Run(std::move(program), {{1, 4, 2, 3}});
    EXPECT_EQ(vm.accs[0], expected) << static_cast<int>(func);
  }
}

TEST(Interpreter, CostStatsAccumulate) {
  VmHarness vm;
  vm.Run(UnaryProgram(OpCode::kNot), {{1, 2, 3, 4}});
  EXPECT_EQ(vm.stats.tuples, 4u);
  EXPECT_EQ(vm.stats.bytes_read, 4 * 8u);
  EXPECT_EQ(vm.stats.bytes_written, 4 * 8u);  // emits
  EXPECT_GT(vm.stats.ops, 12u);
}

TEST(Interpreter, TaggedEmitSelectsBucketByModulo) {
  ProgramBuilder b;
  const int v = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, v, 0);
  b.EmitOp(OpCode::kEmit, v, 1, /*tag_reg=*/v, /*tagged=*/1);
  auto program = b.Finalize("hash-pack");
  program.finalized = true;

  std::vector<int64_t> col{0, 1, 2, 3, 4, 5};
  ColumnBinding binding{reinterpret_cast<const std::byte*>(col.data()), 8};
  std::vector<int64_t> store_a(16), store_b(16);
  EmitTarget ta, tb;
  ta.cols.push_back({reinterpret_cast<std::byte*>(store_a.data()), 8});
  ta.capacity = 16;
  tb.cols.push_back({reinterpret_cast<std::byte*>(store_b.data()), 8});
  tb.capacity = 16;
  EmitTarget* targets[2] = {&ta, &tb};

  sim::CostStats stats;
  ExecCtx ctx;
  ctx.cols = &binding;
  ctx.n_cols = 1;
  ctx.emit = &ta;
  ctx.emit_targets = targets;
  ctx.n_emit_targets = 2;
  ctx.stats = &stats;
  RunRows(program, ctx, col.size());

  EXPECT_EQ(ta.rows(), 3u);  // even values
  EXPECT_EQ(tb.rows(), 3u);  // odd values
  for (uint64_t i = 0; i < ta.rows(); ++i) EXPECT_EQ(store_a[i] % 2, 0);
  for (uint64_t i = 0; i < tb.rows(); ++i) EXPECT_EQ(store_b[i] % 2, 1);
}

TEST(EmitTarget, OnFullMakesRoom) {
  EmitTarget t;
  std::vector<int64_t> store(2);
  t.cols.push_back({reinterpret_cast<std::byte*>(store.data()), 8});
  t.capacity = 2;
  int flushes = 0;
  t.on_full = [&] {
    ++flushes;
    t.ResetCursor();
  };
  sim::CostStats stats;
  for (int64_t v = 0; v < 5; ++v) t.Append(&v, 1, &stats);
  EXPECT_EQ(flushes, 2);
  EXPECT_EQ(t.rows(), 1u);  // 5 appends = 2 full blocks + 1
}

TEST(EmitTarget, NarrowColumnsTruncate) {
  EmitTarget t;
  std::vector<int32_t> store(4);
  t.cols.push_back({reinterpret_cast<std::byte*>(store.data()), 4});
  t.capacity = 4;
  sim::CostStats stats;
  int64_t v = 0x1122334455667788;
  t.Append(&v, 1, &stats);
  EXPECT_EQ(store[0], static_cast<int32_t>(v));
  EXPECT_EQ(stats.bytes_written, 4u);
}

}  // namespace
}  // namespace hetex::jit
