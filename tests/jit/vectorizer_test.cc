#include "jit/vectorizer.h"

#include <gtest/gtest.h>

#include <vector>

#include "jit/interpreter.h"
#include "jit/program.h"
#include "memory/memory_manager.h"

namespace hetex::jit {
namespace {

/// Differential harness: runs one program through both tiers over the same
/// input and state, returning per-tier emitted rows, accumulators and stats.
struct TierRun {
  std::vector<std::vector<int64_t>> emitted;  // per output column
  int64_t accs[kMaxLocalAccs] = {};
  sim::CostStats stats;
  Status status;
  uint64_t emit_rows = 0;
  int flushes = 0;
};

struct DiffHarness {
  int n_out_cols = 1;
  uint64_t emit_capacity = 1024;
  std::vector<std::vector<int64_t>> cols;   // int64 input columns
  void* ht_slots[kMaxHtSlots] = {};
  uint64_t row_begin = 0;
  uint64_t row_step = 1;
  int n_emit_targets = 0;  // >0: tagged emit targets

  TierRun Run(const PipelineProgram& base, ExecTier tier) {
    PipelineProgram p = base;
    p.finalized = true;
    if (tier == ExecTier::kVectorized) {
      VectorizeResult v = TryVectorize(p);
      EXPECT_NE(v.program, nullptr) << v.reason;
      if (v.program == nullptr) return {};
      p.vec = v.program;
      p.tier = ExecTier::kVectorized;
    }

    TierRun run;
    std::vector<ColumnBinding> bindings;
    for (const auto& c : cols) {
      bindings.push_back({reinterpret_cast<const std::byte*>(c.data()), 8});
    }

    const int nt = n_emit_targets > 0 ? n_emit_targets : 1;
    std::vector<std::vector<std::vector<int64_t>>> stores(nt);
    std::vector<EmitTarget> targets(nt);
    std::vector<EmitTarget*> target_ptrs;
    std::vector<std::vector<std::vector<int64_t>>> flushed(nt);
    for (int t = 0; t < nt; ++t) {
      stores[t].assign(n_out_cols, std::vector<int64_t>(emit_capacity, 0));
      for (auto& col : stores[t]) {
        targets[t].cols.push_back({reinterpret_cast<std::byte*>(col.data()), 8});
      }
      targets[t].capacity = emit_capacity;
      EmitTarget* raw = &targets[t];
      auto* store = &stores[t];
      auto* out = &flushed[t];
      auto* flush_count = &run.flushes;
      raw->on_full = [raw, store, out, flush_count] {
        ++*flush_count;
        std::vector<int64_t> rows;
        for (uint64_t r = 0; r < raw->rows(); ++r) {
          for (auto& col : *store) rows.push_back(col[r]);
        }
        out->push_back(std::move(rows));
        raw->ResetCursor();
      };
      target_ptrs.push_back(raw);
    }

    ExecCtx ctx;
    ctx.cols = bindings.data();
    ctx.n_cols = static_cast<int>(bindings.size());
    ctx.emit = target_ptrs[0];
    ctx.emit_targets = target_ptrs.data();
    ctx.n_emit_targets = nt;
    ctx.local_accs = run.accs;
    ctx.ht_slots = ht_slots;
    ctx.stats = &run.stats;
    ctx.row_begin = row_begin;
    ctx.row_step = row_step;

    run.status = jit::Run(p, ctx, cols.empty() ? 0 : cols[0].size());

    // Collect emitted rows: flushed blocks first, then the open block, per
    // target in order (flush order is part of the parity contract).
    run.emitted.assign(n_out_cols, {});
    for (int t = 0; t < nt; ++t) {
      for (const auto& block : flushed[t]) {
        const uint64_t rows = block.size() / n_out_cols;
        for (uint64_t r = 0; r < rows; ++r) {
          for (int c = 0; c < n_out_cols; ++c) {
            run.emitted[c].push_back(block[r * n_out_cols + c]);
          }
        }
      }
      for (uint64_t r = 0; r < targets[t].rows(); ++r) {
        for (int c = 0; c < n_out_cols; ++c) {
          run.emitted[c].push_back(stores[t][c][r]);
        }
      }
      run.emit_rows += targets[t].rows();
    }
    return run;
  }

  /// Runs both tiers and asserts full parity (results + CostStats + status).
  void ExpectParity(const PipelineProgram& p) {
    TierRun interp = Run(p, ExecTier::kInterpreter);
    TierRun vec = Run(p, ExecTier::kVectorized);
    EXPECT_EQ(interp.status.ok(), vec.status.ok());
    EXPECT_EQ(interp.emitted, vec.emitted);
    for (int i = 0; i < kMaxLocalAccs; ++i) {
      EXPECT_EQ(interp.accs[i], vec.accs[i]) << "acc " << i;
    }
    EXPECT_EQ(interp.flushes, vec.flushes);
    ExpectStatsEq(interp.stats, vec.stats);
  }

  static void ExpectStatsEq(const sim::CostStats& a, const sim::CostStats& b) {
    EXPECT_EQ(a.tuples, b.tuples);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.bytes_read, b.bytes_read);
    EXPECT_EQ(a.bytes_written, b.bytes_written);
    EXPECT_EQ(a.atomics, b.atomics);
    EXPECT_EQ(a.near_accesses, b.near_accesses);
    EXPECT_EQ(a.mid_accesses, b.mid_accesses);
    EXPECT_EQ(a.far_accesses, b.far_accesses);
  }
};

PipelineProgram FilterEmitProgram(int64_t threshold) {
  ProgramBuilder b;
  const int v = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, v, 0);
  const int t = b.AllocReg();
  b.EmitOp(OpCode::kConst, t, 0, 0, 0, threshold);
  const int pred = b.AllocReg();
  b.EmitOp(OpCode::kCmpLt, pred, v, t);
  b.EmitOp(OpCode::kFilter, pred);
  const int dbl = b.AllocReg();
  b.EmitOp(OpCode::kAdd, dbl, v, v);
  const int first = b.AllocReg();
  b.AllocReg();
  b.EmitOp(OpCode::kShl, first, v, 0, 0, 0);
  b.EmitOp(OpCode::kShl, first + 1, dbl, 0, 0, 0);
  b.EmitOp(OpCode::kEmit, first, 2);
  return b.Finalize("vt.filter-emit");
}

TEST(Vectorizer, LowersStraightLineFilterEmit) {
  PipelineProgram p = FilterEmitProgram(50);
  p.finalized = true;
  VectorizeResult v = TryVectorize(p);
  ASSERT_NE(v.program, nullptr) << v.reason;
  EXPECT_GE(v.program->top.size(), 6u);
  EXPECT_TRUE(v.program->loops.empty());
}

TEST(Vectorizer, FilterEmitParity) {
  DiffHarness h;
  h.n_out_cols = 2;
  h.cols.resize(1);
  for (int i = 0; i < 5000; ++i) h.cols[0].push_back((i * 37) % 100);
  h.ExpectParity(FilterEmitProgram(50));
}

TEST(Vectorizer, OnFullFlushBoundariesMatch) {
  DiffHarness h;
  h.n_out_cols = 2;
  h.emit_capacity = 7;  // odd capacity: many partial-block boundaries
  h.cols.resize(1);
  for (int i = 0; i < 257; ++i) h.cols[0].push_back(i % 90);
  h.ExpectParity(FilterEmitProgram(60));
}

TEST(Vectorizer, GridStrideParity) {
  DiffHarness h;
  h.n_out_cols = 2;
  h.cols.resize(1);
  for (int i = 0; i < 3001; ++i) h.cols[0].push_back((i * 13) % 100);
  h.row_begin = 1;
  h.row_step = 3;
  h.ExpectParity(FilterEmitProgram(70));
}

TEST(Vectorizer, TaggedEmitBucketParity) {
  ProgramBuilder b;
  const int v = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, v, 0);
  const int tag = b.AllocReg();
  b.EmitOp(OpCode::kHash, tag, v);
  const int first = b.AllocReg();
  b.EmitOp(OpCode::kShl, first, v, 0, 0, 0);
  b.EmitOp(OpCode::kEmit, first, 1, tag, /*tagged=*/1);
  PipelineProgram p = b.Finalize("vt.hash-pack");

  DiffHarness h;
  h.n_out_cols = 1;
  h.n_emit_targets = 3;
  h.cols.resize(1);
  for (int i = 0; i < 4000; ++i) h.cols[0].push_back(i * 7 + 1);
  h.ExpectParity(p);
}

TEST(Vectorizer, AggLocalParity) {
  for (AggFunc f : {AggFunc::kSum, AggFunc::kCount, AggFunc::kMin, AggFunc::kMax}) {
    ProgramBuilder b;
    const int v = b.AllocReg();
    b.EmitOp(OpCode::kLoadCol, v, 0);
    const int acc = b.AllocLocalAcc(f);
    b.EmitOp(OpCode::kAggLocal, acc, v, static_cast<int>(f));
    PipelineProgram p = b.Finalize("vt.agg");

    DiffHarness h;
    h.cols.resize(1);
    for (int i = 0; i < 2500; ++i) h.cols[0].push_back((i * 31) % 1000 - 500);
    // Both tiers fold into a zero-initialized accumulator; equal is equal.
    TierRun interp = h.Run(p, ExecTier::kInterpreter);
    TierRun vec = h.Run(p, ExecTier::kVectorized);
    DiffHarness::ExpectStatsEq(interp.stats, vec.stats);
    EXPECT_EQ(interp.accs[0], vec.accs[0]) << static_cast<int>(f);
  }
}

/// Probe-loop parity over a chained hash table with duplicate keys: exercises
/// match-list expansion with 0, 1 and many matches per probe, and the
/// chain-walk access accounting.
TEST(Vectorizer, ProbeLoopMultiMatchParity) {
  memory::MemoryManager mm(0, 1ull << 24);
  JoinHashTable ht(&mm, 300, /*payload_width=*/2);
  for (int64_t k = 1; k <= 50; ++k) {
    // Key k inserted k%4+1 times with distinct payloads: multi-match chains.
    for (int64_t dup = 0; dup <= k % 4; ++dup) {
      const int64_t payload[2] = {k * 100 + dup, -k};
      ht.Insert(k, payload);
    }
  }

  ProgramBuilder b;
  const int key = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, key, 0);
  const int iter = b.AllocReg();
  b.EmitOp(OpCode::kHtProbeInit, iter, key, 0, 0, 0, /*cls=*/1);
  const int loop = b.NewLabel();
  const int exit = b.NewLabel();
  b.Bind(loop);
  b.EmitOp(OpCode::kJmpIfNeg, iter, exit);
  const int pay = b.AllocReg();
  b.AllocReg();
  b.EmitOp(OpCode::kHtLoadPayload, pay, iter, 0, 2);
  const int out = b.AllocReg();
  b.EmitOp(OpCode::kAdd, out, pay, key);
  const int first = b.AllocReg();
  b.AllocReg();
  b.EmitOp(OpCode::kShl, first, out, 0, 0, 0);
  b.EmitOp(OpCode::kShl, first + 1, pay + 1, 0, 0, 0);
  b.EmitOp(OpCode::kEmit, first, 2);
  const int sum = b.AllocLocalAcc(AggFunc::kSum);
  b.EmitOp(OpCode::kAggLocal, sum, pay, static_cast<int>(AggFunc::kSum));
  b.EmitOp(OpCode::kHtIterNext, iter, key, 0, 0, 0, /*cls=*/1);
  b.EmitOp(OpCode::kJmp, loop);
  b.Bind(exit);
  PipelineProgram p = b.Finalize("vt.probe");
  {
    PipelineProgram check = p;
    check.finalized = true;
    VectorizeResult v = TryVectorize(check);
    ASSERT_NE(v.program, nullptr) << v.reason;
    ASSERT_EQ(v.program->loops.size(), 1u);
  }

  DiffHarness h;
  h.n_out_cols = 2;
  h.emit_capacity = 64;  // forces mid-loop flushes
  h.ht_slots[0] = &ht;
  h.cols.resize(1);
  for (int i = 0; i < 3000; ++i) {
    h.cols[0].push_back(i % 70);  // keys 51..69 and 0 miss entirely
  }
  h.ExpectParity(p);
}

/// Nested probe loops (two joins) with a group-by style tail.
TEST(Vectorizer, NestedProbeParity) {
  memory::MemoryManager mm(0, 1ull << 24);
  JoinHashTable ht0(&mm, 64, 1);
  JoinHashTable ht1(&mm, 64, 1);
  for (int64_t k = 1; k <= 40; ++k) {
    const int64_t p0 = k * 2;
    ht0.Insert(k, &p0);
    const int64_t p1 = k * 3;
    ht1.Insert(k % 16, &p1);  // duplicates: 2-3 matches per key
  }

  ProgramBuilder b;
  const int key = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, key, 0);
  const int it0 = b.AllocReg();
  b.EmitOp(OpCode::kHtProbeInit, it0, key, 0);
  const int l0 = b.NewLabel();
  const int x0 = b.NewLabel();
  b.Bind(l0);
  b.EmitOp(OpCode::kJmpIfNeg, it0, x0);
  const int pay0 = b.AllocReg();
  b.EmitOp(OpCode::kHtLoadPayload, pay0, it0, 0, 1);
  const int key1 = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, key1, 1);  // column load inside the loop body
  const int it1 = b.AllocReg();
  b.EmitOp(OpCode::kHtProbeInit, it1, key1, 1);
  const int l1 = b.NewLabel();
  const int x1 = b.NewLabel();
  b.Bind(l1);
  b.EmitOp(OpCode::kJmpIfNeg, it1, x1);
  const int pay1 = b.AllocReg();
  b.EmitOp(OpCode::kHtLoadPayload, pay1, it1, 1, 1);
  const int v = b.AllocReg();
  b.EmitOp(OpCode::kAdd, v, pay0, pay1);
  const int sum = b.AllocLocalAcc(AggFunc::kSum);
  b.EmitOp(OpCode::kAggLocal, sum, v, static_cast<int>(AggFunc::kSum));
  const int cnt = b.AllocLocalAcc(AggFunc::kCount);
  b.EmitOp(OpCode::kAggLocal, cnt, v, static_cast<int>(AggFunc::kCount));
  b.EmitOp(OpCode::kHtIterNext, it1, key1, 1);
  b.EmitOp(OpCode::kJmp, l1);
  b.Bind(x1);
  b.EmitOp(OpCode::kHtIterNext, it0, key, 0);
  b.EmitOp(OpCode::kJmp, l0);
  b.Bind(x0);
  PipelineProgram p = b.Finalize("vt.nested");
  {
    PipelineProgram check = p;
    check.finalized = true;
    VectorizeResult v2 = TryVectorize(check);
    ASSERT_NE(v2.program, nullptr) << v2.reason;
    ASSERT_EQ(v2.program->loops.size(), 2u);
    EXPECT_EQ(v2.program->max_loop_depth, 2);
  }

  DiffHarness h;
  h.ht_slots[0] = &ht0;
  h.ht_slots[1] = &ht1;
  h.cols.resize(2);
  for (int i = 0; i < 2000; ++i) {
    h.cols[0].push_back(i % 50);
    h.cols[1].push_back(i % 20);
  }
  h.ExpectParity(p);
}

TEST(Vectorizer, HtInsertParity) {
  auto make_program = [] {
    ProgramBuilder b;
    const int key = b.AllocReg();
    b.EmitOp(OpCode::kLoadCol, key, 0);
    const int pay = b.AllocReg();
    b.EmitOp(OpCode::kLoadCol, pay, 1);
    const int first = b.AllocReg();
    b.EmitOp(OpCode::kShl, first, pay, 0, 0, 0);
    b.EmitOp(OpCode::kHtInsert, 0, key, first, 1, 0, /*cls=*/2);
    return b.Finalize("vt.build");
  };

  memory::MemoryManager mm(0, 1ull << 24);
  std::vector<std::vector<int64_t>> cols(2);
  for (int i = 0; i < 500; ++i) {
    cols[0].push_back(i + 1);
    cols[1].push_back(i * 11);
  }

  auto run = [&](ExecTier tier, sim::CostStats* stats) {
    JoinHashTable ht(&mm, 600, 1);
    DiffHarness h;
    h.cols = cols;
    h.ht_slots[0] = &ht;
    TierRun r = h.Run(make_program(), tier);
    *stats = r.stats;
    EXPECT_EQ(ht.size(), 500u);
    uint64_t hops = 0;
    const int64_t e = ht.FindKeyFrom(ht.ProbeHead(42), 42, &hops);
    EXPECT_GE(e, 0);
    return ht.PayloadOf(e)[0];
  };
  sim::CostStats si, sv;
  const int64_t pi = run(ExecTier::kInterpreter, &si);
  const int64_t pv = run(ExecTier::kVectorized, &sv);
  EXPECT_EQ(pi, pv);
  DiffHarness::ExpectStatsEq(si, sv);
  EXPECT_EQ(si.far_accesses, 500u);  // cls=2 stamped on the insert
}

TEST(Vectorizer, DivByZeroReturnsStatusInBothTiers) {
  ProgramBuilder b;
  const int num = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, num, 0);
  const int den = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, den, 1);
  const int q = b.AllocReg();
  b.EmitOp(OpCode::kDiv, q, num, den);
  const int acc = b.AllocLocalAcc(AggFunc::kSum);
  b.EmitOp(OpCode::kAggLocal, acc, q, static_cast<int>(AggFunc::kSum));
  PipelineProgram p = b.Finalize("vt.div");

  for (ExecTier tier : {ExecTier::kInterpreter, ExecTier::kVectorized}) {
    DiffHarness h;
    h.cols.resize(2);
    for (int i = 0; i < 100; ++i) {
      h.cols[0].push_back(i);
      h.cols[1].push_back(i == 57 ? 0 : 2);  // one zero divisor mid-stream
    }
    TierRun r = h.Run(p, tier);
    EXPECT_FALSE(r.status.ok()) << static_cast<int>(tier);
    EXPECT_NE(r.status.message().find("division by zero"), std::string::npos);
  }
}

// ---------------------------------------------------------------- fallbacks

TEST(VectorizerFallback, UnstructuredJump) {
  ProgramBuilder b;
  const int v = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, v, 0);
  const int done = b.NewLabel();
  b.EmitOp(OpCode::kJmpIfFalse, v, done);
  b.EmitOp(OpCode::kEmit, v, 1);
  b.Bind(done);
  PipelineProgram p = b.Finalize("vt.jump");
  p.finalized = true;
  VectorizeResult r = TryVectorize(p);
  EXPECT_EQ(r.program, nullptr);
  EXPECT_NE(r.reason.find("control flow"), std::string::npos);
}

TEST(VectorizerFallback, TopLevelReadBeforeWrite) {
  ProgramBuilder b;
  const int a = b.AllocReg();
  const int c = b.AllocReg();
  b.EmitOp(OpCode::kAdd, c, a, a);  // reads a before any write
  b.EmitOp(OpCode::kEmit, c, 1);
  PipelineProgram p = b.Finalize("vt.rbw");
  p.finalized = true;
  VectorizeResult r = TryVectorize(p);
  EXPECT_EQ(r.program, nullptr);
  EXPECT_NE(r.reason.find("read before written"), std::string::npos);
}

TEST(VectorizerFallback, LoopBodyRegisterReadAfterLoop) {
  ProgramBuilder b;
  const int key = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, key, 0);
  const int iter = b.AllocReg();
  b.EmitOp(OpCode::kHtProbeInit, iter, key, 0);
  const int loop = b.NewLabel();
  const int exit = b.NewLabel();
  b.Bind(loop);
  b.EmitOp(OpCode::kJmpIfNeg, iter, exit);
  const int pay = b.AllocReg();
  b.EmitOp(OpCode::kHtLoadPayload, pay, iter, 0, 1);
  b.EmitOp(OpCode::kHtIterNext, iter, key, 0);
  b.EmitOp(OpCode::kJmp, loop);
  b.Bind(exit);
  b.EmitOp(OpCode::kEmit, pay, 1);  // reads the body-written payload after exit
  PipelineProgram p = b.Finalize("vt.stale");
  p.finalized = true;
  VectorizeResult r = TryVectorize(p);
  EXPECT_EQ(r.program, nullptr);
  EXPECT_NE(r.reason.find("read after it"), std::string::npos);
}

TEST(VectorizerFallback, MultipleEmitSites) {
  // Two emit sites would reorder per-target rows across tuples relative to the
  // interpreter's per-tuple interleaving — the vectorizer must fall back.
  ProgramBuilder b;
  const int v = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, v, 0);
  b.EmitOp(OpCode::kEmit, v, 1);
  b.EmitOp(OpCode::kEmit, v, 1);
  PipelineProgram p = b.Finalize("vt.two-emits");
  p.finalized = true;
  VectorizeResult r = TryVectorize(p);
  EXPECT_EQ(r.program, nullptr);
  EXPECT_NE(r.reason.find("multiple emit sites"), std::string::npos);
}

TEST(VectorizerFallback, CountersTrackAttempts) {
  ResetVectorizerCounters();
  PipelineProgram good = FilterEmitProgram(10);
  good.finalized = true;
  EXPECT_NE(TryVectorize(good).program, nullptr);

  ProgramBuilder b;
  const int v = b.AllocReg();
  b.EmitOp(OpCode::kLoadCol, v, 0);
  const int done = b.NewLabel();
  b.EmitOp(OpCode::kJmpIfFalse, v, done);
  b.Bind(done);
  PipelineProgram bad = b.Finalize("vt.bad");
  bad.finalized = true;
  EXPECT_EQ(TryVectorize(bad).program, nullptr);

  VectorizerCounters c = GetVectorizerCounters();
  EXPECT_EQ(c.attempts, 2u);
  EXPECT_EQ(c.vectorized, 1u);
  EXPECT_EQ(c.fallbacks, 1u);
}

}  // namespace
}  // namespace hetex::jit
