#include "jit/program.h"

#include <gtest/gtest.h>

namespace hetex::jit {
namespace {

TEST(ProgramBuilder, RegistersAllocateMonotonically) {
  ProgramBuilder b;
  EXPECT_EQ(b.AllocReg(), 0);
  EXPECT_EQ(b.AllocReg(), 1);
  EXPECT_EQ(b.AllocReg(), 2);
}

TEST(ProgramBuilder, LocalAccsRecordFunctions) {
  ProgramBuilder b;
  EXPECT_EQ(b.AllocLocalAcc(AggFunc::kSum), 0);
  EXPECT_EQ(b.AllocLocalAcc(AggFunc::kMax), 1);
  PipelineProgram p = b.Finalize("accs");
  EXPECT_EQ(p.n_local_accs, 2);
  EXPECT_EQ(p.local_acc_funcs[0], AggFunc::kSum);
  EXPECT_EQ(p.local_acc_funcs[1], AggFunc::kMax);
}

TEST(ProgramBuilder, FinalizeAppendsEnd) {
  ProgramBuilder b;
  b.EmitOp(OpCode::kConst, 0, 0, 0, 0, 1);
  PipelineProgram p = b.Finalize("t");
  ASSERT_FALSE(p.code.empty());
  EXPECT_EQ(p.code.back().op, OpCode::kEnd);
}

TEST(ProgramBuilder, ForwardLabelPatched) {
  ProgramBuilder b;
  const int target = b.NewLabel();
  b.EmitOp(OpCode::kJmp, target);           // forward reference
  b.EmitOp(OpCode::kConst, 0, 0, 0, 0, 1);  // skipped
  b.Bind(target);
  b.EmitOp(OpCode::kEnd);
  PipelineProgram p = b.Finalize("fwd");
  EXPECT_EQ(p.code[0].a, 2);  // jump lands on the kEnd
}

TEST(ProgramBuilder, BackwardLabelPatched) {
  ProgramBuilder b;
  const int loop = b.NewLabel();
  b.EmitOp(OpCode::kConst, 0, 0, 0, 0, 1);
  b.Bind(loop);
  b.EmitOp(OpCode::kConst, 1, 0, 0, 0, 2);
  b.EmitOp(OpCode::kJmpIfFalse, 0, loop);
  PipelineProgram p = b.Finalize("back");
  EXPECT_EQ(p.code[2].b, 1);
}

TEST(ProgramBuilder, ConditionalTargetsInOperandB) {
  ProgramBuilder b;
  const int l = b.NewLabel();
  b.EmitOp(OpCode::kJmpIfNeg, 3, l);
  b.Bind(l);
  PipelineProgram p = b.Finalize("cond");
  EXPECT_EQ(p.code[0].a, 3);  // condition register untouched
  EXPECT_EQ(p.code[0].b, 1);
}

TEST(Program, ToStringListsInstructions) {
  ProgramBuilder b;
  b.EmitOp(OpCode::kConst, 0, 0, 0, 0, 42);
  PipelineProgram p = b.Finalize("pretty");
  const std::string s = p.ToString();
  EXPECT_NE(s.find("pretty"), std::string::npos);
  EXPECT_NE(s.find("const"), std::string::npos);
  EXPECT_NE(s.find("imm=42"), std::string::npos);
}

}  // namespace
}  // namespace hetex::jit
