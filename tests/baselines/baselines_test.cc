#include <gtest/gtest.h>

#include "baselines/dbms_c.h"
#include "baselines/dbms_g.h"
#include "test_util.h"

namespace hetex::baselines {
namespace {

using test::TestEnv;

class BaselinesTest : public ::testing::Test {
 protected:
  static TestEnv* env() {
    static TestEnv* instance = new TestEnv(25'000);
    return instance;
  }
};

TEST_F(BaselinesTest, OpStatsCardinalitiesConsistent) {
  const auto spec = env()->ssb->Query(2, 1);
  OpStats st = EvaluateWithStats(spec, env()->system->catalog());
  EXPECT_EQ(st.fact_rows, env()->system->catalog().at("lineorder").rows());
  EXPECT_EQ(st.after_filter, st.fact_rows);  // Q2.1 has no fact filter
  ASSERT_EQ(st.probe_inputs.size(), 3u);
  // Selective part join narrows the pipeline monotonically.
  EXPECT_LE(st.probe_outputs[0], st.probe_inputs[0]);
  EXPECT_EQ(st.probe_inputs[1], st.probe_outputs[0]);
  EXPECT_EQ(st.agg_inputs, st.probe_outputs[2]);
  EXPECT_EQ(st.groups, st.rows.size());
}

TEST_F(BaselinesTest, OpStatsRowsMatchReference) {
  for (const auto& spec : {env()->ssb->Query(1, 1), env()->ssb->Query(3, 2)}) {
    OpStats st = EvaluateWithStats(spec, env()->system->catalog());
    EXPECT_EQ(st.rows, env()->Reference(spec)) << spec.name;
  }
}

TEST_F(BaselinesTest, DbmsCMatchesReferenceOnAllQueries) {
  DbmsC engine(env()->system.get());
  for (const auto& spec : env()->ssb->AllQueries()) {
    auto r = engine.Execute(spec);
    ASSERT_TRUE(r.status.ok()) << spec.name;
    EXPECT_EQ(r.rows, env()->Reference(spec)) << spec.name;
    EXPECT_GT(r.modeled_seconds, 0.0);
  }
}

TEST_F(BaselinesTest, DbmsGMatchesReferenceWhereSupported) {
  DbmsG engine(env()->system.get());
  for (const auto& spec : env()->ssb->AllQueries()) {
    auto r = engine.Execute(spec);
    if (spec.uses_string_range_predicate) continue;  // checked below
    ASSERT_TRUE(r.status.ok()) << spec.name << ": " << r.status.ToString();
    EXPECT_EQ(r.rows, env()->Reference(spec)) << spec.name;
  }
}

TEST_F(BaselinesTest, DbmsGRejectsStringRangePredicates) {
  DbmsG engine(env()->system.get());
  auto r = engine.Execute(env()->ssb->Query(2, 2));
  EXPECT_EQ(r.status.code(), StatusCode::kUnsupported);
}

TEST_F(BaselinesTest, DbmsGQ43FailsOnlyWhenWorkingSetExceedsDevice) {
  const auto q43 = env()->ssb->Query(4, 3);
  // Default test topology: 1 GB per GPU, tiny working set -> runs.
  DbmsG roomy(env()->system.get());
  EXPECT_TRUE(roomy.Execute(q43).status.ok());

  // Shrink device memory below the working set: cardinality estimation OOMs.
  core::System::Options small;
  small.topology.gpu_capacity = 64 << 10;
  core::System tiny_system(small);
  ssb::Ssb::Options opts;
  opts.lineorder_rows = 25'000;
  opts.scale = 0.002;
  ssb::Ssb tiny_ssb(opts, &tiny_system.catalog());
  for (const char* t : {"lineorder", "date", "customer", "supplier", "part"}) {
    ASSERT_TRUE(tiny_system.catalog()
                    .at(t)
                    .Place(tiny_system.HostNodes(), &tiny_system.memory())
                    .ok());
  }
  DbmsG cramped(&tiny_system);
  auto r = cramped.Execute(tiny_ssb.Query(4, 3));
  EXPECT_EQ(r.status.code(), StatusCode::kOutOfMemory);
  // Q4.2 (small group domain) still runs in the same regime.
  EXPECT_TRUE(cramped.Execute(tiny_ssb.Query(4, 2)).status.ok());
}

TEST_F(BaselinesTest, DbmsGResidentDataSkipsTransferTime) {
  const auto spec = env()->ssb->Query(1, 1);
  OpStats st = EvaluateWithStats(spec, env()->system->catalog());
  DbmsGOptions resident;
  resident.data_on_gpu = true;
  DbmsG on_gpu(env()->system.get(), resident);
  DbmsG streaming(env()->system.get());
  EXPECT_LT(on_gpu.Execute(spec, &st).modeled_seconds,
            streaming.Execute(spec, &st).modeled_seconds);
}

TEST_F(BaselinesTest, DbmsCScalesWithWorkers) {
  const auto spec = env()->ssb->Query(1, 1);
  OpStats st = EvaluateWithStats(spec, env()->system->catalog());
  DbmsCOptions one;
  one.workers = 1;
  one.startup_seconds = 0;
  DbmsCOptions many;
  many.workers = 8;
  many.startup_seconds = 0;
  const double t1 = DbmsC(env()->system.get(), one).Execute(spec, &st).modeled_seconds;
  const double t8 = DbmsC(env()->system.get(), many).Execute(spec, &st).modeled_seconds;
  EXPECT_GT(t1 / t8, 3.0);  // near-linear until the socket saturates
}

TEST_F(BaselinesTest, ReducedOccupancySlowsDbmsG) {
  const auto spec = env()->ssb->Query(2, 1);
  OpStats st = EvaluateWithStats(spec, env()->system->catalog());
  DbmsGOptions full;
  full.occupancy = 1.0;
  full.data_on_gpu = true;
  full.startup_seconds = 0;
  DbmsGOptions half;
  half.occupancy = 0.5;
  half.data_on_gpu = true;
  half.startup_seconds = 0;
  EXPECT_GT(DbmsG(env()->system.get(), half).Execute(spec, &st).modeled_seconds,
            DbmsG(env()->system.get(), full).Execute(spec, &st).modeled_seconds);
}

}  // namespace
}  // namespace hetex::baselines
