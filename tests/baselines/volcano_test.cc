#include "baselines/volcano.h"

#include <gtest/gtest.h>

#include "baselines/dbms_c.h"
#include "test_util.h"

namespace hetex::baselines {
namespace {

using test::TestEnv;

class VolcanoTest : public ::testing::Test {
 protected:
  static TestEnv* env() {
    static TestEnv* instance = new TestEnv(20'000);
    return instance;
  }
};

TEST_F(VolcanoTest, MatchesReferenceOnAllSsbQueries) {
  VolcanoEngine engine(env()->system.get());
  for (const auto& spec : env()->ssb->AllQueries()) {
    auto r = engine.Execute(spec);
    ASSERT_TRUE(r.status.ok()) << spec.name;
    EXPECT_EQ(r.rows, env()->Reference(spec)) << spec.name;
  }
}

TEST_F(VolcanoTest, ScalarAggregatesMatchReference) {
  VolcanoEngine engine(env()->system.get());
  const auto spec = env()->ssb->Query(1, 2);
  auto r = engine.Execute(spec);
  EXPECT_EQ(r.rows, env()->Reference(spec));
}

TEST_F(VolcanoTest, InterpretationOverheadChargedPerNextCall) {
  const auto spec = env()->ssb->Query(1, 1);
  VolcanoOptions cheap;
  cheap.next_call_cost = 0;
  cheap.startup_seconds = 0;
  VolcanoOptions expensive;
  expensive.next_call_cost = 100e-9;
  expensive.startup_seconds = 0;
  const double t_cheap =
      VolcanoEngine(env()->system.get(), cheap).Execute(spec).modeled_seconds;
  const double t_exp =
      VolcanoEngine(env()->system.get(), expensive).Execute(spec).modeled_seconds;
  EXPECT_GT(t_exp, t_cheap * 2);  // next() calls dominate at 100 ns
}

TEST_F(VolcanoTest, SlowerThanVectorizedExecution) {
  // The paper's premise (2.2): interpretation is the CPU bottleneck. Compare
  // pure execution (startup costs zeroed — the tiny test input would otherwise
  // be dominated by them).
  const auto spec = env()->ssb->Query(1, 1);
  VolcanoOptions vo;
  vo.startup_seconds = 0;
  VolcanoEngine volcano(env()->system.get(), vo);
  DbmsCOptions co;
  co.startup_seconds = 0;
  DbmsC vectorized(env()->system.get(), co);
  const double t_volcano = volcano.Execute(spec).modeled_seconds;
  const double t_vec = vectorized.Execute(spec).modeled_seconds;
  EXPECT_GT(t_volcano, t_vec * 3);
}

TEST_F(VolcanoTest, WorkerCountSpeedsItUp) {
  const auto spec = env()->ssb->Query(2, 1);
  VolcanoOptions one;
  one.workers = 1;
  one.startup_seconds = 0;
  VolcanoOptions eight;
  eight.workers = 8;
  eight.startup_seconds = 0;
  const double t1 =
      VolcanoEngine(env()->system.get(), one).Execute(spec).modeled_seconds;
  const double t8 =
      VolcanoEngine(env()->system.get(), eight).Execute(spec).modeled_seconds;
  EXPECT_GT(t1 / t8, 4.0);
}

}  // namespace
}  // namespace hetex::baselines
