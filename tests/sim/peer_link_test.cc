// NVLink-class peer links: FIFO queueing of concurrent sessions on one link,
// contention never speeding a transfer up, functional copies, and — end to
// end — the coster's peer-vs-host-staged route ordering agreeing with the
// measured virtual times the runtime charges.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "core/executor.h"
#include "core/system.h"
#include "plan/coster.h"
#include "plan/het_plan.h"
#include "sim/dma_engine.h"
#include "sim/topology.h"
#include "ssb/ssb.h"

namespace hetex::sim {
namespace {

class PeerLinkTest : public ::testing::Test {
 protected:
  PeerLinkTest() : topo_(Topology::ScaleOutOptions(2)), dma_(&topo_) {}

  double OneTransfer(uint64_t bytes) const {
    const CostModel& cm = topo_.cost_model();
    return cm.peer_dma_latency + bytes / cm.nvlink_bw;
  }

  Topology topo_;
  DmaEngine dma_;
};

TEST_F(PeerLinkTest, FabricHasOnePeerLinkBetweenTheGpus) {
  ASSERT_EQ(topo_.num_gpus(), 2);
  ASSERT_EQ(topo_.num_peer_links(), 1);
  EXPECT_EQ(topo_.PeerLinkOf(0, 1), 0);
  EXPECT_EQ(topo_.PeerLinkOf(1, 0), 0);  // undirected
  EXPECT_EQ(topo_.PeerLinkOf(0, 0), -1);
}

TEST_F(PeerLinkTest, FunctionalCopy) {
  std::vector<uint8_t> src(4096);
  std::iota(src.begin(), src.end(), 0);
  std::vector<uint8_t> dst(4096, 0);
  TransferTicket t =
      dma_.TransferPeer(src.data(), dst.data(), src.size(), 0, 0.0);
  t.Wait();
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST_F(PeerLinkTest, ModeledTimeMatchesNvlinkRate) {
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  TransferTicket t =
      dma_.TransferPeer(buf.data(), dst.data(), buf.size(), 0, 0.0);
  EXPECT_NEAR(t.ready_at(), OneTransfer(1 << 20), 1e-12);
  t.Wait();
}

TEST_F(PeerLinkTest, TwoSessionsQueueFifoOnOneLink) {
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  // Session A (epoch 0) and session B (same epoch) share the one NVLink:
  // whichever reserves second queues behind the first, FIFO, and each sees
  // session-local completion times.
  TransferTicket a =
      dma_.TransferPeer(buf.data(), dst.data(), buf.size(), 0, 0.0, 0.0);
  TransferTicket b =
      dma_.TransferPeer(buf.data(), dst.data(), buf.size(), 0, 0.0, 0.0);
  const double one = OneTransfer(1 << 20);
  EXPECT_NEAR(a.ready_at(), one, 1e-12);
  EXPECT_NEAR(b.ready_at(), 2 * one, 1e-12);
  a.Wait();
  b.Wait();
}

TEST_F(PeerLinkTest, ContentionNeverSpeedsUpATransfer) {
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  // Solo reference on a fresh session anchored at the link horizon.
  TransferTicket solo = dma_.TransferPeer(buf.data(), dst.data(), buf.size(),
                                          0, 0.0, topo_.LinkHorizon());
  const double solo_t = solo.ready_at();
  solo.Wait();
  // Four same-epoch sessions contend for the link: completion order is the
  // issue order, every transfer takes at least the solo time, and each later
  // one only ever finishes later — contention never speeds anything up.
  const VTime epoch = topo_.LinkHorizon();
  std::vector<TransferTicket> tickets;
  for (int i = 0; i < 4; ++i) {
    tickets.push_back(
        dma_.TransferPeer(buf.data(), dst.data(), buf.size(), 0, 0.0, epoch));
  }
  double prev = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_GE(tickets[i].ready_at(), solo_t - 1e-12) << "transfer " << i;
    EXPECT_GT(tickets[i].ready_at(), prev) << "transfer " << i;
    EXPECT_NEAR(tickets[i].ready_at(), (i + 1) * solo_t, 1e-9);
    prev = tickets[i].ready_at();
  }
  for (auto& t : tickets) t.Wait();
}

TEST_F(PeerLinkTest, PeerBacklogRaisesLinkHorizon) {
  const VTime before = topo_.LinkHorizon();
  const auto w = topo_.peer_link(0).Reserve(64 << 20, 0.0);
  EXPECT_GT(topo_.LinkHorizon(), before);
  EXPECT_DOUBLE_EQ(topo_.LinkHorizon(), w.end);
  // A session anchored at the horizon sees the peer link idle again.
  const auto fresh =
      topo_.peer_link(0).Reserve(1 << 20, 0.0, topo_.LinkHorizon());
  EXPECT_DOUBLE_EQ(fresh.start, 0.0);
}

}  // namespace
}  // namespace hetex::sim

namespace hetex {
namespace {

/// Two identical 2-GPU systems, every table resident in GPU 0's memory, the
/// query pinned to GPU 1 — the whole fact stream crosses GPU<->GPU. One
/// fabric has the NVLink mesh, the other routes the same move over two
/// staged PCIe hops through host memory.
struct PeerLegEnv {
  explicit PeerLegEnv(bool with_peer_mesh) {
    core::System::Options opts;
    opts.topology = sim::Topology::ScaleOutOptions(2);
    if (!with_peer_mesh) opts.topology.peer_links.clear();
    opts.topology.inter_socket_bw = 0;  // isolate the GPU<->GPU route
    opts.topology.cores_per_socket = 2;
    opts.topology.gpu_sim_threads = 2;
    opts.topology.host_capacity_per_socket = 4ull << 30;
    opts.topology.gpu_capacity = 1ull << 30;
    opts.blocks.block_bytes = 64 << 10;
    opts.blocks.host_arena_blocks = 256;
    opts.blocks.gpu_arena_blocks = 128;
    system = std::make_unique<core::System>(opts);

    ssb::Ssb::Options ssb_opts;
    ssb_opts.lineorder_rows = 20'000;
    ssb_opts.scale = 0.002;
    ssb = std::make_unique<ssb::Ssb>(ssb_opts, &system->catalog());
    const std::vector<sim::MemNodeId> gpu0 = {system->GpuNodes()[0]};
    for (const char* name :
         {"lineorder", "date", "customer", "supplier", "part"}) {
      HETEX_CHECK_OK(system->catalog().at(name).Place(gpu0, &system->memory()));
    }
  }

  double Measure(const plan::QuerySpec& spec, const plan::ExecPolicy& policy) {
    core::QueryExecutor executor(system.get());
    const core::QueryResult r = executor.Execute(spec, policy);
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    return r.status.ok() ? r.modeled_seconds : -1.0;
  }

  double Estimate(const plan::QuerySpec& spec, const plan::ExecPolicy& policy) {
    plan::PlanCoster::Options copts;
    copts.pack_block_rows = system->blocks().options().block_bytes / 8;
    plan::PlanCoster coster(spec, system->catalog(), system->topology(), copts);
    const plan::HetPlan plan =
        plan::BuildHetPlan(spec, policy, system->topology());
    auto cost = coster.Cost(plan);
    EXPECT_TRUE(cost.ok()) << cost.status().ToString();
    return cost.ok() ? cost.value().total : -1.0;
  }

  std::unique_ptr<core::System> system;
  std::unique_ptr<ssb::Ssb> ssb;
};

TEST(PeerRouteE2ETest, PeerHopBeatsHostStagingAndCosterOrderingAgrees) {
  PeerLegEnv peer(/*with_peer_mesh=*/true);
  PeerLegEnv staged(/*with_peer_mesh=*/false);
  plan::ExecPolicy policy = plan::ExecPolicy::GpuOnly({1});
  policy.block_rows = 4096;
  const auto spec_peer = peer.ssb->Query(3, 1);
  const auto spec_staged = staged.ssb->Query(3, 1);

  const double meas_peer = peer.Measure(spec_peer, policy);
  const double meas_staged = staged.Measure(spec_staged, policy);
  ASSERT_GT(meas_peer, 0);
  ASSERT_GT(meas_staged, 0);
  // A single NVLink hop must beat two staged PCIe hops through host memory.
  EXPECT_LT(meas_peer, meas_staged);

  // The coster prices both routes with the constants the runtime charges, so
  // the estimated ordering agrees with the measured one.
  const double est_peer = peer.Estimate(spec_peer, policy);
  const double est_staged = staged.Estimate(spec_staged, policy);
  ASSERT_GT(est_peer, 0);
  ASSERT_GT(est_staged, 0);
  EXPECT_LT(est_peer, est_staged);
}

TEST(PeerRouteE2ETest, StaticRouteEstimatePrefersPeerHop) {
  const sim::Topology meshed(sim::Topology::ScaleOutOptions(4));
  sim::Topology::Options no_mesh = sim::Topology::ScaleOutOptions(4);
  no_mesh.peer_links.clear();
  const sim::Topology staged(no_mesh);
  const uint64_t bytes = 1 << 20;
  const sim::VTime peer_t =
      plan::PlanCoster::EstimateGpuToGpuTransfer(meshed, 0, 3, bytes, 4);
  const sim::VTime staged_t =
      plan::PlanCoster::EstimateGpuToGpuTransfer(staged, 0, 3, bytes, 4);
  EXPECT_LT(peer_t, staged_t);
  const auto& cm = meshed.cost_model();
  EXPECT_NEAR(peer_t, 4 * cm.peer_dma_latency + bytes / cm.nvlink_bw, 1e-12);
  EXPECT_NEAR(staged_t, 2 * (4 * cm.dma_latency) + 2 * (bytes / cm.pcie_bw),
              1e-12);
}

}  // namespace
}  // namespace hetex
