#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "sim/dma_engine.h"
#include "sim/gpu_device.h"
#include "sim/topology.h"

namespace hetex::sim {
namespace {

class DmaTest : public ::testing::Test {
 protected:
  DmaTest() : topo_(Topology::Options{}), dma_(&topo_) {}
  Topology topo_;
  DmaEngine dma_;
};

TEST_F(DmaTest, FunctionalCopy) {
  std::vector<uint8_t> src(4096);
  std::iota(src.begin(), src.end(), 0);
  std::vector<uint8_t> dst(4096, 0);
  TransferTicket t = dma_.Transfer(src.data(), dst.data(), src.size(), 0, 0.0);
  t.Wait();
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST_F(DmaTest, ModeledTimeMatchesLinkRate) {
  std::vector<uint8_t> buf(1 << 20);
  std::vector<uint8_t> dst(1 << 20);
  const double expected = topo_.cost_model().dma_latency +
                          (1 << 20) / topo_.cost_model().pcie_bw;
  TransferTicket t = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0);
  EXPECT_NEAR(t.ready_at(), expected, 1e-12);
  t.Wait();  // buffers must outlive the async copy
}

TEST_F(DmaTest, PageableHalvesThroughput) {
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  TransferTicket pinned = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0);
  // Fresh session anchored past the pinned transfer: the link looks idle.
  const VTime epoch = topo_.LinkHorizon();
  TransferTicket pageable =
      dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0,
                    /*pageable=*/true, epoch);
  const auto& cm = topo_.cost_model();
  EXPECT_GT(pageable.ready_at(), pinned.ready_at() * 1.5);
  EXPECT_NEAR(pageable.ready_at() - cm.dma_latency,
              (1 << 20) / cm.pcie_pageable_bw, 1e-9);
  pinned.Wait();
  pageable.Wait();
}

TEST_F(DmaTest, ConcurrentSessionsContendOnOneLink) {
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  // Session A (epoch 0) and session B (same epoch) share link 0: whichever
  // reserves second queues behind the first, and both see session-local times.
  TransferTicket a = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0,
                                   false, 0.0);
  TransferTicket b = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0,
                                   false, 0.0);
  const double one = topo_.cost_model().dma_latency +
                     (1 << 20) / topo_.cost_model().pcie_bw;
  EXPECT_NEAR(a.ready_at(), one, 1e-12);
  EXPECT_NEAR(b.ready_at(), 2 * one, 1e-12);
  a.Wait();
  b.Wait();
}

TEST_F(DmaTest, TransfersOnOneLinkQueue) {
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  TransferTicket t1 = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0);
  TransferTicket t2 = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0);
  EXPECT_GT(t2.ready_at(), t1.ready_at());
  t1.Wait();
  t2.Wait();
}

TEST_F(DmaTest, SeparateLinksRunInParallel) {
  // Distinct buffers per link: the two links' workers really do copy in
  // parallel in wall clock, so sharing a destination would be a data race.
  std::vector<uint8_t> buf1(1 << 20), dst1(1 << 20);
  std::vector<uint8_t> buf2(1 << 20), dst2(1 << 20);
  TransferTicket t1 = dma_.Transfer(buf1.data(), dst1.data(), buf1.size(), 0, 0.0);
  TransferTicket t2 = dma_.Transfer(buf2.data(), dst2.data(), buf2.size(), 1, 0.0);
  EXPECT_DOUBLE_EQ(t1.ready_at(), t2.ready_at());  // independent virtual queues
  t1.Wait();
  t2.Wait();
}

class GpuDeviceTest : public ::testing::Test {
 protected:
  GpuDeviceTest() : topo_(MakeOptions()), gpu_(topo_.gpu(0), &topo_.cost_model()) {}
  static Topology::Options MakeOptions() {
    Topology::Options o;
    o.gpu_sim_threads = 3;  // deliberately odd
    return o;
  }
  Topology topo_;
  GpuDevice gpu_;
};

TEST_F(GpuDeviceTest, EveryLogicalThreadRunsExactlyOnce) {
  constexpr int kGrid = 257;  // not divisible by sim threads
  std::vector<std::atomic<int>> hits(kGrid);
  auto kernel = [&](const KernelCtx& ctx) {
    hits[ctx.thread_id].fetch_add(1);
    EXPECT_EQ(ctx.num_threads, kGrid);
  };
  gpu_.LaunchKernel(kernel, kGrid, 32, 0.0);
  for (int i = 0; i < kGrid; ++i) EXPECT_EQ(hits[i].load(), 1) << "tid " << i;
}

TEST_F(GpuDeviceTest, BlockAndLaneIdsConsistent) {
  auto kernel = [&](const KernelCtx& ctx) {
    EXPECT_EQ(ctx.block_id, ctx.thread_id / ctx.block_dim);
    EXPECT_EQ(ctx.lane, ctx.thread_id % ctx.block_dim);
    EXPECT_EQ(ctx.block_dim, 32);
  };
  gpu_.LaunchKernel(kernel, 128, 32, 0.0);
}

TEST_F(GpuDeviceTest, StatsAggregateAcrossWorkers) {
  auto kernel = [&](const KernelCtx& ctx) { ctx.stats->tuples += 2; };
  auto r = gpu_.LaunchKernel(kernel, 100, 32, 0.0);
  EXPECT_EQ(r.stats.tuples, 200u);
}

TEST_F(GpuDeviceTest, LaunchLatencyCharged) {
  auto noop = [](const KernelCtx&) {};
  auto r = gpu_.LaunchKernel(noop, 64, 32, 0.0);
  EXPECT_NEAR(r.end - r.start, topo_.cost_model().kernel_launch_latency, 1e-12);
}

TEST_F(GpuDeviceTest, KernelsSerializeOnStream) {
  auto noop = [](const KernelCtx&) {};
  auto r1 = gpu_.LaunchKernel(noop, 64, 32, 0.0);
  auto r2 = gpu_.LaunchKernel(noop, 64, 32, 0.0);
  EXPECT_DOUBLE_EQ(r2.start, r1.end);
}

TEST_F(GpuDeviceTest, StreamingCostUsesDeviceBandwidth) {
  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 320'000'000;
  };
  auto r = gpu_.LaunchKernel(kernel, 64, 32, 0.0);
  // 320 MB at 320 GB/s = 1 ms (+ launch latency).
  EXPECT_NEAR(r.end - r.start, 1e-3 + topo_.cost_model().kernel_launch_latency,
              1e-5);
}

TEST_F(GpuDeviceTest, StreamBwOverrideForUva) {
  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 12'000'000;
  };
  auto r = gpu_.LaunchKernel(kernel, 64, 32, 0.0, topo_.cost_model().pcie_bw);
  // 12 MB at PCIe 12 GB/s = 1 ms.
  EXPECT_NEAR(r.end - r.start, 1e-3 + topo_.cost_model().kernel_launch_latency,
              1e-5);
}

// ---------------------------------------------------------------------------
// UVA link occupancy: a zero-copy kernel's streamed bytes reserve real
// occupancy on the PCIe link BandwidthServer, exactly like DMA.
// ---------------------------------------------------------------------------

TEST_F(GpuDeviceTest, UvaKernelMatchesStreamDiscountOnIdleLink) {
  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 12'000'000;
  };
  // Old model: bandwidth discounted to the PCIe rate on the GPU stream only.
  auto discounted =
      gpu_.LaunchKernel(kernel, 64, 32, 0.0, topo_.cost_model().pcie_bw);
  // New model: the bytes reserve the link itself. On an idle link the modeled
  // kernel duration is identical — the recalibration-free equivalence that
  // keeps solo bare-GPU baselines unchanged.
  GpuDevice::LaunchOptions opts;
  opts.epoch = gpu_.stream_free_at();  // fresh session, idle stream
  opts.uva_link = &topo_.pcie_link(topo_.PcieLinkOf(0));
  auto charged = gpu_.LaunchKernel(kernel, 64, 32, opts);
  EXPECT_NEAR(charged.end - charged.start, discounted.end - discounted.start,
              1e-9);
}

TEST_F(GpuDeviceTest, UvaKernelBytesOccupyTheLink) {
  BandwidthServer& link = topo_.pcie_link(topo_.PcieLinkOf(0));
  const VTime before = link.free_at();
  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 12'000'000;
  };
  GpuDevice::LaunchOptions opts;
  opts.uva_link = &link;
  gpu_.LaunchKernel(kernel, 64, 32, opts);
  // 12 MB at 12 GB/s: the link horizon moved by the kernel's streamed bytes.
  EXPECT_NEAR(link.free_at() - before, 1e-3, 1e-9);
}

TEST_F(GpuDeviceTest, UvaKernelsOnBusyStreamDoNotDoubleChargeLinkWait) {
  // Two same-epoch transfer-bound UVA kernels on one GPU: B waits for the
  // stream (kernels serialize) and then streams its own bytes. The stream
  // wait must not ALSO appear as link queueing inside B's modeled work —
  // B's bytes anchor where its kernel can actually start, so B ends one
  // transfer after A, not two.
  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 12'000'000;
  };
  GpuDevice::LaunchOptions opts;
  opts.uva_link = &topo_.pcie_link(topo_.PcieLinkOf(0));
  auto a = gpu_.LaunchKernel(kernel, 64, 32, opts);
  auto b = gpu_.LaunchKernel(kernel, 64, 32, opts);
  const double transfer = 12'000'000 / topo_.cost_model().pcie_bw;  // 1 ms
  const double launch = topo_.cost_model().kernel_launch_latency;
  EXPECT_NEAR(b.end - b.start, transfer + launch, 1e-6);
  EXPECT_NEAR(b.end, a.end + transfer + launch, 1e-6);
}

TEST_F(GpuDeviceTest, UvaBytesAnchorAtKernelGapNotStreamHorizon) {
  // A far-future session occupies the stream well past this session's epoch.
  // The UVA kernel first-fits into the open gap at the start of the timeline,
  // and its link bytes must anchor in that gap too — not at the stream
  // horizon, which would leave phantom far-future link occupancy while the
  // kernel is reported done at t~=0.
  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 12'000'000;
  };
  GpuDevice::LaunchOptions future;
  future.epoch = 1000.0;
  future.uva_link = &topo_.pcie_link(topo_.PcieLinkOf(0));
  gpu_.LaunchKernel(kernel, 64, 32, future);

  GpuDevice::LaunchOptions now;
  now.uva_link = future.uva_link;
  auto r = gpu_.LaunchKernel(kernel, 64, 32, now);
  const double transfer = 12'000'000 / topo_.cost_model().pcie_bw;  // 1 ms
  EXPECT_DOUBLE_EQ(r.start, 0.0);  // slot in the gap before the future session
  EXPECT_NEAR(r.end, transfer + topo_.cost_model().kernel_launch_latency, 1e-6);
  // The bytes landed in the same gap: a third session's DMA right after the
  // kernel is pushed past the kernel's transfer, not past the far horizon.
  DmaEngine dma(&topo_);
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  TransferTicket t =
      dma.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0, false, 0.0);
  EXPECT_GT(t.ready_at(), transfer);
  EXPECT_LT(t.ready_at(), transfer + 1e-3);
  t.Wait();
}

TEST_F(GpuDeviceTest, UvaKernelStaysAnchoredWhenLinkQueueingOutgrowsTheGap) {
  // The probe->reserve TOCTOU this PR closes: the stream probe sees a gap
  // large enough for the UNCONTENDED duration, the link bytes anchor there,
  // and then link queueing inflates the slot past the gap. Re-running first
  // fit on commit (the old code) would tear the kernel away from the interval
  // its bytes occupy; the anchored commit must keep the probed start and
  // stack stream occupancy instead.
  DmaEngine dma(&topo_);
  std::vector<uint8_t> buf(12 << 20), dst(12 << 20);
  TransferTicket t =  // ~1 ms of link-0 backlog the UVA bytes queue behind
      dma.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0, false, 0.0);

  auto noop = [](const KernelCtx&) {};
  gpu_.LaunchKernel(noop, 64, 32, /*earliest=*/2e-4);  // gap is [0, 2e-4)

  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 1'000'000;
  };
  GpuDevice::LaunchOptions opts;
  opts.uva_link = &topo_.pcie_link(topo_.PcieLinkOf(0));
  auto r = gpu_.LaunchKernel(kernel, 64, 32, opts);
  const auto& cm = topo_.cost_model();
  // Uncontended the slot is launch + 1MB/12GB/s ~= 91 us — it probes into the
  // gap at 0. Queued behind 12 MB of DMA the real slot is ~1.1 ms, far larger
  // than the gap; the kernel must stay at the probed start regardless.
  EXPECT_DOUBLE_EQ(r.start, 0.0);
  EXPECT_NEAR(r.end,
              t.ready_at() + 1'000'000 / cm.pcie_bw + cm.kernel_launch_latency,
              1e-6);
  t.Wait();
}

TEST_F(GpuDeviceTest, DmaQueuesBehindUvaKernel) {
  // A UVA query streams 12 MB over link 0; a concurrent session's DMA on the
  // same link (same epoch) must queue behind it.
  DmaEngine dma(&topo_);
  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 12'000'000;
  };
  GpuDevice::LaunchOptions opts;
  opts.uva_link = &topo_.pcie_link(topo_.PcieLinkOf(0));
  gpu_.LaunchKernel(kernel, 64, 32, opts);

  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  TransferTicket t =
      dma.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0, false, 0.0);
  const auto& cm = topo_.cost_model();
  const double solo = cm.dma_latency + (1 << 20) / cm.pcie_bw;
  // Queued behind the kernel's ~1 ms of link occupancy.
  EXPECT_GT(t.ready_at(), solo + 0.9e-3);
  t.Wait();
}

TEST_F(GpuDeviceTest, UvaKernelQueuesBehindDma) {
  // The reverse direction: a DMA-heavy session fills the link; the UVA
  // kernel's transfer (and therefore the kernel) is pushed out.
  DmaEngine dma(&topo_);
  std::vector<uint8_t> buf(12 << 20), dst(12 << 20);
  TransferTicket t =
      dma.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0, false, 0.0);

  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 1'000'000;
  };
  GpuDevice::LaunchOptions opts;
  opts.uva_link = &topo_.pcie_link(topo_.PcieLinkOf(0));
  auto r = gpu_.LaunchKernel(kernel, 64, 32, opts);
  const auto& cm = topo_.cost_model();
  // Solo the kernel would finish in launch + 1MB/12GB/s; behind 12 MB of DMA
  // it cannot end before the DMA drained plus its own bytes.
  EXPECT_GT(r.end, t.ready_at());
  EXPECT_NEAR(r.end,
              t.ready_at() + 1'000'000 / cm.pcie_bw + cm.kernel_launch_latency,
              1e-6);
  t.Wait();
}

TEST_F(GpuDeviceTest, EpochPastStreamBacklogStartsFresh) {
  auto noop = [](const KernelCtx&) {};
  gpu_.LaunchKernel(noop, 64, 32, 0.0);
  EXPECT_GT(gpu_.stream_free_at(), 0.0);
  // New session anchored at the stream horizon: its kernel starts at local 0.
  auto r = gpu_.LaunchKernel(noop, 64, 32, 0.0, 0.0, gpu_.stream_free_at());
  EXPECT_DOUBLE_EQ(r.start, 0.0);
}

TEST_F(GpuDeviceTest, ConcurrentSessionsSerializeOnStream) {
  auto noop = [](const KernelCtx&) {};
  // Session A fills the stream; session B (same epoch 0) queues behind it and
  // sees the wait in its session-local window.
  auto a = gpu_.LaunchKernel(noop, 64, 32, 0.0, 0.0, 0.0);
  auto b = gpu_.LaunchKernel(noop, 64, 32, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(b.start, a.end);
}

TEST_F(GpuDeviceTest, DeviceAtomicsAcrossGrid) {
  std::atomic<int64_t> acc{0};
  auto kernel = [&](const KernelCtx& ctx) {
    acc.fetch_add(ctx.thread_id, std::memory_order_relaxed);
  };
  constexpr int kGrid = 1000;
  gpu_.LaunchKernel(kernel, kGrid, 32, 0.0);
  EXPECT_EQ(acc.load(), kGrid * (kGrid - 1) / 2);
}

}  // namespace
}  // namespace hetex::sim
