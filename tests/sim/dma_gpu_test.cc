#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "sim/dma_engine.h"
#include "sim/gpu_device.h"
#include "sim/topology.h"

namespace hetex::sim {
namespace {

class DmaTest : public ::testing::Test {
 protected:
  DmaTest() : topo_(Topology::Options{}), dma_(&topo_) {}
  Topology topo_;
  DmaEngine dma_;
};

TEST_F(DmaTest, FunctionalCopy) {
  std::vector<uint8_t> src(4096);
  std::iota(src.begin(), src.end(), 0);
  std::vector<uint8_t> dst(4096, 0);
  TransferTicket t = dma_.Transfer(src.data(), dst.data(), src.size(), 0, 0.0);
  t.Wait();
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST_F(DmaTest, ModeledTimeMatchesLinkRate) {
  std::vector<uint8_t> buf(1 << 20);
  std::vector<uint8_t> dst(1 << 20);
  const double expected = topo_.cost_model().dma_latency +
                          (1 << 20) / topo_.cost_model().pcie_bw;
  TransferTicket t = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0);
  EXPECT_NEAR(t.ready_at(), expected, 1e-12);
  t.Wait();  // buffers must outlive the async copy
}

TEST_F(DmaTest, PageableHalvesThroughput) {
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  TransferTicket pinned = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0);
  // Fresh session anchored past the pinned transfer: the link looks idle.
  const VTime epoch = topo_.LinkHorizon();
  TransferTicket pageable =
      dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0,
                    /*pageable=*/true, epoch);
  const auto& cm = topo_.cost_model();
  EXPECT_GT(pageable.ready_at(), pinned.ready_at() * 1.5);
  EXPECT_NEAR(pageable.ready_at() - cm.dma_latency,
              (1 << 20) / cm.pcie_pageable_bw, 1e-9);
  pinned.Wait();
  pageable.Wait();
}

TEST_F(DmaTest, ConcurrentSessionsContendOnOneLink) {
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  // Session A (epoch 0) and session B (same epoch) share link 0: whichever
  // reserves second queues behind the first, and both see session-local times.
  TransferTicket a = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0,
                                   false, 0.0);
  TransferTicket b = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0,
                                   false, 0.0);
  const double one = topo_.cost_model().dma_latency +
                     (1 << 20) / topo_.cost_model().pcie_bw;
  EXPECT_NEAR(a.ready_at(), one, 1e-12);
  EXPECT_NEAR(b.ready_at(), 2 * one, 1e-12);
  a.Wait();
  b.Wait();
}

TEST_F(DmaTest, TransfersOnOneLinkQueue) {
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  TransferTicket t1 = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0);
  TransferTicket t2 = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0);
  EXPECT_GT(t2.ready_at(), t1.ready_at());
  t1.Wait();
  t2.Wait();
}

TEST_F(DmaTest, SeparateLinksRunInParallel) {
  std::vector<uint8_t> buf(1 << 20), dst(1 << 20);
  TransferTicket t1 = dma_.Transfer(buf.data(), dst.data(), buf.size(), 0, 0.0);
  TransferTicket t2 = dma_.Transfer(buf.data(), dst.data(), buf.size(), 1, 0.0);
  EXPECT_DOUBLE_EQ(t1.ready_at(), t2.ready_at());  // independent virtual queues
  t1.Wait();
  t2.Wait();
}

class GpuDeviceTest : public ::testing::Test {
 protected:
  GpuDeviceTest() : topo_(MakeOptions()), gpu_(topo_.gpu(0), &topo_.cost_model()) {}
  static Topology::Options MakeOptions() {
    Topology::Options o;
    o.gpu_sim_threads = 3;  // deliberately odd
    return o;
  }
  Topology topo_;
  GpuDevice gpu_;
};

TEST_F(GpuDeviceTest, EveryLogicalThreadRunsExactlyOnce) {
  constexpr int kGrid = 257;  // not divisible by sim threads
  std::vector<std::atomic<int>> hits(kGrid);
  auto kernel = [&](const KernelCtx& ctx) {
    hits[ctx.thread_id].fetch_add(1);
    EXPECT_EQ(ctx.num_threads, kGrid);
  };
  gpu_.LaunchKernel(kernel, kGrid, 32, 0.0);
  for (int i = 0; i < kGrid; ++i) EXPECT_EQ(hits[i].load(), 1) << "tid " << i;
}

TEST_F(GpuDeviceTest, BlockAndLaneIdsConsistent) {
  auto kernel = [&](const KernelCtx& ctx) {
    EXPECT_EQ(ctx.block_id, ctx.thread_id / ctx.block_dim);
    EXPECT_EQ(ctx.lane, ctx.thread_id % ctx.block_dim);
    EXPECT_EQ(ctx.block_dim, 32);
  };
  gpu_.LaunchKernel(kernel, 128, 32, 0.0);
}

TEST_F(GpuDeviceTest, StatsAggregateAcrossWorkers) {
  auto kernel = [&](const KernelCtx& ctx) { ctx.stats->tuples += 2; };
  auto r = gpu_.LaunchKernel(kernel, 100, 32, 0.0);
  EXPECT_EQ(r.stats.tuples, 200u);
}

TEST_F(GpuDeviceTest, LaunchLatencyCharged) {
  auto noop = [](const KernelCtx&) {};
  auto r = gpu_.LaunchKernel(noop, 64, 32, 0.0);
  EXPECT_NEAR(r.end - r.start, topo_.cost_model().kernel_launch_latency, 1e-12);
}

TEST_F(GpuDeviceTest, KernelsSerializeOnStream) {
  auto noop = [](const KernelCtx&) {};
  auto r1 = gpu_.LaunchKernel(noop, 64, 32, 0.0);
  auto r2 = gpu_.LaunchKernel(noop, 64, 32, 0.0);
  EXPECT_DOUBLE_EQ(r2.start, r1.end);
}

TEST_F(GpuDeviceTest, StreamingCostUsesDeviceBandwidth) {
  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 320'000'000;
  };
  auto r = gpu_.LaunchKernel(kernel, 64, 32, 0.0);
  // 320 MB at 320 GB/s = 1 ms (+ launch latency).
  EXPECT_NEAR(r.end - r.start, 1e-3 + topo_.cost_model().kernel_launch_latency,
              1e-5);
}

TEST_F(GpuDeviceTest, StreamBwOverrideForUva) {
  auto kernel = [&](const KernelCtx& ctx) {
    if (ctx.thread_id == 0) ctx.stats->bytes_read += 12'000'000;
  };
  auto r = gpu_.LaunchKernel(kernel, 64, 32, 0.0, topo_.cost_model().pcie_bw);
  // 12 MB at PCIe 12 GB/s = 1 ms.
  EXPECT_NEAR(r.end - r.start, 1e-3 + topo_.cost_model().kernel_launch_latency,
              1e-5);
}

TEST_F(GpuDeviceTest, EpochPastStreamBacklogStartsFresh) {
  auto noop = [](const KernelCtx&) {};
  gpu_.LaunchKernel(noop, 64, 32, 0.0);
  EXPECT_GT(gpu_.stream_free_at(), 0.0);
  // New session anchored at the stream horizon: its kernel starts at local 0.
  auto r = gpu_.LaunchKernel(noop, 64, 32, 0.0, 0.0, gpu_.stream_free_at());
  EXPECT_DOUBLE_EQ(r.start, 0.0);
}

TEST_F(GpuDeviceTest, ConcurrentSessionsSerializeOnStream) {
  auto noop = [](const KernelCtx&) {};
  // Session A fills the stream; session B (same epoch 0) queues behind it and
  // sees the wait in its session-local window.
  auto a = gpu_.LaunchKernel(noop, 64, 32, 0.0, 0.0, 0.0);
  auto b = gpu_.LaunchKernel(noop, 64, 32, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(b.start, a.end);
}

TEST_F(GpuDeviceTest, DeviceAtomicsAcrossGrid) {
  std::atomic<int64_t> acc{0};
  auto kernel = [&](const KernelCtx& ctx) {
    acc.fetch_add(ctx.thread_id, std::memory_order_relaxed);
  };
  constexpr int kGrid = 1000;
  gpu_.LaunchKernel(kernel, kGrid, 32, 0.0);
  EXPECT_EQ(acc.load(), kGrid * (kGrid - 1) / 2);
}

}  // namespace
}  // namespace hetex::sim
