#include "sim/bandwidth.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hetex::sim {
namespace {

TEST(BandwidthServer, SingleReservationTakesBytesOverRate) {
  BandwidthServer server(1e9);  // 1 GB/s
  auto w = server.Reserve(1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(w.start, 0.0);
  EXPECT_DOUBLE_EQ(w.end, 1e-3);
}

TEST(BandwidthServer, LatencyAddsPerReservation) {
  BandwidthServer server(1e9, /*latency=*/1e-5);
  auto w = server.Reserve(1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(w.end, 1e-3 + 1e-5);
}

TEST(BandwidthServer, BackToBackReservationsQueue) {
  BandwidthServer server(1e9);
  auto w1 = server.Reserve(1'000'000, 0.0);
  auto w2 = server.Reserve(1'000'000, 0.0);  // scheduled while busy
  EXPECT_DOUBLE_EQ(w2.start, w1.end);
  EXPECT_DOUBLE_EQ(w2.end, 2e-3);
}

TEST(BandwidthServer, EarliestDefersStart) {
  BandwidthServer server(1e9);
  auto w = server.Reserve(1000, /*earliest=*/5.0);
  EXPECT_DOUBLE_EQ(w.start, 5.0);
}

TEST(BandwidthServer, ReserveDurationOccupiesWindow) {
  BandwidthServer server(1.0);
  auto w1 = server.ReserveDuration(0.25, 0.0);
  auto w2 = server.ReserveDuration(0.25, 0.1);
  EXPECT_DOUBLE_EQ(w1.end, 0.25);
  EXPECT_DOUBLE_EQ(w2.start, 0.25);  // queued behind w1 despite earliest=0.1
}

TEST(BandwidthServer, EpochPastBacklogSeesIdleResource) {
  BandwidthServer server(1e9);
  server.Reserve(1'000'000, 0.0);
  const VTime horizon = server.free_at();
  EXPECT_GT(horizon, 0.0);
  // A session anchored at the horizon starts on a fresh timeline: its windows
  // come back epoch-relative, starting at zero (the reset-free reset).
  auto w = server.Reserve(1000, 0.0, horizon);
  EXPECT_DOUBLE_EQ(w.start, 0.0);
  EXPECT_NEAR(w.end, 1000 / 1e9, 1e-15);
  EXPECT_DOUBLE_EQ(server.free_at(), horizon + 1000 / 1e9);
}

TEST(BandwidthServer, ConcurrentSessionsQueueAcrossEpochs) {
  BandwidthServer server(1e9);
  // Session A (epoch 0) occupies [0, 1ms) absolute.
  auto a = server.Reserve(1'000'000, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  // Session B arrives at epoch 0.4ms: its transfer queues behind A's, and the
  // queueing delay shows up in B's session-local window.
  auto b = server.Reserve(1'000'000, 0.0, 0.4e-3);
  EXPECT_DOUBLE_EQ(b.start, 0.6e-3);  // 1ms absolute - 0.4ms epoch
  EXPECT_DOUBLE_EQ(b.end, 1.6e-3);
}

TEST(BandwidthServer, ConcurrentReservationsNeverOverlap) {
  BandwidthServer server(1e9);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<BandwidthServer::Window> windows(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        windows[t * kPerThread + i] = server.Reserve(1000, 0.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Total occupied time == sum of durations (no overlap, no gaps from t=0).
  double max_end = 0;
  for (const auto& w : windows) max_end = std::max(max_end, w.end);
  EXPECT_NEAR(max_end, kThreads * kPerThread * 1000 / 1e9, 1e-12);
}

TEST(BandwidthServer, ReserveBytesSkipsSetupLatency) {
  BandwidthServer server(1e9, /*latency=*/1e-5);
  // UVA/zero-copy streams pay pure bandwidth: no per-transfer setup term,
  // but the occupancy is real — a later DMA queues behind it.
  auto uva = server.ReserveBytes(1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(uva.end, 1e-3);
  auto dma = server.Reserve(1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(dma.start, uva.end);
  EXPECT_DOUBLE_EQ(dma.end, uva.end + 1e-3 + 1e-5);
}

TEST(BandwidthServer, ReserveDurationAtAnchorsExactly) {
  BandwidthServer server(1e9);
  server.ReserveDuration(1.0, 0.0);  // busy [0, 1)
  // Anchored reservation inside the busy span: the window is exactly where
  // the caller committed, not wherever first fit would wander.
  auto w = server.ReserveDurationAt(0.25, 0.5);
  EXPECT_DOUBLE_EQ(w.start, 0.25);
  EXPECT_DOUBLE_EQ(w.end, 0.75);
  // Occupancy stacked conservatively: the next first-fit still waits for 1.
  auto n = server.ReserveDuration(0.1, 0.0);
  EXPECT_DOUBLE_EQ(n.start, 1.0);
}

TEST(BandwidthServer, ReserveDurationAtRespectsEpochAndHorizon) {
  BandwidthServer server(1e9);
  auto w = server.ReserveDurationAt(/*start=*/0.5, /*duration=*/1.0,
                                    /*epoch=*/2.0);
  EXPECT_DOUBLE_EQ(w.start, 0.5);  // session-local
  EXPECT_DOUBLE_EQ(w.end, 1.5);
  EXPECT_DOUBLE_EQ(server.free_at(), 3.5);  // absolute
}

TEST(BandwidthServer, NestedReservationNeverShrinksOccupancy) {
  // Regression: the old disjoint-interval Insert's left-extend wrote
  // `prev->second = end`, so an interval nested inside an existing one would
  // SHRINK the container — [0.4, 1.0) would have gone free here.
  BandwidthServer server(1e9);
  server.ReserveDuration(1.0, 0.0);    // [0, 1)
  server.ReserveDurationAt(0.2, 0.2);  // nested [0.2, 0.4)
  auto w = server.ReserveDuration(0.1, 0.0);
  EXPECT_DOUBLE_EQ(w.start, 1.0);
  EXPECT_DOUBLE_EQ(server.free_at(), 1.1);
}

TEST(BandwidthServer, ProbeThenAnchoredReserveSurvivesRacingSessions) {
  // The UVA probe→reserve pattern under races: each session probes a start,
  // anchors dependent state on it, then commits with ReserveDurationAt. The
  // committed window must be exactly the probed one even when other sessions
  // reserve in between — the old re-run-first-fit commit could land the slot
  // somewhere the dependent reservations were never anchored.
  BandwidthServer server(1e9);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  constexpr VTime kDur = 1e-3;
  std::atomic<int> torn{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const VTime probed = server.ProbeStart(kDur, 0.0);
        const auto w = server.ReserveDurationAt(probed, kDur);
        if (w.start != probed || w.end != probed + kDur) torn.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0);
  // Every committed window is real occupancy: the horizon covers at least
  // one uncontended slot and the server stayed internally consistent.
  EXPECT_GE(server.free_at(), kDur);
}

TEST(BandwidthServer, ConcurrentSetRateAndReserve) {
  // rate_ is read by Reserve/ReserveBytes while set_rate writes it (fault
  // plane degrading a link mid-flight). Must be TSan-clean.
  BandwidthServer server(1e9);
  std::thread writer([&] {
    for (int i = 1; i <= 1000; ++i) server.set_rate(1e9 + i);
  });
  std::thread reader([&] {
    for (int i = 0; i < 1000; ++i) server.Reserve(1000, 0.0);
  });
  writer.join();
  reader.join();
  EXPECT_GT(server.free_at(), 0.0);
  EXPECT_GE(server.rate(), 1e9);
}

TEST(DramServer, PerWorkerCapUntilSaturation) {
  DramServer dram(45e9, 6e9);
  EXPECT_DOUBLE_EQ(dram.EffectiveRate(), 6e9);  // idle: full per-core rate
  const uint64_t seven = dram.Register(/*session=*/1, /*epoch=*/0.0, 7);
  // 7 workers: 45/7 = 6.43 > 6 -> still per-core capped.
  EXPECT_DOUBLE_EQ(dram.EffectiveRate(), 6e9);
  const uint64_t one = dram.Register(/*session=*/1, /*epoch=*/0.0, 1);
  // 8 workers: 45/8 = 5.625 < 6 -> fluid share kicks in.
  EXPECT_DOUBLE_EQ(dram.EffectiveRate(), 45e9 / 8);
  dram.Release(seven);
  dram.Release(one);
  EXPECT_EQ(dram.active_workers(), 0);
}

TEST(DramServer, SessionsSplitTheAggregate) {
  DramServer dram(45e9, 6e9);
  // Session 10 runs 6 workers: its divisor is its own count only.
  const uint64_t a = dram.Register(10, /*epoch=*/0.0, 6);
  EXPECT_EQ(dram.workers_besides(10), 0);
  EXPECT_EQ(dram.active_sessions(), 1);
  // Session 11 arrives with 6 more: each session now sees the other's workers
  // in its fluid-share divisor (6 own + 6 besides = 45/12 each).
  const uint64_t b = dram.Register(11, /*epoch=*/2.5, 6);
  EXPECT_EQ(dram.workers_besides(10), 6);
  EXPECT_EQ(dram.workers_besides(11), 6);
  EXPECT_EQ(dram.active_workers(), 12);
  EXPECT_EQ(dram.active_sessions(), 2);
  EXPECT_DOUBLE_EQ(dram.EffectiveRate(), 45e9 / 12);
  EXPECT_DOUBLE_EQ(dram.min_epoch(), 0.0);
  dram.Release(a);
  EXPECT_EQ(dram.workers_besides(11), 0);
  EXPECT_DOUBLE_EQ(dram.min_epoch(), 2.5);
  dram.Release(b);
  EXPECT_EQ(dram.active_sessions(), 0);
}

TEST(DramServer, OneSessionMayHoldSeveralRegistrations) {
  // Build phase and fact phase of one query can overlap registration windows;
  // neither counts against the query's own divisor.
  DramServer dram(45e9, 6e9);
  const uint64_t build = dram.Register(7, 0.0, 2);
  const uint64_t fact = dram.Register(7, 0.0, 4);
  EXPECT_EQ(dram.workers_besides(7), 0);
  EXPECT_EQ(dram.active_workers(), 6);
  EXPECT_EQ(dram.active_sessions(), 1);
  EXPECT_EQ(dram.workers_besides(8), 6);  // another session sees all of them
  dram.Release(build);
  dram.Release(fact);
}

// ---------------------------------------------------------------------------
// Virtual-time interval accounting: phases reserve {workers, [start, end)} on
// the socket's absolute timeline; a block's fluid share integrates over the
// sessions actually overlapping it in virtual time.
// ---------------------------------------------------------------------------

TEST(DramServer, SoloBlockIsUncontended) {
  // A session overlapping only its own open registration takes the solo fast
  // path: BlockEnd returns false and the caller's closed-form divisor (its
  // own worker count) applies bit-identically.
  DramServer dram(45e9, 6e9);
  const uint64_t own = dram.Register(/*session=*/1, /*start=*/0.0, 12);
  VTime end = -1;
  EXPECT_FALSE(dram.BlockEnd(/*session=*/1, /*own_workers=*/12,
                             /*bytes=*/1e9, /*compute=*/0.0, /*start=*/0.5,
                             &end));
  dram.Release(own, 2.0);
}

TEST(DramServer, StaggeredEpochSessionsDoNotShareADivisor) {
  // The wall-clock-scoped bug this PR removes: session 1's phase covers
  // [0, 1) in virtual time; session 2's block starts at 5.0. They were never
  // concurrent in virtual time, so session 2 must see an idle socket — even
  // though (wall-clock) session 1's interval is long closed yet still on the
  // timeline, and even if both had been registered at the same instant.
  DramServer dram(45e9, 6e9);
  const uint64_t t = dram.Register(/*session=*/1, /*start=*/0.0, 12);
  dram.Release(t, /*end=*/1.0);
  VTime end = -1;
  EXPECT_FALSE(dram.BlockEnd(/*session=*/2, /*own_workers=*/12,
                             /*bytes=*/1e9, /*compute=*/0.0, /*start=*/5.0,
                             &end));
  EXPECT_EQ(dram.workers_overlapping(5.0), 0);
  EXPECT_EQ(dram.workers_overlapping(0.5), 12);
}

TEST(DramServer, ClosedIntervalChargesOverlappingSession) {
  // Session 1's closed 12-worker phase covers [0, 1); session 2's 12-worker
  // block starts at 0 with 3.75 GB of traffic. While the intervals overlap,
  // each worker's share is min(6, 45/24) = 1.875 GB/s; past 1.0 the socket is
  // session 2's alone at min(6, 45/12) = 3.75 GB/s. Piecewise:
  // 1 s drains 1.875 GB, the remaining 1.875 GB takes 0.5 s -> end = 1.5.
  DramServer dram(45e9, 6e9);
  const uint64_t t = dram.Register(/*session=*/1, /*start=*/0.0, 12);
  dram.Release(t, /*end=*/1.0);
  VTime end = -1;
  ASSERT_TRUE(dram.BlockEnd(/*session=*/2, /*own_workers=*/12,
                            /*bytes=*/3.75e9, /*compute=*/0.0, /*start=*/0.0,
                            &end));
  EXPECT_DOUBLE_EQ(end, 1.5);
  // Compute floors the block end when it dominates the drain.
  ASSERT_TRUE(dram.BlockEnd(2, 12, 3.75e9, /*compute=*/10.0, 0.0, &end));
  EXPECT_DOUBLE_EQ(end, 10.0);
}

TEST(DramServer, DiscardedRegistrationLeavesNoResidue) {
  // Release without an end time (error paths, phantom test registrations)
  // closes the interval at its own start: no trace on the timeline, and
  // later sessions anchored anywhere see an idle socket.
  DramServer dram(45e9, 6e9);
  const uint64_t t = dram.Register(/*session=*/1, /*start=*/0.0, 12);
  EXPECT_EQ(dram.workers_overlapping(100.0), 12);  // open-ended while held
  dram.Release(t);
  EXPECT_EQ(dram.workers_overlapping(0.0), 0);
  EXPECT_EQ(dram.num_segments(), 0u);
  VTime end = -1;
  EXPECT_FALSE(dram.BlockEnd(2, 12, 1e9, 0.0, 0.0, &end));
  EXPECT_DOUBLE_EQ(dram.horizon(), 0.0);
}

TEST(DramServer, HorizonCoversClosedIntervals) {
  DramServer dram(45e9, 6e9);
  const uint64_t a = dram.Register(1, 0.0, 4);
  dram.Release(a, 2.5);
  const uint64_t b = dram.Register(2, 1.0, 4);
  dram.Release(b, 4.0);
  EXPECT_DOUBLE_EQ(dram.horizon(), 4.0);
  // A session anchored at the horizon overlaps nothing.
  VTime end = -1;
  EXPECT_FALSE(dram.BlockEnd(3, 4, 1e9, 0.0, dram.horizon(), &end));
}

TEST(DramServer, OwnOpenIntervalExcludedOthersCharged) {
  // Own 6-worker registration is not double-charged (the query's own
  // concurrency is the caller-supplied own_workers), but another session's
  // open 6 workers are: share = min(6, 45/12) = 3.75 GB/s per worker.
  DramServer dram(45e9, 6e9);
  const uint64_t own = dram.Register(/*session=*/7, /*start=*/0.0, 6);
  const uint64_t other = dram.Register(/*session=*/8, /*start=*/0.0, 6);
  VTime end = -1;
  ASSERT_TRUE(dram.BlockEnd(/*session=*/7, /*own_workers=*/6,
                            /*bytes=*/3.75e9, /*compute=*/0.0, /*start=*/0.0,
                            &end));
  EXPECT_DOUBLE_EQ(end, 1.0);
  dram.Release(own, 1.0);
  dram.Release(other, 1.0);
}

TEST(DramServer, ConcurrentRegisterReleaseAndBlockEnd) {
  // TSan coverage: registrations, closes and block pricing race from
  // different sessions' worker threads.
  DramServer dram(45e9, 6e9);
  std::vector<std::thread> threads;
  for (int s = 0; s < 4; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < 200; ++i) {
        const VTime start = 0.01 * i;
        const uint64_t t =
            dram.Register(static_cast<uint64_t>(s), start, 1 + s);
        VTime end = -1;
        dram.BlockEnd(static_cast<uint64_t>(s), 1 + s, 1e6, 0.0, start, &end);
        dram.Release(t, start + 0.005);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(dram.active_workers(), 0);
  EXPECT_GT(dram.generation(), 0u);
}

}  // namespace
}  // namespace hetex::sim
