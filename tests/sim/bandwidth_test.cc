#include "sim/bandwidth.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hetex::sim {
namespace {

TEST(BandwidthServer, SingleReservationTakesBytesOverRate) {
  BandwidthServer server(1e9);  // 1 GB/s
  auto w = server.Reserve(1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(w.start, 0.0);
  EXPECT_DOUBLE_EQ(w.end, 1e-3);
}

TEST(BandwidthServer, LatencyAddsPerReservation) {
  BandwidthServer server(1e9, /*latency=*/1e-5);
  auto w = server.Reserve(1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(w.end, 1e-3 + 1e-5);
}

TEST(BandwidthServer, BackToBackReservationsQueue) {
  BandwidthServer server(1e9);
  auto w1 = server.Reserve(1'000'000, 0.0);
  auto w2 = server.Reserve(1'000'000, 0.0);  // scheduled while busy
  EXPECT_DOUBLE_EQ(w2.start, w1.end);
  EXPECT_DOUBLE_EQ(w2.end, 2e-3);
}

TEST(BandwidthServer, EarliestDefersStart) {
  BandwidthServer server(1e9);
  auto w = server.Reserve(1000, /*earliest=*/5.0);
  EXPECT_DOUBLE_EQ(w.start, 5.0);
}

TEST(BandwidthServer, ReserveDurationOccupiesWindow) {
  BandwidthServer server(1.0);
  auto w1 = server.ReserveDuration(0.25, 0.0);
  auto w2 = server.ReserveDuration(0.25, 0.1);
  EXPECT_DOUBLE_EQ(w1.end, 0.25);
  EXPECT_DOUBLE_EQ(w2.start, 0.25);  // queued behind w1 despite earliest=0.1
}

TEST(BandwidthServer, EpochPastBacklogSeesIdleResource) {
  BandwidthServer server(1e9);
  server.Reserve(1'000'000, 0.0);
  const VTime horizon = server.free_at();
  EXPECT_GT(horizon, 0.0);
  // A session anchored at the horizon starts on a fresh timeline: its windows
  // come back epoch-relative, starting at zero (the reset-free reset).
  auto w = server.Reserve(1000, 0.0, horizon);
  EXPECT_DOUBLE_EQ(w.start, 0.0);
  EXPECT_NEAR(w.end, 1000 / 1e9, 1e-15);
  EXPECT_DOUBLE_EQ(server.free_at(), horizon + 1000 / 1e9);
}

TEST(BandwidthServer, ConcurrentSessionsQueueAcrossEpochs) {
  BandwidthServer server(1e9);
  // Session A (epoch 0) occupies [0, 1ms) absolute.
  auto a = server.Reserve(1'000'000, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  // Session B arrives at epoch 0.4ms: its transfer queues behind A's, and the
  // queueing delay shows up in B's session-local window.
  auto b = server.Reserve(1'000'000, 0.0, 0.4e-3);
  EXPECT_DOUBLE_EQ(b.start, 0.6e-3);  // 1ms absolute - 0.4ms epoch
  EXPECT_DOUBLE_EQ(b.end, 1.6e-3);
}

TEST(BandwidthServer, ConcurrentReservationsNeverOverlap) {
  BandwidthServer server(1e9);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<BandwidthServer::Window> windows(kThreads * kPerThread);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        windows[t * kPerThread + i] = server.Reserve(1000, 0.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  // Total occupied time == sum of durations (no overlap, no gaps from t=0).
  double max_end = 0;
  for (const auto& w : windows) max_end = std::max(max_end, w.end);
  EXPECT_NEAR(max_end, kThreads * kPerThread * 1000 / 1e9, 1e-12);
}

TEST(BandwidthServer, ReserveBytesSkipsSetupLatency) {
  BandwidthServer server(1e9, /*latency=*/1e-5);
  // UVA/zero-copy streams pay pure bandwidth: no per-transfer setup term,
  // but the occupancy is real — a later DMA queues behind it.
  auto uva = server.ReserveBytes(1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(uva.end, 1e-3);
  auto dma = server.Reserve(1'000'000, 0.0);
  EXPECT_DOUBLE_EQ(dma.start, uva.end);
  EXPECT_DOUBLE_EQ(dma.end, uva.end + 1e-3 + 1e-5);
}

TEST(DramServer, PerWorkerCapUntilSaturation) {
  DramServer dram(45e9, 6e9);
  EXPECT_DOUBLE_EQ(dram.EffectiveRate(), 6e9);  // idle: full per-core rate
  const uint64_t seven = dram.Register(/*session=*/1, /*epoch=*/0.0, 7);
  // 7 workers: 45/7 = 6.43 > 6 -> still per-core capped.
  EXPECT_DOUBLE_EQ(dram.EffectiveRate(), 6e9);
  const uint64_t one = dram.Register(/*session=*/1, /*epoch=*/0.0, 1);
  // 8 workers: 45/8 = 5.625 < 6 -> fluid share kicks in.
  EXPECT_DOUBLE_EQ(dram.EffectiveRate(), 45e9 / 8);
  dram.Release(seven);
  dram.Release(one);
  EXPECT_EQ(dram.active_workers(), 0);
}

TEST(DramServer, SessionsSplitTheAggregate) {
  DramServer dram(45e9, 6e9);
  // Session 10 runs 6 workers: its divisor is its own count only.
  const uint64_t a = dram.Register(10, /*epoch=*/0.0, 6);
  EXPECT_EQ(dram.workers_besides(10), 0);
  EXPECT_EQ(dram.active_sessions(), 1);
  // Session 11 arrives with 6 more: each session now sees the other's workers
  // in its fluid-share divisor (6 own + 6 besides = 45/12 each).
  const uint64_t b = dram.Register(11, /*epoch=*/2.5, 6);
  EXPECT_EQ(dram.workers_besides(10), 6);
  EXPECT_EQ(dram.workers_besides(11), 6);
  EXPECT_EQ(dram.active_workers(), 12);
  EXPECT_EQ(dram.active_sessions(), 2);
  EXPECT_DOUBLE_EQ(dram.EffectiveRate(), 45e9 / 12);
  EXPECT_DOUBLE_EQ(dram.min_epoch(), 0.0);
  dram.Release(a);
  EXPECT_EQ(dram.workers_besides(11), 0);
  EXPECT_DOUBLE_EQ(dram.min_epoch(), 2.5);
  dram.Release(b);
  EXPECT_EQ(dram.active_sessions(), 0);
}

TEST(DramServer, OneSessionMayHoldSeveralRegistrations) {
  // Build phase and fact phase of one query can overlap registration windows;
  // neither counts against the query's own divisor.
  DramServer dram(45e9, 6e9);
  const uint64_t build = dram.Register(7, 0.0, 2);
  const uint64_t fact = dram.Register(7, 0.0, 4);
  EXPECT_EQ(dram.workers_besides(7), 0);
  EXPECT_EQ(dram.active_workers(), 6);
  EXPECT_EQ(dram.active_sessions(), 1);
  EXPECT_EQ(dram.workers_besides(8), 6);  // another session sees all of them
  dram.Release(build);
  dram.Release(fact);
}

}  // namespace
}  // namespace hetex::sim
