#include "sim/topology.h"

#include <gtest/gtest.h>

namespace hetex::sim {
namespace {

TEST(Topology, PaperServerShape) {
  Topology topo = Topology::PaperServer();
  EXPECT_EQ(topo.num_sockets(), 2);
  EXPECT_EQ(topo.num_cores(), 24);
  EXPECT_EQ(topo.num_gpus(), 2);
  EXPECT_EQ(topo.num_mem_nodes(), 4);  // 2 host + 2 device
}

TEST(Topology, GpusAlternateSockets) {
  Topology::Options options;
  options.num_gpus = 4;
  Topology topo(options);
  EXPECT_EQ(topo.gpu(0).socket, 0);
  EXPECT_EQ(topo.gpu(1).socket, 1);
  EXPECT_EQ(topo.gpu(2).socket, 0);
  EXPECT_EQ(topo.gpu(3).socket, 1);
}

TEST(Topology, LocalMemNodes) {
  Topology topo = Topology::PaperServer();
  EXPECT_EQ(topo.LocalMemNode(DeviceId::Cpu(0)), topo.socket(0).mem);
  EXPECT_EQ(topo.LocalMemNode(DeviceId::Cpu(1)), topo.socket(1).mem);
  EXPECT_EQ(topo.LocalMemNode(DeviceId::Gpu(0)), topo.gpu(0).mem);
  EXPECT_NE(topo.LocalMemNode(DeviceId::Gpu(0)), topo.LocalMemNode(DeviceId::Gpu(1)));
}

TEST(Topology, AccessMatrix) {
  Topology topo = Topology::PaperServer();
  const auto cpu0 = DeviceId::Cpu(0);
  const auto gpu0 = DeviceId::Gpu(0);
  const auto gpu1 = DeviceId::Gpu(1);

  // Host reaches any socket DRAM, never device memory.
  EXPECT_EQ(topo.CanAccess(cpu0, topo.socket(0).mem), MemAccess::kLocal);
  EXPECT_EQ(topo.CanAccess(cpu0, topo.socket(1).mem), MemAccess::kLocal);
  EXPECT_EQ(topo.CanAccess(cpu0, topo.gpu(0).mem), MemAccess::kNone);

  // GPU: own memory local, host over PCIe (UVA), no peer access.
  EXPECT_EQ(topo.CanAccess(gpu0, topo.gpu(0).mem), MemAccess::kLocal);
  EXPECT_EQ(topo.CanAccess(gpu0, topo.socket(0).mem), MemAccess::kRemotePcie);
  EXPECT_EQ(topo.CanAccess(gpu0, topo.gpu(1).mem), MemAccess::kNone);
  EXPECT_EQ(topo.CanAccess(gpu1, topo.gpu(0).mem), MemAccess::kNone);
}

TEST(Topology, CoresInterleaveAcrossSockets) {
  Topology topo = Topology::PaperServer();
  EXPECT_EQ(topo.SocketOfCore(0), 0);
  EXPECT_EQ(topo.SocketOfCore(1), 1);
  EXPECT_EQ(topo.SocketOfCore(2), 0);
  EXPECT_EQ(topo.SocketOfCore(23), 1);
}

TEST(Topology, AggregateGpuCapacity) {
  Topology::Options options;
  options.gpu_capacity = 1ull << 30;
  Topology topo(options);
  EXPECT_EQ(topo.AggregateGpuCapacity(), 2ull << 30);
}

TEST(Topology, DedicatedPcieLinkPerGpu) {
  Topology topo = Topology::PaperServer();
  EXPECT_NE(topo.PcieLinkOf(0), topo.PcieLinkOf(1));
}

TEST(Topology, LinkHorizonTracksBusiestLink) {
  Topology topo = Topology::PaperServer();
  EXPECT_DOUBLE_EQ(topo.LinkHorizon(), 0.0);
  topo.pcie_link(0).Reserve(1 << 20, 0.0);
  const auto w1 = topo.pcie_link(1).Reserve(4 << 20, 0.0);
  EXPECT_DOUBLE_EQ(topo.LinkHorizon(), w1.end);
  // A session anchored at the horizon sees every link idle.
  const auto w = topo.pcie_link(0).Reserve(1 << 20, 0.0, topo.LinkHorizon());
  EXPECT_DOUBLE_EQ(w.start, 0.0);
}

TEST(Topology, ScaleOutFabricShape) {
  Topology topo(Topology::ScaleOutOptions(4));
  EXPECT_EQ(topo.num_gpus(), 4);
  // Fully-connected NVLink mesh: C(4,2) undirected peer links, every pair
  // directly reachable, plus the inter-socket link.
  EXPECT_EQ(topo.num_peer_links(), 6);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) {
        EXPECT_EQ(topo.PeerLinkOf(a, b), -1);
      } else {
        EXPECT_GE(topo.PeerLinkOf(a, b), 0);
        EXPECT_EQ(topo.PeerLinkOf(a, b), topo.PeerLinkOf(b, a));
      }
    }
  }
  ASSERT_TRUE(topo.has_inter_socket_link());
  EXPECT_DOUBLE_EQ(topo.inter_socket_link().rate(),
                   topo.cost_model().inter_socket_bw);
  EXPECT_DOUBLE_EQ(topo.peer_link(0).rate(), topo.cost_model().nvlink_bw);
}

TEST(Topology, ScaleOutWithZeroGpusIsACpuOnlyFabric) {
  Topology topo(Topology::ScaleOutOptions(0));
  EXPECT_EQ(topo.num_gpus(), 0);
  EXPECT_EQ(topo.num_peer_links(), 0);
  EXPECT_EQ(topo.num_pcie_links(), 0);
  EXPECT_TRUE(topo.has_inter_socket_link());  // NUMA survives without GPUs
  EXPECT_EQ(topo.num_mem_nodes(), 2);
}

TEST(Topology, DefaultOptionsHaveNoFabricLinks) {
  // The paper server: no peer mesh, no modeled inter-socket link — the exact
  // pre-fabric shape, so default-constructed systems stay bit-identical.
  Topology topo = Topology::PaperServer();
  EXPECT_EQ(topo.num_peer_links(), 0);
  EXPECT_FALSE(topo.has_inter_socket_link());
}

TEST(Topology, DescribePrintsFabricAndLiveBacklog) {
  Topology topo(Topology::ScaleOutOptions(2));
  const std::string fabric = topo.Describe();
  EXPECT_NE(fabric.find("peer link 0: gpu0 <-> gpu1"), std::string::npos);
  EXPECT_NE(fabric.find("inter-socket link"), std::string::npos);
  EXPECT_EQ(fabric.find("backlog"), std::string::npos);  // static view

  topo.peer_link(0).Reserve(64 << 20, 0.0);
  const std::string live = topo.Describe(/*epoch=*/0.0);
  EXPECT_NE(live.find("backlog"), std::string::npos);
  // The drained view at the horizon reports zero backlog everywhere.
  const std::string drained = topo.Describe(topo.LinkHorizon());
  EXPECT_NE(drained.find("backlog 0 ms"), std::string::npos);
}

TEST(Topology, LinkHorizonCoversPeerAndInterSocketLinks) {
  Topology topo(Topology::ScaleOutOptions(2));
  EXPECT_DOUBLE_EQ(topo.LinkHorizon(), 0.0);
  const auto peer = topo.peer_link(0).Reserve(64 << 20, 0.0);
  EXPECT_DOUBLE_EQ(topo.LinkHorizon(), peer.end);
  const auto upi = topo.inter_socket_link().Reserve(1ull << 30, 0.0);
  EXPECT_DOUBLE_EQ(topo.LinkHorizon(), MaxT(peer.end, upi.end));
}

TEST(CostModel, AccessClassesFollowThresholds) {
  CostModel cm = CostModel::Paper();
  EXPECT_EQ(cm.RandomAccessClass(512 << 10), 0);   // L2-resident
  EXPECT_EQ(cm.RandomAccessClass(10 << 20), 1);    // LLC
  EXPECT_EQ(cm.RandomAccessClass(100 << 20), 2);   // DRAM
}

TEST(CostModel, WorkCostIsMaxOfBandwidthAndCompute) {
  CostModel cm = CostModel::Paper();
  CostStats bw_bound;
  bw_bound.bytes_read = 1 << 30;
  const double t_bw = cm.WorkCost(bw_bound, cm.cpu, 6e9);
  EXPECT_NEAR(t_bw, (1 << 30) / 6e9, 1e-9);

  CostStats compute_bound;
  compute_bound.far_accesses = 1'000'000;
  const double t_cpu = cm.WorkCost(compute_bound, cm.cpu, 6e9);
  // 1M far accesses: latency-bound (12 ns each) vs 64 MB of line traffic.
  EXPECT_NEAR(t_cpu, 1e6 * cm.cpu.far_access_cost, 1e-9);
}

TEST(CostModel, FarAccessesConsumeLineBandwidth) {
  CostModel cm = CostModel::Paper();
  CostStats s;
  s.far_accesses = 10'000'000;
  // At a crowded socket's 3 GB/s share, 640 MB of 64B line traffic (213 ms)
  // exceeds the 120 ms serial latency component: bandwidth binds.
  const double t = cm.WorkCost(s, cm.cpu, 3e9);
  EXPECT_NEAR(t, 10e6 * 64 / 3e9, 1e-6);
}

TEST(CostModel, ScaleFixedLatenciesLeavesBandwidthAlone) {
  CostModel cm = CostModel::Paper();
  const double bw = cm.pcie_bw;
  const double tuple = cm.cpu.tuple_cost;
  cm.ScaleFixedLatencies(0.01);
  EXPECT_DOUBLE_EQ(cm.pcie_bw, bw);
  EXPECT_DOUBLE_EQ(cm.cpu.tuple_cost, tuple);
  EXPECT_DOUBLE_EQ(cm.router_init_latency, 1e-2 * 0.01);
  EXPECT_DOUBLE_EQ(cm.kernel_launch_latency, 8e-6 * 0.01);
}

}  // namespace
}  // namespace hetex::sim
