#include "sim/interval_timeline.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace hetex::sim {
namespace {

constexpr VTime kInf = IntervalTimeline::kOpenEnd;

TEST(IntervalTimeline, AddAndAtBasics) {
  IntervalTimeline tl;
  tl.Add(1.0, 3.0, 2);
  EXPECT_EQ(tl.At(0.0).level, 0);
  EXPECT_DOUBLE_EQ(tl.At(0.0).until, 1.0);
  EXPECT_EQ(tl.At(1.0).level, 2);
  EXPECT_DOUBLE_EQ(tl.At(1.0).until, 3.0);
  EXPECT_EQ(tl.At(2.999).level, 2);
  EXPECT_EQ(tl.At(3.0).level, 0);  // half-open: the end boundary is free
  EXPECT_EQ(tl.At(3.0).until, kInf);
  EXPECT_DOUBLE_EQ(tl.horizon(), 3.0);
}

TEST(IntervalTimeline, OverlapsSumTheirWeights) {
  IntervalTimeline tl;
  tl.Add(0.0, 4.0, 1);
  tl.Add(2.0, 6.0, 3);
  EXPECT_EQ(tl.At(1.0).level, 1);
  EXPECT_EQ(tl.At(2.0).level, 4);
  EXPECT_EQ(tl.At(4.0).level, 3);
  EXPECT_EQ(tl.At(6.0).level, 0);
}

TEST(IntervalTimeline, OpenIntervalClosedByNegativeAdd) {
  IntervalTimeline tl;
  tl.Add(1.0, kInf, 3);  // open: a phase still being modeled
  EXPECT_EQ(tl.At(100.0).level, 3);
  tl.Add(5.0, kInf, -3);  // close at 5: the interval [1, 5) persists
  EXPECT_EQ(tl.At(2.0).level, 3);
  EXPECT_DOUBLE_EQ(tl.At(2.0).until, 5.0);
  EXPECT_EQ(tl.At(5.0).level, 0);
  EXPECT_DOUBLE_EQ(tl.horizon(), 5.0);
}

TEST(IntervalTimeline, FullCancellationLeavesNoTrace) {
  IntervalTimeline tl;
  tl.Add(1.0, kInf, 2);
  tl.Add(1.0, kInf, -2);  // discarded at its own start
  EXPECT_EQ(tl.num_segments(), 0u);
  EXPECT_EQ(tl.At(1.0).level, 0);
  EXPECT_DOUBLE_EQ(tl.horizon(), 0.0);
}

TEST(IntervalTimeline, NestedAddNeverShrinksOccupancy) {
  // Regression for the old disjoint-map Insert: its left-extend wrote
  // `prev->second = end`, so inserting an interval nested inside an existing
  // one SHRANK the container. The step representation can only raise levels.
  IntervalTimeline tl;
  tl.Add(0.0, 10.0, 1);
  tl.Add(2.0, 4.0, 1);  // nested
  EXPECT_EQ(tl.At(3.0).level, 2);
  EXPECT_EQ(tl.At(5.0).level, 1);  // [4, 10) still busy
  EXPECT_EQ(tl.At(9.999).level, 1);
  EXPECT_DOUBLE_EQ(tl.FirstFit(1.0, 0.0), 10.0);
}

TEST(IntervalTimeline, AdjacentIntervalsCoalesce) {
  IntervalTimeline tl;
  tl.Add(0.0, 1.0, 1);
  tl.Add(1.0, 2.0, 1);  // back-to-back, same level
  EXPECT_EQ(tl.num_segments(), 2u);  // boundaries at 0 and 2 only
  EXPECT_EQ(tl.At(1.0).level, 1);
  EXPECT_DOUBLE_EQ(tl.FirstFit(0.5, 0.0), 2.0);
}

TEST(IntervalTimeline, FirstFitFindsEarliestGap) {
  IntervalTimeline tl;
  tl.Add(1.0, 2.0, 1);
  tl.Add(3.0, 4.0, 1);
  EXPECT_DOUBLE_EQ(tl.FirstFit(1.0, 0.0), 0.0);   // [0,1) holds exactly 1
  EXPECT_DOUBLE_EQ(tl.FirstFit(1.5, 0.0), 4.0);   // only the tail holds 1.5
  EXPECT_DOUBLE_EQ(tl.FirstFit(0.5, 1.5), 2.0);   // pushed out of [1,2)
  EXPECT_DOUBLE_EQ(tl.FirstFit(2.0, 3.5), 4.0);   // pushed out of [3,4)
  EXPECT_DOUBLE_EQ(tl.FirstFit(0.25, 2.25), 2.25);  // inside the middle gap
}

TEST(IntervalTimeline, FirstFitOnForeverBusyTimelineReturnsOpenEnd) {
  IntervalTimeline tl;
  tl.Add(0.0, kInf, 1);
  EXPECT_EQ(tl.FirstFit(1.0, 0.0), kInf);
}

TEST(IntervalTimeline, BoundKeepsSegmentCountCapped) {
  IntervalTimeline tl(/*max_segments=*/8);
  for (int i = 0; i < 64; ++i) {
    tl.Add(2.0 * i, 2.0 * i + 1.0, 1);  // 64 disjoint intervals
  }
  EXPECT_LE(tl.num_segments(), 8u);
  // Conservative: every originally-busy instant is still at level >= 1.
  for (int i = 0; i < 64; ++i) {
    EXPECT_GE(tl.At(2.0 * i + 0.5).level, 1) << "interval " << i;
  }
}

// The gap-absorption conservatism property: place the SAME random intervals
// into an effectively-uncapped timeline and into a tightly-capped one (whose
// Bound() keeps absorbing old gaps), then probe both with random requests.
// For every subsequent reservation the capped map must return a first-fit
// start — hence a finish — at or past the uncapped map's: absorbing gaps can
// only delay work, never speed it up.
TEST(IntervalTimeline, BoundedAbsorptionNeverFinishesAReservationEarlier) {
  IntervalTimeline capped(/*max_segments=*/16);
  IntervalTimeline uncapped(/*max_segments=*/1u << 20);
  std::mt19937 rng(0xC0FFEE);
  std::uniform_real_distribution<double> start_dist(0.0, 100.0);
  std::uniform_real_distribution<double> dur_dist(0.1, 3.0);
  for (int i = 0; i < 500; ++i) {
    const VTime start = start_dist(rng);
    const VTime dur = dur_dist(rng);
    uncapped.Add(start, start + dur, 1);
    capped.Add(start, start + dur, 1);
  }
  EXPECT_LE(capped.num_segments(), 16u);
  for (int i = 0; i < 300; ++i) {
    const VTime ready = start_dist(rng);
    const VTime dur = dur_dist(rng);
    const VTime s_unc = uncapped.FirstFit(dur, ready);
    const VTime s_cap = capped.FirstFit(dur, ready);
    ASSERT_GE(s_cap, s_unc) << "probe " << i << " (ready " << ready << ", dur "
                            << dur << ") fit earlier on the capped timeline";
  }
}

}  // namespace
}  // namespace hetex::sim
