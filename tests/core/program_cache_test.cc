#include "core/program_cache.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hetex::core {
namespace {

using test::TestEnv;

CompiledPipeline MakePipeline(int64_t imm, uint32_t width = 8) {
  CompiledPipeline p;
  jit::ProgramBuilder b;
  const int v = b.AllocReg();
  b.EmitOp(jit::OpCode::kLoadCol, v, 0);
  const int t = b.AllocReg();
  b.EmitOp(jit::OpCode::kConst, t, 0, 0, 0, imm);
  const int pred = b.AllocReg();
  b.EmitOp(jit::OpCode::kCmpLt, pred, v, t);
  b.EmitOp(jit::OpCode::kFilter, pred);
  const int acc = b.AllocLocalAcc(jit::AggFunc::kCount);
  b.EmitOp(jit::OpCode::kAggLocal, acc, v,
           static_cast<int>(jit::AggFunc::kCount));
  p.program = b.Finalize("cache.test[" + std::to_string(imm) + "]");
  p.input_cols.push_back({"v", width});
  return p;
}

TEST(ProgramCache, ThirtyTwoInstancesFinalizeOnce) {
  TestEnv env(2'000);
  ProgramCache cache;
  auto provider = env.system->MakeProvider(sim::DeviceId::Cpu(0));
  const CompiledPipeline pipeline = MakePipeline(42);

  // A 32-instance worker group: every instance asks for the same span program.
  std::shared_ptr<const jit::PipelineProgram> first;
  for (int i = 0; i < 32; ++i) {
    auto r = cache.GetOrCompile(*provider, pipeline);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (i == 0) {
      first = r.value();
    } else {
      EXPECT_EQ(first.get(), r.value().get());  // the same compiled program
    }
  }
  EXPECT_TRUE(first->finalized);
  EXPECT_EQ(first->tier, jit::ExecTier::kVectorized);
  const auto c = cache.counters(sim::DeviceType::kCpu);
  EXPECT_EQ(c.misses, 1u);  // finalized exactly once
  EXPECT_EQ(c.hits, 31u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProgramCache, PerDeviceKindEntriesAndCounters) {
  TestEnv env(2'000);
  ProgramCache cache;
  auto cpu = env.system->MakeProvider(sim::DeviceId::Cpu(0));
  auto gpu = env.system->MakeProvider(sim::DeviceId::Gpu(0));
  const CompiledPipeline pipeline = MakePipeline(7);

  ASSERT_TRUE(cache.GetOrCompile(*cpu, pipeline).ok());
  ASSERT_TRUE(cache.GetOrCompile(*gpu, pipeline).ok());
  ASSERT_TRUE(cache.GetOrCompile(*gpu, pipeline).ok());

  EXPECT_EQ(cache.counters(sim::DeviceType::kCpu).misses, 1u);
  EXPECT_EQ(cache.counters(sim::DeviceType::kCpu).hits, 0u);
  EXPECT_EQ(cache.counters(sim::DeviceType::kGpu).misses, 1u);
  EXPECT_EQ(cache.counters(sim::DeviceType::kGpu).hits, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ProgramCache, DistinctProgramsAndSchemasGetDistinctEntries) {
  TestEnv env(2'000);
  ProgramCache cache;
  auto provider = env.system->MakeProvider(sim::DeviceId::Cpu(0));

  ASSERT_TRUE(cache.GetOrCompile(*provider, MakePipeline(1)).ok());
  ASSERT_TRUE(cache.GetOrCompile(*provider, MakePipeline(2)).ok());
  // Same code, different binding schema (column width) — a distinct entry.
  ASSERT_TRUE(cache.GetOrCompile(*provider, MakePipeline(1, /*width=*/4)).ok());
  ASSERT_TRUE(cache.GetOrCompile(*provider, MakePipeline(1)).ok());  // hit

  const auto c = cache.counters(sim::DeviceType::kCpu);
  EXPECT_EQ(c.misses, 3u);
  EXPECT_EQ(c.hits, 1u);
}

TEST(ProgramCache, ValidationFailureIsNotCached) {
  TestEnv env(2'000);
  ProgramCache cache;
  auto provider = env.system->MakeProvider(sim::DeviceId::Cpu(0));
  CompiledPipeline bad = MakePipeline(1);
  bad.program.code.pop_back();  // drop kEnd
  EXPECT_FALSE(cache.GetOrCompile(*provider, bad).ok());
  EXPECT_EQ(cache.size(), 0u);
}

/// Repeated ExecutePlan runs reuse the system-resident cache: the second run of
/// the same query adds no misses (no re-finalization of identical spans).
TEST(ProgramCache, RepeatedQueryRunsHitTheSystemCache) {
  TestEnv env(10'000);
  const auto spec = env.ssb->Query(1, 1);
  const auto policy = TestEnv::Tune(plan::ExecPolicy::CpuOnly(3));

  auto r1 = env.Run(spec, policy);
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  const auto after_first = env.system->program_cache().counters(sim::DeviceType::kCpu);
  EXPECT_GT(after_first.misses, 0u);
  EXPECT_GT(after_first.hits, 0u);  // multi-instance groups share finalization

  auto r2 = env.Run(spec, policy);
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r2.rows, r1.rows);
  const auto after_second = env.system->program_cache().counters(sim::DeviceType::kCpu);
  EXPECT_EQ(after_second.misses, after_first.misses);  // all hits, no re-finalize
  EXPECT_GT(after_second.hits, after_first.hits);
}

}  // namespace
}  // namespace hetex::core
