#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/scheduler.h"
#include "plan/het_plan.h"
#include "plan/optimizer.h"
#include "sim/fault.h"
#include "test_util.h"

namespace hetex::core {
namespace {

using plan::ExecPolicy;
using test::TestEnv;

/// The terminal states a chaos query may legitimately end in. Anything else
/// (kInternal, kInvalidArgument, ...) means a fault escaped the named
/// error-propagation paths.
bool IsChaosTerminal(const Status& s) {
  if (s.ok()) return true;
  switch (s.code()) {
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeviceLost:
      return true;
    default:
      return false;
  }
}

/// TestEnv with an explicit fault-plane configuration (TestEnv itself inherits
/// whatever the HETEX_FAULT_* environment says, which the CI chaos job sets;
/// these tests pin their own schedules regardless of the environment).
struct ChaosEnv {
  explicit ChaosEnv(sim::FaultOptions faults, uint64_t lineorder_rows = 30'000) {
    System::Options opts;
    opts.topology.num_sockets = 2;
    opts.topology.cores_per_socket = 2;
    opts.topology.num_gpus = 2;
    opts.topology.gpu_sim_threads = 2;
    opts.topology.host_capacity_per_socket = 4ull << 30;
    opts.topology.gpu_capacity = 1ull << 30;
    opts.blocks.block_bytes = 64 << 10;
    opts.blocks.host_arena_blocks = 256;
    opts.blocks.gpu_arena_blocks = 128;
    // Fail fast if a chaos run ever genuinely starves an arena — the test must
    // surface a bug as a named status, not sit out the production bound.
    opts.blocks.acquire_timeout_seconds = 5.0;
    opts.faults = faults;
    system = std::make_unique<System>(opts);

    ssb::Ssb::Options ssb_opts;
    ssb_opts.lineorder_rows = lineorder_rows;
    ssb_opts.scale = 0.002;
    ssb = std::make_unique<ssb::Ssb>(ssb_opts, &system->catalog());
    for (const char* name :
         {"lineorder", "date", "customer", "supplier", "part"}) {
      HETEX_CHECK_OK(system->catalog().at(name).Place(system->HostNodes(),
                                                      &system->memory()));
    }
  }

  std::vector<std::vector<int64_t>> Reference(const plan::QuerySpec& spec) {
    return ssb::ReferenceExecute(spec, system->catalog());
  }

  /// Every resource a query holds mid-flight must be back after the drain:
  /// staging blocks in every arena, hash-table namespaces, DRAM worker
  /// registrations. A leak here means some fault path skipped a cleanup guard.
  void ExpectNoLeaks() {
    for (sim::MemNodeId node : system->HostNodes()) {
      EXPECT_EQ(system->blocks().manager(node).in_use(), 0u)
          << "host node " << node << " leaked staging blocks";
    }
    for (sim::MemNodeId node : system->GpuNodes()) {
      EXPECT_EQ(system->blocks().manager(node).in_use(), 0u)
          << "gpu node " << node << " leaked staging blocks";
    }
    EXPECT_EQ(system->hts().TotalHtBytes(), 0u) << "leaked hash-table bytes";
    for (int s = 0; s < 2; ++s) {
      EXPECT_EQ(system->topology().socket_dram(s).active_workers(), 0)
          << "socket " << s << " leaked DRAM worker registrations";
    }
  }

  std::unique_ptr<System> system;
  std::unique_ptr<ssb::Ssb> ssb;
};

ExecPolicy PinnedHybrid() {
  ExecPolicy policy = TestEnv::Tune(ExecPolicy::Hybrid(3));
  policy.load_balance = false;
  return policy;
}

bool PlanUsesGpu(const plan::HetPlan& plan) {
  return std::any_of(plan.nodes.begin(), plan.nodes.end(),
                     [](const plan::HetOpNode& n) {
                       return n.kind == plan::HetOpNode::Kind::kCpu2Gpu;
                     });
}

// ---------------------------------------------------------------------------
// The acceptance pin: an injector that is present but disabled — even with
// every rate armed at 1.0 — changes nothing. Rows and the modeled virtual
// latency are identical to a system built with pristine default fault options.
// ---------------------------------------------------------------------------

TEST(ChaosTest, DisabledInjectorWithArmedRatesIsByteIdentical) {
  sim::FaultOptions armed;  // every rate set, but enabled == false
  armed.enabled = false;
  armed.seed = 7;
  armed.dma_fault_rate = 1.0;
  armed.kernel_fault_rate = 1.0;
  armed.staging_fault_rate = 1.0;
  armed.compile_fault_rate = 1.0;

  ChaosEnv plain{sim::FaultOptions{}};
  ChaosEnv shadow{armed};
  const auto spec = plain.ssb->Query(2, 1);

  // Single CPU worker: fully deterministic virtual timeline, so the modeled
  // latency itself must match to the last bit, not just the rows.
  ExecPolicy solo = TestEnv::Tune(ExecPolicy::CpuOnly(1));
  QueryExecutor plain_exec(plain.system.get());
  QueryExecutor shadow_exec(shadow.system.get());
  const QueryResult a = plain_exec.Execute(spec, solo);
  const QueryResult b = shadow_exec.Execute(spec, solo);
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.rows, plain.Reference(spec));
  EXPECT_DOUBLE_EQ(a.modeled_seconds, b.modeled_seconds);

  // A DMA-heavy hybrid run crosses every injection site; rows stay identical
  // and the disarmed injector never counted anything.
  const QueryResult ha = plain_exec.Execute(spec, PinnedHybrid());
  const QueryResult hb = shadow_exec.Execute(spec, PinnedHybrid());
  ASSERT_TRUE(ha.status.ok()) << ha.status.ToString();
  ASSERT_TRUE(hb.status.ok()) << hb.status.ToString();
  EXPECT_EQ(ha.rows, hb.rows);

  const auto c = shadow.system->fault().counters();
  EXPECT_EQ(c.dma_faults, 0u);
  EXPECT_EQ(c.kernel_faults, 0u);
  EXPECT_EQ(c.staging_faults, 0u);
  EXPECT_EQ(c.compile_faults, 0u);
  EXPECT_EQ(c.device_loss_rejections, 0u);
}

// ---------------------------------------------------------------------------
// Scripted whole-device loss.
// ---------------------------------------------------------------------------

TEST(ChaosTest, AllGpusLostBeforePlanningFallsBackToCpuOnly) {
  sim::FaultOptions f;
  f.enabled = true;  // zero rates: only the scripted health registry acts
  ChaosEnv env{f};
  env.system->fault().LoseGpu(0, /*from=*/0.0);
  env.system->fault().LoseGpu(1, /*from=*/0.0);

  // Optimizer path: the planner sees the empty surviving-device set and picks
  // a CPU-only plan — the query degrades, it does not fail.
  const auto spec = env.ssb->Query(3, 1);
  QueryExecutor executor(env.system.get());
  const QueryResult r = executor.Execute(spec);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows, env.Reference(spec));
  // Nothing was ever launched at a dead device.
  EXPECT_EQ(env.system->fault().counters().device_loss_rejections, 0u);

  // A pinned GPU policy has no freedom to re-place: the loss is terminal,
  // surfaced as the named kDeviceLost through Wait().
  QueryScheduler scheduler(env.system.get());
  SubmitOptions opts;
  opts.policy = TestEnv::Tune(ExecPolicy::GpuOnly());
  const QueryResult pinned = scheduler.Wait(scheduler.Submit(spec, opts));
  EXPECT_EQ(pinned.status.code(), StatusCode::kDeviceLost)
      << pinned.status.ToString();
  EXPECT_FALSE(pinned.replanned);
  EXPECT_FALSE(pinned.fault.ok());
  env.ExpectNoLeaks();
}

TEST(ChaosTest, DeviceLossAfterPlanningReplansOntoSurvivors) {
  sim::FaultOptions f;
  f.enabled = true;
  ChaosEnv env{f};
  const auto spec = env.ssb->Query(1, 1);
  QueryExecutor executor(env.system.get());

  // What does the optimizer pick while every device is healthy?
  plan::OptimizeResult probe;
  ASSERT_TRUE(executor
                  .OptimizeAt(spec, ExecPolicy{},
                              env.system->VirtualHorizon(), &probe)
                  .ok());
  const bool planned_on_gpu = PlanUsesGpu(probe.best().plan);

  // Both GPUs die just after the planning instant: a GPU plan launches into
  // the loss window, fails with kDeviceLost, and the scheduler re-plans the
  // query on the surviving (CPU-only) device set.
  env.system->fault().LoseGpu(0, /*from=*/1e-4);
  env.system->fault().LoseGpu(1, /*from=*/1e-4);

  QueryScheduler scheduler(env.system.get(), {.max_concurrent = 1});
  const QueryResult r = scheduler.Wait(scheduler.Submit(spec, {}));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows, env.Reference(spec));
  if (planned_on_gpu) {
    EXPECT_TRUE(r.replanned);
    EXPECT_TRUE(r.degraded);
    EXPECT_GE(r.retries, 1);
    EXPECT_EQ(r.fault.code(), StatusCode::kDeviceLost) << r.fault.ToString();
  }
  env.ExpectNoLeaks();
}

// ---------------------------------------------------------------------------
// Deterministic transient faults: rate 1.0 makes every draw fire regardless of
// thread interleaving, so the retry loop's exhaustion is exactly observable.
// ---------------------------------------------------------------------------

TEST(ChaosTest, CertainDmaFaultExhaustsRetriesWithNamedStatus) {
  sim::FaultOptions f;
  f.enabled = true;
  f.dma_fault_rate = 1.0;
  ChaosEnv env{f};
  const auto spec = env.ssb->Query(1, 1);

  QueryScheduler scheduler(env.system.get());
  SubmitOptions opts;
  opts.policy = TestEnv::Tune(ExecPolicy::GpuOnly());  // must cross the bus
  const QueryResult r = scheduler.Wait(scheduler.Submit(spec, opts));
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable) << r.status.ToString();
  EXPECT_EQ(r.retries, scheduler.options().max_retries);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.fault.code(), StatusCode::kUnavailable);
  EXPECT_GT(env.system->fault().counters().dma_faults, 0u);
  env.ExpectNoLeaks();
}

TEST(ChaosTest, CertainStagingSpikeExhaustsRetriesWithNamedStatus) {
  sim::FaultOptions f;
  f.enabled = true;
  f.staging_fault_rate = 1.0;
  ChaosEnv env{f};
  const auto spec = env.ssb->Query(1, 1);

  QueryScheduler scheduler(env.system.get());
  SubmitOptions opts;
  opts.policy = TestEnv::Tune(ExecPolicy::CpuOnly(2));
  const QueryResult r = scheduler.Wait(scheduler.Submit(spec, opts));
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted)
      << r.status.ToString();
  EXPECT_EQ(r.retries, scheduler.options().max_retries);
  EXPECT_TRUE(r.degraded);
  EXPECT_GT(env.system->fault().counters().staging_faults, 0u);
  env.ExpectNoLeaks();
}

// ---------------------------------------------------------------------------
// The chaos mix: pinned seeds, moderate rates, a scripted device-loss window,
// deadlines and cancellations — all at once, against a concurrent scheduler.
// Invariants that must hold for EVERY interleaving:
//   1. every query reaches exactly one terminal state, from the allowed set;
//   2. a query that reports OK reports exactly the fault-free reference rows
//      (degraded-mode recovery is bit-transparent);
//   3. after the drain nothing leaks: staging blocks, HT namespaces, DRAM
//      worker registrations;
//   4. degraded results name their causing fault.
// ---------------------------------------------------------------------------

TEST(ChaosTest, MixedWorkloadSurvivesInjectedFaultsAtPinnedSeeds) {
  const uint64_t kSeeds[] = {11, 23, 47};
  uint64_t injected_total = 0;

  for (const uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    sim::FaultOptions f;
    f.enabled = true;
    f.seed = seed;
    f.dma_fault_rate = 0.02;
    f.kernel_fault_rate = 0.02;
    f.staging_fault_rate = 0.005;
    ChaosEnv env{f};

    const std::vector<std::pair<int, int>> mix = {
        {1, 1}, {1, 2}, {2, 1}, {3, 1}, {4, 1}, {4, 2}, {2, 1}, {1, 1}};
    std::vector<plan::QuerySpec> specs;
    std::vector<std::vector<std::vector<int64_t>>> refs;
    for (const auto& [flight, idx] : mix) {
      specs.push_back(env.ssb->Query(flight, idx));
      refs.push_back(env.Reference(specs.back()));
    }

    // One GPU drops out for a window in the middle of the busy period and
    // comes back: queries planned inside the window avoid it, queries caught
    // mid-flight re-plan around it.
    env.system->fault().LoseGpu(static_cast<int>(seed % 2), /*from=*/0.02,
                                /*until=*/0.12);

    {
      QueryScheduler scheduler(env.system.get(), {.max_concurrent = 3});
      std::vector<QueryHandle> handles;
      for (size_t i = 0; i < specs.size(); ++i) {
        SubmitOptions opts;
        if (i % 3 == 0) opts.policy = PinnedHybrid();  // pinned-path coverage
        if (i == 4) opts.deadline = 1e-6;  // expires under any execution
        if (i == 5) opts.deadline = 1e9;   // never expires
        handles.push_back(scheduler.Submit(specs[i], opts));
      }
      // One cancel lands on a (very likely) still-queued query, one on a
      // (very likely) running query; both states must terminate cleanly.
      EXPECT_TRUE(scheduler.Cancel(handles[7]).ok());
      EXPECT_TRUE(scheduler.Cancel(handles[1]).ok());

      for (size_t i = 0; i < handles.size(); ++i) {
        SCOPED_TRACE(specs[i].name + " (#" + std::to_string(i) + ")");
        const QueryResult r = scheduler.Wait(handles[i]);
        EXPECT_TRUE(IsChaosTerminal(r.status)) << r.status.ToString();
        if (r.status.ok()) {
          EXPECT_EQ(r.rows, refs[i]);
        } else if (r.status.code() == StatusCode::kCancelled ||
                   r.status.code() == StatusCode::kDeadlineExceeded) {
          EXPECT_TRUE(r.rows.empty());  // no partial rows ever surface
        }
        if (i == 4) {
          EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
              << r.status.ToString();
        }
        if (r.degraded) EXPECT_FALSE(r.fault.ok());
        if (r.replanned) EXPECT_GE(r.retries, 1);
        // The session's hash-table namespace is gone whatever the outcome.
        EXPECT_EQ(env.system->hts().NumTables(r.query_id), 0);
        // Exactly one terminal state: the handle is consumed, a second Wait
        // cannot observe another.
        EXPECT_FALSE(scheduler.Wait(handles[i]).status.ok());
      }
    }  // scheduler destructor drains everything still in flight

    env.ExpectNoLeaks();
    const auto c = env.system->fault().counters();
    injected_total += c.dma_faults + c.kernel_faults + c.staging_faults +
                      c.device_loss_rejections;
  }
  // The harness only proves something if faults actually fired somewhere
  // across the pinned seeds.
  EXPECT_GT(injected_total, 0u);
}

}  // namespace
}  // namespace hetex::core
