#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "test_util.h"

namespace hetex::core {
namespace {

using plan::ExecPolicy;
using test::TestEnv;

/// Deterministic hybrid policy: round-robin routing so the same plan assigns
/// the same blocks to the same instances run after run (latency comparisons
/// must not hinge on the adaptive balancer's thread-timing luck).
ExecPolicy PinnedHybrid() {
  ExecPolicy policy = TestEnv::Tune(ExecPolicy::Hybrid(3));
  policy.load_balance = false;
  return policy;
}

/// The mixed SSB workload the parity suite runs: at least one query per
/// flight, scalar and group-by aggregations, 1-3 joins.
std::vector<std::pair<int, int>> ParityQueries() {
  return {{1, 1}, {1, 2}, {2, 1}, {3, 1}, {4, 1}, {4, 2}};
}

// ---------------------------------------------------------------------------
// Concurrent-vs-serial parity: N SSB queries in flight against one System
// produce exactly the rows their serial runs produce.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ConcurrentVsSerialParityOnSsbMatrix) {
  TestEnv env(30'000);
  QueryExecutor executor(env.system.get());

  // Serial baseline (cost-based optimizer, one query at a time).
  std::vector<plan::QuerySpec> specs;
  std::vector<std::vector<std::vector<int64_t>>> serial_rows;
  for (const auto& [flight, idx] : ParityQueries()) {
    specs.push_back(env.ssb->Query(flight, idx));
    QueryResult serial = executor.Execute(specs.back());
    ASSERT_TRUE(serial.status.ok()) << serial.status.ToString();
    ASSERT_EQ(serial.rows, env.Reference(specs.back())) << specs.back().name;
    serial_rows.push_back(std::move(serial.rows));
  }

  // The same queries, all in flight at once (admission cap 4 exercises the
  // queue too). The optimizer runs per session, with the live backlog signal.
  std::vector<QueryHandle> handles;
  for (const auto& spec : specs) handles.push_back(executor.Submit(spec));
  for (size_t i = 0; i < handles.size(); ++i) {
    QueryResult concurrent = executor.Wait(handles[i]);
    ASSERT_TRUE(concurrent.status.ok())
        << specs[i].name << ": " << concurrent.status.ToString();
    EXPECT_EQ(concurrent.rows, serial_rows[i]) << specs[i].name;
    EXPECT_GT(concurrent.modeled_seconds, 0.0);
    // The session's hash-table namespace is gone once the query finished.
    EXPECT_EQ(env.system->hts().NumTables(concurrent.query_id), 0);
  }
}

// ---------------------------------------------------------------------------
// Cross-session program-cache sharing: concurrent sessions running the same
// plan shape re-finalize nothing once one session compiled the spans.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ProgramCacheHitsAcrossSessions) {
  TestEnv env(20'000);
  const auto spec = env.ssb->Query(2, 1);
  const ExecPolicy policy = TestEnv::Tune(ExecPolicy::CpuOnly(3));

  // Warm the cache with one solo run: every span program is now finalized.
  QueryExecutor executor(env.system.get());
  QueryResult warm = executor.Execute(spec, policy);
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();

  const auto before = env.system->program_cache().counters(sim::DeviceType::kCpu);

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 4; ++i) handles.push_back(executor.Submit(spec, policy));
  for (auto& h : handles) {
    QueryResult r = executor.Wait(h);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.rows, warm.rows);
  }

  const auto after = env.system->program_cache().counters(sim::DeviceType::kCpu);
  // Every instance of every concurrent session hit the warm shared cache.
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

// ---------------------------------------------------------------------------
// HtRegistry regression: two simultaneous queries joining the same dimension
// table used to collide on the (join id, unit) key; query-scoped namespaces
// keep their hash tables disjoint.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, SimultaneousQueriesJoiningSameDimensionTable) {
  TestEnv env(20'000);
  // Q1.1 and Q1.2 both broadcast-build a hash table over `date` with join id
  // 0 on the same units; so do two copies of Q1.1.
  const auto q11 = env.ssb->Query(1, 1);
  const auto q12 = env.ssb->Query(1, 2);
  const auto expected_q11 = env.Reference(q11);
  const auto expected_q12 = env.Reference(q12);

  QueryExecutor executor(env.system.get());
  const ExecPolicy policy = PinnedHybrid();
  for (int round = 0; round < 3; ++round) {
    QueryHandle a = executor.Submit(q11, policy);
    QueryHandle b = executor.Submit(q12, policy);
    QueryHandle c = executor.Submit(q11, policy);
    QueryResult ra = executor.Wait(a);
    QueryResult rb = executor.Wait(b);
    QueryResult rc = executor.Wait(c);
    ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
    ASSERT_TRUE(rb.status.ok()) << rb.status.ToString();
    ASSERT_TRUE(rc.status.ok()) << rc.status.ToString();
    EXPECT_EQ(ra.rows, expected_q11);
    EXPECT_EQ(rb.rows, expected_q12);
    EXPECT_EQ(rc.rows, expected_q11);
    // All three namespaces dropped.
    for (const auto& r : {ra, rb, rc}) {
      EXPECT_EQ(env.system->hts().NumTables(r.query_id), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Contention can only slow, never speed up: a query sharing the server with
// three others never beats its solo latency.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ConcurrentLatencyNeverBeatsSolo) {
  TestEnv env(30'000);
  QueryExecutor executor(env.system.get());
  const ExecPolicy policy = PinnedHybrid();

  std::vector<plan::QuerySpec> specs;
  std::vector<double> solo;
  for (const auto& [flight, idx] : {std::pair{1, 1}, {2, 1}, {3, 1}, {4, 1}}) {
    specs.push_back(env.ssb->Query(flight, idx));
    QueryResult r = executor.Execute(specs.back(), policy);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    solo.push_back(r.modeled_seconds);
  }

  std::vector<QueryHandle> handles;
  for (const auto& spec : specs) handles.push_back(executor.Submit(spec, policy));
  for (size_t i = 0; i < handles.size(); ++i) {
    QueryResult r = executor.Wait(handles[i]);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    // Small tolerance: per-run jitter from the order concurrent producers of
    // ONE query reserve the shared links (present solo too); contention across
    // queries can only push the latency up.
    EXPECT_GE(r.modeled_seconds, solo[i] * 0.98)
        << specs[i].name << " concurrent " << r.modeled_seconds << " vs solo "
        << solo[i];
  }
}

// ---------------------------------------------------------------------------
// Solo latency through the session machinery is the old reset-model latency:
// back-to-back runs see fresh resources every time.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, SoloLatencyStableAcrossRepeatedRuns) {
  TestEnv env(20'000);
  QueryExecutor executor(env.system.get());
  const auto spec = env.ssb->Query(2, 1);
  const ExecPolicy policy = PinnedHybrid();

  QueryResult first = executor.Execute(spec, policy);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  for (int i = 0; i < 3; ++i) {
    QueryResult again = executor.Execute(spec, policy);
    ASSERT_TRUE(again.status.ok());
    // No residual backlog from earlier queries leaks into a fresh session.
    EXPECT_NEAR(again.modeled_seconds, first.modeled_seconds,
                0.02 * first.modeled_seconds);
  }

  // Serial submission through the scheduler (cap 1) matches the solo path.
  QueryScheduler serial(env.system.get(), {.max_concurrent = 1});
  SubmitOptions opts;
  opts.policy = policy;
  QueryHandle h = serial.Submit(spec, opts);
  QueryResult scheduled = serial.Wait(h);
  ASSERT_TRUE(scheduled.status.ok());
  EXPECT_NEAR(scheduled.modeled_seconds, first.modeled_seconds,
              0.02 * first.modeled_seconds);
}

// ---------------------------------------------------------------------------
// Admission control: the concurrency cap and the per-query memory budget both
// gate how many queries run at once.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, AdmissionCapBoundsInFlightQueries) {
  TestEnv env(20'000);
  QueryScheduler scheduler(env.system.get(), {.max_concurrent = 2});
  const auto spec = env.ssb->Query(1, 1);
  const auto expected = env.Reference(spec);

  SubmitOptions opts;
  opts.policy = PinnedHybrid();
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 6; ++i) handles.push_back(scheduler.Submit(spec, opts));
  EXPECT_LE(scheduler.in_flight(), 2);
  for (auto& h : handles) {
    EXPECT_LE(scheduler.in_flight(), 2);
    QueryResult r = scheduler.Wait(h);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.rows, expected);
  }
}

TEST(SchedulerTest, MemoryBudgetSerializesOversizedQueries) {
  TestEnv env(20'000);
  QueryScheduler probe(env.system.get());
  const uint64_t total = probe.total_budget_blocks();
  ASSERT_GT(total, 0u);

  // Every query demands the whole arena: the cap alone would admit 4, the
  // memory budget admits one at a time.
  QueryScheduler scheduler(env.system.get(),
                           {.max_concurrent = 4, .memory_budget_blocks = total});
  const auto spec = env.ssb->Query(1, 1);
  const auto expected = env.Reference(spec);
  SubmitOptions opts;
  opts.policy = PinnedHybrid();
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 3; ++i) handles.push_back(scheduler.Submit(spec, opts));
  EXPECT_LE(scheduler.in_flight(), 1);
  for (auto& h : handles) {
    EXPECT_LE(scheduler.in_flight(), 1);
    QueryResult r = scheduler.Wait(h);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.rows, expected);
  }
}

// ---------------------------------------------------------------------------
// Session plumbing details.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ArrivalOffsetsDelaySessions) {
  TestEnv env(20'000);
  QueryScheduler scheduler(env.system.get(), {.max_concurrent = 2});
  const auto spec = env.ssb->Query(1, 1);

  SubmitOptions now;
  now.policy = PinnedHybrid();
  SubmitOptions later = now;
  later.arrival_offset = 0.5;  // arrives half a virtual second into the batch

  QueryHandle a = scheduler.Submit(spec, now);
  QueryHandle b = scheduler.Submit(spec, later);
  QueryResult ra = scheduler.Wait(a);
  QueryResult rb = scheduler.Wait(b);
  ASSERT_TRUE(ra.status.ok());
  ASSERT_TRUE(rb.status.ok());
  EXPECT_DOUBLE_EQ(ra.arrival_offset, 0.0);
  EXPECT_DOUBLE_EQ(rb.arrival_offset, 0.5);
  // The late arrival finds idle resources (the early query is long done in
  // virtual time): its own latency is unaffected by the offset.
  EXPECT_NEAR(rb.modeled_seconds, ra.modeled_seconds,
              0.05 * ra.modeled_seconds);
}

// ---------------------------------------------------------------------------
// UVA link occupancy end to end: a bare-GPU (UVA) query's kernel bytes occupy
// the PCIe link BandwidthServer, so a DMA-heavy query sharing the link and the
// virtual timeline runs slower than solo.
// ---------------------------------------------------------------------------

/// Custom contention server: fixed latencies scaled down so the 10 ms router
/// bring-up does not drown the bandwidth effects under test, and (optionally)
/// one many-core socket where the 45 GB/s DRAM aggregate genuinely binds.
struct ContentionEnv {
  ContentionEnv(int sockets, int cores_per_socket, int gpus,
                uint64_t lineorder_rows) {
    System::Options opts;
    opts.topology.num_sockets = sockets;
    opts.topology.cores_per_socket = cores_per_socket;
    opts.topology.num_gpus = gpus;
    opts.topology.gpu_sim_threads = 2;
    opts.topology.host_capacity_per_socket = 4ull << 30;
    opts.topology.gpu_capacity = 1ull << 30;
    opts.topology.cost_model.ScaleFixedLatencies(0.001);
    opts.blocks.block_bytes = 64 << 10;
    opts.blocks.host_arena_blocks = 256;
    opts.blocks.gpu_arena_blocks = 128;
    system = std::make_unique<System>(opts);

    ssb::Ssb::Options ssb_opts;
    ssb_opts.lineorder_rows = lineorder_rows;
    ssb_opts.scale = 0.002;
    ssb = std::make_unique<ssb::Ssb>(ssb_opts, &system->catalog());
    for (const char* name :
         {"lineorder", "date", "customer", "supplier", "part"}) {
      HETEX_CHECK_OK(system->catalog().at(name).Place(system->HostNodes(),
                                                      &system->memory()));
    }
  }

  std::unique_ptr<System> system;
  std::unique_ptr<ssb::Ssb> ssb;
};

TEST(SchedulerTest, DmaQuerySlowsDownBehindConcurrentUvaQuery) {
  ContentionEnv env(2, 2, 2, 60'000);
  QueryExecutor executor(env.system.get());
  const auto spec = env.ssb->Query(1, 1);

  ExecPolicy gpu_policy = TestEnv::Tune(ExecPolicy::GpuOnly());
  gpu_policy.load_balance = false;  // deterministic block routing
  const plan::HetPlan dma_plan =
      plan::BuildHetPlan(spec, gpu_policy, env.system->topology());
  const plan::HetPlan uva_plan = plan::BuildHetPlan(
      spec, ExecPolicy::Bare(sim::DeviceType::kGpu), env.system->topology());

  // Solo baseline of the DMA-heavy plan (idle arrival).
  QueryResult solo = executor.ExecutePlan(spec, dma_plan);
  ASSERT_TRUE(solo.status.ok()) << solo.status.ToString();

  // The UVA query runs first; its epoch is offset by the DMA query's router
  // bring-up so the two sessions' link activity overlaps in virtual time (the
  // bare plan has no routers and starts streaming immediately). Its kernels
  // leave real occupancy on gpu0's link; the DMA query then joins the earlier
  // epoch and its fact-table transfers queue behind the UVA streams.
  const sim::VTime epoch = env.system->VirtualHorizon();
  const sim::VTime init = env.system->cost_model().router_init_latency;
  QueryResult uva = executor.ExecutePlan(
      spec, uva_plan, QuerySession{env.system->NextQueryId(), epoch + init});
  ASSERT_TRUE(uva.status.ok()) << uva.status.ToString();
  ASSERT_EQ(uva.rows, solo.rows);

  QueryResult contended = executor.ExecutePlan(
      spec, dma_plan, QuerySession{env.system->NextQueryId(), epoch});
  ASSERT_TRUE(contended.status.ok()) << contended.status.ToString();
  EXPECT_EQ(contended.rows, solo.rows);
  // Visible slowdown, not just noise: the UVA query streamed the whole fact
  // table over link 0 ahead of this session's transfers.
  EXPECT_GT(contended.modeled_seconds, solo.modeled_seconds * 1.05)
      << "contended " << contended.modeled_seconds << " vs solo "
      << solo.modeled_seconds;
}

// ---------------------------------------------------------------------------
// Cross-session CPU DRAM contention: a socket's fluid shares divide across
// every in-flight session's workers, not just one query's.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, OtherSessionsWorkersShrinkDramFluidShare) {
  // One socket x 12 cores, no GPUs: 12 solo workers stream at 45/12 GB/s each.
  ContentionEnv env(1, 12, 0, 60'000);
  QueryExecutor executor(env.system.get());
  const auto spec = env.ssb->Query(1, 1);
  ExecPolicy policy = TestEnv::Tune(ExecPolicy::CpuOnly(12));
  policy.load_balance = false;

  sim::DramServer& dram = env.system->topology().socket_dram(0);
  const uint64_t gen_before = dram.generation();
  QueryResult solo = executor.Execute(spec, policy);
  ASSERT_TRUE(solo.status.ok()) << solo.status.ToString();
  // The runtime itself registered (and released) this query's workers: one
  // register/release pair per execution phase (builds, fact chain). Without
  // this, every contention assertion below could pass against a runtime that
  // silently stopped charging cross-session DRAM.
  EXPECT_EQ(dram.generation() - gen_before, 4u);
  EXPECT_EQ(dram.active_workers(), 0);

  // A phantom in-flight session holds 12 workers on socket 0: every worker's
  // share drops from 45/12 to 45/24 GB/s, and the bandwidth-bound scan phase
  // slows visibly — deterministically, no thread-timing luck involved.
  const uint64_t token = dram.Register(/*session=*/999'999, /*epoch=*/0.0, 12);
  QueryResult contended = executor.Execute(spec, policy);
  dram.Release(token);
  ASSERT_TRUE(contended.status.ok()) << contended.status.ToString();
  EXPECT_EQ(contended.rows, solo.rows);
  EXPECT_GT(contended.modeled_seconds, solo.modeled_seconds * 1.2)
      << "contended " << contended.modeled_seconds << " vs solo "
      << solo.modeled_seconds;

  // Released: the next solo run is back on the solo timeline.
  QueryResult after = executor.Execute(spec, policy);
  ASSERT_TRUE(after.status.ok());
  EXPECT_NEAR(after.modeled_seconds, solo.modeled_seconds,
              0.02 * solo.modeled_seconds);

  // Self-exclusion: a registration under the query's OWN session id is not
  // charged — the id threads through WorkerInstance into every provider, so
  // a query never divides by its own phase registrations twice.
  const uint64_t qid = env.system->NextQueryId();
  const plan::HetPlan plan =
      plan::BuildHetPlan(spec, policy, env.system->topology());
  const uint64_t self = dram.Register(qid, 0.0, 12);
  QueryResult self_run = executor.ExecutePlan(
      spec, plan, QuerySession{qid, env.system->VirtualHorizon()});
  dram.Release(self);
  ASSERT_TRUE(self_run.status.ok()) << self_run.status.ToString();
  EXPECT_NEAR(self_run.modeled_seconds, solo.modeled_seconds,
              0.02 * solo.modeled_seconds);
}

TEST(SchedulerTest, ConcurrentSessionsOnOneSocketEachGetReducedShare) {
  ContentionEnv env(1, 12, 0, 30'000);
  System* system = env.system.get();
  QueryExecutor executor(system);
  const auto spec = env.ssb->Query(1, 1);
  ExecPolicy policy = TestEnv::Tune(ExecPolicy::CpuOnly(12));
  policy.load_balance = false;

  QueryResult solo = executor.Execute(spec, policy);
  ASSERT_TRUE(solo.status.ok()) << solo.status.ToString();

  // Two sessions in flight on the one socket: each runs wall-clock
  // concurrently with the other, so each divides the DRAM aggregate by both
  // sessions' workers for the overlapping part of its lifetime. Contention
  // can only slow them down, never speed them up.
  QueryScheduler scheduler(system, {.max_concurrent = 2});
  SubmitOptions opts;
  opts.policy = policy;
  QueryHandle a = scheduler.Submit(spec, opts);
  QueryHandle b = scheduler.Submit(spec, opts);
  QueryResult ra = scheduler.Wait(a);
  QueryResult rb = scheduler.Wait(b);
  ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
  ASSERT_TRUE(rb.status.ok()) << rb.status.ToString();
  EXPECT_EQ(ra.rows, solo.rows);
  EXPECT_EQ(rb.rows, solo.rows);
  EXPECT_GE(ra.modeled_seconds, solo.modeled_seconds * 0.98);
  EXPECT_GE(rb.modeled_seconds, solo.modeled_seconds * 0.98);
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines against the admission queue.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, CancelWhileQueuedFreesSlotWithoutStarting) {
  TestEnv env(20'000);
  QueryScheduler scheduler(env.system.get(), {.max_concurrent = 1});
  const auto spec = env.ssb->Query(3, 1);
  const auto expected = env.Reference(spec);
  SubmitOptions opts;
  opts.policy = PinnedHybrid();

  QueryHandle a = scheduler.Submit(spec, opts);
  QueryHandle b = scheduler.Submit(spec, opts);
  QueryHandle c = scheduler.Submit(spec, opts);
  EXPECT_TRUE(scheduler.Cancel(b).ok());

  // The cancelled query terminates in place: it never held a slot or budget,
  // never opened a session, never produced a row.
  QueryResult rb = scheduler.Wait(b);
  EXPECT_EQ(rb.status.code(), StatusCode::kCancelled) << rb.status.ToString();
  EXPECT_TRUE(rb.rows.empty());
  EXPECT_EQ(rb.retries, 0);
  EXPECT_FALSE(rb.degraded);
  EXPECT_EQ(env.system->hts().NumTables(rb.query_id), 0);

  // Admission moves on past the hole: both survivors run to completion.
  QueryResult ra = scheduler.Wait(a);
  QueryResult rc = scheduler.Wait(c);
  ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
  ASSERT_TRUE(rc.status.ok()) << rc.status.ToString();
  EXPECT_EQ(ra.rows, expected);
  EXPECT_EQ(rc.rows, expected);
}

TEST(SchedulerTest, CancelRunningQueryStopsCooperativelyAndReleasesAll) {
  TestEnv env(60'000);
  QueryScheduler scheduler(env.system.get(), {.max_concurrent = 1});
  const auto spec = env.ssb->Query(2, 1);
  SubmitOptions opts;
  opts.policy = PinnedHybrid();

  QueryHandle a = scheduler.Submit(spec, opts);
  EXPECT_TRUE(scheduler.Cancel(a).ok());
  QueryResult ra = scheduler.Wait(a);
  EXPECT_EQ(ra.status.code(), StatusCode::kCancelled) << ra.status.ToString();
  EXPECT_TRUE(ra.rows.empty());  // the authoritative stamp clears partials

  // Everything the aborted run held is back: staging blocks, HT namespaces,
  // DRAM registrations — and the scheduler keeps serving queries.
  for (sim::MemNodeId node : env.system->HostNodes()) {
    EXPECT_EQ(env.system->blocks().manager(node).in_use(), 0u);
  }
  for (sim::MemNodeId node : env.system->GpuNodes()) {
    EXPECT_EQ(env.system->blocks().manager(node).in_use(), 0u);
  }
  EXPECT_EQ(env.system->hts().TotalHtBytes(), 0u);

  QueryResult after = scheduler.Wait(scheduler.Submit(spec, opts));
  ASSERT_TRUE(after.status.ok()) << after.status.ToString();
  EXPECT_EQ(after.rows, env.Reference(spec));
}

TEST(SchedulerTest, CancelUnknownAndFinishedHandles) {
  TestEnv env(20'000);
  QueryScheduler scheduler(env.system.get(), {.max_concurrent = 1});
  EXPECT_EQ(scheduler.Cancel(QueryHandle{424242}).code(),
            StatusCode::kInvalidArgument);
  const auto spec = env.ssb->Query(1, 1);
  SubmitOptions opts;
  opts.policy = PinnedHybrid();

  // Finished-but-unwaited: Cancel is an OK no-op, the result survives intact.
  QueryHandle h = scheduler.Submit(spec, opts);
  while (scheduler.in_flight() > 0 || scheduler.queued() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(scheduler.Cancel(h).ok());
  QueryResult r = scheduler.Wait(h);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows, env.Reference(spec));

  // Waited handles are gone: cancelling one is InvalidArgument, idempotently.
  EXPECT_EQ(scheduler.Cancel(h).code(), StatusCode::kInvalidArgument);
}

TEST(SchedulerTest, DeadlineExpiredInQueueNeverExecutes) {
  TestEnv env(20'000);
  QueryScheduler scheduler(env.system.get(), {.max_concurrent = 1});
  const auto spec = env.ssb->Query(2, 1);
  SubmitOptions opts;
  opts.policy = PinnedHybrid();

  QueryHandle a = scheduler.Submit(spec, opts);  // occupies the only slot
  SubmitOptions hopeless = opts;
  hopeless.deadline = 1e-9;  // far below any possible queue wait
  QueryHandle b = scheduler.Submit(spec, hopeless);

  QueryResult rb = scheduler.Wait(b);
  EXPECT_EQ(rb.status.code(), StatusCode::kDeadlineExceeded)
      << rb.status.ToString();
  EXPECT_TRUE(rb.rows.empty());
  EXPECT_EQ(rb.retries, 0);
  // Almost always b queues behind a and the deadline expires in the queue —
  // then it must never have started executing. (If a's worker happened to
  // finish on the wall clock before b's submission, the server went idle, b
  // ran immediately and the deadline killed it mid-flight instead; both are
  // correct terminal paths.)
  if (rb.queue_wait > 0) EXPECT_EQ(rb.modeled_seconds, 0.0);
  QueryResult ra = scheduler.Wait(a);
  ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
}

TEST(SchedulerTest, DeadlineDuringExecutionAndGenerousDeadline) {
  TestEnv env(30'000);
  QueryExecutor executor(env.system.get());
  const auto spec = env.ssb->Query(2, 1);
  const ExecPolicy policy = PinnedHybrid();
  QueryResult solo = executor.Execute(spec, policy);
  ASSERT_TRUE(solo.status.ok()) << solo.status.ToString();

  QueryScheduler scheduler(env.system.get(), {.max_concurrent = 1});
  SubmitOptions opts;
  opts.policy = policy;

  // Half the known solo latency: the query starts, overruns mid-flight, and
  // terminates with the deadline status and no partial rows.
  SubmitOptions tight = opts;
  tight.deadline = solo.modeled_seconds / 2;
  QueryResult late = scheduler.Wait(scheduler.Submit(spec, tight));
  EXPECT_EQ(late.status.code(), StatusCode::kDeadlineExceeded)
      << late.status.ToString();
  EXPECT_TRUE(late.rows.empty());

  // Ten times the solo latency: the deadline is inert.
  SubmitOptions loose = opts;
  loose.deadline = solo.modeled_seconds * 10;
  QueryResult fine = scheduler.Wait(scheduler.Submit(spec, loose));
  ASSERT_TRUE(fine.status.ok()) << fine.status.ToString();
  EXPECT_EQ(fine.rows, solo.rows);
  EXPECT_FALSE(fine.degraded);
}

TEST(SchedulerTest, WaitOnUnknownHandleFails) {
  TestEnv env(20'000);
  QueryScheduler scheduler(env.system.get());
  QueryResult r = scheduler.Wait(QueryHandle{9999});
  EXPECT_FALSE(r.status.ok());
}

TEST(SchedulerTest, DestructorDrainsUnwaitedQueries) {
  TestEnv env(20'000);
  const auto spec = env.ssb->Query(1, 1);
  {
    QueryScheduler scheduler(env.system.get(), {.max_concurrent = 2});
    SubmitOptions opts;
    opts.policy = PinnedHybrid();
    for (int i = 0; i < 4; ++i) scheduler.Submit(spec, opts);
    // Never waited: the destructor must drain them without leaking state.
  }
  EXPECT_EQ(env.system->hts().TotalHtBytes(), 0u);
}

}  // namespace
}  // namespace hetex::core
