#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_util.h"

namespace hetex::core {
namespace {

using plan::ExecPolicy;
using test::TestEnv;

/// Deterministic hybrid policy: round-robin routing so the same plan assigns
/// the same blocks to the same instances run after run (latency comparisons
/// must not hinge on the adaptive balancer's thread-timing luck).
ExecPolicy PinnedHybrid() {
  ExecPolicy policy = TestEnv::Tune(ExecPolicy::Hybrid(3));
  policy.load_balance = false;
  return policy;
}

/// The mixed SSB workload the parity suite runs: at least one query per
/// flight, scalar and group-by aggregations, 1-3 joins.
std::vector<std::pair<int, int>> ParityQueries() {
  return {{1, 1}, {1, 2}, {2, 1}, {3, 1}, {4, 1}, {4, 2}};
}

// ---------------------------------------------------------------------------
// Concurrent-vs-serial parity: N SSB queries in flight against one System
// produce exactly the rows their serial runs produce.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ConcurrentVsSerialParityOnSsbMatrix) {
  TestEnv env(30'000);
  QueryExecutor executor(env.system.get());

  // Serial baseline (cost-based optimizer, one query at a time).
  std::vector<plan::QuerySpec> specs;
  std::vector<std::vector<std::vector<int64_t>>> serial_rows;
  for (const auto& [flight, idx] : ParityQueries()) {
    specs.push_back(env.ssb->Query(flight, idx));
    QueryResult serial = executor.Execute(specs.back());
    ASSERT_TRUE(serial.status.ok()) << serial.status.ToString();
    ASSERT_EQ(serial.rows, env.Reference(specs.back())) << specs.back().name;
    serial_rows.push_back(std::move(serial.rows));
  }

  // The same queries, all in flight at once (admission cap 4 exercises the
  // queue too). The optimizer runs per session, with the live backlog signal.
  std::vector<QueryHandle> handles;
  for (const auto& spec : specs) handles.push_back(executor.Submit(spec));
  for (size_t i = 0; i < handles.size(); ++i) {
    QueryResult concurrent = executor.Wait(handles[i]);
    ASSERT_TRUE(concurrent.status.ok())
        << specs[i].name << ": " << concurrent.status.ToString();
    EXPECT_EQ(concurrent.rows, serial_rows[i]) << specs[i].name;
    EXPECT_GT(concurrent.modeled_seconds, 0.0);
    // The session's hash-table namespace is gone once the query finished.
    EXPECT_EQ(env.system->hts().NumTables(concurrent.query_id), 0);
  }
}

// ---------------------------------------------------------------------------
// Cross-session program-cache sharing: concurrent sessions running the same
// plan shape re-finalize nothing once one session compiled the spans.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ProgramCacheHitsAcrossSessions) {
  TestEnv env(20'000);
  const auto spec = env.ssb->Query(2, 1);
  const ExecPolicy policy = TestEnv::Tune(ExecPolicy::CpuOnly(3));

  // Warm the cache with one solo run: every span program is now finalized.
  QueryExecutor executor(env.system.get());
  QueryResult warm = executor.Execute(spec, policy);
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();

  const auto before = env.system->program_cache().counters(sim::DeviceType::kCpu);

  std::vector<QueryHandle> handles;
  for (int i = 0; i < 4; ++i) handles.push_back(executor.Submit(spec, policy));
  for (auto& h : handles) {
    QueryResult r = executor.Wait(h);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.rows, warm.rows);
  }

  const auto after = env.system->program_cache().counters(sim::DeviceType::kCpu);
  // Every instance of every concurrent session hit the warm shared cache.
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

// ---------------------------------------------------------------------------
// HtRegistry regression: two simultaneous queries joining the same dimension
// table used to collide on the (join id, unit) key; query-scoped namespaces
// keep their hash tables disjoint.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, SimultaneousQueriesJoiningSameDimensionTable) {
  TestEnv env(20'000);
  // Q1.1 and Q1.2 both broadcast-build a hash table over `date` with join id
  // 0 on the same units; so do two copies of Q1.1.
  const auto q11 = env.ssb->Query(1, 1);
  const auto q12 = env.ssb->Query(1, 2);
  const auto expected_q11 = env.Reference(q11);
  const auto expected_q12 = env.Reference(q12);

  QueryExecutor executor(env.system.get());
  const ExecPolicy policy = PinnedHybrid();
  for (int round = 0; round < 3; ++round) {
    QueryHandle a = executor.Submit(q11, policy);
    QueryHandle b = executor.Submit(q12, policy);
    QueryHandle c = executor.Submit(q11, policy);
    QueryResult ra = executor.Wait(a);
    QueryResult rb = executor.Wait(b);
    QueryResult rc = executor.Wait(c);
    ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
    ASSERT_TRUE(rb.status.ok()) << rb.status.ToString();
    ASSERT_TRUE(rc.status.ok()) << rc.status.ToString();
    EXPECT_EQ(ra.rows, expected_q11);
    EXPECT_EQ(rb.rows, expected_q12);
    EXPECT_EQ(rc.rows, expected_q11);
    // All three namespaces dropped.
    for (const auto& r : {ra, rb, rc}) {
      EXPECT_EQ(env.system->hts().NumTables(r.query_id), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Contention can only slow, never speed up: a query sharing the server with
// three others never beats its solo latency.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ConcurrentLatencyNeverBeatsSolo) {
  TestEnv env(30'000);
  QueryExecutor executor(env.system.get());
  const ExecPolicy policy = PinnedHybrid();

  std::vector<plan::QuerySpec> specs;
  std::vector<double> solo;
  for (const auto& [flight, idx] : {std::pair{1, 1}, {2, 1}, {3, 1}, {4, 1}}) {
    specs.push_back(env.ssb->Query(flight, idx));
    QueryResult r = executor.Execute(specs.back(), policy);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    solo.push_back(r.modeled_seconds);
  }

  std::vector<QueryHandle> handles;
  for (const auto& spec : specs) handles.push_back(executor.Submit(spec, policy));
  for (size_t i = 0; i < handles.size(); ++i) {
    QueryResult r = executor.Wait(handles[i]);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    // Small tolerance: per-run jitter from the order concurrent producers of
    // ONE query reserve the shared links (present solo too); contention across
    // queries can only push the latency up.
    EXPECT_GE(r.modeled_seconds, solo[i] * 0.98)
        << specs[i].name << " concurrent " << r.modeled_seconds << " vs solo "
        << solo[i];
  }
}

// ---------------------------------------------------------------------------
// Solo latency through the session machinery is the old reset-model latency:
// back-to-back runs see fresh resources every time.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, SoloLatencyStableAcrossRepeatedRuns) {
  TestEnv env(20'000);
  QueryExecutor executor(env.system.get());
  const auto spec = env.ssb->Query(2, 1);
  const ExecPolicy policy = PinnedHybrid();

  QueryResult first = executor.Execute(spec, policy);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  for (int i = 0; i < 3; ++i) {
    QueryResult again = executor.Execute(spec, policy);
    ASSERT_TRUE(again.status.ok());
    // No residual backlog from earlier queries leaks into a fresh session.
    EXPECT_NEAR(again.modeled_seconds, first.modeled_seconds,
                0.02 * first.modeled_seconds);
  }

  // Serial submission through the scheduler (cap 1) matches the solo path.
  QueryScheduler serial(env.system.get(), {.max_concurrent = 1});
  SubmitOptions opts;
  opts.policy = policy;
  QueryHandle h = serial.Submit(spec, opts);
  QueryResult scheduled = serial.Wait(h);
  ASSERT_TRUE(scheduled.status.ok());
  EXPECT_NEAR(scheduled.modeled_seconds, first.modeled_seconds,
              0.02 * first.modeled_seconds);
}

// ---------------------------------------------------------------------------
// Admission control: the concurrency cap and the per-query memory budget both
// gate how many queries run at once.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, AdmissionCapBoundsInFlightQueries) {
  TestEnv env(20'000);
  QueryScheduler scheduler(env.system.get(), {.max_concurrent = 2});
  const auto spec = env.ssb->Query(1, 1);
  const auto expected = env.Reference(spec);

  SubmitOptions opts;
  opts.policy = PinnedHybrid();
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 6; ++i) handles.push_back(scheduler.Submit(spec, opts));
  EXPECT_LE(scheduler.in_flight(), 2);
  for (auto& h : handles) {
    EXPECT_LE(scheduler.in_flight(), 2);
    QueryResult r = scheduler.Wait(h);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.rows, expected);
  }
}

TEST(SchedulerTest, MemoryBudgetSerializesOversizedQueries) {
  TestEnv env(20'000);
  QueryScheduler probe(env.system.get());
  const uint64_t total = probe.total_budget_blocks();
  ASSERT_GT(total, 0u);

  // Every query demands the whole arena: the cap alone would admit 4, the
  // memory budget admits one at a time.
  QueryScheduler scheduler(env.system.get(),
                           {.max_concurrent = 4, .memory_budget_blocks = total});
  const auto spec = env.ssb->Query(1, 1);
  const auto expected = env.Reference(spec);
  SubmitOptions opts;
  opts.policy = PinnedHybrid();
  std::vector<QueryHandle> handles;
  for (int i = 0; i < 3; ++i) handles.push_back(scheduler.Submit(spec, opts));
  EXPECT_LE(scheduler.in_flight(), 1);
  for (auto& h : handles) {
    EXPECT_LE(scheduler.in_flight(), 1);
    QueryResult r = scheduler.Wait(h);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.rows, expected);
  }
}

// ---------------------------------------------------------------------------
// Session plumbing details.
// ---------------------------------------------------------------------------

TEST(SchedulerTest, ArrivalOffsetsDelaySessions) {
  TestEnv env(20'000);
  QueryScheduler scheduler(env.system.get(), {.max_concurrent = 2});
  const auto spec = env.ssb->Query(1, 1);

  SubmitOptions now;
  now.policy = PinnedHybrid();
  SubmitOptions later = now;
  later.arrival_offset = 0.5;  // arrives half a virtual second into the batch

  QueryHandle a = scheduler.Submit(spec, now);
  QueryHandle b = scheduler.Submit(spec, later);
  QueryResult ra = scheduler.Wait(a);
  QueryResult rb = scheduler.Wait(b);
  ASSERT_TRUE(ra.status.ok());
  ASSERT_TRUE(rb.status.ok());
  EXPECT_DOUBLE_EQ(ra.arrival_offset, 0.0);
  EXPECT_DOUBLE_EQ(rb.arrival_offset, 0.5);
  // The late arrival finds idle resources (the early query is long done in
  // virtual time): its own latency is unaffected by the offset.
  EXPECT_NEAR(rb.modeled_seconds, ra.modeled_seconds,
              0.05 * ra.modeled_seconds);
}

TEST(SchedulerTest, WaitOnUnknownHandleFails) {
  TestEnv env(20'000);
  QueryScheduler scheduler(env.system.get());
  QueryResult r = scheduler.Wait(QueryHandle{9999});
  EXPECT_FALSE(r.status.ok());
}

TEST(SchedulerTest, DestructorDrainsUnwaitedQueries) {
  TestEnv env(20'000);
  const auto spec = env.ssb->Query(1, 1);
  {
    QueryScheduler scheduler(env.system.get(), {.max_concurrent = 2});
    SubmitOptions opts;
    opts.policy = PinnedHybrid();
    for (int i = 0; i < 4; ++i) scheduler.Submit(spec, opts);
    // Never waited: the destructor must drain them without leaking state.
  }
  EXPECT_EQ(env.system->hts().TotalHtBytes(), 0u);
}

}  // namespace
}  // namespace hetex::core
