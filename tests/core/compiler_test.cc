#include "core/compiler.h"

#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "storage/table.h"

namespace hetex::core {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  CompilerTest() {
    storage::Table* fact = catalog_.CreateTable("fact");
    fact->AddColumn("fk", storage::ColType::kInt32);
    fact->AddColumn("x", storage::ColType::kInt32);
    fact->AddColumn("y", storage::ColType::kInt64);
    for (int i = 0; i < 100; ++i) {
      fact->column(0).Append(i % 10);
      fact->column(1).Append(i);
      fact->column(2).Append(i * 2);
    }
    storage::Table* dim = catalog_.CreateTable("dim");
    dim->AddColumn("k", storage::ColType::kInt32);
    dim->AddColumn("attr", storage::ColType::kInt32);
    for (int i = 0; i < 10; ++i) {
      dim->column(0).Append(i);
      dim->column(1).Append(i * 100);
    }
  }

  plan::QuerySpec Spec() {
    plan::QuerySpec q;
    q.name = "t";
    q.fact_table = "fact";
    q.fact_filter = plan::Gt(plan::Col("x"), plan::Lit(5));
    q.joins.push_back({"dim", nullptr, "k", {"attr"}, "fk"});
    q.aggs.push_back({plan::Col("y"), jit::AggFunc::kSum, "s"});
    return q;
  }

  storage::Catalog catalog_;
  sim::CostModel cm_ = sim::CostModel::Paper();
};

TEST_F(CompilerTest, ProbeInputColsAreLazyAndDeduplicated) {
  auto spec = Spec();
  QueryCompiler compiler(spec, catalog_, cm_);
  CompiledPipeline p = compiler.CompileProbe(nullptr);
  // Filter column first (loaded before the probe), then key, then agg input.
  ASSERT_EQ(p.input_cols.size(), 3u);
  EXPECT_EQ(p.input_cols[0].name, "x");
  EXPECT_EQ(p.input_cols[1].name, "fk");
  EXPECT_EQ(p.input_cols[2].name, "y");
  EXPECT_EQ(p.input_cols[0].width, 4u);
  EXPECT_EQ(p.input_cols[2].width, 8u);
}

TEST_F(CompilerTest, ProbeBindsJoinSlotsInOrder) {
  auto spec = Spec();
  spec.joins.push_back({"dim", nullptr, "k", {}, "fk"});
  QueryCompiler compiler(spec, catalog_, cm_);
  CompiledPipeline p = compiler.CompileProbe(nullptr);
  EXPECT_EQ(p.ht_join_slots, (std::vector<int>{0, 1}));
}

TEST_F(CompilerTest, ScalarReduceUsesLocalAccs) {
  auto spec = Spec();
  QueryCompiler compiler(spec, catalog_, cm_);
  CompiledPipeline p = compiler.CompileProbe(nullptr);
  EXPECT_EQ(p.program.n_local_accs, 1);
  EXPECT_EQ(p.agg_ht_slot, -1);
}

TEST_F(CompilerTest, GroupByAllocatesAggHtSlot) {
  auto spec = Spec();
  spec.group_by = {plan::Col("attr")};
  spec.expected_groups = 128;
  QueryCompiler compiler(spec, catalog_, cm_);
  CompiledPipeline p = compiler.CompileProbe(nullptr);
  EXPECT_EQ(p.agg_ht_slot, 1);  // after the single join slot
  EXPECT_EQ(p.n_group_vals, 1);
  EXPECT_EQ(p.groups_capacity, 128u);
  EXPECT_EQ(p.group_funcs[0], jit::AggFunc::kSum);
}

TEST_F(CompilerTest, BuildPipelineInsertsIntoSlotZero) {
  auto spec = Spec();
  QueryCompiler compiler(spec, catalog_, cm_);
  CompiledPipeline p = compiler.CompileBuild(0);
  EXPECT_EQ(p.ht_join_slots, (std::vector<int>{0}));
  ASSERT_GE(p.input_cols.size(), 2u);  // key + payload
  bool has_insert = false;
  for (const auto& instr : p.program.code) {
    has_insert |= instr.op == jit::OpCode::kHtInsert;
  }
  EXPECT_TRUE(has_insert);
}

TEST_F(CompilerTest, HtCapacityUsesEstimateWithHeadroom) {
  auto spec = Spec();
  QueryCompiler c1(spec, catalog_, cm_);
  EXPECT_EQ(c1.JoinHtCapacity(0), 10u);  // no estimate: table rows
  spec.joins[0].build_rows_estimate = 100;
  QueryCompiler c2(spec, catalog_, cm_);
  EXPECT_EQ(c2.JoinHtCapacity(0), 100u * 13 / 10 + 64);
}

TEST_F(CompilerTest, GatherMergesWithCountAsSum) {
  auto spec = Spec();
  spec.aggs.push_back({nullptr, jit::AggFunc::kCount, "cnt"});
  QueryCompiler compiler(spec, catalog_, cm_);
  CompiledPipeline p = compiler.CompileGather();
  ASSERT_EQ(p.input_cols.size(), 2u);  // no group key: [s, cnt]
  EXPECT_EQ(p.program.n_local_accs, 2);
  EXPECT_EQ(p.program.local_acc_funcs[0], jit::AggFunc::kSum);
  EXPECT_EQ(p.program.local_acc_funcs[1], jit::AggFunc::kSum);  // COUNT merges as SUM
}

TEST_F(CompilerTest, GatherForGroupByReadsKeyColumn) {
  auto spec = Spec();
  spec.group_by = {plan::Col("attr")};
  QueryCompiler compiler(spec, catalog_, cm_);
  CompiledPipeline p = compiler.CompileGather();
  ASSERT_EQ(p.input_cols.size(), 2u);
  EXPECT_EQ(p.input_cols[0].name, "__group_key");
  EXPECT_EQ(p.agg_ht_slot, 0);
}

TEST_F(CompilerTest, FilterStageEmitsSurvivingFactColumns) {
  auto spec = Spec();
  QueryCompiler compiler(spec, catalog_, cm_);
  CompiledPipeline p = compiler.CompileFilterStage(4);
  // Needs fk (probe key) and y (agg input); x only feeds the filter.
  ASSERT_EQ(p.output_cols.size(), 2u);
  EXPECT_EQ(p.output_cols[0].name, "fk");
  EXPECT_EQ(p.output_cols[1].name, "y");
  bool tagged_emit = false;
  for (const auto& instr : p.program.code) {
    if (instr.op == jit::OpCode::kEmit) tagged_emit |= instr.d == 1;
  }
  EXPECT_TRUE(tagged_emit);
}

TEST_F(CompilerTest, StageBReadsStageASchema) {
  auto spec = Spec();
  QueryCompiler compiler(spec, catalog_, cm_);
  CompiledPipeline a = compiler.CompileFilterStage(2);
  CompiledPipeline b = compiler.CompileProbe(&a.output_cols);
  ASSERT_EQ(b.input_cols.size(), a.output_cols.size());
  for (size_t i = 0; i < b.input_cols.size(); ++i) {
    EXPECT_EQ(b.input_cols[i].name, a.output_cols[i].name);
  }
}

TEST_F(CompilerTest, MergeFuncMapping) {
  EXPECT_EQ(MergeFunc(jit::AggFunc::kSum), jit::AggFunc::kSum);
  EXPECT_EQ(MergeFunc(jit::AggFunc::kCount), jit::AggFunc::kSum);
  EXPECT_EQ(MergeFunc(jit::AggFunc::kMin), jit::AggFunc::kMin);
  EXPECT_EQ(MergeFunc(jit::AggFunc::kMax), jit::AggFunc::kMax);
}

}  // namespace
}  // namespace hetex::core
