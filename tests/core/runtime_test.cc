#include "core/runtime.h"

#include <gtest/gtest.h>

#include <map>

#include "core/system.h"

namespace hetex::core {
namespace {

System::Options SmallSystem() {
  System::Options o;
  o.topology.cores_per_socket = 2;
  o.topology.gpu_sim_threads = 2;
  o.blocks.block_bytes = 4096;
  o.blocks.host_arena_blocks = 64;
  o.blocks.gpu_arena_blocks = 32;
  return o;
}

/// Processor that records the messages an instance consumed.
class RecordingProcessor : public BlockProcessor {
 public:
  struct Log {
    std::mutex mu;
    std::map<int, std::vector<DataMsg>> by_instance;  // copies (handles only)
  };

  explicit RecordingProcessor(Log* log) : log_(log) {}
  void Init(WorkerInstance&) override {}
  void ProcessMsg(WorkerInstance& inst, DataMsg& msg) override {
    inst.AdvanceTo(sim::MaxT(inst.clock(), msg.ReadyAt()) + 1e-6);
    std::lock_guard<std::mutex> lock(log_->mu);
    DataMsg copy;
    copy.rows = msg.rows;
    copy.tag = msg.tag;
    copy.ready_at = msg.ReadyAt();
    // Note the data nodes (blocks themselves are released by the runtime).
    for (auto& h : msg.cols) {
      memory::BlockHandle stub;
      stub.rows = h.rows;
      stub.bytes = h.bytes;
      stub.ready_at = h.node();  // smuggle the node id for assertions
      copy.cols.push_back(stub);
    }
    log_->by_instance[inst.id()].push_back(std::move(copy));
  }
  void Finish(WorkerInstance&) override {}

 private:
  Log* log_;
};

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : system_(SmallSystem()) {}

  /// Sends `n` single-column host blocks through an edge into `group`.
  void Drive(Edge& edge, WorkerGroup& group, int n) {
    group.Start();
    edge.AddProducer();
    const sim::MemNodeId host = system_.topology().socket(0).mem;
    for (int i = 0; i < n; ++i) {
      memory::Block* block = system_.blocks().Acquire(host, host);
      DataMsg msg;
      msg.rows = 10;
      msg.tag = static_cast<uint64_t>(i);
      memory::BlockHandle h;
      h.block = block;
      h.rows = 10;
      h.bytes = 40;
      msg.cols.push_back(h);
      edge.Push(std::move(msg), host);
    }
    edge.CloseProducer();
    group.Join();
  }

  System system_;
  RecordingProcessor::Log log_;

  ProcessorFactory Recorder() {
    return [this](WorkerInstance&) {
      return std::make_unique<RecordingProcessor>(&log_);
    };
  }
};

TEST_F(RuntimeTest, RoundRobinDistributesEvenly) {
  WorkerGroup group(&system_, {sim::DeviceId::Cpu(0), sim::DeviceId::Cpu(1)},
                    Recorder(), nullptr, 8, 0.0);
  Edge::Options opts;
  opts.policy = Edge::Policy::kRoundRobin;
  Edge edge(&system_, opts, group.instance_ptrs());
  Drive(edge, group, 10);
  EXPECT_EQ(log_.by_instance[0].size(), 5u);
  EXPECT_EQ(log_.by_instance[1].size(), 5u);
}

TEST_F(RuntimeTest, HashPolicyRoutesByTag) {
  WorkerGroup group(&system_, {sim::DeviceId::Cpu(0), sim::DeviceId::Cpu(1)},
                    Recorder(), nullptr, 8, 0.0);
  Edge::Options opts;
  opts.policy = Edge::Policy::kHash;
  Edge edge(&system_, opts, group.instance_ptrs());
  Drive(edge, group, 9);
  for (const auto& msg : log_.by_instance[0]) EXPECT_EQ(msg.tag % 2, 0u);
  for (const auto& msg : log_.by_instance[1]) EXPECT_EQ(msg.tag % 2, 1u);
}

TEST_F(RuntimeTest, BroadcastReachesEveryConsumer) {
  WorkerGroup group(&system_, {sim::DeviceId::Cpu(0), sim::DeviceId::Cpu(1)},
                    Recorder(), nullptr, 8, 0.0);
  Edge::Options opts;
  opts.policy = Edge::Policy::kBroadcast;
  Edge edge(&system_, opts, group.instance_ptrs());
  Drive(edge, group, 4);
  EXPECT_EQ(log_.by_instance[0].size(), 4u);
  EXPECT_EQ(log_.by_instance[1].size(), 4u);
  // Broadcast tags are target ids (the mem-move contract, §3.2).
  EXPECT_EQ(log_.by_instance[0][0].tag, 0u);
  EXPECT_EQ(log_.by_instance[1][0].tag, 1u);
  // All blocks returned to the arena (refcounted multicast).
  system_.blocks().FlushReleases();
  EXPECT_EQ(system_.blocks().manager(system_.topology().socket(0).mem).in_use(),
            0u);
}

TEST_F(RuntimeTest, MemMoveCopiesToGpuAndAttachesTicket) {
  WorkerGroup group(&system_, {sim::DeviceId::Gpu(0)}, Recorder(), nullptr, 8,
                    0.0);
  Edge::Options opts;
  opts.policy = Edge::Policy::kRoundRobin;
  opts.mem_move = true;
  Edge edge(&system_, opts, group.instance_ptrs());
  Drive(edge, group, 3);
  ASSERT_EQ(log_.by_instance[0].size(), 3u);
  const sim::MemNodeId gpu_node = system_.topology().gpu(0).mem;
  for (const auto& msg : log_.by_instance[0]) {
    // stub.ready_at smuggles the node id.
    EXPECT_EQ(static_cast<sim::MemNodeId>(msg.cols[0].ready_at), gpu_node);
    EXPECT_GT(msg.ready_at, 0.0);  // DMA took virtual time
  }
  system_.blocks().FlushReleases();
  EXPECT_EQ(system_.blocks().manager(gpu_node).in_use(), 0u);
}

TEST_F(RuntimeTest, HostConsumersGetZeroCopyHandles) {
  WorkerGroup group(&system_, {sim::DeviceId::Cpu(1)}, Recorder(), nullptr, 8,
                    0.0);
  Edge::Options opts;
  opts.policy = Edge::Policy::kRoundRobin;
  Edge edge(&system_, opts, group.instance_ptrs());
  Drive(edge, group, 2);
  // Socket-0 blocks consumed by socket-1 worker without a move (coherent host).
  const sim::MemNodeId src = system_.topology().socket(0).mem;
  for (const auto& msg : log_.by_instance[0]) {
    EXPECT_EQ(static_cast<sim::MemNodeId>(msg.cols[0].ready_at), src);
  }
}

TEST_F(RuntimeTest, LoadBalanceKeepsGpuResidentBlocksLocal) {
  WorkerGroup group(&system_, {sim::DeviceId::Gpu(0), sim::DeviceId::Gpu(1)},
                    Recorder(), nullptr, 8, 0.0);
  Edge::Options opts;
  opts.policy = Edge::Policy::kLoadBalance;
  Edge edge(&system_, opts, group.instance_ptrs());

  group.Start();
  edge.AddProducer();
  // Blocks already resident on gpu1 must route to gpu1, never gpu0.
  const sim::MemNodeId gpu1 = system_.topology().gpu(1).mem;
  for (int i = 0; i < 6; ++i) {
    memory::Block* block = system_.blocks().Acquire(gpu1, gpu1);
    DataMsg msg;
    msg.rows = 1;
    memory::BlockHandle h;
    h.block = block;
    h.rows = 1;
    h.bytes = 8;
    msg.cols.push_back(h);
    edge.Push(std::move(msg), system_.topology().socket(0).mem);
  }
  edge.CloseProducer();
  group.Join();
  EXPECT_EQ(log_.by_instance[0].size(), 0u);
  EXPECT_EQ(log_.by_instance[1].size(), 6u);
  system_.blocks().FlushReleases();
}

TEST_F(RuntimeTest, MemMoveGpuToGpuStagesThroughHost) {
  // No peer access on this server: gpu0-resident blocks consumed by gpu1 hop
  // through the source GPU's host socket (two DMA legs, §3.2).
  WorkerGroup group(&system_, {sim::DeviceId::Gpu(1)}, Recorder(), nullptr, 8,
                    0.0);
  Edge::Options opts;
  opts.policy = Edge::Policy::kRoundRobin;
  opts.mem_move = true;
  Edge edge(&system_, opts, group.instance_ptrs());

  group.Start();
  edge.AddProducer();
  const sim::MemNodeId gpu0 = system_.topology().gpu(0).mem;
  memory::Block* block = system_.blocks().Acquire(gpu0, gpu0);
  DataMsg msg;
  msg.rows = 4;
  memory::BlockHandle h;
  h.block = block;
  h.rows = 4;
  h.bytes = 16;
  msg.cols.push_back(h);
  edge.Push(std::move(msg), system_.topology().socket(0).mem);
  edge.CloseProducer();
  group.Join();

  ASSERT_EQ(log_.by_instance[0].size(), 1u);
  EXPECT_EQ(static_cast<sim::MemNodeId>(log_.by_instance[0][0].cols[0].ready_at),
            system_.topology().gpu(1).mem);
  // Two legs in virtual time: strictly more than one link's transfer.
  const auto& cm = system_.topology().cost_model();
  EXPECT_GT(log_.by_instance[0][0].ready_at, 2 * cm.dma_latency);
  system_.blocks().FlushReleases();
  EXPECT_EQ(system_.blocks().manager(gpu0).in_use(), 0u);
  EXPECT_EQ(system_.blocks().manager(system_.topology().gpu(1).mem).in_use(), 0u);
}

TEST_F(RuntimeTest, ReleaseMsgBlocksSkipsForeignBlocks) {
  memory::Block foreign;  // table-resident: owner == nullptr
  foreign.node = system_.topology().socket(0).mem;
  DataMsg msg;
  memory::BlockHandle h;
  h.block = &foreign;
  msg.cols.push_back(h);
  ReleaseMsgBlocks(&system_, msg, system_.topology().socket(0).mem);  // no crash
  EXPECT_TRUE(msg.cols.empty());
}

TEST_F(RuntimeTest, SourceDriverSlicesChunksIntoBlocks) {
  storage::Table* t = system_.catalog().CreateTable("src");
  storage::Column* c = t->AddColumn("c", storage::ColType::kInt32);
  for (int i = 0; i < 1000; ++i) c->Append(i);
  ASSERT_TRUE(t->Place(system_.HostNodes(), &system_.memory()).ok());

  WorkerGroup group(&system_, {sim::DeviceId::Cpu(0)}, Recorder(), nullptr, 8,
                    0.0);
  Edge::Options opts;
  opts.policy = Edge::Policy::kRoundRobin;
  Edge edge(&system_, opts, group.instance_ptrs());
  group.Start();
  SourceDriver source(&system_, t, {0}, /*block_rows=*/128, &edge, 0.0);
  source.Start();
  source.Join();
  group.Join();

  // 2 chunks of 500 rows -> per chunk: 3x128 + 1x116.
  uint64_t total = 0;
  for (const auto& msg : log_.by_instance[0]) total += msg.rows;
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(log_.by_instance[0].size(), 8u);
}

TEST_F(RuntimeTest, InstanceClockMonotone) {
  WorkerInstance inst(0, sim::DeviceId::Cpu(0), &system_, 4);
  inst.set_clock(1.0);
  inst.AdvanceTo(0.5);  // no-op backwards
  EXPECT_DOUBLE_EQ(inst.clock(), 1.0);
  inst.AdvanceTo(2.0);
  EXPECT_DOUBLE_EQ(inst.clock(), 2.0);
}

TEST_F(RuntimeTest, BacklogUsesPriorUntilEmaWarm) {
  WorkerInstance inst(0, sim::DeviceId::Cpu(0), &system_, 4);
  inst.set_clock(1.0);
  inst.NoteEnqueued();
  inst.NoteEnqueued();
  EXPECT_DOUBLE_EQ(inst.EstimatedBacklog(0.25), 1.5);
  inst.NoteBlockCost(0.1);  // observed cost replaces the prior
  EXPECT_DOUBLE_EQ(inst.EstimatedBacklog(0.25), 1.2);
}

TEST_F(RuntimeTest, HtRegistryKeyedByQueryJoinAndUnit) {
  HtRegistry hts;
  auto& mm = system_.memory().manager(0);
  jit::JoinHashTable* a = hts.Create(7, 0, sim::DeviceId::Cpu(0), &mm, 16, 0);
  jit::JoinHashTable* b = hts.Create(7, 0, sim::DeviceId::Gpu(0), &mm, 16, 0);
  jit::JoinHashTable* c = hts.Create(7, 1, sim::DeviceId::Cpu(0), &mm, 16, 0);
  // Same (join, unit) under a different query id: a disjoint namespace, not a
  // duplicate-table crash — the concurrent-queries collision case.
  jit::JoinHashTable* d = hts.Create(8, 0, sim::DeviceId::Cpu(0), &mm, 16, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(hts.Get(7, 0, sim::DeviceId::Cpu(0)), a);
  EXPECT_EQ(hts.Get(7, 1, sim::DeviceId::Cpu(0)), c);
  EXPECT_EQ(hts.Get(8, 0, sim::DeviceId::Cpu(0)), d);
  hts.NoteBuildDone(7, 0.5);
  hts.NoteBuildDone(7, 0.3);
  hts.NoteBuildDone(8, 0.9);
  EXPECT_DOUBLE_EQ(hts.build_done(7), 0.5);   // per-query watermark
  EXPECT_DOUBLE_EQ(hts.build_done(8), 0.9);
  EXPECT_EQ(hts.NumTables(7), 3);
  hts.DropQuery(7);
  EXPECT_EQ(hts.NumTables(7), 0);
  EXPECT_DOUBLE_EQ(hts.build_done(7), 0.0);
  EXPECT_EQ(hts.Get(8, 0, sim::DeviceId::Cpu(0)), d);  // other queries intact
}

}  // namespace
}  // namespace hetex::core
