// Randomized concurrent-schedule stress test: a seeded RNG draws query mixes,
// arrival offsets, pinned vs cost-optimized policies, admission caps and
// memory-budget caps, then runs the drawn schedule through the concurrent
// scheduler and checks the invariants the server model promises:
//
//   1. Row parity: every concurrent query produces exactly the rows its
//      serial (solo) run produces.
//   2. Contention never speeds up: a pinned-policy query sharing the server
//      never beats its solo latency (optimized queries may legally pick a
//      different — cheaper-under-load — plan, so they are parity-checked
//      only).
//   3. No queue-wait or epoch regression: admission waits are non-negative,
//      no session's epoch regresses behind its own arrival or behind the
//      batch's busy-period base, and every session of one batch reconstructs
//      the same workload base (epoch - queue_wait - arrival_offset). (Epochs
//      are NOT monotone across admissions: a slot freed by an early-finishing
//      query legally anchors later in FIFO order but earlier in virtual time.)
//
// CI runs the three pinned seeds below (also under ThreadSanitizer); the
// FUZZ_ITERS environment knob scales the rounds per seed for longer local
// soaks without workflow edits.
//
// The CI chaos job additionally runs these seeds with HETEX_FAULTS=1: every
// TestEnv System then inherits the environment's fault schedule. Under
// injection a query may legally end in a named fault instead of OK, so the
// OK-status assertions relax to "OK or a named fault" — parity of OK results,
// the no-regression invariants and namespace cleanup still hold unchanged.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/scheduler.h"
#include "test_util.h"

namespace hetex::core {
namespace {

using plan::ExecPolicy;
using test::FuzzIters;
using test::TestEnv;

/// Deterministic pinned policy (round-robin routing): latency comparisons must
/// not hinge on the adaptive balancer's thread-timing luck.
ExecPolicy PinnedPolicy(Rng& rng) {
  ExecPolicy policy;
  switch (rng.Uniform(3)) {
    case 0: policy = ExecPolicy::CpuOnly(2 + static_cast<int>(rng.Uniform(2))); break;
    case 1: policy = ExecPolicy::GpuOnly(); break;
    default: policy = ExecPolicy::Hybrid(3); break;
  }
  policy = TestEnv::Tune(policy);
  policy.load_balance = false;
  return policy;
}

struct DrawnQuery {
  plan::QuerySpec spec;
  SubmitOptions opts;
  bool pinned = false;
  double solo_modeled = -1;  ///< pinned queries only; < 0 = no baseline
};

/// Under HETEX_FAULTS=1 a query may end in one of the named fault terminals
/// instead of OK; anything else is a real failure in either mode.
bool OkOrNamedFault(const Status& s) {
  if (s.ok()) return true;
  if (!test::FaultsEnabled()) return false;
  switch (s.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeviceLost:
      return true;
    default:
      return false;
  }
}

class SchedulerStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerStressTest, RandomScheduleKeepsInvariants) {
  Rng rng(GetParam());
  // Reuse pinned off: the contention-never-speeds-up invariant below is only
  // valid when repeat queries actually execute (a result-cache hit or a
  // shared-build attach is legitimately faster than the solo run).
  // ReuseMixKeepsParity covers the reuse-enabled side of this schedule.
  TestEnv env(15'000, 2, 2, core::ReuseOptions{});
  QueryExecutor executor(env.system.get());

  // Solo reference rows (and, for pinned policies, solo latencies) are
  // measured once per distinct (query, policy) pair on an idle server.
  const std::vector<std::pair<int, int>> kPool = {
      {1, 1}, {1, 2}, {2, 1}, {2, 2}, {3, 1}, {3, 2}, {4, 1}, {4, 2}};
  std::map<std::string, std::vector<std::vector<int64_t>>> reference;

  const int rounds = FuzzIters(2);
  for (int round = 0; round < rounds; ++round) {
    // --- Draw one schedule.
    const int n_queries = 3 + static_cast<int>(rng.Uniform(4));  // 3..6
    std::vector<DrawnQuery> batch;
    std::vector<double> offsets;
    for (int q = 0; q < n_queries; ++q) {
      offsets.push_back(rng.NextDouble() * 0.02);
    }
    // Sorted offsets make FIFO admission order == arrival order, so epoch
    // monotonicity is a hard invariant rather than a probabilistic one.
    std::sort(offsets.begin(), offsets.end());
    for (int q = 0; q < n_queries; ++q) {
      DrawnQuery d;
      const auto [flight, idx] = kPool[rng.Uniform(kPool.size())];
      d.spec = env.ssb->Query(flight, idx);
      d.opts.arrival_offset = offsets[q];
      d.pinned = rng.NextBool(0.6);
      if (d.pinned) d.opts.policy = PinnedPolicy(rng);
      if (rng.NextBool(0.3)) {
        // Budget cap: some queries demand a big slice of the arenas, forcing
        // the memory admission path (never bigger than the arenas, which
        // would serialize everything and time nothing interesting).
        d.opts.memory_budget_blocks = 64 + rng.Uniform(128);
      }
      batch.push_back(std::move(d));
    }

    // --- Serial baselines. Under fault injection a baseline run may itself
    // fault; the scalar reference then stands in for its rows and the latency
    // comparison for that query is skipped.
    for (auto& d : batch) {
      if (reference.find(d.spec.name) == reference.end()) {
        reference[d.spec.name] = env.Reference(d.spec);
      }
      QueryResult solo = d.pinned ? executor.Execute(d.spec, *d.opts.policy)
                                  : executor.Execute(d.spec);
      ASSERT_TRUE(OkOrNamedFault(solo.status))
          << d.spec.name << ": " << solo.status.ToString();
      if (!solo.status.ok()) continue;
      d.solo_modeled = solo.modeled_seconds;
      // Solo runs of the same query under any policy agree with the reference.
      ASSERT_EQ(solo.rows, reference[d.spec.name]) << d.spec.name;
    }

    // --- The concurrent schedule.
    QueryScheduler::Options sched_opts;
    sched_opts.max_concurrent = 2 + static_cast<int>(rng.Uniform(3));  // 2..4
    QueryScheduler scheduler(env.system.get(), sched_opts);
    std::vector<QueryHandle> handles;
    for (const auto& d : batch) handles.push_back(scheduler.Submit(d.spec, d.opts));

    std::vector<QueryResult> results;
    for (auto& h : handles) results.push_back(scheduler.Wait(h));

    double workload_base = -1;
    for (size_t i = 0; i < results.size(); ++i) {
      const QueryResult& r = results[i];
      const DrawnQuery& d = batch[i];
      ASSERT_TRUE(OkOrNamedFault(r.status))
          << "seed " << GetParam() << " round " << round << " " << d.spec.name
          << ": " << r.status.ToString();

      // 1. Row parity vs the reference — whenever the query completed, even
      // degraded (recovery must be bit-transparent).
      if (r.status.ok()) {
        EXPECT_EQ(r.rows, reference[d.spec.name])
            << "seed " << GetParam() << " round " << round << " " << d.spec.name;
      }

      // 2. Contention never speeds up (pinned plans only — the optimizer may
      // legitimately pick a different plan under load; retries only add
      // backoff on top). 2% tolerance for the per-run jitter of one query's
      // own concurrent producers.
      if (d.pinned && r.status.ok() && d.solo_modeled >= 0) {
        EXPECT_GE(r.modeled_seconds, d.solo_modeled * 0.98)
            << "seed " << GetParam() << " round " << round << " " << d.spec.name
            << " concurrent " << r.modeled_seconds << " vs solo "
            << d.solo_modeled;
      }

      // 3. No queue-wait or epoch regression.
      EXPECT_GE(r.queue_wait, 0.0) << d.spec.name;
      const double base = r.session_epoch - r.queue_wait - r.arrival_offset;
      if (workload_base < 0) {
        workload_base = base;
      } else {
        // Every session of one batch anchors on the same workload base.
        EXPECT_NEAR(base, workload_base, 1e-9) << d.spec.name;
      }
      // The session never starts before it arrived, nor behind the batch base.
      EXPECT_GE(r.session_epoch + 1e-9, workload_base + r.arrival_offset)
          << "seed " << GetParam() << " round " << round << " query " << i;
      EXPECT_GE(r.session_epoch + 1e-9, workload_base)
          << "seed " << GetParam() << " round " << round << " query " << i;

      // Session hash-table namespaces are dropped on exit.
      EXPECT_EQ(env.system->hts().NumTables(r.query_id), 0);
    }
  }
}

TEST_P(SchedulerStressTest, ReuseMixKeepsParity) {
  // A randomized repeated-query mix run twice — reuse fully enabled (shared
  // builds + result cache) vs fully disabled — must produce identical rows
  // for every query. Latency invariants are not compared: cache hits are
  // faster by design, that's the feature.
  Rng rng(GetParam() ^ 0x5EED5EEDull);
  core::ReuseOptions off;  // pinned off, regardless of environment knobs
  core::ReuseOptions on;
  on.shared_builds = true;
  on.result_cache = true;
  TestEnv env_off(10'000, 2, 2, off);
  TestEnv env_on(10'000, 2, 2, on);

  const std::vector<std::pair<int, int>> kPool = {
      {2, 1}, {2, 2}, {3, 1}, {3, 2}, {4, 1}, {4, 2}};
  std::map<std::string, std::vector<std::vector<int64_t>>> reference;

  const int rounds = FuzzIters(2);
  for (int round = 0; round < rounds; ++round) {
    // Repetition-heavy draw: few distinct queries, many submissions, so the
    // result cache and the shared-build registry both get exercised.
    const int n_queries = 6 + static_cast<int>(rng.Uniform(5));  // 6..10
    std::vector<int> draws;
    std::vector<double> offsets;
    for (int q = 0; q < n_queries; ++q) {
      draws.push_back(static_cast<int>(rng.Uniform(3)));  // 3 distinct specs
      offsets.push_back(rng.NextDouble() * 0.01);
    }
    std::sort(offsets.begin(), offsets.end());

    QueryScheduler::Options sched_opts;
    sched_opts.max_concurrent = 2 + static_cast<int>(rng.Uniform(3));
    QueryScheduler sched_off(env_off.system.get(), sched_opts);
    QueryScheduler sched_on(env_on.system.get(), sched_opts);

    std::vector<QueryHandle> h_off, h_on;
    std::vector<std::string> names;
    for (int q = 0; q < n_queries; ++q) {
      const auto [flight, idx] = kPool[draws[q]];
      SubmitOptions opts;
      opts.arrival_offset = offsets[q];
      h_off.push_back(sched_off.Submit(env_off.ssb->Query(flight, idx), opts));
      h_on.push_back(sched_on.Submit(env_on.ssb->Query(flight, idx), opts));
      const plan::QuerySpec spec = env_off.ssb->Query(flight, idx);
      names.push_back(spec.name);
      if (reference.find(spec.name) == reference.end()) {
        reference[spec.name] = env_off.Reference(spec);
      }
    }
    for (int q = 0; q < n_queries; ++q) {
      QueryResult r_off = sched_off.Wait(h_off[q]);
      QueryResult r_on = sched_on.Wait(h_on[q]);
      ASSERT_TRUE(OkOrNamedFault(r_off.status))
          << names[q] << ": " << r_off.status.ToString();
      ASSERT_TRUE(OkOrNamedFault(r_on.status))
          << names[q] << ": " << r_on.status.ToString();
      if (r_off.status.ok()) {
        EXPECT_EQ(r_off.rows, reference[names[q]]) << names[q];
        // Reuse-off results never carry reuse accounting.
        EXPECT_FALSE(r_off.cache_hit);
        EXPECT_EQ(r_off.shared_builds, 0);
        EXPECT_EQ(r_off.shared_attaches, 0);
      }
      if (r_on.status.ok()) {
        EXPECT_EQ(r_on.rows, reference[names[q]])
            << names[q] << " (reuse-enabled rows diverged)";
      }
    }
  }
  EXPECT_EQ(env_off.system->hts().NumSharedEntries(), 0);
}

INSTANTIATE_TEST_SUITE_P(PinnedSeeds, SchedulerStressTest,
                         ::testing::Values(0xC0FFEEull, 42ull, 20260729ull),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hetex::core
