#include "core/graph_builder.h"

#include <gtest/gtest.h>

#include "plan/het_plan.h"
#include "test_util.h"

namespace hetex::core {
namespace {

using plan::ExecPolicy;
using plan::HetOpNode;
using plan::HetPlan;
using test::TestEnv;

/// Counts plan nodes of one kind.
int CountKind(const HetPlan& plan, HetOpNode::Kind kind) {
  int n = 0;
  for (const auto& node : plan.nodes) n += node.kind == kind;
  return n;
}

class GraphBuilderTest : public ::testing::Test {
 protected:
  GraphBuilderTest() : env_(20'000) {}

  HetPlan Plan(const plan::QuerySpec& spec, const ExecPolicy& policy) {
    return plan::BuildHetPlan(spec, policy, env_.system->topology());
  }

  LoweredSpec Lower(const HetPlan& plan) {
    GraphBuilder builder(env_.system.get(), &plan);
    Status st = builder.Analyze();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return builder.spec();
  }

  TestEnv env_;
};

// --- Lowered node/edge counts agree with the HetPlan, per ExecPolicy factory.

TEST_F(GraphBuilderTest, CpuOnlyLoweringMatchesPlan) {
  const auto spec = env_.ssb->Query(3, 1);
  const HetPlan plan = Plan(spec, TestEnv::Tune(ExecPolicy::CpuOnly(4)));
  const LoweredSpec lowered = Lower(plan);

  // One build stage per join, each instanced once per kJoinBuild replica.
  ASSERT_EQ(lowered.build_stages.size(), spec.joins.size());
  int plan_build_replicas = CountKind(plan, HetOpNode::Kind::kJoinBuild);
  int lowered_build_instances = 0;
  for (const auto& s : lowered.build_stages) {
    EXPECT_EQ(s.span.role, PipelineSpan::Role::kBuild);
    EXPECT_EQ(s.in.options.policy, Edge::Policy::kBroadcast);
    lowered_build_instances += static_cast<int>(s.instances.size());
  }
  EXPECT_EQ(lowered_build_instances, plan_build_replicas);

  // Fused plan: gather + probe stages; probe DOP = the fact router's fanout.
  ASSERT_EQ(lowered.fact_stages.size(), 2u);
  EXPECT_EQ(lowered.fact_stages[0].span.role, PipelineSpan::Role::kGather);
  EXPECT_EQ(lowered.fact_stages[0].instances.size(), 1u);
  EXPECT_EQ(lowered.fact_stages[1].span.role, PipelineSpan::Role::kProbe);
  EXPECT_EQ(lowered.fact_stages[1].instances.size(), 4u);
  for (const auto& dev : lowered.fact_stages[1].instances) {
    EXPECT_TRUE(dev.is_cpu());
  }
  EXPECT_EQ(lowered.fact_stages[1].in.options.policy, Edge::Policy::kLoadBalance);
  EXPECT_EQ(lowered.TotalEdges(), static_cast<int>(spec.joins.size()) + 2);

  const auto result = env_.Run(spec, TestEnv::Tune(ExecPolicy::CpuOnly(4)));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.rows, env_.Reference(spec));
}

TEST_F(GraphBuilderTest, GpuOnlyLoweringMatchesPlan) {
  const auto spec = env_.ssb->Query(1, 1);
  const HetPlan plan = Plan(spec, TestEnv::Tune(ExecPolicy::GpuOnly()));
  const LoweredSpec lowered = Lower(plan);

  ASSERT_EQ(lowered.fact_stages.size(), 2u);
  const StageSpec& probe = lowered.fact_stages[1];
  EXPECT_EQ(probe.instances.size(), 2u);  // both GPUs of the test topology
  for (const auto& dev : probe.instances) EXPECT_TRUE(dev.is_gpu());
  // The device->host partials crossing stamps its latency on the union edge.
  EXPECT_GT(lowered.fact_stages[0].in.options.crossing_latency, 0.0);
  // Routers present: bring-up latency lifted from the plan stamps.
  EXPECT_GT(lowered.init_latency, 0.0);

  const auto result = env_.Run(spec, TestEnv::Tune(ExecPolicy::GpuOnly()));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.rows, env_.Reference(spec));
}

TEST_F(GraphBuilderTest, HybridLoweringMergesBranchesOfOneExchange) {
  const auto spec = env_.ssb->Query(2, 1);
  const HetPlan plan = Plan(spec, TestEnv::Tune(ExecPolicy::Hybrid(3)));
  const LoweredSpec lowered = Lower(plan);

  // The CPU and GPU branches of the DAG share the fact router: one worker
  // group, CPU instances first (the plan's branch order).
  ASSERT_EQ(lowered.fact_stages.size(), 2u);
  const StageSpec& probe = lowered.fact_stages[1];
  ASSERT_EQ(probe.instances.size(), 5u);  // 3 CPU workers + 2 GPUs
  EXPECT_TRUE(probe.instances[0].is_cpu());
  EXPECT_TRUE(probe.instances[4].is_gpu());
  ASSERT_EQ(probe.branch_nodes.size(), 2u);

  // Build stages replicate per unit: 2 sockets + 2 GPUs.
  for (const auto& s : lowered.build_stages) {
    EXPECT_EQ(s.instances.size(), 4u);
  }

  const auto result = env_.Run(spec, TestEnv::Tune(ExecPolicy::Hybrid(3)));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.rows, env_.Reference(spec));
}

TEST_F(GraphBuilderTest, SplitPlanLowersSharedHashExchange) {
  const auto spec = env_.ssb->Query(2, 2);
  ExecPolicy policy = TestEnv::Tune(ExecPolicy::Hybrid(2));
  policy.split_probe_stage = true;
  const HetPlan plan = Plan(spec, policy);
  const LoweredSpec lowered = Lower(plan);

  ASSERT_EQ(lowered.fact_stages.size(), 3u);
  EXPECT_EQ(lowered.fact_stages[0].span.role, PipelineSpan::Role::kGather);
  EXPECT_EQ(lowered.fact_stages[1].span.role, PipelineSpan::Role::kProbe);
  EXPECT_EQ(lowered.fact_stages[2].span.role, PipelineSpan::Role::kFilterStage);
  // Stage A and stage B are connected by the single hash exchange of the plan.
  EXPECT_EQ(lowered.fact_stages[1].in.options.policy, Edge::Policy::kHash);
  EXPECT_EQ(lowered.fact_stages[1].instances.size(),
            lowered.fact_stages[2].instances.size());

  const auto result = env_.Run(spec, policy);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.rows, env_.Reference(spec));
}

TEST_F(GraphBuilderTest, BareCpuLoweringHasNoRouters) {
  const auto spec = env_.ssb->Query(1, 2);
  const ExecPolicy policy = TestEnv::Tune(ExecPolicy::Bare(sim::DeviceType::kCpu));
  const HetPlan plan = Plan(spec, policy);
  const LoweredSpec lowered = Lower(plan);

  EXPECT_EQ(lowered.init_latency, 0.0);  // no routers to bring up
  for (const auto& s : lowered.build_stages) {
    EXPECT_EQ(s.in.router, -1);
    EXPECT_EQ(s.in.options.control_cost, 0.0);
    EXPECT_EQ(s.instances.size(), 1u);
  }
  ASSERT_EQ(lowered.fact_stages.size(), 2u);
  EXPECT_EQ(lowered.fact_stages[1].instances.size(), 1u);

  const auto result = env_.Run(spec, policy);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.rows, env_.Reference(spec));
}

TEST_F(GraphBuilderTest, BareGpuLoweringUsesUva) {
  const auto spec = env_.ssb->Query(1, 2);
  const ExecPolicy policy = TestEnv::Tune(ExecPolicy::Bare(sim::DeviceType::kGpu));
  const HetPlan plan = Plan(spec, policy);
  // Bare plans now carry the UVA marker, so they validate like any other plan.
  EXPECT_TRUE(plan::ValidateHetPlan(plan).ok());
  const LoweredSpec lowered = Lower(plan);

  // UVA addressing: no mem-move on the segmenter-fed edges.
  for (const auto& s : lowered.build_stages) {
    EXPECT_TRUE(s.in.uva);
    EXPECT_FALSE(s.in.options.mem_move);
  }
  const StageSpec& probe = lowered.fact_stages.back();
  EXPECT_TRUE(probe.in.uva);
  EXPECT_FALSE(probe.in.options.mem_move);
  // Partials still cross device->host with a real move.
  EXPECT_TRUE(lowered.fact_stages[0].in.options.mem_move);
  EXPECT_GT(lowered.fact_stages[0].in.options.crossing_latency, 0.0);

  const auto result = env_.Run(spec, policy);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.rows, env_.Reference(spec));
}

// --- The acceptance proof: mutating the *plan* changes execution behavior,
// with zero executor changes.

TEST_F(GraphBuilderTest, MutatingRouterPolicyNodeChangesExecution) {
  const auto spec = env_.ssb->Query(1, 1);  // scalar SUM(revenue)
  const ExecPolicy policy = TestEnv::Tune(ExecPolicy::CpuOnly(3));
  HetPlan plan = Plan(spec, policy);

  QueryExecutor executor(env_.system.get());
  const auto baseline = executor.ExecutePlan(spec, plan);
  ASSERT_TRUE(baseline.status.ok()) << baseline.status.ToString();
  ASSERT_EQ(baseline.rows, env_.Reference(spec));

  // Flip the fact router from load-balance to broadcast. Every probe instance
  // now receives every fact block, so the scalar sum multiplies by the DOP.
  int mutated = 0;
  for (auto& node : plan.nodes) {
    if (node.kind == HetOpNode::Kind::kRouter &&
        node.policy == plan::RouterPolicy::kLoadBalance) {
      node.policy = plan::RouterPolicy::kBroadcast;
      node.detail = "policy=broadcast (mutated)";
      ++mutated;
    }
  }
  ASSERT_EQ(mutated, 1);

  const auto dup = executor.ExecutePlan(spec, plan);
  ASSERT_TRUE(dup.status.ok()) << dup.status.ToString();
  ASSERT_EQ(dup.rows.size(), 1u);
  EXPECT_EQ(dup.rows[0][0], 3 * baseline.rows[0][0]);
}

TEST_F(GraphBuilderTest, MutatingSegmenterGranularityChangesExecution) {
  const auto spec = env_.ssb->Query(1, 1);
  const ExecPolicy policy = TestEnv::Tune(ExecPolicy::CpuOnly(2));
  HetPlan plan = Plan(spec, policy);

  QueryExecutor executor(env_.system.get());
  const auto coarse = executor.ExecutePlan(spec, plan);
  ASSERT_TRUE(coarse.status.ok());

  // Quarter the fact segmenter's block granularity: same answers, more blocks,
  // more per-block control work on the modeled timeline.
  for (auto& node : plan.nodes) {
    if (node.kind == HetOpNode::Kind::kSegmenter && node.table == "lineorder") {
      node.block_rows /= 4;
    }
  }
  const auto fine = executor.ExecutePlan(spec, plan);
  ASSERT_TRUE(fine.status.ok());
  EXPECT_EQ(fine.rows, coarse.rows);
  EXPECT_NE(fine.modeled_seconds, coarse.modeled_seconds);
}

TEST_F(GraphBuilderTest, InvalidPlanIsRejectedBeforeExecution) {
  const auto spec = env_.ssb->Query(1, 1);
  HetPlan plan = Plan(spec, TestEnv::Tune(ExecPolicy::CpuOnly(2)));

  // Flip the union router's *stamped* policy — the field the lowering actually
  // executes — without touching the cosmetic detail string: rule 4 (hash
  // routers need hash-packed input) must reject the plan before anything runs.
  for (auto& node : plan.nodes) {
    if (node.kind == HetOpNode::Kind::kRouter &&
        node.policy == plan::RouterPolicy::kUnion) {
      node.policy = plan::RouterPolicy::kHash;
    }
  }
  QueryExecutor executor(env_.system.get());
  const auto result = executor.ExecutePlan(spec, plan);
  EXPECT_FALSE(result.status.ok());
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(GraphBuilderTest, OutOfRangeJoinIdSurfacesAsStatus) {
  const auto spec = env_.ssb->Query(1, 1);  // one join
  HetPlan plan = Plan(spec, TestEnv::Tune(ExecPolicy::CpuOnly(2)));
  for (auto& node : plan.nodes) {
    if (node.kind == HetOpNode::Kind::kJoinBuild) node.join_id = 7;
  }
  QueryExecutor executor(env_.system.get());
  const auto result = executor.ExecutePlan(spec, plan);
  EXPECT_FALSE(result.status.ok());
  EXPECT_TRUE(result.rows.empty());
}

TEST_F(GraphBuilderTest, PlanCycleSurfacesAsStatusNotHang) {
  const auto spec = env_.ssb->Query(1, 1);
  HetPlan plan = Plan(spec, TestEnv::Tune(ExecPolicy::CpuOnly(2)));
  // Point an unpack at itself: validation/lowering must error, not loop.
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    if (plan.nodes[i].kind == HetOpNode::Kind::kUnpack) {
      plan.nodes[i].children = {static_cast<int>(i)};
      break;
    }
  }
  QueryExecutor executor(env_.system.get());
  const auto result = executor.ExecutePlan(spec, plan);
  EXPECT_FALSE(result.status.ok());

  // Cross-stage cycle: point the fact router back at the probe span's pack, so
  // the fact chain re-discovers the same producer top forever if unguarded.
  HetPlan looped = Plan(spec, TestEnv::Tune(ExecPolicy::CpuOnly(2)));
  int pack = -1;
  for (size_t i = 0; i < looped.nodes.size(); ++i) {
    if (looped.nodes[i].kind == HetOpNode::Kind::kPack) pack = static_cast<int>(i);
  }
  ASSERT_GE(pack, 0);
  for (auto& node : looped.nodes) {
    if (node.kind == HetOpNode::Kind::kRouter &&
        node.policy == plan::RouterPolicy::kLoadBalance) {
      node.children = {pack};
    }
  }
  const auto r2 = executor.ExecutePlan(spec, looped);
  EXPECT_FALSE(r2.status.ok());
}

TEST_F(GraphBuilderTest, AnalyzeRejectsMalformedDag) {
  HetPlan plan;
  plan.nodes.push_back({HetOpNode::Kind::kSegmenter, "", sim::DeviceType::kCpu,
                        1, {}});
  plan.root = 0;  // no result node
  GraphBuilder builder(env_.system.get(), &plan);
  EXPECT_FALSE(builder.Analyze().ok());
}

TEST_F(GraphBuilderTest, DescribeRendersStagesAndEdges) {
  const auto spec = env_.ssb->Query(3, 1);
  const HetPlan plan = Plan(spec, TestEnv::Tune(ExecPolicy::Hybrid(2)));
  GraphBuilder builder(env_.system.get(), &plan);
  ASSERT_TRUE(builder.Analyze().ok());
  const std::string s = builder.spec().ToString();
  for (const char* expected :
       {"build stage:", "fact stage:", "gather", "probe", "policy=broadcast",
        "policy=load-balance", "mem-move"}) {
    EXPECT_NE(s.find(expected), std::string::npos) << "missing " << expected;
  }
}

}  // namespace
}  // namespace hetex::core
