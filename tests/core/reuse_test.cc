// Serving-layer cross-query reuse: single-flight shared hash-table builds
// (dedup, virtual-time attach gating, fault failover), the result cache
// (LRU bounds, mutation-epoch invalidation) and the default-off pin — with
// both knobs off, nothing reuse-related is observable.

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/ht_registry.h"
#include "core/result_cache.h"
#include "core/scheduler.h"
#include "core/system.h"
#include "test_util.h"

namespace hetex {
namespace {

using core::HtRegistry;
using core::ResultCache;
using core::SharedBuildLease;

memory::MemoryManager* Cpu0Memory(test::TestEnv& env) {
  return &env.system->memory().manager(
      env.system->topology().LocalMemNode(sim::DeviceId::Cpu(0)));
}

// ---------------------------------------------------------------------------
// HtRegistry shared-build promotion (registry level, TSan-clean)
// ---------------------------------------------------------------------------

TEST(ReuseTest, SingleFlightDedupUnderRace) {
  test::TestEnv env(4'000);
  HtRegistry registry;
  const std::string key = "dim@0;unit-test";
  constexpr int kThreads = 8;
  constexpr double kBuildDone = 3.5;

  std::atomic<int> builds{0};
  std::atomic<int> attaches{0};
  std::atomic<int> bad_ready_at{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const uint64_t query = 100 + static_cast<uint64_t>(t);
      const SharedBuildLease lease =
          registry.AcquireShared(key, query, /*control=*/nullptr);
      if (lease.role == SharedBuildLease::Role::kBuild) {
        builds.fetch_add(1);
        jit::JoinHashTable* ht = registry.Create(
            query, /*join_id=*/0, sim::DeviceId::Cpu(0), Cpu0Memory(env),
            /*capacity=*/64, /*payload_width=*/1);
        ASSERT_NE(ht, nullptr);
        registry.PublishShared(key, query, /*join_id=*/0, kBuildDone);
      } else {
        ASSERT_EQ(lease.role, SharedBuildLease::Role::kAttach);
        attaches.fetch_add(1);
        // Virtual-time gate: every attacher observes the build's completion
        // epoch, regardless of when it won the race to the registry.
        if (lease.ready_at != kBuildDone) bad_ready_at.fetch_add(1);
        EXPECT_GT(registry.AttachShared(key, query, /*join_id=*/7), 0);
        EXPECT_NE(registry.Get(query, 7, sim::DeviceId::Cpu(0)), nullptr);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1) << "single-flight must dedup to exactly one build";
  EXPECT_EQ(attaches.load(), kThreads - 1);
  EXPECT_EQ(bad_ready_at.load(), 0);
  const HtRegistry::SharedStats stats = registry.shared_stats();
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.attaches, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.failovers, 0u);
}

TEST(ReuseTest, FailedBuildPromotesExactlyOneWaiter) {
  test::TestEnv env(4'000);
  HtRegistry registry;
  const std::string key = "dim@0;failover-test";

  const SharedBuildLease first =
      registry.AcquireShared(key, /*query=*/1, nullptr);
  ASSERT_EQ(first.role, SharedBuildLease::Role::kBuild);

  constexpr int kWaiters = 4;
  std::atomic<int> builds{0};
  std::atomic<int> attaches{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&, t] {
      const uint64_t query = 10 + static_cast<uint64_t>(t);
      const SharedBuildLease lease = registry.AcquireShared(key, query, nullptr);
      if (lease.role == SharedBuildLease::Role::kBuild) {
        builds.fetch_add(1);
        registry.Create(query, 0, sim::DeviceId::Cpu(0), Cpu0Memory(env), 64, 1);
        registry.PublishShared(key, query, 0, /*ready_at=*/1.0);
      } else {
        ASSERT_EQ(lease.role, SharedBuildLease::Role::kAttach);
        attaches.fetch_add(1);
      }
    });
  }
  // The original builder faults out: exactly one waiter is promoted to
  // builder, the rest attach to the failover build — nobody is poisoned.
  registry.FailShared(key);
  for (auto& t : waiters) t.join();

  EXPECT_EQ(builds.load(), 1);
  EXPECT_EQ(attaches.load(), kWaiters - 1);
  const HtRegistry::SharedStats stats = registry.shared_stats();
  EXPECT_EQ(stats.builds, 2u);  // original claim + failover promotion
  EXPECT_EQ(stats.failovers, 1u);
}

TEST(ReuseTest, SelfConflictFallsBackToPrivateBuild) {
  HtRegistry registry;
  const std::string key = "dim@0;self-test";
  const SharedBuildLease first = registry.AcquireShared(key, 5, nullptr);
  ASSERT_EQ(first.role, SharedBuildLease::Role::kBuild);
  // The same query acquiring the same in-flight key again must not deadlock
  // waiting on itself — it builds that join privately.
  const SharedBuildLease second = registry.AcquireShared(key, 5, nullptr);
  EXPECT_EQ(second.role, SharedBuildLease::Role::kPrivate);
  registry.FailShared(key);  // release the claim so the entry is not wedged
}

TEST(ReuseTest, CancelledWaiterBailsOut) {
  HtRegistry registry;
  const std::string key = "dim@0;cancel-test";
  ASSERT_EQ(registry.AcquireShared(key, 1, nullptr).role,
            SharedBuildLease::Role::kBuild);
  core::QueryControl control;
  control.cancelled.store(true);
  const SharedBuildLease lease = registry.AcquireShared(key, 2, &control);
  EXPECT_EQ(lease.role, SharedBuildLease::Role::kCancelled);
  registry.FailShared(key);
}

TEST(ReuseTest, DeadlineExpiredWaiterBailsOut) {
  // A query whose deadline already fired must not keep holding its admission
  // slot blocked on another query's in-flight build.
  HtRegistry registry;
  const std::string key = "dim@0;deadline-test";
  ASSERT_EQ(registry.AcquireShared(key, 1, nullptr).role,
            SharedBuildLease::Role::kBuild);
  core::QueryControl control;
  control.deadline = 0.5;
  control.deadline_hit.store(true);
  const SharedBuildLease lease = registry.AcquireShared(key, 2, &control);
  EXPECT_EQ(lease.role, SharedBuildLease::Role::kCancelled);
  registry.FailShared(key);
}

TEST(ReuseTest, StaleGenerationEvictedOnNewEpochAcquire) {
  // Content keys embed the table's mutation epoch, so entries from older
  // epochs can never be acquired again: claiming a new-generation key must
  // retire them, or mutation churn grows the registry without bound.
  test::TestEnv env(4'000);
  HtRegistry registry;
  ASSERT_EQ(registry.AcquireShared("dim@0;gc-test", 1, nullptr, "dim", 0).role,
            SharedBuildLease::Role::kBuild);
  registry.Create(1, 0, sim::DeviceId::Cpu(0), Cpu0Memory(env), 64, 1);
  registry.PublishShared("dim@0;gc-test", 1, 0, /*ready_at=*/1.0);
  EXPECT_EQ(registry.NumSharedEntries(), 1);

  ASSERT_EQ(registry.AcquireShared("dim@1;gc-test", 2, nullptr, "dim", 1).role,
            SharedBuildLease::Role::kBuild);
  EXPECT_EQ(registry.NumSharedEntries(), 1) << "stale dim@0 entry must retire";

  // Other tables' generations are untouched by dim's sweep.
  ASSERT_EQ(
      registry.AcquireShared("other@0;gc-test", 3, nullptr, "other", 0).role,
      SharedBuildLease::Role::kBuild);
  EXPECT_EQ(registry.NumSharedEntries(), 2);
  registry.FailShared("dim@1;gc-test");
  registry.FailShared("other@0;gc-test");
}

// ---------------------------------------------------------------------------
// ResultCache (unit level)
// ---------------------------------------------------------------------------

TEST(ReuseTest, ResultCacheLruEvictsWithinByteBudget) {
  ResultCache cache(/*max_bytes=*/4096);
  const std::vector<std::vector<int64_t>> small = {{1, 2, 3}, {4, 5, 6}};
  cache.Insert("a", small);
  std::vector<std::vector<int64_t>> rows;
  ASSERT_TRUE(cache.Lookup("a", &rows));
  EXPECT_EQ(rows, small);

  // Fill far past the budget: the cache must stay within max_bytes and evict
  // oldest-first. "a" was touched by the lookup above, so it outlives the
  // first inserts that follow it.
  for (int i = 0; i < 64; ++i) {
    cache.Insert("fill" + std::to_string(i), small);
    EXPECT_LE(cache.bytes(), cache.max_bytes());
  }
  EXPECT_GT(cache.stats().evictions, 0u);

  // An entry larger than the whole cache is never admitted.
  std::vector<std::vector<int64_t>> huge(1);
  huge[0].assign(4096, 7);
  const int entries_before = cache.entries();
  cache.Insert("huge", huge);
  EXPECT_EQ(cache.entries(), entries_before);
  EXPECT_FALSE(cache.Lookup("huge", &rows));
}

TEST(ReuseTest, ResultCacheMissThenHitCounts) {
  ResultCache cache(1 << 20);
  std::vector<std::vector<int64_t>> rows;
  EXPECT_FALSE(cache.Lookup("k", &rows));
  cache.Insert("k", {{42}});
  EXPECT_TRUE(cache.Lookup("k", &rows));
  EXPECT_EQ(rows, (std::vector<std::vector<int64_t>>{{42}}));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

// ---------------------------------------------------------------------------
// Scheduler integration
// ---------------------------------------------------------------------------

core::ReuseOptions CacheOnly() {
  core::ReuseOptions reuse;
  reuse.result_cache = true;
  return reuse;
}

core::ReuseOptions SharedOnly() {
  core::ReuseOptions reuse;
  reuse.shared_builds = true;
  return reuse;
}

TEST(ReuseTest, ResultCacheHitThenInvalidationOnTableMutation) {
  test::TestEnv env(8'000, 2, 2, CacheOnly());
  const plan::QuerySpec spec = env.ssb->Query(1, 1);
  const auto reference = env.Reference(spec);
  core::QueryScheduler scheduler(env.system.get());

  core::QueryResult miss = scheduler.Wait(scheduler.Submit(spec));
  ASSERT_TRUE(miss.status.ok()) << miss.status.ToString();
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_EQ(miss.rows, reference);

  core::QueryResult hit = scheduler.Wait(scheduler.Submit(spec));
  ASSERT_TRUE(hit.status.ok()) << hit.status.ToString();
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.rows, reference);
  EXPECT_LT(hit.modeled_seconds, miss.modeled_seconds);

  // A table mutation changes the key every later submission computes: the
  // stale entry is unreachable and the query re-executes (and re-caches).
  env.system->catalog().at("lineorder").NoteMutation();
  core::QueryResult fresh = scheduler.Wait(scheduler.Submit(spec));
  ASSERT_TRUE(fresh.status.ok()) << fresh.status.ToString();
  EXPECT_FALSE(fresh.cache_hit);
  EXPECT_EQ(fresh.rows, reference);
}

TEST(ReuseTest, SharedBuildsConcurrentSameJoinQueriesParity) {
  test::TestEnv env(8'000, 2, 2, SharedOnly());
  const plan::QuerySpec spec = env.ssb->Query(2, 1);  // joins date+supplier+part
  const auto reference = env.Reference(spec);
  const int n_joins = static_cast<int>(spec.joins.size());
  ASSERT_GT(n_joins, 0);

  constexpr int kQueries = 4;
  core::QueryScheduler scheduler(env.system.get(),
                                 {.max_concurrent = kQueries});
  std::vector<core::QueryHandle> handles;
  for (int i = 0; i < kQueries; ++i) handles.push_back(scheduler.Submit(spec));
  int builds = 0, attaches = 0;
  for (auto& h : handles) {
    core::QueryResult r = scheduler.Wait(h);
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.rows, reference);
    builds += r.shared_builds;
    attaches += r.shared_attaches;
  }
  // Single-flight across the whole run: each distinct dimension build happens
  // once, every other (query, join) attaches — whether it raced the build or
  // arrived after it published.
  EXPECT_EQ(builds, n_joins);
  EXPECT_EQ(attaches, (kQueries - 1) * n_joins);
  EXPECT_EQ(env.system->hts().NumSharedEntries(), n_joins);
  for (auto& h : handles) (void)h;  // namespaces dropped on completion
}

TEST(ReuseTest, OppositeBuildOrderQueriesDoNotDeadlock) {
  // Two multi-join queries listing the same dimension joins in opposite
  // orders acquire overlapping content-key sets. The graph builder must claim
  // them along a canonical (sorted) order: plan-order acquisition lets each
  // query hold a build role the other is blocked on — a cross-query deadlock
  // with no escape short of cancellation. Regression = this test hangs.
  test::TestEnv env(8'000, 2, 2, SharedOnly());
  const plan::QuerySpec fwd = env.ssb->Query(2, 1);
  ASSERT_GE(fwd.joins.size(), 2u);
  plan::QuerySpec rev = fwd;
  rev.name += "-rev";
  std::reverse(rev.joins.begin(), rev.joins.end());
  const auto ref_fwd = env.Reference(fwd);
  const auto ref_rev = env.Reference(rev);

  for (int it = 0; it < 4; ++it) {
    core::QueryScheduler scheduler(env.system.get(), {.max_concurrent = 2});
    core::QueryHandle ha = scheduler.Submit(fwd);
    core::QueryHandle hb = scheduler.Submit(rev);
    core::QueryResult ra = scheduler.Wait(ha);
    core::QueryResult rb = scheduler.Wait(hb);
    ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
    ASSERT_TRUE(rb.status.ok()) << rb.status.ToString();
    EXPECT_EQ(ra.rows, ref_fwd);
    EXPECT_EQ(rb.rows, ref_rev);
    // Re-arm the race: bumping every dimension's epoch forces the next
    // iteration to rebuild (attaching to iteration N's entries is instant and
    // would never contend).
    for (const auto& j : fwd.joins) {
      env.system->catalog().at(j.build_table).NoteMutation();
    }
  }
  // Stale generations retired as each iteration claimed its new-epoch keys:
  // the registry holds at most the live generation (per distinct unit set),
  // not one generation per mutation.
  EXPECT_LE(env.system->hts().NumSharedEntries(),
            2 * static_cast<int>(fwd.joins.size()));
}

TEST(ReuseTest, MutationWhileQueuedNeverServesStaleEpoch) {
  // The cache key is computed at dequeue time (and re-validated at insert),
  // never snapshotted at submit: after a mutation lands, no query — queued,
  // in flight, or future — can publish or hit pre-mutation state under the
  // post-mutation epoch, so the first post-mutation miss re-executes and
  // every later submission hits its result.
  test::TestEnv env(8'000, 2, 2, CacheOnly());
  const plan::QuerySpec spec = env.ssb->Query(1, 1);
  const auto reference = env.Reference(spec);
  core::QueryScheduler scheduler(env.system.get(), {.max_concurrent = 1});

  core::QueryHandle ha = scheduler.Submit(spec);
  core::QueryHandle hb = scheduler.Submit(spec);  // queued behind ha
  env.system->catalog().at("lineorder").NoteMutation();
  core::QueryResult ra = scheduler.Wait(ha);
  core::QueryResult rb = scheduler.Wait(hb);
  ASSERT_TRUE(ra.status.ok()) << ra.status.ToString();
  ASSERT_TRUE(rb.status.ok()) << rb.status.ToString();
  EXPECT_FALSE(ra.cache_hit);
  EXPECT_EQ(ra.rows, reference);
  EXPECT_EQ(rb.rows, reference);

  core::QueryResult rc = scheduler.Wait(scheduler.Submit(spec));
  ASSERT_TRUE(rc.status.ok()) << rc.status.ToString();
  EXPECT_TRUE(rc.cache_hit) << "post-mutation result was not re-cached";
  EXPECT_EQ(rc.rows, reference);
}

TEST(ReuseTest, DefaultOffIsInert) {
  // The PR-7 pin: with both knobs off (the default), no result cache exists,
  // no shared entry is ever created, and results carry no reuse accounting.
  core::ReuseOptions off;
  EXPECT_FALSE(off.shared_builds);
  EXPECT_FALSE(off.result_cache);

  test::TestEnv env(8'000, 2, 2, off);
  EXPECT_EQ(env.system->result_cache(), nullptr);
  const plan::QuerySpec spec = env.ssb->Query(2, 1);
  core::QueryScheduler scheduler(env.system.get());
  for (int i = 0; i < 2; ++i) {
    core::QueryResult r = scheduler.Wait(scheduler.Submit(spec));
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FALSE(r.cache_hit);
    EXPECT_EQ(r.shared_builds, 0);
    EXPECT_EQ(r.shared_attaches, 0);
  }
  EXPECT_EQ(env.system->hts().NumSharedEntries(), 0);
}

// ---------------------------------------------------------------------------
// Chaos: shared builds under fault injection (picked up by the CI chaos
// filter via the "Chaos" name). A faulted shared build must fail over to a
// waiter without poisoning the attachers: every query ends OK or with a
// named fault, and OK rows stay bit-identical to the reference.
// ---------------------------------------------------------------------------

TEST(ReuseChaosTest, FaultedSharedBuildsFailOverCleanly) {
  core::System::Options opts;
  opts.topology.num_sockets = 2;
  opts.topology.cores_per_socket = 2;
  opts.topology.num_gpus = 2;
  opts.topology.gpu_sim_threads = 2;
  opts.topology.host_capacity_per_socket = 4ull << 30;
  opts.topology.gpu_capacity = 1ull << 30;
  opts.blocks.block_bytes = 64 << 10;
  opts.blocks.host_arena_blocks = 256;
  opts.blocks.gpu_arena_blocks = 128;
  opts.faults.enabled = true;
  opts.faults.seed = 0xC0FFEE;
  opts.faults.dma_fault_rate = 0.05;
  opts.faults.kernel_fault_rate = 0.05;
  opts.faults.staging_fault_rate = 0.01;
  core::ReuseOptions reuse;
  reuse.shared_builds = true;
  reuse.result_cache = true;
  opts.reuse = reuse;
  core::System system(opts);

  ssb::Ssb::Options ssb_opts;
  ssb_opts.lineorder_rows = 6'000;
  ssb_opts.scale = 0.002;
  ssb::Ssb ssb(ssb_opts, &system.catalog());
  for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
    HETEX_CHECK_OK(
        system.catalog().at(name).Place(system.HostNodes(), &system.memory()));
  }

  const std::vector<plan::QuerySpec> pool = {ssb.Query(2, 1), ssb.Query(3, 1),
                                             ssb.Query(2, 1), ssb.Query(2, 1)};
  std::vector<std::vector<std::vector<int64_t>>> reference;
  for (const auto& spec : pool) {
    reference.push_back(ssb::ReferenceExecute(spec, system.catalog()));
  }

  const int iters = test::FuzzIters(3);
  for (int it = 0; it < iters; ++it) {
    core::QueryScheduler scheduler(&system, {.max_concurrent = 4});
    std::vector<core::QueryHandle> handles;
    for (const auto& spec : pool) handles.push_back(scheduler.Submit(spec));
    for (size_t i = 0; i < handles.size(); ++i) {
      core::QueryResult r = scheduler.Wait(handles[i]);
      if (r.status.ok()) {
        EXPECT_EQ(r.rows, reference[i]) << pool[i].name << " iter " << it;
      } else {
        const StatusCode code = r.status.code();
        EXPECT_TRUE(code == StatusCode::kUnavailable ||
                    code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kDeviceLost ||
                    code == StatusCode::kInternal)
            << "unnamed failure: " << r.status.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace hetex
