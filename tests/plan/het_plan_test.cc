#include "plan/het_plan.h"

#include <gtest/gtest.h>

#include "plan/query_spec.h"
#include "sim/topology.h"

namespace hetex::plan {
namespace {

QuerySpec JoinQuery() {
  QuerySpec q;
  q.name = "test";
  q.fact_table = "fact";
  q.fact_filter = Gt(Col("x"), Lit(5));
  q.joins.push_back({"dim", nullptr, "k", {"payload"}, "fk"});
  q.aggs.push_back({Col("x"), jit::AggFunc::kSum, "s"});
  return q;
}

class LayoutTest : public ::testing::Test {
 protected:
  sim::Topology topo_ = sim::Topology::PaperServer();
};

TEST_F(LayoutTest, CpuOnlyInterleavesSockets) {
  Layout l = ComputeLayout(ExecPolicy::CpuOnly(4), topo_);
  ASSERT_EQ(l.probe_instances.size(), 4u);
  EXPECT_EQ(l.probe_instances[0], sim::DeviceId::Cpu(0));
  EXPECT_EQ(l.probe_instances[1], sim::DeviceId::Cpu(1));
  EXPECT_EQ(l.probe_instances[2], sim::DeviceId::Cpu(0));
  EXPECT_TRUE(l.has_cpu);
  EXPECT_FALSE(l.has_gpu);
  // Build units: one per participating socket.
  EXPECT_EQ(l.build_units.size(), 2u);
}

TEST_F(LayoutTest, CpuOnlyDefaultUsesAllCores) {
  Layout l = ComputeLayout(ExecPolicy::CpuOnly(), topo_);
  EXPECT_EQ(l.probe_instances.size(), 24u);
}

TEST_F(LayoutTest, GpuOnly) {
  Layout l = ComputeLayout(ExecPolicy::GpuOnly(), topo_);
  ASSERT_EQ(l.probe_instances.size(), 2u);
  EXPECT_TRUE(l.probe_instances[0].is_gpu());
  EXPECT_FALSE(l.has_cpu);
  EXPECT_EQ(l.build_units.size(), 2u);  // one per GPU
}

TEST_F(LayoutTest, HybridCombines) {
  Layout l = ComputeLayout(ExecPolicy::Hybrid(8, {0, 1}), topo_);
  EXPECT_EQ(l.probe_instances.size(), 10u);
  EXPECT_EQ(l.build_units.size(), 4u);  // 2 sockets + 2 GPUs
}

TEST_F(LayoutTest, SingleGpuSelection) {
  Layout l = ComputeLayout(ExecPolicy::GpuOnly({1}), topo_);
  ASSERT_EQ(l.probe_instances.size(), 1u);
  EXPECT_EQ(l.probe_instances[0], sim::DeviceId::Gpu(1));
  // Gather runs on the GPU's host socket.
  EXPECT_EQ(l.gather_socket, topo_.gpu(1).socket);
}

TEST_F(LayoutTest, BareModeSingleUnitNoRouters) {
  Layout l = ComputeLayout(ExecPolicy::Bare(sim::DeviceType::kCpu), topo_);
  EXPECT_EQ(l.probe_instances.size(), 1u);
  EXPECT_FALSE(l.routers_present);
}

TEST_F(LayoutTest, ZeroCpuWorkersHybridIsGpuOnly) {
  Layout l = ComputeLayout(ExecPolicy::Hybrid(0, {0, 1}), topo_);
  EXPECT_EQ(l.probe_instances.size(), 2u);
  EXPECT_FALSE(l.has_cpu);
}

class HetPlanTest : public ::testing::Test {
 protected:
  sim::Topology topo_ = sim::Topology::PaperServer();
};

TEST_F(HetPlanTest, HybridPlanValidates) {
  HetPlan plan = BuildHetPlan(JoinQuery(), ExecPolicy::Hybrid(8), topo_);
  EXPECT_TRUE(ValidateHetPlan(plan).ok()) << plan.ToString();
}

TEST_F(HetPlanTest, AllPoliciesValidate) {
  for (const auto& policy :
       {ExecPolicy::CpuOnly(4), ExecPolicy::GpuOnly(), ExecPolicy::Hybrid()}) {
    HetPlan plan = BuildHetPlan(JoinQuery(), policy, topo_);
    EXPECT_TRUE(ValidateHetPlan(plan).ok()) << plan.ToString();
  }
}

TEST_F(HetPlanTest, SplitPlanContainsHashPackAndHashRouter) {
  ExecPolicy policy = ExecPolicy::Hybrid(4);
  policy.split_probe_stage = true;
  HetPlan plan = BuildHetPlan(JoinQuery(), policy, topo_);
  EXPECT_TRUE(ValidateHetPlan(plan).ok()) << plan.ToString();
  bool has_hash_pack = false, has_hash_router = false;
  for (const auto& n : plan.nodes) {
    has_hash_pack |= n.kind == HetOpNode::Kind::kHashPack;
    has_hash_router |= n.kind == HetOpNode::Kind::kRouter &&
                       n.detail.find("hash") != std::string::npos;
  }
  EXPECT_TRUE(has_hash_pack);
  EXPECT_TRUE(has_hash_router);
}

TEST_F(HetPlanTest, GpuBranchesHaveCrossingsAndMemMoves) {
  HetPlan plan = BuildHetPlan(JoinQuery(), ExecPolicy::GpuOnly(), topo_);
  int cpu2gpu = 0, gpu2cpu = 0, memmove = 0;
  for (const auto& n : plan.nodes) {
    cpu2gpu += n.kind == HetOpNode::Kind::kCpu2Gpu;
    gpu2cpu += n.kind == HetOpNode::Kind::kGpu2Cpu;
    memmove += n.kind == HetOpNode::Kind::kMemMove;
  }
  EXPECT_GE(cpu2gpu, 2);  // build branch + probe branch
  EXPECT_GE(gpu2cpu, 1);  // partials back to host
  EXPECT_GE(memmove, 2);
}

TEST_F(HetPlanTest, CpuOnlyPlanHasNoCrossings) {
  HetPlan plan = BuildHetPlan(JoinQuery(), ExecPolicy::CpuOnly(4), topo_);
  for (const auto& n : plan.nodes) {
    EXPECT_NE(n.kind, HetOpNode::Kind::kCpu2Gpu);
    EXPECT_NE(n.kind, HetOpNode::Kind::kGpu2Cpu);
  }
}

TEST_F(HetPlanTest, BarePlanHasNoRouters) {
  HetPlan plan =
      BuildHetPlan(JoinQuery(), ExecPolicy::Bare(sim::DeviceType::kCpu), topo_);
  for (const auto& n : plan.nodes) {
    EXPECT_NE(n.kind, HetOpNode::Kind::kRouter);
    EXPECT_NE(n.kind, HetOpNode::Kind::kMemMove);
  }
}

TEST_F(HetPlanTest, PrinterShowsTheRunningExampleShape) {
  HetPlan plan = BuildHetPlan(JoinQuery(), ExecPolicy::Hybrid(8), topo_);
  const std::string s = plan.ToString();
  for (const char* expected :
       {"segmenter", "router", "mem-move", "cpu2gpu", "gpu2cpu", "unpack",
        "filter", "hashjoin-probe", "hashjoin-build", "reduce(local)", "gather",
        "result"}) {
    EXPECT_NE(s.find(expected), std::string::npos) << "missing " << expected;
  }
}

// ---- BuildHetPlan stamps every parameter the lowering needs on the nodes.

TEST_F(HetPlanTest, StampsLoweringParameters) {
  ExecPolicy policy = ExecPolicy::Hybrid(4);
  policy.block_rows = 2048;
  policy.channel_capacity = 7;
  HetPlan plan = BuildHetPlan(JoinQuery(), policy, topo_);
  EXPECT_EQ(plan.channel_capacity, 7u);

  int routers = 0, segmenters = 0, placed_spans = 0, crossing_stamps = 0;
  for (const auto& n : plan.nodes) {
    switch (n.kind) {
      case HetOpNode::Kind::kRouter:
        ++routers;
        EXPECT_GT(n.control_cost, 0.0);
        EXPECT_GT(n.init_latency, 0.0);
        break;
      case HetOpNode::Kind::kSegmenter:
        ++segmenters;
        EXPECT_FALSE(n.table.empty());
        EXPECT_EQ(n.block_rows, 2048u);
        EXPECT_GT(n.per_block_cost, 0.0);
        break;
      case HetOpNode::Kind::kJoinBuild:
        EXPECT_EQ(n.join_id, 0);
        ASSERT_EQ(n.placement.size(), 1u);
        break;
      case HetOpNode::Kind::kJoinProbe:
      case HetOpNode::Kind::kReduceLocal:
      case HetOpNode::Kind::kPack:
        EXPECT_EQ(static_cast<int>(n.placement.size()), n.dop);
        ++placed_spans;
        break;
      case HetOpNode::Kind::kGpu2Cpu:
        crossing_stamps += n.crossing_latency > 0.0;
        break;
      default:
        break;
    }
  }
  EXPECT_GE(routers, 3);      // broadcast + fact + union
  EXPECT_EQ(segmenters, 2);   // dim + fact
  EXPECT_GT(placed_spans, 0);
  EXPECT_EQ(crossing_stamps, 1);  // the async device->host partials queue
}

TEST_F(HetPlanTest, StampsRouterPolicies) {
  ExecPolicy policy = ExecPolicy::Hybrid(4);
  policy.split_probe_stage = true;
  HetPlan plan = BuildHetPlan(JoinQuery(), policy, topo_);
  int broadcast = 0, lb = 0, hash = 0, un = 0;
  for (const auto& n : plan.nodes) {
    if (n.kind != HetOpNode::Kind::kRouter) continue;
    broadcast += n.policy == RouterPolicy::kBroadcast;
    lb += n.policy == RouterPolicy::kLoadBalance;
    hash += n.policy == RouterPolicy::kHash;
    un += n.policy == RouterPolicy::kUnion;
  }
  EXPECT_EQ(broadcast, 1);
  EXPECT_EQ(lb, 1);
  EXPECT_EQ(hash, 1);  // one shared hash exchange, not one per branch
  EXPECT_EQ(un, 1);
}

TEST_F(HetPlanTest, GatherPlacementStampedOnHostSocket) {
  HetPlan plan = BuildHetPlan(JoinQuery(), ExecPolicy::GpuOnly({1}), topo_);
  for (const auto& n : plan.nodes) {
    if (n.kind == HetOpNode::Kind::kGather) {
      ASSERT_EQ(n.placement.size(), 1u);
      EXPECT_EQ(n.placement[0], sim::DeviceId::Cpu(topo_.gpu(1).socket));
    }
  }
}

TEST_F(HetPlanTest, BarePlansValidateViaUvaMarkers) {
  for (auto type : {sim::DeviceType::kCpu, sim::DeviceType::kGpu}) {
    HetPlan plan = BuildHetPlan(JoinQuery(), ExecPolicy::Bare(type), topo_);
    EXPECT_TRUE(ValidateHetPlan(plan).ok()) << plan.ToString();
  }
}

// ---- Validator catches broken plans (the §3.3 converter rules).

TEST_F(HetPlanTest, ValidatorRejectsDeviceJumpWithoutCrossing) {
  HetPlan plan;
  plan.nodes.push_back({HetOpNode::Kind::kSegmenter, "", sim::DeviceType::kCpu,
                        1, {}});
  plan.nodes.push_back({HetOpNode::Kind::kFilter, "", sim::DeviceType::kGpu,
                        1, {0}});
  plan.root = 1;
  EXPECT_FALSE(ValidateHetPlan(plan).ok());
}

TEST_F(HetPlanTest, ValidatorRejectsRelationalOverPackedInput) {
  HetPlan plan;
  plan.nodes.push_back({HetOpNode::Kind::kSegmenter, "", sim::DeviceType::kCpu,
                        1, {}});
  // Filter directly over blocks: missing unpack.
  plan.nodes.push_back({HetOpNode::Kind::kFilter, "", sim::DeviceType::kCpu,
                        1, {0}});
  plan.root = 1;
  EXPECT_FALSE(ValidateHetPlan(plan).ok());
}

TEST_F(HetPlanTest, ValidatorRejectsCpu2GpuWithoutMemMove) {
  HetPlan plan;
  plan.nodes.push_back({HetOpNode::Kind::kSegmenter, "", sim::DeviceType::kCpu,
                        1, {}});
  plan.nodes.push_back({HetOpNode::Kind::kCpu2Gpu, "", sim::DeviceType::kGpu,
                        1, {0}});
  plan.nodes.push_back({HetOpNode::Kind::kUnpack, "", sim::DeviceType::kGpu,
                        1, {1}});
  plan.root = 2;
  EXPECT_FALSE(ValidateHetPlan(plan).ok());
}

TEST_F(HetPlanTest, ValidatorNamesTheFailingNode) {
  // A hand-mutated plan whose un-marked crossing breaks rule 3 must report
  // *which* node failed, not just which rule (the status reaches
  // QueryResult::status, where "cpu2gpu without mem-move" alone is useless
  // in a 40-node plan).
  HetPlan plan = BuildHetPlan(JoinQuery(), ExecPolicy::Bare(sim::DeviceType::kGpu),
                              topo_);
  int broken_node = -1;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    if (plan.nodes[i].kind == HetOpNode::Kind::kCpu2Gpu) {
      // Strip the UVA marker: the crossing now needs a mem-move below.
      plan.nodes[i].uva = false;
      plan.nodes[i].detail = "zero-copy launch";
      broken_node = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(broken_node, 0);
  const Status st = ValidateHetPlan(plan);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("node " + std::to_string(broken_node)),
            std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("rule 3"), std::string::npos) << st.ToString();
}

TEST_F(HetPlanTest, ValidatorRejectsChildlessCrossing) {
  HetPlan plan = BuildHetPlan(JoinQuery(), ExecPolicy::GpuOnly(), topo_);
  for (auto& n : plan.nodes) {
    if (n.kind == HetOpNode::Kind::kCpu2Gpu) {
      n.children.clear();
      break;
    }
  }
  EXPECT_FALSE(ValidateHetPlan(plan).ok());
}

TEST_F(HetPlanTest, ValidatorRejectsHashRouterWithoutHashPack) {
  HetPlan plan;
  plan.nodes.push_back({HetOpNode::Kind::kSegmenter, "", sim::DeviceType::kCpu,
                        1, {}});
  plan.nodes.push_back({HetOpNode::Kind::kRouter, "policy=hash",
                        sim::DeviceType::kCpu, 1, {0}});
  plan.root = 1;
  EXPECT_FALSE(ValidateHetPlan(plan).ok());
}

TEST(GroupKeys, CombinePacksInOrder) {
  const auto key = CombineGroupKeys({Lit(3), Lit(5)});
  const int64_t v = key->Eval([](const std::string&) { return 0; });
  EXPECT_EQ(v, (3ll << kGroupKeyBits) + 5);
}

TEST(GroupKeys, ThreeKeysFit) {
  const auto key = CombineGroupKeys({Lit(1997), Lit(249), Lit(999)});
  const int64_t v = key->Eval([](const std::string&) { return 0; });
  EXPECT_EQ(v >> (2 * kGroupKeyBits), 1997);
  EXPECT_EQ((v >> kGroupKeyBits) & ((1 << kGroupKeyBits) - 1), 249);
  EXPECT_EQ(v & ((1 << kGroupKeyBits) - 1), 999);
}

}  // namespace
}  // namespace hetex::plan
