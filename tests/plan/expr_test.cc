#include "plan/expr.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "jit/interpreter.h"

namespace hetex::plan {
namespace {

/// Evaluates an expression both ways — interpreted Eval() and generated VM
/// code — and checks they agree. This is the core property linking the
/// reference evaluator to the JIT engine.
int64_t EvalViaVm(const ExprPtr& expr,
                  const std::map<std::string, int64_t>& row) {
  // Column storage: one row per column, order of first use.
  std::vector<std::vector<int64_t>> columns;
  std::vector<std::string> names;

  class MapResolver : public ColumnResolver {
   public:
    MapResolver(const std::map<std::string, int64_t>& row,
                std::vector<std::vector<int64_t>>* cols,
                std::vector<std::string>* names)
        : row_(row), cols_(cols), names_(names) {}
    int ResolveColumn(const std::string& name, jit::ProgramBuilder& b) override {
      if (auto it = regs_.find(name); it != regs_.end()) return it->second;
      const int slot = static_cast<int>(cols_->size());
      cols_->push_back({row_.at(name)});
      names_->push_back(name);
      const int reg = b.AllocReg();
      b.EmitOp(jit::OpCode::kLoadCol, reg, slot);
      regs_[name] = reg;
      return reg;
    }

   private:
    const std::map<std::string, int64_t>& row_;
    std::vector<std::vector<int64_t>>* cols_;
    std::vector<std::string>* names_;
    std::map<std::string, int> regs_;
  } resolver(row, &columns, &names);

  jit::ProgramBuilder b;
  const int result = expr->Gen(b, resolver);
  b.EmitOp(jit::OpCode::kEmit, result, 1);
  jit::PipelineProgram program = b.Finalize("expr-test");
  program.finalized = true;

  std::vector<jit::ColumnBinding> bindings;
  for (const auto& c : columns) {
    bindings.push_back({reinterpret_cast<const std::byte*>(c.data()), 8});
  }
  std::vector<int64_t> out(4);
  jit::EmitTarget emit;
  emit.cols.push_back({reinterpret_cast<std::byte*>(out.data()), 8});
  emit.capacity = 4;
  sim::CostStats stats;
  jit::ExecCtx ctx;
  ctx.cols = bindings.data();
  ctx.n_cols = static_cast<int>(bindings.size());
  ctx.emit = &emit;
  ctx.stats = &stats;
  jit::RunRows(program, ctx, 1);
  return out[0];
}

int64_t EvalInterp(const ExprPtr& expr, const std::map<std::string, int64_t>& row) {
  return expr->Eval([&](const std::string& name) { return row.at(name); });
}

TEST(Expr, LiteralAndColumn) {
  std::map<std::string, int64_t> row{{"x", 17}};
  EXPECT_EQ(EvalInterp(Lit(5), row), 5);
  EXPECT_EQ(EvalInterp(Col("x"), row), 17);
  EXPECT_EQ(EvalViaVm(Lit(5), row), 5);
  EXPECT_EQ(EvalViaVm(Col("x"), row), 17);
}

TEST(Expr, ArithmeticAndComparisons) {
  std::map<std::string, int64_t> row{{"a", 6}, {"b", -4}};
  const auto cases = {
      Add(Col("a"), Col("b")), Sub(Col("a"), Col("b")), Mul(Col("a"), Col("b")),
      Lt(Col("a"), Col("b")),  Le(Col("a"), Lit(6)),    Gt(Col("a"), Col("b")),
      Ge(Col("b"), Lit(-4)),   Eq(Col("a"), Lit(6)),    Ne(Col("a"), Col("b")),
      Shl(Col("a"), 3),        Between(Col("a"), 0, 10),
      And(Gt(Col("a"), Lit(0)), Lt(Col("b"), Lit(0))),
      Or(Eq(Col("a"), Lit(1)), Eq(Col("b"), Lit(-4)))};
  for (const auto& e : cases) {
    EXPECT_EQ(EvalInterp(e, row), EvalViaVm(e, row)) << e->ToString();
  }
}

TEST(Expr, CollectColumns) {
  std::set<std::string> cols;
  And(Gt(Col("x"), Lit(1)), Eq(Col("y"), Col("z")))->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<std::string>{"x", "y", "z"}));
}

TEST(Expr, ToStringReadable) {
  EXPECT_EQ(Add(Col("a"), Lit(2))->ToString(), "(a + 2)");
  EXPECT_EQ(Between(Col("d"), 1, 3)->ToString(), "((d >= 1) AND (d <= 3))");
}

/// Property test: random expression trees evaluate identically through the
/// interpreter and through generated VM code.
class RandomExprTest : public ::testing::TestWithParam<int> {};

ExprPtr RandomExpr(Rng& rng, int depth) {
  if (depth == 0 || rng.NextBool(0.3)) {
    if (rng.NextBool(0.5)) return Lit(rng.UniformRange(-20, 20));
    return Col(std::string(1, static_cast<char>('a' + rng.Uniform(4))));
  }
  const auto ops = {Expr::BinOp::kAdd, Expr::BinOp::kSub, Expr::BinOp::kMul,
                    Expr::BinOp::kLt,  Expr::BinOp::kLe,  Expr::BinOp::kGt,
                    Expr::BinOp::kGe,  Expr::BinOp::kEq,  Expr::BinOp::kNe,
                    Expr::BinOp::kAnd, Expr::BinOp::kOr};
  const auto op = *(ops.begin() + rng.Uniform(ops.size()));
  return Expr::Bin(op, RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
}

TEST_P(RandomExprTest, InterpreterMatchesGeneratedCode) {
  Rng rng(GetParam() * 7919 + 13);
  for (int iter = 0; iter < 40; ++iter) {
    const ExprPtr e = RandomExpr(rng, 4);
    std::map<std::string, int64_t> row;
    for (char c : {'a', 'b', 'c', 'd'}) {
      row[std::string(1, c)] = rng.UniformRange(-100, 100);
    }
    EXPECT_EQ(EvalInterp(e, row), EvalViaVm(e, row)) << e->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace hetex::plan
