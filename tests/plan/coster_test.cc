#include "plan/coster.h"

#include <gtest/gtest.h>

#include <memory>

#include "plan/enumerator.h"
#include "plan/optimizer.h"
#include "test_util.h"

namespace hetex {
namespace {

using plan::ExecPolicy;
using test::TestEnv;

/// Environment with dimension-size overrides (the skewed-cardinality regimes:
/// tiny cache-resident build sides vs build sides rivaling the fact table).
struct SkewEnv {
  SkewEnv(uint64_t lineorder_rows, uint64_t customer_rows, uint64_t part_rows) {
    core::System::Options opts;
    opts.topology.num_sockets = 2;
    opts.topology.cores_per_socket = 2;
    opts.topology.num_gpus = 2;
    opts.topology.gpu_sim_threads = 2;
    opts.topology.host_capacity_per_socket = 4ull << 30;
    opts.topology.gpu_capacity = 1ull << 30;
    opts.blocks.block_bytes = 64 << 10;
    opts.blocks.host_arena_blocks = 256;
    opts.blocks.gpu_arena_blocks = 128;
    system = std::make_unique<core::System>(opts);

    ssb::Ssb::Options ssb_opts;
    ssb_opts.lineorder_rows = lineorder_rows;
    ssb_opts.scale = 0.002;
    ssb_opts.customer_rows = customer_rows;
    ssb_opts.part_rows = part_rows;
    ssb = std::make_unique<ssb::Ssb>(ssb_opts, &system->catalog());
    for (const char* name :
         {"lineorder", "date", "customer", "supplier", "part"}) {
      HETEX_CHECK_OK(system->catalog().at(name).Place(system->HostNodes(),
                                                      &system->memory()));
    }
  }

  std::unique_ptr<core::System> system;
  std::unique_ptr<ssb::Ssb> ssb;
};

double Measure(core::System* system, const plan::QuerySpec& spec,
               const plan::HetPlan& plan) {
  core::QueryExecutor executor(system);
  const core::QueryResult r = executor.ExecutePlan(spec, plan);
  EXPECT_TRUE(r.status.ok()) << spec.name << ": " << r.status.ToString();
  return r.status.ok() ? r.modeled_seconds : -1.0;
}

double EstimateFor(core::System* system, const plan::QuerySpec& spec,
                   const plan::HetPlan& plan) {
  plan::PlanCoster::Options opts;
  opts.pack_block_rows = system->blocks().options().block_bytes / 8;
  plan::PlanCoster coster(spec, system->catalog(), system->topology(), opts);
  auto cost = coster.Cost(plan);
  EXPECT_TRUE(cost.ok()) << cost.status().ToString();
  return cost.ok() ? cost.value().total : -1.0;
}

TEST(CardinalityTest, SampledSelectivitiesMatchKnownSsbFractions) {
  TestEnv env(20'000);
  // Q1.1: date filter d_year = 1993 selects one of seven years; the fact
  // filter (discount/quantity ranges) survives a known ~8% of lineorder.
  const auto spec = env.ssb->Query(1, 1);
  const auto cards =
      plan::EstimateCardinalities(spec, env.system->catalog());
  EXPECT_EQ(cards.fact_rows, env.system->catalog().at("lineorder").rows());
  EXPECT_GT(cards.fact_selectivity, 0.02);
  EXPECT_LT(cards.fact_selectivity, 0.25);
  ASSERT_EQ(cards.join_selectivities.size(), 1u);
  EXPECT_NEAR(cards.join_selectivities[0], 1.0 / 7, 0.05);
  EXPECT_LT(cards.output_rows, cards.fact_rows);
}

TEST(CardinalityTest, BuildSidesReflectFilteredRows) {
  TestEnv env(5'000);
  // Q3.1 filters customer and supplier to one region of five.
  const auto spec = env.ssb->Query(3, 1);
  const auto cards =
      plan::EstimateCardinalities(spec, env.system->catalog());
  ASSERT_EQ(cards.build_rows.size(), 3u);
  for (size_t j = 0; j < 2; ++j) {
    EXPECT_LT(cards.build_rows[j], cards.build_input_rows[j]);
    EXPECT_NEAR(cards.join_selectivities[j], 1.0 / 5, 0.12) << "join " << j;
  }
}

TEST(PlanCosterTest, CostParamsAreTheSingleSourceOfTruth) {
  // The planner stamps and the runtime simulation must price control-plane
  // operators from one struct: CostModel's defaults are seeded from it.
  const plan::CostParams params;
  const sim::CostModel cm = sim::CostModel::Paper();
  EXPECT_EQ(cm.router_init_latency, params.router_init_latency);
  EXPECT_EQ(cm.router_control_cost, params.router_control_cost);
  EXPECT_EQ(cm.segmenter_block_cost, params.segmenter_block_cost);
  EXPECT_EQ(cm.task_spawn_latency, params.task_spawn_latency);
  EXPECT_EQ(cm.dma_latency, params.dma_latency);
  EXPECT_EQ(cm.kernel_launch_latency, params.kernel_launch_latency);
}

TEST(PlanCosterTest, BreakdownShapesMatchPlanShapes) {
  TestEnv env(10'000);
  const auto spec = env.ssb->Query(2, 1);
  plan::PlanCoster coster(spec, env.system->catalog(), env.system->topology());

  ExecPolicy routed = TestEnv::Tune(ExecPolicy::CpuOnly(2));
  const auto with_routers = coster.Cost(
      plan::BuildHetPlan(spec, routed, env.system->topology()));
  ASSERT_TRUE(with_routers.ok());
  EXPECT_GT(with_routers.value().init, 0.0);
  EXPECT_GT(with_routers.value().build, 0.0);
  EXPECT_GT(with_routers.value().probe, 0.0);
  EXPECT_GT(with_routers.value().total, with_routers.value().init);

  const auto bare = coster.Cost(plan::BuildHetPlan(
      spec, ExecPolicy::Bare(sim::DeviceType::kCpu), env.system->topology()));
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value().init, 0.0);  // no routers to bring up
  EXPECT_GT(bare.value().total, 0.0);
}

TEST(PlanCosterTest, LinkBacklogRaisesGpuPlanEstimates) {
  TestEnv env(20'000);
  const auto spec = env.ssb->Query(1, 1);
  const plan::HetPlan gpu_plan = plan::BuildHetPlan(
      spec, TestEnv::Tune(ExecPolicy::GpuOnly()), env.system->topology());
  const plan::HetPlan cpu_plan = plan::BuildHetPlan(
      spec, TestEnv::Tune(ExecPolicy::CpuOnly(3)), env.system->topology());

  plan::PlanCoster::Options idle;
  idle.pack_block_rows = env.system->blocks().options().block_bytes / 8;
  plan::PlanCoster::Options loaded = idle;
  // Other in-flight queries queued half a virtual second on every PCIe link.
  loaded.link_backlog.assign(env.system->topology().num_pcie_links(), 0.5);

  plan::PlanCoster idle_coster(spec, env.system->catalog(),
                               env.system->topology(), idle);
  plan::PlanCoster loaded_coster(spec, env.system->catalog(),
                                 env.system->topology(), loaded);

  // GPU plans DMA the fact table over the loaded links: the backlog shows up
  // as queueing delay in the estimate.
  const auto gpu_idle = idle_coster.Cost(gpu_plan);
  const auto gpu_loaded = loaded_coster.Cost(gpu_plan);
  ASSERT_TRUE(gpu_idle.ok() && gpu_loaded.ok());
  EXPECT_GT(gpu_loaded.value().total, gpu_idle.value().total);
  EXPECT_GE(gpu_loaded.value().total, gpu_idle.value().total + 0.4);

  // CPU-only plans never touch the links: immune to the load signal — which
  // is exactly what lets the optimizer steer new arrivals off congested links.
  const auto cpu_idle = idle_coster.Cost(cpu_plan);
  const auto cpu_loaded = loaded_coster.Cost(cpu_plan);
  ASSERT_TRUE(cpu_idle.ok() && cpu_loaded.ok());
  EXPECT_DOUBLE_EQ(cpu_loaded.value().total, cpu_idle.value().total);
}

TEST(PlanCosterTest, SharedLinkOccupancyBoundsPipelinedStages) {
  TestEnv env(20'000);
  const auto spec = env.ssb->Query(1, 1);
  // A split hybrid plan: stage-A input DMA (GPU branch of the filter stage)
  // and stage-B wire DMA (GPU probe consumers) land on the same PCIe links.
  ExecPolicy split = TestEnv::Tune(ExecPolicy::Hybrid(2));
  split.split_probe_stage = true;
  const plan::HetPlan plan =
      plan::BuildHetPlan(spec, split, env.system->topology());

  plan::PlanCoster::Options opts;
  opts.pack_block_rows = env.system->blocks().options().block_bytes / 8;
  plan::PlanCoster coster(spec, env.system->catalog(), env.system->topology(),
                          opts);
  const auto est = coster.Cost(plan);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  // The estimate must at least cover the serialized per-link DMA occupancy it
  // itself derived (the transfer diagnostic is one instance's share).
  EXPECT_GE(est.value().probe, est.value().transfer);
  EXPECT_GT(est.value().total, 0.0);
}

TEST(PlanCosterTest, LinkBacklogRaisesUvaPlanEstimates) {
  // Bare-GPU (UVA) kernels now charge their streamed bytes on the PCIe link,
  // so the scheduler's backlog signal steers UVA plans exactly like DMA ones.
  TestEnv env(20'000);
  const auto spec = env.ssb->Query(1, 1);
  const plan::HetPlan uva_plan = plan::BuildHetPlan(
      spec, ExecPolicy::Bare(sim::DeviceType::kGpu), env.system->topology());

  plan::PlanCoster::Options idle;
  idle.pack_block_rows = env.system->blocks().options().block_bytes / 8;
  plan::PlanCoster::Options loaded = idle;
  loaded.link_backlog.assign(env.system->topology().num_pcie_links(), 0.5);

  plan::PlanCoster idle_coster(spec, env.system->catalog(),
                               env.system->topology(), idle);
  plan::PlanCoster loaded_coster(spec, env.system->catalog(),
                                 env.system->topology(), loaded);
  const auto uva_idle = idle_coster.Cost(uva_plan);
  const auto uva_loaded = loaded_coster.Cost(uva_plan);
  ASSERT_TRUE(uva_idle.ok() && uva_loaded.ok());
  EXPECT_GT(uva_loaded.value().total, uva_idle.value().total);
  EXPECT_GE(uva_loaded.value().total, uva_idle.value().total + 0.4);
}

TEST(PlanCosterTest, SocketBacklogRaisesCpuPlanEstimates) {
  TestEnv env(20'000);
  const auto spec = env.ssb->Query(1, 1);
  const plan::HetPlan cpu_plan = plan::BuildHetPlan(
      spec, TestEnv::Tune(ExecPolicy::CpuOnly(3)), env.system->topology());
  const plan::HetPlan gpu_plan = plan::BuildHetPlan(
      spec, TestEnv::Tune(ExecPolicy::GpuOnly()), env.system->topology());

  plan::PlanCoster::Options idle;
  idle.pack_block_rows = env.system->blocks().options().block_bytes / 8;
  plan::PlanCoster::Options loaded = idle;
  // Other sessions run 20 workers per socket: CPU fluid shares collapse from
  // the per-core cap to 45/22 GB/s; GPU plans are immune to the signal.
  loaded.socket_backlog_workers.assign(env.system->topology().num_sockets(), 20);

  plan::PlanCoster idle_coster(spec, env.system->catalog(),
                               env.system->topology(), idle);
  plan::PlanCoster loaded_coster(spec, env.system->catalog(),
                                 env.system->topology(), loaded);
  const auto cpu_idle = idle_coster.Cost(cpu_plan);
  const auto cpu_loaded = loaded_coster.Cost(cpu_plan);
  ASSERT_TRUE(cpu_idle.ok() && cpu_loaded.ok());
  EXPECT_GT(cpu_loaded.value().total, cpu_idle.value().total);

  const auto gpu_idle = idle_coster.Cost(gpu_plan);
  const auto gpu_loaded = loaded_coster.Cost(gpu_plan);
  ASSERT_TRUE(gpu_idle.ok() && gpu_loaded.ok());
  EXPECT_DOUBLE_EQ(gpu_loaded.value().total, gpu_idle.value().total);
}

// --------------------------------------------------------------------------
// Coster accuracy under load: with 2 and 4 sessions in flight (simulated as
// real link occupancy + registered DRAM workers), the estimated ordering of
// candidate plans still agrees with the measured ordering — UVA and DRAM
// contention are charged the same way in the estimate and the runtime.
// --------------------------------------------------------------------------

class CosterUnderLoadTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr uint64_t kPhantomSession = 999'999'999ull;

  /// Per-level load shape for `in_flight` total sessions: each phantom
  /// session contributes link occupancy and socket workers.
  static double BacklogSeconds(int in_flight) { return 0.02 * (in_flight - 1); }
  static int BacklogWorkers(int in_flight) { return 6 * (in_flight - 1); }

  /// Measured virtual time of `plan` for a session joining a server whose
  /// links and sockets carry the level's in-flight load.
  static double MeasureUnderLoad(core::System* system,
                                 const plan::QuerySpec& spec,
                                 const plan::HetPlan& plan, int in_flight) {
    sim::Topology& topo = system->topology();
    const sim::VTime h = system->VirtualHorizon();
    for (int l = 0; l < topo.num_pcie_links(); ++l) {
      topo.pcie_link(l).ReserveDuration(BacklogSeconds(in_flight), 0.0, h);
    }
    std::vector<uint64_t> tokens;
    for (int s = 0; s < topo.num_sockets(); ++s) {
      tokens.push_back(topo.socket_dram(s).Register(kPhantomSession, h,
                                                    BacklogWorkers(in_flight)));
    }
    core::QueryExecutor executor(system);
    const core::QueryResult r = executor.ExecutePlan(
        spec, plan, core::QuerySession{system->NextQueryId(), h});
    for (int s = 0; s < topo.num_sockets(); ++s) {
      topo.socket_dram(s).Release(tokens[s]);
    }
    EXPECT_TRUE(r.status.ok()) << spec.name << ": " << r.status.ToString();
    return r.status.ok() ? r.modeled_seconds : -1.0;
  }

  static double EstimateUnderLoad(core::System* system,
                                  const plan::QuerySpec& spec,
                                  const plan::HetPlan& plan, int in_flight) {
    plan::PlanCoster::Options opts;
    opts.pack_block_rows = system->blocks().options().block_bytes / 8;
    opts.link_backlog.assign(system->topology().num_pcie_links(),
                             BacklogSeconds(in_flight));
    opts.socket_backlog_workers.assign(system->topology().num_sockets(),
                                       BacklogWorkers(in_flight));
    plan::PlanCoster coster(spec, system->catalog(), system->topology(), opts);
    const auto cost = coster.Cost(plan);
    EXPECT_TRUE(cost.ok()) << cost.status().ToString();
    return cost.ok() ? cost.value().total : -1.0;
  }
};

TEST_P(CosterUnderLoadTest, EstimatedOrderingMatchesMeasuredOrdering) {
  const int in_flight = GetParam();
  TestEnv env(60'000);
  const auto spec = env.ssb->Query(1, 1);
  const sim::Topology& topo = env.system->topology();

  ExecPolicy cpu_pol = TestEnv::Tune(ExecPolicy::CpuOnly(3));
  cpu_pol.load_balance = false;
  ExecPolicy gpu_pol = TestEnv::Tune(ExecPolicy::GpuOnly());
  gpu_pol.load_balance = false;
  const plan::HetPlan cpu_plan = plan::BuildHetPlan(spec, cpu_pol, topo);
  const plan::HetPlan gpu_plan = plan::BuildHetPlan(spec, gpu_pol, topo);
  const plan::HetPlan uva_plan =
      plan::BuildHetPlan(spec, ExecPolicy::Bare(sim::DeviceType::kGpu), topo);

  // The matrix: the DMA-heavy GPU plan and the UVA plan each ordered against
  // the link-immune CPU plan, estimated vs measured under the same load.
  const struct {
    const char* name;
    const plan::HetPlan* a;
    const plan::HetPlan* b;
  } kPairs[] = {{"cpu-vs-gpu", &cpu_plan, &gpu_plan},
                {"cpu-vs-uva", &cpu_plan, &uva_plan}};
  for (const auto& pair : kPairs) {
    const double est_a =
        EstimateUnderLoad(env.system.get(), spec, *pair.a, in_flight);
    const double est_b =
        EstimateUnderLoad(env.system.get(), spec, *pair.b, in_flight);
    const double meas_a =
        MeasureUnderLoad(env.system.get(), spec, *pair.a, in_flight);
    const double meas_b =
        MeasureUnderLoad(env.system.get(), spec, *pair.b, in_flight);
    ASSERT_GT(est_a, 0);
    ASSERT_GT(meas_a, 0);
    EXPECT_EQ(est_a < est_b, meas_a < meas_b)
        << pair.name << " at " << in_flight << " in flight: est " << est_a
        << " vs " << est_b << ", measured " << meas_a << " vs " << meas_b;
  }

  // At 2+ sessions of backlog the link-bound plans lose to the CPU plan in
  // both the estimate and the measurement — the steering the scheduler's
  // OptimizeAt(load signal) relies on, now covering UVA plans too.
  const double est_cpu =
      EstimateUnderLoad(env.system.get(), spec, cpu_plan, in_flight);
  const double est_uva =
      EstimateUnderLoad(env.system.get(), spec, uva_plan, in_flight);
  const double meas_cpu =
      MeasureUnderLoad(env.system.get(), spec, cpu_plan, in_flight);
  const double meas_uva =
      MeasureUnderLoad(env.system.get(), spec, uva_plan, in_flight);
  EXPECT_LT(est_cpu, est_uva);
  EXPECT_LT(meas_cpu, meas_uva);
}

INSTANTIATE_TEST_SUITE_P(InFlight, CosterUnderLoadTest, ::testing::Values(2, 4),
                         [](const auto& info) {
                           return "sessions" + std::to_string(info.param);
                         });

TEST(PlanCosterTest, RejectsMalformedPlans) {
  TestEnv env(5'000);
  const auto spec = env.ssb->Query(1, 1);
  plan::PlanCoster coster(spec, env.system->catalog(), env.system->topology());
  plan::HetPlan broken = plan::BuildHetPlan(
      spec, TestEnv::Tune(ExecPolicy::CpuOnly(2)), env.system->topology());
  broken.root = -1;
  EXPECT_FALSE(coster.Cost(broken).ok());
}

/// Estimate-quality core: the coster must order fused vs split the same way
/// the measured virtual time does, under deterministic (round-robin) routing.
void CheckFusedVsSplitOrdering(core::System* system, const plan::QuerySpec& spec) {
  ExecPolicy fused = TestEnv::Tune(ExecPolicy::Hybrid(3));
  fused.load_balance = false;
  ExecPolicy split = fused;
  split.split_probe_stage = true;

  const plan::HetPlan fused_plan =
      plan::BuildHetPlan(spec, fused, system->topology());
  const plan::HetPlan split_plan =
      plan::BuildHetPlan(spec, split, system->topology());

  const double est_fused = EstimateFor(system, spec, fused_plan);
  const double est_split = EstimateFor(system, spec, split_plan);
  const double meas_fused = Measure(system, spec, fused_plan);
  const double meas_split = Measure(system, spec, split_plan);
  ASSERT_GT(est_fused, 0);
  ASSERT_GT(meas_fused, 0);
  EXPECT_EQ(est_fused < est_split, meas_fused < meas_split)
      << spec.name << ": est " << est_fused << " vs " << est_split
      << ", measured " << meas_fused << " vs " << meas_split;
}

TEST(PlanCosterTest, FusedVsSplitOrderingSmallBuildSides) {
  // Default test dimensions: cache-resident build sides.
  TestEnv env(20'000);
  CheckFusedVsSplitOrdering(env.system.get(), env.ssb->Query(3, 1));
  CheckFusedVsSplitOrdering(env.system.get(), env.ssb->Query(1, 1));
}

TEST(PlanCosterTest, FusedVsSplitOrderingLargeBuildSides) {
  // Skewed SSB cardinalities: dimension tables rivaling the fact table, so
  // hash tables leave the near class and the build phase dominates.
  SkewEnv env(/*lineorder_rows=*/8'000, /*customer_rows=*/30'000,
              /*part_rows=*/30'000);
  CheckFusedVsSplitOrdering(env.system.get(), env.ssb->Query(3, 1));
  CheckFusedVsSplitOrdering(env.system.get(), env.ssb->Query(2, 1));
}

TEST(PlanOptimizerTest, ExecuteOptimizedMatchesReference) {
  TestEnv env(10'000);
  core::QueryExecutor executor(env.system.get());
  const auto spec = env.ssb->Query(3, 2);
  plan::OptimizeResult explain;
  const auto result = executor.ExecuteOptimized(
      spec, TestEnv::Tune(ExecPolicy::Hybrid(3)), &explain);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.rows, env.Reference(spec));
  EXPECT_FALSE(explain.ranked.empty());
  EXPECT_FALSE(explain.ToString().empty());
}

TEST(PlanOptimizerTest, EnumeratorRespectsBaseConstraints) {
  TestEnv env(5'000);
  const auto spec = env.ssb->Query(1, 2);

  // CPU-only base: no candidate may place work on a GPU.
  const auto cpu_cands = plan::EnumeratePlans(
      spec, TestEnv::Tune(ExecPolicy::CpuOnly(3)), env.system->topology());
  ASSERT_FALSE(cpu_cands.empty());
  for (const auto& cand : cpu_cands) {
    for (const auto& node : cand.plan.nodes) {
      EXPECT_NE(node.device, sim::DeviceType::kGpu) << cand.label;
    }
  }

  // Bare base: the shape is pinned, no search.
  const auto bare = plan::EnumeratePlans(
      spec, ExecPolicy::Bare(sim::DeviceType::kCpu), env.system->topology());
  EXPECT_EQ(bare.size(), 1u);

  // Hybrid base: fused and split shapes, multiple placements.
  const auto het_cands = plan::EnumeratePlans(
      spec, TestEnv::Tune(ExecPolicy::Hybrid(3)), env.system->topology());
  EXPECT_GT(het_cands.size(), 6u);
  bool has_split = false;
  for (const auto& cand : het_cands) has_split |= cand.policy.split_probe_stage;
  EXPECT_TRUE(has_split);
}

// --------------------------------------------------------------------------
// Acceptance criterion: on the full 13-query SSB matrix the optimizer's
// picked plan is never worse than 1.2x the measured-best candidate.
// --------------------------------------------------------------------------

class OptimizerAccuracyTest : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  static TestEnv* env() {
    static TestEnv* instance = new TestEnv(20'000);
    return instance;
  }
};

TEST_P(OptimizerAccuracyTest, PickedPlanWithin1_2xOfMeasuredBest) {
  const auto [flight, idx] = GetParam();
  const auto spec = env()->ssb->Query(flight, idx);
  core::QueryExecutor executor(env()->system.get());

  plan::OptimizeResult opt;
  ASSERT_TRUE(
      executor.Optimize(spec, TestEnv::Tune(ExecPolicy::Hybrid(3)), &opt).ok());
  ASSERT_FALSE(opt.ranked.empty());

  double best_measured = -1;
  double picked_measured = -1;
  for (size_t i = 0; i < opt.ranked.size(); ++i) {
    const double t =
        Measure(env()->system.get(), spec, opt.ranked[i].candidate.plan);
    ASSERT_GT(t, 0) << opt.ranked[i].candidate.label;
    if (i == 0) picked_measured = t;
    if (best_measured < 0 || t < best_measured) best_measured = t;
  }
  EXPECT_LE(picked_measured, 1.2 * best_measured)
      << spec.name << ": picked " << opt.best().label << " at "
      << picked_measured << "s vs measured best " << best_measured << "s\n"
      << opt.ToString();
}

std::vector<std::pair<int, int>> AllSsbQueries() {
  std::vector<std::pair<int, int>> qs;
  for (int f = 1; f <= 4; ++f) {
    for (int i = 1; i <= ssb::Ssb::FlightSize(f); ++i) qs.push_back({f, i});
  }
  return qs;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, OptimizerAccuracyTest,
                         ::testing::ValuesIn(AllSsbQueries()),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param.first) +
                                  std::to_string(info.param.second);
                         });

}  // namespace
}  // namespace hetex
