// Plan-mutation property/fuzz test: seeded random mutations of enumerated
// HetPlans — placement flips, router-policy perturbations, DOP changes,
// segmentation-granularity changes (the PR 4 GPU-granularity-clamp class of
// bug), UVA flips and channel-capacity changes — must either
//
//   (a) fail ValidateHetPlan with a message naming the offending node (and
//       rule), or
//   (b) reach the executor and come back as a Status — ok or a descriptive
//       error — without crashing, aborting or corrupting the process; and
//
// semantics-preserving ("benign") mutations that execute successfully must
// produce exactly the reference rows. This locks in the whole class of
// "mutated plan reaches deep runtime machinery and aborts" bugs: the
// GPU-granularity clamp (coarse blocks used to crash the mem-move), probe
// units without a hash-table replica, duplicate build replicas, UVA edges fed
// by device-resident producers, and placements naming devices the server
// does not have.
//
// CI runs the three pinned seeds below; FUZZ_ITERS scales the mutation count
// per seed for longer local soaks (default small in CI).

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "plan/enumerator.h"
#include "plan/het_plan.h"
#include "test_util.h"

namespace hetex::plan {
namespace {

using test::FuzzIters;
using test::TestEnv;

/// Applies one random mutation to `plan`. Returns false when the drawn
/// mutation found no applicable node (caller redraws). `benign` is cleared
/// for mutations that may legally change the result rows (e.g. routing every
/// block to every consumer duplicates data).
bool Mutate(Rng& rng, const sim::Topology& topo, HetPlan* plan, bool* benign,
            std::string* trace) {
  using Kind = HetOpNode::Kind;
  auto pick = [&](auto&& pred) -> int {
    std::vector<int> ids;
    for (size_t i = 0; i < plan->nodes.size(); ++i) {
      if (pred(plan->nodes[i])) ids.push_back(static_cast<int>(i));
    }
    if (ids.empty()) return -1;
    return ids[rng.Uniform(ids.size())];
  };
  auto random_device = [&]() {
    // In-range devices only: out-of-range placements are covered by the
    // lowering's own bounds check (tested in graph_builder_test), and the
    // contract here is validate-or-execute, not abort-on-bad-index.
    if (topo.num_gpus() > 0 && rng.NextBool(0.5)) {
      return sim::DeviceId::Gpu(static_cast<int>(rng.Uniform(topo.num_gpus())));
    }
    return sim::DeviceId::Cpu(static_cast<int>(rng.Uniform(topo.num_sockets())));
  };

  switch (rng.Uniform(7)) {
    case 0: {  // placement flip: retarget one instance of one span
      const int id = pick([](const HetOpNode& n) { return !n.placement.empty(); });
      if (id < 0) return false;
      HetOpNode& n = plan->node(id);
      const size_t slot = rng.Uniform(n.placement.size());
      n.placement[slot] = random_device();
      *trace += " flip(node " + std::to_string(id) + " slot " +
                std::to_string(slot) + " -> " + n.placement[slot].ToString() + ")";
      return true;
    }
    case 1: {  // router policy perturbation
      const int id = pick([](const HetOpNode& n) { return n.kind == Kind::kRouter; });
      if (id < 0) return false;
      HetOpNode& n = plan->node(id);
      static const RouterPolicy kPolicies[] = {
          RouterPolicy::kRoundRobin, RouterPolicy::kLoadBalance,
          RouterPolicy::kHash, RouterPolicy::kBroadcast, RouterPolicy::kUnion};
      const RouterPolicy next = kPolicies[rng.Uniform(5)];
      // Broadcast duplicates data flow (and un-broadcasting a build router
      // leaves partial hash tables): rows may legally change.
      if (n.policy == RouterPolicy::kBroadcast || next == RouterPolicy::kBroadcast) {
        *benign = false;
      }
      n.policy = next;
      *trace += " policy(node " + std::to_string(id) + " -> " +
                RouterPolicyName(next) + ")";
      return true;
    }
    case 2: {  // segmentation granularity, including the coarse clamp regime
      const int id =
          pick([](const HetOpNode& n) { return n.kind == Kind::kSegmenter; });
      if (id < 0) return false;
      static const uint64_t kRows[] = {512, 4096, 1ull << 17, 1ull << 20};
      plan->node(id).block_rows = kRows[rng.Uniform(4)];
      *trace += " granularity(node " + std::to_string(id) + " -> " +
                std::to_string(plan->node(id).block_rows) + ")";
      return true;
    }
    case 3: {  // DOP up: clone one instance of a parallel span
      const int id = pick([](const HetOpNode& n) {
        return !n.placement.empty() && n.kind != Kind::kGather;
      });
      if (id < 0) return false;
      HetOpNode& n = plan->node(id);
      n.placement.push_back(n.placement[rng.Uniform(n.placement.size())]);
      n.dop = static_cast<int>(n.placement.size());
      *trace += " dop+(node " + std::to_string(id) + ")";
      return true;
    }
    case 4: {  // DOP down
      const int id =
          pick([](const HetOpNode& n) { return n.placement.size() > 1; });
      if (id < 0) return false;
      HetOpNode& n = plan->node(id);
      n.placement.pop_back();
      n.dop = static_cast<int>(n.placement.size());
      *trace += " dop-(node " + std::to_string(id) + ")";
      return true;
    }
    case 5: {  // UVA flip on a device crossing
      const int id =
          pick([](const HetOpNode& n) { return n.kind == Kind::kCpu2Gpu; });
      if (id < 0) return false;
      HetOpNode& n = plan->node(id);
      n.uva = !n.uva;
      *trace += " uva(node " + std::to_string(id) + " -> " +
                (n.uva ? "on" : "off") + ")";
      return true;
    }
    default: {  // channel capacity (router queue depth / backpressure)
      static const uint64_t kCaps[] = {2, 4, 64};
      plan->channel_capacity = kCaps[rng.Uniform(3)];
      *trace += " chan(" + std::to_string(plan->channel_capacity) + ")";
      return true;
    }
  }
}

class PlanFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanFuzzTest, MutatedPlansValidateOrExecute) {
  Rng rng(GetParam());
  TestEnv env(10'000);
  core::QueryExecutor executor(env.system.get());
  const sim::Topology& topo = env.system->topology();

  const std::vector<std::pair<int, int>> kPool = {{1, 1}, {2, 1}, {3, 1}, {4, 1}};
  std::map<std::string, std::vector<std::vector<int64_t>>> reference;
  std::map<std::string, std::vector<PlanCandidate>> candidates;
  for (const auto& [flight, idx] : kPool) {
    const QuerySpec spec = env.ssb->Query(flight, idx);
    reference[spec.name] = env.Reference(spec);
    candidates[spec.name] =
        EnumeratePlans(spec, TestEnv::Tune(ExecPolicy::Hybrid(3)), topo);
    ASSERT_FALSE(candidates[spec.name].empty()) << spec.name;
  }

  int validated_failures = 0;
  int executed_ok = 0;
  int executed_error = 0;
  // 40 is the smallest round count at which every pinned seed exercises both
  // arms of the contract (some rejections AND some executions).
  const int iters = FuzzIters(40);
  for (int iter = 0; iter < iters; ++iter) {
    const auto [flight, idx] = kPool[rng.Uniform(kPool.size())];
    const QuerySpec spec = env.ssb->Query(flight, idx);
    const auto& cands = candidates[spec.name];
    HetPlan plan = cands[rng.Uniform(cands.size())].plan;  // copy to mutate

    bool benign = true;
    std::string trace;
    const int n_mutations = 1 + static_cast<int>(rng.Uniform(3));
    for (int m = 0; m < n_mutations;) {
      if (Mutate(rng, topo, &plan, &benign, &trace)) ++m;
    }

    const Status valid = ValidateHetPlan(plan);
    if (!valid.ok()) {
      // (a) Rejected: the message names the offending node (and the broken
      // rule for the §3.3 converter rules).
      ++validated_failures;
      EXPECT_NE(valid.ToString().find("node "), std::string::npos)
          << "seed " << GetParam() << " iter " << iter
          << ": rejection does not name a node: " << valid.ToString();
      continue;
    }

    // (b) Validated: the plan must lower and execute — or surface a Status —
    // without crashing. Whatever happens, the system must stay usable.
    const core::QueryResult r = executor.ExecutePlan(spec, plan);
    if (r.status.ok()) {
      ++executed_ok;
      if (benign) {
        EXPECT_EQ(r.rows, reference[spec.name])
            << "seed " << GetParam() << " iter " << iter << " " << spec.name
            << ": semantics-preserving mutation changed the result;"
            << trace << "\n" << plan.ToString();
      }
    } else {
      ++executed_error;
      EXPECT_FALSE(r.status.ToString().empty());
    }
    EXPECT_EQ(env.system->hts().NumTables(r.query_id), 0);
  }

  // The mutation space genuinely exercises both arms of the contract: some
  // mutations execute, and some are rejected by validation (holds at every
  // pinned seed; a mutation space that stops producing invalid plans would
  // make the named-node property above vacuous).
  EXPECT_GT(executed_ok, 0) << "no mutated plan executed";
  EXPECT_GT(validated_failures, 0) << "no mutated plan was rejected";

  // The system survived the whole campaign: a clean query still runs.
  const QuerySpec spec = env.ssb->Query(1, 1);
  const core::QueryResult sane =
      executor.Execute(spec, TestEnv::Tune(ExecPolicy::Hybrid(3)));
  ASSERT_TRUE(sane.status.ok()) << sane.status.ToString();
  EXPECT_EQ(sane.rows, reference[spec.name]);
}

INSTANTIATE_TEST_SUITE_P(PinnedSeeds, PlanFuzzTest,
                         ::testing::Values(0xFEEDull, 1337ull, 20260729ull),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace hetex::plan
