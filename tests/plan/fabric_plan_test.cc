// Fabric-aware plan search: the enumerator's per-GPU build pinnings and
// asymmetric split shapes on multi-GPU topologies, and the clean degradation
// of the whole planning stack on a GPU-less (CPU-only) fabric.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/executor.h"
#include "plan/enumerator.h"
#include "plan/optimizer.h"
#include "sim/topology.h"
#include "test_util.h"

namespace hetex {
namespace {

using test::TestEnv;

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

TEST(FabricPlanTest, EnumeratorEmitsPerGpuPinnedAndAsymCandidates) {
  TestEnv env(20'000);
  const sim::Topology topo(sim::Topology::ScaleOutOptions(4));
  const auto spec = env.ssb->Query(3, 1);
  const auto cands = plan::EnumeratePlans(
      spec, TestEnv::Tune(plan::ExecPolicy::Hybrid(4)), topo);
  ASSERT_FALSE(cands.empty());
  // Every single GPU of the 4-GPU fabric appears as a pinned build placement.
  for (const char* pin : {"/g0", "/g1", "/g2", "/g3"}) {
    EXPECT_TRUE(std::any_of(cands.begin(), cands.end(),
                            [&](const plan::PlanCandidate& c) {
                              return EndsWith(c.label, pin);
                            }))
        << "no candidate pinned to " << pin;
  }
  // And the asymmetric split shape (CPU-only filter stage, mixed join stage).
  EXPECT_TRUE(std::any_of(cands.begin(), cands.end(),
                          [](const plan::PlanCandidate& c) {
                            return c.label.find("-asym") != std::string::npos;
                          }));
}

TEST(FabricPlanTest, NoGpuTopologyEnumeratesOnlyCpuShapes) {
  TestEnv env(20'000);
  const sim::Topology topo(sim::Topology::ScaleOutOptions(0));
  const auto spec = env.ssb->Query(3, 1);
  const auto cands = plan::EnumeratePlans(
      spec, TestEnv::Tune(plan::ExecPolicy::Hybrid(4)), topo);
  ASSERT_FALSE(cands.empty());
  for (const auto& c : cands) {
    EXPECT_EQ(c.label.rfind("cpu/", 0), 0u) << c.label;
  }
}

TEST(FabricPlanTest, GpuPlacedPolicyOnNoGpuTopologyIsANamedError) {
  TestEnv env(20'000, /*sockets=*/2, /*gpus=*/0);
  const auto spec = env.ssb->Query(1, 1);
  // Direct execution: the named InvalidArgument, not a layout abort.
  const core::QueryResult r =
      env.Run(spec, TestEnv::Tune(plan::ExecPolicy::GpuOnly()));
  ASSERT_FALSE(r.status.ok());
  EXPECT_NE(r.status.ToString().find("no-GPU"), std::string::npos)
      << r.status.ToString();
  // Optimizer path: the empty candidate space is named the same way.
  core::QueryExecutor executor(env.system.get());
  plan::OptimizeResult opt;
  const Status st =
      executor.Optimize(spec, TestEnv::Tune(plan::ExecPolicy::GpuOnly()), &opt);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("no-GPU"), std::string::npos) << st.ToString();
}

TEST(FabricPlanTest, CpuOnlyQueryRunsCorrectlyOnGpuLessTopology) {
  TestEnv env(20'000, /*sockets=*/2, /*gpus=*/0);
  const auto spec = env.ssb->Query(1, 1);
  const core::QueryResult r =
      env.Run(spec, TestEnv::Tune(plan::ExecPolicy::CpuOnly(3)));
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows, env.Reference(spec));
}

TEST(FabricPlanTest, OptimizerDegradesToCpuCandidatesWithoutGpus) {
  TestEnv env(20'000, /*sockets=*/2, /*gpus=*/0);
  const auto spec = env.ssb->Query(2, 1);
  core::QueryExecutor executor(env.system.get());
  plan::OptimizeResult opt;
  const Status st =
      executor.Optimize(spec, TestEnv::Tune(plan::ExecPolicy::Hybrid(3)), &opt);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_FALSE(opt.ranked.empty());
  for (const auto& rc : opt.ranked) {
    EXPECT_EQ(rc.candidate.label.rfind("cpu/", 0), 0u) << rc.candidate.label;
  }
  const core::QueryResult r = executor.ExecutePlan(spec, opt.best().plan);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rows, env.Reference(spec));
}

}  // namespace
}  // namespace hetex
