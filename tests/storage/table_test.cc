#include "storage/table.h"

#include <gtest/gtest.h>

#include "memory/memory_manager.h"
#include "sim/topology.h"

namespace hetex::storage {
namespace {

TEST(Dictionary, OrderPreservingCodes) {
  Dictionary d({"banana", "apple", "cherry"});
  EXPECT_EQ(d.size(), 3);
  EXPECT_LT(d.Code("apple"), d.Code("banana"));
  EXPECT_LT(d.Code("banana"), d.Code("cherry"));
  EXPECT_EQ(d.Value(d.Code("banana")), "banana");
}

TEST(Dictionary, Deduplicates) {
  Dictionary d({"x", "y", "x"});
  EXPECT_EQ(d.size(), 2);
}

TEST(Dictionary, RangeBoundsForStringPredicates) {
  // The Q2.2-style translation: BETWEEN 'b' AND 'd' -> code range.
  Dictionary d({"a", "b", "c", "d", "e"});
  EXPECT_EQ(d.LowerBound("b"), d.Code("b"));
  EXPECT_EQ(d.UpperBound("d"), d.Code("d") + 1);
  EXPECT_EQ(d.LowerBound("bb"), d.Code("c"));  // absent value: next code
}

class TableTest : public ::testing::Test {
 protected:
  TableTest() : topo_(sim::Topology::Options{}), mem_(topo_) {}

  std::unique_ptr<Table> MakeTable(uint64_t rows) {
    auto t = std::make_unique<Table>("t");
    Column* a = t->AddColumn("a", ColType::kInt32);
    Column* b = t->AddColumn("b", ColType::kInt64);
    for (uint64_t i = 0; i < rows; ++i) {
      a->Append(static_cast<int64_t>(i));
      b->Append(static_cast<int64_t>(i * 10));
    }
    return t;
  }

  sim::Topology topo_;
  memory::MemoryRegistry mem_;
};

TEST_F(TableTest, ColumnAccessors) {
  auto t = MakeTable(10);
  EXPECT_EQ(t->rows(), 10u);
  EXPECT_EQ(t->num_columns(), 2);
  EXPECT_EQ(t->ColumnIndex("b"), 1);
  EXPECT_EQ(t->column("a").width(), 4u);
  EXPECT_EQ(t->column("b").width(), 8u);
  EXPECT_EQ(t->column("b").At(3), 30);
  EXPECT_EQ(t->column("a").bytes(), 40u);
}

TEST_F(TableTest, PlaceSplitsRowsAcrossNodes) {
  auto t = MakeTable(101);
  ASSERT_TRUE(t->Place({topo_.socket(0).mem, topo_.socket(1).mem}, &mem_).ok());
  ASSERT_TRUE(t->placed());
  ASSERT_EQ(t->chunks().size(), 2u);
  EXPECT_EQ(t->chunks()[0].rows + t->chunks()[1].rows, 101u);
  EXPECT_EQ(t->chunks()[0].node, topo_.socket(0).mem);
  EXPECT_EQ(t->chunks()[1].node, topo_.socket(1).mem);
  EXPECT_EQ(t->chunks()[1].row_begin, t->chunks()[0].rows);
}

TEST_F(TableTest, PlacedDataMatchesStaging) {
  auto t = MakeTable(100);
  ASSERT_TRUE(t->Place({topo_.socket(0).mem, topo_.socket(1).mem}, &mem_).ok());
  for (const auto& chunk : t->chunks()) {
    const auto* a = reinterpret_cast<const int32_t*>(chunk.col_data[0]);
    const auto* b = reinterpret_cast<const int64_t*>(chunk.col_data[1]);
    for (uint64_t r = 0; r < chunk.rows; ++r) {
      EXPECT_EQ(a[r], static_cast<int32_t>(chunk.row_begin + r));
      EXPECT_EQ(b[r], static_cast<int64_t>((chunk.row_begin + r) * 10));
    }
  }
}

TEST_F(TableTest, RePlaceMovesAndFreesOldChunks) {
  auto t = MakeTable(50);
  ASSERT_TRUE(t->Place({topo_.socket(0).mem}, &mem_).ok());
  const uint64_t used_host = mem_.manager(topo_.socket(0).mem).used();
  EXPECT_GT(used_host, 0u);
  ASSERT_TRUE(t->Place({topo_.gpu(0).mem}, &mem_).ok());
  EXPECT_EQ(mem_.manager(topo_.socket(0).mem).used(), 0u);
  EXPECT_GT(mem_.manager(topo_.gpu(0).mem).used(), 0u);
  EXPECT_EQ(t->chunks()[0].node, topo_.gpu(0).mem);
}

TEST_F(TableTest, PlaceFailsWhenCapacityExceeded) {
  sim::Topology::Options small;
  small.gpu_capacity = 512;  // tiny device memory
  sim::Topology topo(small);
  memory::MemoryRegistry mem(topo);
  auto t = MakeTable(1000);
  EXPECT_FALSE(t->Place({topo.gpu(0).mem}, &mem).ok());
  EXPECT_FALSE(t->placed());
}

TEST_F(TableTest, PinnedFlagPropagates) {
  auto t = MakeTable(10);
  ASSERT_TRUE(t->Place({topo_.socket(0).mem}, &mem_, /*pinned=*/false).ok());
  EXPECT_FALSE(t->pinned());
}

TEST_F(TableTest, DropStagingKeepsChunks) {
  auto t = MakeTable(64);
  ASSERT_TRUE(t->Place({topo_.socket(0).mem}, &mem_).ok());
  t->DropStaging();
  EXPECT_EQ(t->column("a").rows(), 0u);  // staging gone
  EXPECT_TRUE(t->placed());
  EXPECT_EQ(t->chunks()[0].rows, 64u);   // placed data intact
  EXPECT_EQ(t->column("a").width(), 4u); // schema intact
}

TEST_F(TableTest, ColumnSetBytes) {
  auto t = MakeTable(100);
  EXPECT_EQ(t->ColumnSetBytes({"a"}), 400u);
  EXPECT_EQ(t->ColumnSetBytes({"a", "b"}), 400u + 800u);
}

TEST_F(TableTest, ColumnStatsExactOnSmallTables) {
  auto t = MakeTable(500);  // under the sample bound: full scan, exact stats
  const ColumnStats a = t->column_stats(t->ColumnIndex("a"));
  EXPECT_EQ(a.min, 0);
  EXPECT_EQ(a.max, 499);
  EXPECT_EQ(a.distinct, 500u);
  EXPECT_EQ(a.sampled, 500u);
}

TEST_F(TableTest, ColumnStatsSeeSmallDomains) {
  auto t = std::make_unique<Table>("dom");
  Column* c = t->AddColumn("c", ColType::kInt32);
  for (uint64_t i = 0; i < 1000; ++i) c->Append(static_cast<int64_t>(i % 7));
  const ColumnStats s = t->column_stats(0);
  EXPECT_EQ(s.distinct, 7u);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 6);
}

TEST_F(TableTest, SampleRowsVisitsBoundedStride) {
  auto t = MakeTable(1000);
  uint64_t visited = 0;
  const uint64_t n = t->SampleRows(100, [&](uint64_t) { ++visited; });
  EXPECT_EQ(n, visited);
  EXPECT_GT(n, 0u);
  EXPECT_LE(n, 100u);
}

TEST_F(TableTest, StatsUnavailableAfterDropStaging) {
  auto t = MakeTable(64);
  ASSERT_TRUE(t->Place({topo_.socket(0).mem}, &mem_).ok());
  t->DropStaging();
  EXPECT_EQ(t->column_stats(0).sampled, 0u);
  EXPECT_EQ(t->SampleRows(16, [](uint64_t) {}), 0u);
}

TEST(Catalog, CreateAndLookup) {
  Catalog catalog;
  Table* t = catalog.CreateTable("foo");
  EXPECT_EQ(catalog.Get("foo"), t);
  EXPECT_EQ(catalog.Get("bar"), nullptr);
  EXPECT_EQ(&catalog.at("foo"), t);
}

}  // namespace
}  // namespace hetex::storage
