#include <gtest/gtest.h>

#include "test_util.h"

namespace hetex {
namespace {

using plan::ExecPolicy;
using test::TestEnv;

TEST(EndToEnd, Q11CpuOnlyMatchesReference) {
  TestEnv env;
  const auto spec = env.ssb->Query(1, 1);
  const auto expected = env.Reference(spec);
  const auto result = env.Run(spec, TestEnv::Tune(ExecPolicy::CpuOnly(2)));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.rows, expected);
  EXPECT_GT(result.modeled_seconds, 0.0);
}

TEST(EndToEnd, Q11GpuOnlyMatchesReference) {
  TestEnv env;
  const auto spec = env.ssb->Query(1, 1);
  const auto expected = env.Reference(spec);
  const auto result = env.Run(spec, TestEnv::Tune(ExecPolicy::GpuOnly()));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.rows, expected);
}

TEST(EndToEnd, Q11HybridMatchesReference) {
  TestEnv env;
  const auto spec = env.ssb->Query(1, 1);
  const auto expected = env.Reference(spec);
  const auto result = env.Run(spec, TestEnv::Tune(ExecPolicy::Hybrid()));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.rows, expected);
}

TEST(EndToEnd, Q21GroupByHybridMatchesReference) {
  TestEnv env;
  const auto spec = env.ssb->Query(2, 1);
  const auto expected = env.Reference(spec);
  const auto result = env.Run(spec, TestEnv::Tune(ExecPolicy::Hybrid()));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.rows, expected);
}

TEST(EndToEnd, BareCpuMatchesReference) {
  TestEnv env;
  const auto spec = env.ssb->Query(1, 2);
  const auto expected = env.Reference(spec);
  const auto result =
      env.Run(spec, TestEnv::Tune(ExecPolicy::Bare(sim::DeviceType::kCpu)));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.rows, expected);
}

TEST(EndToEnd, BareGpuUvaMatchesReference) {
  TestEnv env;
  const auto spec = env.ssb->Query(1, 2);
  const auto expected = env.Reference(spec);
  const auto result =
      env.Run(spec, TestEnv::Tune(ExecPolicy::Bare(sim::DeviceType::kGpu)));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.rows, expected);
}

}  // namespace
}  // namespace hetex
