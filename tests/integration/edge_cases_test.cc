#include <gtest/gtest.h>

#include "test_util.h"

namespace hetex {
namespace {

using plan::ExecPolicy;
using test::TestEnv;

TEST(EdgeCases, FilterSelectingNothingYieldsIdentityRow) {
  TestEnv env(5'000);
  plan::QuerySpec q;
  q.name = "empty";
  q.fact_table = "lineorder";
  q.fact_filter = plan::Gt(plan::Col("lo_discount"), plan::Lit(1000));  // never
  q.aggs.push_back({plan::Col("lo_revenue"), jit::AggFunc::kSum, "rev"});
  q.aggs.push_back({nullptr, jit::AggFunc::kCount, "cnt"});
  const auto expected = env.Reference(q);
  for (const auto& policy : {ExecPolicy::CpuOnly(2), ExecPolicy::GpuOnly(),
                             ExecPolicy::Hybrid(2)}) {
    const auto r = env.Run(q, TestEnv::Tune(policy));
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.rows, expected);
    EXPECT_EQ(r.rows[0][0], 0);  // SUM identity
    EXPECT_EQ(r.rows[0][1], 0);  // COUNT identity
  }
}

TEST(EdgeCases, BuildFilterEliminatingEveryDimRowYieldsEmptyGroups) {
  TestEnv env(5'000);
  plan::QuerySpec q;
  q.name = "empty-dim";
  q.fact_table = "lineorder";
  q.joins.push_back({"supplier", plan::Gt(plan::Col("s_suppkey"), plan::Lit(1 << 30)),
                     "s_suppkey", {"s_nation"}, "lo_suppkey"});
  q.group_by = {plan::Col("s_nation")};
  q.aggs.push_back({plan::Col("lo_revenue"), jit::AggFunc::kSum, "rev"});
  q.expected_groups = 64;
  const auto expected = env.Reference(q);
  EXPECT_TRUE(expected.empty());
  const auto r = env.Run(q, TestEnv::Tune(ExecPolicy::Hybrid(2)));
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.rows.empty());
}

TEST(EdgeCases, MinMaxAggregatesAcrossDevices) {
  TestEnv env(10'000);
  plan::QuerySpec q;
  q.name = "minmax";
  q.fact_table = "lineorder";
  q.aggs.push_back({plan::Col("lo_extendedprice"), jit::AggFunc::kMin, "lo"});
  q.aggs.push_back({plan::Col("lo_extendedprice"), jit::AggFunc::kMax, "hi"});
  const auto expected = env.Reference(q);
  for (const auto& policy :
       {ExecPolicy::CpuOnly(3), ExecPolicy::GpuOnly({1}), ExecPolicy::Hybrid(1)}) {
    const auto r = env.Run(q, TestEnv::Tune(policy));
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.rows, expected);
  }
}

TEST(EdgeCases, ArithmeticInGroupKeysAndAggregates) {
  TestEnv env(10'000);
  plan::QuerySpec q;
  q.name = "exprs";
  q.fact_table = "lineorder";
  q.joins.push_back({"date", nullptr, "d_datekey", {"d_year"}, "lo_orderdate"});
  // Group by a computed key; aggregate a computed value.
  q.group_by = {plan::Sub(plan::Col("d_year"), plan::Lit(1992))};
  q.aggs.push_back({plan::Mul(plan::Col("lo_extendedprice"),
                              plan::Sub(plan::Lit(100), plan::Col("lo_discount"))),
                    jit::AggFunc::kSum, "weighted"});
  q.expected_groups = 16;
  const auto expected = env.Reference(q);
  const auto r = env.Run(q, TestEnv::Tune(ExecPolicy::Hybrid(2)));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows, expected);
}

TEST(EdgeCases, BackToBackQueriesOnOneSystem) {
  // Virtual-time resources reset per query: the second run must not queue
  // behind the first one's reservations (regression: PCIe link clock reuse).
  TestEnv env(10'000);
  const auto spec = env.ssb->Query(1, 1);
  const auto r1 = env.Run(spec, TestEnv::Tune(ExecPolicy::GpuOnly()));
  const auto r2 = env.Run(spec, TestEnv::Tune(ExecPolicy::GpuOnly()));
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  EXPECT_NEAR(r1.modeled_seconds, r2.modeled_seconds,
              0.2 * r1.modeled_seconds);
}

TEST(EdgeCases, SingleGpuHybridUsesRemoteSocketBlocks) {
  // One GPU + CPU workers: blocks from both sockets reach the GPU (the paper
  // notes remote-socket blocks interfere; functionally they must still be
  // correct).
  TestEnv env(15'000);
  const auto spec = env.ssb->Query(1, 2);
  const auto expected = env.Reference(spec);
  const auto r = env.Run(spec, TestEnv::Tune(ExecPolicy::Hybrid(1, {0})));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows, expected);
}

TEST(EdgeCases, DivisionByZeroSurfacesAsQueryStatus) {
  // A zero divisor mid-stream must surface as QueryResult::status (not UB and
  // not an abort), propagated from the JIT tier through the worker instance.
  TestEnv env(2'000);
  auto* t = env.system->catalog().CreateTable("divtab");
  auto* a = t->AddColumn("a", storage::ColType::kInt64);
  auto* d = t->AddColumn("d", storage::ColType::kInt64);
  for (int i = 0; i < 1000; ++i) {
    a->Append(i);
    d->Append(i == 500 ? 0 : 2);
  }
  HETEX_CHECK_OK(t->Place(env.system->HostNodes(), &env.system->memory()));

  plan::QuerySpec q;
  q.name = "div-zero";
  q.fact_table = "divtab";
  q.aggs.push_back({plan::Expr::Bin(plan::Expr::BinOp::kDiv, plan::Col("a"),
                                    plan::Col("d")),
                    jit::AggFunc::kSum, "s"});
  q.expected_groups = 1;
  const auto r = env.Run(q, TestEnv::Tune(ExecPolicy::CpuOnly(2)));
  EXPECT_FALSE(r.status.ok());
  EXPECT_NE(r.status.message().find("division by zero"), std::string::npos)
      << r.status.ToString();
}

TEST(EdgeCases, StaticZeroDivisorRejectedAsStatus) {
  // A literal-zero divisor is rejected by ConvertToMachineCode validation and
  // must surface as QueryResult::status (not abort the worker process).
  TestEnv env(2'000);
  plan::QuerySpec q;
  q.name = "div-zero-const";
  q.fact_table = "lineorder";
  q.aggs.push_back({plan::Expr::Bin(plan::Expr::BinOp::kDiv,
                                    plan::Col("lo_revenue"), plan::Lit(0)),
                    jit::AggFunc::kSum, "s"});
  q.expected_groups = 1;
  const auto r = env.Run(q, TestEnv::Tune(ExecPolicy::CpuOnly(1)));
  EXPECT_FALSE(r.status.ok());
  EXPECT_NE(r.status.message().find("divisor register can hold a zero constant"),
            std::string::npos)
      << r.status.ToString();
}

TEST(EdgeCases, WideGroupByNearCapacity) {
  // Group count close to expected_groups exercises the agg-table headroom.
  TestEnv env(20'000);
  plan::QuerySpec q;
  q.name = "wide";
  q.fact_table = "lineorder";
  q.joins.push_back({"customer", nullptr, "c_custkey", {"c_city"}, "lo_custkey"});
  q.joins.push_back({"supplier", nullptr, "s_suppkey", {"s_city"}, "lo_suppkey"});
  q.group_by = {plan::Col("c_city"), plan::Col("s_city")};
  q.aggs.push_back({nullptr, jit::AggFunc::kCount, "cnt"});
  q.expected_groups = 250 * 250;
  const auto expected = env.Reference(q);
  const auto r = env.Run(q, TestEnv::Tune(ExecPolicy::Hybrid(2)));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows, expected);
  EXPECT_GT(r.rows.size(), 1000u);  // genuinely wide
}

}  // namespace
}  // namespace hetex
