#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace hetex {
namespace {

using plan::ExecPolicy;
using test::TestEnv;

/// Property tests: randomized query shapes and execution configurations must
/// always agree with the reference evaluator, and results must be invariant to
/// how the plan is parallelized.

/// Random scalar-aggregate queries over lineorder with random filters.
class RandomQueryTest : public ::testing::TestWithParam<int> {
 protected:
  static TestEnv* env() {
    static TestEnv* instance = new TestEnv(20'000);
    return instance;
  }
};

plan::QuerySpec RandomSpec(Rng& rng) {
  using namespace plan;  // NOLINT
  QuerySpec q;
  q.name = "random";
  q.fact_table = "lineorder";

  // Random conjunction of range predicates on fact columns.
  const char* numeric_cols[] = {"lo_quantity", "lo_discount", "lo_extendedprice"};
  ExprPtr filter;
  const int n_preds = static_cast<int>(rng.Uniform(3));
  for (int i = 0; i < n_preds; ++i) {
    const char* col = numeric_cols[rng.Uniform(3)];
    const int64_t lo = rng.UniformRange(0, 30);
    ExprPtr pred = rng.NextBool(0.5) ? Gt(Col(col), Lit(lo))
                                     : Between(Col(col), lo, lo + 20);
    filter = filter == nullptr ? pred : And(filter, pred);
  }
  q.fact_filter = filter;

  // 0-2 joins against random dimensions.
  const int n_joins = static_cast<int>(rng.Uniform(3));
  if (n_joins >= 1) {
    q.joins.push_back({"supplier",
                       rng.NextBool(0.5)
                           ? Eq(Col("s_region"), Lit(rng.UniformRange(0, 4)))
                           : nullptr,
                       "s_suppkey",
                       {"s_nation"},
                       "lo_suppkey"});
  }
  if (n_joins >= 2) {
    q.joins.push_back({"date", nullptr, "d_datekey", {"d_year"}, "lo_orderdate"});
  }

  // Random aggregates (always at least one).
  q.aggs.push_back({Col("lo_revenue"), jit::AggFunc::kSum, "rev"});
  if (rng.NextBool(0.5)) {
    q.aggs.push_back({nullptr, jit::AggFunc::kCount, "cnt"});
  }
  if (rng.NextBool(0.4)) {
    q.aggs.push_back({Col("lo_extendedprice"), jit::AggFunc::kMax, "maxp"});
  }
  if (rng.NextBool(0.4)) {
    q.aggs.push_back({Col("lo_supplycost"), jit::AggFunc::kMin, "minc"});
  }

  // Sometimes group by a joined attribute.
  if (n_joins >= 2 && rng.NextBool(0.5)) {
    q.group_by = {Col("d_year")};
    if (n_joins >= 1 && rng.NextBool(0.5)) q.group_by.push_back(Col("s_nation"));
    q.expected_groups = 1024;
  }
  return q;
}

TEST_P(RandomQueryTest, EngineMatchesReferenceAcrossModes) {
  Rng rng(GetParam() * 1337 + 17);
  const auto spec = RandomSpec(rng);
  const auto expected = env()->Reference(spec);
  for (const auto& policy :
       {ExecPolicy::CpuOnly(static_cast<int>(1 + rng.Uniform(4))),
        ExecPolicy::GpuOnly(), ExecPolicy::Hybrid(2)}) {
    const auto result = env()->Run(spec, TestEnv::Tune(policy));
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.rows, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest, ::testing::Range(0, 12));

/// Parallelism invariance: the same query under every DOP yields identical
/// results (the encapsulation property: operators are parallelism-agnostic).
class DopSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(DopSweepTest, ResultsInvariantToDop) {
  static TestEnv* env = new TestEnv(15'000);
  const auto spec = env->ssb->Query(2, 1);
  static const auto expected = env->Reference(spec);
  const auto result =
      env->Run(spec, TestEnv::Tune(ExecPolicy::CpuOnly(GetParam())));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.rows, expected);
}

INSTANTIATE_TEST_SUITE_P(Dops, DopSweepTest, ::testing::Values(1, 2, 3, 4));

TEST(ParallelismInvariance, RoundRobinEqualsLoadBalance) {
  TestEnv env(15'000);
  const auto spec = env.ssb->Query(3, 2);
  const auto expected = env.Reference(spec);
  for (bool lb : {false, true}) {
    auto policy = TestEnv::Tune(ExecPolicy::Hybrid(2));
    policy.load_balance = lb;
    const auto result = env.Run(spec, policy);
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.rows, expected);
  }
}

TEST(ParallelismInvariance, SplitProbeStageEqualsFused) {
  TestEnv env(15'000);
  const auto spec = env.ssb->Query(2, 3);
  const auto expected = env.Reference(spec);
  auto policy = TestEnv::Tune(ExecPolicy::Hybrid(2));
  policy.split_probe_stage = true;
  const auto result = env.Run(spec, policy);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.rows, expected);
}

TEST(ParallelismInvariance, BlockSizeDoesNotChangeResults) {
  TestEnv env(15'000);
  const auto spec = env.ssb->Query(1, 3);
  const auto expected = env.Reference(spec);
  for (uint64_t block_rows : {512u, 2048u, 16384u}) {
    auto policy = ExecPolicy::Hybrid(2);
    policy.block_rows = block_rows;
    const auto result = env.Run(spec, policy);
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.rows, expected) << "block_rows=" << block_rows;
  }
}

TEST(DataPlacement, GpuResidentFactMatchesReference) {
  TestEnv env(15'000);
  const auto spec = env.ssb->Query(1, 1);
  const auto expected = env.Reference(spec);
  ASSERT_TRUE(env.system->catalog()
                  .at("lineorder")
                  .Place(env.system->GpuNodes(), &env.system->memory())
                  .ok());
  auto policy = TestEnv::Tune(ExecPolicy::GpuOnly());
  policy.data_on_gpu = true;
  const auto result = env.Run(spec, policy);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.rows, expected);
}

TEST(VirtualTime, ModeledTimeDeterministicForRoundRobin) {
  // With deterministic routing and a single worker, the virtual-time result
  // must be bit-identical across executions (wall-clock interleavings of the
  // gather queue must not leak in).
  TestEnv env(10'000);
  const auto spec = env.ssb->Query(1, 1);
  auto policy = TestEnv::Tune(ExecPolicy::CpuOnly(1));
  policy.load_balance = false;
  const auto r1 = env.Run(spec, policy);
  const auto r2 = env.Run(spec, policy);
  EXPECT_DOUBLE_EQ(r1.modeled_seconds, r2.modeled_seconds);
}

TEST(VirtualTime, MoreWorkersNotSlower) {
  TestEnv env(40'000);
  const auto spec = env.ssb->Query(1, 1);
  const auto t1 =
      env.Run(spec, TestEnv::Tune(ExecPolicy::CpuOnly(1))).modeled_seconds;
  const auto t4 =
      env.Run(spec, TestEnv::Tune(ExecPolicy::CpuOnly(4))).modeled_seconds;
  EXPECT_LT(t4, t1 * 1.05);
}

TEST(ResourceHygiene, AllStagingBlocksReturnAfterHybridQuery) {
  // End-to-end leak check: every arena block acquired during a hybrid query
  // (DMA staging, packs, partials) must be back in its arena afterwards.
  TestEnv env(20'000);
  const auto spec = env.ssb->Query(3, 1);
  const auto result = env.Run(spec, TestEnv::Tune(ExecPolicy::Hybrid()));
  ASSERT_TRUE(result.status.ok());
  env.system->blocks().FlushReleases();
  for (int n = 0; n < env.system->topology().num_mem_nodes(); ++n) {
    EXPECT_EQ(env.system->blocks().manager(n).in_use(), 0u) << "node " << n;
  }
}

TEST(ResourceHygiene, StateMemoryFreedAfterQuery) {
  TestEnv env(10'000);
  const auto spec = env.ssb->Query(2, 1);
  const uint64_t used_before =
      env.system->memory().manager(env.system->topology().gpu(0).mem).used();
  auto r = env.Run(spec, TestEnv::Tune(ExecPolicy::GpuOnly()));
  ASSERT_TRUE(r.status.ok());
  // Hash tables + accumulators allocated on the GPU node are freed at query end.
  EXPECT_EQ(
      env.system->memory().manager(env.system->topology().gpu(0).mem).used(),
      used_before);
}

TEST(VirtualTime, BareModeSkipsRouterInit) {
  TestEnv env(5'000);
  const auto spec = env.ssb->Query(1, 1);
  const auto bare = env.Run(spec, TestEnv::Tune(ExecPolicy::Bare(sim::DeviceType::kCpu)));
  const auto hetex = env.Run(spec, TestEnv::Tune(ExecPolicy::CpuOnly(1)));
  // HetExchange at DOP 1 pays the ~10 ms router init on tiny inputs (Fig. 8).
  EXPECT_GT(hetex.modeled_seconds,
            bare.modeled_seconds +
                env.system->cost_model().router_init_latency * 0.9);
}

}  // namespace
}  // namespace hetex
