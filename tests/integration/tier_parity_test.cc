#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "jit/codegen.h"
#include "jit/kernel_cache.h"
#include "jit/vectorizer.h"
#include "test_util.h"

namespace hetex {
namespace {

/// Differential tier suite: every SSB query, fused and split, on CPU and GPU
/// placements, executed through the row interpreter (tier 0 forced), the
/// vectorized batch backend (tier 1 forced) and the native codegen backend
/// (tier 2: auto tiering with a kernel cache attached), asserting identical
/// query results AND identical CostStats across all three — the invariant that
/// makes the faster tiers safe: the simulation is unchanged, only the harness
/// is faster.
///
/// Placements are deterministic (DOP-1 stages, a single GPU simulated by one
/// worker thread, round-robin routing) so the runs see identical block
/// streams and hash-table layouts; any stats divergence is a tier bug, not
/// scheduling noise.
struct ParityEnv {
  explicit ParityEnv(jit::TierPolicy policy, bool codegen = false) {
    core::System::Options opts;
    opts.topology.num_sockets = 2;
    opts.topology.cores_per_socket = 2;
    opts.topology.num_gpus = 1;
    opts.topology.gpu_sim_threads = 1;  // sequential logical threads
    opts.topology.host_capacity_per_socket = 4ull << 30;
    opts.topology.gpu_capacity = 1ull << 30;
    opts.blocks.block_bytes = 64 << 10;
    opts.blocks.host_arena_blocks = 256;
    opts.blocks.gpu_arena_blocks = 128;
    opts.tier_policy = policy;
    opts.codegen.enabled = codegen;
    if (codegen) {
      // Synchronous compiles into a per-process directory: every pipeline the
      // matrix touches really executes natively (no pending-tier serving), and
      // parallel test runs cannot race on each other's objects.
      opts.codegen.async = false;
      opts.codegen.kernel_dir = KernelDir();
    }
    system = std::make_unique<core::System>(opts);

    ssb::Ssb::Options ssb_opts;
    ssb_opts.lineorder_rows = 20'000;
    ssb_opts.scale = 0.002;
    ssb = std::make_unique<ssb::Ssb>(ssb_opts, &system->catalog());
    for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
      HETEX_CHECK_OK(
          system->catalog().at(name).Place(system->HostNodes(), &system->memory()));
    }
  }

  static const std::string& KernelDir() {
    static const std::string dir = [] {
      const std::string d = (std::filesystem::temp_directory_path() /
                             ("hetex-parity-kernels-" +
                              std::to_string(static_cast<long>(::getpid()))))
                                .string();
      std::filesystem::remove_all(d);
      return d;
    }();
    return dir;
  }

  core::QueryResult Run(const plan::QuerySpec& spec, plan::ExecPolicy policy) {
    policy.block_rows = 4096;
    policy.load_balance = false;  // deterministic round-robin routing
    core::QueryExecutor executor(system.get());
    return executor.Execute(spec, policy);
  }

  std::unique_ptr<core::System> system;
  std::unique_ptr<ssb::Ssb> ssb;
};

struct ParityCase {
  int flight;
  int idx;
  int mode;  // 0 cpu-fused, 1 cpu-split, 2 gpu-fused, 3 gpu-split
};

class TierParityTest : public ::testing::TestWithParam<ParityCase> {
 protected:
  static ParityEnv* interp_env() {
    static ParityEnv* env = new ParityEnv(jit::TierPolicy::kForceInterpreter);
    return env;
  }
  static ParityEnv* vec_env() {
    static ParityEnv* env = new ParityEnv(jit::TierPolicy::kForceVectorized);
    return env;
  }
  static ParityEnv* native_env() {
    static ParityEnv* env =
        new ParityEnv(jit::TierPolicy::kAuto, /*codegen=*/true);
    return env;
  }

  static plan::ExecPolicy PolicyFor(int mode) {
    plan::ExecPolicy policy = (mode == 0 || mode == 1)
                                  ? plan::ExecPolicy::CpuOnly(1)
                                  : plan::ExecPolicy::GpuOnly({0});
    policy.split_probe_stage = (mode == 1 || mode == 3);
    return policy;
  }
};

TEST_P(TierParityTest, IdenticalResultsAndCostStats) {
  const auto& c = GetParam();
  const auto spec_i = interp_env()->ssb->Query(c.flight, c.idx);
  const auto spec_v = vec_env()->ssb->Query(c.flight, c.idx);
  const auto spec_n = native_env()->ssb->Query(c.flight, c.idx);
  const plan::ExecPolicy policy = PolicyFor(c.mode);

  const jit::VectorizerCounters vbefore = jit::GetVectorizerCounters();
  const jit::CodegenCounters cbefore = jit::GetCodegenCounters();
  const auto interp = interp_env()->Run(spec_i, policy);
  const auto vec = vec_env()->Run(spec_v, policy);
  const auto native = native_env()->Run(spec_n, policy);
  const jit::VectorizerCounters vafter = jit::GetVectorizerCounters();
  const jit::CodegenCounters cafter = jit::GetCodegenCounters();

  ASSERT_TRUE(interp.status.ok()) << interp.status.ToString();
  ASSERT_TRUE(vec.status.ok()) << vec.status.ToString();
  ASSERT_TRUE(native.status.ok()) << native.status.ToString();

  // Identical results.
  EXPECT_EQ(interp.rows, vec.rows) << spec_i.name;
  EXPECT_EQ(interp.rows, native.rows) << spec_i.name;

  // Identical CostStats, field by field, tier 0 vs tier 1 vs tier 2.
  for (const auto* other : {&vec, &native}) {
    EXPECT_EQ(interp.stats.tuples, other->stats.tuples);
    EXPECT_EQ(interp.stats.ops, other->stats.ops);
    EXPECT_EQ(interp.stats.bytes_read, other->stats.bytes_read);
    EXPECT_EQ(interp.stats.bytes_written, other->stats.bytes_written);
    EXPECT_EQ(interp.stats.atomics, other->stats.atomics);
    EXPECT_EQ(interp.stats.near_accesses, other->stats.near_accesses);
    EXPECT_EQ(interp.stats.mid_accesses, other->stats.mid_accesses);
    EXPECT_EQ(interp.stats.far_accesses, other->stats.far_accesses);
  }

  // The suite is not vacuous: nothing silently fell back — neither the
  // vectorizer (tiers 1 and 2 both lower through it first) nor the codegen
  // backend (every SSB span shape must prove compilable, and no compile may
  // fail).
  EXPECT_EQ(vafter.fallbacks, vbefore.fallbacks) << "unexpected vectorizer fallback";
  EXPECT_EQ(cafter.fallbacks, cbefore.fallbacks) << "unexpected codegen fallback";
}

std::vector<ParityCase> AllCases() {
  std::vector<ParityCase> cases;
  const int flights[4] = {3, 3, 4, 3};
  for (int f = 1; f <= 4; ++f) {
    for (int i = 1; i <= flights[f - 1]; ++i) {
      for (int mode = 0; mode < 4; ++mode) cases.push_back({f, i, mode});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<ParityCase>& info) {
  static const char* kModes[4] = {"CpuFused", "CpuSplit", "GpuFused", "GpuSplit"};
  return "Q" + std::to_string(info.param.flight) + std::to_string(info.param.idx) +
         kModes[info.param.mode];
}

INSTANTIATE_TEST_SUITE_P(FullSsbMatrix, TierParityTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

/// The auto-tier environment really exercises the vectorized backend across
/// the matrix: the fused/split SSB pipelines all lower (no fallbacks), and at
/// least one program per device kind was vectorized.
TEST(TierParitySummary, VectorizedTierWasExercised) {
  auto* env = new ParityEnv(jit::TierPolicy::kAuto);
  jit::ResetVectorizerCounters();
  auto result = env->Run(env->ssb->Query(3, 1), plan::ExecPolicy::CpuOnly(1));
  ASSERT_TRUE(result.status.ok());
  const jit::VectorizerCounters c = jit::GetVectorizerCounters();
  EXPECT_GT(c.vectorized, 0u);
  EXPECT_EQ(c.fallbacks, 0u);
  const auto cache = env->system->program_cache().counters(sim::DeviceType::kCpu);
  EXPECT_GT(cache.misses, 0u);
  delete env;
}

/// The native environment really executed compiled kernels: sources were
/// generated, objects installed, and blocks dispatched through dlopen-ed entry
/// points — not silently served by a lower tier.
TEST(TierParitySummary, NativeTierWasExercised) {
  const jit::CodegenCounters before = jit::GetCodegenCounters();
  core::System::Options opts;
  opts.topology.num_sockets = 1;
  opts.topology.cores_per_socket = 2;
  opts.topology.num_gpus = 0;
  opts.codegen.enabled = true;
  opts.codegen.async = false;
  opts.codegen.kernel_dir = ParityEnv::KernelDir();
  auto system = std::make_unique<core::System>(opts);
  ssb::Ssb::Options ssb_opts;
  ssb_opts.lineorder_rows = 20'000;
  ssb_opts.scale = 0.002;
  ssb::Ssb ssb(ssb_opts, &system->catalog());
  for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
    HETEX_CHECK_OK(
        system->catalog().at(name).Place(system->HostNodes(), &system->memory()));
  }
  plan::ExecPolicy policy = plan::ExecPolicy::CpuOnly(1);
  policy.block_rows = 4096;
  core::QueryExecutor executor(system.get());
  auto result = executor.Execute(ssb.Query(2, 1), policy);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  const jit::CodegenCounters after = jit::GetCodegenCounters();
  EXPECT_GT(after.generated, before.generated);
  EXPECT_GT(after.native_invocations, before.native_invocations);
  EXPECT_EQ(after.fallbacks, before.fallbacks);
  // The kernel cache counters agree: every request was served resident, from
  // disk, or by a successful compile.
  const auto kc = system->kernel_cache()->counters();
  EXPECT_GT(kc.requests, 0u);
  EXPECT_EQ(kc.compile_failures, 0u);
}

}  // namespace
}  // namespace hetex
