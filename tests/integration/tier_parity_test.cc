#include <gtest/gtest.h>

#include "jit/vectorizer.h"
#include "test_util.h"

namespace hetex {
namespace {

/// Differential tier suite: every SSB query, fused and split, on CPU and GPU
/// placements, executed once through the row interpreter (tier 0 forced) and
/// once through the vectorized batch backend (auto tiering), asserting
/// identical query results AND identical CostStats — the invariant that makes
/// the vectorized tier safe: the simulation is unchanged, only the harness is
/// faster.
///
/// Placements are deterministic (DOP-1 stages, a single GPU simulated by one
/// worker thread, round-robin routing) so the two runs see identical block
/// streams and hash-table layouts; any stats divergence is a tier bug, not
/// scheduling noise.
struct ParityEnv {
  explicit ParityEnv(jit::TierPolicy policy) {
    core::System::Options opts;
    opts.topology.num_sockets = 2;
    opts.topology.cores_per_socket = 2;
    opts.topology.num_gpus = 1;
    opts.topology.gpu_sim_threads = 1;  // sequential logical threads
    opts.topology.host_capacity_per_socket = 4ull << 30;
    opts.topology.gpu_capacity = 1ull << 30;
    opts.blocks.block_bytes = 64 << 10;
    opts.blocks.host_arena_blocks = 256;
    opts.blocks.gpu_arena_blocks = 128;
    opts.tier_policy = policy;
    system = std::make_unique<core::System>(opts);

    ssb::Ssb::Options ssb_opts;
    ssb_opts.lineorder_rows = 20'000;
    ssb_opts.scale = 0.002;
    ssb = std::make_unique<ssb::Ssb>(ssb_opts, &system->catalog());
    for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
      HETEX_CHECK_OK(
          system->catalog().at(name).Place(system->HostNodes(), &system->memory()));
    }
  }

  core::QueryResult Run(const plan::QuerySpec& spec, plan::ExecPolicy policy) {
    policy.block_rows = 4096;
    policy.load_balance = false;  // deterministic round-robin routing
    core::QueryExecutor executor(system.get());
    return executor.Execute(spec, policy);
  }

  std::unique_ptr<core::System> system;
  std::unique_ptr<ssb::Ssb> ssb;
};

struct ParityCase {
  int flight;
  int idx;
  int mode;  // 0 cpu-fused, 1 cpu-split, 2 gpu-fused, 3 gpu-split
};

class TierParityTest : public ::testing::TestWithParam<ParityCase> {
 protected:
  static ParityEnv* interp_env() {
    static ParityEnv* env = new ParityEnv(jit::TierPolicy::kForceInterpreter);
    return env;
  }
  static ParityEnv* vec_env() {
    static ParityEnv* env = new ParityEnv(jit::TierPolicy::kAuto);
    return env;
  }

  static plan::ExecPolicy PolicyFor(int mode) {
    plan::ExecPolicy policy = (mode == 0 || mode == 1)
                                  ? plan::ExecPolicy::CpuOnly(1)
                                  : plan::ExecPolicy::GpuOnly({0});
    policy.split_probe_stage = (mode == 1 || mode == 3);
    return policy;
  }
};

TEST_P(TierParityTest, IdenticalResultsAndCostStats) {
  const auto& c = GetParam();
  const auto spec_i = interp_env()->ssb->Query(c.flight, c.idx);
  const auto spec_v = vec_env()->ssb->Query(c.flight, c.idx);
  const plan::ExecPolicy policy = PolicyFor(c.mode);

  const jit::VectorizerCounters before = jit::GetVectorizerCounters();
  const auto interp = interp_env()->Run(spec_i, policy);
  const auto vec = vec_env()->Run(spec_v, policy);
  const jit::VectorizerCounters after = jit::GetVectorizerCounters();

  ASSERT_TRUE(interp.status.ok()) << interp.status.ToString();
  ASSERT_TRUE(vec.status.ok()) << vec.status.ToString();

  // Identical results.
  EXPECT_EQ(interp.rows, vec.rows) << spec_i.name;

  // Identical CostStats, field by field.
  EXPECT_EQ(interp.stats.tuples, vec.stats.tuples);
  EXPECT_EQ(interp.stats.ops, vec.stats.ops);
  EXPECT_EQ(interp.stats.bytes_read, vec.stats.bytes_read);
  EXPECT_EQ(interp.stats.bytes_written, vec.stats.bytes_written);
  EXPECT_EQ(interp.stats.atomics, vec.stats.atomics);
  EXPECT_EQ(interp.stats.near_accesses, vec.stats.near_accesses);
  EXPECT_EQ(interp.stats.mid_accesses, vec.stats.mid_accesses);
  EXPECT_EQ(interp.stats.far_accesses, vec.stats.far_accesses);

  // The suite is not vacuous: the auto-tier run actually vectorized pipelines
  // (cache hits aside) and nothing silently fell back to the interpreter.
  EXPECT_EQ(after.fallbacks, before.fallbacks) << "unexpected vectorizer fallback";
}

std::vector<ParityCase> AllCases() {
  std::vector<ParityCase> cases;
  const int flights[4] = {3, 3, 4, 3};
  for (int f = 1; f <= 4; ++f) {
    for (int i = 1; i <= flights[f - 1]; ++i) {
      for (int mode = 0; mode < 4; ++mode) cases.push_back({f, i, mode});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<ParityCase>& info) {
  static const char* kModes[4] = {"CpuFused", "CpuSplit", "GpuFused", "GpuSplit"};
  return "Q" + std::to_string(info.param.flight) + std::to_string(info.param.idx) +
         kModes[info.param.mode];
}

INSTANTIATE_TEST_SUITE_P(FullSsbMatrix, TierParityTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

/// The auto-tier environment really exercises the vectorized backend across
/// the matrix: the fused/split SSB pipelines all lower (no fallbacks), and at
/// least one program per device kind was vectorized.
TEST(TierParitySummary, VectorizedTierWasExercised) {
  auto* env = new ParityEnv(jit::TierPolicy::kAuto);
  jit::ResetVectorizerCounters();
  auto result = env->Run(env->ssb->Query(3, 1), plan::ExecPolicy::CpuOnly(1));
  ASSERT_TRUE(result.status.ok());
  const jit::VectorizerCounters c = jit::GetVectorizerCounters();
  EXPECT_GT(c.vectorized, 0u);
  EXPECT_EQ(c.fallbacks, 0u);
  const auto cache = env->system->program_cache().counters(sim::DeviceType::kCpu);
  EXPECT_GT(cache.misses, 0u);
  delete env;
}

}  // namespace
}  // namespace hetex
