#include <gtest/gtest.h>

#include "test_util.h"

namespace hetex {
namespace {

using plan::ExecPolicy;
using test::TestEnv;

/// All 13 SSB queries under each execution policy, against the reference
/// evaluator. Parameterized over (flight, index, mode).
struct SsbCase {
  int flight;
  int idx;
  int mode;  // 0 cpu, 1 gpu, 2 hybrid, 3 hybrid with a split probe stage
};

class SsbQueryTest : public ::testing::TestWithParam<SsbCase> {
 protected:
  static TestEnv* env() {
    static TestEnv* instance = new TestEnv(30'000);
    return instance;
  }
};

TEST_P(SsbQueryTest, MatchesReference) {
  const auto& c = GetParam();
  const auto spec = env()->ssb->Query(c.flight, c.idx);
  const auto expected = env()->Reference(spec);
  ExecPolicy policy = c.mode == 0   ? ExecPolicy::CpuOnly(3)
                      : c.mode == 1 ? ExecPolicy::GpuOnly()
                                    : ExecPolicy::Hybrid(3);
  policy.split_probe_stage = c.mode == 3;
  const auto result = env()->Run(spec, TestEnv::Tune(policy));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.rows, expected) << spec.name;
  EXPECT_GT(result.modeled_seconds, 0.0);
}

std::vector<SsbCase> AllCases() {
  std::vector<SsbCase> cases;
  const int flights[4] = {3, 3, 4, 3};
  for (int f = 1; f <= 4; ++f) {
    for (int i = 1; i <= flights[f - 1]; ++i) {
      for (int mode = 0; mode < 4; ++mode) cases.push_back({f, i, mode});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<SsbCase>& info) {
  static const char* kModes[4] = {"Cpu", "Gpu", "Hybrid", "HybridSplit"};
  return "Q" + std::to_string(info.param.flight) + std::to_string(info.param.idx) +
         kModes[info.param.mode];
}

INSTANTIATE_TEST_SUITE_P(AllQueriesAllModes, SsbQueryTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(SsbData, GeneratorShape) {
  TestEnv env(5'000);
  auto& catalog = env.system->catalog();
  EXPECT_EQ(catalog.at("date").rows(), 7 * 365u);  // 7 years (no leap days)
  EXPECT_GE(catalog.at("lineorder").rows(), 5'000u);
  EXPECT_GT(catalog.at("customer").rows(), 0u);
  // Brand hierarchy: brand codes decode to category-consistent strings.
  const auto& brand_dict = env.ssb->brand_dict();
  EXPECT_EQ(brand_dict.size(), 1000);
  EXPECT_EQ(brand_dict.Value(brand_dict.Code("MFGR#2221")), "MFGR#2221");
}

TEST(SsbData, DictionariesTranslatePredicates) {
  TestEnv env(2'000);
  // Q2.2's range: padded brands make lexicographic order numeric.
  const auto& d = env.ssb->brand_dict();
  const int lo = d.Code("MFGR#2221");
  const int hi = d.Code("MFGR#2228");
  EXPECT_EQ(hi - lo, 7);
  for (int c = lo; c <= hi; ++c) {
    EXPECT_EQ(d.Value(c).substr(0, 7), "MFGR#22");
  }
}

TEST(SsbData, DeterministicAcrossRuns) {
  storage::Catalog c1, c2;
  ssb::Ssb::Options opts;
  opts.lineorder_rows = 2'000;
  ssb::Ssb s1(opts, &c1), s2(opts, &c2);
  const auto& l1 = c1.at("lineorder");
  const auto& l2 = c2.at("lineorder");
  ASSERT_EQ(l1.rows(), l2.rows());
  for (uint64_t r = 0; r < l1.rows(); r += 97) {
    EXPECT_EQ(l1.column("lo_revenue").At(r), l2.column("lo_revenue").At(r));
  }
}

TEST(SsbData, Q22FlaggedAsStringRange) {
  TestEnv env(2'000);
  EXPECT_TRUE(env.ssb->Query(2, 2).uses_string_range_predicate);
  EXPECT_FALSE(env.ssb->Query(2, 1).uses_string_range_predicate);
  EXPECT_FALSE(env.ssb->Query(4, 3).uses_string_range_predicate);
}

}  // namespace
}  // namespace hetex
