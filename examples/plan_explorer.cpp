// Plan explorer: prints the heterogeneity-aware plans (the paper's Fig. 1e /
// Fig. 2b artifacts) that the planner produces for an SSB query under different
// execution policies, validates them against the §3.3 converter rules, prints
// the physical graph GraphBuilder lowers each plan to — so plan and execution
// shape can be eyeballed for agreement — and compiles each span through the
// system's program cache, reporting the chosen JIT tier and the per-device
// cache hit/miss counters.
//
// Tiering goes up to tier 2 (native codegen) when the kernel cache is enabled:
// run with HETEX_KERNEL_DIR=<dir> (or HETEX_TIER2=1) to see spans tier up to
// "native (jit-compiled)" — and, on a second run against the same directory,
// "native (kernel cache disk hit)" with the program cache's disk-hit counter
// ticking instead of the compiler. Codegen fallbacks print their named reason
// inline on the span's tier line.
//
// It then runs the cost-based optimizer: the ranked candidate table shows each
// enumerated plan's *estimated* virtual-time cost next to its *measured*
// virtual time (every candidate is executed), with the picked plan marked.
//
// Both modes open with the full fabric: every socket and GPU, per-link
// type/bandwidth (PCIe, NVLink-class peer, inter-socket), peer adjacency, and
// the live per-link backlog a query anchored at the current horizon would see.
//
// Flags:
//   --json             machine-readable report on stdout: {"fabric": {...},
//                      "queries": [...]} (exits non-zero when a query yields
//                      no candidates/picked plan)
//   --queries 1.1,3.1  comma-separated SSB queries for the optimizer section
//                      (default: 3.1 in human mode, 1.1,3.1,4.2 in JSON mode)
//   --gpus N           build the system as an N-GPU scale-out fabric
//                      (Topology::ScaleOutOptions: fully-connected NVLink peer
//                      mesh + inter-socket link; N=0 exercises the CPU-only
//                      degradation) instead of the default paper server

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/compiler.h"
#include "core/executor.h"
#include "core/graph_builder.h"
#include "core/program_cache.h"
#include "core/scheduler.h"
#include "core/system.h"
#include "jit/kernel_cache.h"
#include "plan/het_plan.h"
#include "plan/optimizer.h"
#include "sim/topology.h"
#include "sim/vtime.h"
#include "ssb/ssb.h"

using namespace hetex;  // NOLINT — example brevity

namespace {

const char* TierName(jit::ExecTier tier) {
  switch (tier) {
    case jit::ExecTier::kInterpreter: return "0-interpreter";
    case jit::ExecTier::kVectorized: return "1-vectorized";
    case jit::ExecTier::kNative: return "2-native";
  }
  return "?";
}

/// Escapes a string for embedding in a JSON literal (tier reasons carry
/// compiler stderr, which has newlines and may quote paths).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Machine-readable fabric report: the same facts Topology::Describe prints —
/// sockets (DRAM rate + live worker backlog), GPUs, and every interconnect
/// link with its type, bandwidth and the backlog a session anchored at
/// `epoch` would queue behind.
void PrintFabricJson(const sim::Topology& topo, sim::VTime epoch) {
  std::printf("\"fabric\": {\"epoch\": %.9f,\n\"sockets\": [", epoch);
  for (int s = 0; s < topo.num_sockets(); ++s) {
    const auto& sock = topo.socket(s);
    std::printf("%s\n  {\"id\": %d, \"cores\": %d, \"mem_node\": %d, "
                "\"dram_gbps\": %.3f, \"active_workers\": %d}",
                s == 0 ? "" : ",", sock.id, sock.num_cores, sock.mem,
                topo.socket_dram(s).total_rate() / 1e9,
                topo.socket_dram(s).active_workers());
  }
  std::printf("\n],\n\"gpus\": [");
  for (int g = 0; g < topo.num_gpus(); ++g) {
    const auto& gpu = topo.gpu(g);
    std::printf("%s\n  {\"id\": %d, \"mem_node\": %d, \"socket\": %d, "
                "\"pcie_link\": %d}",
                g == 0 ? "" : ",", gpu.id, gpu.mem, gpu.socket, gpu.pcie_link);
  }
  std::printf("\n],\n\"links\": [");
  bool first = true;
  auto backlog = [&](const sim::BandwidthServer& link) {
    return sim::MaxT(0.0, link.free_at() - epoch);
  };
  for (int g = 0; g < topo.num_gpus(); ++g) {
    const auto& link = topo.pcie_link(topo.PcieLinkOf(g));
    std::printf("%s\n  {\"type\": \"pcie\", \"id\": %d, \"gpu\": %d, "
                "\"socket\": %d, \"gbps\": %.3f, \"backlog_s\": %.9f}",
                first ? "" : ",", topo.PcieLinkOf(g), g, topo.gpu(g).socket,
                link.rate() / 1e9, backlog(link));
    first = false;
  }
  for (int p = 0; p < topo.num_peer_links(); ++p) {
    const auto& info = topo.peer_link_info(p);
    std::printf("%s\n  {\"type\": \"peer\", \"id\": %d, \"gpu_a\": %d, "
                "\"gpu_b\": %d, \"gbps\": %.3f, \"backlog_s\": %.9f}",
                first ? "" : ",", info.id, info.gpu_a, info.gpu_b,
                topo.peer_link(p).rate() / 1e9, backlog(topo.peer_link(p)));
    first = false;
  }
  if (topo.has_inter_socket_link()) {
    std::printf("%s\n  {\"type\": \"inter_socket\", \"gbps\": %.3f, "
                "\"backlog_s\": %.9f}",
                first ? "" : ",", topo.inter_socket_link().rate() / 1e9,
                backlog(topo.inter_socket_link()));
  }
  std::printf("\n]},\n");
}

/// One span's live tier decision, for the human table and the JSON report.
struct SpanTier {
  std::string span;    // "build customer", "fact probe", ...
  std::string tier;    // TierName of the effective tier
  std::string reason;  // EffectiveTierReason(): tier line + any fallback reason
};

/// Compiles every span of a lowered plan through the system's per-device
/// program cache (as each of its worker instances would at Init) and prints the
/// tier ConvertToMachineCode picked plus the cache traffic per span.
void ReportSpanTiers(core::System& system, const core::GraphBuilder& builder,
                     const plan::QuerySpec& query,
                     std::vector<SpanTier>* out = nullptr, bool print = true) {
  const core::LoweredSpec& spec = builder.spec();
  core::QueryCompiler compiler(query, system.catalog(), system.cost_model());
  core::ProgramCache& cache = system.program_cache();

  auto report_stage = [&](const core::StageSpec& stage, const char* label,
                          const core::CompiledPipeline& pipeline) {
    const auto before_cpu = cache.counters(sim::DeviceType::kCpu);
    const auto before_gpu = cache.counters(sim::DeviceType::kGpu);
    std::shared_ptr<const jit::PipelineProgram> program;
    for (const auto& dev : stage.instances) {
      auto provider = system.MakeProvider(dev);
      auto r = cache.GetOrCompile(*provider, pipeline);
      if (!r.ok()) {
        if (print) {
          std::printf("  %s %s: compile failed: %s\n", label,
                      core::PipelineSpan::RoleName(stage.span.role),
                      r.status().ToString().c_str());
        }
        return;
      }
      program = r.value();
    }
    // Let background tier-2 compiles settle so the report shows the tier the
    // next block would actually execute at, not a transient "pending".
    if (system.kernel_cache() != nullptr) system.kernel_cache()->WaitIdle();
    const auto after_cpu = cache.counters(sim::DeviceType::kCpu);
    const auto after_gpu = cache.counters(sim::DeviceType::kGpu);
    const std::string span_name =
        std::string(label) + " " + core::PipelineSpan::RoleName(stage.span.role);
    if (out != nullptr) {
      out->push_back({span_name, TierName(program->EffectiveTier()),
                      program->EffectiveTierReason()});
    }
    if (print) {
      std::printf(
          "  %s x%zu: tier=%s (%s) cache[cpu +%llu hit/+%llu miss/+%llu disk, "
          "gpu +%llu hit/+%llu miss/+%llu disk]\n",
          span_name.c_str(), stage.instances.size(),
          TierName(program->EffectiveTier()),
          program->EffectiveTierReason().c_str(),
          static_cast<unsigned long long>(after_cpu.hits - before_cpu.hits),
          static_cast<unsigned long long>(after_cpu.misses - before_cpu.misses),
          static_cast<unsigned long long>(after_cpu.disk_hits - before_cpu.disk_hits),
          static_cast<unsigned long long>(after_gpu.hits - before_gpu.hits),
          static_cast<unsigned long long>(after_gpu.misses - before_gpu.misses),
          static_cast<unsigned long long>(after_gpu.disk_hits - before_gpu.disk_hits));
    }
  };

  if (print) std::printf("span tiers + program cache:\n");
  for (const auto& stage : spec.build_stages) {
    report_stage(stage, "build", compiler.CompileSpan(stage.span, nullptr));
  }
  // Fact stages compile through the same schema-threading path execution uses.
  std::vector<core::CompiledPipeline> pipelines;
  const Status st = builder.CompileFactPipelines(&compiler, &pipelines);
  if (!st.ok()) {
    if (print) std::printf("  fact chain: %s\n", st.ToString().c_str());
    return;
  }
  for (size_t i = 0; i < pipelines.size(); ++i) {
    report_stage(spec.fact_stages[i], "fact", pipelines[i]);
  }
}

/// Lowers the query under the hybrid policy and collects its spans' live tier
/// decisions (the JSON report's "spans" array).
std::vector<SpanTier> CollectSpanTiers(core::System& system,
                                       const plan::QuerySpec& query) {
  std::vector<SpanTier> tiers;
  const plan::HetPlan plan =
      plan::BuildHetPlan(query, plan::ExecPolicy::Hybrid(8), system.topology());
  if (!plan::ValidateHetPlan(plan).ok()) return tiers;
  core::GraphBuilder builder(&system, &plan);
  if (!builder.Analyze().ok()) return tiers;
  ReportSpanTiers(system, builder, query, &tiers, /*print=*/false);
  return tiers;
}

/// Serving-layer reuse decisions for one query, against a reuse-enabled
/// System (shared builds + result cache on): the first run builds and
/// publishes every join's shared hash tables, the second attaches to them;
/// the first scheduled submission misses the result cache (and populates
/// it), the second hits.
struct ReuseReport {
  int shared_builds_first = 0;    ///< joins built+published by run 1
  int shared_attaches_second = 0; ///< joins attached (not rebuilt) by run 2
  bool cache_hit_second = false;  ///< second submission answered from cache
  double miss_modeled_s = 0;
  double hit_modeled_s = 0;
};

ReuseReport CollectReuse(core::System& reuse_sys, const plan::QuerySpec& spec) {
  ReuseReport rep;
  core::QueryExecutor executor(&reuse_sys);
  const core::QueryResult r1 = executor.Execute(spec);
  const core::QueryResult r2 = executor.Execute(spec);
  if (r1.status.ok()) rep.shared_builds_first = r1.shared_builds;
  if (r2.status.ok()) rep.shared_attaches_second = r2.shared_attaches;
  core::QueryScheduler scheduler(&reuse_sys);
  const core::QueryResult miss = scheduler.Wait(scheduler.Submit(spec));
  const core::QueryResult hit = scheduler.Wait(scheduler.Submit(spec));
  if (miss.status.ok()) rep.miss_modeled_s = miss.modeled_seconds;
  if (hit.status.ok()) {
    rep.cache_hit_second = hit.cache_hit;
    rep.hit_modeled_s = hit.modeled_seconds;
  }
  return rep;
}

/// Optimizer section: enumerate → cost → rank, then execute every candidate to
/// put the measured virtual time next to the estimate. Returns false when the
/// candidate set is empty or no plan could be picked. `reuse_sys` is a
/// separate reuse-enabled System the serving-layer decisions are reported
/// against (the main system stays reuse-off, so candidate measurement is
/// undisturbed).
bool ReportOptimizer(core::System& system, core::System& reuse_sys,
                     const plan::QuerySpec& spec, bool json, bool first_json) {
  plan::ExecPolicy base = plan::ExecPolicy::Hybrid(8);
  base.block_rows = 4096;

  core::QueryExecutor executor(&system);
  plan::OptimizeResult opt;
  const Status st = executor.Optimize(spec, base, &opt);
  if (!st.ok() || opt.ranked.empty()) {
    if (json) {
      std::printf("%s{\"query\": \"%s\", \"error\": \"%s\"}", first_json ? "" : ",\n",
                  spec.name.c_str(), st.ToString().c_str());
    } else {
      std::printf("optimizer: %s\n", st.ToString().c_str());
    }
    return false;
  }

  struct Row {
    const plan::RankedCandidate* cand;
    double measured;
  };
  std::vector<Row> rows;
  double best_measured = -1;
  for (const auto& rc : opt.ranked) {
    const core::QueryResult r = executor.ExecutePlan(spec, rc.candidate.plan);
    const double measured = r.status.ok() ? r.modeled_seconds : -1;
    if (measured >= 0 && (best_measured < 0 || measured < best_measured)) {
      best_measured = measured;
    }
    rows.push_back({&rc, measured});
  }

  const ReuseReport reuse = CollectReuse(reuse_sys, spec);

  if (json) {
    std::printf("%s{\"query\": \"%s\", \"picked\": \"%s\",\n\"spans\": [",
                first_json ? "" : ",\n", spec.name.c_str(),
                opt.best().label.c_str());
    const std::vector<SpanTier> tiers = CollectSpanTiers(system, spec);
    for (size_t i = 0; i < tiers.size(); ++i) {
      std::printf("%s\n  {\"span\": \"%s\", \"tier\": \"%s\", \"reason\": \"%s\"}",
                  i == 0 ? "" : ",", JsonEscape(tiers[i].span).c_str(),
                  tiers[i].tier.c_str(), JsonEscape(tiers[i].reason).c_str());
    }
    std::printf("\n],\n\"candidates\": [");
    for (size_t i = 0; i < rows.size(); ++i) {
      std::printf("%s\n  {\"label\": \"%s\", \"estimated\": %.9f, "
                  "\"measured\": %.9f, \"chosen\": %s}",
                  i == 0 ? "" : ",", rows[i].cand->candidate.label.c_str(),
                  rows[i].cand->cost.total, rows[i].measured,
                  i == 0 ? "true" : "false");
    }
    std::printf("\n],\n\"reuse\": {\"shared_builds_first_run\": %d, "
                "\"shared_attaches_second_run\": %d, "
                "\"cache_hit_second_run\": %s, "
                "\"cache_miss_modeled_s\": %.9f, "
                "\"cache_hit_modeled_s\": %.9f}}",
                reuse.shared_builds_first, reuse.shared_attaches_second,
                reuse.cache_hit_second ? "true" : "false", reuse.miss_modeled_s,
                reuse.hit_modeled_s);
  } else {
    std::printf("=== optimizer: %s ===\n%s\n", spec.name.c_str(),
                opt.cards.ToString().c_str());
    std::printf("%-26s %12s %12s  %s\n", "candidate", "estimated", "measured",
                "");
    for (size_t i = 0; i < rows.size(); ++i) {
      std::printf("%-26s %12.6f %12.6f  %s%s\n",
                  rows[i].cand->candidate.label.c_str(),
                  rows[i].cand->cost.total, rows[i].measured,
                  i == 0 ? "<- picked" : "",
                  rows[i].measured >= 0 && rows[i].measured <= best_measured
                      ? " (measured best)"
                      : "");
    }
    std::printf("serving-layer reuse (shared builds + result cache on):\n");
    std::printf("  run 1: built+published %d shared hash table(s)\n",
                reuse.shared_builds_first);
    std::printf("  run 2: attached to %d shared hash table(s) (no rebuild)\n",
                reuse.shared_attaches_second);
    std::printf("  submit 1: result-cache miss, modeled %.6fs\n",
                reuse.miss_modeled_s);
    std::printf("  submit 2: result-cache %s, modeled %.6fs\n",
                reuse.cache_hit_second ? "hit" : "miss", reuse.hit_modeled_s);
    std::printf("\n");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string queries_arg;
  int num_gpus = -1;  // -1 = default paper server, >= 0 = scale-out fabric
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries_arg = argv[++i];
    } else if (std::strcmp(argv[i], "--gpus") == 0 && i + 1 < argc) {
      num_gpus = std::atoi(argv[++i]);
    }
  }
  if (queries_arg.empty()) queries_arg = json ? "1.1,3.1,4.2" : "3.1";

  core::System::Options sys_opts;
  if (num_gpus >= 0) {
    sys_opts.topology = sim::Topology::ScaleOutOptions(num_gpus);
  }
  core::System system(sys_opts);
  ssb::Ssb::Options opts;
  opts.lineorder_rows = 30'000;  // small but large enough to execute candidates
  ssb::Ssb ssb(opts, &system.catalog());
  for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
    const Status st =
        system.catalog().at(name).Place(system.HostNodes(), &system.memory());
    if (!st.ok()) {
      std::fprintf(stderr, "place %s: %s\n", name, st.ToString().c_str());
      return 1;
    }
  }

  // Second System with the serving-layer reuse knobs on; the reuse report runs
  // here so shared builds / cache insertions never perturb candidate timing on
  // the main (reuse-off) system.
  core::System::Options reuse_opts;
  reuse_opts.reuse.shared_builds = true;
  reuse_opts.reuse.result_cache = true;
  core::System reuse_sys(reuse_opts);
  ssb::Ssb reuse_ssb(opts, &reuse_sys.catalog());
  for (const char* name : {"lineorder", "date", "customer", "supplier", "part"}) {
    const Status st = reuse_sys.catalog().at(name).Place(reuse_sys.HostNodes(),
                                                         &reuse_sys.memory());
    if (!st.ok()) {
      std::fprintf(stderr, "place %s (reuse): %s\n", name, st.ToString().c_str());
      return 1;
    }
  }

  // Parse "f.i,f.i" into query specs; malformed tokens are reported, not fatal.
  std::vector<plan::QuerySpec> opt_queries;
  for (size_t pos = 0; pos < queries_arg.size();) {
    size_t comma = queries_arg.find(',', pos);
    if (comma == std::string::npos) comma = queries_arg.size();
    const std::string q = queries_arg.substr(pos, comma - pos);
    pos = comma + 1;
    int flight = 0, idx = 0;
    if (std::sscanf(q.c_str(), "%d.%d", &flight, &idx) != 2 || idx < 1 ||
        idx > ssb::Ssb::FlightSize(flight)) {
      std::fprintf(stderr, "skipping malformed query token '%s'\n", q.c_str());
      continue;
    }
    opt_queries.push_back(ssb.Query(flight, idx));
  }
  if (opt_queries.empty()) {
    std::fprintf(stderr, "no valid --queries; expected \"f.i,f.i\" (e.g. 3.1)\n");
    return 1;
  }

  if (json) {
    bool ok = true;
    std::printf("{");
    PrintFabricJson(system.topology(), system.VirtualHorizon());
    std::printf("\"queries\": [");
    for (size_t i = 0; i < opt_queries.size(); ++i) {
      ok = ReportOptimizer(system, reuse_sys, opt_queries[i], /*json=*/true,
                           i == 0) &&
           ok;
    }
    std::printf("]}\n");
    return ok ? 0 : 1;
  }

  std::printf("=== fabric (live backlog at the next query's epoch) ===\n%s\n",
              system.topology().Describe(system.VirtualHorizon()).c_str());

  const plan::QuerySpec spec = ssb.Query(3, 1);

  struct Config {
    const char* label;
    plan::ExecPolicy policy;
  };
  plan::ExecPolicy split = plan::ExecPolicy::Hybrid(8);
  split.split_probe_stage = true;

  for (const auto& [label, policy] : {
           Config{"CPU-only, 4 workers", plan::ExecPolicy::CpuOnly(4)},
           Config{"GPU-only, both GPUs", plan::ExecPolicy::GpuOnly()},
           Config{"Hybrid, 8 CPU workers + 2 GPUs", plan::ExecPolicy::Hybrid(8)},
           Config{"Hybrid, split probe stage (hash router + hash-pack)", split},
           Config{"Bare Proteus (no HetExchange), 1 GPU, UVA",
                  plan::ExecPolicy::Bare(sim::DeviceType::kGpu)},
       }) {
    // GPU-placed policies on a GPU-less fabric (--gpus 0) are the named
    // InvalidArgument the executor would surface, not a layout abort.
    const Status placed = plan::ValidatePolicyForTopology(policy, system.topology());
    if (!placed.ok()) {
      std::printf("=== %s ===\npolicy: %s\n\n", label, placed.ToString().c_str());
      continue;
    }
    const plan::HetPlan plan = plan::BuildHetPlan(spec, policy, system.topology());
    std::printf("=== %s ===\n%s", label, plan.ToString().c_str());
    const Status st = plan::ValidateHetPlan(plan);
    std::printf("validation: %s\n", st.ToString().c_str());
    if (!st.ok()) {
      // The executor refuses invalid plans before lowering; mirror that here.
      std::printf("lowering: skipped (plan failed validation)\n\n");
      continue;
    }

    core::GraphBuilder builder(&system, &plan);
    const Status lowered = builder.Analyze();
    if (lowered.ok()) {
      std::printf("%s", builder.spec().ToString().c_str());
      ReportSpanTiers(system, builder, spec);
      std::printf("\n");
    } else {
      std::printf("lowering: %s\n\n", lowered.ToString().c_str());
    }
  }

  bool ok = true;
  for (const auto& q : opt_queries) {
    ok = ReportOptimizer(system, reuse_sys, q, /*json=*/false, false) && ok;
  }
  return ok ? 0 : 1;
}
