// Plan explorer: prints the heterogeneity-aware plans (the paper's Fig. 1e /
// Fig. 2b artifacts) that the planner produces for an SSB query under different
// execution policies, validates them against the §3.3 converter rules, prints
// the physical graph GraphBuilder lowers each plan to — so plan and execution
// shape can be eyeballed for agreement — and compiles each span through the
// system's program cache, reporting the chosen JIT tier and the per-device
// cache hit/miss counters.

#include <cstdio>

#include "core/compiler.h"
#include "core/graph_builder.h"
#include "core/program_cache.h"
#include "core/system.h"
#include "plan/het_plan.h"
#include "ssb/ssb.h"

using namespace hetex;  // NOLINT — example brevity

namespace {

/// Compiles every span of a lowered plan through the system's per-device
/// program cache (as each of its worker instances would at Init) and prints the
/// tier ConvertToMachineCode picked plus the cache traffic per span.
void ReportSpanTiers(core::System& system, const core::GraphBuilder& builder,
                     const plan::QuerySpec& query) {
  const core::LoweredSpec& spec = builder.spec();
  core::QueryCompiler compiler(query, system.catalog(), system.cost_model());
  core::ProgramCache& cache = system.program_cache();

  auto report_stage = [&](const core::StageSpec& stage, const char* label,
                          const core::CompiledPipeline& pipeline) {
    const auto before_cpu = cache.counters(sim::DeviceType::kCpu);
    const auto before_gpu = cache.counters(sim::DeviceType::kGpu);
    std::string tier = "?";
    for (const auto& dev : stage.instances) {
      auto provider = system.MakeProvider(dev);
      auto r = cache.GetOrCompile(*provider, pipeline);
      if (!r.ok()) {
        std::printf("  %s %s: compile failed: %s\n", label,
                    core::PipelineSpan::RoleName(stage.span.role),
                    r.status().ToString().c_str());
        return;
      }
      tier = r.value()->tier_reason;
    }
    const auto after_cpu = cache.counters(sim::DeviceType::kCpu);
    const auto after_gpu = cache.counters(sim::DeviceType::kGpu);
    std::printf(
        "  %s %s x%zu: tier=%s cache[cpu +%llu hit/+%llu miss, gpu +%llu "
        "hit/+%llu miss]\n",
        label, core::PipelineSpan::RoleName(stage.span.role),
        stage.instances.size(), tier.c_str(),
        static_cast<unsigned long long>(after_cpu.hits - before_cpu.hits),
        static_cast<unsigned long long>(after_cpu.misses - before_cpu.misses),
        static_cast<unsigned long long>(after_gpu.hits - before_gpu.hits),
        static_cast<unsigned long long>(after_gpu.misses - before_gpu.misses));
  };

  std::printf("span tiers + program cache:\n");
  for (const auto& stage : spec.build_stages) {
    report_stage(stage, "build", compiler.CompileSpan(stage.span, nullptr));
  }
  // Fact stages compile through the same schema-threading path execution uses.
  std::vector<core::CompiledPipeline> pipelines;
  const Status st = builder.CompileFactPipelines(&compiler, &pipelines);
  if (!st.ok()) {
    std::printf("  fact chain: %s\n", st.ToString().c_str());
    return;
  }
  for (size_t i = 0; i < pipelines.size(); ++i) {
    report_stage(spec.fact_stages[i], "fact", pipelines[i]);
  }
}

}  // namespace

int main() {
  core::System system(core::System::Options{});
  ssb::Ssb::Options opts;
  opts.lineorder_rows = 1000;  // plans only; no execution
  ssb::Ssb ssb(opts, &system.catalog());

  const plan::QuerySpec spec = ssb.Query(3, 1);

  struct Config {
    const char* label;
    plan::ExecPolicy policy;
  };
  plan::ExecPolicy split = plan::ExecPolicy::Hybrid(8);
  split.split_probe_stage = true;

  for (const auto& [label, policy] : {
           Config{"CPU-only, 4 workers", plan::ExecPolicy::CpuOnly(4)},
           Config{"GPU-only, both GPUs", plan::ExecPolicy::GpuOnly()},
           Config{"Hybrid, 8 CPU workers + 2 GPUs", plan::ExecPolicy::Hybrid(8)},
           Config{"Hybrid, split probe stage (hash router + hash-pack)", split},
           Config{"Bare Proteus (no HetExchange), 1 GPU, UVA",
                  plan::ExecPolicy::Bare(sim::DeviceType::kGpu)},
       }) {
    const plan::HetPlan plan = plan::BuildHetPlan(spec, policy, system.topology());
    std::printf("=== %s ===\n%s", label, plan.ToString().c_str());
    const Status st = plan::ValidateHetPlan(plan);
    std::printf("validation: %s\n", st.ToString().c_str());
    if (!st.ok()) {
      // The executor refuses invalid plans before lowering; mirror that here.
      std::printf("lowering: skipped (plan failed validation)\n\n");
      continue;
    }

    core::GraphBuilder builder(&system, &plan);
    const Status lowered = builder.Analyze();
    if (lowered.ok()) {
      std::printf("%s", builder.spec().ToString().c_str());
      ReportSpanTiers(system, builder, spec);
      std::printf("\n");
    } else {
      std::printf("lowering: %s\n\n", lowered.ToString().c_str());
    }
  }
  return 0;
}
