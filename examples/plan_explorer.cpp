// Plan explorer: prints the heterogeneity-aware plans (the paper's Fig. 1e /
// Fig. 2b artifacts) that the planner produces for an SSB query under different
// execution policies, validates them against the §3.3 converter rules, and
// prints the physical graph GraphBuilder lowers each plan to — so plan and
// execution shape can be eyeballed for agreement.

#include <cstdio>

#include "core/graph_builder.h"
#include "core/system.h"
#include "plan/het_plan.h"
#include "ssb/ssb.h"

using namespace hetex;  // NOLINT — example brevity

int main() {
  core::System system(core::System::Options{});
  ssb::Ssb::Options opts;
  opts.lineorder_rows = 1000;  // plans only; no execution
  ssb::Ssb ssb(opts, &system.catalog());

  const plan::QuerySpec spec = ssb.Query(3, 1);

  struct Config {
    const char* label;
    plan::ExecPolicy policy;
  };
  plan::ExecPolicy split = plan::ExecPolicy::Hybrid(8);
  split.split_probe_stage = true;

  for (const auto& [label, policy] : {
           Config{"CPU-only, 4 workers", plan::ExecPolicy::CpuOnly(4)},
           Config{"GPU-only, both GPUs", plan::ExecPolicy::GpuOnly()},
           Config{"Hybrid, 8 CPU workers + 2 GPUs", plan::ExecPolicy::Hybrid(8)},
           Config{"Hybrid, split probe stage (hash router + hash-pack)", split},
           Config{"Bare Proteus (no HetExchange), 1 GPU, UVA",
                  plan::ExecPolicy::Bare(sim::DeviceType::kGpu)},
       }) {
    const plan::HetPlan plan = plan::BuildHetPlan(spec, policy, system.topology());
    std::printf("=== %s ===\n%s", label, plan.ToString().c_str());
    const Status st = plan::ValidateHetPlan(plan);
    std::printf("validation: %s\n", st.ToString().c_str());
    if (!st.ok()) {
      // The executor refuses invalid plans before lowering; mirror that here.
      std::printf("lowering: skipped (plan failed validation)\n\n");
      continue;
    }

    core::GraphBuilder builder(&system, &plan);
    const Status lowered = builder.Analyze();
    if (lowered.ok()) {
      std::printf("%s\n", builder.spec().ToString().c_str());
    } else {
      std::printf("lowering: %s\n\n", lowered.ToString().c_str());
    }
  }
  return 0;
}
