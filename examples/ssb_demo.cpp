// SSB demo: generates a small Star Schema Benchmark database and runs one query
// (Q2.1 by default, or the flight/index given on the command line) on every
// engine in the repository: Proteus CPU / GPU / Hybrid (the HetExchange engine)
// and the two commercial-paradigm emulations, DBMS C and DBMS G.
//
// Results are cross-checked against the naive reference evaluator.

#include <cstdio>
#include <cstdlib>

#include "baselines/dbms_c.h"
#include "baselines/dbms_g.h"
#include "core/executor.h"
#include "core/system.h"
#include "ssb/reference.h"
#include "ssb/ssb.h"

using namespace hetex;  // NOLINT — example brevity

int main(int argc, char** argv) {
  const int flight = argc > 1 ? std::atoi(argv[1]) : 2;
  const int idx = argc > 2 ? std::atoi(argv[2]) : 1;

  core::System system(core::System::Options{});
  ssb::Ssb::Options ssb_opts;
  ssb_opts.scale = 0.05;  // ~300k lineorder rows: quick but non-trivial
  ssb::Ssb ssb(ssb_opts, &system.catalog());
  for (const char* t : {"lineorder", "date", "customer", "supplier", "part"}) {
    HETEX_CHECK_OK(system.catalog().at(t).Place(system.HostNodes(), &system.memory()));
  }

  const plan::QuerySpec spec = ssb.Query(flight, idx);
  std::printf("=== SSB %s on SF %.2f ===\n", spec.name.c_str(), ssb_opts.scale);

  const auto expected = ssb::ReferenceExecute(spec, system.catalog());
  std::printf("reference: %zu result row(s)\n\n", expected.size());

  auto report = [&](const char* name, const core::QueryResult& r) {
    if (!r.status.ok()) {
      std::printf("%-16s %s\n", name, r.status.ToString().c_str());
      return;
    }
    const bool match = r.rows == expected;
    std::printf("%-16s modeled %8.2f ms  wall %7.1f ms  rows=%zu  %s\n", name,
                r.modeled_seconds * 1e3, r.wall_seconds * 1e3, r.rows.size(),
                match ? "OK" : "MISMATCH!");
  };

  core::QueryExecutor executor(&system);
  report("Proteus CPU", executor.Execute(spec, plan::ExecPolicy::CpuOnly()));
  report("Proteus GPU", executor.Execute(spec, plan::ExecPolicy::GpuOnly()));
  report("Proteus Hybrid", executor.Execute(spec, plan::ExecPolicy::Hybrid()));

  baselines::OpStats stats = baselines::EvaluateWithStats(spec, system.catalog());
  baselines::DbmsC dbms_c(&system);
  report("DBMS C", dbms_c.Execute(spec, &stats));
  baselines::DbmsG dbms_g(&system);
  report("DBMS G", dbms_g.Execute(spec, &stats));

  // A taste of the output (group keys decode via plan::kGroupKeyBits shifts).
  std::printf("\nfirst result rows [group_key, aggs...]:\n");
  for (size_t i = 0; i < expected.size() && i < 5; ++i) {
    for (int64_t v : expected[i]) std::printf("  %lld", static_cast<long long>(v));
    std::printf("\n");
  }
  return 0;
}
