// Quickstart: build a simulated heterogeneous server, load a single-column
// table, and run `SELECT SUM(a) FROM t WHERE a % ...` — actually a plain sum —
// under CPU-only, GPU-only and hybrid HetExchange policies.
//
// This is the paper's bandwidth-bound microbenchmark (§6.4, Fig. 7 top) in ~60
// lines of API use.

#include <cstdio>

#include "core/executor.h"
#include "core/system.h"
#include "plan/het_plan.h"
#include "plan/query_spec.h"
#include "storage/table.h"

using namespace hetex;  // NOLINT — example brevity

int main() {
  // The paper's evaluation server: 2x12 cores, 2 GPUs (see sim::Topology).
  core::System::Options options;
  options.blocks.host_arena_blocks = 512;
  core::System system(options);
  std::printf("%s\n", system.topology().ToString().c_str());

  // A 32M-row int32 column, evenly distributed over the two sockets.
  constexpr uint64_t kRows = 32'000'000;
  storage::Table* table = system.catalog().CreateTable("t");
  storage::Column* a = table->AddColumn("a", storage::ColType::kInt32);
  for (uint64_t i = 0; i < kRows; ++i) a->Append(static_cast<int64_t>(i % 1000));
  HETEX_CHECK_OK(table->Place(system.HostNodes(), &system.memory()));

  // SELECT SUM(a) FROM t
  plan::QuerySpec query;
  query.name = "quickstart-sum";
  query.fact_table = "t";
  query.aggs.push_back({plan::Col("a"), jit::AggFunc::kSum, "sum_a"});

  core::QueryExecutor executor(&system);
  for (const auto& [label, policy] :
       {std::pair{"cpu-only (24 workers)", plan::ExecPolicy::CpuOnly()},
        std::pair{"gpu-only (2 GPUs)    ", plan::ExecPolicy::GpuOnly()},
        std::pair{"hybrid (24 + 2)      ", plan::ExecPolicy::Hybrid()}}) {
    core::QueryResult result = executor.Execute(query, policy);
    const double gbps = static_cast<double>(kRows * 4) / result.modeled_seconds / 1e9;
    std::printf("%s  sum=%lld  modeled %7.2f ms (%6.1f GB/s)  wall %7.1f ms\n",
                label, static_cast<long long>(result.rows[0][0]),
                result.modeled_seconds * 1e3, gbps, result.wall_seconds * 1e3);
  }

  // Default path: no policy — the cost-based optimizer enumerates candidate
  // plans, prices them with the virtual-time model and runs the cheapest.
  core::QueryResult best = executor.Execute(query);
  std::printf("optimized (default)    sum=%lld  modeled %7.2f ms\n",
              static_cast<long long>(best.rows[0][0]),
              best.modeled_seconds * 1e3);

  // The heterogeneity-aware plan the hybrid policy runs (Fig. 2b analogue):
  plan::HetPlan plan = plan::BuildHetPlan(query, plan::ExecPolicy::Hybrid(),
                                          system.topology());
  HETEX_CHECK_OK(plan::ValidateHetPlan(plan));
  std::printf("\nHybrid heterogeneity-aware plan:\n%s", plan.ToString().c_str());
  return 0;
}
