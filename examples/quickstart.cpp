// Quickstart: build a simulated heterogeneous server, load a single-column
// table, and run `SELECT SUM(a) FROM t WHERE a % ...` — actually a plain sum —
// under CPU-only, GPU-only and hybrid HetExchange policies.
//
// This is the paper's bandwidth-bound microbenchmark (§6.4, Fig. 7 top) in ~60
// lines of API use.
//
// Benchmarking tip — warm the tier-2 kernel cache first: with
// HETEX_KERNEL_DIR=<dir> set, pipelines tier up to JIT-compiled native
// kernels, but the *first* run of each span shape pays an out-of-process
// compile (~100ms each; the vectorizer serves meanwhile, so results are
// unaffected — only timings). Run the binary once to populate the directory,
// then measure: every later run (and every server restart) installs the
// kernels from disk with zero compiler invocations.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/executor.h"
#include "core/scheduler.h"
#include "core/system.h"
#include "plan/het_plan.h"
#include "plan/query_spec.h"
#include "storage/table.h"

using namespace hetex;  // NOLINT — example brevity

int main() {
  // The paper's evaluation server: 2x12 cores, 2 GPUs (see sim::Topology).
  core::System::Options options;
  options.blocks.host_arena_blocks = 512;
  // Arm the fault plane with every rate at zero: byte-identical to a build
  // without it, until the device-loss demo below scripts a failure.
  options.faults.enabled = true;
  core::System system(options);
  std::printf("%s\n", system.topology().ToString().c_str());

  // A 32M-row int32 column, evenly distributed over the two sockets.
  constexpr uint64_t kRows = 32'000'000;
  storage::Table* table = system.catalog().CreateTable("t");
  storage::Column* a = table->AddColumn("a", storage::ColType::kInt32);
  for (uint64_t i = 0; i < kRows; ++i) a->Append(static_cast<int64_t>(i % 1000));
  HETEX_CHECK_OK(table->Place(system.HostNodes(), &system.memory()));

  // SELECT SUM(a) FROM t
  plan::QuerySpec query;
  query.name = "quickstart-sum";
  query.fact_table = "t";
  query.aggs.push_back({plan::Col("a"), jit::AggFunc::kSum, "sum_a"});

  core::QueryExecutor executor(&system);
  for (const auto& [label, policy] :
       {std::pair{"cpu-only (24 workers)", plan::ExecPolicy::CpuOnly()},
        std::pair{"gpu-only (2 GPUs)    ", plan::ExecPolicy::GpuOnly()},
        std::pair{"hybrid (24 + 2)      ", plan::ExecPolicy::Hybrid()}}) {
    core::QueryResult result = executor.Execute(query, policy);
    const double gbps = static_cast<double>(kRows * 4) / result.modeled_seconds / 1e9;
    std::printf("%s  sum=%lld  modeled %7.2f ms (%6.1f GB/s)  wall %7.1f ms\n",
                label, static_cast<long long>(result.rows[0][0]),
                result.modeled_seconds * 1e3, gbps, result.wall_seconds * 1e3);
  }

  // Default path: no policy — the cost-based optimizer enumerates candidate
  // plans, prices them with the virtual-time model and runs the cheapest.
  core::QueryResult best = executor.Execute(query);
  std::printf("optimized (default)    sum=%lld  modeled %7.2f ms\n",
              static_cast<long long>(best.rows[0][0]),
              best.modeled_seconds * 1e3);

  // The heterogeneity-aware plan the hybrid policy runs (Fig. 2b analogue):
  plan::HetPlan plan = plan::BuildHetPlan(query, plan::ExecPolicy::Hybrid(),
                                          system.topology());
  HETEX_CHECK_OK(plan::ValidateHetPlan(plan));
  std::printf("\nHybrid heterogeneity-aware plan:\n%s", plan.ToString().c_str());

  // --- Concurrent serving: Submit/Wait through the query scheduler. ---
  //
  // A mixed 8-query workload (scalar sums, min/max, filtered and grouped
  // aggregates) pushed through the same System at rising admission caps. Each
  // query runs on its own session-scoped virtual timeline while PCIe links,
  // DMA engines and GPU streams charge contention across everything in
  // flight; p50 latency (admission queue wait included) falls as the server
  // takes more queries at once.
  std::vector<plan::QuerySpec> mix;
  for (int i = 0; i < 8; ++i) {
    plan::QuerySpec q;
    q.name = "mix-" + std::to_string(i);
    q.fact_table = "t";
    switch (i % 4) {
      case 0:
        q.aggs.push_back({plan::Col("a"), jit::AggFunc::kSum, "sum_a"});
        break;
      case 1:
        q.fact_filter = plan::Lt(plan::Col("a"), plan::Lit(250 * (1 + i)));
        q.aggs.push_back({plan::Col("a"), jit::AggFunc::kSum, "sum_a"});
        break;
      case 2:
        q.aggs.push_back({plan::Col("a"), jit::AggFunc::kMin, "min_a"});
        q.aggs.push_back({plan::Col("a"), jit::AggFunc::kMax, "max_a"});
        break;
      default:
        q.group_by.push_back(plan::Col("a"));
        q.aggs.push_back({plan::Col("a"), jit::AggFunc::kCount, "cnt"});
        q.expected_groups = 2048;
        break;
    }
    mix.push_back(std::move(q));
  }

  std::printf("\nconcurrent scheduler, mixed 8-query workload:\n");
  std::printf("%12s %10s %14s %14s %16s\n", "concurrency", "qps", "p50 lat (ms)",
              "max lat (ms)", "mean wait (ms)");
  for (int cap : {1, 2, 4, 8}) {
    core::QueryScheduler scheduler(&system, {.max_concurrent = cap});
    std::vector<core::QueryHandle> handles;
    for (const auto& q : mix) handles.push_back(scheduler.Submit(q));
    std::vector<double> lat;
    double base = 1e300, last = 0, wait = 0;
    for (auto& h : handles) {
      core::QueryResult r = scheduler.Wait(h);
      HETEX_CHECK_OK(r.status);
      base = std::min(base, r.session_epoch - r.queue_wait);
      last = std::max(last, r.session_epoch + r.modeled_seconds);
      lat.push_back(r.queue_wait + r.modeled_seconds);
      wait += r.queue_wait;
    }
    std::sort(lat.begin(), lat.end());
    std::printf("%12d %10.1f %14.2f %14.2f %16.2f\n", cap,
                static_cast<double>(mix.size()) / (last - base),
                lat[lat.size() / 2] * 1e3, lat.back() * 1e3,
                wait / static_cast<double>(mix.size()) * 1e3);
  }

  // --- Degraded mode: lose both GPUs mid-flight, watch the re-plan. ---
  //
  // A loss window on the absolute virtual timeline, opening just after this
  // workload's epoch: the optimizer (which checks device health at planning
  // time) still picks its usual hybrid plan, the first GPU kernel launch
  // inside the window fails with kDeviceLost, and the scheduler re-plans the
  // query on the surviving device set — CPU-only here. The answer stays
  // bit-identical; the recovery is reported on the QueryResult, not an error.
  const sim::VTime lost_at = system.VirtualHorizon() + 1e-4;
  system.fault().LoseGpu(0, lost_at);
  system.fault().LoseGpu(1, lost_at);
  {
    core::QueryScheduler scheduler(&system);
    core::QueryHandle h = scheduler.Submit(query);
    core::QueryResult r = scheduler.Wait(h);
    HETEX_CHECK_OK(r.status);
    std::printf("\nboth GPUs lost mid-flight:\n"
                "  sum=%lld (bit-identical)  modeled %7.2f ms\n"
                "  retries=%d  replanned=%s  degraded=%s  first fault: %s\n",
                static_cast<long long>(r.rows[0][0]), r.modeled_seconds * 1e3,
                r.retries, r.replanned ? "yes" : "no",
                r.degraded ? "yes" : "no",
                r.fault.ok() ? "none" : r.fault.ToString().c_str());
  }
  system.fault().RestoreGpu(0);
  system.fault().RestoreGpu(1);

  // --- Cross-query reuse: shared hash-table builds + result cache. ---
  //
  // A serving-layer System with the reuse knobs on (off by default; also
  // reachable via HETEX_SHARED_BUILDS=1 / HETEX_RESULT_CACHE_MB=N). Four
  // concurrent queries joining the same dimension table trigger exactly one
  // hash-table build — the rest attach to the shared read-only replicas
  // (single-flight dedup in HtRegistry). Repeat submissions of an identical
  // query are answered from the result cache (keyed by canonical spec +
  // table mutation epochs) at lookup cost instead of execution cost.
  core::System::Options serve_options;
  serve_options.blocks.host_arena_blocks = 512;
  serve_options.reuse.shared_builds = true;
  serve_options.reuse.result_cache = true;
  core::System serve(serve_options);

  storage::Table* fact = serve.catalog().CreateTable("f");
  storage::Column* fk = fact->AddColumn("k", storage::ColType::kInt32);
  storage::Column* fv = fact->AddColumn("v", storage::ColType::kInt32);
  constexpr uint64_t kFactRows = 2'000'000;
  for (uint64_t i = 0; i < kFactRows; ++i) {
    fk->Append(static_cast<int64_t>(i % 10'000));
    fv->Append(static_cast<int64_t>(i % 100));
  }
  storage::Table* dim = serve.catalog().CreateTable("d");
  storage::Column* dk = dim->AddColumn("k", storage::ColType::kInt32);
  storage::Column* da = dim->AddColumn("attr", storage::ColType::kInt32);
  for (uint64_t i = 0; i < 10'000; ++i) {
    dk->Append(static_cast<int64_t>(i));
    da->Append(static_cast<int64_t>(i % 1000));
  }
  HETEX_CHECK_OK(fact->Place(serve.HostNodes(), &serve.memory()));
  HETEX_CHECK_OK(dim->Place(serve.HostNodes(), &serve.memory()));

  // SELECT SUM(v) FROM f JOIN d ON f.k = d.k WHERE d.attr < 200
  plan::QuerySpec join_query;
  join_query.name = "quickstart-join";
  join_query.fact_table = "f";
  join_query.joins.push_back({.build_table = "d",
                              .build_filter = plan::Lt(plan::Col("attr"),
                                                       plan::Lit(200)),
                              .build_key = "k",
                              .payload = {},
                              .probe_key = "k"});
  join_query.aggs.push_back({plan::Col("v"), jit::AggFunc::kSum, "sum_v"});

  {
    core::QueryScheduler scheduler(&serve, {.max_concurrent = 4});
    std::vector<core::QueryHandle> handles;
    for (int i = 0; i < 4; ++i) handles.push_back(scheduler.Submit(join_query));
    int built = 0, attached = 0;
    double miss_modeled = 0;
    for (auto& h : handles) {
      core::QueryResult r = scheduler.Wait(h);
      HETEX_CHECK_OK(r.status);
      built += r.shared_builds;
      attached += r.shared_attaches;
      miss_modeled = r.modeled_seconds;
    }
    std::printf("\ncross-query reuse, 4 concurrent identical joins:\n"
                "  shared hash-table builds=%d attaches=%d "
                "(1 build, 3 attach — single-flight)\n",
                built, attached);

    // Same query again: served from the result cache at lookup cost.
    core::QueryResult hit = scheduler.Wait(scheduler.Submit(join_query));
    HETEX_CHECK_OK(hit.status);
    const core::ResultCache::Stats cs = serve.result_cache()->stats();
    std::printf("  repeat submission: cache_hit=%s  modeled %.4f ms "
                "(vs %.2f ms executed)\n"
                "  result cache counters: hits=%llu misses=%llu\n",
                hit.cache_hit ? "yes" : "no", hit.modeled_seconds * 1e3,
                miss_modeled * 1e3,
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses));

    // Mutating a referenced table invalidates: the next submission misses.
    dim->NoteMutation();
    core::QueryResult after = scheduler.Wait(scheduler.Submit(join_query));
    HETEX_CHECK_OK(after.status);
    std::printf("  after dimension-table mutation: cache_hit=%s (recomputed)\n",
                after.cache_hit ? "yes" : "no");
  }

  // --- Scale-up: a 4-GPU NVLink fabric past the paper's server. ---
  //
  // Topology::ScaleOutOptions(4) builds four GPUs with a fully-connected
  // NVLink-class peer mesh (one BandwidthServer per link) plus the modeled
  // inter-socket link. The table is partitioned across all four device
  // memories; running the sum on 1, 2 and 4 of the GPUs shows the scale-up —
  // a single GPU pulls the other partitions over the peer links (without a
  // mesh those moves would stage through host memory over two PCIe hops),
  // while all four read locally.
  core::System::Options fabric_options;
  fabric_options.topology = sim::Topology::ScaleOutOptions(4);
  core::System fabric(fabric_options);
  std::printf("\n%s", fabric.topology().Describe().c_str());

  constexpr uint64_t kFabricRows = 64'000'000;
  storage::Table* ft = fabric.catalog().CreateTable("t4");
  storage::Column* fa = ft->AddColumn("a", storage::ColType::kInt32);
  for (uint64_t i = 0; i < kFabricRows; ++i) {
    fa->Append(static_cast<int64_t>(i % 1000));
  }
  HETEX_CHECK_OK(ft->Place(fabric.GpuNodes(), &fabric.memory()));

  plan::QuerySpec fabric_query;
  fabric_query.name = "scaleup-sum";
  fabric_query.fact_table = "t4";
  fabric_query.aggs.push_back({plan::Col("a"), jit::AggFunc::kSum, "sum_a"});

  core::QueryExecutor fabric_executor(&fabric);
  std::printf("sum over 256 MB partitioned across 4 GPU memories:\n");
  for (const auto& [label, gpus] :
       {std::pair{"1 GPU (3/4 over NVLink)", std::vector<int>{0}},
        std::pair{"2 GPUs                 ", std::vector<int>{0, 1}},
        std::pair{"4 GPUs (all local)     ", std::vector<int>{0, 1, 2, 3}}}) {
    core::QueryResult r =
        fabric_executor.Execute(fabric_query, plan::ExecPolicy::GpuOnly(gpus));
    HETEX_CHECK_OK(r.status);
    std::printf("  %s  sum=%lld  modeled %7.2f ms\n", label,
                static_cast<long long>(r.rows[0][0]), r.modeled_seconds * 1e3);
  }
  return 0;
}
