// Topology explorer: inspects the simulated server and probes its virtual-time
// behaviour directly — DMA bandwidth over a PCIe link, kernel launch latency,
// socket bandwidth saturation — the primitives the HetExchange cost shapes are
// built from.

#include <cstdio>
#include <vector>

#include "core/system.h"
#include "jit/device_provider.h"

using namespace hetex;  // NOLINT — example brevity

int main() {
  core::System system(core::System::Options{});
  sim::Topology& topo = system.topology();
  std::printf("%s\n", topo.ToString().c_str());

  // --- DMA probe: stream 64 x 1MiB blocks host -> gpu0 and measure the modeled
  // bandwidth of the link (queueing included).
  {
    memory::Block* src = system.blocks().Acquire(topo.socket(0).mem,
                                                 topo.socket(0).mem);
    memory::Block* dst =
        system.blocks().Acquire(topo.gpu(0).mem, topo.socket(0).mem);
    sim::VTime last = 0;
    const int kBlocks = 64;
    for (int i = 0; i < kBlocks; ++i) {
      last = system.dma().TransferSync(src->data, dst->data, src->capacity,
                                       topo.PcieLinkOf(0), 0.0);
    }
    const double gb = kBlocks * src->capacity / 1e9;
    std::printf("DMA probe: %.0f MiB host->gpu0 in %.3f ms modeled (%.1f GB/s)\n",
                gb * 1e3 / 1.048576, last * 1e3, gb / last);
    system.blocks().Release(src, topo.socket(0).mem);
    system.blocks().Release(dst, topo.socket(0).mem);
    system.blocks().FlushReleases();
  }

  // --- Kernel probe: launch empty and streaming kernels on gpu0. A session
  // epoch at the resource horizon sees an idle stream (no reset needed).
  {
    const sim::VTime epoch = system.VirtualHorizon();
    sim::GpuDevice& gpu = system.gpu(0);
    auto noop = [](const sim::KernelCtx&) {};
    auto r = gpu.LaunchKernel(noop, gpu.default_grid(), 32, 0.0, 0.0, epoch);
    std::printf("kernel launch latency: %.1f us modeled\n", (r.end - r.start) * 1e6);

    auto touch = [](const sim::KernelCtx& ctx) {
      ctx.stats->bytes_read += 64 << 20;  // this logical thread streamed 64 MiB
    };
    r = gpu.LaunchKernel(touch, 1, 1, 0.0, 0.0, epoch);
    std::printf("streaming kernel: 64 MiB at %.0f GB/s modeled (%.3f ms)\n",
                (64 << 20) / (r.end - r.start) / 1e9, (r.end - r.start) * 1e3);
  }

  // --- Socket bandwidth fluid share: per-worker rate vs number of active
  // workers (the Fig. 6/7 scalability mechanism). Workers register through
  // the cross-session DRAM server, one registration per query session here.
  {
    std::printf("\nsocket0 DRAM fluid share (per-worker GB/s):\n");
    sim::DramServer& dram = topo.socket_dram(0);
    for (int n = 1; n <= 16; n *= 2) {
      const uint64_t token = dram.Register(/*session=*/1, /*epoch=*/0.0, n);
      std::printf("  %2d active -> %.2f GB/s each (%.1f aggregate)\n", n,
                  dram.EffectiveRate() / 1e9, n * dram.EffectiveRate() / 1e9);
      dram.Release(token);
    }
  }
  return 0;
}
