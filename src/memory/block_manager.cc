#include "memory/block_manager.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/logging.h"

namespace hetex::memory {

BlockManager::BlockManager(sim::MemNodeId node, uint64_t block_bytes,
                           size_t arena_blocks)
    : node_(node), block_bytes_(block_bytes) {
  HETEX_CHECK(block_bytes > 0 && arena_blocks > 0);
  const size_t arena_bytes = block_bytes * arena_blocks;
  arena_ = static_cast<std::byte*>(std::aligned_alloc(64, arena_bytes));
  HETEX_CHECK(arena_ != nullptr) << "arena allocation failed for node " << node;
  blocks_.reserve(arena_blocks);
  free_list_.reserve(arena_blocks);
  for (size_t i = 0; i < arena_blocks; ++i) {
    auto block = std::make_unique<Block>();
    block->data = arena_ + i * block_bytes;
    block->capacity = block_bytes;
    block->node = node;
    block->owner = this;
    free_list_.push_back(block.get());
    blocks_.push_back(std::move(block));
  }
}

BlockManager::~BlockManager() { std::free(arena_); }

Block* BlockManager::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_list_.empty()) return nullptr;
  Block* block = free_list_.back();
  free_list_.pop_back();
  block->refs.store(1, std::memory_order_relaxed);
  return block;
}

size_t BlockManager::AcquireBatch(Block** out, size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t got = 0;
  while (got < n && !free_list_.empty()) {
    Block* block = free_list_.back();
    free_list_.pop_back();
    block->refs.store(1, std::memory_order_relaxed);
    out[got++] = block;
  }
  return got;
}

void BlockManager::Release(Block* block) {
  HETEX_CHECK(block->owner == this) << "block released to wrong manager";
  if (block->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mu_);
    free_list_.push_back(block);
  }
}

size_t BlockManager::free_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_list_.size();
}

BlockRegistry::BlockRegistry(const sim::Topology& topo, const Options& options)
    : options_(options),
      caches_(static_cast<size_t>(topo.num_mem_nodes()) * topo.num_mem_nodes()) {
  managers_.reserve(topo.num_mem_nodes());
  for (int n = 0; n < topo.num_mem_nodes(); ++n) {
    const bool is_gpu = topo.mem_node(n).is_gpu;
    managers_.push_back(std::make_unique<BlockManager>(
        n, options.block_bytes,
        is_gpu ? options.gpu_arena_blocks : options.host_arena_blocks));
  }
}

Block* BlockRegistry::Acquire(sim::MemNodeId target, sim::MemNodeId requester,
                              Status* error,
                              const std::atomic<bool>* cancel) {
  const auto fail = [&](Status st) -> Block* {
    if (error != nullptr) *error = std::move(st);
    return nullptr;
  };
  if (fault_ != nullptr && fault_->enabled()) {
    Status st = fault_->OnStagingAcquire(target);
    if (!st.ok()) return fail(std::move(st));
  }
  // Concurrent queries share the arenas: transient exhaustion means another
  // in-flight query holds staging blocks it will release as its pipelines
  // drain. Wait for that backpressure to clear rather than aborting; only a
  // genuinely wedged arena (budget misconfiguration) fails the acquisition —
  // boundedly, with a named status, never a hang.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.acquire_timeout_seconds));
  int attempts = 0;
  while (true) {
    if (target == requester) {
      Block* block = manager(target).Acquire();
      if (block != nullptr) return block;
    } else {
      RemoteCache& rc = cache(requester, target);
      std::lock_guard<std::mutex> lock(rc.mu);
      if (rc.acquired.empty()) {
        // One "small task to the remote node" fetches a whole batch (§4.3).
        rc.acquired.resize(options_.remote_batch);
        const size_t got = manager(target).AcquireBatch(rc.acquired.data(),
                                                        options_.remote_batch);
        rc.acquired.resize(got);
        if (got > 0) {
          remote_roundtrips_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!rc.acquired.empty()) {
        Block* block = rc.acquired.back();
        rc.acquired.pop_back();
        return block;
      }
    }
    // Nothing free in the arena: sweep parked release batches back first;
    // after ~5ms of sustained starvation also confiscate prefetch stashes
    // (costing their owners a refill round-trip beats stalling everyone).
    ReclaimNode(target, /*steal_prefetch=*/++attempts > 100);
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return fail(Status::Cancelled(
          "staging-block acquisition abandoned: query cancelled while waiting "
          "for node " +
          std::to_string(target)));
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return fail(Status::ResourceExhausted(
          "staging-block arena exhausted on node " + std::to_string(target) +
          " and no in-flight query released memory within the acquire "
          "timeout — lower the scheduler's admission cap or per-query memory "
          "budget"));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void BlockRegistry::ReclaimNode(sim::MemNodeId target, bool steal_prefetch) {
  const size_t nodes = managers_.size();
  for (size_t requester = 0; requester < nodes; ++requester) {
    RemoteCache& rc = cache(static_cast<sim::MemNodeId>(requester), target);
    std::vector<Block*> to_flush;
    std::vector<Block*> to_return;
    {
      std::lock_guard<std::mutex> lock(rc.mu);
      to_flush.swap(rc.released);
      if (steal_prefetch) to_return.swap(rc.acquired);
    }
    if (!to_flush.empty() || !to_return.empty()) {
      remote_roundtrips_.fetch_add(1, std::memory_order_relaxed);
    }
    for (Block* b : to_flush) b->owner->Release(b);
    for (Block* b : to_return) b->owner->Release(b);
  }
}

void BlockRegistry::Release(Block* block, sim::MemNodeId requester) {
  if (block->node == requester) {
    block->owner->Release(block);
    return;
  }
  // Only the final reference needs the (batched) remote round-trip.
  if (block->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  block->refs.store(1, std::memory_order_relaxed);  // hand the last ref to the batch
  RemoteCache& rc = cache(requester, block->node);
  std::vector<Block*> to_flush;
  {
    std::lock_guard<std::mutex> lock(rc.mu);
    rc.released.push_back(block);
    if (rc.released.size() >= options_.remote_batch) {
      to_flush.swap(rc.released);
    }
  }
  if (!to_flush.empty()) {
    remote_roundtrips_.fetch_add(1, std::memory_order_relaxed);
    for (Block* b : to_flush) b->owner->Release(b);
  }
}

void BlockRegistry::FlushReleases() {
  for (auto& rc : caches_) {
    std::vector<Block*> to_flush;
    std::vector<Block*> to_return;
    {
      std::lock_guard<std::mutex> lock(rc.mu);
      to_flush.swap(rc.released);
      to_return.swap(rc.acquired);
    }
    if (!to_flush.empty() || !to_return.empty()) {
      remote_roundtrips_.fetch_add(1, std::memory_order_relaxed);
    }
    for (Block* b : to_flush) b->owner->Release(b);
    for (Block* b : to_return) b->owner->Release(b);
  }
}

}  // namespace hetex::memory
