#ifndef HETEX_MEMORY_BLOCK_MANAGER_H_
#define HETEX_MEMORY_BLOCK_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include <atomic>

#include "common/status.h"
#include "memory/block.h"
#include "sim/fault.h"
#include "sim/topology.h"

namespace hetex::memory {

/// \brief Arena of pre-allocated staging blocks for one memory node.
///
/// Per the paper (§4.3): block arenas are pre-allocated at system initialization to
/// avoid allocation cost at query time, and only device-local callers synchronize
/// on a node's free list (there is no global cache coherence to rely on). Remote
/// callers must go through BlockRegistry, which batches remote acquisitions.
class BlockManager {
 public:
  BlockManager(sim::MemNodeId node, uint64_t block_bytes, size_t arena_blocks);
  ~BlockManager();

  BlockManager(const BlockManager&) = delete;
  BlockManager& operator=(const BlockManager&) = delete;

  /// Acquires a block from the local arena; nullptr when the arena is exhausted.
  /// The returned block has one reference.
  Block* Acquire();

  /// Acquires up to `n` blocks at once (remote batch path). Returns count acquired.
  size_t AcquireBatch(Block** out, size_t n);

  /// Drops one reference; the block returns to the arena at zero.
  void Release(Block* block);

  /// Adds a reference for multicast sharing.
  static void AddRef(Block* block) {
    block->refs.fetch_add(1, std::memory_order_relaxed);
  }

  sim::MemNodeId node() const { return node_; }
  uint64_t block_bytes() const { return block_bytes_; }
  size_t arena_blocks() const { return blocks_.size(); }
  size_t free_blocks() const;
  size_t in_use() const { return arena_blocks() - free_blocks(); }

 private:
  const sim::MemNodeId node_;
  const uint64_t block_bytes_;
  std::byte* arena_ = nullptr;
  std::vector<std::unique_ptr<Block>> blocks_;
  mutable std::mutex mu_;  // device-local synchronization only
  std::vector<Block*> free_list_;
};

/// \brief All block managers of the server plus the remote-acquisition machinery.
///
/// Acquiring a block on a *remote* node (e.g. a CPU mem-move producer grabbing a
/// staging block in GPU memory for a DMA target) is served from a per
/// (requester-node, target-node) cache refilled in batches, and releases of remote
/// blocks are batched back — the two §4.3 optimizations that make the absence of
/// cross-device coherence affordable.
class BlockRegistry {
 public:
  struct Options {
    uint64_t block_bytes = 1ull << 20;   ///< 1 MiB blocks
    size_t host_arena_blocks = 512;      ///< per host node
    size_t gpu_arena_blocks = 256;       ///< per GPU node
    size_t remote_batch = 8;             ///< blocks fetched per remote round-trip
    /// Wall-clock bound on the Acquire backpressure wait. An arena that stays
    /// exhausted this long fails the acquisition with a named
    /// kResourceExhausted status (propagated into QueryResult::status) instead
    /// of deadlocking the admission queue.
    double acquire_timeout_seconds = 30.0;
  };

  BlockRegistry(const sim::Topology& topo, const Options& options);

  BlockManager& manager(sim::MemNodeId node) { return *managers_.at(node); }
  const Options& options() const { return options_; }

  /// Attaches the System's fault plane: Acquire then consults it for injected
  /// staging-exhaustion spikes. Null / disabled = no checks.
  void set_fault_injector(sim::FaultInjector* fault) { fault_ = fault; }

  /// Acquires a block on `target` for a caller local to `requester`.
  /// Local requests hit the arena directly; remote requests go through the cache.
  ///
  /// Exhausted arenas back-pressure: the call sweeps reclaimable blocks and
  /// waits — but boundedly. It returns nullptr (with the named reason in
  /// `error`, when given) on: a sustained-exhaustion timeout
  /// (kResourceExhausted), an injected exhaustion spike (kResourceExhausted),
  /// or a query cancellation observed through `cancel` (kCancelled) — the
  /// cooperative wake-up that lets a cancelled query stop waiting for memory
  /// another query holds.
  Block* Acquire(sim::MemNodeId target, sim::MemNodeId requester,
                 Status* error = nullptr,
                 const std::atomic<bool>* cancel = nullptr);

  /// Releases a block from a caller local to `requester`; remote releases are
  /// buffered and flushed in batches.
  void Release(Block* block, sim::MemNodeId requester);

  /// Flushes all buffered remote releases (e.g. at query end).
  void FlushReleases();

  /// Returns blocks parked in the remote caches of one node to its arena.
  /// Called by a starved Acquire: blocks another query batched but never
  /// flushed (it is still running) are reclaimable without waiting for its
  /// end-of-query flush. Buffered releases are always swept (pure reclaim);
  /// `steal_prefetch` additionally confiscates unused prefetch stashes —
  /// escalation for sustained starvation, since it forces their owners into
  /// fresh batch round-trips.
  void ReclaimNode(sim::MemNodeId target, bool steal_prefetch);

  /// Number of remote batch round-trips performed (for tests/ablation).
  uint64_t remote_roundtrips() const { return remote_roundtrips_; }

 private:
  struct RemoteCache {
    std::mutex mu;
    std::vector<Block*> acquired;  ///< ready-to-hand-out blocks on the target node
    std::vector<Block*> released;  ///< pending batched releases
  };

  RemoteCache& cache(sim::MemNodeId requester, sim::MemNodeId target) {
    return caches_[static_cast<size_t>(requester) * managers_.size() +
                   static_cast<size_t>(target)];
  }

  Options options_;
  std::vector<std::unique_ptr<BlockManager>> managers_;
  std::vector<RemoteCache> caches_;  ///< indexed [requester * nodes + target]
  std::atomic<uint64_t> remote_roundtrips_{0};
  sim::FaultInjector* fault_ = nullptr;
};

}  // namespace hetex::memory

#endif  // HETEX_MEMORY_BLOCK_MANAGER_H_
