#ifndef HETEX_MEMORY_BLOCK_H_
#define HETEX_MEMORY_BLOCK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "sim/topology.h"
#include "sim/vtime.h"

namespace hetex::memory {

class BlockManager;

/// \brief A fixed-size staging block living on one memory node.
///
/// Blocks are the unit of data movement in HetExchange: pack operators fill them,
/// mem-move transfers them across interconnects, routers route their *handles*
/// (control plane only). Blocks are pre-allocated in per-node arenas at system
/// start (§4.3) and recycled through their owning BlockManager.
///
/// `refs` supports multicast: mem-move broadcast can hand the same physical block
/// to several same-node consumers without copying; the block returns to its arena
/// when the last reference is released.
struct Block {
  std::byte* data = nullptr;
  uint64_t capacity = 0;                ///< bytes
  sim::MemNodeId node = sim::kInvalidMemNode;
  BlockManager* owner = nullptr;        ///< nullptr for table-resident (foreign) data
  bool pinned = true;                   ///< DMA-pinned host memory (affects PCIe rate)
  std::atomic<uint32_t> refs{0};

  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data);
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data);
  }
};

/// \brief Control-plane reference to (a used prefix of) a block.
///
/// This is what flows through routers and device-crossing operators: the data stays
/// put, only the handle travels (§3.1 "the router only operates on the control
/// plane"). `ready_at` is the virtual time at which the block's contents exist
/// (produced, or DMA-completed); consumers advance their clocks past it.
struct BlockHandle {
  Block* block = nullptr;
  uint64_t bytes = 0;     ///< used bytes
  uint64_t rows = 0;      ///< tuples contained
  sim::VTime ready_at = 0;

  bool valid() const { return block != nullptr; }
  sim::MemNodeId node() const { return block ? block->node : sim::kInvalidMemNode; }
  std::byte* data() const { return block->data; }
};

}  // namespace hetex::memory

#endif  // HETEX_MEMORY_BLOCK_H_
