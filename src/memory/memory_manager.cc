#include "memory/memory_manager.h"

#include <cstdlib>

#include "common/logging.h"

namespace hetex::memory {

namespace {
uint64_t RoundUp64(uint64_t bytes) { return (bytes + 63) & ~uint64_t{63}; }
}  // namespace

MemoryManager::~MemoryManager() {
  for (auto& [ptr, bytes] : allocations_) std::free(ptr);
}

Result<void*> MemoryManager::Allocate(uint64_t bytes) {
  const uint64_t rounded = RoundUp64(bytes == 0 ? 64 : bytes);
  uint64_t prev = used_.fetch_add(rounded, std::memory_order_relaxed);
  if (prev + rounded > capacity_) {
    used_.fetch_sub(rounded, std::memory_order_relaxed);
    return Status::OutOfMemory("node " + std::to_string(node_) + ": requested " +
                               std::to_string(bytes) + "B, available " +
                               std::to_string(capacity_ - prev) + "B");
  }
  void* ptr = std::aligned_alloc(64, rounded);
  if (ptr == nullptr) {
    used_.fetch_sub(rounded, std::memory_order_relaxed);
    return Status::OutOfMemory("host allocation failed");
  }
  std::lock_guard<std::mutex> lock(mu_);
  allocations_[ptr] = rounded;
  return ptr;
}

void MemoryManager::Free(void* ptr) {
  if (ptr == nullptr) return;
  uint64_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = allocations_.find(ptr);
    HETEX_CHECK(it != allocations_.end()) << "Free of unknown pointer";
    bytes = it->second;
    allocations_.erase(it);
  }
  std::free(ptr);
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

Status MemoryManager::ChargeModeled(uint64_t bytes) {
  uint64_t prev = used_.fetch_add(bytes, std::memory_order_relaxed);
  if (prev + bytes > capacity_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::OutOfMemory("modeled capacity exceeded on node " +
                               std::to_string(node_));
  }
  return Status::OK();
}

void MemoryManager::ReleaseModeled(uint64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace hetex::memory
