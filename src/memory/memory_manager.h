#ifndef HETEX_MEMORY_MEMORY_MANAGER_H_
#define HETEX_MEMORY_MEMORY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sim/topology.h"

namespace hetex::memory {

/// \brief State-memory allocator for one memory node.
///
/// The paper distinguishes *state* memory (hash tables, accumulators — served by
/// memory managers) from *staging* memory (blocks in flight — served by block
/// managers, §4.3). This manager tracks usage against the node's modeled capacity
/// so that doesn't-fit conditions (e.g. DBMS G's Q4.3 failure) surface as
/// OutOfMemory instead of silently succeeding on the (larger) host.
class MemoryManager {
 public:
  MemoryManager(sim::MemNodeId node, uint64_t capacity)
      : node_(node), capacity_(capacity) {}
  ~MemoryManager();

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  /// Allocates `bytes` of state memory (64-byte aligned), charged against the
  /// node's modeled capacity.
  Result<void*> Allocate(uint64_t bytes);

  /// Frees a previous allocation.
  void Free(void* ptr);

  /// Charges modeled capacity without physically allocating (used when a scaled
  /// benchmark wants a full-scale footprint model; see DESIGN.md §1).
  Status ChargeModeled(uint64_t bytes);
  void ReleaseModeled(uint64_t bytes);

  sim::MemNodeId node() const { return node_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t available() const { return capacity_ - used(); }

 private:
  const sim::MemNodeId node_;
  const uint64_t capacity_;
  std::atomic<uint64_t> used_{0};
  std::mutex mu_;
  std::unordered_map<void*, uint64_t> allocations_;
};

/// Memory managers for every node of a topology.
class MemoryRegistry {
 public:
  explicit MemoryRegistry(const sim::Topology& topo) {
    managers_.reserve(topo.num_mem_nodes());
    for (int n = 0; n < topo.num_mem_nodes(); ++n) {
      managers_.push_back(
          std::make_unique<MemoryManager>(n, topo.mem_node(n).capacity));
    }
  }

  MemoryManager& manager(sim::MemNodeId node) { return *managers_.at(node); }

 private:
  std::vector<std::unique_ptr<MemoryManager>> managers_;
};

}  // namespace hetex::memory

#endif  // HETEX_MEMORY_MEMORY_MANAGER_H_
