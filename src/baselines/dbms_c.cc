#include "baselines/dbms_c.h"

#include <algorithm>

#include "common/timer.h"

namespace hetex::baselines {

core::QueryResult DbmsC::Execute(const plan::QuerySpec& spec,
                                 const OpStats* precomputed) {
  Timer timer;
  const sim::Topology& topo = system_->topology();
  const sim::CostModel& cm = topo.cost_model();

  OpStats local;
  if (precomputed == nullptr) {
    local = EvaluateWithStats(spec, system_->catalog());
    precomputed = &local;
  }
  const OpStats& st = *precomputed;

  const storage::Table& fact = system_->catalog().at(spec.fact_table);
  const int workers =
      options_.workers < 0 ? topo.num_cores() : std::max(1, options_.workers);

  // ------------------------------------------------------------- build phase
  // Hash tables are built once, shared via coherent memory (single-threaded
  // build; dimensions are small).
  sim::CostStats build;
  std::vector<uint64_t> ht_bytes(spec.joins.size());
  sim::VTime build_time = 0;
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    const storage::Table& dim = system_->catalog().at(spec.joins[j].build_table);
    uint64_t row_bytes = dim.column(spec.joins[j].build_key).width();
    for (const auto& p : spec.joins[j].payload) row_bytes += dim.column(p).width();
    build.bytes_read += st.dim_rows[j] * row_bytes;
    ht_bytes[j] = st.dim_selected[j] * (16 + 8 * spec.joins[j].payload.size()) * 2;
    build.near_accesses += st.dim_selected[j];  // inserts into a growing table
    build.bytes_written += st.dim_selected[j] * (16 + 8 * spec.joins[j].payload.size());
    build.tuples += st.dim_rows[j];
  }
  build_time = cm.WorkCost(build, cm.cpu, cm.cpu_core_bw);

  // ------------------------------------------------------------- probe phase
  // Vector-at-a-time: per-operator materialization of vectors and bitmaps.
  sim::CostStats work;

  // Scan + filter: read filter columns for all rows, materialize a selection
  // bitmap, read it back in the next operator.
  uint64_t filter_col_bytes = 0;
  if (spec.fact_filter != nullptr) {
    std::set<std::string> cols;
    spec.fact_filter->CollectColumns(&cols);
    for (const auto& c : cols) filter_col_bytes += fact.column(c).width();
    work.bytes_read += st.fact_rows * filter_col_bytes;
    work.bytes_written += st.fact_rows / 8;  // bitmap out
    work.bytes_read += st.fact_rows / 8;     // bitmap back in
    work.ops += st.fact_rows * 2;            // vectorized predicate evaluation
  }
  work.tuples += st.fact_rows;

  // Joins: gather the key vector (selected tuples only), probe, materialize the
  // payload vectors for the survivors.
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    const uint64_t in = st.probe_inputs[j];
    const uint64_t out = st.probe_outputs[j];
    work.bytes_read += in * fact.column(spec.joins[j].probe_key).width();
    work.bytes_written += in * 4;  // gathered selection vector
    switch (cm.RandomAccessClass(ht_bytes[j])) {
      case 0: work.near_accesses += in; break;
      case 1: work.mid_accesses += in; break;
      default: work.far_accesses += in; break;
    }
    const uint64_t payload_bytes = 8 * spec.joins[j].payload.size();
    work.bytes_written += out * payload_bytes;  // materialized payload vectors
    work.bytes_read += out * payload_bytes;     // read back downstream
    work.tuples += in;
    work.ops += in * 6;  // vector gather/scatter + selection-vector bookkeeping
  }

  // Aggregation: read the value columns for surviving tuples, fold into (hash)
  // accumulators.
  uint64_t agg_col_bytes = 0;
  for (const auto& agg : spec.aggs) {
    if (agg.value == nullptr) continue;
    std::set<std::string> cols;
    agg.value->CollectColumns(&cols);
    for (const auto& c : cols) {
      // Payload columns were charged above; fact columns read here.
      bool payload = false;
      for (const auto& join : spec.joins) {
        for (const auto& p : join.payload) payload |= (p == c);
      }
      if (!payload) agg_col_bytes += fact.column(c).width();
    }
  }
  work.bytes_read += st.agg_inputs * agg_col_bytes;
  work.ops += st.agg_inputs * (2 + spec.group_by.size());
  if (!spec.group_by.empty()) {
    const uint64_t agg_ht = st.groups * 2 * (8 + 8 * spec.aggs.size());
    switch (cm.RandomAccessClass(agg_ht)) {
      case 0: work.near_accesses += st.agg_inputs; break;
      case 1: work.mid_accesses += st.agg_inputs; break;
      default: work.far_accesses += st.agg_inputs; break;
    }
  }

  // Morsel-parallel: the work divides over `workers`; each worker's streaming
  // share saturates at the socket aggregate (same fluid model as the engine).
  sim::CostStats per_worker;
  per_worker = work;
  const double w = static_cast<double>(workers);
  per_worker.bytes_read = static_cast<uint64_t>(work.bytes_read / w);
  per_worker.bytes_written = static_cast<uint64_t>(work.bytes_written / w);
  per_worker.tuples = static_cast<uint64_t>(work.tuples / w);
  per_worker.ops = static_cast<uint64_t>(work.ops / w);
  per_worker.near_accesses = static_cast<uint64_t>(work.near_accesses / w);
  per_worker.mid_accesses = static_cast<uint64_t>(work.mid_accesses / w);
  per_worker.far_accesses = static_cast<uint64_t>(work.far_accesses / w);

  const double total_bw = cm.cpu_socket_bw * topo.num_sockets();
  const double share = std::min(cm.cpu_core_bw, total_bw / w);
  const sim::VTime probe_time = cm.WorkCost(per_worker, cm.cpu, share);

  // Final merge of the per-worker aggregation states (single-threaded), same as
  // any morsel-parallel engine pays.
  sim::CostStats merge;
  if (!spec.group_by.empty()) {
    const uint64_t partials = st.groups * static_cast<uint64_t>(workers);
    merge.tuples += partials;
    merge.near_accesses += partials;
    merge.bytes_read += partials * 8 * (1 + spec.aggs.size());
  }
  const sim::VTime merge_time = cm.WorkCost(merge, cm.cpu, cm.cpu_core_bw);

  core::QueryResult result;
  result.rows = st.rows;
  result.modeled_seconds =
      options_.startup_seconds + build_time + probe_time + merge_time;
  result.stats = work;
  result.stats.Add(build);
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace hetex::baselines
