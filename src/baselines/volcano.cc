#include "baselines/volcano.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"
#include "jit/hash_table.h"

namespace hetex::baselines {

namespace {

using plan::QuerySpec;
using storage::Table;

/// A row flowing through the iterator tree: values addressed by schema slot.
using Row = std::vector<int64_t>;

/// Schema: column name -> slot in the Row.
class Schema {
 public:
  int Add(const std::string& name) {
    auto [it, inserted] = slots_.try_emplace(name, static_cast<int>(slots_.size()));
    return it->second;
  }
  int SlotOf(const std::string& name) const {
    auto it = slots_.find(name);
    HETEX_CHECK(it != slots_.end()) << "volcano: unbound column " << name;
    return it->second;
  }
  bool Has(const std::string& name) const { return slots_.count(name) > 0; }
  size_t size() const { return slots_.size(); }

 private:
  std::unordered_map<std::string, int> slots_;
};

/// The classical iterator interface: open()/next()/close() (paper §2.2).
/// next() fills `row` and returns true, or returns false at end of input.
/// `calls` counts next() invocations across the whole tree — the quantity the
/// interpretation-overhead model charges.
class Iterator {
 public:
  virtual ~Iterator() = default;
  virtual void Open() = 0;
  virtual bool Next(Row* row) = 0;
  virtual void Close() = 0;
};

class ScanIterator : public Iterator {
 public:
  ScanIterator(const Table* table, const std::vector<std::string>& cols,
               const Schema& schema, uint64_t row_begin, uint64_t row_end,
               uint64_t* calls, sim::CostStats* stats)
      : table_(table), row_(row_begin), end_(row_end), calls_(calls),
        stats_(stats) {
    for (const auto& name : cols) {
      cols_.push_back({&table->column(name), schema.SlotOf(name)});
    }
  }

  void Open() override {}
  bool Next(Row* row) override {
    ++*calls_;
    if (row_ >= end_) return false;
    for (const auto& [col, slot] : cols_) {
      (*row)[slot] = col->At(row_);
      stats_->bytes_read += col->width();
    }
    ++row_;
    ++stats_->tuples;
    return true;
  }
  void Close() override {}

 private:
  const Table* table_;
  std::vector<std::pair<const storage::Column*, int>> cols_;
  uint64_t row_;
  uint64_t end_;
  uint64_t* calls_;
  sim::CostStats* stats_;
};

class FilterIterator : public Iterator {
 public:
  FilterIterator(std::unique_ptr<Iterator> child, plan::ExprPtr predicate,
                 const Schema* schema, uint64_t* calls)
      : child_(std::move(child)), predicate_(std::move(predicate)),
        schema_(schema), calls_(calls) {}

  void Open() override { child_->Open(); }
  bool Next(Row* row) override {
    ++*calls_;
    while (child_->Next(row)) {
      const auto getter = [&](const std::string& name) {
        return (*row)[schema_->SlotOf(name)];
      };
      if (predicate_->Eval(getter) != 0) return true;
    }
    return false;
  }
  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Iterator> child_;
  plan::ExprPtr predicate_;
  const Schema* schema_;
  uint64_t* calls_;
};

/// Hash join against a pre-built (shared, read-only) dimension index.
class HashJoinIterator : public Iterator {
 public:
  struct BuildSide {
    std::unordered_multimap<int64_t, Row> index;  ///< key -> payload row values
    std::vector<int> payload_slots;               ///< slots in the probe schema
    uint64_t bytes = 0;                           ///< modeled footprint
  };

  HashJoinIterator(std::unique_ptr<Iterator> child, const BuildSide* build,
                   int key_slot, size_t row_width, uint64_t* calls,
                   sim::CostStats* stats, int access_class)
      : child_(std::move(child)), build_(build), key_slot_(key_slot),
        calls_(calls), stats_(stats), access_class_(access_class),
        pending_(row_width) {}

  void Open() override { child_->Open(); }

  bool Next(Row* row) override {
    ++*calls_;
    while (true) {
      if (matches_ != end_) {
        EmitMatch(row);
        return true;
      }
      if (!child_->Next(&pending_)) return false;
      switch (access_class_) {
        case 0: ++stats_->near_accesses; break;
        case 1: ++stats_->mid_accesses; break;
        default: ++stats_->far_accesses; break;
      }
      std::tie(matches_, end_) = build_->index.equal_range(pending_[key_slot_]);
    }
  }

  void Close() override { child_->Close(); }

 private:
  void EmitMatch(Row* row) {
    *row = pending_;
    const Row& payload = matches_->second;
    for (size_t i = 0; i < build_->payload_slots.size(); ++i) {
      (*row)[build_->payload_slots[i]] = payload[i];
    }
    ++matches_;
  }

  std::unique_ptr<Iterator> child_;
  const BuildSide* build_;
  int key_slot_;
  uint64_t* calls_;
  sim::CostStats* stats_;
  int access_class_;
  Row pending_;
  std::unordered_multimap<int64_t, Row>::const_iterator matches_{};
  std::unordered_multimap<int64_t, Row>::const_iterator end_ = matches_;
};

}  // namespace

core::QueryResult VolcanoEngine::Execute(const QuerySpec& spec) {
  Timer timer;
  core::QueryResult result;
  const sim::Topology& topo = system_->topology();
  const sim::CostModel& cm = topo.cost_model();
  const Table& fact = system_->catalog().at(spec.fact_table);
  const int workers =
      options_.workers < 0 ? topo.num_cores() : std::max(1, options_.workers);

  // ---- Schema of the row flowing through the tree: fact columns + payloads.
  Schema schema;
  std::set<std::string> fact_cols;
  if (spec.fact_filter != nullptr) spec.fact_filter->CollectColumns(&fact_cols);
  for (const auto& join : spec.joins) fact_cols.insert(join.probe_key);
  std::set<std::string> payload_names;
  for (const auto& join : spec.joins) {
    for (const auto& p : join.payload) payload_names.insert(p);
  }
  for (const auto& agg : spec.aggs) {
    if (agg.value != nullptr) agg.value->CollectColumns(&fact_cols);
  }
  for (const auto& g : spec.group_by) g->CollectColumns(&fact_cols);
  std::vector<std::string> scan_cols;
  for (const auto& c : fact_cols) {
    if (payload_names.find(c) == payload_names.end()) {
      schema.Add(c);
      scan_cols.push_back(c);
    }
  }
  for (const auto& p : payload_names) schema.Add(p);

  // ---- Build the shared dimension indexes (single-threaded, as in the
  // classical Exchange plan: builds below the Exchange run once).
  sim::CostStats build_stats;
  uint64_t build_calls = 0;
  std::vector<HashJoinIterator::BuildSide> builds(spec.joins.size());
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    const auto& join = spec.joins[j];
    const Table& dim = system_->catalog().at(join.build_table);
    for (const auto& p : join.payload) {
      builds[j].payload_slots.push_back(schema.SlotOf(p));
    }
    const auto getter = [&](uint64_t r) {
      return [&dim, r](const std::string& name) { return dim.column(name).At(r); };
    };
    for (uint64_t r = 0; r < dim.rows(); ++r) {
      ++build_calls;
      ++build_stats.tuples;
      build_stats.bytes_read += 8;
      if (join.build_filter != nullptr && join.build_filter->Eval(getter(r)) == 0) {
        continue;
      }
      Row payload(join.payload.size());
      for (size_t i = 0; i < join.payload.size(); ++i) {
        payload[i] = dim.column(join.payload[i]).At(r);
      }
      builds[j].index.emplace(dim.column(join.build_key).At(r), std::move(payload));
      ++build_stats.near_accesses;
      build_stats.bytes_written += 16 + 8 * join.payload.size();
    }
    builds[j].bytes = builds[j].index.size() * (32 + 8 * join.payload.size());
  }

  // ---- Per-worker iterator trees over row ranges (Exchange-style horizontal
  // parallelism with a final merge).
  const bool grouped = !spec.group_by.empty();
  const plan::ExprPtr group_key =
      grouped ? plan::CombineGroupKeys(spec.group_by) : nullptr;
  std::map<int64_t, std::vector<int64_t>> groups;
  std::vector<int64_t> scalars(spec.aggs.size());
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    scalars[a] = jit::AggIdentity(spec.aggs[a].func);
  }
  sim::CostStats work;
  uint64_t next_calls = 0;

  const uint64_t rows = fact.rows();
  const uint64_t per_worker = (rows + workers - 1) / workers;
  // Functional execution is single-threaded over the ranges (results must not
  // depend on interleaving); the cost model divides by `workers` below.
  for (int w = 0; w < workers; ++w) {
    const uint64_t begin = std::min<uint64_t>(w * per_worker, rows);
    const uint64_t end = std::min<uint64_t>(begin + per_worker, rows);
    if (begin == end) continue;

    std::unique_ptr<Iterator> tree = std::make_unique<ScanIterator>(
        &fact, scan_cols, schema, begin, end, &next_calls, &work);
    if (spec.fact_filter != nullptr) {
      tree = std::make_unique<FilterIterator>(std::move(tree), spec.fact_filter,
                                              &schema, &next_calls);
    }
    for (size_t j = 0; j < spec.joins.size(); ++j) {
      tree = std::make_unique<HashJoinIterator>(
          std::move(tree), &builds[j], schema.SlotOf(spec.joins[j].probe_key),
          schema.size(), &next_calls, &work,
          cm.RandomAccessClass(builds[j].bytes));
    }

    Row row(schema.size());
    tree->Open();
    const auto getter = [&](const std::string& name) {
      return row[schema.SlotOf(name)];
    };
    while (tree->Next(&row)) {
      if (grouped) {
        auto [it, inserted] = groups.try_emplace(group_key->Eval(getter));
        if (inserted) {
          it->second.resize(spec.aggs.size());
          for (size_t a = 0; a < spec.aggs.size(); ++a) {
            it->second[a] =
                jit::AggIdentity(spec.aggs[a].func == jit::AggFunc::kCount
                                     ? jit::AggFunc::kSum
                                     : spec.aggs[a].func);
          }
        }
        for (size_t a = 0; a < spec.aggs.size(); ++a) {
          if (spec.aggs[a].func == jit::AggFunc::kCount) {
            jit::AggApply(jit::AggFunc::kSum, &it->second[a], 1);
          } else {
            jit::AggApply(spec.aggs[a].func, &it->second[a],
                          spec.aggs[a].value->Eval(getter));
          }
        }
        ++work.near_accesses;
      } else {
        for (size_t a = 0; a < spec.aggs.size(); ++a) {
          const int64_t v = spec.aggs[a].func == jit::AggFunc::kCount
                                ? 0
                                : spec.aggs[a].value->Eval(getter);
          jit::AggApply(spec.aggs[a].func, &scalars[a], v);
        }
      }
      ++next_calls;  // the aggregation root's next()
    }
    tree->Close();
  }

  // ---- Modeled time: the shared data costs plus one interpretation charge per
  // next() call, divided over the workers.
  const double w = static_cast<double>(workers);
  sim::CostStats per_worker_stats = work;
  per_worker_stats.bytes_read = static_cast<uint64_t>(work.bytes_read / w);
  per_worker_stats.bytes_written = static_cast<uint64_t>(work.bytes_written / w);
  per_worker_stats.tuples = static_cast<uint64_t>(work.tuples / w);
  per_worker_stats.near_accesses = static_cast<uint64_t>(work.near_accesses / w);
  per_worker_stats.mid_accesses = static_cast<uint64_t>(work.mid_accesses / w);
  per_worker_stats.far_accesses = static_cast<uint64_t>(work.far_accesses / w);
  const double share =
      std::min(cm.cpu_core_bw, cm.cpu_socket_bw * topo.num_sockets() / w);
  const sim::VTime data_time = cm.WorkCost(per_worker_stats, cm.cpu, share);
  const sim::VTime interp_time = next_calls / w * options_.next_call_cost;
  const sim::VTime build_time =
      cm.WorkCost(build_stats, cm.cpu, cm.cpu_core_bw) +
      build_calls * options_.next_call_cost;

  if (grouped) {
    for (const auto& [key, accs] : groups) {
      std::vector<int64_t> out_row{key};
      out_row.insert(out_row.end(), accs.begin(), accs.end());
      result.rows.push_back(std::move(out_row));
    }
  } else {
    result.rows.push_back(scalars);
  }
  result.modeled_seconds =
      options_.startup_seconds + build_time + data_time + interp_time;
  result.stats = work;
  result.stats.Add(build_stats);
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace hetex::baselines
