#include "baselines/op_stats.h"

#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "common/logging.h"
#include "jit/hash_table.h"

namespace hetex::baselines {

namespace {

/// Fast row getter over a fixed set of columns (linear scan over few names).
class RowEnv {
 public:
  void Bind(const std::string& name, const storage::Column* col,
            const uint64_t* row) {
    cols_.push_back({name, col, row});
  }

  int64_t Get(const std::string& name) const {
    for (const auto& b : cols_) {
      if (b.name == name) return b.col->At(*b.row);
    }
    HETEX_CHECK(false) << "unbound column " << name;
    return 0;
  }

 private:
  struct Binding {
    std::string name;
    const storage::Column* col;
    const uint64_t* row;
  };
  std::vector<Binding> cols_;
};

}  // namespace

OpStats EvaluateWithStats(const plan::QuerySpec& spec,
                          const storage::Catalog& catalog) {
  OpStats stats;
  const storage::Table& fact = catalog.at(spec.fact_table);
  const size_t n_joins = spec.joins.size();
  stats.fact_rows = fact.rows();
  stats.probe_inputs.assign(n_joins, 0);
  stats.probe_outputs.assign(n_joins, 0);
  stats.dim_rows.assign(n_joins, 0);
  stats.dim_selected.assign(n_joins, 0);

  // Working-set bytes.
  std::set<std::string> fact_cols;
  if (spec.fact_filter != nullptr) spec.fact_filter->CollectColumns(&fact_cols);
  for (const auto& join : spec.joins) fact_cols.insert(join.probe_key);
  for (const auto& agg : spec.aggs) {
    if (agg.value != nullptr) agg.value->CollectColumns(&fact_cols);
  }
  std::set<std::string> payload_names;
  for (const auto& join : spec.joins) {
    for (const auto& p : join.payload) payload_names.insert(p);
  }
  for (const auto& c : fact_cols) {
    if (payload_names.find(c) == payload_names.end()) {
      stats.fact_bytes += fact.column(c).bytes();
    }
  }

  // Dimension indexes.
  struct Dim {
    const storage::Table* table;
    std::unordered_multimap<int64_t, uint64_t> index;
  };
  std::vector<Dim> dims(n_joins);
  uint64_t dim_row = 0;
  for (size_t j = 0; j < n_joins; ++j) {
    const auto& join = spec.joins[j];
    const storage::Table& table = catalog.at(join.build_table);
    dims[j].table = &table;
    stats.dim_rows[j] = table.rows();
    stats.dim_bytes += table.column(join.build_key).bytes();
    for (const auto& p : join.payload) stats.dim_bytes += table.column(p).bytes();

    RowEnv env;
    std::set<std::string> cols;
    if (join.build_filter != nullptr) join.build_filter->CollectColumns(&cols);
    for (const auto& c : cols) env.Bind(c, &table.column(c), &dim_row);
    const plan::RowGetter getter = [&env](const std::string& n) {
      return env.Get(n);
    };
    for (dim_row = 0; dim_row < table.rows(); ++dim_row) {
      if (join.build_filter != nullptr && join.build_filter->Eval(getter) == 0) {
        continue;
      }
      ++stats.dim_selected[j];
      dims[j].index.emplace(table.column(join.build_key).At(dim_row), dim_row);
    }
  }

  // Fact scan.
  uint64_t fact_row = 0;
  std::vector<uint64_t> matched(n_joins, 0);
  RowEnv env;
  {
    std::set<std::string> cols;
    if (spec.fact_filter != nullptr) spec.fact_filter->CollectColumns(&cols);
    for (const auto& agg : spec.aggs) {
      if (agg.value != nullptr) agg.value->CollectColumns(&cols);
    }
    for (const auto& g : spec.group_by) g->CollectColumns(&cols);
    for (size_t j = 0; j < n_joins; ++j) cols.insert(spec.joins[j].probe_key);
    for (const auto& c : cols) {
      bool is_payload = false;
      for (size_t j = 0; j < n_joins; ++j) {
        for (const auto& p : spec.joins[j].payload) {
          if (p == c) {
            env.Bind(c, &dims[j].table->column(c), &matched[j]);
            is_payload = true;
            break;
          }
        }
        if (is_payload) break;
      }
      if (!is_payload) env.Bind(c, &fact.column(c), &fact_row);
    }
  }
  const plan::RowGetter getter = [&env](const std::string& n) { return env.Get(n); };

  const bool grouped = !spec.group_by.empty();
  const plan::ExprPtr group_key =
      grouped ? plan::CombineGroupKeys(spec.group_by) : nullptr;
  std::map<int64_t, std::vector<int64_t>> groups;
  std::vector<int64_t> scalars(spec.aggs.size());
  for (size_t a = 0; a < spec.aggs.size(); ++a) {
    scalars[a] = jit::AggIdentity(spec.aggs[a].func);
  }

  std::function<void(size_t)> probe = [&](size_t j) {
    if (j == n_joins) {
      ++stats.agg_inputs;
      if (grouped) {
        auto [it, inserted] = groups.try_emplace(group_key->Eval(getter));
        if (inserted) {
          it->second.resize(spec.aggs.size());
          for (size_t a = 0; a < spec.aggs.size(); ++a) {
            it->second[a] = jit::AggIdentity(spec.aggs[a].func == jit::AggFunc::kCount
                                                 ? jit::AggFunc::kSum
                                                 : spec.aggs[a].func);
          }
        }
        for (size_t a = 0; a < spec.aggs.size(); ++a) {
          if (spec.aggs[a].func == jit::AggFunc::kCount) {
            jit::AggApply(jit::AggFunc::kSum, &it->second[a], 1);
          } else {
            jit::AggApply(spec.aggs[a].func, &it->second[a],
                          spec.aggs[a].value->Eval(getter));
          }
        }
      } else {
        for (size_t a = 0; a < spec.aggs.size(); ++a) {
          const int64_t v = spec.aggs[a].func == jit::AggFunc::kCount
                                ? 0
                                : spec.aggs[a].value->Eval(getter);
          jit::AggApply(spec.aggs[a].func, &scalars[a], v);
        }
      }
      return;
    }
    ++stats.probe_inputs[j];
    const int64_t key = fact.column(spec.joins[j].probe_key).At(fact_row);
    auto [lo, hi] = dims[j].index.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      matched[j] = it->second;
      ++stats.probe_outputs[j];
      probe(j + 1);
    }
  };

  for (fact_row = 0; fact_row < fact.rows(); ++fact_row) {
    if (spec.fact_filter != nullptr && spec.fact_filter->Eval(getter) == 0) continue;
    ++stats.after_filter;
    probe(0);
  }

  if (grouped) {
    stats.groups = groups.size();
    for (const auto& [key, accs] : groups) {
      std::vector<int64_t> row{key};
      row.insert(row.end(), accs.begin(), accs.end());
      stats.rows.push_back(std::move(row));
    }
  } else {
    stats.groups = 1;
    stats.rows.push_back(scalars);
  }
  return stats;
}

}  // namespace hetex::baselines
