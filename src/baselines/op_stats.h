#ifndef HETEX_BASELINES_OP_STATS_H_
#define HETEX_BASELINES_OP_STATS_H_

#include <cstdint>
#include <vector>

#include "plan/query_spec.h"
#include "storage/table.h"

namespace hetex::baselines {

/// \brief Per-operator cardinalities of one query evaluation, plus the (correct)
/// result rows.
///
/// Both commercial-engine emulations share one functional evaluation: their
/// *paradigm* differences (vector materialization vs operator-at-a-time kernels)
/// are cost-structure differences over identical operator cardinalities, so the
/// evaluation is done once and each engine converts the counts into modeled time
/// its own way.
struct OpStats {
  uint64_t fact_rows = 0;
  uint64_t after_filter = 0;            ///< fact tuples surviving the fact filter
  std::vector<uint64_t> probe_inputs;   ///< tuples entering probe of join j
  std::vector<uint64_t> probe_outputs;  ///< tuples surviving join j
  std::vector<uint64_t> dim_rows;       ///< build-side rows per join
  std::vector<uint64_t> dim_selected;   ///< build rows passing the build filter
  uint64_t agg_inputs = 0;              ///< tuples reaching aggregation
  uint64_t groups = 0;                  ///< distinct output groups
  std::vector<std::vector<int64_t>> rows;  ///< result (reference layout)

  /// Bytes of fact columns the query touches (working set for transfer/fit
  /// decisions).
  uint64_t fact_bytes = 0;
  uint64_t dim_bytes = 0;
};

/// Evaluates a query functionally (single-threaded, correct) and records the
/// operator cardinalities above.
OpStats EvaluateWithStats(const plan::QuerySpec& spec,
                          const storage::Catalog& catalog);

}  // namespace hetex::baselines

#endif  // HETEX_BASELINES_OP_STATS_H_
