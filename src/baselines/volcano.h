#ifndef HETEX_BASELINES_VOLCANO_H_
#define HETEX_BASELINES_VOLCANO_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/op_stats.h"
#include "core/executor.h"
#include "core/system.h"

namespace hetex::baselines {

/// Tuning knobs of the interpreted engine.
struct VolcanoOptions {
  int workers = -1;  ///< -1: all cores (classical Exchange-style parallelism)
  /// Modeled cost of one iterator next() call: virtual dispatch + branch
  /// mispredictions + poor code locality (the overheads §2.2 cites from
  /// MonetDB/X100 and HyPer). ~20 ns per call per operator boundary.
  double next_call_cost = 20e-9;
  double startup_seconds = 2e-3;  ///< no JIT: cheap plan instantiation
};

/// \brief Classical Volcano engine: interpreted, tuple-at-a-time iterators.
///
/// The execution model the paper's §2.2 motivates *against*: every operator
/// exposes open()/next()/close(); one virtual next() call chain per tuple per
/// operator, tuples materialized in row buffers between operators. Parallelized
/// the classical way (Exchange-style range partitioning over workers with a
/// final merge) so the comparison against vectorized (DBMS C) and JIT-compiled
/// (this repo's engine) execution isolates the *execution model*, not
/// parallelism.
///
/// Functionally real: the iterator tree actually runs, row at a time; the
/// modeled time adds the per-next()-call interpretation overhead to the same
/// calibrated data costs every engine shares.
class VolcanoEngine {
 public:
  explicit VolcanoEngine(core::System* system, VolcanoOptions options = {});

  core::QueryResult Execute(const plan::QuerySpec& spec);

 private:
  core::System* system_;
  VolcanoOptions options_;
};

inline VolcanoEngine::VolcanoEngine(core::System* system, VolcanoOptions options)
    : system_(system), options_(std::move(options)) {}

}  // namespace hetex::baselines

#endif  // HETEX_BASELINES_VOLCANO_H_
