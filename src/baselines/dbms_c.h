#ifndef HETEX_BASELINES_DBMS_C_H_
#define HETEX_BASELINES_DBMS_C_H_

#include "baselines/op_stats.h"
#include "core/executor.h"
#include "core/system.h"

namespace hetex::baselines {

/// \brief Emulation of "DBMS C": a columnar, SIMD vector-at-a-time CPU engine in
/// the MonetDB/X100 mold (paper §6).
///
/// Cost structure: every operator materializes its output — selection bitmaps,
/// gathered key vectors, join payload vectors — which is read back by the next
/// operator. That materialization traffic is exactly what the paper credits for
/// Proteus CPU's advantage on low-selectivity queries (Q3.1/Q3.2) and for parity
/// on highly selective ones (Q3.3/Q3.4). Work is spread across all cores with
/// morsel partitioning; random accesses use the same calibrated CPU constants as
/// the main engine.
struct DbmsCOptions {
  int workers = -1;          ///< -1: all cores
  int vector_size = 4096;    ///< X100-style vector length
  double startup_seconds = 5e-3;  ///< plan/dispatch setup (no JIT)
};

class DbmsC {
 public:
  using Options = DbmsCOptions;

  explicit DbmsC(core::System* system, Options options = {});

  /// Runs the query; `precomputed` (optional) skips re-evaluating cardinalities
  /// when the caller already ran EvaluateWithStats for this spec.
  core::QueryResult Execute(const plan::QuerySpec& spec,
                            const OpStats* precomputed = nullptr);

 private:
  core::System* system_;
  Options options_;
};

inline DbmsC::DbmsC(core::System* system, Options options)
    : system_(system), options_(std::move(options)) {}

}  // namespace hetex::baselines

#endif  // HETEX_BASELINES_DBMS_C_H_
