#ifndef HETEX_BASELINES_DBMS_G_H_
#define HETEX_BASELINES_DBMS_G_H_

#include <vector>

#include "baselines/op_stats.h"
#include "core/executor.h"
#include "core/system.h"

namespace hetex::baselines {

/// \brief Emulation of "DBMS G": a JIT, columnar, operator-at-a-time multi-GPU
/// engine (paper §6).
///
/// Behaviours reproduced as mechanisms (each one the paper explicitly reports):
///  * star joins as dense dimension arrays indexed by key, with dimension filters
///    applied *after* the join — selective predicates barely help (§6.1, Q3.x);
///  * every thread block allocates ~2x the registers Proteus does, halving
///    effective occupancy/bandwidth (`occupancy` option, §6.1 Q1.x);
///  * operator-at-a-time execution with full materialization of intermediates in
///    GPU memory between kernels (§2.3);
///  * non-resident data staged from *pageable* host memory, capping transfer
///    bandwidth below half of the pinned DMA rate (§6.2, Q1.x at SF1000);
///  * no support for string range predicates: Q2.2 reverts to CPU execution
///    (reported as Unsupported — the paper measures >1 hour);
///  * Q4.3-at-scale cardinality-estimation failure when the working set exceeds
///    device memory (OutOfMemory).
struct DbmsGOptions {
  std::vector<int> gpus;       ///< empty: all
  bool data_on_gpu = false;    ///< working set pre-loaded in device memory
  double occupancy = 0.5;      ///< effective bandwidth fraction (register pressure)
  double startup_seconds = 8e-3;  ///< JIT compile + kernel upload
};

class DbmsG {
 public:
  using Options = DbmsGOptions;

  explicit DbmsG(core::System* system, Options options = {});

  core::QueryResult Execute(const plan::QuerySpec& spec,
                            const OpStats* precomputed = nullptr);

 private:
  core::System* system_;
  Options options_;
};

inline DbmsG::DbmsG(core::System* system, Options options)
    : system_(system), options_(std::move(options)) {}

}  // namespace hetex::baselines

#endif  // HETEX_BASELINES_DBMS_G_H_
