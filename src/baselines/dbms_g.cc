#include "baselines/dbms_g.h"

#include <algorithm>

#include "common/timer.h"

namespace hetex::baselines {

core::QueryResult DbmsG::Execute(const plan::QuerySpec& spec,
                                 const OpStats* precomputed) {
  Timer timer;
  core::QueryResult result;
  const sim::Topology& topo = system_->topology();
  const sim::CostModel& cm = topo.cost_model();

  std::vector<int> gpus = options_.gpus;
  if (gpus.empty()) {
    for (int g = 0; g < topo.num_gpus(); ++g) gpus.push_back(g);
  }
  if (gpus.empty()) {
    result.status = Status::InvalidArgument("DBMS G needs at least one GPU");
    return result;
  }

  // Feature gate: string inequality predicates are not executable on device;
  // the engine reverts to (hour-long) CPU execution (§6.1/6.2, Q2.2).
  if (spec.uses_string_range_predicate) {
    result.status = Status::Unsupported(
        "string range predicate: DBMS G reverts to CPU-only execution");
    return result;
  }

  OpStats local;
  if (precomputed == nullptr) {
    local = EvaluateWithStats(spec, system_->catalog());
    precomputed = &local;
  }
  const OpStats& st = *precomputed;

  const uint64_t working_set = st.fact_bytes + st.dim_bytes;
  const bool fits = working_set <= topo.AggregateGpuCapacity();

  // Cardinality-estimation OOM: the dense group-domain estimation buffer (the
  // price of the star-join dense-array approach) no longer fits in device memory
  // alongside the streaming buffers once the working set exceeds capacity
  // (§6.2: Q4.3 at SF1000, whose group domain is year x city x brand).
  if (!fits && spec.group_domain_cardinality >= 1'000'000) {
    result.status = Status::OutOfMemory(
        "cardinality estimation buffers exceed device memory");
    return result;
  }

  const int n_gpus = static_cast<int>(gpus.size());
  const double occ_bw = cm.gpu_mem_bw * options_.occupancy;

  // Per-GPU work: the fact table is co-partitioned across GPUs.
  const double per_gpu = 1.0 / n_gpus;

  // ---------------------------------------------------------------- transfers
  // Non-resident working sets stream from pageable host memory over each GPU's
  // PCIe link; operator-at-a-time leaves little transfer/compute overlap beyond
  // the per-column pipelining the engine manages, so transfer time is the
  // pageable-bandwidth lower bound.
  sim::VTime transfer_time = 0;
  if (!options_.data_on_gpu) {
    const double bytes_per_gpu = static_cast<double>(working_set) * per_gpu;
    transfer_time = bytes_per_gpu / cm.pcie_pageable_bw + cm.dma_latency;
  }

  // ------------------------------------------------------------------ kernels
  sim::CostStats work;  // per GPU
  uint64_t kernels = 0;

  // Dimension preprocessing: build dense arrays dimtable[key] (one kernel per
  // dimension) and evaluate dimension predicates into flag columns that are
  // checked after the star join.
  std::vector<uint64_t> array_bytes(spec.joins.size());
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    const uint64_t stride = 8 + 8 * spec.joins[j].payload.size() + 1;
    array_bytes[j] = st.dim_rows[j] * stride;
    work.bytes_read += st.dim_rows[j] * 16;
    work.bytes_written += array_bytes[j];
    work.tuples += st.dim_rows[j];
    kernels += 2;  // array scatter + predicate flags
  }

  const uint64_t rows = static_cast<uint64_t>(st.fact_rows * per_gpu);

  // Fact-side predicate kernel (materializes a flag column).
  if (spec.fact_filter != nullptr) {
    std::set<std::string> cols;
    spec.fact_filter->CollectColumns(&cols);
    uint64_t width = 0;
    const storage::Table& fact = system_->catalog().at(spec.fact_table);
    for (const auto& c : cols) width += fact.column(c).width();
    work.bytes_read += rows * width;
    work.bytes_written += rows;  // flag column
    work.tuples += rows;
    ++kernels;
  }

  // Star join: one kernel per dimension, each an array lookup over *all* fact
  // rows (filters apply after the join, so selectivity does not narrow the
  // probes); each kernel materializes the gathered payload columns.
  for (size_t j = 0; j < spec.joins.size(); ++j) {
    work.bytes_read += rows * 4;  // key column
    switch (cm.RandomAccessClass(array_bytes[j])) {
      case 0: work.near_accesses += rows; break;
      case 1: work.mid_accesses += rows; break;
      default: work.far_accesses += rows; break;
    }
    const uint64_t out_bytes = 8 * (spec.joins[j].payload.size() + 1);
    work.bytes_written += rows * out_bytes;
    work.bytes_read += rows * out_bytes;  // read back by the next kernel
    work.tuples += rows;
    ++kernels;
  }

  // Aggregation kernel over the joined+flag-checked rows.
  const uint64_t agg_rows = static_cast<uint64_t>(st.agg_inputs * per_gpu);
  work.bytes_read += rows * 8;  // flags + compacted ids
  work.tuples += rows;
  work.atomics += agg_rows / 8;  // warp-aggregated atomics
  if (!spec.group_by.empty()) {
    const uint64_t agg_ht = st.groups * 2 * (8 + 8 * spec.aggs.size());
    switch (cm.RandomAccessClass(agg_ht)) {
      case 0: work.near_accesses += agg_rows; break;
      case 1: work.mid_accesses += agg_rows; break;
      default: work.far_accesses += agg_rows; break;
    }
  }
  ++kernels;

  const sim::VTime kernel_time =
      cm.WorkCost(work, cm.gpu, occ_bw) + kernels * cm.kernel_launch_latency;

  // Transfers pipeline with kernels across column granularity; the slower of the
  // two dominates, plus the result readback.
  const sim::VTime gpu_time = std::max(transfer_time, kernel_time);
  const sim::VTime readback = st.groups * 24.0 / cm.pcie_bw + cm.dma_latency;

  result.rows = st.rows;
  result.modeled_seconds = options_.startup_seconds + gpu_time + readback;
  result.stats = work;
  result.wall_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace hetex::baselines
