#include "sim/cost_model.h"

namespace hetex::sim {

CostModel CostModel::Paper() {
  CostModel m;
  // CPU core: ~0.3 ns fused per-tuple overhead, cheap micro-ops, DRAM-latency
  // random accesses with limited memory-level parallelism (effective ~12 ns).
  m.cpu = DeviceCaps{
      /*tuple_cost=*/0.3e-9,
      /*op_cost=*/0.08e-9,
      /*atomic_cost=*/6e-9,
      /*near_access_cost=*/1.0e-9,
      /*mid_access_cost=*/4.0e-9,
      /*far_access_cost=*/12.0e-9,
      /*random_line_bytes=*/64.0,
  };
  // GPU: thousands of threads hide latency; constants are the *effective
  // reciprocal-throughput per tuple of the whole kernel*, not per physical thread.
  m.gpu = DeviceCaps{
      /*tuple_cost=*/0.012e-9,
      /*op_cost=*/0.004e-9,
      /*atomic_cost=*/0.05e-9,   // amortized via neighborhood (warp) reduction
      /*near_access_cost=*/0.03e-9,
      /*mid_access_cost=*/0.15e-9,
      /*far_access_cost=*/0.60e-9,
      /*random_line_bytes=*/32.0,  // GDDR transaction granularity
  };
  return m;
}

}  // namespace hetex::sim
