#ifndef HETEX_SIM_DMA_ENGINE_H_
#define HETEX_SIM_DMA_ENGINE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "sim/topology.h"
#include "sim/vtime.h"

namespace hetex::sim {

/// \brief Completion handle for an asynchronous DMA transfer.
///
/// `ready_at` is the modeled completion time (computed at schedule time from the
/// link's virtual-time queue); `Wait()` blocks until the functional copy finished.
/// The mem-move operator's producer half schedules transfers and keeps going; its
/// consumer half calls Wait() before handing the block to the next pipeline —
/// mirroring the paper's split mem-move design (§3.2).
class TransferTicket {
 public:
  TransferTicket() : ready_at_(0) {}
  TransferTicket(VTime ready_at, std::shared_future<void> done)
      : ready_at_(ready_at), done_(std::move(done)) {}

  VTime ready_at() const { return ready_at_; }
  void Wait() const {
    if (done_.valid()) done_.get();
  }
  bool valid() const { return done_.valid(); }

 private:
  VTime ready_at_;
  std::shared_future<void> done_;
};

/// \brief Asynchronous copy engine over the simulated PCIe links.
///
/// One worker thread per link performs the functional memcpy; modeled timing comes
/// from the link's BandwidthServer (so queueing/pipelining of back-to-back
/// transfers shows up in virtual time). `pageable=true` models transfers whose
/// source was not pinned: the DMA engine must stage through a bounce buffer,
/// halving effective bandwidth — the DBMS G behaviour the paper calls out in §6.2.
class DmaEngine {
 public:
  explicit DmaEngine(Topology* topo);
  ~DmaEngine();

  DmaEngine(const DmaEngine&) = delete;
  DmaEngine& operator=(const DmaEngine&) = delete;

  /// Schedules an async copy of `bytes` from `src` to `dst` over `link`.
  /// `earliest` is the session-local virtual time at which the source data
  /// exists; `epoch` is the absolute arrival time of the owning query session.
  /// The transfer queues on the shared link at `epoch + earliest` (contending
  /// with every in-flight session) and the ticket's `ready_at` comes back
  /// session-local.
  TransferTicket Transfer(const void* src, void* dst, uint64_t bytes, int link,
                          VTime earliest, bool pageable = false,
                          VTime epoch = 0.0);

  /// Convenience: schedule and wait; returns modeled completion time.
  VTime TransferSync(const void* src, void* dst, uint64_t bytes, int link,
                     VTime earliest, bool pageable = false, VTime epoch = 0.0);

  /// Schedules an async copy over GPU peer link `peer_link` (an index into
  /// Topology::peer_link). Same epoch-anchored first-fit queueing as Transfer,
  /// but on the NVLink-class server — single hop, no host staging, and no
  /// pageable penalty (both endpoints are device memory).
  TransferTicket TransferPeer(const void* src, void* dst, uint64_t bytes,
                              int peer_link, VTime earliest, VTime epoch = 0.0);

 private:
  struct Job {
    const void* src;
    void* dst;
    uint64_t bytes;
    std::shared_ptr<std::promise<void>> done;
  };

  Topology* topo_;
  /// One queue + memcpy thread per link: PCIe links first, then peer links.
  std::vector<std::unique_ptr<MpmcQueue<Job>>> queues_;
  std::vector<std::thread> workers_;
  int num_pcie_links_ = 0;
};

}  // namespace hetex::sim

#endif  // HETEX_SIM_DMA_ENGINE_H_
