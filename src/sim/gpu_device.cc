#include "sim/gpu_device.h"

#include "common/logging.h"

namespace hetex::sim {

GpuDevice::GpuDevice(const Topology::GpuInfo& info, const CostModel* cost_model)
    : info_(info), cost_model_(cost_model), worker_stats_(info.sim_threads) {
  HETEX_CHECK(info.sim_threads > 0);
  workers_.reserve(info.sim_threads);
  for (int w = 0; w < info.sim_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

GpuDevice::~GpuDevice() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    ++generation_;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void GpuDevice::WorkerLoop(int worker) {
  uint64_t seen_generation = 0;
  while (true) {
    const KernelFn* fn = nullptr;
    int grid = 0;
    int block_dim = 1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return generation_ != seen_generation; });
      seen_generation = generation_;
      if (shutdown_) return;
      fn = current_fn_;
      grid = grid_threads_;
      block_dim = block_dim_;
    }
    CostStats& stats = worker_stats_[worker];
    const int sim_threads = static_cast<int>(workers_.size());
    // Worker `worker` simulates logical threads worker, worker+P, worker+2P, ...
    for (int tid = worker; tid < grid; tid += sim_threads) {
      KernelCtx ctx;
      ctx.thread_id = tid;
      ctx.num_threads = grid;
      ctx.block_id = tid / block_dim;
      ctx.block_dim = block_dim;
      ctx.lane = tid % block_dim;
      ctx.stats = &stats;
      (*fn)(ctx);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_remaining_ == 0) cv_done_.notify_all();
    }
  }
}

GpuDevice::LaunchResult GpuDevice::LaunchKernel(const KernelFn& fn, int grid_threads,
                                                int block_dim, VTime earliest,
                                                double stream_bw, VTime epoch) {
  HETEX_CHECK(grid_threads > 0 && block_dim > 0);
  // Kernels on one GPU serialize, functionally and in virtual time.
  std::lock_guard<std::mutex> launch_lock(launch_mu_);

  {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto& s : worker_stats_) s = CostStats{};
    current_fn_ = &fn;
    grid_threads_ = grid_threads;
    block_dim_ = block_dim;
    workers_remaining_ = static_cast<int>(workers_.size());
    ++generation_;
    cv_start_.notify_all();
    cv_done_.wait(lock, [&] { return workers_remaining_ == 0; });
    current_fn_ = nullptr;
  }

  LaunchResult result;
  for (const auto& s : worker_stats_) result.stats.Add(s);

  const double bw = stream_bw > 0.0 ? stream_bw : cost_model_->gpu_mem_bw;
  const VTime work = cost_model_->WorkCost(result.stats, cost_model_->gpu, bw);
  const auto window = stream_.ReserveDuration(
      cost_model_->kernel_launch_latency + work, earliest, epoch);
  result.start = window.start;
  result.end = window.end;
  return result;
}

}  // namespace hetex::sim
