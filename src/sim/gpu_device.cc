#include "sim/gpu_device.h"

#include "common/logging.h"

namespace hetex::sim {

GpuDevice::GpuDevice(const Topology::GpuInfo& info, const CostModel* cost_model)
    : info_(info), cost_model_(cost_model), worker_stats_(info.sim_threads) {
  HETEX_CHECK(info.sim_threads > 0);
  workers_.reserve(info.sim_threads);
  for (int w = 0; w < info.sim_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

GpuDevice::~GpuDevice() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    ++generation_;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void GpuDevice::WorkerLoop(int worker) {
  uint64_t seen_generation = 0;
  while (true) {
    const KernelFn* fn = nullptr;
    int grid = 0;
    int block_dim = 1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return generation_ != seen_generation; });
      seen_generation = generation_;
      if (shutdown_) return;
      fn = current_fn_;
      grid = grid_threads_;
      block_dim = block_dim_;
    }
    CostStats& stats = worker_stats_[worker];
    const int sim_threads = static_cast<int>(workers_.size());
    // Worker `worker` simulates logical threads worker, worker+P, worker+2P, ...
    for (int tid = worker; tid < grid; tid += sim_threads) {
      KernelCtx ctx;
      ctx.thread_id = tid;
      ctx.num_threads = grid;
      ctx.block_id = tid / block_dim;
      ctx.block_dim = block_dim;
      ctx.lane = tid % block_dim;
      ctx.stats = &stats;
      (*fn)(ctx);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_remaining_ == 0) cv_done_.notify_all();
    }
  }
}

GpuDevice::LaunchResult GpuDevice::LaunchKernel(const KernelFn& fn, int grid_threads,
                                                int block_dim,
                                                const LaunchOptions& opts) {
  HETEX_CHECK(grid_threads > 0 && block_dim > 0);
  // Kernels on one GPU serialize, functionally and in virtual time.
  std::lock_guard<std::mutex> launch_lock(launch_mu_);

  {
    std::unique_lock<std::mutex> lock(mu_);
    for (auto& s : worker_stats_) s = CostStats{};
    current_fn_ = &fn;
    grid_threads_ = grid_threads;
    block_dim_ = block_dim;
    workers_remaining_ = static_cast<int>(workers_.size());
    ++generation_;
    cv_start_.notify_all();
    cv_done_.wait(lock, [&] { return workers_remaining_ == 0; });
    current_fn_ = nullptr;
  }

  LaunchResult result;
  for (const auto& s : worker_stats_) result.stats.Add(s);

  const DeviceCaps& caps = cost_model_->gpu;
  VTime work;
  VTime anchored_start = -1.0;  // >= 0: commit the stream slot at this start
  if (opts.uva_link != nullptr) {
    // UVA/zero-copy: the streamed bytes occupy the shared PCIe link, queueing
    // behind (and ahead of) every in-flight session's DMA. The kernel cannot
    // finish before its last byte crossed; compute overlaps with the stream,
    // so its duration is max(compute, link window) — on an idle link exactly
    // the old stream-bandwidth-discount cost (bytes / link rate vs compute).
    const double bytes = cost_model_->BandwidthBytes(result.stats, caps);
    const VTime compute = cost_model_->ComputeTime(result.stats, caps);
    VTime stream_done = 0;
    if (bytes > 0) {
      // Anchor the bytes where the kernel's stream slot will actually start.
      // Zero-copy reads are issued by the running kernel: placing them at
      // `earliest` while another session holds the stream would occupy the
      // link during an interval the kernel is not running AND double-charge
      // that wait (once as link queueing inside `work`, again as stream
      // queueing below); anchoring at the stream *horizon* would miss the
      // first-fit gaps the slot can land in. Probe with the uncontended-link
      // duration — link queueing can only grow the slot, and first fit for a
      // longer slot never starts earlier, so the probe is a lower bound on
      // the kernel's start.
      const VTime uncontended = cost_model_->kernel_launch_latency +
                                MaxT(compute, bytes / opts.uva_link->rate());
      const VTime kernel_start =
          stream_.ProbeStart(uncontended, opts.earliest, opts.epoch);
      const auto lw = opts.uva_link->ReserveBytes(
          static_cast<uint64_t>(bytes + 0.5), kernel_start, opts.epoch);
      stream_done = lw.end - kernel_start;
      anchored_start = kernel_start;
    }
    work = MaxT(compute, stream_done);
  } else {
    const double bw =
        opts.stream_bw > 0.0 ? opts.stream_bw : cost_model_->gpu_mem_bw;
    work = cost_model_->WorkCost(result.stats, caps, bw);
  }
  // The UVA path commits the stream slot at the start it probed: the link
  // bytes above are anchored there, so re-running first fit (which another
  // session may have raced, or the final duration may have outgrown the
  // probed gap) could land the kernel somewhere its bytes are not. Anchoring
  // stacks occupancy on overlap — conservative — instead of tearing the
  // kernel away from its link reservation.
  const VTime duration = cost_model_->kernel_launch_latency + work;
  const auto window =
      anchored_start >= 0.0
          ? stream_.ReserveDurationAt(anchored_start, duration, opts.epoch)
          : stream_.ReserveDuration(duration, opts.earliest, opts.epoch);
  result.start = window.start;
  result.end = window.end;
  return result;
}

}  // namespace hetex::sim
