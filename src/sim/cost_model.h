#ifndef HETEX_SIM_COST_MODEL_H_
#define HETEX_SIM_COST_MODEL_H_

#include <cstdint>

#include "plan/cost_params.h"
#include "sim/vtime.h"

namespace hetex::sim {

/// \brief Work counters accumulated while a pipeline (or kernel) processes a block.
///
/// The JIT VM fills one of these as it executes; the device then converts the
/// counters into modeled seconds via CostModel. Keeping the counters separate from
/// the conversion means one functional execution yields costs for any device.
struct CostStats {
  uint64_t bytes_read = 0;       ///< sequentially streamed input bytes
  uint64_t bytes_written = 0;    ///< sequentially written output bytes
  uint64_t tuples = 0;           ///< tuples pushed through the fused pipeline
  uint64_t ops = 0;              ///< VM micro-ops executed (compute intensity)
  uint64_t atomics = 0;          ///< worker-scoped atomic operations
  uint64_t near_accesses = 0;    ///< random accesses into cache-resident structures
  uint64_t mid_accesses = 0;     ///< random accesses into LLC-sized structures
  uint64_t far_accesses = 0;     ///< random accesses into DRAM-sized structures

  void Add(const CostStats& o) {
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    tuples += o.tuples;
    ops += o.ops;
    atomics += o.atomics;
    near_accesses += o.near_accesses;
    mid_accesses += o.mid_accesses;
    far_accesses += o.far_accesses;
  }

  uint64_t TotalBytes() const { return bytes_read + bytes_written; }
};

/// \brief Per-device-class execution constants.
///
/// `*_access_cost` is the amortized serial cost of a dependent random access into a
/// structure of the matching size class (near = L1/L2-resident, mid = LLC-resident,
/// far = DRAM/HBM-resident); the thresholds live in CostModel. Random far accesses
/// additionally consume `random_line_bytes` of memory bandwidth each (a cache line
/// / memory transaction), which is what caps CPU join scalability in Fig. 6/7.
struct DeviceCaps {
  double tuple_cost;        ///< seconds per tuple of fused pipeline overhead
  double op_cost;           ///< seconds per VM micro-op
  double atomic_cost;       ///< seconds per worker-scoped atomic
  double near_access_cost;
  double mid_access_cost;
  double far_access_cost;
  double random_line_bytes; ///< bandwidth consumed per far access
};

/// \brief Hardware calibration for the simulated server.
///
/// Defaults (`Paper()`) are calibrated to the paper's testbed: 2× Xeon E5-2650L v3
/// (12 cores each), 256 GB DRAM at ~45 GB/s per socket (~90 GB/s aggregate, the
/// paper measures 89.7-90.6 GB/s), one GTX 1080 (8 GB, 320 GB/s) per socket behind
/// a dedicated PCIe 3.0 x16 link measured at ~12 GB/s.
class CostModel {
 public:
  /// Calibration matching the paper's evaluation server.
  static CostModel Paper();

  /// Size-class thresholds for random accesses.
  uint64_t near_bytes = 1ull << 20;   ///< structures under 1 MB: L1/L2 resident
  uint64_t mid_bytes = 30ull << 20;   ///< under 30 MB: LLC resident

  DeviceCaps cpu;          ///< per CPU core
  DeviceCaps gpu;          ///< per whole-GPU kernel (parallelism folded in)

  double cpu_core_bw = 6e9;       ///< B/s streaming bandwidth of one core
  double cpu_socket_bw = 45e9;    ///< B/s aggregate per socket
  double gpu_mem_bw = 320e9;      ///< B/s GPU HBM/GDDR bandwidth
  double pcie_bw = 12e9;          ///< B/s pinned-memory DMA over one PCIe 3.0 x16
  double pcie_pageable_bw = 5.5e9;///< B/s when source is pageable host memory
  double nvlink_bw = 40e9;        ///< B/s of one NVLink-class GPU peer link
  double inter_socket_bw = 38e9;  ///< B/s of the UPI/QPI inter-socket link

  // Control-plane constants, seeded from the one shared definition so the
  // planner's stamps/estimates and the runtime simulation cannot drift apart
  // (see plan::CostParams).
  double dma_latency = plan::CostParams{}.dma_latency;
  double peer_dma_latency = plan::CostParams{}.peer_dma_latency;
  double inter_socket_latency = plan::CostParams{}.inter_socket_latency;
  double kernel_launch_latency = plan::CostParams{}.kernel_launch_latency;
  double task_spawn_latency = plan::CostParams{}.task_spawn_latency;
  double router_init_latency = plan::CostParams{}.router_init_latency;
  double router_control_cost = plan::CostParams{}.router_control_cost;
  double segmenter_block_cost = plan::CostParams{}.segmenter_block_cost;

  /// Fixed latency of a serving-layer result-cache hit (hash-map probe plus
  /// bookkeeping); the row copy itself is charged at cpu_core_bw on top.
  double result_cache_lookup_latency = 2e-6;

  /// Scales every fixed latency by `f`, leaving bandwidths and per-tuple costs
  /// untouched. Benchmarks that scale the paper's datasets down by a factor use
  /// this to keep the fixed-cost-to-work ratio of the original regime, making
  /// the simulation a self-similar miniature (DESIGN.md §1).
  void ScaleFixedLatencies(double f) {
    dma_latency *= f;
    peer_dma_latency *= f;
    inter_socket_latency *= f;
    kernel_launch_latency *= f;
    task_spawn_latency *= f;
    router_init_latency *= f;
    router_control_cost *= f;
    segmenter_block_cost *= f;
  }

  /// Pick the size class of a random access into a `region_bytes`-sized structure.
  double RandomAccessCost(const DeviceCaps& caps, uint64_t region_bytes) const {
    if (region_bytes <= near_bytes) return caps.near_access_cost;
    if (region_bytes <= mid_bytes) return caps.mid_access_cost;
    return caps.far_access_cost;
  }

  /// Classify region size: 0 = near, 1 = mid, 2 = far. Used by the VM to bump the
  /// right CostStats counter at codegen time.
  int RandomAccessClass(uint64_t region_bytes) const {
    if (region_bytes <= near_bytes) return 0;
    if (region_bytes <= mid_bytes) return 1;
    return 2;
  }

  /// Bytes a block of work streams through the memory system — the quantity a
  /// bandwidth share divides, and the occupancy a UVA/zero-copy kernel reserves
  /// on its PCIe link (every random far access drags a full line across).
  double BandwidthBytes(const CostStats& s, const DeviceCaps& caps) const {
    return static_cast<double>(s.TotalBytes()) +
           static_cast<double>(s.far_accesses) * caps.random_line_bytes;
  }

  /// Pure compute component of WorkCost (per-tuple, per-op and random-access
  /// serial costs; no streaming term).
  VTime ComputeTime(const CostStats& s, const DeviceCaps& caps) const {
    return static_cast<double>(s.tuples) * caps.tuple_cost +
           static_cast<double>(s.ops) * caps.op_cost +
           static_cast<double>(s.atomics) * caps.atomic_cost +
           static_cast<double>(s.near_accesses) * caps.near_access_cost +
           static_cast<double>(s.mid_accesses) * caps.mid_access_cost +
           static_cast<double>(s.far_accesses) * caps.far_access_cost;
  }

  /// \brief Modeled time for a block of pipeline work on a device.
  ///
  /// `bandwidth_share` is the streaming bandwidth available to this execution
  /// context right now (e.g. min(core bw, socket bw / active workers) for a CPU
  /// worker; full HBM bandwidth for a GPU kernel). Bandwidth time and compute time
  /// overlap on real hardware, so the modeled cost is their max.
  VTime WorkCost(const CostStats& s, const DeviceCaps& caps,
                 double bandwidth_share) const {
    const double bw_time = BandwidthBytes(s, caps) / bandwidth_share;
    const double compute_time = ComputeTime(s, caps);
    return bw_time > compute_time ? bw_time : compute_time;
  }
};

}  // namespace hetex::sim

#endif  // HETEX_SIM_COST_MODEL_H_
