#ifndef HETEX_SIM_GPU_DEVICE_H_
#define HETEX_SIM_GPU_DEVICE_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/bandwidth.h"
#include "sim/cost_model.h"
#include "sim/topology.h"
#include "sim/vtime.h"

namespace hetex::sim {

/// \brief Execution context of one logical GPU thread inside a kernel.
///
/// Mirrors the CUDA thread hierarchy the paper's GPU provider targets: a grid of
/// `num_threads` logical threads organized into thread blocks of `block_dim`.
/// Generated pipelines use grid-stride loops over `(thread_id, num_threads)`, which
/// is exactly what `threadIdInWorker` / `#threadsInWorker` resolve to (§4.1).
struct KernelCtx {
  int thread_id = 0;    ///< grid-global logical thread id
  int num_threads = 1;  ///< grid size
  int block_id = 0;
  int block_dim = 1;
  int lane = 0;         ///< id within the thread block ("neighborhood")
  CostStats* stats = nullptr;  ///< per-simulation-worker cost sink
};

/// \brief A simulated GPU.
///
/// Functionally executes kernels on a small pool of host threads (each simulating a
/// slice of the logical grid); models timing as launch latency plus the cost-model
/// conversion of the work the kernel actually performed. Kernels on one GPU
/// serialize (single stream), giving the virtual-time queueing behaviour of
/// back-to-back kernel launches.
class GpuDevice {
 public:
  using KernelFn = std::function<void(const KernelCtx&)>;

  GpuDevice(const Topology::GpuInfo& info, const CostModel* cost_model);
  ~GpuDevice();

  GpuDevice(const GpuDevice&) = delete;
  GpuDevice& operator=(const GpuDevice&) = delete;

  struct LaunchResult {
    VTime start = 0;       ///< when the kernel began (after queueing + launch)
    VTime end = 0;         ///< modeled completion
    CostStats stats;       ///< aggregated work counters
  };

  /// Timing parameters of one kernel launch.
  struct LaunchOptions {
    /// Session-local virtual time at which the kernel's input exists.
    VTime earliest = 0;
    /// Effective memory bandwidth for this kernel: 0 = the device's full
    /// bandwidth; lowered for register-pressure-limited occupancy (the DBMS G
    /// emulation). Ignored when `uva_link` is set — UVA bandwidth then comes
    /// from the link reservation itself.
    double stream_bw = 0.0;
    /// Absolute arrival time of the launching query session; the kernel queues
    /// on the shared stream at `epoch + earliest` and the result windows come
    /// back session-local (epoch-relative).
    VTime epoch = 0.0;
    /// UVA/zero-copy execution: the kernel's streamed bytes cross this PCIe
    /// link and reserve real occupancy on it (epoch-anchored, first-fit,
    /// exactly like DMA) — so concurrent sessions' transfers queue behind a
    /// UVA kernel and vice versa, instead of the bytes vanishing into a
    /// private stream-bandwidth discount. Null = device-memory kernel.
    BandwidthServer* uva_link = nullptr;
  };

  /// Launches a kernel over `grid_threads` logical threads (blocks of `block_dim`)
  /// and functionally executes it to completion.
  LaunchResult LaunchKernel(const KernelFn& fn, int grid_threads, int block_dim,
                            const LaunchOptions& opts);

  /// Convenience overload (earliest / stream_bw / epoch positional; no UVA
  /// link) — the pre-UVA-occupancy signature most sim tests use.
  LaunchResult LaunchKernel(const KernelFn& fn, int grid_threads, int block_dim,
                            VTime earliest, double stream_bw = 0.0,
                            VTime epoch = 0.0) {
    LaunchOptions opts;
    opts.earliest = earliest;
    opts.stream_bw = stream_bw;
    opts.epoch = epoch;
    return LaunchKernel(fn, grid_threads, block_dim, opts);
  }

  int id() const { return info_.id; }
  MemNodeId mem_node() const { return info_.mem; }
  int sim_threads() const { return info_.sim_threads; }

  /// Reasonable default logical grid: enough logical threads that grid-stride
  /// loops, neighborhoods and atomics are genuinely exercised.
  int default_grid() const { return info_.sim_threads * 64; }
  static constexpr int kDefaultBlockDim = 32;

  /// Absolute virtual time at which this GPU's shared kernel stream frees up.
  /// Sessions anchored at (or past) this horizon see an idle stream.
  VTime stream_free_at() const { return stream_.free_at(); }

 private:
  void WorkerLoop(int worker);

  Topology::GpuInfo info_;
  const CostModel* cost_model_;

  // Kernel stream: serializes kernels in virtual time.
  BandwidthServer stream_{1.0};

  // Launch serialization + worker pool rendezvous.
  std::mutex launch_mu_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const KernelFn* current_fn_ = nullptr;
  int grid_threads_ = 0;
  int block_dim_ = 1;
  uint64_t generation_ = 0;
  int workers_remaining_ = 0;
  bool shutdown_ = false;
  std::vector<CostStats> worker_stats_;
  std::vector<std::thread> workers_;
};

}  // namespace hetex::sim

#endif  // HETEX_SIM_GPU_DEVICE_H_
