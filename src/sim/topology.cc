#include "sim/topology.h"

#include <sstream>

namespace hetex::sim {

Topology::Topology(const Options& options) : options_(options) {
  HETEX_CHECK(options.num_sockets > 0);
  HETEX_CHECK(options.cores_per_socket > 0);
  HETEX_CHECK(options.num_gpus >= 0);

  const CostModel& cm = options_.cost_model;

  for (int s = 0; s < options.num_sockets; ++s) {
    MemNodeId node = static_cast<MemNodeId>(mem_nodes_.size());
    mem_nodes_.push_back(MemNode{node, /*is_gpu=*/false,
                                 options.host_capacity_per_socket, DeviceId::Cpu(s)});
    sockets_.push_back(Socket{s, options.cores_per_socket, node});
    socket_dram_.push_back(
        std::make_unique<DramServer>(cm.cpu_socket_bw, cm.cpu_core_bw));
  }

  for (int g = 0; g < options.num_gpus; ++g) {
    MemNodeId node = static_cast<MemNodeId>(mem_nodes_.size());
    mem_nodes_.push_back(
        MemNode{node, /*is_gpu=*/true, options.gpu_capacity, DeviceId::Gpu(g)});
    int link = static_cast<int>(pcie_links_.size());
    pcie_links_.push_back(
        std::make_unique<BandwidthServer>(cm.pcie_bw, cm.dma_latency));
    // GPUs are distributed round-robin over sockets: one per socket on the paper
    // server (dedicated PCIe 3.0 x16 per GPU).
    gpus_.push_back(GpuInfo{g, node, g % options.num_sockets, link,
                            options.gpu_sim_threads});
  }

  const double peer_bw = options.peer_bw > 0 ? options.peer_bw : cm.nvlink_bw;
  for (const auto& [a, b] : options.peer_links) {
    HETEX_CHECK(a >= 0 && a < num_gpus() && b >= 0 && b < num_gpus() && a != b)
        << "bad peer link gpu" << a << "<->gpu" << b;
    HETEX_CHECK(PeerLinkOf(a, b) < 0)
        << "duplicate peer link gpu" << a << "<->gpu" << b;
    int link = static_cast<int>(peer_links_.size());
    peer_links_.push_back(PeerLink{link, a, b});
    peer_link_servers_.push_back(
        std::make_unique<BandwidthServer>(peer_bw, cm.peer_dma_latency));
  }

  if (options.inter_socket_bw > 0 && options.num_sockets > 1) {
    inter_socket_link_ = std::make_unique<BandwidthServer>(
        options.inter_socket_bw, cm.inter_socket_latency);
  }
}

Topology::Options Topology::ScaleOutOptions(int num_gpus, int num_sockets) {
  Options options;
  options.num_sockets = num_sockets;
  options.num_gpus = num_gpus;
  for (int a = 0; a < num_gpus; ++a) {
    for (int b = a + 1; b < num_gpus; ++b) options.peer_links.emplace_back(a, b);
  }
  options.inter_socket_bw = options.cost_model.inter_socket_bw;
  return options;
}

int Topology::PeerLinkOf(int gpu_a, int gpu_b) const {
  for (const auto& p : peer_links_) {
    if ((p.gpu_a == gpu_a && p.gpu_b == gpu_b) ||
        (p.gpu_a == gpu_b && p.gpu_b == gpu_a)) {
      return p.id;
    }
  }
  return -1;
}

MemAccess Topology::CanAccess(DeviceId dev, MemNodeId node) const {
  HETEX_CHECK(node >= 0 && node < num_mem_nodes()) << "bad mem node " << node;
  const MemNode& mn = mem_nodes_[node];
  if (dev.is_cpu()) {
    // Host code reaches any socket's DRAM (NUMA), never GPU device memory.
    return mn.is_gpu ? MemAccess::kNone : MemAccess::kLocal;
  }
  // GPU code reaches its own device memory at full bandwidth, and host DRAM over
  // PCIe (UVA-style zero-copy); peer GPU memory is not addressable.
  if (mn.is_gpu) {
    return mn.owner == dev ? MemAccess::kLocal : MemAccess::kNone;
  }
  return MemAccess::kRemotePcie;
}

std::string Topology::Describe(VTime epoch) const {
  const bool live = epoch >= 0;
  std::ostringstream os;
  os << "Topology: " << num_sockets() << " socket(s) x " << options_.cores_per_socket
     << " cores, " << num_gpus() << " GPU(s)";
  if (num_peer_links() > 0) os << ", " << num_peer_links() << " peer link(s)";
  os << "\n";
  for (const auto& s : sockets_) {
    os << "  socket" << s.id << ": mem node " << s.mem << " ("
       << (mem_nodes_[s.mem].capacity >> 20) << " MiB modeled, "
       << socket_dram_[s.id]->total_rate() / 1e9 << " GB/s)";
    if (live) {
      os << " backlog " << socket_dram_[s.id]->active_workers() << " worker(s)";
    }
    os << "\n";
  }
  for (const auto& g : gpus_) {
    os << "  gpu" << g.id << ": mem node " << g.mem << " ("
       << (mem_nodes_[g.mem].capacity >> 20) << " MiB modeled, "
       << cost_model().gpu_mem_bw / 1e9 << " GB/s), PCIe link " << g.pcie_link
       << " -> socket" << g.socket << " ("
       << pcie_links_[g.pcie_link]->rate() / 1e9 << " GB/s)";
    if (live) {
      os << " backlog "
         << MaxT(0.0, pcie_links_[g.pcie_link]->free_at() - epoch) * 1e3 << " ms";
    }
    os << "\n";
  }
  for (const auto& p : peer_links_) {
    os << "  peer link " << p.id << ": gpu" << p.gpu_a << " <-> gpu" << p.gpu_b
       << " (NVLink-class, " << peer_link_servers_[p.id]->rate() / 1e9 << " GB/s)";
    if (live) {
      os << " backlog "
         << MaxT(0.0, peer_link_servers_[p.id]->free_at() - epoch) * 1e3 << " ms";
    }
    os << "\n";
  }
  if (inter_socket_link_) {
    os << "  inter-socket link: " << num_sockets() << " socket(s) ("
       << inter_socket_link_->rate() / 1e9 << " GB/s)";
    if (live) {
      os << " backlog "
         << MaxT(0.0, inter_socket_link_->free_at() - epoch) * 1e3 << " ms";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace hetex::sim
