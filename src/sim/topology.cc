#include "sim/topology.h"

#include <sstream>

namespace hetex::sim {

Topology::Topology(const Options& options) : options_(options) {
  HETEX_CHECK(options.num_sockets > 0);
  HETEX_CHECK(options.cores_per_socket > 0);
  HETEX_CHECK(options.num_gpus >= 0);

  const CostModel& cm = options_.cost_model;

  for (int s = 0; s < options.num_sockets; ++s) {
    MemNodeId node = static_cast<MemNodeId>(mem_nodes_.size());
    mem_nodes_.push_back(MemNode{node, /*is_gpu=*/false,
                                 options.host_capacity_per_socket, DeviceId::Cpu(s)});
    sockets_.push_back(Socket{s, options.cores_per_socket, node});
    socket_dram_.push_back(
        std::make_unique<DramServer>(cm.cpu_socket_bw, cm.cpu_core_bw));
  }

  for (int g = 0; g < options.num_gpus; ++g) {
    MemNodeId node = static_cast<MemNodeId>(mem_nodes_.size());
    mem_nodes_.push_back(
        MemNode{node, /*is_gpu=*/true, options.gpu_capacity, DeviceId::Gpu(g)});
    int link = static_cast<int>(pcie_links_.size());
    pcie_links_.push_back(
        std::make_unique<BandwidthServer>(cm.pcie_bw, cm.dma_latency));
    // GPUs are distributed round-robin over sockets: one per socket on the paper
    // server (dedicated PCIe 3.0 x16 per GPU).
    gpus_.push_back(GpuInfo{g, node, g % options.num_sockets, link,
                            options.gpu_sim_threads});
  }
}

MemAccess Topology::CanAccess(DeviceId dev, MemNodeId node) const {
  HETEX_CHECK(node >= 0 && node < num_mem_nodes()) << "bad mem node " << node;
  const MemNode& mn = mem_nodes_[node];
  if (dev.is_cpu()) {
    // Host code reaches any socket's DRAM (NUMA), never GPU device memory.
    return mn.is_gpu ? MemAccess::kNone : MemAccess::kLocal;
  }
  // GPU code reaches its own device memory at full bandwidth, and host DRAM over
  // PCIe (UVA-style zero-copy); peer GPU memory is not addressable.
  if (mn.is_gpu) {
    return mn.owner == dev ? MemAccess::kLocal : MemAccess::kNone;
  }
  return MemAccess::kRemotePcie;
}

std::string Topology::ToString() const {
  std::ostringstream os;
  os << "Topology: " << num_sockets() << " socket(s) x " << options_.cores_per_socket
     << " cores, " << num_gpus() << " GPU(s)\n";
  for (const auto& s : sockets_) {
    os << "  socket" << s.id << ": mem node " << s.mem << " ("
       << (mem_nodes_[s.mem].capacity >> 20) << " MiB modeled, "
       << socket_dram_[s.id]->total_rate() / 1e9 << " GB/s)\n";
  }
  for (const auto& g : gpus_) {
    os << "  gpu" << g.id << ": mem node " << g.mem << " ("
       << (mem_nodes_[g.mem].capacity >> 20) << " MiB modeled, "
       << cost_model().gpu_mem_bw / 1e9 << " GB/s), PCIe link " << g.pcie_link
       << " -> socket" << g.socket << " ("
       << pcie_links_[g.pcie_link]->rate() / 1e9 << " GB/s)\n";
  }
  return os.str();
}

}  // namespace hetex::sim
