#include "sim/fault.h"

#include <cstdlib>

namespace hetex::sim {

namespace {

double EnvRate(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  const double rate = std::atof(v);
  if (rate < 0) return 0;
  return rate > 1 ? 1 : rate;
}

/// SplitMix64: enough mixing that consecutive operation counters decorrelate.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultOptions FaultOptions::FromEnv() {
  FaultOptions o;
  const char* on = std::getenv("HETEX_FAULTS");
  o.enabled = on != nullptr && std::string(on) != "0" && *on != '\0';
  if (const char* seed = std::getenv("HETEX_FAULT_SEED");
      seed != nullptr && *seed != '\0') {
    o.seed = std::strtoull(seed, nullptr, 10);
  }
  o.dma_fault_rate = EnvRate("HETEX_FAULT_DMA");
  o.kernel_fault_rate = EnvRate("HETEX_FAULT_KERNEL");
  o.staging_fault_rate = EnvRate("HETEX_FAULT_STAGING");
  o.compile_fault_rate = EnvRate("HETEX_FAULT_COMPILE");
  return o;
}

bool FaultInjector::Draw(Site site, double rate) {
  if (!options_.enabled || rate <= 0) return false;
  const uint64_t n =
      site_ops_[site].fetch_add(1, std::memory_order_relaxed);
  const uint64_t h = Mix(options_.seed ^ Mix(static_cast<uint64_t>(site) ^
                                             Mix(n)));
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

Status FaultInjector::OnDmaTransfer(int link) {
  if (!Draw(kDma, options_.dma_fault_rate)) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.dma_faults;
  }
  return Status::Unavailable("injected transient DMA transfer error on link " +
                             std::to_string(link));
}

Status FaultInjector::OnGpuExecute(int gpu, VTime at) {
  if (!options_.enabled) return Status::OK();
  if (!GpuAvailableAt(gpu, at)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.device_loss_rejections;
    }
    return Status::DeviceLost("gpu" + std::to_string(gpu) +
                              " is marked lost at virtual time " +
                              std::to_string(at));
  }
  if (!Draw(kKernel, options_.kernel_fault_rate)) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.kernel_faults;
  }
  return Status::Unavailable("injected kernel-launch failure on gpu" +
                             std::to_string(gpu));
}

Status FaultInjector::OnStagingAcquire(MemNodeId node) {
  if (!Draw(kStaging, options_.staging_fault_rate)) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.staging_faults;
  }
  return Status::ResourceExhausted(
      "injected staging-block exhaustion spike on node " +
      std::to_string(node));
}

Status FaultInjector::OnKernelCompile(const std::string& label) {
  if (!Draw(kCompile, options_.compile_fault_rate)) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.compile_faults;
  }
  return Status::Unavailable("injected kernel compile/load failure for '" +
                             label + "'");
}

void FaultInjector::LoseGpu(int gpu, VTime from, VTime until) {
  std::lock_guard<std::mutex> lock(mu_);
  losses_.push_back(LossWindow{gpu, from, until});
}

void FaultInjector::RestoreGpu(int gpu) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LossWindow> keep;
  keep.reserve(losses_.size());
  for (const LossWindow& w : losses_) {
    if (w.gpu != gpu) keep.push_back(w);
  }
  losses_.swap(keep);
}

bool FaultInjector::GpuAvailableAt(int gpu, VTime t) const {
  if (!options_.enabled) return true;
  std::lock_guard<std::mutex> lock(mu_);
  for (const LossWindow& w : losses_) {
    if (w.gpu == gpu && t >= w.from && t < w.until) return false;
  }
  return true;
}

std::vector<int> FaultInjector::GpusLostOnOrAfter(VTime t) const {
  std::vector<int> out;
  if (!options_.enabled) return out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const LossWindow& w : losses_) {
    if (w.until <= t) continue;  // the window fully ended: device is back
    bool seen = false;
    for (int g : out) seen = seen || g == w.gpu;
    if (!seen) out.push_back(w.gpu);
  }
  return out;
}

FaultInjector::Counters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace hetex::sim
