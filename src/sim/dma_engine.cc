#include "sim/dma_engine.h"

#include <cstring>

namespace hetex::sim {

DmaEngine::DmaEngine(Topology* topo)
    : topo_(topo), num_pcie_links_(topo->num_pcie_links()) {
  // One PCIe link per GPU on this server, then one queue per GPU peer link.
  // A no-GPU topology leaves the engine with zero links and zero threads —
  // valid, as long as nobody schedules a transfer on it.
  const int links = num_pcie_links_ + topo->num_peer_links();
  queues_.reserve(links);
  workers_.reserve(links);
  for (int l = 0; l < links; ++l) {
    queues_.push_back(std::make_unique<MpmcQueue<Job>>(4096));
    workers_.emplace_back([q = queues_[l].get()] {
      while (auto job = q->Pop()) {
        std::memcpy(job->dst, job->src, job->bytes);
        job->done->set_value();
      }
    });
  }
}

DmaEngine::~DmaEngine() {
  for (auto& q : queues_) q->Close();
  for (auto& w : workers_) w.join();
}

TransferTicket DmaEngine::Transfer(const void* src, void* dst, uint64_t bytes,
                                   int link, VTime earliest, bool pageable,
                                   VTime epoch) {
  HETEX_CHECK(link >= 0 && link < num_pcie_links_)
      << "bad PCIe link " << link << " (no-GPU topology has none)";
  BandwidthServer& server = topo_->pcie_link(link);
  // Pageable transfers cannot use the full DMA rate: model by inflating the byte
  // count so the reservation occupies the link for bytes / pageable_bw.
  const double rate_ratio =
      pageable ? topo_->cost_model().pcie_bw / topo_->cost_model().pcie_pageable_bw
               : 1.0;
  const auto window = server.Reserve(
      static_cast<uint64_t>(static_cast<double>(bytes) * rate_ratio), earliest,
      epoch);

  auto done = std::make_shared<std::promise<void>>();
  std::shared_future<void> fut = done->get_future().share();
  const bool pushed = queues_[link]->Push(Job{src, dst, bytes, std::move(done)});
  HETEX_CHECK(pushed) << "DMA engine shut down while transfers in flight";
  return TransferTicket(window.end, std::move(fut));
}

TransferTicket DmaEngine::TransferPeer(const void* src, void* dst,
                                       uint64_t bytes, int peer_link,
                                       VTime earliest, VTime epoch) {
  HETEX_CHECK(peer_link >= 0 && peer_link < topo_->num_peer_links())
      << "bad peer link " << peer_link;
  BandwidthServer& server = topo_->peer_link(peer_link);
  const auto window = server.Reserve(bytes, earliest, epoch);

  auto done = std::make_shared<std::promise<void>>();
  std::shared_future<void> fut = done->get_future().share();
  const bool pushed = queues_[num_pcie_links_ + peer_link]->Push(
      Job{src, dst, bytes, std::move(done)});
  HETEX_CHECK(pushed) << "DMA engine shut down while transfers in flight";
  return TransferTicket(window.end, std::move(fut));
}

VTime DmaEngine::TransferSync(const void* src, void* dst, uint64_t bytes, int link,
                              VTime earliest, bool pageable, VTime epoch) {
  TransferTicket t = Transfer(src, dst, bytes, link, earliest, pageable, epoch);
  t.Wait();
  return t.ready_at();
}

}  // namespace hetex::sim
