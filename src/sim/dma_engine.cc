#include "sim/dma_engine.h"

#include <cstring>

namespace hetex::sim {

DmaEngine::DmaEngine(Topology* topo) : topo_(topo) {
  const int links = topo->num_gpus();  // one PCIe link per GPU on this server
  queues_.reserve(links);
  workers_.reserve(links);
  for (int l = 0; l < links; ++l) {
    queues_.push_back(std::make_unique<MpmcQueue<Job>>(4096));
    workers_.emplace_back([q = queues_[l].get()] {
      while (auto job = q->Pop()) {
        std::memcpy(job->dst, job->src, job->bytes);
        job->done->set_value();
      }
    });
  }
}

DmaEngine::~DmaEngine() {
  for (auto& q : queues_) q->Close();
  for (auto& w : workers_) w.join();
}

TransferTicket DmaEngine::Transfer(const void* src, void* dst, uint64_t bytes,
                                   int link, VTime earliest, bool pageable,
                                   VTime epoch) {
  HETEX_CHECK(link >= 0 && link < static_cast<int>(queues_.size()))
      << "bad PCIe link " << link;
  BandwidthServer& server = topo_->pcie_link(link);
  // Pageable transfers cannot use the full DMA rate: model by inflating the byte
  // count so the reservation occupies the link for bytes / pageable_bw.
  const double rate_ratio =
      pageable ? topo_->cost_model().pcie_bw / topo_->cost_model().pcie_pageable_bw
               : 1.0;
  const auto window = server.Reserve(
      static_cast<uint64_t>(static_cast<double>(bytes) * rate_ratio), earliest,
      epoch);

  auto done = std::make_shared<std::promise<void>>();
  std::shared_future<void> fut = done->get_future().share();
  const bool pushed = queues_[link]->Push(Job{src, dst, bytes, std::move(done)});
  HETEX_CHECK(pushed) << "DMA engine shut down while transfers in flight";
  return TransferTicket(window.end, std::move(fut));
}

VTime DmaEngine::TransferSync(const void* src, void* dst, uint64_t bytes, int link,
                              VTime earliest, bool pageable, VTime epoch) {
  TransferTicket t = Transfer(src, dst, bytes, link, earliest, pageable, epoch);
  t.Wait();
  return t.ready_at();
}

}  // namespace hetex::sim
