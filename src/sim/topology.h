#ifndef HETEX_SIM_TOPOLOGY_H_
#define HETEX_SIM_TOPOLOGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "sim/bandwidth.h"
#include "sim/cost_model.h"

namespace hetex::sim {

/// Kind of compute device.
enum class DeviceType { kCpu, kGpu };

/// \brief Identifies a compute device: a CPU socket or a GPU.
///
/// HetExchange instances are pinned to devices; per the paper (§4.2) every pipeline
/// carries both a CPU and a GPU affinity and uses whichever matches its provider.
struct DeviceId {
  DeviceType type = DeviceType::kCpu;
  int index = 0;

  static DeviceId Cpu(int socket) { return {DeviceType::kCpu, socket}; }
  static DeviceId Gpu(int gpu) { return {DeviceType::kGpu, gpu}; }

  bool is_cpu() const { return type == DeviceType::kCpu; }
  bool is_gpu() const { return type == DeviceType::kGpu; }

  friend bool operator==(const DeviceId& a, const DeviceId& b) {
    return a.type == b.type && a.index == b.index;
  }
  friend bool operator!=(const DeviceId& a, const DeviceId& b) { return !(a == b); }

  std::string ToString() const {
    return (is_cpu() ? "cpu" : "gpu") + std::to_string(index);
  }
};

/// Identifies a memory node (a socket's DRAM or a GPU's device memory).
using MemNodeId = int;
inline constexpr MemNodeId kInvalidMemNode = -1;

/// How a device can reach a memory node.
enum class MemAccess {
  kNone,        ///< not addressable (e.g. host code touching GPU memory)
  kLocal,       ///< full-bandwidth local access
  kRemotePcie,  ///< addressable but every access crosses PCIe (UVA-style)
};

/// \brief Static + dynamic description of the simulated heterogeneous server.
///
/// Owns the virtual-time bandwidth resources: one cross-session DramServer per
/// socket DRAM and one BandwidthServer per PCIe link. Capacities are modeled
/// numbers (used for fits-in-GPU-memory decisions); physical allocation is on
/// demand and much smaller.
class Topology {
 public:
  struct Options {
    int num_sockets = 2;
    int cores_per_socket = 12;
    int num_gpus = 2;                       ///< one per socket in the paper server
    uint64_t host_capacity_per_socket = 128ull << 30;
    uint64_t gpu_capacity = 8ull << 30;
    int gpu_sim_threads = 4;                ///< host threads emulating one GPU
    CostModel cost_model = CostModel::Paper();

    /// NVLink-class GPU peer links, one BandwidthServer each: {a, b} connects
    /// gpu a <-> gpu b. Empty (the default) models the paper server — no peer
    /// fabric, GPU<->GPU traffic stages through host memory over PCIe.
    std::vector<std::pair<int, int>> peer_links;
    /// Peer-link bandwidth in B/s; 0 uses cost_model.nvlink_bw.
    double peer_bw = 0;
    /// Inter-socket (UPI/QPI) link bandwidth in B/s. 0 (the default) disables
    /// the link: cross-socket reads are free, exactly the pre-fabric model.
    double inter_socket_bw = 0;
  };

  /// A scale-out fabric shape: `num_gpus` GPUs with a fully-connected NVLink
  /// peer mesh, plus the inter-socket link, everything else the paper server.
  static Options ScaleOutOptions(int num_gpus, int num_sockets = 2);

  struct MemNode {
    MemNodeId id;
    bool is_gpu;
    uint64_t capacity;
    DeviceId owner;
  };

  struct Socket {
    int id;
    int num_cores;
    MemNodeId mem;
  };

  struct GpuInfo {
    int id;
    MemNodeId mem;
    int socket;      ///< socket whose PCIe root it hangs off
    int pcie_link;   ///< index into pcie_links()
    int sim_threads;
  };

  struct PeerLink {
    int id;          ///< index into peer_link()
    int gpu_a;
    int gpu_b;
  };

  explicit Topology(const Options& options);

  /// The paper's evaluation server: 2 sockets × 12 cores, 2 GPUs (8 GB each).
  static Topology PaperServer() { return Topology(Options{}); }

  const Options& options() const { return options_; }
  const CostModel& cost_model() const { return options_.cost_model; }

  int num_sockets() const { return static_cast<int>(sockets_.size()); }
  int num_gpus() const { return static_cast<int>(gpus_.size()); }
  int num_cores() const { return num_sockets() * options_.cores_per_socket; }
  int num_mem_nodes() const { return static_cast<int>(mem_nodes_.size()); }

  const Socket& socket(int i) const { return sockets_.at(i); }
  const GpuInfo& gpu(int i) const { return gpus_.at(i); }
  const MemNode& mem_node(MemNodeId id) const { return mem_nodes_.at(id); }

  /// Memory node local to a device.
  MemNodeId LocalMemNode(DeviceId dev) const {
    return dev.is_cpu() ? sockets_.at(dev.index).mem : gpus_.at(dev.index).mem;
  }

  /// The socket that controls a device (for GPUs: the PCIe-attached socket).
  int HostSocketOf(DeviceId dev) const {
    return dev.is_cpu() ? dev.index : gpus_.at(dev.index).socket;
  }

  /// Access class of `dev` touching `node` (see MemAccess).
  MemAccess CanAccess(DeviceId dev, MemNodeId node) const;

  /// PCIe link used to move data between host memory and a GPU's memory.
  int PcieLinkOf(int gpu) const { return gpus_.at(gpu).pcie_link; }

  /// Peer link directly connecting two GPUs, or -1 when there is none and a
  /// GPU<->GPU move must stage through host memory over two PCIe hops.
  int PeerLinkOf(int gpu_a, int gpu_b) const;

  /// Virtual-time resources.
  BandwidthServer& pcie_link(int link) { return *pcie_links_.at(link); }
  const BandwidthServer& pcie_link(int link) const { return *pcie_links_.at(link); }
  int num_pcie_links() const { return static_cast<int>(pcie_links_.size()); }
  BandwidthServer& peer_link(int link) { return *peer_link_servers_.at(link); }
  const BandwidthServer& peer_link(int link) const {
    return *peer_link_servers_.at(link);
  }
  int num_peer_links() const { return static_cast<int>(peer_link_servers_.size()); }
  const PeerLink& peer_link_info(int link) const { return peer_links_.at(link); }
  /// The inter-socket link exists only when Options::inter_socket_bw > 0.
  bool has_inter_socket_link() const { return inter_socket_link_ != nullptr; }
  BandwidthServer& inter_socket_link() { return *inter_socket_link_; }
  const BandwidthServer& inter_socket_link() const { return *inter_socket_link_; }
  DramServer& socket_dram(int socket) { return *socket_dram_.at(socket); }
  const DramServer& socket_dram(int socket) const { return *socket_dram_.at(socket); }

  /// Absolute virtual time by which every interconnect link — PCIe, GPU peer
  /// and inter-socket — is idle. Sessions anchored at (or past) this horizon
  /// see fresh interconnects — the session-scoped replacement for the old
  /// rewind-all-clocks reset, safe with other queries still in flight.
  VTime LinkHorizon() const {
    VTime h = 0;
    for (const auto& link : pcie_links_) h = MaxT(h, link->free_at());
    for (const auto& link : peer_link_servers_) h = MaxT(h, link->free_at());
    if (inter_socket_link_) h = MaxT(h, inter_socket_link_->free_at());
    return h;
  }

  /// Absolute virtual time past every socket DRAM timeline's last boundary:
  /// all closed execution-phase intervals end at or before it, so a session
  /// anchored here sees uncontended DRAM. Pure CPU work leaves no trace on
  /// the interconnect links, so without this term a CPU-only system would
  /// anchor every arrival at epoch 0 — on top of all past queries' intervals.
  VTime DramHorizon() const {
    VTime h = 0;
    for (const auto& dram : socket_dram_) h = MaxT(h, dram->horizon());
    return h;
  }

  /// Socket of a core index in [0, num_cores), interleaved across sockets as the
  /// paper does for its scalability experiments ("we interleave the CPU cores
  /// between the two sockets").
  int SocketOfCore(int core) const { return core % num_sockets(); }

  /// Aggregate modeled GPU memory capacity, for fits-in-GPU decisions (Fig. 4 vs 5).
  uint64_t AggregateGpuCapacity() const {
    uint64_t total = 0;
    for (const auto& g : gpus_) total += mem_nodes_[g.mem].capacity;
    return total;
  }

  std::string ToString() const { return Describe(); }

  /// Full fabric description: sockets, GPUs, per-link type/bandwidth and peer
  /// adjacency. Pass a session epoch (>= 0) to additionally print the live
  /// per-link and per-socket backlog that a query anchored there would see.
  std::string Describe(VTime epoch = -1.0) const;

 private:
  Options options_;
  std::vector<Socket> sockets_;
  std::vector<GpuInfo> gpus_;
  std::vector<MemNode> mem_nodes_;
  std::vector<PeerLink> peer_links_;
  std::vector<std::unique_ptr<BandwidthServer>> pcie_links_;
  std::vector<std::unique_ptr<BandwidthServer>> peer_link_servers_;
  std::unique_ptr<BandwidthServer> inter_socket_link_;
  std::vector<std::unique_ptr<DramServer>> socket_dram_;
};

}  // namespace hetex::sim

#endif  // HETEX_SIM_TOPOLOGY_H_
