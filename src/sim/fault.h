#ifndef HETEX_SIM_FAULT_H_
#define HETEX_SIM_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/topology.h"
#include "sim/vtime.h"

namespace hetex::sim {

/// \brief Fault-plane configuration (all rates are per-operation probabilities
/// in [0, 1]; everything is off by default so a fault-free run is byte-identical
/// to an engine built without the injector).
///
/// Env knobs (read by FromEnv, documented next to the tier knobs in ROADMAP):
///  - HETEX_FAULTS:        "1" enables the injector (0/unset: fully disabled)
///  - HETEX_FAULT_SEED:    deterministic schedule seed (default 1)
///  - HETEX_FAULT_DMA:     transient DMA transfer error rate
///  - HETEX_FAULT_KERNEL:  transient GPU kernel-launch failure rate
///  - HETEX_FAULT_STAGING: staging-block acquisition failure (exhaustion spike) rate
///  - HETEX_FAULT_COMPILE: tier-2 kernel compile/load failure rate
struct FaultOptions {
  bool enabled = false;
  uint64_t seed = 1;
  double dma_fault_rate = 0;
  double kernel_fault_rate = 0;
  double staging_fault_rate = 0;
  double compile_fault_rate = 0;

  static FaultOptions FromEnv();
};

/// \brief The fault plane: seeded-deterministic transient faults plus a
/// scripted device-health registry on the absolute virtual timeline.
///
/// Owned by System. Every injection site asks the injector before doing real
/// work and, when a fault fires, returns a *named* Status through the existing
/// WorkerInstance / Edge error-propagation paths — never an abort. Sites:
///  - Edge mem-move DMA scheduling          -> kUnavailable ("injected DMA ...")
///  - GpuProvider::Execute kernel launches  -> kUnavailable / kDeviceLost
///  - BlockRegistry::Acquire                -> kResourceExhausted
///  - KernelCache::Build                    -> counted compile failure (the
///    program serves its fallback tier; a compile fault never fails a query)
///
/// Transient schedules are deterministic for a fixed seed: each site draws from
/// a per-site operation counter hashed with the seed, so the k-th operation of a
/// site always gets the same verdict (thread interleavings change which logical
/// operation is k-th, but the fault *pattern* is pinned by the seed).
///
/// Device loss is scripted, not drawn: LoseGpu marks a device unavailable for a
/// window of absolute virtual time. Launches inside the window fail with
/// kDeviceLost; the scheduler re-plans the query on the surviving device set.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultOptions options) : options_(options) {}

  bool enabled() const { return options_.enabled; }
  const FaultOptions& options() const { return options_; }

  /// \name Injection sites. All return OK when the injector is disabled or the
  /// draw passes; a fired fault is counted and returned as a named Status.
  /// @{
  Status OnDmaTransfer(int link);
  /// Checks the device-loss schedule at absolute virtual time `at` first,
  /// then the transient kernel-launch draw.
  Status OnGpuExecute(int gpu, VTime at);
  Status OnStagingAcquire(MemNodeId node);
  /// Non-empty = the named reason this compile must fail (the kernel cache
  /// records a counted compile failure and serves the fallback tier).
  Status OnKernelCompile(const std::string& label);
  /// @}

  /// \name Scripted device loss / return (absolute virtual time).
  /// @{
  static constexpr VTime kForever = 1e30;
  void LoseGpu(int gpu, VTime from, VTime until = kForever);
  /// Clears every loss window of `gpu` (the device came back).
  void RestoreGpu(int gpu);
  bool GpuAvailableAt(int gpu, VTime t) const;
  /// GPUs with a loss window at or after `t` — the conservative exclusion set
  /// the scheduler re-plans against after a kDeviceLost failure (a window that
  /// fully ended before `t` does not exclude the device).
  std::vector<int> GpusLostOnOrAfter(VTime t) const;
  /// @}

  struct Counters {
    uint64_t dma_faults = 0;
    uint64_t kernel_faults = 0;
    uint64_t staging_faults = 0;
    uint64_t compile_faults = 0;
    uint64_t device_loss_rejections = 0;  ///< launches refused by the health registry
  };
  Counters counters() const;

 private:
  enum Site : int { kDma = 0, kKernel, kStaging, kCompile, kNumSites };

  /// Deterministic per-site draw: hash(seed, site, n-th operation) < rate.
  bool Draw(Site site, double rate);

  FaultOptions options_;
  std::array<std::atomic<uint64_t>, kNumSites> site_ops_{};

  struct LossWindow {
    int gpu = 0;
    VTime from = 0;
    VTime until = kForever;
  };
  mutable std::mutex mu_;
  std::vector<LossWindow> losses_;
  Counters counters_;
};

}  // namespace hetex::sim

#endif  // HETEX_SIM_FAULT_H_
