#ifndef HETEX_SIM_VTIME_H_
#define HETEX_SIM_VTIME_H_

#include <algorithm>

namespace hetex::sim {

/// Virtual (modeled) time, in seconds.
///
/// The simulator layers a virtual clock on top of the real, functional execution:
/// every block of data carries the virtual timestamp at which it becomes available
/// (`ready_at`), every execution context (pipeline instance, GPU stream, DMA
/// channel) owns a clock, and processing a block advances
/// `max(clock, block.ready_at)` by the modeled cost of the work. See
/// DESIGN.md §4.1.
using VTime = double;

inline VTime MaxT(VTime a, VTime b) { return std::max(a, b); }

}  // namespace hetex::sim

#endif  // HETEX_SIM_VTIME_H_
