#ifndef HETEX_SIM_INTERVAL_TIMELINE_H_
#define HETEX_SIM_INTERVAL_TIMELINE_H_

#include <cstddef>
#include <limits>
#include <map>

#include "sim/vtime.h"

namespace hetex::sim {

/// \brief Weighted busy intervals on one absolute virtual timeline.
///
/// The shared reservation structure behind every contended resource in the
/// simulator: a step function `level(t)` stored as a sorted boundary map
/// (key -> level on [key, next key)). Serially-shared resources (PCIe links,
/// GPU kernel streams) use it with weight 1 and first-fit gap probing; the
/// socket DRAM fluid-share server uses signed weighted intervals, where
/// `level(t)` is the number of workers whose execution phases overlap t.
///
/// All operations are O(log n + touched boundaries); the boundary count is
/// bounded by `max_segments` via a conservative merge (levels are only ever
/// raised, so bounding can delay or slow work but never speed it up) — a
/// long-lived server cannot grow without bound.
///
/// Not thread-safe; the owning server's mutex guards it.
class IntervalTimeline {
 public:
  static constexpr VTime kOpenEnd = std::numeric_limits<VTime>::infinity();

  explicit IntervalTimeline(size_t max_segments = 2048)
      : max_segments_(max_segments < 8 ? 8 : max_segments) {}

  /// Adds `weight` over [start, end) — or [start, infinity) when `end` is
  /// kOpenEnd (an open interval, closed later by a matching negative Add).
  /// Weights may be negative; the caller keeps levels non-negative.
  void Add(VTime start, VTime end, int weight) {
    if (weight == 0 || end <= start) return;
    auto from = EnsureBoundary(start);
    if (end == kOpenEnd) {
      for (auto it = from; it != steps_.end(); ++it) it->second += weight;
    } else {
      auto to = EnsureBoundary(end);
      for (auto it = steps_.lower_bound(start); it != to; ++it) {
        it->second += weight;
      }
    }
    Coalesce(start, end);
    Bound();
  }

  struct Span {
    int level = 0;      ///< weight sum over [t, until)
    VTime until = kOpenEnd;  ///< next boundary at or after t (kOpenEnd if none)
  };

  /// Level at time t and how long it holds.
  Span At(VTime t) const {
    Span s;
    auto it = steps_.upper_bound(t);
    s.level = (it == steps_.begin()) ? 0 : std::prev(it)->second;
    s.until = (it == steps_.end()) ? kOpenEnd : it->first;
    return s;
  }

  /// Earliest start >= `ready` of a level-0 gap holding `duration`. With
  /// weight-1 closed intervals this reproduces the disjoint-busy-map first
  /// fit bit-for-bit: the ready time is pushed out of any busy span it lands
  /// in, then past every span whose gap is too small. Returns kOpenEnd only
  /// if the timeline is busy forever (an unclosed open interval).
  VTime FirstFit(VTime duration, VTime ready) const {
    VTime start = ready;
    auto it = steps_.upper_bound(start);
    int level = (it == steps_.begin()) ? 0 : std::prev(it)->second;
    while (true) {
      if (level == 0) {
        const VTime until = (it == steps_.end()) ? kOpenEnd : it->first;
        if (until - start >= duration) return start;
      }
      if (it == steps_.end()) return level == 0 ? start : kOpenEnd;
      level = it->second;
      if (level == 0 && it->first > start) start = it->first;
      ++it;
    }
  }

  /// Last boundary on the timeline: past it the level is constant (0 unless
  /// an interval is still open). Closed intervals all end at or before it, so
  /// a session anchored at the horizon overlaps none of them.
  VTime horizon() const {
    return steps_.empty() ? 0.0 : steps_.rbegin()->first;
  }

  size_t num_segments() const { return steps_.size(); }

 private:
  /// Makes `t` a boundary carrying the level just before it, so a following
  /// range update changes the level only on [t, ...).
  std::map<VTime, int>::iterator EnsureBoundary(VTime t) {
    auto it = steps_.lower_bound(t);
    if (it != steps_.end() && it->first == t) return it;
    const int level = (it == steps_.begin()) ? 0 : std::prev(it)->second;
    return steps_.emplace_hint(it, t, level);
  }

  /// Drops boundaries in [start, end] whose level equals their predecessor's
  /// (implicitly 0 before the first boundary) — they no longer change the
  /// step function.
  void Coalesce(VTime start, VTime end) {
    auto it = steps_.lower_bound(start);
    int prev = (it == steps_.begin()) ? 0 : std::prev(it)->second;
    while (it != steps_.end() && (end == kOpenEnd || it->first <= end)) {
      if (it->second == prev) {
        it = steps_.erase(it);
      } else {
        prev = it->second;
        ++it;
      }
    }
  }

  /// Keeps the boundary count bounded. Merging the two earliest boundaries at
  /// the max of their levels absorbs the oldest gap (or flattens the oldest
  /// step) — levels only go up, so every later query sees the same or more
  /// contention and every first-fit start stays the same or moves later:
  /// bounding is strictly conservative.
  void Bound() {
    while (steps_.size() > max_segments_) {
      auto first = steps_.begin();
      auto second = std::next(first);
      first->second = first->second > second->second ? first->second
                                                     : second->second;
      steps_.erase(second);
      // The raise can make `first` equal its successor; leave it — the next
      // Coalesce pass near it will drop it, and correctness never depends on
      // minimality.
    }
  }

  const size_t max_segments_;
  /// Boundary -> level on [boundary, next boundary). Level before the first
  /// boundary is 0; level after the last equals its value.
  std::map<VTime, int> steps_;
};

}  // namespace hetex::sim

#endif  // HETEX_SIM_INTERVAL_TIMELINE_H_
