#ifndef HETEX_SIM_BANDWIDTH_H_
#define HETEX_SIM_BANDWIDTH_H_

#include <atomic>
#include <map>
#include <mutex>

#include "sim/vtime.h"

namespace hetex::sim {

/// \brief A serially-shared virtual-time resource (e.g. one PCIe link, one GPU
/// kernel stream).
///
/// Reservations queue behind each other in virtual time: a transfer scheduled at
/// virtual time t on a busy link starts when the link frees up. This is what makes
/// GPU execution PCIe-bound in the Fig. 5 regime and what lets back-to-back
/// transfers pipeline with compute.
///
/// The resource keeps one *absolute* timeline shared by every in-flight query;
/// each query session reserves relative to its own `epoch` (the virtual time at
/// which the session arrived). Reservation windows come back epoch-relative, so
/// all engine-internal timestamps stay session-local while contention between
/// concurrent sessions is charged on the shared absolute timeline. A session
/// whose epoch is at or past `free_at()` sees an idle resource — the
/// session-scoped replacement for the old rewind-to-zero reset.
///
/// Occupancy is a set of disjoint busy intervals and reservations are
/// first-fit: a request slots into the earliest gap (at or after its ready
/// time) that holds it. This keeps the model causally consistent under
/// concurrency — the wall-clock order in which sessions happen to call
/// Reserve cannot make an early-epoch request queue behind a reservation
/// whose virtual time lies entirely in its future.
class BandwidthServer {
 public:
  /// \param rate bytes per virtual second
  /// \param latency fixed per-reservation setup cost in virtual seconds
  explicit BandwidthServer(double rate, double latency = 0.0)
      : rate_(rate), latency_(latency) {}

  struct Window {
    VTime start;
    VTime end;
  };

  /// Reserves the resource for `bytes` no earlier than session-local time
  /// `earliest` of the session anchored at `epoch`; returns the session-local
  /// virtual-time window the work occupies.
  Window Reserve(uint64_t bytes, VTime earliest, VTime epoch = 0.0) {
    return ReserveDuration(latency_ + static_cast<double>(bytes) / rate_,
                           earliest, epoch);
  }

  /// Reserves a fixed-duration slot (e.g. a kernel whose cost was computed by the
  /// cost model) no earlier than session-local `earliest` of the session
  /// anchored at `epoch`.
  Window ReserveDuration(VTime duration, VTime earliest, VTime epoch = 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    // First fit: start at the request's ready time, pushed out of any busy
    // interval it lands in, then past every interval whose gap is too small.
    VTime start = epoch + earliest;
    auto it = busy_.upper_bound(start);
    if (it != busy_.begin()) {
      const auto prev = std::prev(it);
      if (prev->second > start) start = prev->second;
    }
    while (it != busy_.end() && it->first - start < duration) {
      start = MaxT(start, it->second);
      ++it;
    }
    const VTime end = start + duration;
    Insert(start, end);
    if (end > free_at_) free_at_ = end;
    return {start - epoch, end - epoch};
  }

  /// Absolute virtual time at which the resource frees up for good (the
  /// backlog horizon new sessions anchor their epochs past).
  VTime free_at() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_at_;
  }

  double rate() const { return rate_; }
  void set_rate(double rate) { rate_ = rate; }

 private:
  /// Inserts [start, end), coalescing with exactly-adjacent neighbours (the
  /// common back-to-back case) and bounding the interval count so a long-lived
  /// server cannot grow without bound (old gaps are absorbed conservatively).
  void Insert(VTime start, VTime end) {
    auto next = busy_.lower_bound(start);
    if (next != busy_.begin()) {
      const auto prev = std::prev(next);
      if (prev->second >= start) {  // touching on the left: extend it
        prev->second = end;
        if (next != busy_.end() && next->first <= end) {
          prev->second = MaxT(end, next->second);
          busy_.erase(next);
        }
        return;
      }
    }
    if (next != busy_.end() && next->first <= end) {  // touching on the right
      const VTime nend = MaxT(end, next->second);
      busy_.erase(next);
      busy_[start] = nend;
      return;
    }
    busy_[start] = end;
    if (busy_.size() > kMaxIntervals) {
      // Absorb the oldest gap: merging the two earliest intervals only makes
      // the model more conservative (a gap nobody can backfill anymore).
      auto first = busy_.begin();
      auto second = std::next(first);
      first->second = second->second;
      busy_.erase(second);
    }
  }

  static constexpr size_t kMaxIntervals = 1024;

  double rate_;
  const double latency_;
  mutable std::mutex mu_;
  /// Disjoint busy intervals start -> end, plus the all-time horizon.
  std::map<VTime, VTime> busy_;
  VTime free_at_ = 0.0;
};

/// \brief Fluid-share model of an aggregate-bandwidth resource (a socket's DRAM).
///
/// N concurrently active workers each see min(per-worker cap, total / N). This is
/// the mechanism behind the Fig. 6/7 scalability curves: per-core bandwidth adds up
/// linearly until the socket saturates, after which extra cores do not help.
class SharedBandwidth {
 public:
  SharedBandwidth(double total_rate, double per_worker_rate)
      : total_rate_(total_rate), per_worker_rate_(per_worker_rate) {}

  /// RAII registration of an active worker.
  class Guard {
   public:
    explicit Guard(SharedBandwidth* shared) : shared_(shared) {
      shared_->active_.fetch_add(1, std::memory_order_relaxed);
    }
    ~Guard() {
      if (shared_ != nullptr) shared_->active_.fetch_sub(1, std::memory_order_relaxed);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard(Guard&& o) noexcept : shared_(o.shared_) { o.shared_ = nullptr; }

   private:
    SharedBandwidth* shared_;
  };

  Guard Enter() { return Guard(this); }

  /// Bandwidth currently available to one active worker.
  double EffectiveRate() const {
    const int n = active_.load(std::memory_order_relaxed);
    if (n <= 0) return per_worker_rate_;
    const double share = total_rate_ / static_cast<double>(n);
    return share < per_worker_rate_ ? share : per_worker_rate_;
  }

  int active_workers() const { return active_.load(std::memory_order_relaxed); }
  double total_rate() const { return total_rate_; }
  double per_worker_rate() const { return per_worker_rate_; }

 private:
  const double total_rate_;
  const double per_worker_rate_;
  std::atomic<int> active_{0};
};

}  // namespace hetex::sim

#endif  // HETEX_SIM_BANDWIDTH_H_
