#ifndef HETEX_SIM_BANDWIDTH_H_
#define HETEX_SIM_BANDWIDTH_H_

#include <atomic>
#include <mutex>

#include "sim/vtime.h"

namespace hetex::sim {

/// \brief A serially-shared virtual-time resource (e.g. one PCIe link, one GPU
/// kernel stream).
///
/// Reservations queue behind each other in virtual time: a transfer scheduled at
/// virtual time t on a busy link starts when the link frees up. This is what makes
/// GPU execution PCIe-bound in the Fig. 5 regime and what lets back-to-back
/// transfers pipeline with compute.
class BandwidthServer {
 public:
  /// \param rate bytes per virtual second
  /// \param latency fixed per-reservation setup cost in virtual seconds
  explicit BandwidthServer(double rate, double latency = 0.0)
      : rate_(rate), latency_(latency) {}

  struct Window {
    VTime start;
    VTime end;
  };

  /// Reserves the resource for `bytes` no earlier than `earliest`; returns the
  /// virtual-time window the work occupies.
  Window Reserve(uint64_t bytes, VTime earliest) {
    std::lock_guard<std::mutex> lock(mu_);
    const VTime start = MaxT(earliest, free_at_);
    const VTime end = start + latency_ + static_cast<double>(bytes) / rate_;
    free_at_ = end;
    return {start, end};
  }

  /// Reserves a fixed-duration slot (e.g. a kernel whose cost was computed by the
  /// cost model) no earlier than `earliest`.
  Window ReserveDuration(VTime duration, VTime earliest) {
    std::lock_guard<std::mutex> lock(mu_);
    const VTime start = MaxT(earliest, free_at_);
    const VTime end = start + duration;
    free_at_ = end;
    return {start, end};
  }

  VTime free_at() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_at_;
  }

  /// Rewinds the resource to virtual time zero (between queries: each query runs
  /// on its own virtual timeline).
  void ResetClock() {
    std::lock_guard<std::mutex> lock(mu_);
    free_at_ = 0.0;
  }

  double rate() const { return rate_; }
  void set_rate(double rate) { rate_ = rate; }

 private:
  double rate_;
  const double latency_;
  mutable std::mutex mu_;
  VTime free_at_ = 0.0;
};

/// \brief Fluid-share model of an aggregate-bandwidth resource (a socket's DRAM).
///
/// N concurrently active workers each see min(per-worker cap, total / N). This is
/// the mechanism behind the Fig. 6/7 scalability curves: per-core bandwidth adds up
/// linearly until the socket saturates, after which extra cores do not help.
class SharedBandwidth {
 public:
  SharedBandwidth(double total_rate, double per_worker_rate)
      : total_rate_(total_rate), per_worker_rate_(per_worker_rate) {}

  /// RAII registration of an active worker.
  class Guard {
   public:
    explicit Guard(SharedBandwidth* shared) : shared_(shared) {
      shared_->active_.fetch_add(1, std::memory_order_relaxed);
    }
    ~Guard() {
      if (shared_ != nullptr) shared_->active_.fetch_sub(1, std::memory_order_relaxed);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard(Guard&& o) noexcept : shared_(o.shared_) { o.shared_ = nullptr; }

   private:
    SharedBandwidth* shared_;
  };

  Guard Enter() { return Guard(this); }

  /// Bandwidth currently available to one active worker.
  double EffectiveRate() const {
    const int n = active_.load(std::memory_order_relaxed);
    if (n <= 0) return per_worker_rate_;
    const double share = total_rate_ / static_cast<double>(n);
    return share < per_worker_rate_ ? share : per_worker_rate_;
  }

  int active_workers() const { return active_.load(std::memory_order_relaxed); }
  double total_rate() const { return total_rate_; }
  double per_worker_rate() const { return per_worker_rate_; }

 private:
  const double total_rate_;
  const double per_worker_rate_;
  std::atomic<int> active_{0};
};

}  // namespace hetex::sim

#endif  // HETEX_SIM_BANDWIDTH_H_
