#ifndef HETEX_SIM_BANDWIDTH_H_
#define HETEX_SIM_BANDWIDTH_H_

#include <atomic>
#include <map>
#include <mutex>

#include "sim/interval_timeline.h"
#include "sim/vtime.h"

namespace hetex::sim {

/// \brief A serially-shared virtual-time resource (e.g. one PCIe link, one GPU
/// kernel stream).
///
/// Reservations queue behind each other in virtual time: a transfer scheduled at
/// virtual time t on a busy link starts when the link frees up. This is what makes
/// GPU execution PCIe-bound in the Fig. 5 regime and what lets back-to-back
/// transfers pipeline with compute.
///
/// The resource keeps one *absolute* timeline shared by every in-flight query;
/// each query session reserves relative to its own `epoch` (the virtual time at
/// which the session arrived). Reservation windows come back epoch-relative, so
/// all engine-internal timestamps stay session-local while contention between
/// concurrent sessions is charged on the shared absolute timeline. A session
/// whose epoch is at or past `free_at()` sees an idle resource — the
/// session-scoped replacement for the old rewind-to-zero reset.
///
/// Occupancy lives in an IntervalTimeline (weight-1 busy intervals) and
/// reservations are first-fit: a request slots into the earliest gap (at or
/// after its ready time) that holds it. This keeps the model causally
/// consistent under concurrency — the wall-clock order in which sessions
/// happen to call Reserve cannot make an early-epoch request queue behind a
/// reservation whose virtual time lies entirely in its future.
class BandwidthServer {
 public:
  /// \param rate bytes per virtual second
  /// \param latency fixed per-reservation setup cost in virtual seconds
  explicit BandwidthServer(double rate, double latency = 0.0)
      : rate_(rate), latency_(latency) {}

  struct Window {
    VTime start;
    VTime end;
  };

  /// Reserves the resource for `bytes` no earlier than session-local time
  /// `earliest` of the session anchored at `epoch`; returns the session-local
  /// virtual-time window the work occupies.
  Window Reserve(uint64_t bytes, VTime earliest, VTime epoch = 0.0) {
    return ReserveDuration(
        latency_ + static_cast<double>(bytes) / rate_.load(std::memory_order_relaxed),
        earliest, epoch);
  }

  /// Reserves occupancy for `bytes` without the fixed setup term. UVA/zero-copy
  /// kernel streams pay pure bandwidth — demand-paged reads have no per-transfer
  /// DMA setup — yet still occupy the link other sessions queue behind.
  Window ReserveBytes(uint64_t bytes, VTime earliest, VTime epoch = 0.0) {
    return ReserveDuration(
        static_cast<double>(bytes) / rate_.load(std::memory_order_relaxed),
        earliest, epoch);
  }

  /// Reserves a fixed-duration slot (e.g. a kernel whose cost was computed by the
  /// cost model) no earlier than session-local `earliest` of the session
  /// anchored at `epoch`.
  Window ReserveDuration(VTime duration, VTime earliest, VTime epoch = 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    const VTime start = busy_.FirstFit(duration, epoch + earliest);
    const VTime end = start + duration;
    busy_.Add(start, end, 1);
    if (end > free_at_) free_at_ = end;
    return {start - epoch, end - epoch};
  }

  /// Reserves exactly [start, start + duration) at session-local `start` —
  /// no gap search. The anchored half of a probe→reserve pair: a caller that
  /// probed a start on this resource and sized dependent reservations
  /// elsewhere against it commits to that start here, atomically with respect
  /// to other sessions' reservations. If the slot was taken (or outgrown its
  /// gap) in between, occupancy stacks and the model only gets more
  /// conservative — the window never silently moves away from where the
  /// dependent reservations were anchored.
  Window ReserveDurationAt(VTime start, VTime duration, VTime epoch = 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    const VTime abs = epoch + start;
    busy_.Add(abs, abs + duration, 1);
    if (abs + duration > free_at_) free_at_ = abs + duration;
    return {start, start + duration};
  }

  /// Session-local start of the first gap (at or after `earliest`) that holds
  /// `duration`, without reserving anything. Lets a caller anchor a dependent
  /// reservation on another resource where this slot would actually run (the
  /// UVA kernel's link bytes anchor where the kernel's stream slot lands);
  /// pair it with ReserveDurationAt to commit the probed start.
  VTime ProbeStart(VTime duration, VTime earliest, VTime epoch = 0.0) const {
    std::lock_guard<std::mutex> lock(mu_);
    return busy_.FirstFit(duration, epoch + earliest) - epoch;
  }

  /// Absolute virtual time at which the resource frees up for good (the
  /// backlog horizon new sessions anchor their epochs past).
  VTime free_at() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_at_;
  }

  /// Busy-interval boundary count (diagnostics; the soak bench gates that it
  /// stays bounded under hundreds of sessions).
  size_t num_segments() const {
    std::lock_guard<std::mutex> lock(mu_);
    return busy_.num_segments();
  }

  double rate() const { return rate_.load(std::memory_order_relaxed); }
  void set_rate(double rate) { rate_.store(rate, std::memory_order_relaxed); }

 private:
  /// Bound on tracked busy intervals; older gaps are absorbed conservatively
  /// past it (IntervalTimeline::Bound, two boundaries per interval).
  static constexpr size_t kMaxIntervals = 1024;

  std::atomic<double> rate_;
  const double latency_;
  mutable std::mutex mu_;
  IntervalTimeline busy_{2 * kMaxIntervals};
  VTime free_at_ = 0.0;
};

/// \brief Cross-session fluid-share server for one socket's DRAM.
///
/// The socket aggregate is the mechanism behind the Fig. 6/7 scalability
/// curves: per-core bandwidth adds up linearly until the socket saturates,
/// after which extra cores do not help. Every query session reserves a
/// `{workers, [start, end)}` interval on the socket's absolute virtual
/// timeline per execution phase; one worker's streaming share at virtual time
/// t is then min(per-worker cap, aggregate / workers whose intervals overlap
/// t) — the same fluid model that used to divide within a single query,
/// extended across everything in flight. A solo session sees exactly the old
/// per-query divisor, so uncontended latencies are unchanged.
///
/// Accounting is virtual-time exact, not wall-clock scoped: a phase opens its
/// interval at its absolute start (Register), runs open-ended while the
/// engine models it, and closes at its modeled end (Release with an end
/// time). Closed intervals persist on the timeline, so a later session whose
/// epoch overlaps them is charged even if the earlier query finished running
/// (in wall-clock terms) long ago — and staggered-epoch sessions that never
/// overlap in virtual time no longer share a divisor just because their
/// wall-clock registrations coincided.
class DramServer {
 public:
  DramServer(double total_rate, double per_worker_rate)
      : total_rate_(total_rate), per_worker_rate_(per_worker_rate) {}

  /// Opens a `workers`-wide interval of query session `session` starting at
  /// *absolute* virtual time `start` (open-ended until Release closes it).
  /// Returns a token for Release; one session may hold several registrations
  /// (e.g. build phase and fact phase of one query overlap with different
  /// worker counts).
  uint64_t Register(uint64_t session, VTime start, int workers) {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t token = next_token_++;
    const int w = workers < 0 ? 0 : workers;
    open_[token] = Entry{session, start, w};
    if (w > 0) {
      timeline_.Add(start, IntervalTimeline::kOpenEnd, w);
      generation_.fetch_add(1, std::memory_order_release);
    }
    return token;
  }

  /// Closes the phase at absolute virtual time `end` (clamped to its start).
  /// The closed interval [start, max(start, end)) stays on the timeline and
  /// contends with any session overlapping it in virtual time.
  void Release(uint64_t token, VTime end) { CloseAt(token, /*at_start=*/false, end); }

  /// Discards the registration: the interval closes at its own start and
  /// leaves no residue. The error-path/test teardown overload — a phase that
  /// never modeled work must not charge future sessions.
  void Release(uint64_t token) { CloseAt(token, /*at_start=*/true, 0.0); }

  /// Bumped on every worker-bearing open and close — exactly two per
  /// execution phase. Tests use the delta to prove the runtime still
  /// registers its phases (a runtime that silently stopped charging
  /// cross-session DRAM would leave it flat).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Integrates one worker's block over the timeline: starting at absolute
  /// virtual time `start`, `bytes` drain at the fluid share
  /// min(per-worker cap, aggregate / (own_workers + overlapping others))
  /// piecewise across the step spans; the block ends when the bytes are done,
  /// floored by `start + compute`. Returns false when no other session's
  /// interval overlaps the drain — the caller then uses its closed-form solo
  /// arithmetic, keeping uncontended results bit-identical.
  ///
  /// `session`'s own open intervals covering `start` are excluded from the
  /// divisor (the query's own concurrency is `own_workers`, priced
  /// deterministically by the caller, not read back from the timeline).
  bool BlockEnd(uint64_t session, int own_workers, double bytes, VTime compute,
                VTime start, VTime* end) const {
    if (bytes <= 0.0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    int own_open = 0;
    for (const auto& [token, e] : open_) {
      if (e.session == session && e.start <= start) own_open += e.workers;
    }
    const int own = own_workers < 1 ? 1 : own_workers;
    VTime t = start;
    double remaining = bytes;
    bool contended = false;
    while (true) {
      const IntervalTimeline::Span span = timeline_.At(t);
      const int others = span.level > own_open ? span.level - own_open : 0;
      if (others > 0) contended = true;
      const double share = total_rate_ / static_cast<double>(own + others);
      const double rate = share < per_worker_rate_ ? share : per_worker_rate_;
      if (span.until == IntervalTimeline::kOpenEnd) {
        t += remaining / rate;
        break;
      }
      const double cap = rate * (span.until - t);
      if (remaining <= cap) {
        t += remaining / rate;
        break;
      }
      remaining -= cap;
      t = span.until;
    }
    if (!contended) return false;
    *end = MaxT(start + compute, t);
    return true;
  }

  /// Workers whose intervals (open or closed) overlap absolute virtual time
  /// t — the coster's backlog query at a candidate plan's epoch.
  int workers_overlapping(VTime t) const {
    std::lock_guard<std::mutex> lock(mu_);
    return timeline_.At(t).level;
  }

  /// Last timeline boundary: every *closed* interval ends at or before it, so
  /// a session anchored here overlaps none of them (open intervals extend
  /// past their start boundary; they belong to queries still being modeled).
  VTime horizon() const {
    std::lock_guard<std::mutex> lock(mu_);
    return timeline_.horizon();
  }

  size_t num_segments() const {
    std::lock_guard<std::mutex> lock(mu_);
    return timeline_.num_segments();
  }

  /// Workers registered by *open* phases of sessions other than `session` —
  /// the instantaneous cross-query view (diagnostics and tests; pricing uses
  /// BlockEnd / workers_overlapping).
  int workers_besides(uint64_t session) const {
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const auto& [token, e] : open_) {
      if (e.session != session) n += e.workers;
    }
    return n;
  }

  /// Fluid share one worker sees against the currently-open registrations:
  /// min(per-worker cap, aggregate / open workers). Idle server = full
  /// per-worker rate.
  double EffectiveRate() const {
    const int n = active_workers();
    if (n <= 0) return per_worker_rate_;
    const double share = total_rate_ / static_cast<double>(n);
    return share < per_worker_rate_ ? share : per_worker_rate_;
  }

  int active_workers() const {
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const auto& [token, e] : open_) n += e.workers;
    return n;
  }

  int active_sessions() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<uint64_t, int> distinct;
    for (const auto& [token, e] : open_) distinct[e.session] = 1;
    return static_cast<int>(distinct.size());
  }

  /// Earliest interval start among open registrations (diagnostics).
  VTime min_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    VTime m = 0;
    bool any = false;
    for (const auto& [token, e] : open_) {
      if (!any || e.start < m) m = e.start;
      any = true;
    }
    return m;
  }

  double total_rate() const { return total_rate_; }
  double per_worker_rate() const { return per_worker_rate_; }

 private:
  struct Entry {
    uint64_t session = 0;
    VTime start = 0;
    int workers = 0;
  };

  void CloseAt(uint64_t token, bool at_start, VTime end) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = open_.find(token);
    if (it == open_.end()) return;
    const Entry e = it->second;
    open_.erase(it);
    if (e.workers > 0) {
      const VTime close = at_start ? e.start : MaxT(e.start, end);
      timeline_.Add(close, IntervalTimeline::kOpenEnd, -e.workers);
      generation_.fetch_add(1, std::memory_order_release);
    }
  }

  const double total_rate_;
  const double per_worker_rate_;
  std::atomic<uint64_t> generation_{0};
  mutable std::mutex mu_;
  uint64_t next_token_ = 1;
  /// Open (not yet closed) registrations by token.
  std::map<uint64_t, Entry> open_;
  /// All intervals, open and closed, on the absolute timeline.
  IntervalTimeline timeline_{4096};
};

}  // namespace hetex::sim

#endif  // HETEX_SIM_BANDWIDTH_H_
