#ifndef HETEX_SIM_BANDWIDTH_H_
#define HETEX_SIM_BANDWIDTH_H_

#include <atomic>
#include <map>
#include <mutex>

#include "sim/vtime.h"

namespace hetex::sim {

/// \brief A serially-shared virtual-time resource (e.g. one PCIe link, one GPU
/// kernel stream).
///
/// Reservations queue behind each other in virtual time: a transfer scheduled at
/// virtual time t on a busy link starts when the link frees up. This is what makes
/// GPU execution PCIe-bound in the Fig. 5 regime and what lets back-to-back
/// transfers pipeline with compute.
///
/// The resource keeps one *absolute* timeline shared by every in-flight query;
/// each query session reserves relative to its own `epoch` (the virtual time at
/// which the session arrived). Reservation windows come back epoch-relative, so
/// all engine-internal timestamps stay session-local while contention between
/// concurrent sessions is charged on the shared absolute timeline. A session
/// whose epoch is at or past `free_at()` sees an idle resource — the
/// session-scoped replacement for the old rewind-to-zero reset.
///
/// Occupancy is a set of disjoint busy intervals and reservations are
/// first-fit: a request slots into the earliest gap (at or after its ready
/// time) that holds it. This keeps the model causally consistent under
/// concurrency — the wall-clock order in which sessions happen to call
/// Reserve cannot make an early-epoch request queue behind a reservation
/// whose virtual time lies entirely in its future.
class BandwidthServer {
 public:
  /// \param rate bytes per virtual second
  /// \param latency fixed per-reservation setup cost in virtual seconds
  explicit BandwidthServer(double rate, double latency = 0.0)
      : rate_(rate), latency_(latency) {}

  struct Window {
    VTime start;
    VTime end;
  };

  /// Reserves the resource for `bytes` no earlier than session-local time
  /// `earliest` of the session anchored at `epoch`; returns the session-local
  /// virtual-time window the work occupies.
  Window Reserve(uint64_t bytes, VTime earliest, VTime epoch = 0.0) {
    return ReserveDuration(latency_ + static_cast<double>(bytes) / rate_,
                           earliest, epoch);
  }

  /// Reserves occupancy for `bytes` without the fixed setup term. UVA/zero-copy
  /// kernel streams pay pure bandwidth — demand-paged reads have no per-transfer
  /// DMA setup — yet still occupy the link other sessions queue behind.
  Window ReserveBytes(uint64_t bytes, VTime earliest, VTime epoch = 0.0) {
    return ReserveDuration(static_cast<double>(bytes) / rate_, earliest, epoch);
  }

  /// Reserves a fixed-duration slot (e.g. a kernel whose cost was computed by the
  /// cost model) no earlier than session-local `earliest` of the session
  /// anchored at `epoch`.
  Window ReserveDuration(VTime duration, VTime earliest, VTime epoch = 0.0) {
    std::lock_guard<std::mutex> lock(mu_);
    const VTime start = FirstFit(duration, epoch + earliest);
    const VTime end = start + duration;
    Insert(start, end);
    if (end > free_at_) free_at_ = end;
    return {start - epoch, end - epoch};
  }

  /// Session-local start of the first gap (at or after `earliest`) that holds
  /// `duration`, without reserving anything. Lets a caller anchor a dependent
  /// reservation on another resource where this slot would actually run (the
  /// UVA kernel's link bytes anchor where the kernel's stream slot lands).
  VTime ProbeStart(VTime duration, VTime earliest, VTime epoch = 0.0) const {
    std::lock_guard<std::mutex> lock(mu_);
    return FirstFit(duration, epoch + earliest) - epoch;
  }

  /// Absolute virtual time at which the resource frees up for good (the
  /// backlog horizon new sessions anchor their epochs past).
  VTime free_at() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_at_;
  }

  double rate() const { return rate_; }
  void set_rate(double rate) { rate_ = rate; }

 private:
  /// First fit (caller holds mu_): start at the request's absolute ready
  /// time, pushed out of any busy interval it lands in, then past every
  /// interval whose gap is too small.
  VTime FirstFit(VTime duration, VTime ready) const {
    VTime start = ready;
    auto it = busy_.upper_bound(start);
    if (it != busy_.begin()) {
      const auto prev = std::prev(it);
      if (prev->second > start) start = prev->second;
    }
    while (it != busy_.end() && it->first - start < duration) {
      start = MaxT(start, it->second);
      ++it;
    }
    return start;
  }

  /// Inserts [start, end), coalescing with exactly-adjacent neighbours (the
  /// common back-to-back case) and bounding the interval count so a long-lived
  /// server cannot grow without bound (old gaps are absorbed conservatively).
  void Insert(VTime start, VTime end) {
    auto next = busy_.lower_bound(start);
    if (next != busy_.begin()) {
      const auto prev = std::prev(next);
      if (prev->second >= start) {  // touching on the left: extend it
        prev->second = end;
        if (next != busy_.end() && next->first <= end) {
          prev->second = MaxT(end, next->second);
          busy_.erase(next);
        }
        return;
      }
    }
    if (next != busy_.end() && next->first <= end) {  // touching on the right
      const VTime nend = MaxT(end, next->second);
      busy_.erase(next);
      busy_[start] = nend;
      return;
    }
    busy_[start] = end;
    if (busy_.size() > kMaxIntervals) {
      // Absorb the oldest gap: merging the two earliest intervals only makes
      // the model more conservative (a gap nobody can backfill anymore).
      auto first = busy_.begin();
      auto second = std::next(first);
      first->second = second->second;
      busy_.erase(second);
    }
  }

  static constexpr size_t kMaxIntervals = 1024;

  double rate_;
  const double latency_;
  mutable std::mutex mu_;
  /// Disjoint busy intervals start -> end, plus the all-time horizon.
  std::map<VTime, VTime> busy_;
  VTime free_at_ = 0.0;
};

/// \brief Cross-session fluid-share server for one socket's DRAM.
///
/// The socket aggregate is the mechanism behind the Fig. 6/7 scalability
/// curves: per-core bandwidth adds up linearly until the socket saturates,
/// after which extra cores do not help. Every in-flight query session
/// registers the CPU workers it concurrently runs on this socket (per
/// execution phase), together with its session epoch; one worker's streaming
/// share is then min(per-worker cap, aggregate / total workers across all
/// registered sessions) — the same fluid model that used to divide within a
/// single query, extended across everything in flight. A solo session sees
/// exactly the old per-query divisor, so uncontended latencies are unchanged.
///
/// Registration is wall-clock scoped: sessions registered at the same instant
/// are the sessions overlapping in virtual time, because the scheduler anchors
/// every session's epoch inside the current busy period (an idle arrival
/// anchors past the resource horizon and, by then, every earlier registration
/// has been released). Epochs are recorded for diagnostics and tests.
class DramServer {
 public:
  DramServer(double total_rate, double per_worker_rate)
      : total_rate_(total_rate), per_worker_rate_(per_worker_rate) {}

  /// Registers `workers` concurrently-active workers of the query session
  /// `session` (anchored at absolute `epoch`). Returns a token for Release;
  /// one session may hold several registrations (e.g. build phase and fact
  /// phase of one query overlap with different worker counts).
  uint64_t Register(uint64_t session, VTime epoch, int workers) {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t token = next_token_++;
    entries_[token] = Entry{session, epoch, workers < 0 ? 0 : workers};
    generation_.fetch_add(1, std::memory_order_release);
    return token;
  }

  void Release(uint64_t token) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(token);
    generation_.fetch_add(1, std::memory_order_release);
  }

  /// Bumped on every Register/Release. Registrations change only at query
  /// phase boundaries, so per-block hot paths cache their divisor and re-read
  /// it only when the generation moved (one relaxed load per block instead of
  /// a mutex + map walk).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Workers registered by sessions other than `session` — the cross-query
  /// part of a worker's fluid-share divisor (its own query's divisor is the
  /// deterministic per-group worker count, not a registration lookup).
  int workers_besides(uint64_t session) const {
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const auto& [token, e] : entries_) {
      if (e.session != session) n += e.workers;
    }
    return n;
  }

  /// Fluid share one worker sees right now: min(per-worker cap, aggregate /
  /// total registered workers). Idle server = full per-worker rate.
  double EffectiveRate() const {
    const int n = active_workers();
    if (n <= 0) return per_worker_rate_;
    const double share = total_rate_ / static_cast<double>(n);
    return share < per_worker_rate_ ? share : per_worker_rate_;
  }

  int active_workers() const {
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const auto& [token, e] : entries_) n += e.workers;
    return n;
  }

  int active_sessions() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<uint64_t, int> distinct;
    for (const auto& [token, e] : entries_) distinct[e.session] = 1;
    return static_cast<int>(distinct.size());
  }

  /// Earliest epoch among registered sessions (diagnostics).
  VTime min_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    VTime m = 0;
    bool any = false;
    for (const auto& [token, e] : entries_) {
      if (!any || e.epoch < m) m = e.epoch;
      any = true;
    }
    return m;
  }

  double total_rate() const { return total_rate_; }
  double per_worker_rate() const { return per_worker_rate_; }

 private:
  struct Entry {
    uint64_t session = 0;
    VTime epoch = 0;
    int workers = 0;
  };

  const double total_rate_;
  const double per_worker_rate_;
  std::atomic<uint64_t> generation_{0};
  mutable std::mutex mu_;
  uint64_t next_token_ = 1;
  std::map<uint64_t, Entry> entries_;
};

}  // namespace hetex::sim

#endif  // HETEX_SIM_BANDWIDTH_H_
