#ifndef HETEX_COMMON_RNG_H_
#define HETEX_COMMON_RNG_H_

#include <cstdint>

namespace hetex {

/// \brief Small, fast, deterministic PRNG (xorshift128+).
///
/// Used by the SSB data generator and the property-based tests; determinism across
/// platforms matters more here than statistical perfection.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    s0_ = SplitMix(seed);
    s1_ = SplitMix(s0_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / (1ull << 53)); }

  /// Bernoulli with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace hetex

#endif  // HETEX_COMMON_RNG_H_
