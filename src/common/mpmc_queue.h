#ifndef HETEX_COMMON_MPMC_QUEUE_H_
#define HETEX_COMMON_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace hetex {

/// \brief Bounded multi-producer multi-consumer queue.
///
/// This is the asynchronous queue that backs the HetExchange router and the
/// device-to-host side of the gpu2cpu operator. Closing the queue wakes all
/// blocked consumers; Pop returns std::nullopt once the queue is closed *and*
/// drained, which is how end-of-stream propagates between pipeline instances.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity = 1024) : capacity_(capacity) {}

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocking push; returns false if the queue was closed before the item fit.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; std::nullopt means closed-and-drained (end of stream).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: producers fail, consumers drain then see end-of-stream.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hetex

#endif  // HETEX_COMMON_MPMC_QUEUE_H_
