#ifndef HETEX_COMMON_TIMER_H_
#define HETEX_COMMON_TIMER_H_

#include <chrono>

namespace hetex {

/// Wall-clock stopwatch. Benchmarks report both wall-clock time (functional cost on
/// the host running the simulation) and modeled virtual time (see sim/cost_model.h).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hetex

#endif  // HETEX_COMMON_TIMER_H_
