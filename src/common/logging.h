#ifndef HETEX_COMMON_LOGGING_H_
#define HETEX_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace hetex {

/// Severity levels for the engine logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Default: kWarning so that
/// tests and benchmarks stay quiet unless something is wrong.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style log message that emits on destruction; aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace hetex

#define HETEX_LOG(level) \
  ::hetex::internal::LogMessage(::hetex::LogLevel::k##level, __FILE__, __LINE__)

/// CHECK aborts (even in release builds): invariants in a database engine must not
/// be silently violated.
#define HETEX_CHECK(cond)                                                      \
  if (!(cond))                                                                 \
  ::hetex::internal::LogMessage(::hetex::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define HETEX_CHECK_OK(expr)                                  \
  do {                                                        \
    ::hetex::Status _st = (expr);                             \
    HETEX_CHECK(_st.ok()) << _st.ToString();                  \
  } while (0)

#define HETEX_DCHECK(cond) HETEX_CHECK(cond)

#endif  // HETEX_COMMON_LOGGING_H_
