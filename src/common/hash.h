#ifndef HETEX_COMMON_HASH_H_
#define HETEX_COMMON_HASH_H_

#include <cstdint>

namespace hetex {

/// 64-bit finalizer (MurmurHash3 fmix64). Used for hash joins, hash-pack block
/// bucketing and hash-based routing; the same mix is used by generated pipeline
/// code and by the runtime so that hash-pack invariants line up with router
/// decisions.
inline uint64_t HashMix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xFF51AFD7ED558CCDull;
  k ^= k >> 33;
  k *= 0xC4CEB9FE1A85EC53ull;
  k ^= k >> 33;
  return k;
}

/// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t h, uint64_t k) {
  return h ^ (HashMix64(k) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2));
}

}  // namespace hetex

#endif  // HETEX_COMMON_HASH_H_
