#ifndef HETEX_COMMON_STATUS_H_
#define HETEX_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace hetex {

/// Error codes used across the engine. Modeled after the Status idiom used by
/// production storage engines (Arrow / RocksDB): cheap to pass by value, no
/// exceptions on hot paths.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,
  kNotFound,
  kUnsupported,     ///< feature not supported by the engine (e.g. DBMS G string ops)
  kInternal,
  kResourceExhausted,
  kUnavailable,       ///< transient fault (DMA error, kernel-launch failure): retryable
  kDeviceLost,        ///< whole device unavailable: recover by re-planning without it
  kDeadlineExceeded,  ///< the query's virtual-time budget ran out
  kCancelled,         ///< the client cancelled the query
};

/// Fault classes the scheduler's degraded-mode recovery distinguishes: a
/// transient fault is worth retrying the same plan with backoff; a device loss
/// needs a re-plan on the surviving device set; everything else is terminal.
inline bool IsTransientFault(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

/// \brief Result of an operation that can fail without a payload.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeviceLost(std::string msg) {
    return Status(StatusCode::kDeviceLost, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfMemory: return "OutOfMemory";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kDeviceLost: return "DeviceLost";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kCancelled: return "Cancelled";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Status with a value payload; holds either a T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

#define HETEX_RETURN_NOT_OK(expr)                  \
  do {                                             \
    ::hetex::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace hetex

#endif  // HETEX_COMMON_STATUS_H_
