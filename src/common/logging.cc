#include "common/logging.h"

#include <atomic>

namespace hetex {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kFatal: return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_log_level.store(level, std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= GetLogLevel() || level == LogLevel::kFatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace hetex
