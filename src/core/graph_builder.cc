#include "core/graph_builder.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "core/processor.h"

namespace hetex::core {

namespace {

using Kind = plan::HetOpNode::Kind;

/// Operators executed inside a worker pipeline (spans).
bool IsSpanKind(Kind k) {
  return k == Kind::kUnpack || k == Kind::kPack || k == Kind::kHashPack ||
         k == Kind::kFilter || k == Kind::kProject || k == Kind::kJoinBuild ||
         k == Kind::kJoinProbe || k == Kind::kReduceLocal ||
         k == Kind::kGroupByLocal || k == Kind::kGather;
}

/// Operators lowered onto edges (and the segmenter, lowered to a SourceDriver).
bool IsTransportKind(Kind k) {
  return k == Kind::kRouter || k == Kind::kMemMove || k == Kind::kCpu2Gpu ||
         k == Kind::kGpu2Cpu || k == Kind::kSegmenter;
}

/// Exchange decoration: converters that ride on an edge rather than in a span.
bool IsDecorationKind(Kind k) {
  return k == Kind::kMemMove || k == Kind::kCpu2Gpu || k == Kind::kGpu2Cpu;
}

/// A pack marks the producer side of an exchange: walking consumer→producer,
/// reaching one starts a new span even when no transport operator separates
/// them (bare plans route partials straight from pack to gather).
bool IsProducerTop(Kind k) { return k == Kind::kPack || k == Kind::kHashPack; }

Edge::Policy LowerPolicy(plan::RouterPolicy policy) {
  switch (policy) {
    case plan::RouterPolicy::kRoundRobin: return Edge::Policy::kRoundRobin;
    case plan::RouterPolicy::kLoadBalance: return Edge::Policy::kLoadBalance;
    case plan::RouterPolicy::kHash: return Edge::Policy::kHash;
    case plan::RouterPolicy::kBroadcast: return Edge::Policy::kBroadcast;
    // A union funnels every producer into the single downstream instance set;
    // with one consumer per message the rotation is immaterial.
    case plan::RouterPolicy::kUnion: return Edge::Policy::kRoundRobin;
  }
  return Edge::Policy::kRoundRobin;
}

const char* PolicyName(Edge::Policy policy) {
  switch (policy) {
    case Edge::Policy::kRoundRobin: return "round-robin";
    case Edge::Policy::kLoadBalance: return "load-balance";
    case Edge::Policy::kHash: return "hash";
    case Edge::Policy::kBroadcast: return "broadcast";
  }
  return "?";
}

ProcessorFactory FactoryFor(const StageConfig* cfg) {
  return [cfg](WorkerInstance&) { return MakeVmProcessor(cfg); };
}

}  // namespace

int LoweredSpec::TotalInstances() const {
  int total = 0;
  for (const auto& s : build_stages) total += static_cast<int>(s.instances.size());
  for (const auto& s : fact_stages) total += static_cast<int>(s.instances.size());
  return total;
}

int LoweredSpec::TotalEdges() const {
  return static_cast<int>(build_stages.size() + fact_stages.size());
}

std::string LoweredSpec::ToString() const {
  std::ostringstream os;
  os << "lowered graph: " << build_stages.size() << " build stage(s), "
     << fact_stages.size() << " fact stage(s), " << TotalInstances()
     << " instance(s)\n";
  auto print_stage = [&os](const StageSpec& stage, const char* label) {
    os << label << " " << PipelineSpan::RoleName(stage.span.role);
    if (stage.span.role == PipelineSpan::Role::kBuild) {
      os << " ht[" << stage.span.join_id << "]";
    }
    os << " x" << stage.instances.size() << " [";
    for (size_t i = 0; i < stage.instances.size(); ++i) {
      os << (i ? " " : "") << stage.instances[i].ToString();
    }
    os << "]\n";
    os << "  edge: policy=" << PolicyName(stage.in.options.policy)
       << (stage.in.options.mem_move ? " mem-move" : " no-mem-move")
       << (stage.in.uva ? " uva" : "");
    if (stage.in.options.crossing_latency > 0) {
      os << " crossing=" << stage.in.options.crossing_latency;
    }
    os << " control=" << stage.in.options.control_cost << "\n";
  };
  for (const auto& stage : build_stages) print_stage(stage, "build stage:");
  for (const auto& stage : fact_stages) print_stage(stage, "fact stage:");
  return os.str();
}

Status GraphBuilder::Analyze() {
  spec_ = LoweredSpec{};
  const plan::HetPlan& plan = *plan_;
  if (plan.root < 0 || plan.root >= static_cast<int>(plan.nodes.size())) {
    return Status::InvalidArgument("plan has no root node");
  }
  spec_.channel_capacity = plan.channel_capacity;
  for (const auto& n : plan.nodes) {
    if (n.kind == Kind::kRouter) {
      spec_.init_latency = sim::MaxT(spec_.init_latency, n.init_latency);
    }
  }

  std::vector<int> build_tops;  // kJoinBuild span tops, discovery order
  std::unordered_set<int> seen_build_tops;

  // Walks consumer→producer from `top` collecting one pipeline span; stops at
  // the first transport operator or producer-side pack, which becomes `feed`.
  auto collect_span = [&](int top, std::vector<int>* nodes, int* feed) -> Status {
    int cur = top;
    while (true) {
      const plan::HetOpNode& n = plan.node(cur);
      if (!IsSpanKind(n.kind)) {
        return Status::Internal(std::string("pipeline span contains operator ") +
                                plan::HetOpNode::KindName(n.kind));
      }
      nodes->push_back(cur);
      if (nodes->size() > plan.nodes.size()) {
        return Status::Internal("pipeline span does not terminate (plan cycle)");
      }
      if (n.kind == Kind::kJoinProbe) {
        // Build-side children are separate pipeline networks.
        for (size_t c = 1; c < n.children.size(); ++c) {
          if (seen_build_tops.insert(n.children[c]).second) {
            build_tops.push_back(n.children[c]);
          }
        }
      }
      if (n.children.empty()) {
        return Status::Internal("pipeline span reaches a leaf without a source");
      }
      const int child = n.children[0];
      const Kind ck = plan.node(child).kind;
      if (IsTransportKind(ck) || IsProducerTop(ck)) {
        *feed = child;
        return Status::OK();
      }
      cur = child;
    }
  };

  // Walks one decoration chain (mem-move / device crossings) to its exchange
  // terminal (router, segmenter or producer pack), harvesting the UVA marker
  // and crossing latency into `e` when given. Returns -1 on a dangling chain
  // or cycle. The single walker keeps the consumer-side, producer-side and
  // grouping passes from diverging on what decoration means.
  auto walk_decoration = [&](int from, EdgeSpec* e) -> int {
    int cur = from;
    size_t steps = 0;
    while (IsDecorationKind(plan.node(cur).kind)) {
      const plan::HetOpNode& n = plan.node(cur);
      if (e != nullptr) {
        if (n.kind == Kind::kCpu2Gpu) {
          if (plan::IsUvaCrossing(n)) e->uva = true;
        } else if (n.kind == Kind::kGpu2Cpu) {
          e->options.crossing_latency =
              std::max(e->options.crossing_latency, n.crossing_latency);
        }  // kMemMove: locality is restored on every non-UVA edge regardless
      }
      if (n.children.empty() || ++steps > plan.nodes.size()) return -1;
      cur = n.children[0];
    }
    return cur;
  };
  auto terminal_of = [&](int feed) -> int { return walk_decoration(feed, nullptr); };

  // Lowers the exchange below a stage's branch spans (`feeds`: one entry per
  // branch) into an EdgeSpec: consumer-side decoration → shared router →
  // producer-side decoration → producer span tops / source segmenter.
  auto parse_feed = [&](const std::vector<int>& feeds, EdgeSpec* e) -> Status {
    for (int feed : feeds) {
      const int cur = walk_decoration(feed, e);
      if (cur < 0) {
        return Status::Internal("dangling or cyclic exchange decoration");
      }
      const plan::HetOpNode& n = plan.node(cur);
      if (n.kind == Kind::kRouter) {
        if (e->router != -1 && e->router != cur) {
          return Status::Internal("stage branches fed by different routers");
        }
        e->router = cur;
      } else if (n.kind == Kind::kSegmenter) {
        // Bare plan: the source feeds the span directly.
        if (e->segmenter != -1 && e->segmenter != cur) {
          return Status::Internal("exchange fed by multiple segmenters");
        }
        e->segmenter = cur;
      } else if (IsProducerTop(n.kind)) {
        e->producer_tops.push_back(cur);
      } else {
        return Status::Internal(std::string("span fed by non-exchange operator ") +
                                plan::HetOpNode::KindName(n.kind));
      }
    }

    if (e->router != -1) {
      const plan::HetOpNode& r = plan.node(e->router);
      e->options.policy = LowerPolicy(r.policy);
      e->options.control_cost = r.control_cost;
      for (int child : r.children) {
        const int cur = walk_decoration(child, e);
        if (cur < 0) {
          return Status::Internal("dangling or cyclic exchange decoration");
        }
        const plan::HetOpNode& n = plan.node(cur);
        if (n.kind == Kind::kSegmenter) {
          if (e->segmenter != -1 && e->segmenter != cur) {
            return Status::Internal("exchange fed by multiple segmenters");
          }
          e->segmenter = cur;
        } else if (IsSpanKind(n.kind)) {
          e->producer_tops.push_back(cur);
        } else {
          return Status::Internal(
              std::string("router fed by non-pipeline operator ") +
              plan::HetOpNode::KindName(n.kind));
        }
      }
    } else {
      e->options.policy = Edge::Policy::kRoundRobin;
      e->options.control_cost = 0;
    }
    if (e->segmenter != -1 && !e->producer_tops.empty()) {
      return Status::Internal("exchange mixes a segmenter with pipeline producers");
    }
    // Relational operators are data-location agnostic: every exchange fixes
    // locality on the consumer side unless the plan opted into UVA addressing.
    e->options.mem_move = !e->uva;
    return Status::OK();
  };

  // Hand-mutated plans can stamp placements the server does not have; surface
  // them as a Status instead of letting provider construction abort.
  const sim::Topology& topo = system_->topology();
  auto check_instances = [&](const std::vector<sim::DeviceId>& instances) -> Status {
    for (const auto& dev : instances) {
      const int limit = dev.is_cpu() ? topo.num_sockets() : topo.num_gpus();
      if (dev.index < 0 || dev.index >= limit) {
        return Status::InvalidArgument(
            "placement names device " + dev.ToString() + " but the server has " +
            std::to_string(limit) + " " + (dev.is_cpu() ? "socket(s)" : "GPU(s)"));
      }
    }
    return Status::OK();
  };

  auto make_stage = [&](std::vector<std::vector<int>> branch_nodes, EdgeSpec in,
                        StageSpec* out) -> Status {
    for (size_t i = 0; i < branch_nodes.size(); ++i) {
      PipelineSpan span = ClassifySpan(plan, branch_nodes[i]);
      if (span.instances.empty()) {
        return Status::Internal("pipeline span without a placement stamp");
      }
      HETEX_RETURN_NOT_OK(check_instances(span.instances));
      if (i > 0 && (span.role != out->span.role ||
                    span.join_id != out->span.join_id ||
                    span.n_buckets != out->span.n_buckets)) {
        // Merged branches compile from branch 0's span; inconsistent stamps
        // would be silently ignored, so reject them instead.
        return Status::Internal("exchange feeds inconsistently stamped spans");
      }
      out->instances.insert(out->instances.end(), span.instances.begin(),
                            span.instances.end());
      if (i == 0) out->span = std::move(span);
    }
    out->branch_nodes = std::move(branch_nodes);
    out->in = std::move(in);
    return Status::OK();
  };

  // --- Fact-side chain: from the result node down to the fact segmenter.
  const plan::HetOpNode& root = plan.node(plan.root);
  if (root.kind != Kind::kResult || root.children.size() != 1) {
    return Status::InvalidArgument("plan root must be a single-input result node");
  }
  std::vector<int> tops = {root.children[0]};
  while (true) {
    // A cycle through an exchange re-discovers the same producer tops forever;
    // a legal chain cannot have more stages than the plan has nodes.
    if (spec_.fact_stages.size() > plan.nodes.size()) {
      return Status::Internal("fact chain does not terminate (plan cycle)");
    }
    std::vector<std::vector<int>> branch_nodes;
    std::vector<int> feeds;
    for (int top : tops) {
      std::vector<int> nodes;
      int feed = -1;
      Status st = collect_span(top, &nodes, &feed);
      if (!st.ok()) return st;
      branch_nodes.push_back(std::move(nodes));
      feeds.push_back(feed);
    }
    EdgeSpec in;
    Status st = parse_feed(feeds, &in);
    if (!st.ok()) return st;
    StageSpec stage;
    st = make_stage(std::move(branch_nodes), std::move(in), &stage);
    if (!st.ok()) return st;

    const bool at_source = stage.in.segmenter != -1;
    std::vector<int> next = stage.in.producer_tops;
    spec_.fact_stages.push_back(std::move(stage));
    if (at_source) break;
    if (next.empty()) return Status::Internal("exchange with no producers");
    tops = std::move(next);
  }
  if (spec_.fact_stages.front().span.role != PipelineSpan::Role::kGather) {
    return Status::Internal("fact chain must terminate in a gather stage");
  }

  // --- Build networks: group the kJoinBuild spans by their feeding exchange
  // (all per-unit replicas of one join share its broadcast router).
  struct BuildGroup {
    std::vector<std::vector<int>> branch_nodes;
    std::vector<int> feeds;
  };
  std::vector<int> group_keys;
  std::unordered_map<int, BuildGroup> by_key;
  for (int top : build_tops) {
    std::vector<int> nodes;
    int feed = -1;
    Status st = collect_span(top, &nodes, &feed);
    if (!st.ok()) return st;
    const int key = terminal_of(feed);
    if (key < 0) return Status::Internal("build span with a dangling feed");
    if (by_key.find(key) == by_key.end()) group_keys.push_back(key);
    BuildGroup& g = by_key[key];
    g.branch_nodes.push_back(std::move(nodes));
    g.feeds.push_back(feed);
  }
  for (int key : group_keys) {
    BuildGroup& g = by_key[key];
    EdgeSpec in;
    Status st = parse_feed(g.feeds, &in);
    if (!st.ok()) return st;
    StageSpec stage;
    st = make_stage(std::move(g.branch_nodes), std::move(in), &stage);
    if (!st.ok()) return st;
    if (stage.span.role != PipelineSpan::Role::kBuild) {
      return Status::Internal("join-probe child span is not a build pipeline");
    }
    if (stage.in.segmenter == -1) {
      return Status::Internal("build stage without a source segmenter");
    }
    spec_.build_stages.push_back(std::move(stage));
  }

  // Broadcast hash joins replicate one table per device unit: a mutated
  // placement that leaves a probe unit without its replica — or builds two
  // replicas on one unit — must surface as a Status here, not abort inside
  // the HtRegistry at probe time.
  std::unordered_map<int, std::unordered_set<int>> build_units;
  for (const StageSpec& stage : spec_.build_stages) {
    auto& units = build_units[stage.span.join_id];
    for (const auto& dev : stage.instances) {
      if (!units.insert(HtRegistry::UnitOf(dev)).second) {
        return Status::InvalidArgument(
            "join " + std::to_string(stage.span.join_id) +
            " builds two hash-table replicas on unit " + dev.ToString());
      }
    }
  }
  for (const StageSpec& stage : spec_.fact_stages) {
    std::unordered_set<int> joins;
    for (const auto& branch : stage.branch_nodes) {
      for (int id : branch) {
        if (plan.node(id).kind == Kind::kJoinProbe) {
          joins.insert(plan.node(id).join_id);
        }
      }
    }
    for (int j : joins) {
      for (const auto& dev : stage.instances) {
        if (build_units[j].count(HtRegistry::UnitOf(dev)) == 0) {
          return Status::InvalidArgument(
              "probe instance on " + dev.ToString() + " has no join-" +
              std::to_string(j) +
              " hash-table replica (build placement does not cover its unit)");
        }
      }
    }
  }

  // A UVA edge skips the mem-move for every consumer of the exchange, so its
  // blocks must stay host-addressable: GPU-placed producers would emit
  // device-resident blocks no other unit can address in place. Reject the
  // combination here (hand-mutated uva flags reach this path) instead of
  // aborting inside the router.
  for (size_t i = 0; i + 1 < spec_.fact_stages.size(); ++i) {
    const StageSpec& stage = spec_.fact_stages[i];
    if (!stage.in.uva || stage.in.producer_tops.empty()) continue;
    const StageSpec& producer = spec_.fact_stages[i + 1];
    for (const auto& dev : producer.instances) {
      if (dev.is_gpu()) {
        return Status::InvalidArgument(
            "UVA exchange fed by GPU-placed producer " + dev.ToString() +
            ": device-resident blocks cannot be addressed in place");
      }
    }
  }
  return Status::OK();
}

namespace {

/// One instantiated stage: the worker group plus the edge (and possibly the
/// source driver) feeding it. Declaration order matters for destruction.
struct RuntimeStage {
  std::unique_ptr<StageConfig> cfg;
  std::unique_ptr<WorkerGroup> group;
  std::unique_ptr<Edge> edge;
  std::unique_ptr<SourceDriver> source;
};

/// Reserves one execution phase's concurrently-active CPU workers (per
/// socket) as an interval on the cross-session DRAM timelines: the interval
/// opens at the phase's session-local `start` and closes at the modeled end
/// passed to Close(). Closed intervals persist, so any session overlapping
/// this phase *in virtual time* divides its fluid share by these workers —
/// and this query's own shares divide by theirs (see sim::DramServer). If the
/// phase errors out before Close(), the destructor discards the reservation
/// (a phase that never modeled work must not charge future sessions).
class DramPhaseGuard {
 public:
  DramPhaseGuard(sim::Topology* topo, const QuerySession& session,
                 const std::vector<const StageSpec*>& stages, sim::VTime start)
      : topo_(topo), epoch_(session.epoch) {
    std::map<int, int> workers;
    for (const StageSpec* stage : stages) {
      for (const auto& dev : stage->instances) {
        if (dev.is_cpu()) workers[dev.index] += 1;
      }
    }
    for (const auto& [socket, n] : workers) {
      if (n <= 0) continue;
      tokens_.emplace_back(socket, topo_->socket_dram(socket).Register(
                                       session.query_id, epoch_ + start, n));
    }
  }

  /// Closes the phase's intervals at session-local `end`.
  void Close(sim::VTime end) {
    for (const auto& [socket, token] : tokens_) {
      topo_->socket_dram(socket).Release(token, epoch_ + end);
    }
    tokens_.clear();
  }

  ~DramPhaseGuard() {
    for (const auto& [socket, token] : tokens_) {
      topo_->socket_dram(socket).Release(token);  // error path: discard
    }
  }
  DramPhaseGuard(const DramPhaseGuard&) = delete;
  DramPhaseGuard& operator=(const DramPhaseGuard&) = delete;

 private:
  sim::Topology* topo_;
  sim::VTime epoch_;
  std::vector<std::pair<int, uint64_t>> tokens_;
};

}  // namespace

Status GraphBuilder::CompileFactPipelines(
    QueryCompiler* compiler, std::vector<CompiledPipeline>* out) const {
  // Pipelines compile producer→consumer so a stage can read its producer's emit
  // schema (stage B of split plans reads stage A's surviving columns).
  const int n_fact = static_cast<int>(spec_.fact_stages.size());
  out->assign(n_fact, {});
  for (int i = n_fact - 1; i >= 0; --i) {
    const PipelineSpan::Role role = spec_.fact_stages[i].span.role;
    const PipelineSpan::Role* producer =
        i + 1 < n_fact ? &spec_.fact_stages[i + 1].span.role : nullptr;
    const std::vector<ColSlot>* upstream = nullptr;
    switch (role) {
      case PipelineSpan::Role::kProbe:
        if (producer != nullptr) {
          if (*producer != PipelineSpan::Role::kFilterStage) {
            return Status::Unsupported(
                "probe stage fed by a packed producer whose wire schema the "
                "compiler cannot thread (only filter-stage producers supported)");
          }
          upstream = &(*out)[i + 1].output_cols;
        }
        break;
      case PipelineSpan::Role::kFilterStage:
        if (producer != nullptr) {
          return Status::Unsupported(
              "filter stage must read its source table directly");
        }
        break;
      case PipelineSpan::Role::kGather:
        if (producer != nullptr && *producer != PipelineSpan::Role::kProbe) {
          return Status::Unsupported(
              "gather stage must consume probe partials");
        }
        break;
      case PipelineSpan::Role::kBuild:
        return Status::Internal("build span on the fact chain");
    }
    (*out)[i] = compiler->CompileSpan(spec_.fact_stages[i].span, upstream);
  }
  return Status::OK();
}

Status GraphBuilder::Run(QueryCompiler* compiler, QueryResult* result) {
  const plan::HetPlan& plan = *plan_;
  if (spec_.fact_stages.empty()) {
    return Status::Internal("lowered graph has no fact stages (Analyze not run?)");
  }

  // The session anchors this query on the shared virtual timeline: its epoch
  // offsets every reservation on contended resources (PCIe links, GPU
  // streams), its id namespaces the hash tables in the System-shared registry.
  const QuerySession session =
      session_ != nullptr
          ? *session_
          : QuerySession{system_->NextQueryId(), system_->VirtualHorizon()};
  HtRegistry& hts = system_->hts();
  // The namespace only lives for the run; release it on every exit path.
  struct HtNamespaceGuard {
    HtRegistry* hts;
    uint64_t query;
    ~HtNamespaceGuard() { hts->DropQuery(query); }
  } ht_guard{&hts, session.query_id};

  ResultSink sink;
  const sim::VTime init_clock = spec_.init_latency;
  const uint64_t block_bytes = system_->blocks().options().block_bytes;
  const size_t channel_capacity = static_cast<size_t>(spec_.channel_capacity);

  auto session_edge_options = [&](const StageSpec& stage) {
    Edge::Options options = stage.in.options;
    options.epoch = session.epoch;
    options.control = session.control;
    return options;
  };

  auto make_config = [&](const StageSpec& stage) {
    auto cfg = std::make_unique<StageConfig>();
    switch (stage.span.role) {
      case PipelineSpan::Role::kBuild:
        cfg->role = StageConfig::Role::kBuild;
        cfg->build_join_id = stage.span.join_id;
        cfg->build_capacity = compiler->JoinHtCapacity(stage.span.join_id);
        cfg->build_payload_width = compiler->JoinPayloadWidth(stage.span.join_id);
        break;
      case PipelineSpan::Role::kFilterStage:
        cfg->role = StageConfig::Role::kFilterStage;
        break;
      case PipelineSpan::Role::kProbe:
        cfg->role = StageConfig::Role::kProbe;
        break;
      case PipelineSpan::Role::kGather:
        cfg->role = StageConfig::Role::kGather;
        cfg->result = &sink;
        break;
    }
    cfg->query_id = session.query_id;
    cfg->hts = &hts;
    cfg->programs = &system_->program_cache();
    cfg->block_bytes = block_bytes;
    cfg->allow_uva = stage.in.uva;
    return cfg;
  };

  // Lifts the first per-instance runtime error (e.g. division by zero) out of
  // a joined worker group.
  auto group_error = [](WorkerGroup& group) {
    for (int i = 0; i < group.size(); ++i) {
      if (!group.instance(i).error().ok()) return group.instance(i).error();
    }
    return Status::OK();
  };

  auto make_source = [&](const StageSpec& stage, const StageConfig& cfg,
                         Edge* edge, sim::VTime clock,
                         std::unique_ptr<SourceDriver>* out) -> Status {
    const plan::HetOpNode& seg = plan.node(stage.in.segmenter);
    const storage::Table* table = system_->catalog().Get(seg.table);
    if (table == nullptr || !table->placed()) {
      return Status::NotFound("source table missing or unplaced: " + seg.table);
    }
    std::vector<int> indices;
    indices.reserve(cfg.pipeline.input_cols.size());
    for (const auto& slot : cfg.pipeline.input_cols) {
      const int idx = table->FindColumn(slot.name);
      if (idx < 0) {
        // Hand-mutated plans can retarget a segmenter at the wrong table;
        // surface the mismatch instead of aborting inside the scan.
        return Status::InvalidArgument("segmenter table '" + seg.table +
                                       "' lacks pipeline input column '" +
                                       slot.name + "'");
      }
      indices.push_back(idx);
    }
    uint64_t block_rows = seg.block_rows > 0 ? seg.block_rows : 128 * 1024;
    // GPU-touching stages bound the granularity: a scan block must fit one
    // staging arena block when the mem-move copies it to device memory, and one
    // GPU emit bucket (block_bytes / 8-byte slots) when the stage packs output.
    // GPU-*resident* chunks bound it the same way whatever the instances are —
    // a scan block of device memory crosses to any non-local consumer through
    // a staging block too (peer or host-staged). Plans stamped coarser are
    // clamped here — never crashed at transfer time.
    const bool has_gpu_instance =
        std::any_of(stage.instances.begin(), stage.instances.end(),
                    [](sim::DeviceId dev) { return dev.is_gpu(); });
    const bool has_gpu_chunk = std::any_of(
        table->chunks().begin(), table->chunks().end(),
        [&](const storage::Table::Chunk& c) {
          return system_->topology().mem_node(c.node).is_gpu;
        });
    if (has_gpu_instance || has_gpu_chunk) {
      block_rows = std::min(block_rows, std::max<uint64_t>(1, block_bytes / 8));
    }
    *out = std::make_unique<SourceDriver>(system_, table, std::move(indices),
                                          block_rows, edge, clock,
                                          seg.per_block_cost);
    (*out)->set_control(session.control);
    return Status::OK();
  };

  // ------------------------------------------------------------------- builds
  //
  // Shared-build promotion (serving layer, off by default): before running the
  // build stages, each join's content key (table + mutation epoch + build
  // predicate + key/payload schema + capacity + unit set) is resolved against
  // the registry's single-flight shared entries. The winner builds normally
  // into its own namespace and publishes; losers attach the published replicas
  // into theirs and skip the build stage entirely, gating their probes on the
  // build's absolute completion epoch instead.
  struct SharedAcq {
    std::string key;
    std::string table;   ///< build table (stale-generation GC grouping)
    uint64_t epoch = 0;  ///< the table's mutation epoch the key embeds
    const StageSpec* stage = nullptr;
    SharedBuildLease lease;
    bool published = false;
  };
  std::vector<SharedAcq> acqs;
  std::vector<const StageSpec*> exec_builds;  // stages this query runs itself
  sim::VTime attach_ready = 0;  // max absolute completion of attached builds

  // Every unpublished build role is failed on exit, success or not: waiters
  // blocked on this query's in-flight shared builds must always wake, and the
  // first of them takes over the build (fault failover — a faulted builder
  // never poisons its attachers).
  struct SharedBuildGuard {
    HtRegistry* hts;
    std::vector<SharedAcq>* acqs;
    ~SharedBuildGuard() {
      for (const SharedAcq& acq : *acqs) {
        if (acq.lease.role == SharedBuildLease::Role::kBuild && !acq.published) {
          hts->FailShared(acq.key);
        }
      }
    }
  } shared_guard{&hts, &acqs};

  const bool share_builds = system_->reuse().shared_builds;
  auto shared_build_key = [&](const StageSpec& stage, SharedAcq* acq) {
    const plan::JoinSpec& j = compiler->spec().joins[stage.span.join_id];
    const storage::Table* table = system_->catalog().Get(j.build_table);
    acq->table = j.build_table;
    acq->epoch = table != nullptr ? table->mutation_epoch() : 0;
    std::ostringstream os;
    os << j.build_table << "@" << acq->epoch
       << ";bf=" << (j.build_filter != nullptr ? j.build_filter->ToString() : "-")
       << ";bk=" << j.build_key << ";pay=";
    for (size_t i = 0; i < j.payload.size(); ++i) {
      os << (i ? "," : "") << j.payload[i];
    }
    os << ";cap=" << compiler->JoinHtCapacity(stage.span.join_id)
       << ";w=" << compiler->JoinPayloadWidth(stage.span.join_id);
    // Exact unit-set match: Analyze() proved the build placement covers every
    // probe unit, so a replica set built for the same units covers them too.
    std::vector<int> units;
    for (const auto& dev : stage.instances) units.push_back(HtRegistry::UnitOf(dev));
    std::sort(units.begin(), units.end());
    os << ";units=";
    for (size_t i = 0; i < units.size(); ++i) os << (i ? "," : "") << units[i];
    acq->key = os.str();
  };

  // Pass 1 (plan order): compute every shareable stage's content key; stages
  // that cannot share — knob off, or invalid join stamps from hand-mutated
  // plans, which must surface through the execution loop below exactly as
  // without sharing — map to no acquisition.
  std::vector<int> stage_acq;  // per build stage: index into acqs, or -1
  for (const StageSpec& stage : spec_.build_stages) {
    if (!share_builds || stage.span.join_id < 0 ||
        stage.span.join_id >= static_cast<int>(compiler->spec().joins.size())) {
      stage_acq.push_back(-1);
      continue;
    }
    SharedAcq acq;
    acq.stage = &stage;
    shared_build_key(stage, &acq);
    stage_acq.push_back(static_cast<int>(acqs.size()));
    acqs.push_back(std::move(acq));
  }

  // Pass 2: acquire in canonical (sorted-key) order. AcquireShared blocks
  // while holding earlier build roles, so two queries whose key sets overlap
  // must claim them along one global total order — plan-order acquisition let
  // opposite-join-order queries hold-and-wait on each other forever. Ties
  // (one query computing the same key twice) keep plan order; the later
  // acquire self-conflicts into a private build.
  {
    std::vector<size_t> order(acqs.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) { return acqs[a].key < acqs[b].key; });
    for (size_t idx : order) {
      SharedAcq& acq = acqs[idx];
      acq.lease = hts.AcquireShared(acq.key, session.query_id, session.control,
                                    acq.table, acq.epoch);
      if (acq.lease.role == SharedBuildLease::Role::kCancelled) {
        // Build roles already won are failed over by shared_guard on return.
        return session.control != nullptr &&
                       session.control->deadline_hit.load(
                           std::memory_order_relaxed)
                   ? Status::DeadlineExceeded(
                         "query deadline expired while waiting on a shared "
                         "hash-table build")
                   : Status::Cancelled("query cancelled");
      }
    }
  }

  // Pass 3 (plan order): attach won replicas and collect the stages this
  // query executes itself — in the exact order the non-shared path uses.
  for (size_t si = 0; si < spec_.build_stages.size(); ++si) {
    const StageSpec& stage = spec_.build_stages[si];
    if (stage_acq[si] < 0) {
      exec_builds.push_back(&stage);
      continue;
    }
    const SharedAcq& acq = acqs[stage_acq[si]];
    switch (acq.lease.role) {
      case SharedBuildLease::Role::kCancelled:
        break;  // unreachable: pass 2 returned
      case SharedBuildLease::Role::kAttach:
        hts.AttachShared(acq.key, session.query_id, stage.span.join_id);
        attach_ready = sim::MaxT(attach_ready, acq.lease.ready_at);
        ++result->shared_attaches;
        break;
      case SharedBuildLease::Role::kBuild:
        ++result->shared_builds;
        exec_builds.push_back(&stage);
        break;
      case SharedBuildLease::Role::kPrivate:
        exec_builds.push_back(&stage);
        break;
    }
  }

  // The build phase's DRAM interval opens at the modeled build start; it is
  // closed (not discarded) once the probe watermark is known, so the interval
  // [init_clock, probe_start) stays on the timeline for later sessions.
  DramPhaseGuard build_dram(&system_->topology(), session, exec_builds,
                            init_clock);
  {
    std::vector<RuntimeStage> builds;
    for (const StageSpec* stage_ptr : exec_builds) {
      const StageSpec& stage = *stage_ptr;
      // Hand-mutated plans reach here through ExecutePlan: a stamped join id
      // the query does not have must surface as a Status, not a crash.
      if (stage.span.join_id < 0 ||
          stage.span.join_id >=
              static_cast<int>(compiler->spec().joins.size())) {
        return Status::InvalidArgument(
            "build span stamped with join id " +
            std::to_string(stage.span.join_id) + " but the query has " +
            std::to_string(compiler->spec().joins.size()) + " join(s)");
      }
      RuntimeStage rt;
      rt.cfg = make_config(stage);
      rt.cfg->pipeline = compiler->CompileSpan(stage.span, nullptr);
      rt.group = std::make_unique<WorkerGroup>(
          system_, stage.instances, FactoryFor(rt.cfg.get()), nullptr,
          channel_capacity, init_clock, session.epoch, session.query_id,
          session.control);
      rt.edge = std::make_unique<Edge>(system_, session_edge_options(stage),
                                       rt.group->instance_ptrs());
      Status st = make_source(stage, *rt.cfg, rt.edge.get(), init_clock,
                              &rt.source);
      if (!st.ok()) return st;
      builds.push_back(std::move(rt));
    }
    for (auto& g : builds) g.group->Start();
    for (auto& g : builds) g.source->Start();
    for (auto& g : builds) g.source->Join();
    for (auto& g : builds) g.group->Join();
    for (auto& g : builds) result->stats.Add(g.group->total_stats());
    for (auto& g : builds) {
      Status st = group_error(*g.group);
      if (!st.ok()) return st;
    }
    // Cooperative cancellation/deadline stops leave cleanly-joined build
    // groups with partial hash tables; those must never be published.
    const bool stopped =
        session.control != nullptr &&
        (session.control->cancelled.load(std::memory_order_relaxed) ||
         session.control->deadline_hit.load(std::memory_order_relaxed));
    if (!stopped) {
      for (SharedAcq& acq : acqs) {
        if (acq.lease.role != SharedBuildLease::Role::kBuild) continue;
        for (size_t i = 0; i < exec_builds.size(); ++i) {
          if (exec_builds[i] != acq.stage) continue;
          hts.PublishShared(acq.key, session.query_id, acq.stage->span.join_id,
                            session.epoch + builds[i].group->max_end());
          acq.published = true;
          break;
        }
      }
    }
  }

  // Probe-side clocks start at the hash-table completion watermark; attached
  // builds gate at their absolute completion epoch, translated into this
  // session's local time (clamped at zero for late arrivals — the artifact
  // already exists, so they pay nothing).
  const sim::VTime probe_start =
      sim::MaxT(sim::MaxT(init_clock, hts.build_done(session.query_id)),
                attach_ready - session.epoch);
  // Half-open intervals: the build phase ends exactly where the fact phase
  // starts, so this query's fact-stage blocks never overlap (and never get
  // charged for) its own closed build interval.
  build_dram.Close(probe_start);

  // -------------------------------------------------------------- fact stages
  std::vector<CompiledPipeline> pipelines;
  {
    Status st = CompileFactPipelines(compiler, &pipelines);
    if (!st.ok()) return st;
  }

  // Instantiation runs consumer→producer: each group needs its downstream edge,
  // each edge needs its consumer group's instances.
  std::vector<const StageSpec*> fact_stage_ptrs;
  for (const StageSpec& stage : spec_.fact_stages) fact_stage_ptrs.push_back(&stage);
  DramPhaseGuard dram(&system_->topology(), session, fact_stage_ptrs,
                      probe_start);
  std::vector<RuntimeStage> stages;
  Edge* downstream = nullptr;
  for (size_t i = 0; i < spec_.fact_stages.size(); ++i) {
    const StageSpec& stage = spec_.fact_stages[i];
    RuntimeStage rt;
    rt.cfg = make_config(stage);
    rt.cfg->pipeline = std::move(pipelines[i]);
    rt.cfg->out = downstream;
    if (stage.span.role == PipelineSpan::Role::kFilterStage &&
        downstream != nullptr) {
      rt.cfg->n_buckets = downstream->num_consumers();
    }
    rt.group = std::make_unique<WorkerGroup>(
        system_, stage.instances, FactoryFor(rt.cfg.get()), downstream,
        channel_capacity, probe_start, session.epoch, session.query_id,
        session.control);
    rt.edge = std::make_unique<Edge>(system_, session_edge_options(stage),
                                     rt.group->instance_ptrs());
    downstream = rt.edge.get();
    if (stage.in.segmenter != -1) {
      Status st = make_source(stage, *rt.cfg, rt.edge.get(), probe_start,
                              &rt.source);
      if (!st.ok()) return st;
    }
    stages.push_back(std::move(rt));
  }

  for (auto& rt : stages) rt.group->Start();
  for (auto& rt : stages) {
    if (rt.source != nullptr) rt.source->Start();
  }
  for (auto& rt : stages) {
    if (rt.source != nullptr) rt.source->Join();
  }
  for (auto it = stages.rbegin(); it != stages.rend(); ++it) it->group->Join();
  for (auto& rt : stages) {
    Status st = group_error(*rt.group);
    if (!st.ok()) {
      for (auto& rt2 : stages) result->stats.Add(rt2.group->total_stats());
      return st;
    }
  }

  result->rows = sink.TakeRows();
  result->modeled_seconds =
      sim::MaxT(sink.done_at(), stages.front().group->max_end());
  dram.Close(result->modeled_seconds);
  for (auto& rt : stages) result->stats.Add(rt.group->total_stats());
  return Status::OK();
}

}  // namespace hetex::core
