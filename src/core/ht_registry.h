#ifndef HETEX_CORE_HT_REGISTRY_H_
#define HETEX_CORE_HT_REGISTRY_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "core/query_control.h"
#include "jit/hash_table.h"
#include "sim/topology.h"
#include "sim/vtime.h"

namespace hetex::core {

/// Outcome of HtRegistry::AcquireShared — the caller's role for one join's
/// shared-build entry.
struct SharedBuildLease {
  enum class Role {
    kBuild,      ///< caller won the single-flight race: build, then publish/fail
    kAttach,     ///< replicas are ready: alias them, skip the build stage
    kPrivate,    ///< sharing not possible (self-conflict): build privately
    kCancelled,  ///< caller was cancelled while waiting for an in-flight build
  };
  Role role = Role::kPrivate;
  /// kAttach only: absolute virtual time the build completed at. Attachers
  /// arriving earlier wait until this epoch (charged to their modeled
  /// latency); attachers arriving later pay nothing — the artifact exists.
  sim::VTime ready_at = 0;
};

/// \brief Join hash tables shared between build and probe pipelines, keyed by
/// (query, join id, device unit). A "unit" is one CPU socket or one GPU — the
/// replica granularity of broadcast hash joins.
///
/// The registry is System-owned and shared by every in-flight query, so keys
/// carry the owning query id: two concurrent queries joining the same dimension
/// table build into disjoint namespaces instead of colliding on (join id, unit).
/// The per-query build-completion watermark (the virtual time probe pipelines
/// gate on) is namespaced the same way. `DropQuery` releases a finished query's
/// tables and watermark.
///
/// \par Shared-build promotion (cross-query reuse)
/// When the serving layer enables it, read-only replica sets are additionally
/// registered under a *content key* (table + mutation epoch + build predicate
/// + key/payload schema + capacity + unit set) with single-flight build
/// deduplication: the first query to AcquireShared a key becomes the builder
/// (Role::kBuild) and must later PublishShared or FailShared; concurrent
/// queries on the same key block until the build resolves and then attach
/// (Role::kAttach) — AttachShared aliases the shared replicas into their own
/// query namespace, so probe-side Get() is reuse-agnostic. A failed build
/// wakes the waiters and promotes exactly one of them to builder (fault
/// failover without poisoning the attachers). Tables are reference-counted:
/// DropQuery only releases a query's aliases, never a live shared replica.
class HtRegistry {
 public:
  /// Unit key of a device: sockets and GPUs occupy disjoint ranges.
  static int UnitOf(sim::DeviceId dev) {
    return dev.is_cpu() ? dev.index : 1000 + dev.index;
  }

  jit::JoinHashTable* Create(uint64_t query, int join_id, sim::DeviceId unit,
                             memory::MemoryManager* mm, uint64_t capacity,
                             int payload_width);
  jit::JoinHashTable* Get(uint64_t query, int join_id, sim::DeviceId unit) const;

  void NoteBuildDone(uint64_t query, sim::VTime t) {
    std::lock_guard<std::mutex> lock(mu_);
    sim::VTime& done = build_done_[query];
    done = sim::MaxT(done, t);
  }
  sim::VTime build_done(uint64_t query) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = build_done_.find(query);
    return it != build_done_.end() ? it->second : 0.0;
  }

  /// Releases every hash table (alias) and the watermark of a finished query.
  void DropQuery(uint64_t query);

  /// \name Shared-build promotion
  /// @{

  /// Resolves `query`'s role for the content key: builder (first claimant, or
  /// failover claimant after a failed build), attacher (replicas ready), or
  /// private (the same query already builds this key — a query cannot wait on
  /// itself). Blocks while another query's build is in flight; `control`
  /// (nullable) lets a cancelled or deadline-expired waiter bail out with
  /// Role::kCancelled.
  ///
  /// Deadlock discipline: a query acquiring several keys MUST acquire them in
  /// a canonical (sorted-key) order — the global total order makes
  /// hold-and-wait cycles between queries with overlapping key sets
  /// impossible. GraphBuilder sorts its acquisition batch accordingly.
  ///
  /// `table` + `mutation_epoch` (the source table the content key embeds)
  /// drive stale-generation GC: claiming a new key retires the table's
  /// non-building entries from older epochs, whose keys no future query can
  /// compute. Empty `table` (tests, opaque keys) opts out of the sweep.
  SharedBuildLease AcquireShared(const std::string& content_key, uint64_t query,
                                 const QueryControl* control,
                                 const std::string& table = "",
                                 uint64_t mutation_epoch = 0);

  /// Builder success: shares the replicas `query` built for `join_id` under
  /// the key (the builder's own namespace keeps its aliases) and wakes the
  /// waiters. `ready_at` is the absolute virtual completion of the build.
  void PublishShared(const std::string& content_key, uint64_t query,
                     int join_id, sim::VTime ready_at);

  /// Builder failure: marks the entry failed and wakes the waiters; the first
  /// to re-acquire is promoted to builder (counted as a failover).
  void FailShared(const std::string& content_key);

  /// Attacher: aliases the key's ready replicas into `query`'s namespace as
  /// `join_id`, so the query's probe pipelines Get() them like its own.
  /// Returns the number of replicas aliased.
  int AttachShared(const std::string& content_key, uint64_t query, int join_id);

  struct SharedStats {
    uint64_t builds = 0;     ///< single-flight builds won (incl. failovers)
    uint64_t attaches = 0;   ///< queries that attached instead of building
    uint64_t failovers = 0;  ///< builder promotions after a failed build
  };
  SharedStats shared_stats() const;
  int NumSharedEntries() const;
  /// @}

  /// Total bytes across all live tables, shared replicas counted once
  /// (admission diagnostics).
  uint64_t TotalHtBytes() const;
  /// Tables currently registered for `query` (tests/diagnostics).
  int NumTables(uint64_t query) const;

 private:
  using Key = std::tuple<uint64_t, int, int>;  // (query, join id, unit)

  struct SharedEntry {
    enum class State { kBuilding, kReady, kFailed };
    State state = State::kBuilding;
    uint64_t builder = 0;  ///< query currently holding the build role
    sim::VTime ready_at = 0;
    std::string table;   ///< source table the content key embeds (GC grouping)
    uint64_t epoch = 0;  ///< table mutation epoch the replicas were built at
    std::map<int, std::shared_ptr<jit::JoinHashTable>> replicas;  // unit -> ht
  };

  /// Erases `table`'s shared entries from mutation epochs other than `epoch`:
  /// content keys embed the epoch, so no future query can ever acquire them
  /// again — without the sweep a long-running server with mutation churn
  /// grows dead replica sets without bound. In-flight (kBuilding) entries are
  /// skipped; they retire on the next same-table sweep after they resolve.
  /// Caller holds mu_.
  void EvictStaleLocked(const std::string& table, uint64_t epoch);

  mutable std::mutex mu_;
  std::condition_variable shared_cv_;
  std::map<Key, std::shared_ptr<jit::JoinHashTable>> tables_;
  std::map<uint64_t, sim::VTime> build_done_;
  std::map<std::string, SharedEntry> shared_;
  SharedStats shared_stats_;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_HT_REGISTRY_H_
