#ifndef HETEX_CORE_HT_REGISTRY_H_
#define HETEX_CORE_HT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "jit/hash_table.h"
#include "sim/topology.h"
#include "sim/vtime.h"

namespace hetex::core {

/// \brief Join hash tables shared between build and probe pipelines, keyed by
/// (query, join id, device unit). A "unit" is one CPU socket or one GPU — the
/// replica granularity of broadcast hash joins.
///
/// The registry is System-owned and shared by every in-flight query, so keys
/// carry the owning query id: two concurrent queries joining the same dimension
/// table build into disjoint namespaces instead of colliding on (join id, unit).
/// The per-query build-completion watermark (the virtual time probe pipelines
/// gate on) is namespaced the same way. `DropQuery` releases a finished query's
/// tables and watermark.
class HtRegistry {
 public:
  /// Unit key of a device: sockets and GPUs occupy disjoint ranges.
  static int UnitOf(sim::DeviceId dev) {
    return dev.is_cpu() ? dev.index : 1000 + dev.index;
  }

  jit::JoinHashTable* Create(uint64_t query, int join_id, sim::DeviceId unit,
                             memory::MemoryManager* mm, uint64_t capacity,
                             int payload_width);
  jit::JoinHashTable* Get(uint64_t query, int join_id, sim::DeviceId unit) const;

  void NoteBuildDone(uint64_t query, sim::VTime t) {
    std::lock_guard<std::mutex> lock(mu_);
    sim::VTime& done = build_done_[query];
    done = sim::MaxT(done, t);
  }
  sim::VTime build_done(uint64_t query) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = build_done_.find(query);
    return it != build_done_.end() ? it->second : 0.0;
  }

  /// Releases every hash table and the watermark of a finished query.
  void DropQuery(uint64_t query);

  /// Total bytes across all in-flight queries' tables (admission diagnostics).
  uint64_t TotalHtBytes() const;
  /// Tables currently registered for `query` (tests/diagnostics).
  int NumTables(uint64_t query) const;

 private:
  using Key = std::tuple<uint64_t, int, int>;  // (query, join id, unit)

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<jit::JoinHashTable>> tables_;
  std::map<uint64_t, sim::VTime> build_done_;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_HT_REGISTRY_H_
