#include "core/result_cache.h"

#include <cstdlib>

namespace hetex::core {

ReuseOptions ReuseOptions::FromEnv() {
  ReuseOptions reuse;
  if (const char* env = std::getenv("HETEX_SHARED_BUILDS")) {
    reuse.shared_builds = std::atoi(env) != 0;
  }
  if (const char* env = std::getenv("HETEX_RESULT_CACHE_MB")) {
    const long mb = std::atol(env);
    if (mb > 0) {
      reuse.result_cache = true;
      reuse.result_cache_bytes = static_cast<uint64_t>(mb) << 20;
    }
  }
  return reuse;
}

uint64_t ResultCache::RowBytes(const std::vector<std::vector<int64_t>>& rows) {
  uint64_t bytes = sizeof(Entry);  // floor so empty results still have weight
  for (const auto& row : rows) bytes += row.size() * sizeof(int64_t);
  return bytes;
}

bool ResultCache::Lookup(const std::string& key,
                         std::vector<std::vector<int64_t>>* rows) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  *rows = it->second.rows;
  ++stats_.hits;
  return true;
}

void ResultCache::Insert(const std::string& key,
                         const std::vector<std::vector<int64_t>>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  const uint64_t entry_bytes = RowBytes(rows);
  if (entry_bytes > max_bytes_) return;  // never evict everything for one entry
  while (bytes_ + entry_bytes > max_bytes_ && !lru_.empty()) {
    auto victim = entries_.find(lru_.back());
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  Entry entry;
  entry.rows = rows;
  entry.bytes = entry_bytes;
  entry.lru_it = lru_.begin();
  bytes_ += entry_bytes;
  entries_.emplace(key, std::move(entry));
  ++stats_.insertions;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(entries_.size());
}

}  // namespace hetex::core
