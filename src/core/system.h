#ifndef HETEX_CORE_SYSTEM_H_
#define HETEX_CORE_SYSTEM_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/ht_registry.h"
#include "core/program_cache.h"
#include "core/result_cache.h"
#include "jit/device_provider.h"
#include "jit/kernel_cache.h"
#include "memory/block_manager.h"
#include "memory/memory_manager.h"
#include "sim/dma_engine.h"
#include "sim/fault.h"
#include "sim/gpu_device.h"
#include "sim/topology.h"
#include "storage/table.h"

namespace hetex::core {

/// \brief The running server: simulated topology, devices, transfer engines and
/// per-node memory infrastructure, plus the table catalog.
///
/// One System hosts many queries; block arenas and GPU worker pools are created
/// once at startup (the paper's "at system initialization time, the block managers
/// pre-allocate memory arenas").
class System {
 public:
  struct Options {
    sim::Topology::Options topology;
    memory::BlockRegistry::Options blocks;
    /// JIT tier selection for every provider this system creates. kAuto picks
    /// the best tier a program's shape allows (native when codegen is enabled,
    /// else vectorized); parity suites pin kForceInterpreter /
    /// kForceVectorized to diff the tiers.
    jit::TierPolicy tier_policy = jit::TierPolicy::kAuto;
    /// Tier-2 codegen configuration. Defaults to the environment knobs
    /// (HETEX_KERNEL_DIR / HETEX_COMPILER_CMD / HETEX_TIER2); codegen is
    /// off unless enabled there or here.
    jit::CodegenOptions codegen = jit::CodegenOptions::FromEnv();
    /// Fault plane. Defaults to the HETEX_FAULT_* environment knobs; disabled
    /// unless enabled there or here, and a disabled injector is never
    /// consulted (zero behavior change on the fault-free path).
    sim::FaultOptions faults = sim::FaultOptions::FromEnv();
    /// Serving-layer cross-query reuse (shared hash-table builds + result
    /// cache). Defaults to the HETEX_SHARED_BUILDS / HETEX_RESULT_CACHE_MB
    /// environment knobs; everything off unless enabled there or here — a
    /// System with reuse off behaves bit-identically to one without the
    /// serving layer (test-pinned).
    ReuseOptions reuse = ReuseOptions::FromEnv();
  };

  System();  // default Options
  explicit System(Options options);

  sim::Topology& topology() { return topology_; }
  const sim::CostModel& cost_model() const { return topology_.cost_model(); }
  sim::DmaEngine& dma() { return *dma_; }
  sim::GpuDevice& gpu(int i) { return *gpus_.at(i); }
  int num_gpus() const { return static_cast<int>(gpus_.size()); }
  memory::MemoryRegistry& memory() { return memory_; }
  memory::BlockRegistry& blocks() { return blocks_; }
  storage::Catalog& catalog() { return catalog_; }

  /// Per-device cache of finalized pipeline programs. Lives on the system so
  /// repeated query runs — and concurrent sessions — reuse finalized spans
  /// (see ProgramCache).
  ProgramCache& program_cache() { return program_cache_; }
  jit::TierPolicy tier_policy() const { return tier_policy_; }

  /// Tier-2 kernel cache (null when codegen is disabled). Owns the compile
  /// pool and the persistent on-disk .cc/.so store shared by all providers.
  jit::KernelCache* kernel_cache() { return kernel_cache_.get(); }

  /// Join hash tables of every in-flight query, namespaced by query id
  /// (see HtRegistry).
  HtRegistry& hts() { return hts_; }

  /// Serving-layer reuse knobs this system was built with.
  const ReuseOptions& reuse() const { return reuse_; }
  /// Cross-query result cache (null when Options::reuse.result_cache is off).
  ResultCache* result_cache() { return result_cache_.get(); }

  /// The fault plane + device-health registry (see sim::FaultInjector).
  /// Always present; disabled by default.
  sim::FaultInjector& fault() { return fault_; }
  const sim::FaultInjector& fault() const { return fault_; }

  /// GPUs the health registry considers usable at absolute virtual time `t`,
  /// minus `exclude` (the scheduler's conservative exclusion set after a
  /// kDeviceLost failure). All GPUs when the injector is disabled.
  std::vector<int> AvailableGpusAt(sim::VTime t,
                                   const std::vector<int>& exclude = {}) const;

  /// Creates a provider for a compute device (see jit::DeviceProvider).
  std::unique_ptr<jit::DeviceProvider> MakeProvider(sim::DeviceId device);

  /// Absolute virtual time by which every shared resource (PCIe links, GPU
  /// kernel streams, socket DRAM timelines) is idle. A query session anchored
  /// at this horizon runs on effectively fresh resources — the session-scoped
  /// replacement for the old rewind-everything ResetVirtualTime(), safe while
  /// other queries are in flight (their reservations simply stay behind the
  /// horizon).
  sim::VTime VirtualHorizon() const {
    sim::VTime h = sim::MaxT(topology_.LinkHorizon(), topology_.DramHorizon());
    for (const auto& gpu : gpus_) h = sim::MaxT(h, gpu->stream_free_at());
    return h;
  }

  /// Allocates a system-unique query id (session namespacing for hash tables
  /// and diagnostics).
  uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Host memory nodes (all sockets), the default table placement.
  std::vector<sim::MemNodeId> HostNodes() const;
  /// GPU memory nodes (for data_on_gpu placements).
  std::vector<sim::MemNodeId> GpuNodes() const;

 private:
  sim::Topology topology_;
  sim::FaultInjector fault_;  ///< before blocks_: registered into it at construction
  memory::MemoryRegistry memory_;
  memory::BlockRegistry blocks_;
  std::unique_ptr<sim::DmaEngine> dma_;
  std::vector<std::unique_ptr<sim::GpuDevice>> gpus_;
  storage::Catalog catalog_;
  ProgramCache program_cache_;
  std::unique_ptr<jit::KernelCache> kernel_cache_;
  HtRegistry hts_;
  ReuseOptions reuse_;
  std::unique_ptr<ResultCache> result_cache_;
  jit::TierPolicy tier_policy_ = jit::TierPolicy::kAuto;
  std::atomic<uint64_t> next_query_id_{1};
};

}  // namespace hetex::core

#endif  // HETEX_CORE_SYSTEM_H_
