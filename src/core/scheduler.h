#ifndef HETEX_CORE_SCHEDULER_H_
#define HETEX_CORE_SCHEDULER_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "core/executor.h"
#include "plan/query_spec.h"

namespace hetex::core {

/// Per-query submission options.
struct SubmitOptions {
  /// Virtual arrival time relative to the workload base (the virtual time at
  /// which the server last went from idle to busy). Offset 0 models a batch
  /// arrival; staggered offsets model an offered-load trace.
  sim::VTime arrival_offset = 0;

  /// Pin the exact plan shape (no optimizer search). Unset = cost-based
  /// optimization, with the current interconnect backlog as a load signal.
  std::optional<plan::ExecPolicy> policy;

  /// Admission-control staging-block budget override (0 = scheduler default).
  uint64_t memory_budget_blocks = 0;

  /// Virtual-time budget measured from the query's arrival, including the
  /// admission queue wait: a query whose `queue_wait + modeled_seconds` would
  /// exceed it terminates with kDeadlineExceeded (cooperatively — workers
  /// drain, resources release, no partial rows are reported). Negative = none.
  sim::VTime deadline = -1;
};

/// \brief Concurrent query scheduler: N queries in flight against one System,
/// each on its own session-scoped virtual timeline while PCIe links, DMA
/// engines and GPU kernel streams charge contention across all of them.
///
/// Submit() enqueues a query and returns a handle; admission control caps the
/// number of concurrently running queries and reserves each admitted query a
/// staging-block budget against the BlockRegistry's host arenas (a query whose
/// budget does not fit waits, FIFO, for running queries to release theirs).
/// On admission the query receives a QuerySession: a unique id (namespacing
/// its hash tables in the shared HtRegistry) and an absolute epoch — the
/// workload base plus the query's arrival offset. The workload base advances
/// to the resource horizon whenever the server goes idle, so back-to-back
/// serial submissions reproduce solo latencies exactly while overlapping
/// submissions queue behind each other on the shared interconnects.
///
/// Wait() blocks until the query finished and returns its QueryResult; each
/// handle is waited on by at most one caller. Unwaited queries are drained by
/// the destructor.
class QueryScheduler {
 public:
  struct Options {
    /// Maximum queries running concurrently (admission cap).
    int max_concurrent = 4;
    /// Default per-query staging-block budget charged against the host arenas
    /// at admission. 0 = total host arena blocks / max_concurrent.
    uint64_t memory_budget_blocks = 0;
    /// Degraded-mode recovery: attempts re-executed after a transient fault
    /// (kUnavailable / kResourceExhausted) or a device loss before the fault
    /// becomes the query's terminal status.
    int max_retries = 3;
    /// Virtual-time backoff before retry attempt k: base * 2^(k-1), added to
    /// the attempt's session epoch (and to the reported modeled latency).
    sim::VTime retry_backoff_base = 1e-3;
    /// Backlog-steered admission (default): a dequeued query plans at its
    /// attempt epoch, so the coster sees the live PCIe-link backlog and DRAM
    /// worker pressure of the queries already running and re-routes to the
    /// less-loaded device set. false = plan against the idle resource horizon
    /// (load-blind ablation; open_loop_bench A/Bs the difference).
    bool steer_admission = true;
  };

  explicit QueryScheduler(System* system) : QueryScheduler(system, Options()) {}
  QueryScheduler(System* system, Options options);
  ~QueryScheduler();

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  QueryHandle Submit(const plan::QuerySpec& spec, SubmitOptions opts = {});
  QueryResult Wait(QueryHandle handle);

  /// Requests cancellation. A still-queued query terminates immediately with
  /// kCancelled (its admission slot and budget are never consumed); a running
  /// query stops cooperatively — segmenters quit producing, edges drop
  /// messages, blocked staging acquisitions wake — and reports kCancelled
  /// through Wait(). A finished query is left untouched. Returns
  /// InvalidArgument for unknown handles, OK otherwise (idempotent).
  Status Cancel(QueryHandle handle);

  /// Queries currently executing / waiting for admission.
  int in_flight() const;
  int queued() const;

  /// Total host staging blocks admission budgets are charged against.
  uint64_t total_budget_blocks() const { return total_blocks_; }
  /// Default per-query budget (blocks) applied when SubmitOptions leaves 0.
  uint64_t default_budget_blocks() const { return default_budget_; }

  const Options& options() const { return options_; }

 private:
  struct Task {
    uint64_t id = 0;
    plan::QuerySpec spec;
    SubmitOptions opts;
    uint64_t budget = 0;
    sim::VTime queue_wait = 0;  ///< virtual admission delay (set at admission)
    QueryControl control;       ///< cancellation/deadline state (stable address)
    QueryResult result;
    bool done = false;
    bool claimed = false;  ///< a Wait() call owns this handle
    std::thread worker;
  };

  /// Starts every waiting query the caps allow, FIFO. Caller holds mu_.
  /// `slot_freed_at` is the absolute virtual completion that freed capacity
  /// (admissions it triggers start no earlier); < 0 for submit-time admission
  /// into already-free capacity, which starts at the query's own arrival.
  void AdmitLocked(sim::VTime slot_freed_at);
  void RunTask(Task* task, QuerySession session);

  System* system_;
  Options options_;
  uint64_t total_blocks_ = 0;
  uint64_t default_budget_ = 0;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  std::deque<Task*> waiting_;
  std::map<uint64_t, std::unique_ptr<Task>> tasks_;
  int active_ = 0;
  uint64_t reserved_blocks_ = 0;
  /// Epoch base of the current busy period (absolute virtual time).
  sim::VTime workload_base_ = 0;
  /// Latest absolute completion seen — the server's virtual "now". Keeps
  /// serial submissions strictly ordered even for queries that never touch a
  /// shared interconnect (whose completion the resource horizon cannot see).
  sim::VTime clock_floor_ = 0;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_SCHEDULER_H_
