#include "core/scheduler.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace hetex::core {

QueryScheduler::QueryScheduler(System* system, Options options)
    : system_(system), options_(options) {
  HETEX_CHECK(options_.max_concurrent > 0) << "admission cap must be positive";
  const uint64_t per_node = system_->blocks().options().host_arena_blocks;
  total_blocks_ = per_node * system_->HostNodes().size();
  default_budget_ = options_.memory_budget_blocks > 0
                        ? options_.memory_budget_blocks
                        : std::max<uint64_t>(
                              1, total_blocks_ /
                                     static_cast<uint64_t>(options_.max_concurrent));
}

QueryScheduler::~QueryScheduler() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    if (!waiting_.empty()) return false;
    for (const auto& [id, task] : tasks_) {
      if (!task->done) return false;
    }
    return true;
  });
  std::vector<std::thread> workers;
  for (auto& [id, task] : tasks_) {
    if (task->worker.joinable()) workers.push_back(std::move(task->worker));
  }
  tasks_.clear();
  lock.unlock();
  for (auto& w : workers) w.join();
}

QueryHandle QueryScheduler::Submit(const plan::QuerySpec& spec,
                                   SubmitOptions opts) {
  auto task = std::make_unique<Task>();
  task->id = system_->NextQueryId();
  task->spec = spec;
  task->opts = std::move(opts);
  task->budget = task->opts.memory_budget_blocks > 0
                     ? task->opts.memory_budget_blocks
                     : default_budget_;
  QueryHandle handle{task->id};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_ == 0 && waiting_.empty()) {
      // Idle server, empty queue: a new busy period begins. Anchor it at the
      // point every shared resource (and every past completion) is behind —
      // queries of this period see a fresh server, the session-scoped
      // analogue of the old global reset. Completion-triggered admissions
      // stay inside the running period so their queue wait is measured.
      workload_base_ = sim::MaxT(system_->VirtualHorizon(), clock_floor_);
    }
    waiting_.push_back(task.get());
    tasks_[task->id] = std::move(task);
    AdmitLocked(/*slot_freed_at=*/-1.0);
  }
  return handle;
}

void QueryScheduler::AdmitLocked(sim::VTime slot_freed_at) {
  while (!waiting_.empty() && active_ < options_.max_concurrent) {
    Task* task = waiting_.front();
    // Memory admission: the query's staging-block budget must fit in what the
    // running set left free. The head of the queue always fits on an idle
    // server (budgets larger than the arenas must not deadlock the queue).
    if (active_ > 0 && reserved_blocks_ + task->budget > total_blocks_) break;
    waiting_.pop_front();
    ++active_;
    reserved_blocks_ += task->budget;
    // The session starts at its arrival — or, when it had to queue for
    // capacity, at the virtual completion of the query that freed its slot.
    // The difference is the admission queue wait the client observes.
    const sim::VTime arrival = workload_base_ + task->opts.arrival_offset;
    const sim::VTime start = sim::MaxT(arrival, slot_freed_at);
    task->queue_wait = start - arrival;
    const QuerySession session{task->id, start};
    task->worker = std::thread([this, task, session] { RunTask(task, session); });
  }
}

void QueryScheduler::RunTask(Task* task, QuerySession session) {
  QueryExecutor executor(system_);
  QueryResult result;
  if (task->opts.policy.has_value()) {
    result = executor.ExecutePlan(
        task->spec,
        plan::BuildHetPlan(task->spec, *task->opts.policy, system_->topology()),
        session);
  } else {
    plan::OptimizeResult optimized;
    const Status st = executor.OptimizeAt(task->spec, plan::ExecPolicy{},
                                          session.epoch, &optimized);
    if (!st.ok()) {
      result.status = st;
    } else {
      result = executor.ExecutePlan(task->spec, optimized.best().plan, session);
    }
  }
  result.query_id = session.query_id;
  result.arrival_offset = task->opts.arrival_offset;
  result.session_epoch = session.epoch;
  result.queue_wait = task->queue_wait;

  {
    std::lock_guard<std::mutex> lock(mu_);
    const sim::VTime freed_at = session.epoch + result.modeled_seconds;
    clock_floor_ = sim::MaxT(clock_floor_, freed_at);
    task->result = std::move(result);
    task->done = true;
    --active_;
    reserved_blocks_ -= task->budget;
    AdmitLocked(freed_at);
  }
  // After the notify the waiter may free the task; touch nothing of it here.
  done_cv_.notify_all();
}

QueryResult QueryScheduler::Wait(QueryHandle handle) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = tasks_.find(handle.id);
  if (it == tasks_.end()) {
    QueryResult missing;
    missing.status = Status::InvalidArgument(
        "unknown or already-waited query handle " + std::to_string(handle.id));
    return missing;
  }
  Task* task = it->second.get();
  if (task->claimed) {
    QueryResult taken;
    taken.status = Status::InvalidArgument(
        "query handle " + std::to_string(handle.id) +
        " is already being waited on by another caller");
    return taken;
  }
  task->claimed = true;
  done_cv_.wait(lock, [&] { return task->done; });
  QueryResult result = std::move(task->result);
  std::thread worker = std::move(task->worker);
  tasks_.erase(it);
  lock.unlock();
  if (worker.joinable()) worker.join();
  return result;
}

int QueryScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int QueryScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(waiting_.size());
}

}  // namespace hetex::core
