#include "core/scheduler.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"

namespace hetex::core {

namespace {

/// Result-cache key: the canonical spec serialization plus the mutation epoch
/// of every table the query reads — a table mutation changes the key, so the
/// stale entry is never hit again and ages out of the LRU.
std::string ResultCacheKey(System* system, const plan::QuerySpec& spec) {
  std::string key = plan::CanonicalSpecKey(spec);
  auto append_epoch = [&](const std::string& table) {
    const storage::Table* t = system->catalog().Get(table);
    key += "|" + table + "@" +
           std::to_string(t != nullptr ? t->mutation_epoch() : 0);
  };
  append_epoch(spec.fact_table);
  for (const auto& j : spec.joins) append_epoch(j.build_table);
  return key;
}

}  // namespace

QueryScheduler::QueryScheduler(System* system, Options options)
    : system_(system), options_(options) {
  HETEX_CHECK(options_.max_concurrent > 0) << "admission cap must be positive";
  const uint64_t per_node = system_->blocks().options().host_arena_blocks;
  total_blocks_ = per_node * system_->HostNodes().size();
  default_budget_ = options_.memory_budget_blocks > 0
                        ? options_.memory_budget_blocks
                        : std::max<uint64_t>(
                              1, total_blocks_ /
                                     static_cast<uint64_t>(options_.max_concurrent));
}

QueryScheduler::~QueryScheduler() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    if (!waiting_.empty()) return false;
    for (const auto& [id, task] : tasks_) {
      if (!task->done) return false;
    }
    return true;
  });
  std::vector<std::thread> workers;
  for (auto& [id, task] : tasks_) {
    if (task->worker.joinable()) workers.push_back(std::move(task->worker));
  }
  tasks_.clear();
  lock.unlock();
  for (auto& w : workers) w.join();
}

QueryHandle QueryScheduler::Submit(const plan::QuerySpec& spec,
                                   SubmitOptions opts) {
  auto task = std::make_unique<Task>();
  task->id = system_->NextQueryId();
  task->spec = spec;
  task->opts = std::move(opts);
  task->budget = task->opts.memory_budget_blocks > 0
                     ? task->opts.memory_budget_blocks
                     : default_budget_;
  QueryHandle handle{task->id};

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_ == 0 && waiting_.empty()) {
      // Idle server, empty queue: a new busy period begins. Anchor it at the
      // point every shared resource (and every past completion) is behind —
      // queries of this period see a fresh server, the session-scoped
      // analogue of the old global reset. Completion-triggered admissions
      // stay inside the running period so their queue wait is measured.
      workload_base_ = sim::MaxT(system_->VirtualHorizon(), clock_floor_);
    }
    waiting_.push_back(task.get());
    tasks_[task->id] = std::move(task);
    AdmitLocked(/*slot_freed_at=*/-1.0);
  }
  return handle;
}

void QueryScheduler::AdmitLocked(sim::VTime slot_freed_at) {
  while (!waiting_.empty() && active_ < options_.max_concurrent) {
    Task* task = waiting_.front();
    // Memory admission: the query's staging-block budget must fit in what the
    // running set left free. The head of the queue always fits on an idle
    // server (budgets larger than the arenas must not deadlock the queue).
    if (active_ > 0 && reserved_blocks_ + task->budget > total_blocks_) break;
    waiting_.pop_front();
    ++active_;
    reserved_blocks_ += task->budget;
    // The session starts at its arrival — or, when it had to queue for
    // capacity, at the virtual completion of the query that freed its slot.
    // The difference is the admission queue wait the client observes.
    const sim::VTime arrival = workload_base_ + task->opts.arrival_offset;
    const sim::VTime start = sim::MaxT(arrival, slot_freed_at);
    task->queue_wait = start - arrival;
    if (task->opts.deadline >= 0) {
      // The deadline is a budget from arrival; the session-local execution
      // bound is whatever the admission queue left of it.
      task->control.deadline = task->opts.deadline - task->queue_wait;
    }
    const QuerySession session{task->id, start, &task->control};
    task->worker = std::thread([this, task, session] { RunTask(task, session); });
  }
}

void QueryScheduler::RunTask(Task* task, QuerySession session) {
  QueryExecutor executor(system_);
  QueryResult result;
  const sim::VTime deadline = task->opts.deadline;

  // Degraded-mode recovery loop. Transient faults (kUnavailable /
  // kResourceExhausted) retry the whole query with exponential virtual-time
  // backoff; a device loss re-plans on the surviving device set (optimizer
  // path only — a pinned policy has no freedom to re-place). Cancellation and
  // deadlines are terminal. Every attempt runs under the same query id and
  // control block; only the attempt epoch shifts by the accumulated backoff.
  int retries = 0;
  bool replanned = false;
  Status first_fault = Status::OK();
  std::vector<int> exclude_gpus;
  sim::VTime backoff = 0;
  // Serving-layer result-cache key of the latest attempt, recomputed at each
  // attempt's dequeue point (empty: cache disabled). It embeds the mutation
  // epoch of every table read *as of the lookup*, so a hit and a miss always
  // read the same table version — a key snapshotted at submit time could hit
  // an entry computed from pre-mutation data while a miss would execute
  // against post-mutation data. Pinned-policy submissions are cacheable too:
  // every policy computes identical rows.
  std::string cache_key;

  for (;;) {
    if (task->control.cancelled.load(std::memory_order_relaxed)) {
      result = QueryResult{};
      result.status = Status::Cancelled("query cancelled");
      break;
    }
    if (deadline >= 0 && task->queue_wait + backoff >= deadline) {
      result = QueryResult{};
      result.status = Status::DeadlineExceeded(
          "virtual-time deadline expired before the query could " +
          std::string(retries > 0 || replanned ? "be retried" : "start"));
      break;
    }
    QuerySession attempt = session;
    attempt.epoch = session.epoch + backoff;
    task->control.deadline =
        deadline >= 0 ? deadline - task->queue_wait - backoff : -1;
    task->control.deadline_hit.store(false, std::memory_order_relaxed);

    // Result-cache hit: answer from the cached rows instead of executing.
    // The hit pays the admission queue wait (it held a slot like any query)
    // plus the lookup cost and the row copy at core streaming bandwidth —
    // the slot frees almost immediately, which is where the serving-layer
    // throughput win comes from. The generic terminal checks below still
    // apply (a hit can land past the deadline).
    bool served_from_cache = false;
    if (ResultCache* cache = system_->result_cache()) {
      cache_key = ResultCacheKey(system_, task->spec);
      {
        std::vector<std::vector<int64_t>> rows;
        if (cache->Lookup(cache_key, &rows)) {
          result = QueryResult{};
          uint64_t row_bytes = 0;
          for (const auto& row : rows) {
            row_bytes += row.size() * sizeof(int64_t);
          }
          const sim::CostModel& cm = system_->cost_model();
          result.status = Status::OK();
          result.rows = std::move(rows);
          result.cache_hit = true;
          result.modeled_seconds =
              cm.result_cache_lookup_latency +
              static_cast<double>(row_bytes) / cm.cpu_core_bw;
          served_from_cache = true;
        }
      }
    }

    if (served_from_cache) {
      // no execution
    } else if (task->opts.policy.has_value()) {
      // A pinned policy naming devices the fabric does not have is a named
      // terminal error, not a lowering abort (the no-GPU topology path).
      if (Status st = plan::ValidatePolicyForTopology(*task->opts.policy,
                                                      system_->topology());
          !st.ok()) {
        result = QueryResult{};
        result.status = std::move(st);
        break;
      }
      result = executor.ExecutePlan(
          task->spec,
          plan::BuildHetPlan(task->spec, *task->opts.policy,
                             system_->topology()),
          attempt);
    } else {
      // Backlog-steered admission (default): plan at the attempt epoch so the
      // coster sees the live interconnect backlog of the running set. The
      // ablation plans against the idle horizon — load-blind routing.
      const sim::VTime plan_epoch = options_.steer_admission
                                        ? attempt.epoch
                                        : system_->VirtualHorizon();
      plan::OptimizeResult optimized;
      const Status st = executor.OptimizeAt(
          task->spec, plan::ExecPolicy{}, plan_epoch, &optimized,
          exclude_gpus.empty() ? nullptr : &exclude_gpus);
      if (!st.ok()) {
        result = QueryResult{};
        result.status = st;
        break;
      }
      result = executor.ExecutePlan(task->spec, optimized.best().plan, attempt);
    }
    result.modeled_seconds += backoff;  // the client waited out the backoff too

    // Authoritative terminal stamp: cooperative cancellation/deadline stops
    // may leave a cleanly-joined graph with partial rows and an OK status —
    // the scheduler, not the graph, owns the terminal state.
    if (task->control.cancelled.load(std::memory_order_relaxed)) {
      const Status st = Status::Cancelled("query cancelled");
      result = QueryResult{};
      result.status = st;
      break;
    }
    if (deadline >= 0 &&
        (task->control.deadline_hit.load(std::memory_order_relaxed) ||
         (result.status.ok() &&
          task->queue_wait + result.modeled_seconds > deadline))) {
      const sim::VTime late = task->queue_wait + result.modeled_seconds;
      result = QueryResult{};
      result.status = Status::DeadlineExceeded(
          "query finished at virtual time " + std::to_string(late) +
          " past its deadline of " + std::to_string(deadline));
      break;
    }
    if (result.status.ok()) break;
    const StatusCode code = result.status.code();
    if (code == StatusCode::kCancelled ||
        code == StatusCode::kDeadlineExceeded) {
      break;
    }
    if (first_fault.ok()) first_fault = result.status;

    if (code == StatusCode::kDeviceLost && !task->opts.policy.has_value()) {
      // Re-plan on the surviving device set. Conservative exclusion: every
      // GPU whose loss window is active at — or opens after — this attempt's
      // epoch is out (a device that dies mid-query would just fail us again).
      const size_t before = exclude_gpus.size();
      for (int g : system_->fault().GpusLostOnOrAfter(attempt.epoch)) {
        if (std::find(exclude_gpus.begin(), exclude_gpus.end(), g) ==
            exclude_gpus.end()) {
          exclude_gpus.push_back(g);
        }
      }
      if (exclude_gpus.size() == before || retries >= options_.max_retries) {
        break;  // nothing new to exclude (or out of attempts): fault is terminal
      }
      ++retries;
      replanned = true;
      continue;
    }
    if (IsTransientFault(code) && retries < options_.max_retries) {
      ++retries;
      backoff += options_.retry_backoff_base *
                 static_cast<sim::VTime>(1ull << (retries - 1));
      continue;
    }
    break;  // non-recoverable (or retry budget spent): surface the fault
  }

  result.query_id = session.query_id;
  result.arrival_offset = task->opts.arrival_offset;
  result.session_epoch = session.epoch;
  result.queue_wait = task->queue_wait;
  result.retries = retries;
  result.replanned = replanned;
  result.degraded = retries > 0 || replanned;
  result.fault = first_fault;

  // Populate the result cache from clean completions — re-validated: the key
  // is recomputed now and the rows publish only when no referenced table
  // mutated since the attempt's dequeue-time lookup, so an entry's rows
  // provably correspond to its key's epochs. A table placed mid-flight simply
  // skips the insert.
  if (result.status.ok() && !cache_key.empty() &&
      ResultCacheKey(system_, task->spec) == cache_key) {
    if (ResultCache* cache = system_->result_cache()) {
      cache->Insert(cache_key, result.rows);
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    const sim::VTime freed_at = session.epoch + result.modeled_seconds;
    clock_floor_ = sim::MaxT(clock_floor_, freed_at);
    task->result = std::move(result);
    task->done = true;
    --active_;
    reserved_blocks_ -= task->budget;
    AdmitLocked(freed_at);
  }
  // After the notify the waiter may free the task; touch nothing of it here.
  done_cv_.notify_all();
}

QueryResult QueryScheduler::Wait(QueryHandle handle) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = tasks_.find(handle.id);
  if (it == tasks_.end()) {
    QueryResult missing;
    missing.status = Status::InvalidArgument(
        "unknown or already-waited query handle " + std::to_string(handle.id));
    return missing;
  }
  Task* task = it->second.get();
  if (task->claimed) {
    QueryResult taken;
    taken.status = Status::InvalidArgument(
        "query handle " + std::to_string(handle.id) +
        " is already being waited on by another caller");
    return taken;
  }
  task->claimed = true;
  done_cv_.wait(lock, [&] { return task->done; });
  QueryResult result = std::move(task->result);
  std::thread worker = std::move(task->worker);
  tasks_.erase(it);
  lock.unlock();
  if (worker.joinable()) worker.join();
  return result;
}

Status QueryScheduler::Cancel(QueryHandle handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(handle.id);
  if (it == tasks_.end()) {
    return Status::InvalidArgument("unknown or already-waited query handle " +
                                   std::to_string(handle.id));
  }
  Task* task = it->second.get();
  if (task->done) return Status::OK();  // finished first: nothing to cancel

  const auto queued = std::find(waiting_.begin(), waiting_.end(), task);
  if (queued != waiting_.end()) {
    // Never admitted: terminate in place. No slot or budget was consumed, but
    // a cancelled queue head may have been the admission blocker — re-admit.
    waiting_.erase(queued);
    task->control.cancelled.store(true, std::memory_order_relaxed);
    task->result.status =
        Status::Cancelled("query cancelled while queued for admission");
    task->result.query_id = task->id;
    task->result.arrival_offset = task->opts.arrival_offset;
    task->done = true;
    AdmitLocked(/*slot_freed_at=*/-1.0);
    done_cv_.notify_all();
    return Status::OK();
  }
  // Running: cooperative stop. Segmenters quit, edges drop messages, blocked
  // staging acquisitions observing this flag wake with kCancelled; RunTask
  // stamps the terminal status.
  task->control.cancelled.store(true, std::memory_order_relaxed);
  return Status::OK();
}

int QueryScheduler::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int QueryScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(waiting_.size());
}

}  // namespace hetex::core
