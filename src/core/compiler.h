#ifndef HETEX_CORE_COMPILER_H_
#define HETEX_CORE_COMPILER_H_

#include <map>
#include <string>
#include <vector>

#include "jit/program.h"
#include "plan/het_plan.h"
#include "plan/query_spec.h"
#include "sim/cost_model.h"
#include "storage/table.h"

namespace hetex::core {

/// One column of a pipeline's input or output schema.
struct ColSlot {
  std::string name;
  uint32_t width = 8;
};

/// \brief A device-agnostic compiled pipeline: the fused program plus the schema
/// and state metadata the runtime needs to bind it to an instance.
///
/// The program is generated once; each instance takes a copy and finalizes it
/// through its DeviceProvider (the paper's per-device "pipeline template"
/// instantiation, §4.2).
struct CompiledPipeline {
  jit::PipelineProgram program;
  std::vector<ColSlot> input_cols;
  std::vector<ColSlot> output_cols;      ///< per-tuple emit schema (may be empty)
  std::vector<int> ht_join_slots;        ///< ht slot index -> join id (probes)
  int agg_ht_slot = -1;                  ///< slot of the group-by hash table
  int n_group_vals = 0;                  ///< aggregates folded per group
  jit::AggFunc group_funcs[8] = {};
  uint64_t groups_capacity = 0;
};

/// Aggregation function used when merging partial aggregates (COUNT partials are
/// summed; SUM/MIN/MAX merge with themselves).
jit::AggFunc MergeFunc(jit::AggFunc f);

/// \brief A maximal run of compute operators of a HetPlan executed inside one
/// worker group, between exchange boundaries (routers / segmenters / pack tops).
///
/// Spans are the compilation unit of the lowering: GraphBuilder cuts the DAG
/// into spans and requests one fused pipeline program per span, instead of the
/// engine assuming a fixed build/filter/probe/gather stage shape.
struct PipelineSpan {
  enum class Role { kBuild, kFilterStage, kProbe, kGather };

  Role role = Role::kProbe;
  std::vector<int> nodes;                ///< plan node ids, consumer→producer
  std::vector<sim::DeviceId> instances;  ///< placement stamped on the span nodes
  int join_id = -1;                      ///< kBuild: join whose HT the span feeds
  int n_buckets = 1;                     ///< kFilterStage: hash-pack fanout

  static const char* RoleName(Role role);
};

/// Classifies a span by its relational content (kJoinBuild → build, kGather →
/// gather, kHashPack without probes → filter stage, otherwise probe) and lifts
/// the stamped join/bucket parameters. `nodes` is consumer→producer order.
PipelineSpan ClassifySpan(const plan::HetPlan& plan, std::vector<int> nodes);

/// \brief Generates the fused pipeline programs for a query.
///
/// This is the produce()/consume() stage of the paper's §4.1: relational operators
/// contribute straight-line VM code in consume order (filters first, then the
/// probe loops of each join, then accumulation), and HetExchange operators define
/// the pipeline boundaries. Hash-table random-access size classes are stamped into
/// the code from the modeled table footprints.
class QueryCompiler {
 public:
  QueryCompiler(const plan::QuerySpec& spec, const storage::Catalog& catalog,
                const sim::CostModel& cost_model);

  /// \brief Compiles the fused program of one DAG span (the lowering's entry
  /// point: pipelines are requested per span, not per fixed stage name).
  ///
  /// `upstream_schema` is the producer span's emit schema when the span reads
  /// packed intermediate blocks (stage B of a split plan) instead of a table.
  CompiledPipeline CompileSpan(const PipelineSpan& span,
                               const std::vector<ColSlot>* upstream_schema) const;

  /// Build pipeline of join `j`: filter + key/payload extraction + HT insert.
  CompiledPipeline CompileBuild(int join_id) const;

  /// The fused fact pipeline: filters, all probe loops, local aggregation.
  /// When `input_schema` is non-null, the pipeline reads that schema (stage B of
  /// a split plan) instead of the fact table.
  CompiledPipeline CompileProbe(const std::vector<ColSlot>* input_schema) const;

  /// Stage A of a split plan: filter + hash-pack emit of the surviving columns.
  /// `n_buckets` hash-pack buckets keyed on the first join's probe key.
  CompiledPipeline CompileFilterStage(int n_buckets) const;

  /// Global merge of partial aggregates (the gather pipeline).
  CompiledPipeline CompileGather() const;

  /// Schema of the partial-aggregate messages probe instances emit.
  std::vector<ColSlot> PartialsSchema() const;

  /// Estimated bytes of join `j`'s hash table (drives the access size class and
  /// the build capacity).
  uint64_t JoinHtBytes(int join_id) const;
  uint64_t JoinHtCapacity(int join_id) const;
  int JoinPayloadWidth(int join_id) const {
    return static_cast<int>(spec_->joins.at(join_id).payload.size());
  }

  const plan::QuerySpec& spec() const { return *spec_; }

 private:
  const plan::QuerySpec* spec_;
  const storage::Catalog* catalog_;
  const sim::CostModel* cost_model_;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_COMPILER_H_
