#ifndef HETEX_CORE_RUNTIME_H_
#define HETEX_CORE_RUNTIME_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "core/ht_registry.h"
#include "core/query_control.h"
#include "core/system.h"
#include "jit/device_provider.h"
#include "jit/hash_table.h"
#include "sim/dma_engine.h"

namespace hetex::core {

/// \brief The unit of inter-pipeline communication: block handles for each column
/// of a batch of tuples, plus virtual-time metadata.
///
/// This is pure control plane — routing a DataMsg never touches tuple data
/// (paper §3.1). The mem-move machinery attaches DMA tickets when it schedules
/// transfers; the consumer waits on them before reading.
struct DataMsg {
  std::vector<memory::BlockHandle> cols;
  uint64_t rows = 0;
  sim::VTime ready_at = 0;
  uint64_t tag = 0;  ///< routing tag (hash bucket / broadcast target id)
  std::vector<sim::TransferTicket> tickets;
  std::vector<memory::Block*> release_after_wait;  ///< DMA sources to free

  /// Mem-move failure marker: when an edge's data-flow half could not deliver
  /// this message (injected DMA fault, staging exhaustion, cancellation), it
  /// releases the payload and forwards the message with `error` set and empty
  /// `cols`; the consumer lifts the error into its instance and drains.
  Status error = Status::OK();

  /// Latest virtual time at which every column block (and transfer) is ready.
  sim::VTime ReadyAt() const {
    sim::VTime t = ready_at;
    for (const auto& ticket : tickets) t = sim::MaxT(t, ticket.ready_at());
    return t;
  }
};

using Channel = MpmcQueue<DataMsg>;

class WorkerGroup;

/// \brief One pipeline instance: a worker thread (CPU) or a host control thread
/// driving kernels on one GPU, with its own provider, virtual clock and input
/// channel.
class WorkerInstance {
 public:
  /// `epoch` is the absolute virtual arrival time of the owning query session:
  /// the instance's clock stays session-local, and the epoch anchors the
  /// provider's reservations on shared resources (GPU streams). `query_id`
  /// identifies the session in the cross-session resource registries (DRAM
  /// fluid shares exclude the query's own registration from the divisor).
  WorkerInstance(int id, sim::DeviceId device, System* system,
                 size_t channel_capacity, sim::VTime epoch = 0.0,
                 uint64_t query_id = 0);

  int id() const { return id_; }
  sim::DeviceId device() const { return device_; }
  sim::MemNodeId node() const { return provider_->mem_node(); }
  jit::DeviceProvider& provider() { return *provider_; }
  System& system() { return *system_; }
  Channel& channel() { return channel_; }

  sim::VTime clock() const { return clock_; }
  void set_clock(sim::VTime t) {
    clock_ = t;
    clock_shared_.store(t, std::memory_order_relaxed);
  }
  void AdvanceTo(sim::VTime t) {
    if (t > clock_) set_clock(t);
  }

  sim::CostStats& stats() { return stats_; }

  /// First runtime error of this instance (e.g. a division-by-zero surfaced by
  /// the JIT tiers). Set by the instance's own worker thread; read by the
  /// orchestrator after Join() and lifted into QueryResult::status.
  const Status& error() const { return error_; }
  void NoteError(Status st) {
    if (error_.ok() && !st.ok()) error_ = std::move(st);
  }

  /// Estimated virtual time at which this instance would finish everything
  /// already queued for it — the router's load-balancing signal (virtual-time
  /// equivalent of the paper's queue-backpressure balancing). `cost_prior` is
  /// the router's bandwidth-based per-block estimate, used until the observed
  /// per-block EMA warms up.
  double EstimatedBacklog(double cost_prior) const {
    const double ema = ema_block_cost_.load(std::memory_order_relaxed);
    const double per_block = ema > 0 ? ema : cost_prior;
    return clock_shared_.load(std::memory_order_relaxed) +
           pending_.load(std::memory_order_relaxed) * per_block;
  }
  void NoteEnqueued() { pending_.fetch_add(1, std::memory_order_relaxed); }
  void NoteDequeued() { pending_.fetch_sub(1, std::memory_order_relaxed); }
  void NoteBlockCost(double cost) {
    const double prev = ema_block_cost_.load(std::memory_order_relaxed);
    ema_block_cost_.store(prev == 0 ? cost : 0.75 * prev + 0.25 * cost,
                          std::memory_order_relaxed);
  }

 private:
  int id_;
  sim::DeviceId device_;
  System* system_;
  std::unique_ptr<jit::DeviceProvider> provider_;
  Channel channel_;
  sim::VTime clock_ = 0;
  std::atomic<double> clock_shared_{0};
  std::atomic<int> pending_{0};
  std::atomic<double> ema_block_cost_{0};
  sim::CostStats stats_;
  Status error_;
};

/// \brief Router + mem-move runtime between producer pipelines and a set of
/// consumer instances.
///
/// The routing decision moves only the block handle; when a chosen consumer
/// cannot access a block's memory node, the mem-move half of the edge acquires a
/// staging block on the consumer-local node and schedules an asynchronous DMA,
/// attaching the ticket to the message (paper §3.2). Broadcast duplicates data
/// flow here (one copy per distinct target node, reference-shared within a node);
/// the router half only routes the resulting (block, target-id) pairs.
class Edge {
 public:
  enum class Policy {
    kRoundRobin,   ///< strict rotation (deterministic)
    kLoadBalance,  ///< least virtual-time backlog (default; GPU-local blocks
                   ///< prefer their local GPU)
    kHash,         ///< consumer = tag % consumers (requires hash-packed blocks)
    kBroadcast,    ///< every consumer receives every message
  };

  struct Options {
    Policy policy = Policy::kLoadBalance;
    bool mem_move = true;            ///< insert the mem-move data-flow half
    double control_cost = 100e-9;    ///< router control-plane cost per message
    sim::VTime crossing_latency = 0; ///< e.g. gpu2cpu task-spawn latency
    /// Absolute arrival time of the owning query session: DMA reservations on
    /// the shared PCIe links are anchored at `epoch + session-local time`, so
    /// concurrent queries charge each other link contention.
    sim::VTime epoch = 0;
    /// Owning query's cancellation/deadline state; a cancelled query's edges
    /// drop (and release) further messages instead of moving them. Null =
    /// uncontrolled session.
    const QueryControl* control = nullptr;
  };

  Edge(System* system, Options options, std::vector<WorkerInstance*> consumers);

  /// Registers a producer; the edge closes consumer channels once every producer
  /// called CloseProducer().
  void AddProducer() { producers_.fetch_add(1, std::memory_order_relaxed); }
  void CloseProducer();

  /// Routes one message. `producer_node` identifies the pushing pipeline's
  /// memory node (block-manager batching is keyed by it).
  void Push(DataMsg msg, sim::MemNodeId producer_node);

  int num_consumers() const { return static_cast<int>(consumers_.size()); }
  WorkerInstance* consumer(int i) { return consumers_.at(i); }

 private:
  void DeliverTo(WorkerInstance* target, DataMsg msg, sim::MemNodeId producer_node);
  /// Copies `msg`'s blocks to `target_node`, attaching tickets. Returns the
  /// rewritten message.
  DataMsg MoveToNode(DataMsg msg, sim::MemNodeId target_node,
                     sim::MemNodeId producer_node);

  System* system_;
  Options options_;
  std::vector<WorkerInstance*> consumers_;
  std::atomic<int> producers_{0};
  std::atomic<uint64_t> rr_next_{0};
};

/// Releases every block of a message from `holder_node`'s perspective (skipping
/// foreign, table-resident blocks).
void ReleaseMsgBlocks(System* system, DataMsg& msg, sim::MemNodeId holder_node);

/// \brief Per-instance pipeline execution logic, provided by the compiler.
class BlockProcessor {
 public:
  virtual ~BlockProcessor() = default;
  virtual void Init(WorkerInstance& inst) = 0;
  virtual void ProcessMsg(WorkerInstance& inst, DataMsg& msg) = 0;
  /// Input exhausted: flush partials / finalize state.
  virtual void Finish(WorkerInstance& inst) = 0;
};

using ProcessorFactory =
    std::function<std::unique_ptr<BlockProcessor>(WorkerInstance&)>;

/// \brief A group of identically-programmed pipeline instances (one per device in
/// `devices`), each consuming from its own channel.
class WorkerGroup {
 public:
  WorkerGroup(System* system, std::vector<sim::DeviceId> devices,
              ProcessorFactory factory, Edge* out, size_t channel_capacity,
              sim::VTime initial_clock, sim::VTime epoch = 0.0,
              uint64_t query_id = 0, const QueryControl* control = nullptr);

  void Start();
  void Join();

  int size() const { return static_cast<int>(instances_.size()); }
  WorkerInstance& instance(int i) { return *instances_.at(i); }
  std::vector<WorkerInstance*> instance_ptrs();

  /// Max instance clock after Join(): the group's completion in virtual time.
  sim::VTime max_end() const { return max_end_; }
  sim::CostStats total_stats() const;

 private:
  void RunInstance(WorkerInstance& inst);

  System* system_;
  ProcessorFactory factory_;
  Edge* out_;
  const QueryControl* control_ = nullptr;
  sim::VTime initial_clock_;
  std::vector<std::unique_ptr<WorkerInstance>> instances_;
  std::vector<std::thread> threads_;
  sim::VTime max_end_ = 0;
};

/// \brief The segmenter: a single lightweight thread that splits a placed table's
/// chunks into block-sized handles and feeds them to a router edge (paper Fig. 2,
/// pipeline 6). No data is copied — handles point into table memory.
class SourceDriver {
 public:
  SourceDriver(System* system, const storage::Table* table,
               std::vector<int> col_indices, uint64_t block_rows, Edge* out,
               sim::VTime initial_clock, double per_block_cost = 20e-9);
  ~SourceDriver();

  void Start();
  void Join();

  /// Owning query's cancellation/deadline state: a segmenter stops producing
  /// as soon as the query is no longer live (downstream drains normally).
  void set_control(const QueryControl* control) { control_ = control; }

 private:
  void Run();

  System* system_;
  const QueryControl* control_ = nullptr;
  const storage::Table* table_;
  std::vector<int> col_indices_;
  uint64_t block_rows_;
  Edge* out_;
  sim::VTime clock_;
  double per_block_cost_;
  std::deque<memory::Block> foreign_blocks_;
  std::thread thread_;
  bool started_ = false;
};

/// Collects final result rows with a virtual-time watermark.
class ResultSink {
 public:
  void AddRow(std::vector<int64_t> row, sim::VTime t) {
    std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back(std::move(row));
    done_at_ = sim::MaxT(done_at_, t);
  }

  std::vector<std::vector<int64_t>> TakeRows() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(rows_);
  }
  sim::VTime done_at() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_at_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<int64_t>> rows_;
  sim::VTime done_at_ = 0;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_RUNTIME_H_
