#include "core/program_cache.h"

#include "common/hash.h"
#include "jit/codegen.h"

namespace hetex::core {

namespace {

inline uint64_t Mix(uint64_t h, uint64_t v) {
  return HashMix64(h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2)));
}

bool SameInstr(const jit::Instr& a, const jit::Instr& b) {
  return a.op == b.op && a.cls == b.cls && a.a == b.a && a.b == b.b &&
         a.c == b.c && a.d == b.d && a.imm == b.imm;
}

}  // namespace

uint64_t ProgramCache::Signature(const CompiledPipeline& pipeline) {
  const jit::PipelineProgram& p = pipeline.program;
  uint64_t h = 0xc0de;
  for (const jit::Instr& in : p.code) {
    h = Mix(h, static_cast<uint64_t>(in.op) | (static_cast<uint64_t>(in.cls) << 8));
    h = Mix(h, (static_cast<uint64_t>(static_cast<uint16_t>(in.a)) << 48) |
                   (static_cast<uint64_t>(static_cast<uint16_t>(in.b)) << 32) |
                   (static_cast<uint64_t>(static_cast<uint16_t>(in.c)) << 16) |
                   static_cast<uint64_t>(static_cast<uint16_t>(in.d)));
    h = Mix(h, static_cast<uint64_t>(in.imm));
  }
  h = Mix(h, static_cast<uint64_t>(p.n_regs));
  h = Mix(h, static_cast<uint64_t>(p.n_local_accs));
  for (int i = 0; i < p.n_local_accs; ++i) {
    h = Mix(h, static_cast<uint64_t>(p.local_acc_funcs[i]));
  }
  // Binding schema: the input column widths the runtime will bind positionally.
  for (const ColSlot& slot : pipeline.input_cols) {
    h = Mix(h, slot.width);
  }
  // The label is part of the span identity: a shared compiled program would
  // otherwise report another span's name in runtime diagnostics.
  for (const char c : p.label) h = Mix(h, static_cast<uint64_t>(c));
  return h;
}

bool ProgramCache::Matches(const Entry& e, const CompiledPipeline& pipeline) {
  const jit::PipelineProgram& p = pipeline.program;
  if (e.label != p.label || e.n_regs != p.n_regs ||
      e.n_local_accs != p.n_local_accs || e.code.size() != p.code.size() ||
      e.widths.size() != pipeline.input_cols.size()) {
    return false;
  }
  for (int i = 0; i < p.n_local_accs; ++i) {
    if (e.funcs[i] != p.local_acc_funcs[i]) return false;
  }
  for (size_t i = 0; i < e.code.size(); ++i) {
    if (!SameInstr(e.code[i], p.code[i])) return false;
  }
  for (size_t i = 0; i < e.widths.size(); ++i) {
    if (e.widths[i] != pipeline.input_cols[i].width) return false;
  }
  return true;
}

Result<std::shared_ptr<const jit::PipelineProgram>> ProgramCache::GetOrCompile(
    jit::DeviceProvider& provider, const CompiledPipeline& pipeline) {
  const int kind = static_cast<int>(provider.type());
  // The tier policy is part of the compiled artifact (it decides which tier
  // ConvertToMachineCode installs), so it is part of the key: a forced-
  // interpreter provider must never be served a vectorized- or native-tier
  // cache hit, and vice versa.
  const int keyed_kind = kind * 4 + static_cast<int>(provider.tier_policy());
  const uint64_t sig = Signature(pipeline);
  const auto key = std::make_pair(keyed_kind, sig);

  std::lock_guard<std::mutex> lock(mu_);
  auto& chain = entries_[key];
  for (const Entry& e : chain) {
    if (Matches(e, pipeline)) {
      ++counters_[kind].hits;
      return e.compiled;
    }
  }

  // Miss: finalize once; every instance of the span shares the result. The
  // binding schema travels with the program so the tier-2 codegen can
  // specialize column loads to the widths the runtime will bind.
  auto compiled = std::make_shared<jit::PipelineProgram>(pipeline.program);
  compiled->input_widths.clear();
  compiled->input_widths.reserve(pipeline.input_cols.size());
  for (const ColSlot& slot : pipeline.input_cols) {
    compiled->input_widths.push_back(slot.width);
  }
  compiled->n_input_cols = static_cast<int>(pipeline.input_cols.size());
  HETEX_RETURN_NOT_OK(provider.ConvertToMachineCode(compiled.get()));
  if (compiled->native != nullptr && compiled->native->ready() &&
      compiled->native->origin == jit::NativeKernel::Origin::kDisk) {
    ++counters_[kind].disk_hits;
  }
  Entry e;
  e.code = pipeline.program.code;
  e.label = pipeline.program.label;
  e.widths.reserve(pipeline.input_cols.size());
  for (const ColSlot& slot : pipeline.input_cols) e.widths.push_back(slot.width);
  e.n_regs = pipeline.program.n_regs;
  e.n_local_accs = pipeline.program.n_local_accs;
  for (int i = 0; i < pipeline.program.n_local_accs; ++i) {
    e.funcs[i] = pipeline.program.local_acc_funcs[i];
  }
  e.compiled = compiled;
  chain.push_back(std::move(e));
  ++counters_[kind].misses;
  return std::shared_ptr<const jit::PipelineProgram>(std::move(compiled));
}

ProgramCache::Counters ProgramCache::counters(sim::DeviceType type) const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[static_cast<int>(type)];
}

uint64_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& [key, chain] : entries_) n += chain.size();
  return n;
}

void ProgramCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  counters_[0] = Counters{};
  counters_[1] = Counters{};
}

}  // namespace hetex::core
