#ifndef HETEX_CORE_EXECUTOR_H_
#define HETEX_CORE_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/system.h"
#include "plan/het_plan.h"
#include "plan/optimizer.h"
#include "plan/query_spec.h"
#include "sim/cost_model.h"

namespace hetex::core {

/// Outcome of a query execution.
struct QueryResult {
  Status status = Status::OK();
  /// Result rows: scalar aggregates = one row of accumulator values; group-bys =
  /// [combined group key, aggregates...], sorted by key.
  std::vector<std::vector<int64_t>> rows;
  sim::VTime modeled_seconds = 0;  ///< virtual-time latency on the modeled server
  double wall_seconds = 0;         ///< host wall-clock of the functional execution
  sim::CostStats stats;            ///< aggregate work counters
};

/// \brief Thin orchestrator: (optimize →) plan → validate → lower → run → collect.
///
/// The executor owns no knowledge of the execution shape. The default entry
/// point — `Execute(spec)` — runs the cost-based optimizer: EnumeratePlans
/// generates the candidate HetPlans the lowering supports, PlanCoster prices
/// each with the virtual-time model, and the cheapest executes. The
/// explicit-policy overload pins the plan shape exactly (benchmarks and
/// ablations depend on deterministic shapes), bypassing the search.
/// ValidateHetPlan enforces the §3.3 converter rules on every plan, and
/// GraphBuilder lowers the validated DAG into SourceDrivers, Edges and
/// WorkerGroups. Any plan failing validation or lowering surfaces through
/// QueryResult::status instead of executing.
class QueryExecutor {
 public:
  explicit QueryExecutor(System* system) : system_(system) {}

  /// Optimizes by default: enumerates, costs and runs the cheapest candidate
  /// under an unconstrained hybrid base policy.
  QueryResult Execute(const plan::QuerySpec& spec);

  /// Plans `spec` under the exact `policy` (no search), then runs the plan.
  QueryResult Execute(const plan::QuerySpec& spec, const plan::ExecPolicy& policy);

  /// Enumerator → coster → picker within the degrees of freedom `base` leaves
  /// open; runs the picked plan. `explain`, when non-null, receives the full
  /// ranked candidate table.
  QueryResult ExecuteOptimized(const plan::QuerySpec& spec,
                               const plan::ExecPolicy& base,
                               plan::OptimizeResult* explain = nullptr);

  /// The optimization pipeline without execution (candidate ranking + cost
  /// breakdowns, for tooling and tests).
  Status Optimize(const plan::QuerySpec& spec, const plan::ExecPolicy& base,
                  plan::OptimizeResult* out) const;

  /// Human-readable ranked candidate table for `spec` under `base` (the
  /// EXPLAIN path; returns the error text when optimization fails).
  std::string Explain(const plan::QuerySpec& spec, const plan::ExecPolicy& base) const;

  /// Runs a pre-built — possibly hand-mutated — heterogeneity-aware plan.
  /// Changing the plan (router policies, placements, block granularity) changes
  /// the execution without any engine code change.
  QueryResult ExecutePlan(const plan::QuerySpec& spec, const plan::HetPlan& plan);

 private:
  System* system_;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_EXECUTOR_H_
