#ifndef HETEX_CORE_EXECUTOR_H_
#define HETEX_CORE_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "core/system.h"
#include "plan/het_plan.h"
#include "plan/query_spec.h"
#include "sim/cost_model.h"

namespace hetex::core {

/// Outcome of a query execution.
struct QueryResult {
  Status status = Status::OK();
  /// Result rows: scalar aggregates = one row of accumulator values; group-bys =
  /// [combined group key, aggregates...], sorted by key.
  std::vector<std::vector<int64_t>> rows;
  sim::VTime modeled_seconds = 0;  ///< virtual-time latency on the modeled server
  double wall_seconds = 0;         ///< host wall-clock of the functional execution
  sim::CostStats stats;            ///< aggregate work counters
};

/// \brief Compiles and runs queries on a System under an ExecPolicy.
///
/// Orchestration follows the paper's phased pipeline networks: all join-build
/// graphs run concurrently (they are independent star-schema dimensions), then the
/// fused probe graph runs, with instance virtual clocks starting at the build
/// completion watermark. Routers, mem-moves, device crossings and pack/unpack all
/// live on the edges between worker groups.
class QueryExecutor {
 public:
  explicit QueryExecutor(System* system) : system_(system) {}

  QueryResult Execute(const plan::QuerySpec& spec, const plan::ExecPolicy& policy);

 private:
  System* system_;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_EXECUTOR_H_
