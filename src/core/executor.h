#ifndef HETEX_CORE_EXECUTOR_H_
#define HETEX_CORE_EXECUTOR_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query_control.h"
#include "core/system.h"
#include "plan/het_plan.h"
#include "plan/optimizer.h"
#include "plan/query_spec.h"
#include "sim/cost_model.h"

namespace hetex::core {

/// \brief Identity of one in-flight query on the shared virtual timeline.
///
/// `epoch` is the absolute virtual time at which the query arrived at the
/// server. Everything inside the query — instance clocks, block timestamps,
/// the reported latency — stays session-local (starts near zero); the epoch
/// anchors every reservation on a shared resource (PCIe links, DMA engines,
/// GPU kernel streams) at `epoch + session-local time`, so concurrent queries
/// charge each other contention while a query on an idle server behaves
/// exactly as the old rewind-to-zero model did. `query_id` namespaces the
/// query's hash tables in the System-shared HtRegistry.
struct QuerySession {
  uint64_t query_id = 0;
  sim::VTime epoch = 0;
  /// Cooperative cancellation/deadline state (see QueryControl); null for
  /// uncontrolled (solo) sessions. Owned by the scheduler task, outlives the
  /// session.
  const QueryControl* control = nullptr;
};

/// Outcome of a query execution.
struct QueryResult {
  Status status = Status::OK();
  /// Result rows: scalar aggregates = one row of accumulator values; group-bys =
  /// [combined group key, aggregates...], sorted by key.
  std::vector<std::vector<int64_t>> rows;
  sim::VTime modeled_seconds = 0;  ///< virtual-time latency on the modeled server
  double wall_seconds = 0;         ///< host wall-clock of the functional execution
  sim::CostStats stats;            ///< aggregate work counters
  uint64_t query_id = 0;           ///< session id the query ran under
  /// Scheduled queries only: virtual arrival offset relative to the workload
  /// base (as submitted), the absolute epoch the session actually started at,
  /// and the admission queue wait in virtual time (epoch minus arrival).
  /// `queue_wait + modeled_seconds` is the client-observed latency;
  /// `session_epoch + modeled_seconds` orders completions across a batch
  /// (throughput accounting).
  sim::VTime arrival_offset = 0;
  sim::VTime session_epoch = 0;
  sim::VTime queue_wait = 0;
  /// \name Degraded-mode accounting (scheduler recovery path).
  /// A query that hit a fault and recovered reports how: `retries` transient
  /// re-executions (exponential virtual-time backoff), `replanned` when a
  /// device loss forced a re-plan on the surviving device set, `degraded`
  /// when either happened, and `fault` carries the first fault that triggered
  /// recovery (also set when recovery ultimately failed — `status` then holds
  /// the terminal error).
  /// @{
  int retries = 0;
  bool replanned = false;
  bool degraded = false;
  Status fault = Status::OK();
  /// @}
  /// \name Serving-layer reuse accounting (zero/false when reuse is off).
  /// `cache_hit`: the scheduler answered from the result cache — no plan ran,
  /// `modeled_seconds` is the cache lookup cost only. `shared_builds` /
  /// `shared_attaches` count this query's joins that built-and-published vs
  /// attached-to an already-built shared hash-table replica set.
  /// @{
  bool cache_hit = false;
  int shared_builds = 0;
  int shared_attaches = 0;
  /// @}
};

/// Opaque handle to a query submitted to the concurrent scheduler.
struct QueryHandle {
  uint64_t id = 0;
};

class QueryScheduler;

/// \brief Thin orchestrator: (optimize →) plan → validate → lower → run → collect.
///
/// The executor owns no knowledge of the execution shape. The default entry
/// point — `Execute(spec)` — runs the cost-based optimizer: EnumeratePlans
/// generates the candidate HetPlans the lowering supports, PlanCoster prices
/// each with the virtual-time model, and the cheapest executes. The
/// explicit-policy overload pins the plan shape exactly (benchmarks and
/// ablations depend on deterministic shapes), bypassing the search.
/// ValidateHetPlan enforces the §3.3 converter rules on every plan, and
/// GraphBuilder lowers the validated DAG into SourceDrivers, Edges and
/// WorkerGroups. Any plan failing validation or lowering surfaces through
/// QueryResult::status instead of executing.
class QueryExecutor {
 public:
  explicit QueryExecutor(System* system);
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Optimizes by default: enumerates, costs and runs the cheapest candidate
  /// under an unconstrained hybrid base policy.
  QueryResult Execute(const plan::QuerySpec& spec);

  /// Plans `spec` under the exact `policy` (no search), then runs the plan.
  QueryResult Execute(const plan::QuerySpec& spec, const plan::ExecPolicy& policy);

  /// Enumerator → coster → picker within the degrees of freedom `base` leaves
  /// open; runs the picked plan. `explain`, when non-null, receives the full
  /// ranked candidate table.
  QueryResult ExecuteOptimized(const plan::QuerySpec& spec,
                               const plan::ExecPolicy& base,
                               plan::OptimizeResult* explain = nullptr);

  /// The optimization pipeline without execution (candidate ranking + cost
  /// breakdowns, for tooling and tests).
  Status Optimize(const plan::QuerySpec& spec, const plan::ExecPolicy& base,
                  plan::OptimizeResult* out) const;

  /// Optimization as seen by a session arriving at absolute virtual time
  /// `epoch`: the coster reads each PCIe link's outstanding backlog beyond the
  /// epoch as a load signal, so plans picked under load account for the
  /// in-flight queries already queued on the interconnects. `Optimize` is this
  /// with epoch = VirtualHorizon() (an idle arrival: zero backlog).
  /// `exclude_gpus`, when non-null, removes those devices from the candidate
  /// space on top of the System health registry's availability at `epoch` —
  /// the scheduler's conservative exclusion set when re-planning after a
  /// kDeviceLost failure.
  Status OptimizeAt(const plan::QuerySpec& spec, const plan::ExecPolicy& base,
                    sim::VTime epoch, plan::OptimizeResult* out,
                    const std::vector<int>* exclude_gpus = nullptr) const;

  /// Human-readable ranked candidate table for `spec` under `base` (the
  /// EXPLAIN path; returns the error text when optimization fails).
  std::string Explain(const plan::QuerySpec& spec, const plan::ExecPolicy& base) const;

  /// Runs a pre-built — possibly hand-mutated — heterogeneity-aware plan.
  /// Changing the plan (router policies, placements, block granularity) changes
  /// the execution without any engine code change.
  ///
  /// The sessionless overload allocates a fresh solo session anchored at the
  /// resource horizon (idle arrival: latency identical to the old
  /// reset-the-clocks model); the session overload is the scheduler's entry
  /// point for concurrent execution on a shared timeline.
  QueryResult ExecutePlan(const plan::QuerySpec& spec, const plan::HetPlan& plan);
  QueryResult ExecutePlan(const plan::QuerySpec& spec, const plan::HetPlan& plan,
                          const QuerySession& session);

  /// \name Concurrent execution
  /// Submits a query to the scheduler (admission-controlled, runs concurrently
  /// with other in-flight queries against this System) and waits for its
  /// result. The scheduler is created on first use with default options; use
  /// `scheduler()` for arrival offsets, pinned policies and admission tuning.
  /// @{
  QueryHandle Submit(const plan::QuerySpec& spec);
  QueryHandle Submit(const plan::QuerySpec& spec, const plan::ExecPolicy& policy);
  QueryResult Wait(QueryHandle handle);
  /// Requests cancellation of a submitted query (see QueryScheduler::Cancel).
  Status Cancel(QueryHandle handle);
  QueryScheduler& scheduler();
  /// @}

 private:
  System* system_;
  std::mutex scheduler_mu_;
  std::unique_ptr<QueryScheduler> scheduler_;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_EXECUTOR_H_
