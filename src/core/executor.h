#ifndef HETEX_CORE_EXECUTOR_H_
#define HETEX_CORE_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "core/system.h"
#include "plan/het_plan.h"
#include "plan/query_spec.h"
#include "sim/cost_model.h"

namespace hetex::core {

/// Outcome of a query execution.
struct QueryResult {
  Status status = Status::OK();
  /// Result rows: scalar aggregates = one row of accumulator values; group-bys =
  /// [combined group key, aggregates...], sorted by key.
  std::vector<std::vector<int64_t>> rows;
  sim::VTime modeled_seconds = 0;  ///< virtual-time latency on the modeled server
  double wall_seconds = 0;         ///< host wall-clock of the functional execution
  sim::CostStats stats;            ///< aggregate work counters
};

/// \brief Thin orchestrator: plan → validate → lower → run → collect.
///
/// The executor owns no knowledge of the execution shape. BuildHetPlan produces
/// the heterogeneity-aware DAG (with every placement/DOP/cost parameter stamped
/// on its nodes), ValidateHetPlan enforces the §3.3 converter rules, and
/// GraphBuilder lowers the validated DAG into SourceDrivers, Edges and
/// WorkerGroups. Any plan failing validation or lowering surfaces through
/// QueryResult::status instead of executing.
class QueryExecutor {
 public:
  explicit QueryExecutor(System* system) : system_(system) {}

  /// Plans `spec` under `policy`, then runs the plan (ExecutePlan).
  QueryResult Execute(const plan::QuerySpec& spec, const plan::ExecPolicy& policy);

  /// Runs a pre-built — possibly hand-mutated — heterogeneity-aware plan.
  /// Changing the plan (router policies, placements, block granularity) changes
  /// the execution without any engine code change.
  QueryResult ExecutePlan(const plan::QuerySpec& spec, const plan::HetPlan& plan);

 private:
  System* system_;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_EXECUTOR_H_
