#ifndef HETEX_CORE_PROCESSOR_H_
#define HETEX_CORE_PROCESSOR_H_

#include <memory>
#include <vector>

#include "core/compiler.h"
#include "core/program_cache.h"
#include "core/runtime.h"

namespace hetex::core {

/// \brief Everything a worker group needs to run one compiled stage.
///
/// One StageConfig is shared by all instances of a group; each instance finalizes
/// its own copy of the program through its device provider and binds its own
/// state (the paper's per-device pipeline template + per-instance state creation,
/// §4.2).
struct StageConfig {
  enum class Role {
    kBuild,        ///< feeds a join hash table (pipeline breaker into state)
    kProbe,        ///< fused filter/probe/local-aggregate stage
    kFilterStage,  ///< stage A of a split plan: filter + hash-pack emit
    kGather,       ///< global merge of partials, writes the result sink
  };

  Role role = Role::kProbe;
  CompiledPipeline pipeline;

  /// Owning query session: namespaces this stage's hash tables in the shared
  /// HtRegistry so concurrent queries never collide on (join id, unit).
  uint64_t query_id = 0;

  /// Per-device program cache: the group's N instances finalize each distinct
  /// span program exactly once. Null = every instance finalizes its own copy.
  ProgramCache* programs = nullptr;

  HtRegistry* hts = nullptr;
  Edge* out = nullptr;          ///< downstream edge (null for gather)
  ResultSink* result = nullptr; ///< gather only

  // Build stages.
  int build_join_id = -1;
  uint64_t build_capacity = 0;
  int build_payload_width = 0;

  // Emit configuration.
  uint64_t block_bytes = 1ull << 20;
  int n_buckets = 1;            ///< hash-pack buckets (>1 only for kFilterStage)

  // Bare-GPU (UVA) mode: kernels may read host-resident blocks over PCIe;
  // their streamed bytes reserve occupancy on the GPU's link BandwidthServer.
  bool allow_uva = false;
};

/// Creates the block processor for one instance of a stage.
std::unique_ptr<BlockProcessor> MakeVmProcessor(const StageConfig* config);

}  // namespace hetex::core

#endif  // HETEX_CORE_PROCESSOR_H_
