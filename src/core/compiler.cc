#include "core/compiler.h"

#include <functional>
#include <set>

#include "common/logging.h"

namespace hetex::core {

using jit::OpCode;
using jit::ProgramBuilder;
using plan::ExprPtr;

jit::AggFunc MergeFunc(jit::AggFunc f) {
  return f == jit::AggFunc::kCount ? jit::AggFunc::kSum : f;
}

namespace {

/// Column resolver backing one pipeline's codegen: fact/table columns lower to
/// kLoadCol (cached per tuple program), probe payload columns resolve to the
/// registers the enclosing probe loop defined.
class PipelineResolver : public plan::ColumnResolver {
 public:
  /// Table-backed resolver (widths from the table schema).
  PipelineResolver(const storage::Table* table, std::vector<ColSlot>* input_cols)
      : table_(table), input_cols_(input_cols) {}

  /// Schema-backed resolver (stage B / gather pipelines).
  PipelineResolver(const std::vector<ColSlot>& schema,
                   std::vector<ColSlot>* input_cols)
      : schema_(&schema), input_cols_(input_cols) {}

  int ResolveColumn(const std::string& name, ProgramBuilder& b) override {
    if (auto it = payload_regs_.find(name); it != payload_regs_.end()) {
      return it->second;
    }
    if (auto it = col_regs_.find(name); it != col_regs_.end()) {
      return it->second;
    }
    int slot = -1;
    for (size_t i = 0; i < input_cols_->size(); ++i) {
      if ((*input_cols_)[i].name == name) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) {
      slot = static_cast<int>(input_cols_->size());
      input_cols_->push_back({name, WidthOf(name)});
    }
    const int reg = b.AllocReg();
    b.EmitOp(OpCode::kLoadCol, reg, slot);
    col_regs_[name] = reg;
    return reg;
  }

  void BindPayload(const std::string& name, int reg) { payload_regs_[name] = reg; }

 private:
  uint32_t WidthOf(const std::string& name) const {
    if (table_ != nullptr) return table_->column(name).width();
    for (const auto& slot : *schema_) {
      if (slot.name == name) return slot.width;
    }
    HETEX_CHECK(false) << "column '" << name << "' not in pipeline input schema";
    return 8;
  }

  const storage::Table* table_ = nullptr;
  const std::vector<ColSlot>* schema_ = nullptr;
  std::vector<ColSlot>* input_cols_;
  std::map<std::string, int> col_regs_;
  std::map<std::string, int> payload_regs_;
};

/// Copies `regs` into a freshly-allocated contiguous register range (HT insert,
/// group-by folds and emits take contiguous register windows).
int MakeContiguous(ProgramBuilder& b, const std::vector<int>& regs) {
  HETEX_CHECK(!regs.empty());
  const int first = b.AllocReg();
  for (size_t i = 1; i < regs.size(); ++i) b.AllocReg();
  for (size_t i = 0; i < regs.size(); ++i) {
    // mov: shift by zero
    b.EmitOp(OpCode::kShl, first + static_cast<int>(i), regs[i], 0, 0, 0);
  }
  return first;
}

}  // namespace

const char* PipelineSpan::RoleName(Role role) {
  switch (role) {
    case Role::kBuild: return "build";
    case Role::kFilterStage: return "filter-stage";
    case Role::kProbe: return "probe";
    case Role::kGather: return "gather";
  }
  return "?";
}

PipelineSpan ClassifySpan(const plan::HetPlan& plan, std::vector<int> nodes) {
  using Kind = plan::HetOpNode::Kind;
  PipelineSpan span;
  span.nodes = std::move(nodes);
  HETEX_CHECK(!span.nodes.empty()) << "empty pipeline span";
  bool has_build = false, has_probe = false, has_gather = false;
  bool has_hash_pack = false;
  for (int id : span.nodes) {
    const plan::HetOpNode& n = plan.node(id);
    if (!n.placement.empty() && span.instances.empty()) {
      span.instances = n.placement;
    }
    switch (n.kind) {
      case Kind::kJoinBuild:
        has_build = true;
        span.join_id = n.join_id;
        break;
      case Kind::kJoinProbe:
        has_probe = true;
        break;
      case Kind::kGather:
        has_gather = true;
        break;
      case Kind::kHashPack:
        has_hash_pack = true;
        span.n_buckets = n.n_buckets > 0 ? n.n_buckets : 1;
        break;
      default:
        break;
    }
  }
  // A hash-pack only makes the span a filter stage when no probe runs in it;
  // a span that probes and hash-packs is still a probe pipeline.
  span.role = has_build    ? PipelineSpan::Role::kBuild
              : has_gather ? PipelineSpan::Role::kGather
              : (has_hash_pack && !has_probe) ? PipelineSpan::Role::kFilterStage
                                              : PipelineSpan::Role::kProbe;
  return span;
}

QueryCompiler::QueryCompiler(const plan::QuerySpec& spec,
                             const storage::Catalog& catalog,
                             const sim::CostModel& cost_model)
    : spec_(&spec), catalog_(&catalog), cost_model_(&cost_model) {}

CompiledPipeline QueryCompiler::CompileSpan(
    const PipelineSpan& span, const std::vector<ColSlot>* upstream_schema) const {
  switch (span.role) {
    case PipelineSpan::Role::kBuild:
      HETEX_CHECK(span.join_id >= 0) << "build span without a join id stamp";
      return CompileBuild(span.join_id);
    case PipelineSpan::Role::kFilterStage:
      return CompileFilterStage(span.n_buckets);
    case PipelineSpan::Role::kProbe:
      return CompileProbe(upstream_schema);
    case PipelineSpan::Role::kGather:
      return CompileGather();
  }
  HETEX_CHECK(false) << "unreachable span role";
  return {};
}

uint64_t QueryCompiler::JoinHtCapacity(int join_id) const {
  const auto& join = spec_->joins.at(join_id);
  if (join.build_rows_estimate > 0) {
    // Optimizer estimate with headroom (the build CHECKs on overflow).
    return join.build_rows_estimate * 13 / 10 + 64;
  }
  return catalog_->at(join.build_table).rows();
}

uint64_t QueryCompiler::JoinHtBytes(int join_id) const {
  const uint64_t capacity = JoinHtCapacity(join_id);
  const uint64_t stride = (2 + JoinPayloadWidth(join_id)) * sizeof(int64_t);
  // entries + bucket array (~2x entries, pow2-rounded; a coarse model is fine for
  // picking the random-access size class)
  return capacity * stride + capacity * 2 * sizeof(int64_t);
}

CompiledPipeline QueryCompiler::CompileBuild(int join_id) const {
  const auto& join = spec_->joins.at(join_id);
  const storage::Table& table = catalog_->at(join.build_table);

  CompiledPipeline out;
  ProgramBuilder b;
  PipelineResolver cols(&table, &out.input_cols);

  if (join.build_filter != nullptr) {
    const int pred = join.build_filter->Gen(b, cols);
    b.EmitOp(OpCode::kFilter, pred);
  }
  const int key = cols.ResolveColumn(join.build_key, b);
  std::vector<int> payload_regs;
  for (const auto& col : join.payload) {
    payload_regs.push_back(cols.ResolveColumn(col, b));
  }
  int first = 0;
  if (!payload_regs.empty()) first = MakeContiguous(b, payload_regs);
  const int cls = cost_model_->RandomAccessClass(JoinHtBytes(join_id));
  b.EmitOp(OpCode::kHtInsert, /*ht_slot=*/0, key, first,
           static_cast<int>(payload_regs.size()), 0, cls);

  out.ht_join_slots = {join_id};
  out.program = b.Finalize(spec_->name + ".build[" + join.build_table + "]");
  return out;
}

CompiledPipeline QueryCompiler::CompileProbe(
    const std::vector<ColSlot>* input_schema) const {
  const storage::Table& fact = catalog_->at(spec_->fact_table);

  CompiledPipeline out;
  ProgramBuilder b;
  PipelineResolver cols = input_schema == nullptr
                              ? PipelineResolver(&fact, &out.input_cols)
                              : PipelineResolver(*input_schema, &out.input_cols);

  // Stage B consumes packed blocks whose columns arrive in the producer's emit
  // order, and the runtime binds them to input slots positionally: resolve the
  // whole schema up front so the slot order matches the wire order (lazy
  // resolution would reorder by first use and silently bind wrong columns).
  if (input_schema != nullptr) {
    for (const auto& slot : *input_schema) {
      cols.ResolveColumn(slot.name, b);
    }
  }

  // Filters were already applied by stage A in split plans.
  if (input_schema == nullptr && spec_->fact_filter != nullptr) {
    const int pred = spec_->fact_filter->Gen(b, cols);
    b.EmitOp(OpCode::kFilter, pred);
  }

  for (int j = 0; j < static_cast<int>(spec_->joins.size()); ++j) {
    out.ht_join_slots.push_back(j);
  }

  // Tail of the fused pipeline: local aggregation (per instance / per GPU).
  auto gen_tail = [&]() {
    if (spec_->group_by.empty()) {
      for (const auto& agg : spec_->aggs) {
        int val = 0;
        if (agg.func != jit::AggFunc::kCount) {
          HETEX_CHECK(agg.value != nullptr) << "non-count aggregate needs a value";
          val = agg.value->Gen(b, cols);
        }
        const int acc = b.AllocLocalAcc(agg.func);
        b.EmitOp(OpCode::kAggLocal, acc, val, static_cast<int>(agg.func));
      }
      return;
    }
    const ExprPtr key_expr = plan::CombineGroupKeys(spec_->group_by);
    const int key = key_expr->Gen(b, cols);
    std::vector<int> vals;
    for (const auto& agg : spec_->aggs) {
      if (agg.func == jit::AggFunc::kCount) {
        const int one = b.AllocReg();
        b.EmitOp(OpCode::kConst, one, 0, 0, 0, 1);
        vals.push_back(one);
      } else {
        vals.push_back(agg.value->Gen(b, cols));
      }
    }
    const int first = MakeContiguous(b, vals);
    out.agg_ht_slot = static_cast<int>(spec_->joins.size());
    out.n_group_vals = static_cast<int>(vals.size());
    out.groups_capacity = spec_->expected_groups;
    for (size_t i = 0; i < spec_->aggs.size(); ++i) {
      // Group folds use SUM for COUNT (each tuple contributes a literal 1).
      out.group_funcs[i] = MergeFunc(spec_->aggs[i].func);
    }
    const uint64_t ht_bytes =
        out.groups_capacity * 2 * (8 + 8ull * out.n_group_vals);
    b.EmitOp(OpCode::kGroupByAgg, out.agg_ht_slot, key, first,
             static_cast<int>(vals.size()), 0,
             cost_model_->RandomAccessClass(ht_bytes));
  };

  // Nested probe loops, innermost body = the aggregation tail.
  std::function<void(size_t)> gen_join = [&](size_t j) {
    if (j == spec_->joins.size()) {
      gen_tail();
      return;
    }
    const auto& join = spec_->joins[j];
    const int cls = cost_model_->RandomAccessClass(JoinHtBytes(static_cast<int>(j)));
    const int key = cols.ResolveColumn(join.probe_key, b);
    const int iter = b.AllocReg();
    b.EmitOp(OpCode::kHtProbeInit, iter, key, static_cast<int>(j), 0, 0, cls);
    const int loop = b.NewLabel();
    const int exit = b.NewLabel();
    b.Bind(loop);
    b.EmitOp(OpCode::kJmpIfNeg, iter, exit);
    if (!join.payload.empty()) {
      const int first = b.AllocReg();
      for (size_t i = 1; i < join.payload.size(); ++i) b.AllocReg();
      b.EmitOp(OpCode::kHtLoadPayload, first, iter, static_cast<int>(j),
               static_cast<int>(join.payload.size()));
      for (size_t i = 0; i < join.payload.size(); ++i) {
        cols.BindPayload(join.payload[i], first + static_cast<int>(i));
      }
    }
    gen_join(j + 1);
    b.EmitOp(OpCode::kHtIterNext, iter, key, static_cast<int>(j), 0, 0, cls);
    b.EmitOp(OpCode::kJmp, loop);
    b.Bind(exit);
  };
  gen_join(0);

  out.program = b.Finalize(spec_->name + ".probe");
  return out;
}

CompiledPipeline QueryCompiler::CompileFilterStage(int n_buckets) const {
  HETEX_CHECK(!spec_->joins.empty()) << "split plans need at least one join";
  const storage::Table& fact = catalog_->at(spec_->fact_table);

  CompiledPipeline out;
  ProgramBuilder b;
  PipelineResolver cols(&fact, &out.input_cols);

  if (spec_->fact_filter != nullptr) {
    const int pred = spec_->fact_filter->Gen(b, cols);
    b.EmitOp(OpCode::kFilter, pred);
  }

  // Surviving columns: everything the probe stage needs from the fact table.
  std::set<std::string> needed;
  for (const auto& join : spec_->joins) needed.insert(join.probe_key);
  for (const auto& agg : spec_->aggs) {
    if (agg.value != nullptr) agg.value->CollectColumns(&needed);
  }
  for (const auto& key : spec_->group_by) key->CollectColumns(&needed);
  // Drop columns the fact table does not own (join payloads resolve later).
  std::vector<std::string> fact_cols;
  for (const auto& name : needed) {
    bool from_payload = false;
    for (const auto& join : spec_->joins) {
      for (const auto& p : join.payload) from_payload |= (p == name);
    }
    if (!from_payload) fact_cols.push_back(name);
  }

  std::vector<int> regs;
  for (const auto& name : fact_cols) {
    regs.push_back(cols.ResolveColumn(name, b));
    out.output_cols.push_back({name, fact.column(name).width()});
  }
  const int first = MakeContiguous(b, regs);
  // Hash-pack tag: bucket by the first join's probe key so hash routing sends
  // each block to the consumer owning its key partition.
  const int key = cols.ResolveColumn(spec_->joins[0].probe_key, b);
  const int tag = b.AllocReg();
  b.EmitOp(OpCode::kHash, tag, key);
  HETEX_CHECK(n_buckets >= 1);
  b.EmitOp(OpCode::kEmit, first, static_cast<int>(regs.size()), tag, /*tagged=*/1);

  out.program = b.Finalize(spec_->name + ".filter-stage");
  return out;
}

std::vector<ColSlot> QueryCompiler::PartialsSchema() const {
  std::vector<ColSlot> schema;
  if (!spec_->group_by.empty()) schema.push_back({"__group_key", 8});
  for (const auto& agg : spec_->aggs) schema.push_back({agg.name, 8});
  return schema;
}

CompiledPipeline QueryCompiler::CompileGather() const {
  CompiledPipeline out;
  ProgramBuilder b;
  const std::vector<ColSlot> schema = PartialsSchema();
  PipelineResolver cols(schema, &out.input_cols);

  if (spec_->group_by.empty()) {
    for (const auto& agg : spec_->aggs) {
      const int val = cols.ResolveColumn(agg.name, b);
      const jit::AggFunc merge = MergeFunc(agg.func);
      const int acc = b.AllocLocalAcc(merge);
      b.EmitOp(OpCode::kAggLocal, acc, val, static_cast<int>(merge));
    }
  } else {
    const int key = cols.ResolveColumn("__group_key", b);
    std::vector<int> vals;
    for (const auto& agg : spec_->aggs) {
      vals.push_back(cols.ResolveColumn(agg.name, b));
    }
    const int first = MakeContiguous(b, vals);
    out.agg_ht_slot = 0;
    out.n_group_vals = static_cast<int>(vals.size());
    out.groups_capacity = spec_->expected_groups;
    for (size_t i = 0; i < spec_->aggs.size(); ++i) {
      out.group_funcs[i] = MergeFunc(spec_->aggs[i].func);
    }
    const uint64_t ht_bytes =
        out.groups_capacity * 2 * (8 + 8ull * out.n_group_vals);
    b.EmitOp(OpCode::kGroupByAgg, 0, key, first, static_cast<int>(vals.size()), 0,
             cost_model_->RandomAccessClass(ht_bytes));
  }

  out.program = b.Finalize(spec_->name + ".gather");
  return out;
}

}  // namespace hetex::core
