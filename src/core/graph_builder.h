#ifndef HETEX_CORE_GRAPH_BUILDER_H_
#define HETEX_CORE_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/compiler.h"
#include "core/executor.h"
#include "core/runtime.h"
#include "plan/het_plan.h"

namespace hetex::core {

/// \brief Transport between pipeline spans: one HetPlan exchange (router plus
/// its mem-move / device-crossing converter decoration) lowered to Edge options,
/// or a direct segmenter feed in bare (no-HetExchange) plans.
struct EdgeSpec {
  int router = -1;      ///< plan node id of the kRouter (-1: bare direct feed)
  int segmenter = -1;   ///< plan node id of the kSegmenter feeding this edge
  Edge::Options options;
  bool uva = false;     ///< consumers address producer memory over UVA
  std::vector<int> producer_tops;  ///< top plan nodes of the producer spans
};

/// \brief One runtime stage: a worker group (the merged, identically-programmed
/// spans of every device-type branch fed by the same exchange) plus the edge —
/// and possibly the source driver — feeding it.
struct StageSpec {
  PipelineSpan span;                    ///< representative span (first branch)
  std::vector<std::vector<int>> branch_nodes;  ///< per-branch span node chains
  std::vector<sim::DeviceId> instances;        ///< concatenated branch placements
  EdgeSpec in;
};

/// \brief The physical-graph description lowered from a validated HetPlan:
/// what GraphBuilder instantiates and what plan_explorer prints.
struct LoweredSpec {
  /// Join-build stages, each a self-contained source→edge→group graph. They all
  /// run concurrently (independent star-schema dimensions) before the fact side.
  std::vector<StageSpec> build_stages;
  /// Fact-side stages in consumer→producer order: gather first, then the probe
  /// stage, then (split plans) the filter stage; the last one is segmenter-fed.
  std::vector<StageSpec> fact_stages;
  sim::VTime init_latency = 0;    ///< router bring-up watermark (max over stamps)
  uint64_t channel_capacity = 16;

  int TotalInstances() const;
  int TotalEdges() const;
  std::string ToString() const;
};

/// \brief Lowers a validated HetPlan into the runtime graph and runs it.
///
/// This is the paper's encapsulation contract made executable: the plan — not
/// the engine — decides the execution shape. Analyze() partitions the DAG into
/// pipeline spans and exchange edges using only the operators and the parameters
/// BuildHetPlan stamped on them; Run() instantiates SourceDrivers, Edges and
/// WorkerGroups from that spec and orchestrates the phased execution (builds
/// concurrently, then the fact graph gated on the hash-table watermark). Any
/// plan shape whose spans classify — split filter/probe stages, per-edge
/// policy/placement/granularity mutations — runs without executor changes.
///
/// Scope: the plan governs the *exchange* level (stage structure, placements,
/// DOP, edge policies, block granularity, costs). The relational content of a
/// span is compiled from the QuerySpec by role (CompileSpan), so mutating
/// individual relational nodes inside a span (e.g. deleting a kFilter) does
/// not change the generated pipeline.
class GraphBuilder {
 public:
  /// `session` identifies the owning query on the shared virtual timeline
  /// (hash-table namespace + resource epoch); null = a fresh solo session is
  /// allocated at Run() time.
  GraphBuilder(System* system, const plan::HetPlan* plan,
               const QuerySession* session = nullptr)
      : system_(system), plan_(plan), session_(session) {}

  /// Partitions the plan DAG into the lowered spec. Fails (rather than CHECKs)
  /// on shapes the runtime cannot instantiate, so callers can surface the
  /// Status in QueryResult.
  Status Analyze();

  const LoweredSpec& spec() const { return spec_; }

  /// \brief Compiles the fact-chain span pipelines producer→consumer, threading
  /// packed wire schemas (stage B of a split plan reads stage A's emit schema).
  ///
  /// Wire schemas bind positionally, so chains a schema cannot be threaded
  /// through are rejected here instead of silently misbinding columns. Shared
  /// by Run() and tooling (plan_explorer's tier report) so both describe the
  /// same programs. `out` is filled in fact-stage order (consumer first).
  Status CompileFactPipelines(QueryCompiler* compiler,
                              std::vector<CompiledPipeline>* out) const;

  /// Instantiates the runtime objects from the analyzed spec and executes the
  /// query, filling `result` (rows, modeled/virtual time, work stats).
  Status Run(QueryCompiler* compiler, QueryResult* result);

 private:
  System* system_;
  const plan::HetPlan* plan_;
  const QuerySession* session_;
  LoweredSpec spec_;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_GRAPH_BUILDER_H_
