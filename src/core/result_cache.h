#ifndef HETEX_CORE_RESULT_CACHE_H_
#define HETEX_CORE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace hetex::core {

/// Serving-layer reuse knobs (System::Options::reuse). Everything defaults to
/// off: a System with reuse disabled behaves bit-identically to one built
/// before the serving layer existed (test-pinned).
struct ReuseOptions {
  /// Cross-query shared hash-table builds: content-keyed read-only replica
  /// sets with single-flight build deduplication (see HtRegistry).
  bool shared_builds = false;
  /// Cross-query result cache keyed by canonical QuerySpec + table mutation
  /// epochs (see ResultCache / QueryScheduler).
  bool result_cache = false;
  /// LRU capacity of the result cache in row bytes.
  uint64_t result_cache_bytes = 64ull << 20;

  /// Environment knobs: HETEX_SHARED_BUILDS=1 enables shared builds,
  /// HETEX_RESULT_CACHE_MB=N (N > 0) enables the result cache with an N MiB
  /// byte cap. Both absent/0 = everything off.
  static ReuseOptions FromEnv();
};

/// \brief Bounded cross-query result cache: canonical key -> result rows.
///
/// Keys embed the canonicalized QuerySpec plus the mutation epoch of every
/// table the query reads, so a table mutation changes the key and the stale
/// entry simply ages out of the LRU — invalidation without a scan. Entries
/// are charged by row bytes against `max_bytes`; insertion evicts
/// least-recently-used entries until the new entry fits (an entry larger than
/// the whole cache is never admitted). Thread-safe.
class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  explicit ResultCache(uint64_t max_bytes) : max_bytes_(max_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// True on hit; copies the cached rows into `*rows` and refreshes recency.
  bool Lookup(const std::string& key, std::vector<std::vector<int64_t>>* rows);

  /// Caches `rows` under `key`. A key already present just refreshes recency
  /// (concurrent identical queries race to insert the same rows).
  void Insert(const std::string& key,
              const std::vector<std::vector<int64_t>>& rows);

  Stats stats() const;
  uint64_t bytes() const;
  uint64_t max_bytes() const { return max_bytes_; }
  int entries() const;

 private:
  struct Entry {
    std::vector<std::vector<int64_t>> rows;
    uint64_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  static uint64_t RowBytes(const std::vector<std::vector<int64_t>>& rows);

  const uint64_t max_bytes_;
  mutable std::mutex mu_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  uint64_t bytes_ = 0;
  Stats stats_;
};

}  // namespace hetex::core

#endif  // HETEX_CORE_RESULT_CACHE_H_
