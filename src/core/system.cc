#include "core/system.h"

namespace hetex::core {

System::System() : System(Options{}) {}

System::System(Options options)
    : topology_(options.topology),
      fault_(options.faults),
      memory_(topology_),
      blocks_(topology_, options.blocks),
      reuse_(options.reuse),
      tier_policy_(options.tier_policy) {
  blocks_.set_fault_injector(&fault_);
  if (reuse_.result_cache) {
    result_cache_ = std::make_unique<ResultCache>(reuse_.result_cache_bytes);
  }
  dma_ = std::make_unique<sim::DmaEngine>(&topology_);
  for (int g = 0; g < topology_.num_gpus(); ++g) {
    gpus_.push_back(
        std::make_unique<sim::GpuDevice>(topology_.gpu(g), &topology_.cost_model()));
  }
  if (options.codegen.enabled) {
    kernel_cache_ = std::make_unique<jit::KernelCache>(options.codegen);
    kernel_cache_->set_fault_injector(&fault_);
  }
}

std::unique_ptr<jit::DeviceProvider> System::MakeProvider(sim::DeviceId device) {
  std::unique_ptr<jit::DeviceProvider> provider;
  if (device.is_cpu()) {
    provider = std::make_unique<jit::CpuProvider>(device.index, &topology_,
                                                  &memory_, &blocks_);
  } else {
    provider = std::make_unique<jit::GpuProvider>(gpus_.at(device.index).get(),
                                                  &topology_, &memory_, &blocks_);
  }
  provider->set_tier_policy(tier_policy_);
  provider->set_kernel_cache(kernel_cache_.get());
  provider->set_fault_injector(&fault_);
  return provider;
}

std::vector<int> System::AvailableGpusAt(sim::VTime t,
                                         const std::vector<int>& exclude) const {
  std::vector<int> out;
  for (int g = 0; g < topology_.num_gpus(); ++g) {
    bool excluded = false;
    for (int e : exclude) excluded = excluded || e == g;
    if (!excluded && fault_.GpuAvailableAt(g, t)) out.push_back(g);
  }
  return out;
}

std::vector<sim::MemNodeId> System::HostNodes() const {
  std::vector<sim::MemNodeId> nodes;
  for (int s = 0; s < topology_.num_sockets(); ++s) {
    nodes.push_back(topology_.socket(s).mem);
  }
  return nodes;
}

std::vector<sim::MemNodeId> System::GpuNodes() const {
  std::vector<sim::MemNodeId> nodes;
  for (int g = 0; g < topology_.num_gpus(); ++g) {
    nodes.push_back(topology_.gpu(g).mem);
  }
  return nodes;
}

}  // namespace hetex::core
