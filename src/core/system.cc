#include "core/system.h"

namespace hetex::core {

System::System(Options options)
    : topology_(options.topology),
      memory_(topology_),
      blocks_(topology_, options.blocks) {
  dma_ = std::make_unique<sim::DmaEngine>(&topology_);
  for (int g = 0; g < topology_.num_gpus(); ++g) {
    gpus_.push_back(
        std::make_unique<sim::GpuDevice>(topology_.gpu(g), &topology_.cost_model()));
  }
}

std::unique_ptr<jit::DeviceProvider> System::MakeProvider(sim::DeviceId device) {
  if (device.is_cpu()) {
    return std::make_unique<jit::CpuProvider>(device.index, &topology_, &memory_,
                                              &blocks_);
  }
  return std::make_unique<jit::GpuProvider>(gpus_.at(device.index).get(), &topology_,
                                            &memory_, &blocks_);
}

std::vector<sim::MemNodeId> System::HostNodes() const {
  std::vector<sim::MemNodeId> nodes;
  for (int s = 0; s < topology_.num_sockets(); ++s) {
    nodes.push_back(topology_.socket(s).mem);
  }
  return nodes;
}

std::vector<sim::MemNodeId> System::GpuNodes() const {
  std::vector<sim::MemNodeId> nodes;
  for (int g = 0; g < topology_.num_gpus(); ++g) {
    nodes.push_back(topology_.gpu(g).mem);
  }
  return nodes;
}

}  // namespace hetex::core
