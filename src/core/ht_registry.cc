#include "core/ht_registry.h"

#include <limits>

#include "common/logging.h"

namespace hetex::core {

namespace {
constexpr int kIntMin = std::numeric_limits<int>::min();
}  // namespace

jit::JoinHashTable* HtRegistry::Create(uint64_t query, int join_id,
                                       sim::DeviceId unit,
                                       memory::MemoryManager* mm,
                                       uint64_t capacity, int payload_width) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{query, join_id, UnitOf(unit)};
  HETEX_CHECK(tables_.find(key) == tables_.end())
      << "duplicate hash table for query " << query << " join " << join_id;
  auto ht = std::make_unique<jit::JoinHashTable>(mm, capacity, payload_width);
  jit::JoinHashTable* raw = ht.get();
  tables_[key] = std::move(ht);
  return raw;
}

jit::JoinHashTable* HtRegistry::Get(uint64_t query, int join_id,
                                    sim::DeviceId unit) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Key{query, join_id, UnitOf(unit)});
  HETEX_CHECK(it != tables_.end())
      << "no hash table for query " << query << " join " << join_id
      << " on unit " << unit.ToString();
  return it->second.get();
}

void HtRegistry::DropQuery(uint64_t query) {
  std::lock_guard<std::mutex> lock(mu_);
  // Keys order by query first: erase the contiguous [ (query,min), (query+1,min) )
  // range.
  tables_.erase(tables_.lower_bound(Key{query, kIntMin, kIntMin}),
                tables_.lower_bound(Key{query + 1, kIntMin, kIntMin}));
  build_done_.erase(query);
}

uint64_t HtRegistry::TotalHtBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [key, ht] : tables_) total += ht->bytes();
  return total;
}

int HtRegistry::NumTables(uint64_t query) const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (auto it = tables_.lower_bound(Key{query, kIntMin, kIntMin});
       it != tables_.end() && std::get<0>(it->first) == query; ++it) {
    ++n;
  }
  return n;
}

}  // namespace hetex::core
