#include "core/ht_registry.h"

#include <chrono>
#include <limits>
#include <set>

#include "common/logging.h"

namespace hetex::core {

namespace {
constexpr int kIntMin = std::numeric_limits<int>::min();
}  // namespace

jit::JoinHashTable* HtRegistry::Create(uint64_t query, int join_id,
                                       sim::DeviceId unit,
                                       memory::MemoryManager* mm,
                                       uint64_t capacity, int payload_width) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{query, join_id, UnitOf(unit)};
  HETEX_CHECK(tables_.find(key) == tables_.end())
      << "duplicate hash table for query " << query << " join " << join_id;
  auto ht = std::make_shared<jit::JoinHashTable>(mm, capacity, payload_width);
  jit::JoinHashTable* raw = ht.get();
  tables_[key] = std::move(ht);
  return raw;
}

jit::JoinHashTable* HtRegistry::Get(uint64_t query, int join_id,
                                    sim::DeviceId unit) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(Key{query, join_id, UnitOf(unit)});
  HETEX_CHECK(it != tables_.end())
      << "no hash table for query " << query << " join " << join_id
      << " on unit " << unit.ToString();
  return it->second.get();
}

void HtRegistry::DropQuery(uint64_t query) {
  std::lock_guard<std::mutex> lock(mu_);
  // Keys order by query first: erase the contiguous [ (query,min), (query+1,min) )
  // range. Aliases of shared replicas only drop a reference — the replica set
  // registered under its content key stays live for future attachers.
  tables_.erase(tables_.lower_bound(Key{query, kIntMin, kIntMin}),
                tables_.lower_bound(Key{query + 1, kIntMin, kIntMin}));
  build_done_.erase(query);
}

void HtRegistry::EvictStaleLocked(const std::string& table, uint64_t epoch) {
  if (table.empty()) return;
  for (auto it = shared_.begin(); it != shared_.end();) {
    const SharedEntry& entry = it->second;
    if (entry.table == table && entry.epoch != epoch &&
        entry.state != SharedEntry::State::kBuilding) {
      // Queries still probing aliases of these replicas hold them via their
      // namespaced shared_ptrs in tables_; only the registry's reuse handle
      // drops here.
      it = shared_.erase(it);
    } else {
      ++it;
    }
  }
}

SharedBuildLease HtRegistry::AcquireShared(const std::string& content_key,
                                           uint64_t query,
                                           const QueryControl* control,
                                           const std::string& table,
                                           uint64_t mutation_epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = shared_.find(content_key);
    if (it == shared_.end()) {
      // First claim of a new-generation key: the table's stale generations
      // (older mutation epochs, unreachable by any future key) retire now.
      EvictStaleLocked(table, mutation_epoch);
      SharedEntry& entry = shared_[content_key];
      entry.state = SharedEntry::State::kBuilding;
      entry.builder = query;
      entry.table = table;
      entry.epoch = mutation_epoch;
      ++shared_stats_.builds;
      return SharedBuildLease{SharedBuildLease::Role::kBuild, 0};
    }
    SharedEntry& entry = it->second;
    switch (entry.state) {
      case SharedEntry::State::kReady:
        ++shared_stats_.attaches;
        return SharedBuildLease{SharedBuildLease::Role::kAttach, entry.ready_at};
      case SharedEntry::State::kFailed:
        // Failover: this waiter takes over the build role; the entry's old
        // (empty) replica set is discarded with the failed attempt.
        entry.state = SharedEntry::State::kBuilding;
        entry.builder = query;
        entry.replicas.clear();
        ++shared_stats_.builds;
        ++shared_stats_.failovers;
        return SharedBuildLease{SharedBuildLease::Role::kBuild, 0};
      case SharedEntry::State::kBuilding:
        if (entry.builder == query) {
          // A query cannot wait for its own in-flight build (two joins of one
          // query sharing a content key): fall back to a private build.
          return SharedBuildLease{SharedBuildLease::Role::kPrivate, 0};
        }
        break;
    }
    if (control != nullptr &&
        (control->cancelled.load(std::memory_order_relaxed) ||
         control->deadline_hit.load(std::memory_order_relaxed))) {
      // A dead query must not keep holding its admission slot against another
      // query's in-flight build: deadline expiry bails out like cancellation.
      return SharedBuildLease{SharedBuildLease::Role::kCancelled, 0};
    }
    // Bounded wait so a cancelled waiter re-checks its control flags even when
    // no publish/fail notification arrives.
    shared_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void HtRegistry::PublishShared(const std::string& content_key, uint64_t query,
                               int join_id, sim::VTime ready_at) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shared_.find(content_key);
    HETEX_CHECK(it != shared_.end() &&
                it->second.state == SharedEntry::State::kBuilding &&
                it->second.builder == query)
        << "publish without the build role for key " << content_key;
    SharedEntry& entry = it->second;
    for (auto t = tables_.lower_bound(Key{query, join_id, kIntMin});
         t != tables_.end() && std::get<0>(t->first) == query &&
         std::get<1>(t->first) == join_id;
         ++t) {
      entry.replicas[std::get<2>(t->first)] = t->second;
    }
    HETEX_CHECK(!entry.replicas.empty())
        << "publish with no built replicas for key " << content_key;
    entry.ready_at = ready_at;
    entry.state = SharedEntry::State::kReady;
  }
  shared_cv_.notify_all();
}

void HtRegistry::FailShared(const std::string& content_key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = shared_.find(content_key);
    HETEX_CHECK(it != shared_.end() &&
                it->second.state == SharedEntry::State::kBuilding)
        << "fail without an in-flight build for key " << content_key;
    it->second.state = SharedEntry::State::kFailed;
    it->second.replicas.clear();
  }
  shared_cv_.notify_all();
}

int HtRegistry::AttachShared(const std::string& content_key, uint64_t query,
                             int join_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shared_.find(content_key);
  HETEX_CHECK(it != shared_.end() &&
              it->second.state == SharedEntry::State::kReady)
      << "attach to a non-ready shared build for key " << content_key;
  int aliased = 0;
  for (const auto& [unit, ht] : it->second.replicas) {
    const Key key{query, join_id, unit};
    HETEX_CHECK(tables_.find(key) == tables_.end())
        << "attach collides with query " << query << " join " << join_id;
    tables_[key] = ht;
    ++aliased;
  }
  return aliased;
}

HtRegistry::SharedStats HtRegistry::shared_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shared_stats_;
}

int HtRegistry::NumSharedEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(shared_.size());
}

uint64_t HtRegistry::TotalHtBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  std::set<const jit::JoinHashTable*> seen;
  for (const auto& [key, ht] : tables_) {
    if (seen.insert(ht.get()).second) total += ht->bytes();
  }
  for (const auto& [key, entry] : shared_) {
    for (const auto& [unit, ht] : entry.replicas) {
      if (seen.insert(ht.get()).second) total += ht->bytes();
    }
  }
  return total;
}

int HtRegistry::NumTables(uint64_t query) const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (auto it = tables_.lower_bound(Key{query, kIntMin, kIntMin});
       it != tables_.end() && std::get<0>(it->first) == query; ++it) {
    ++n;
  }
  return n;
}

}  // namespace hetex::core
