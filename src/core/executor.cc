#include "core/executor.h"

#include <algorithm>

#include "common/timer.h"
#include "core/compiler.h"
#include "core/graph_builder.h"
#include "core/scheduler.h"

namespace hetex::core {

QueryExecutor::QueryExecutor(System* system) : system_(system) {}

QueryExecutor::~QueryExecutor() = default;

QueryResult QueryExecutor::Execute(const plan::QuerySpec& spec) {
  return ExecuteOptimized(spec, plan::ExecPolicy{});
}

QueryResult QueryExecutor::Execute(const plan::QuerySpec& spec,
                                   const plan::ExecPolicy& policy) {
  // A GPU-placed policy on a no-GPU topology is a named user error, not a
  // lowering abort: surface it on the result before BuildHetPlan would trip
  // its layout invariants.
  if (Status st = plan::ValidatePolicyForTopology(policy, system_->topology());
      !st.ok()) {
    QueryResult out;
    out.status = std::move(st);
    return out;
  }
  return ExecutePlan(spec,
                     plan::BuildHetPlan(spec, policy, system_->topology()));
}

Status QueryExecutor::Optimize(const plan::QuerySpec& spec,
                               const plan::ExecPolicy& base,
                               plan::OptimizeResult* out) const {
  // An idle arrival: every link's backlog beyond the horizon is zero.
  return OptimizeAt(spec, base, system_->VirtualHorizon(), out);
}

Status QueryExecutor::OptimizeAt(const plan::QuerySpec& spec,
                                 const plan::ExecPolicy& base, sim::VTime epoch,
                                 plan::OptimizeResult* out,
                                 const std::vector<int>* exclude_gpus) const {
  plan::PlanCoster::Options opts;
  opts.pack_block_rows = system_->blocks().options().block_bytes / 8;
  // Device health: only restrict the candidate space when the fault plane can
  // actually change it — with the injector disabled and no exclusions the
  // optimization is byte-identical to the pre-fault-plane path.
  if (system_->fault().enabled() ||
      (exclude_gpus != nullptr && !exclude_gpus->empty())) {
    opts.available_gpus = system_->AvailableGpusAt(
        epoch, exclude_gpus != nullptr ? *exclude_gpus : std::vector<int>{});
  }
  // Load signal: work already queued on each interconnect link — PCIe, GPU
  // peer and inter-socket — past this session's arrival. In-flight queries'
  // transfers serialize ahead of ours, so the coster charges them as a start
  // offset on the link occupancy bound — for DMA mem-moves and UVA kernel
  // streams alike. A no-GPU topology simply has no PCIe/peer entries.
  const sim::Topology& topo = system_->topology();
  opts.link_backlog.resize(topo.num_pcie_links());
  for (int l = 0; l < topo.num_pcie_links(); ++l) {
    opts.link_backlog[l] = std::max(0.0, topo.pcie_link(l).free_at() - epoch);
  }
  opts.peer_link_backlog.resize(topo.num_peer_links());
  for (int l = 0; l < topo.num_peer_links(); ++l) {
    opts.peer_link_backlog[l] =
        std::max(0.0, topo.peer_link(l).free_at() - epoch);
  }
  if (topo.has_inter_socket_link()) {
    opts.inter_socket_backlog =
        std::max(0.0, topo.inter_socket_link().free_at() - epoch);
  }
  // CPU load signal: workers whose execution-phase intervals overlap this
  // session's epoch on each socket's DRAM timeline. The runtime divides every
  // socket's aggregate across intervals overlapping in virtual time, so
  // candidates leaning on a crowded socket cost more.
  opts.socket_backlog_workers.resize(topo.num_sockets());
  for (int s = 0; s < topo.num_sockets(); ++s) {
    opts.socket_backlog_workers[s] = topo.socket_dram(s).workers_overlapping(epoch);
  }
  return plan::Optimize(spec, base, system_->catalog(), system_->topology(),
                        out, opts);
}

QueryResult QueryExecutor::ExecuteOptimized(const plan::QuerySpec& spec,
                                            const plan::ExecPolicy& base,
                                            plan::OptimizeResult* explain) {
  plan::OptimizeResult local;
  plan::OptimizeResult* result = explain != nullptr ? explain : &local;
  QueryResult out;
  out.status = Optimize(spec, base, result);
  if (!out.status.ok()) return out;
  return ExecutePlan(spec, result->best().plan);
}

std::string QueryExecutor::Explain(const plan::QuerySpec& spec,
                                   const plan::ExecPolicy& base) const {
  plan::OptimizeResult result;
  const Status st = Optimize(spec, base, &result);
  if (!st.ok()) return st.ToString() + "\n";
  return result.ToString();
}

QueryResult QueryExecutor::ExecutePlan(const plan::QuerySpec& spec,
                                       const plan::HetPlan& plan) {
  // Solo session: a fresh id and an epoch past every shared-resource backlog,
  // so the query sees an idle server (the session-scoped equivalent of the old
  // rewind-all-clocks reset — but safe with other queries in flight).
  const QuerySession session{system_->NextQueryId(), system_->VirtualHorizon()};
  return ExecutePlan(spec, plan, session);
}

QueryResult QueryExecutor::ExecutePlan(const plan::QuerySpec& spec,
                                       const plan::HetPlan& plan,
                                       const QuerySession& session) {
  Timer timer;
  QueryResult result;
  result.query_id = session.query_id;

  // Every plan — heuristic or hand-mutated — passes the §3.3 converter rules
  // before it is allowed to touch the runtime.
  result.status = plan::ValidateHetPlan(plan);
  if (!result.status.ok()) return result;

  GraphBuilder builder(system_, &plan, &session);
  result.status = builder.Analyze();
  if (!result.status.ok()) return result;

  QueryCompiler compiler(spec, system_->catalog(), system_->cost_model());
  result.status = builder.Run(&compiler, &result);
  result.wall_seconds = timer.ElapsedSeconds();

  system_->blocks().FlushReleases();
  return result;
}

QueryScheduler& QueryExecutor::scheduler() {
  std::lock_guard<std::mutex> lock(scheduler_mu_);
  if (scheduler_ == nullptr) {
    scheduler_ = std::make_unique<QueryScheduler>(system_);
  }
  return *scheduler_;
}

QueryHandle QueryExecutor::Submit(const plan::QuerySpec& spec) {
  return scheduler().Submit(spec);
}

QueryHandle QueryExecutor::Submit(const plan::QuerySpec& spec,
                                  const plan::ExecPolicy& policy) {
  SubmitOptions opts;
  opts.policy = policy;
  return scheduler().Submit(spec, std::move(opts));
}

QueryResult QueryExecutor::Wait(QueryHandle handle) {
  return scheduler().Wait(handle);
}

Status QueryExecutor::Cancel(QueryHandle handle) {
  return scheduler().Cancel(handle);
}

}  // namespace hetex::core
