#include "core/executor.h"

#include "common/timer.h"
#include "core/compiler.h"
#include "core/graph_builder.h"

namespace hetex::core {

QueryResult QueryExecutor::Execute(const plan::QuerySpec& spec,
                                   const plan::ExecPolicy& policy) {
  return ExecutePlan(spec,
                     plan::BuildHetPlan(spec, policy, system_->topology()));
}

QueryResult QueryExecutor::ExecutePlan(const plan::QuerySpec& spec,
                                       const plan::HetPlan& plan) {
  Timer timer;
  QueryResult result;

  // Each query runs on a fresh virtual timeline (one query at a time).
  system_->ResetVirtualTime();

  // Every plan — heuristic or hand-mutated — passes the §3.3 converter rules
  // before it is allowed to touch the runtime.
  result.status = plan::ValidateHetPlan(plan);
  if (!result.status.ok()) return result;

  GraphBuilder builder(system_, &plan);
  result.status = builder.Analyze();
  if (!result.status.ok()) return result;

  QueryCompiler compiler(spec, system_->catalog(), system_->cost_model());
  result.status = builder.Run(&compiler, &result);
  result.wall_seconds = timer.ElapsedSeconds();

  system_->blocks().FlushReleases();
  return result;
}

}  // namespace hetex::core
