#include "core/executor.h"

#include <memory>

#include "common/logging.h"
#include "common/timer.h"
#include "core/compiler.h"
#include "core/processor.h"
#include "core/runtime.h"

namespace hetex::core {

namespace {

/// Maps a pipeline's input schema to table column indices (segmenter scan order).
std::vector<int> ScanIndices(const storage::Table& table,
                             const std::vector<ColSlot>& input_cols) {
  std::vector<int> indices;
  indices.reserve(input_cols.size());
  for (const auto& slot : input_cols) {
    indices.push_back(table.ColumnIndex(slot.name));
  }
  return indices;
}

ProcessorFactory FactoryFor(const StageConfig* cfg) {
  return [cfg](WorkerInstance&) { return MakeVmProcessor(cfg); };
}

}  // namespace

QueryResult QueryExecutor::Execute(const plan::QuerySpec& spec,
                                   const plan::ExecPolicy& policy) {
  Timer timer;
  QueryResult result;
  sim::Topology& topo = system_->topology();
  const sim::CostModel& cm = topo.cost_model();

  // Each query runs on a fresh virtual timeline (one query at a time).
  system_->ResetVirtualTime();

  const plan::Layout layout = plan::ComputeLayout(policy, topo);
  const bool bare = !policy.use_hetexchange;
  const bool bare_gpu = bare && layout.probe_instances[0].is_gpu();

  const storage::Table* fact = system_->catalog().Get(spec.fact_table);
  HETEX_CHECK(fact != nullptr && fact->placed())
      << "fact table missing/unplaced: " << spec.fact_table;

  QueryCompiler compiler(spec, system_->catalog(), cm);
  HtRegistry hts;
  const sim::VTime init_clock =
      layout.routers_present ? cm.router_init_latency : 0.0;

  Edge::Options default_edge;
  default_edge.control_cost = bare ? 0.0 : cm.router_control_cost;

  // ------------------------------------------------------------------ builds
  {
    struct BuildGraph {
      std::unique_ptr<StageConfig> cfg;
      std::unique_ptr<WorkerGroup> group;
      std::unique_ptr<Edge> edge;
      std::unique_ptr<SourceDriver> source;
    };
    std::vector<BuildGraph> builds;
    for (int j = 0; j < static_cast<int>(spec.joins.size()); ++j) {
      const storage::Table* dim = system_->catalog().Get(spec.joins[j].build_table);
      HETEX_CHECK(dim != nullptr && dim->placed())
          << "dimension table missing/unplaced: " << spec.joins[j].build_table;

      BuildGraph g;
      g.cfg = std::make_unique<StageConfig>();
      g.cfg->role = StageConfig::Role::kBuild;
      g.cfg->pipeline = compiler.CompileBuild(j);
      g.cfg->hts = &hts;
      g.cfg->build_join_id = j;
      g.cfg->build_capacity = compiler.JoinHtCapacity(j);
      g.cfg->build_payload_width = compiler.JoinPayloadWidth(j);
      g.cfg->allow_uva = bare_gpu;
      g.cfg->uva_bw = cm.pcie_bw;
      g.cfg->block_bytes = system_->blocks().options().block_bytes;

      g.group = std::make_unique<WorkerGroup>(
          system_, layout.build_units, FactoryFor(g.cfg.get()), nullptr,
          policy.channel_capacity, init_clock);

      Edge::Options opts = default_edge;
      opts.policy = Edge::Policy::kBroadcast;
      opts.mem_move = !bare_gpu;  // UVA mode addresses host data directly
      g.edge = std::make_unique<Edge>(system_, opts, g.group->instance_ptrs());

      g.source = std::make_unique<SourceDriver>(
          system_, dim, ScanIndices(*dim, g.cfg->pipeline.input_cols),
          policy.block_rows, g.edge.get(), init_clock, cm.segmenter_block_cost);
      builds.push_back(std::move(g));
    }
    for (auto& g : builds) g.group->Start();
    for (auto& g : builds) g.source->Start();
    for (auto& g : builds) g.source->Join();
    for (auto& g : builds) g.group->Join();
    for (auto& g : builds) result.stats.Add(g.group->total_stats());
  }

  const sim::VTime probe_start = sim::MaxT(init_clock, hts.build_done());

  // ------------------------------------------------------------------- probe
  ResultSink sink;

  StageConfig gather_cfg;
  gather_cfg.role = StageConfig::Role::kGather;
  gather_cfg.pipeline = compiler.CompileGather();
  gather_cfg.hts = &hts;
  gather_cfg.result = &sink;
  gather_cfg.block_bytes = system_->blocks().options().block_bytes;
  WorkerGroup gather_group(system_, {sim::DeviceId::Cpu(layout.gather_socket)},
                           FactoryFor(&gather_cfg), nullptr,
                           policy.channel_capacity, probe_start);

  Edge::Options partial_opts = default_edge;
  partial_opts.policy = Edge::Policy::kRoundRobin;  // union: single consumer
  partial_opts.mem_move = true;
  partial_opts.crossing_latency = layout.has_gpu ? cm.task_spawn_latency : 0.0;
  Edge partials_edge(system_, partial_opts, gather_group.instance_ptrs());

  StageConfig probe_cfg;
  probe_cfg.role = StageConfig::Role::kProbe;
  probe_cfg.hts = &hts;
  probe_cfg.out = &partials_edge;
  probe_cfg.allow_uva = bare_gpu;
  probe_cfg.uva_bw = cm.pcie_bw;
  probe_cfg.block_bytes = system_->blocks().options().block_bytes;

  // Split plans: stage A (filter + hash-pack) feeds stage B over a hash router.
  std::unique_ptr<StageConfig> filter_cfg;
  CompiledPipeline filter_pipeline;
  if (policy.split_probe_stage) {
    const int buckets = policy.hash_router_buckets > 0
                            ? policy.hash_router_buckets
                            : static_cast<int>(layout.probe_instances.size());
    filter_pipeline = compiler.CompileFilterStage(buckets);
    probe_cfg.pipeline = compiler.CompileProbe(&filter_pipeline.output_cols);
  } else {
    probe_cfg.pipeline = compiler.CompileProbe(nullptr);
  }

  WorkerGroup probe_group(system_, layout.probe_instances, FactoryFor(&probe_cfg),
                          &partials_edge, policy.channel_capacity, probe_start);

  Edge::Options fact_opts = default_edge;
  fact_opts.policy = policy.load_balance && !bare ? Edge::Policy::kLoadBalance
                                                  : Edge::Policy::kRoundRobin;
  fact_opts.mem_move = !bare_gpu;

  std::unique_ptr<Edge> fact_edge;          // feeds the first fact stage
  std::unique_ptr<Edge> hash_edge;          // split mode: stage A -> stage B
  std::unique_ptr<WorkerGroup> filter_group;
  if (policy.split_probe_stage) {
    Edge::Options hash_opts = default_edge;
    hash_opts.policy = Edge::Policy::kHash;
    hash_opts.mem_move = true;
    hash_edge = std::make_unique<Edge>(system_, hash_opts,
                                       probe_group.instance_ptrs());

    filter_cfg = std::make_unique<StageConfig>();
    filter_cfg->role = StageConfig::Role::kFilterStage;
    filter_cfg->pipeline = std::move(filter_pipeline);
    filter_cfg->hts = &hts;
    filter_cfg->out = hash_edge.get();
    filter_cfg->n_buckets = hash_edge->num_consumers();
    filter_cfg->block_bytes = system_->blocks().options().block_bytes;
    filter_group = std::make_unique<WorkerGroup>(
        system_, layout.probe_instances, FactoryFor(filter_cfg.get()),
        hash_edge.get(), policy.channel_capacity, probe_start);
    fact_edge =
        std::make_unique<Edge>(system_, fact_opts, filter_group->instance_ptrs());
  } else {
    fact_edge =
        std::make_unique<Edge>(system_, fact_opts, probe_group.instance_ptrs());
  }

  SourceDriver fact_source(system_, fact,
                           ScanIndices(*fact, policy.split_probe_stage
                                                  ? filter_cfg->pipeline.input_cols
                                                  : probe_cfg.pipeline.input_cols),
                           policy.block_rows, fact_edge.get(), probe_start,
                           cm.segmenter_block_cost);

  gather_group.Start();
  probe_group.Start();
  if (filter_group != nullptr) filter_group->Start();
  fact_source.Start();

  fact_source.Join();
  if (filter_group != nullptr) filter_group->Join();
  probe_group.Join();
  gather_group.Join();

  result.rows = sink.TakeRows();
  result.modeled_seconds = sim::MaxT(sink.done_at(), gather_group.max_end());
  result.wall_seconds = timer.ElapsedSeconds();
  result.stats.Add(probe_group.total_stats());
  if (filter_group != nullptr) result.stats.Add(filter_group->total_stats());
  result.stats.Add(gather_group.total_stats());

  system_->blocks().FlushReleases();
  return result;
}

}  // namespace hetex::core
