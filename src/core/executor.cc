#include "core/executor.h"

#include "common/timer.h"
#include "core/compiler.h"
#include "core/graph_builder.h"

namespace hetex::core {

QueryResult QueryExecutor::Execute(const plan::QuerySpec& spec) {
  return ExecuteOptimized(spec, plan::ExecPolicy{});
}

QueryResult QueryExecutor::Execute(const plan::QuerySpec& spec,
                                   const plan::ExecPolicy& policy) {
  return ExecutePlan(spec,
                     plan::BuildHetPlan(spec, policy, system_->topology()));
}

Status QueryExecutor::Optimize(const plan::QuerySpec& spec,
                               const plan::ExecPolicy& base,
                               plan::OptimizeResult* out) const {
  plan::PlanCoster::Options opts;
  opts.pack_block_rows = system_->blocks().options().block_bytes / 8;
  return plan::Optimize(spec, base, system_->catalog(), system_->topology(),
                        out, opts);
}

QueryResult QueryExecutor::ExecuteOptimized(const plan::QuerySpec& spec,
                                            const plan::ExecPolicy& base,
                                            plan::OptimizeResult* explain) {
  plan::OptimizeResult local;
  plan::OptimizeResult* result = explain != nullptr ? explain : &local;
  QueryResult out;
  out.status = Optimize(spec, base, result);
  if (!out.status.ok()) return out;
  return ExecutePlan(spec, result->best().plan);
}

std::string QueryExecutor::Explain(const plan::QuerySpec& spec,
                                   const plan::ExecPolicy& base) const {
  plan::OptimizeResult result;
  const Status st = Optimize(spec, base, &result);
  if (!st.ok()) return st.ToString() + "\n";
  return result.ToString();
}

QueryResult QueryExecutor::ExecutePlan(const plan::QuerySpec& spec,
                                       const plan::HetPlan& plan) {
  Timer timer;
  QueryResult result;

  // Each query runs on a fresh virtual timeline (one query at a time).
  system_->ResetVirtualTime();

  // Every plan — heuristic or hand-mutated — passes the §3.3 converter rules
  // before it is allowed to touch the runtime.
  result.status = plan::ValidateHetPlan(plan);
  if (!result.status.ok()) return result;

  GraphBuilder builder(system_, &plan);
  result.status = builder.Analyze();
  if (!result.status.ok()) return result;

  QueryCompiler compiler(spec, system_->catalog(), system_->cost_model());
  result.status = builder.Run(&compiler, &result);
  result.wall_seconds = timer.ElapsedSeconds();

  system_->blocks().FlushReleases();
  return result;
}

}  // namespace hetex::core
