#include "core/processor.h"

#include <algorithm>

#include "common/logging.h"
#include "jit/device_provider.h"

namespace hetex::core {

namespace {

/// One open output block set (all output columns) being filled by Emit.
struct PackBucket {
  jit::EmitTarget target;
  std::vector<memory::Block*> blocks;
  int bucket_id = 0;
};

class VmProcessor : public BlockProcessor {
 public:
  explicit VmProcessor(const StageConfig* cfg) : cfg_(cfg) {}

  void Init(WorkerInstance& inst) override;
  void ProcessMsg(WorkerInstance& inst, DataMsg& msg) override;
  void Finish(WorkerInstance& inst) override;

 private:
  bool is_gpu(WorkerInstance& inst) const { return inst.device().is_gpu(); }
  uint64_t BucketCapacityRows() const { return cfg_->block_bytes / 8; }

  /// Installs fresh output blocks into `bucket`. On staging exhaustion (arena
  /// timeout or injected spike) the instance notes the error and the bucket's
  /// targets are re-pointed at a throwaway scratch buffer — a kernel in the
  /// middle of an on_full refill keeps a valid write target and finishes; its
  /// output is discarded by the error drain. Returns false on that path.
  bool InstallFresh(WorkerInstance& inst, PackBucket& bucket);
  void InstallScratch(PackBucket& bucket);
  void ReleaseBucketBlocks(WorkerInstance& inst, PackBucket& bucket);
  /// Moves a filled bucket into pending_ as a DataMsg (ready_at patched later).
  void StashBucket(PackBucket& bucket);
  void PushPending(WorkerInstance& inst, sim::VTime ready_at);
  /// Packs arbitrary rows (partials, group dumps) into blocks and pushes them.
  void EmitRowsDownstream(WorkerInstance& inst,
                          const std::vector<std::vector<int64_t>>& rows,
                          sim::VTime ready_at);

  const StageConfig* cfg_;
  std::shared_ptr<const jit::PipelineProgram> program_;
  std::vector<void*> ht_slots_;
  std::unique_ptr<jit::AggHashTable> agg_ht_;
  int64_t instance_accs_[jit::kMaxLocalAccs] = {};
  std::atomic<int64_t>* shared_accs_ = nullptr;  // GPU device-resident accumulators
  std::vector<std::unique_ptr<PackBucket>> buckets_;
  std::vector<DataMsg> pending_;
  std::unique_ptr<std::byte[]> scratch_;  ///< failed-refill write target
};

void VmProcessor::Init(WorkerInstance& inst) {
  if (cfg_->programs != nullptr) {
    // Cached finalization: the N instances of this span share one compiled
    // program per device kind (finalized exactly once).
    auto r = cfg_->programs->GetOrCompile(inst.provider(), cfg_->pipeline);
    if (!r.ok()) {
      // Validation rejections (e.g. a statically-zero divisor) surface as
      // QueryResult::status: the instance drains its input without executing.
      inst.NoteError(r.status());
      return;
    }
    program_ = std::move(r.value());
  } else {
    auto local =
        std::make_shared<jit::PipelineProgram>(cfg_->pipeline.program);
    local->input_widths.clear();
    local->input_widths.reserve(cfg_->pipeline.input_cols.size());
    for (const ColSlot& slot : cfg_->pipeline.input_cols) {
      local->input_widths.push_back(slot.width);
    }
    local->n_input_cols = static_cast<int>(cfg_->pipeline.input_cols.size());
    Status st = inst.provider().ConvertToMachineCode(local.get());
    if (!st.ok()) {
      inst.NoteError(std::move(st));
      return;
    }
    program_ = std::move(local);
  }

  const auto& pipeline = cfg_->pipeline;
  size_t n_slots = pipeline.ht_join_slots.size();
  if (pipeline.agg_ht_slot >= 0) {
    n_slots = std::max(n_slots, static_cast<size_t>(pipeline.agg_ht_slot) + 1);
  }
  ht_slots_.assign(n_slots, nullptr);

  if (cfg_->role == StageConfig::Role::kBuild) {
    jit::JoinHashTable* ht = cfg_->hts->Create(
        cfg_->query_id, cfg_->build_join_id, inst.device(),
        &inst.provider().memory_manager(), cfg_->build_capacity,
        cfg_->build_payload_width);
    ht_slots_[0] = ht;
  } else {
    for (size_t i = 0; i < pipeline.ht_join_slots.size(); ++i) {
      ht_slots_[i] = cfg_->hts->Get(cfg_->query_id, pipeline.ht_join_slots[i],
                                    inst.device());
    }
  }

  if (pipeline.agg_ht_slot >= 0) {
    agg_ht_ = std::make_unique<jit::AggHashTable>(
        &inst.provider().memory_manager(), pipeline.groups_capacity,
        pipeline.n_group_vals, pipeline.group_funcs);
    ht_slots_[pipeline.agg_ht_slot] = agg_ht_.get();
  }

  if (program_->n_local_accs > 0) {
    if (is_gpu(inst)) {
      shared_accs_ = static_cast<std::atomic<int64_t>*>(inst.provider().AllocStateVar(
          program_->n_local_accs * sizeof(int64_t)));
      for (int i = 0; i < program_->n_local_accs; ++i) {
        shared_accs_[i].store(jit::AggIdentity(program_->local_acc_funcs[i]),
                              std::memory_order_relaxed);
      }
    } else {
      for (int i = 0; i < program_->n_local_accs; ++i) {
        instance_accs_[i] = jit::AggIdentity(program_->local_acc_funcs[i]);
      }
    }
  }

  if (cfg_->allow_uva && is_gpu(inst)) {
    // Bare-GPU (UVA) kernels stream their bytes over the PCIe link as real,
    // epoch-anchored occupancy (see GpuProvider::set_uva) instead of a
    // private stream-bandwidth discount.
    static_cast<jit::GpuProvider&>(inst.provider()).set_uva(true);
  }
}

bool VmProcessor::InstallFresh(WorkerInstance& inst, PackBucket& bucket) {
  bucket.blocks.clear();
  bucket.target.cols.clear();
  for (const auto& col : cfg_->pipeline.output_cols) {
    memory::Block* block = inst.provider().GetBuffer();
    if (block == nullptr) {
      for (memory::Block* b : bucket.blocks) inst.provider().ReleaseBuffer(b);
      bucket.blocks.clear();
      inst.NoteError(Status::ResourceExhausted(
          "staging-block acquisition failed while packing output of pipeline '" +
          cfg_->pipeline.program.label + "'"));
      InstallScratch(bucket);
      return false;
    }
    bucket.blocks.push_back(block);
    bucket.target.cols.push_back({block->data, col.width});
  }
  bucket.target.capacity = BucketCapacityRows();
  bucket.target.ResetCursor();
  return true;
}

void VmProcessor::InstallScratch(PackBucket& bucket) {
  if (scratch_ == nullptr) scratch_ = std::make_unique<std::byte[]>(cfg_->block_bytes);
  bucket.target.cols.clear();
  for (const auto& col : cfg_->pipeline.output_cols) {
    // Every column aliases the one scratch allocation: the data written here
    // is never read (the instance is in error drain), it only has to be a
    // valid in-bounds write target for an already-running kernel.
    bucket.target.cols.push_back({scratch_.get(), col.width});
  }
  bucket.target.capacity = BucketCapacityRows();
  bucket.target.ResetCursor();
}

void VmProcessor::ReleaseBucketBlocks(WorkerInstance& inst, PackBucket& bucket) {
  for (memory::Block* b : bucket.blocks) inst.provider().ReleaseBuffer(b);
  bucket.blocks.clear();
}

void VmProcessor::StashBucket(PackBucket& bucket) {
  DataMsg msg;
  msg.rows = bucket.target.rows();
  msg.tag = static_cast<uint64_t>(bucket.bucket_id);
  for (size_t i = 0; i < bucket.blocks.size(); ++i) {
    memory::BlockHandle h;
    h.block = bucket.blocks[i];
    h.rows = msg.rows;
    h.bytes = msg.rows * cfg_->pipeline.output_cols[i].width;
    msg.cols.push_back(h);
  }
  bucket.blocks.clear();
  pending_.push_back(std::move(msg));
}

void VmProcessor::PushPending(WorkerInstance& inst, sim::VTime ready_at) {
  for (auto& msg : pending_) {
    msg.ready_at = ready_at;
    for (auto& h : msg.cols) h.ready_at = ready_at;
    cfg_->out->Push(std::move(msg), inst.node());
  }
  pending_.clear();
}

void VmProcessor::ProcessMsg(WorkerInstance& inst, DataMsg& msg) {
  if (!inst.error().ok()) return;  // already failed: drain without executing
  const auto& pipeline = cfg_->pipeline;
  HETEX_CHECK(msg.cols.size() == pipeline.input_cols.size())
      << "schema mismatch in " << program_->label << ": got " << msg.cols.size()
      << " cols, want " << pipeline.input_cols.size();

  std::vector<jit::ColumnBinding> bindings(msg.cols.size());
  for (size_t i = 0; i < msg.cols.size(); ++i) {
    bindings[i] = {msg.cols[i].data(), pipeline.input_cols[i].width};
    if (is_gpu(inst) && !cfg_->allow_uva) {
      HETEX_CHECK(msg.cols[i].node() == inst.node())
          << "GPU pipeline " << program_->label
          << " received non-local block (mem-move missing?)";
    }
  }

  const bool has_emit = !pipeline.output_cols.empty();
  std::vector<jit::EmitTarget*> targets;
  const bool gpu = is_gpu(inst);
  if (has_emit) {
    if (gpu) {
      // Fresh, pre-sized output per kernel launch: GPU threads append with an
      // atomic cursor; blocks are forwarded after the kernel completes.
      HETEX_CHECK(msg.rows <= BucketCapacityRows())
          << "input block larger than GPU output capacity";
      buckets_.clear();
      for (int bkt = 0; bkt < cfg_->n_buckets; ++bkt) {
        auto bucket = std::make_unique<PackBucket>();
        bucket->bucket_id = bkt;
        bucket->target.atomic_append = true;
        InstallFresh(inst, *bucket);
        buckets_.push_back(std::move(bucket));
      }
    } else if (buckets_.empty()) {
      for (int bkt = 0; bkt < cfg_->n_buckets; ++bkt) {
        auto bucket = std::make_unique<PackBucket>();
        bucket->bucket_id = bkt;
        PackBucket* raw = bucket.get();
        bucket->target.on_full = [this, &inst, raw] {
          StashBucket(*raw);
          InstallFresh(inst, *raw);
        };
        InstallFresh(inst, *bucket);
        buckets_.push_back(std::move(bucket));
      }
    }
    if (!inst.error().ok()) return;  // bucket install failed: drain from here on
    targets.reserve(buckets_.size());
    for (auto& bucket : buckets_) targets.push_back(&bucket->target);
  }

  jit::ExecRequest req;
  req.cols = bindings.data();
  req.n_cols = static_cast<int>(bindings.size());
  req.rows = msg.rows;
  req.emit = targets.empty() ? nullptr : targets[0];
  req.emit_targets = targets.empty() ? nullptr : targets.data();
  req.n_emit_targets = static_cast<int>(targets.size());
  req.ht_slots = ht_slots_.data();
  req.instance_accs = instance_accs_;
  req.shared_accs = shared_accs_;
  req.earliest = sim::MaxT(inst.clock(), msg.ReadyAt());

  jit::ExecResult result = inst.provider().Execute(*program_, req);
  inst.stats().Add(result.stats);
  inst.set_clock(result.end);
  if (!result.status.ok()) {
    // Runtime failure (e.g. division by zero): record it and stop doing work;
    // remaining input is drained so the pipeline still terminates cleanly.
    inst.NoteError(std::move(result.status));
    return;
  }

  if (has_emit && gpu) {
    for (auto& bucket : buckets_) {
      if (bucket->target.rows() > 0) {
        StashBucket(*bucket);
      } else {
        ReleaseBucketBlocks(inst, *bucket);
      }
    }
    buckets_.clear();
  }
  PushPending(inst, inst.clock());
}

void VmProcessor::EmitRowsDownstream(WorkerInstance& inst,
                                     const std::vector<std::vector<int64_t>>& rows,
                                     sim::VTime ready_at) {
  if (rows.empty()) return;
  const auto schema_width = rows[0].size();
  const uint64_t cap = BucketCapacityRows();
  size_t next = 0;
  while (next < rows.size()) {
    const uint64_t n = std::min<uint64_t>(cap, rows.size() - next);
    DataMsg msg;
    msg.rows = n;
    msg.ready_at = ready_at;
    std::vector<memory::Block*> blocks;
    for (size_t c = 0; c < schema_width; ++c) {
      memory::Block* block = inst.provider().GetBuffer();
      if (block == nullptr) {
        for (memory::Block* b : blocks) inst.provider().ReleaseBuffer(b);
        inst.NoteError(Status::ResourceExhausted(
            "staging-block acquisition failed while emitting partials of "
            "pipeline '" + cfg_->pipeline.program.label + "'"));
        return;
      }
      auto* data = reinterpret_cast<int64_t*>(block->data);
      for (uint64_t r = 0; r < n; ++r) data[r] = rows[next + r][c];
      memory::BlockHandle h;
      h.block = block;
      h.rows = n;
      h.bytes = n * 8;
      h.ready_at = ready_at;
      msg.cols.push_back(h);
      blocks.push_back(block);
    }
    cfg_->out->Push(std::move(msg), inst.node());
    next += n;
  }
}

void VmProcessor::Finish(WorkerInstance& inst) {
  if (!inst.error().ok()) {
    // Failed instance: skip the pipeline-breaker flush (its state is partial),
    // but still run the resource cleanup below.
    if (shared_accs_ != nullptr) {
      inst.provider().FreeStateVar(shared_accs_);
      shared_accs_ = nullptr;
    }
    for (auto& bucket : buckets_) ReleaseBucketBlocks(inst, *bucket);
    buckets_.clear();
    for (auto& msg : pending_) ReleaseMsgBlocks(&inst.system(), msg, inst.node());
    pending_.clear();
    agg_ht_.reset();
    return;
  }
  switch (cfg_->role) {
    case StageConfig::Role::kBuild:
      cfg_->hts->NoteBuildDone(cfg_->query_id, inst.clock());
      break;

    case StageConfig::Role::kFilterStage: {
      // Flush the partially-filled hash-pack blocks.
      for (auto& bucket : buckets_) {
        if (bucket->target.rows() > 0) {
          StashBucket(*bucket);
        } else {
          ReleaseBucketBlocks(inst, *bucket);
        }
      }
      buckets_.clear();
      PushPending(inst, inst.clock());
      break;
    }

    case StageConfig::Role::kProbe: {
      // Pipeline breaker: ship this instance's partial aggregates downstream
      // (the paper's pipelines 3/8: read local reduction, insert into the
      // gpu2cpu queue / router).
      std::vector<std::vector<int64_t>> partials;
      if (agg_ht_ != nullptr) {
        agg_ht_->ForEach([&](int64_t key, const int64_t* accs) {
          std::vector<int64_t> row;
          row.push_back(key);
          for (int i = 0; i < cfg_->pipeline.n_group_vals; ++i) {
            row.push_back(accs[i]);
          }
          partials.push_back(std::move(row));
        });
      } else if (program_->n_local_accs > 0) {
        std::vector<int64_t> row;
        for (int i = 0; i < program_->n_local_accs; ++i) {
          row.push_back(shared_accs_ != nullptr
                            ? shared_accs_[i].load(std::memory_order_relaxed)
                            : instance_accs_[i]);
        }
        partials.push_back(std::move(row));
      }
      EmitRowsDownstream(inst, partials, inst.clock());
      break;
    }

    case StageConfig::Role::kGather: {
      HETEX_CHECK(cfg_->result != nullptr);
      if (agg_ht_ != nullptr) {
        std::vector<std::vector<int64_t>> rows;
        agg_ht_->ForEach([&](int64_t key, const int64_t* accs) {
          std::vector<int64_t> row;
          row.push_back(key);
          for (int i = 0; i < cfg_->pipeline.n_group_vals; ++i) {
            row.push_back(accs[i]);
          }
          rows.push_back(std::move(row));
        });
        std::sort(rows.begin(), rows.end());
        for (auto& row : rows) cfg_->result->AddRow(std::move(row), inst.clock());
      } else if (program_->n_local_accs > 0) {
        // GPU-placed gathers accumulate into device-resident shared state
        // (same split as the kProbe partials path above).
        std::vector<int64_t> row;
        for (int i = 0; i < program_->n_local_accs; ++i) {
          row.push_back(shared_accs_ != nullptr
                            ? shared_accs_[i].load(std::memory_order_relaxed)
                            : instance_accs_[i]);
        }
        cfg_->result->AddRow(std::move(row), inst.clock());
      }
      break;
    }
  }

  if (shared_accs_ != nullptr) {
    inst.provider().FreeStateVar(shared_accs_);
    shared_accs_ = nullptr;
  }
  // Any never-flushed CPU pack blocks (e.g. zero-output stages) go back.
  for (auto& bucket : buckets_) ReleaseBucketBlocks(inst, *bucket);
  buckets_.clear();
  agg_ht_.reset();
}

}  // namespace

std::unique_ptr<BlockProcessor> MakeVmProcessor(const StageConfig* config) {
  return std::make_unique<VmProcessor>(config);
}

}  // namespace hetex::core
