#ifndef HETEX_CORE_QUERY_CONTROL_H_
#define HETEX_CORE_QUERY_CONTROL_H_

#include <atomic>

#include "common/status.h"
#include "sim/vtime.h"

namespace hetex::core {

/// \brief Cooperative liveness state of one in-flight query, owned by the
/// scheduler task and threaded (by pointer) through the session into every
/// SourceDriver, Edge and WorkerGroup the query instantiates.
///
/// Cancellation and deadlines are cooperative: when either fires, segmenters
/// stop producing, edges drop (and release) in-flight messages, and worker
/// instances note kCancelled / kDeadlineExceeded and drain their channels
/// without executing — the whole graph still joins normally, so every cleanup
/// guard (HT namespace, DRAM registrations, staging blocks) runs exactly as on
/// the success path. The scheduler stamps the authoritative terminal status on
/// the QueryResult; the graph-level checks only stop the query from burning
/// further work.
struct QueryControl {
  std::atomic<bool> cancelled{false};
  /// Session-local virtual-time execution bound (the submit deadline minus the
  /// admission queue wait); negative = no deadline.
  sim::VTime deadline = -1;
  /// Sticky record that some graph component observed the deadline expired —
  /// the scheduler's terminal-stamp signal even when the component (e.g. a
  /// segmenter that simply stopped producing) leaves no error behind.
  mutable std::atomic<bool> deadline_hit{false};

  bool has_deadline() const { return deadline >= 0; }

  /// OK while the query should keep working at session-local time `now`.
  Status CheckLive(sim::VTime now) const {
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled by client");
    }
    if (has_deadline() && now > deadline) {
      deadline_hit.store(true, std::memory_order_relaxed);
      return Status::DeadlineExceeded(
          "query exceeded its virtual-time deadline");
    }
    return Status::OK();
  }
};

}  // namespace hetex::core

#endif  // HETEX_CORE_QUERY_CONTROL_H_
