#ifndef HETEX_CORE_PROGRAM_CACHE_H_
#define HETEX_CORE_PROGRAM_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/compiler.h"
#include "jit/device_provider.h"

namespace hetex::core {

/// \brief Per-device cache of finalized (validated + tier-lowered) pipeline
/// programs, keyed by span signature: program code hash + binding schema.
///
/// The N worker instances of a span all request the same program template; the
/// cache finalizes it once per device kind and hands every instance the same
/// immutable compiled program. Because the cache lives on the System (not the
/// per-query QueryCompiler), repeated ExecutePlan runs of the same query also
/// stop re-finalizing identical programs. Hash collisions are harmless: entries
/// under one hash are compared field-by-field before reuse.
class ProgramCache {
 public:
  struct Counters {
    uint64_t hits = 0;      ///< in-process hits: program already finalized here
    uint64_t misses = 0;    ///< one finalization per miss
    uint64_t disk_hits = 0; ///< misses whose tier-2 kernel loaded from the
                            ///< on-disk kernel cache (zero compiler invocations
                            ///< — the observable restart-reuse signal)
  };

  /// Returns the finalized program for `pipeline` on `provider`'s device kind,
  /// finalizing (ConvertToMachineCode) on first use. Thread-safe.
  Result<std::shared_ptr<const jit::PipelineProgram>> GetOrCompile(
      jit::DeviceProvider& provider, const CompiledPipeline& pipeline);

  /// Hit/miss counters of one device kind (the per-device view plan_explorer
  /// and the parity/bench tooling print).
  Counters counters(sim::DeviceType type) const;

  uint64_t size() const;
  void Clear();

 private:
  struct Entry {
    std::vector<jit::Instr> code;       // template code (pre-finalize identity)
    std::vector<uint32_t> widths;       // binding schema: input column widths
    std::string label;                  // span identity (runtime diagnostics)
    int n_regs = 0;
    int n_local_accs = 0;
    jit::AggFunc funcs[jit::kMaxLocalAccs] = {};
    std::shared_ptr<const jit::PipelineProgram> compiled;
  };

  static uint64_t Signature(const CompiledPipeline& pipeline);
  static bool Matches(const Entry& e, const CompiledPipeline& pipeline);

  mutable std::mutex mu_;
  // (device kind + tier policy, signature) -> entries (same-hash chain).
  std::map<std::pair<int, uint64_t>, std::vector<Entry>> entries_;
  Counters counters_[2];  // indexed by sim::DeviceType
};

}  // namespace hetex::core

#endif  // HETEX_CORE_PROGRAM_CACHE_H_
