#include "core/runtime.h"

#include <algorithm>

#include "common/logging.h"

namespace hetex::core {

WorkerInstance::WorkerInstance(int id, sim::DeviceId device, System* system,
                               size_t channel_capacity, sim::VTime epoch,
                               uint64_t query_id)
    : id_(id),
      device_(device),
      system_(system),
      provider_(system->MakeProvider(device)),
      channel_(channel_capacity) {
  provider_->set_session_epoch(epoch);
  provider_->set_session_id(query_id);
}

Edge::Edge(System* system, Options options, std::vector<WorkerInstance*> consumers)
    : system_(system), options_(options), consumers_(std::move(consumers)) {
  HETEX_CHECK(!consumers_.empty()) << "edge with no consumers";
}

void Edge::CloseProducer() {
  if (producers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    for (WorkerInstance* c : consumers_) c->channel().Close();
  }
}

namespace {

/// Does `dev` need a mem-move to consume a block on `node`? (kRemotePcie counts:
/// the whole point of mem-move is avoiding PCIe-latency element accesses.)
bool NeedsMove(const sim::Topology& topo, sim::DeviceId dev, sim::MemNodeId node) {
  return topo.CanAccess(dev, node) != sim::MemAccess::kLocal;
}

bool MsgNeedsMove(const sim::Topology& topo, sim::DeviceId dev, const DataMsg& msg) {
  for (const auto& h : msg.cols) {
    if (NeedsMove(topo, dev, h.node())) return true;
  }
  return false;
}

void AddRefMsgBlocks(DataMsg& msg) {
  for (auto& h : msg.cols) {
    if (h.block->owner != nullptr) memory::BlockManager::AddRef(h.block);
  }
}

}  // namespace

void ReleaseMsgBlocks(System* system, DataMsg& msg, sim::MemNodeId holder_node) {
  for (auto& h : msg.cols) {
    if (h.block != nullptr && h.block->owner != nullptr) {
      system->blocks().Release(h.block, holder_node);
    }
  }
  msg.cols.clear();
}

DataMsg Edge::MoveToNode(DataMsg msg, sim::MemNodeId target_node,
                         sim::MemNodeId producer_node) {
  const sim::Topology& topo = system_->topology();
  DataMsg out;
  out.rows = msg.rows;
  out.ready_at = msg.ready_at;
  out.tag = msg.tag;

  // First mem-move failure (staging acquisition, injected DMA fault,
  // cancellation). Once set, remaining columns are skipped and the whole
  // message degrades to an error marker on the failure path below.
  Status fail = Status::OK();

  for (auto& h : msg.cols) {
    if (!fail.ok()) break;
    if (h.node() == target_node) {
      // Already local: forward the handle, no transfer (paper §3.2).
      if (h.block->owner != nullptr) memory::BlockManager::AddRef(h.block);
      out.cols.push_back(h);
      continue;
    }
    const bool src_gpu = topo.mem_node(h.node()).is_gpu;
    const bool dst_gpu = topo.mem_node(target_node).is_gpu;

    auto copy_over_link = [&](const memory::BlockHandle& src,
                              sim::MemNodeId dst_node, int link,
                              sim::VTime earliest) {
      memory::BlockHandle moved;
      Status acquire_error = Status::OK();
      memory::Block* dst = system_->blocks().Acquire(
          dst_node, producer_node, &acquire_error,
          options_.control != nullptr ? &options_.control->cancelled : nullptr);
      if (dst == nullptr) {
        fail = std::move(acquire_error);
        return std::make_pair(moved, sim::TransferTicket{});
      }
      HETEX_CHECK(dst->capacity >= src.bytes) << "staging block too small";
      if (sim::FaultInjector& inj = system_->fault(); inj.enabled()) {
        // Fault check precedes the DMA reservation: a failed transfer strands
        // nothing on the shared link timeline.
        Status st = inj.OnDmaTransfer(link);
        if (!st.ok()) {
          system_->blocks().Release(dst, producer_node);
          fail = std::move(st);
          return std::make_pair(moved, sim::TransferTicket{});
        }
      }
      sim::TransferTicket ticket =
          system_->dma().Transfer(src.data(), dst->data, src.bytes, link,
                                  earliest, !src.block->pinned, options_.epoch);
      moved.block = dst;
      moved.bytes = src.bytes;
      moved.rows = src.rows;
      moved.ready_at = ticket.ready_at();
      return std::make_pair(moved, ticket);
    };

    if (!src_gpu && dst_gpu) {
      const int gpu = topo.mem_node(target_node).owner.index;
      auto [moved, ticket] =
          copy_over_link(h, target_node, topo.PcieLinkOf(gpu), msg.ready_at);
      if (!fail.ok()) break;
      out.cols.push_back(moved);
      out.tickets.push_back(ticket);
    } else if (src_gpu && !dst_gpu) {
      const int gpu = topo.mem_node(h.node()).owner.index;
      auto [moved, ticket] =
          copy_over_link(h, target_node, topo.PcieLinkOf(gpu), msg.ready_at);
      if (!fail.ok()) break;
      out.cols.push_back(moved);
      out.tickets.push_back(ticket);
    } else if (src_gpu && dst_gpu) {
      const int src_gpu_id = topo.mem_node(h.node()).owner.index;
      const int dst_gpu_id = topo.mem_node(target_node).owner.index;
      const int peer = topo.PeerLinkOf(src_gpu_id, dst_gpu_id);
      if (peer >= 0) {
        // Direct NVLink-class hop: one reservation on the peer link, no host
        // staging and no pageable penalty (both endpoints are device memory).
        Status acquire_error = Status::OK();
        memory::Block* dst = system_->blocks().Acquire(
            target_node, producer_node, &acquire_error,
            options_.control != nullptr ? &options_.control->cancelled : nullptr);
        if (dst == nullptr) {
          fail = std::move(acquire_error);
          break;
        }
        HETEX_CHECK(dst->capacity >= h.bytes) << "staging block too small";
        if (sim::FaultInjector& inj = system_->fault(); inj.enabled()) {
          // Peer links share the DMA fault plane, namespaced past the PCIe ids.
          Status st = inj.OnDmaTransfer(topo.num_pcie_links() + peer);
          if (!st.ok()) {
            system_->blocks().Release(dst, producer_node);
            fail = std::move(st);
            break;
          }
        }
        sim::TransferTicket ticket = system_->dma().TransferPeer(
            h.data(), dst->data, h.bytes, peer, msg.ready_at, options_.epoch);
        memory::BlockHandle moved;
        moved.block = dst;
        moved.bytes = h.bytes;
        moved.rows = h.rows;
        moved.ready_at = ticket.ready_at();
        out.cols.push_back(moved);
        out.tickets.push_back(ticket);
      } else {
        // No peer link between this pair: stage through the source GPU's host
        // socket over two PCIe hops.
        const sim::MemNodeId host = topo.socket(topo.gpu(src_gpu_id).socket).mem;
        auto [staged, t1] =
            copy_over_link(h, host, topo.PcieLinkOf(src_gpu_id), msg.ready_at);
        if (!fail.ok()) break;
        t1.Wait();  // functional ordering: hop 2 reads the staging buffer
        auto [moved, t2] = copy_over_link(
            staged, target_node, topo.PcieLinkOf(dst_gpu_id), t1.ready_at());
        if (!fail.ok()) {
          system_->blocks().Release(staged.block, producer_node);
          break;
        }
        out.cols.push_back(moved);
        out.tickets.push_back(t2);
        out.release_after_wait.push_back(staged.block);
      }
    } else {
      HETEX_CHECK(false) << "host-to-host moves need no mem-move on this server";
    }
    if (h.block->owner != nullptr) {
      // The DMA still reads the source: hand a reference to the consumer to
      // release once the transfer completed.
      memory::BlockManager::AddRef(h.block);
      out.release_after_wait.push_back(h.block);
    }
  }
  if (!fail.ok()) {
    // Undo the partial move: wait out any already-scheduled DMAs (their
    // functional memcpys must not scribble into blocks we hand back to the
    // arena), then release everything staged so far plus the original payload.
    // The consumer receives an empty message carrying only the error.
    for (const auto& ticket : out.tickets) ticket.Wait();
    for (memory::Block* b : out.release_after_wait) {
      if (b->owner != nullptr) system_->blocks().Release(b, producer_node);
    }
    out.release_after_wait.clear();
    out.tickets.clear();
    ReleaseMsgBlocks(system_, out, producer_node);
    ReleaseMsgBlocks(system_, msg, producer_node);
    out.error = std::move(fail);
    return out;
  }
  // The producer's own references are no longer needed: the consumer-held
  // references above (moved handles / post-DMA releases) keep everything alive.
  ReleaseMsgBlocks(system_, msg, producer_node);
  return out;
}

void Edge::DeliverTo(WorkerInstance* target, DataMsg msg,
                     sim::MemNodeId producer_node) {
  const sim::Topology& topo = system_->topology();
  if (options_.mem_move && msg.error.ok() &&
      MsgNeedsMove(topo, target->device(), msg)) {
    msg = MoveToNode(std::move(msg), target->node(), producer_node);
  } else if (!options_.mem_move) {
    // UVA-style edge (bare GPU mode): the consumer must at least be able to
    // address the data; it pays PCIe bandwidth while executing.
    for (const auto& h : msg.cols) {
      HETEX_CHECK(topo.CanAccess(target->device(), h.node()) !=
                  sim::MemAccess::kNone)
          << "consumer " << target->device().ToString()
          << " cannot address block on node " << h.node();
    }
  }
  // Cross-socket column reads: a CPU consumer pulling blocks out of another
  // socket's DRAM crosses the inter-socket link (when the topology models
  // one). Charged per delivered block on the shared epoch-anchored timeline,
  // so concurrent sessions queue behind each other on the QPI/UPI hop too.
  if (msg.error.ok() && target->device().is_cpu() &&
      system_->topology().has_inter_socket_link()) {
    const int target_socket = target->device().index;
    uint64_t cross_bytes = 0;
    for (const auto& h : msg.cols) {
      const sim::Topology::MemNode& mn = topo.mem_node(h.node());
      if (!mn.is_gpu && mn.owner.index != target_socket) cross_bytes += h.bytes;
    }
    if (cross_bytes > 0) {
      const auto window = system_->topology().inter_socket_link().Reserve(
          cross_bytes, msg.ready_at, options_.epoch);
      msg.ready_at = sim::MaxT(msg.ready_at, window.end);
    }
  }
  target->NoteEnqueued();
  const bool pushed = target->channel().Push(std::move(msg));
  HETEX_CHECK(pushed) << "push to closed consumer channel";
}

void Edge::Push(DataMsg msg, sim::MemNodeId producer_node) {
  if (options_.control != nullptr && msg.error.ok() &&
      options_.control->cancelled.load(std::memory_order_relaxed)) {
    // Cancelled query: stop moving data, just drop the payload. (Error-marked
    // messages still flow — the terminal status is stamped by the scheduler,
    // but consumers must observe the fault to stop cleanly.) Messages at this
    // point carry no tickets yet; mem-move attaches them after routing.
    ReleaseMsgBlocks(system_, msg, producer_node);
    return;
  }
  msg.ready_at += options_.control_cost + options_.crossing_latency;
  const sim::Topology& topo = system_->topology();

  if (options_.policy == Policy::kBroadcast) {
    // Mem-move owns broadcast (data-flow duplication); the router then routes by
    // target id — from its perspective this is just a hash policy (§3.1).
    for (size_t i = 0; i < consumers_.size(); ++i) {
      DataMsg copy;
      copy.rows = msg.rows;
      copy.ready_at = msg.ready_at;
      copy.tag = i;  // target id produced by the mem-move
      copy.cols = msg.cols;
      AddRefMsgBlocks(copy);
      DeliverTo(consumers_[i], std::move(copy), producer_node);
    }
    ReleaseMsgBlocks(system_, msg, producer_node);
    return;
  }

  WorkerInstance* target = nullptr;
  switch (options_.policy) {
    case Policy::kRoundRobin: {
      target = consumers_[rr_next_.fetch_add(1, std::memory_order_relaxed) %
                          consumers_.size()];
      break;
    }
    case Policy::kHash: {
      target = consumers_[msg.tag % consumers_.size()];
      break;
    }
    case Policy::kLoadBalance: {
      // GPU-resident blocks go to their local GPU (avoids absurd device->host->
      // device round trips); everything else goes to the least-backlogged
      // consumer in virtual time.
      const sim::MemNodeId node = msg.cols.empty() ? -1 : msg.cols[0].node();
      const bool gpu_resident = node >= 0 && topo.mem_node(node).is_gpu;
      uint64_t msg_bytes = 0;
      for (const auto& h : msg.cols) msg_bytes += h.bytes;
      const sim::CostModel& cm = topo.cost_model();
      double best = 0;
      for (WorkerInstance* c : consumers_) {
        if (gpu_resident && c->node() != node) continue;
        // Bandwidth-based prior: a GPU consumer of non-local data is PCIe-bound;
        // a CPU worker streams at (at best) one core's share of its socket.
        double prior_rate = cm.cpu_core_bw;
        if (c->device().is_gpu()) {
          prior_rate = (node >= 0 && c->node() == node) ? cm.gpu_mem_bw : cm.pcie_bw;
        }
        const double backlog =
            c->EstimatedBacklog(static_cast<double>(msg_bytes) / prior_rate);
        if (target == nullptr || backlog < best) {
          target = c;
          best = backlog;
        }
      }
      if (target == nullptr) target = consumers_[0];
      break;
    }
    case Policy::kBroadcast:
      break;  // handled above
  }
  DeliverTo(target, std::move(msg), producer_node);
}

WorkerGroup::WorkerGroup(System* system, std::vector<sim::DeviceId> devices,
                         ProcessorFactory factory, Edge* out,
                         size_t channel_capacity, sim::VTime initial_clock,
                         sim::VTime epoch, uint64_t query_id,
                         const QueryControl* control)
    : system_(system),
      factory_(std::move(factory)),
      out_(out),
      control_(control),
      initial_clock_(initial_clock) {
  int id = 0;
  for (const auto& dev : devices) {
    instances_.push_back(std::make_unique<WorkerInstance>(
        id++, dev, system, channel_capacity, epoch, query_id));
  }
}

std::vector<WorkerInstance*> WorkerGroup::instance_ptrs() {
  std::vector<WorkerInstance*> out;
  out.reserve(instances_.size());
  for (auto& inst : instances_) out.push_back(inst.get());
  return out;
}

void WorkerGroup::Start() {
  // Deterministic per-socket worker counts drive the CPU fluid-share model.
  std::map<int, int> socket_workers;
  for (auto& inst : instances_) {
    if (inst->device().is_cpu()) socket_workers[inst->device().index] += 1;
  }
  for (auto& inst : instances_) {
    inst->set_clock(initial_clock_);
    if (inst->device().is_cpu()) {
      static_cast<jit::CpuProvider&>(inst->provider())
          .set_socket_concurrency(socket_workers[inst->device().index]);
    }
    if (out_ != nullptr) out_->AddProducer();
  }
  for (auto& inst : instances_) {
    threads_.emplace_back([this, raw = inst.get()] { RunInstance(*raw); });
  }
}

void WorkerGroup::RunInstance(WorkerInstance& inst) {
  auto processor = factory_(inst);
  processor->Init(inst);
  while (auto msg = inst.channel().Pop()) {
    inst.NoteDequeued();
    for (const auto& ticket : msg->tickets) ticket.Wait();
    for (memory::Block* b : msg->release_after_wait) {
      if (b->owner != nullptr) system_->blocks().Release(b, inst.node());
    }
    msg->release_after_wait.clear();
    // A mem-move failure marker, a cancellation or an expired deadline all put
    // the instance into error-drain mode: ProcessMsg becomes a no-op, the
    // channel keeps draining (so producers never block on backpressure), and
    // Finish's error path runs the usual cleanup.
    if (!msg->error.ok()) inst.NoteError(std::move(msg->error));
    if (control_ != nullptr && inst.error().ok()) {
      inst.NoteError(control_->CheckLive(inst.clock()));
    }
    const sim::VTime before = inst.clock();
    processor->ProcessMsg(inst, *msg);
    inst.NoteBlockCost(inst.clock() - before);
    ReleaseMsgBlocks(system_, *msg, inst.node());
  }
  processor->Finish(inst);
  if (out_ != nullptr) out_->CloseProducer();
}

void WorkerGroup::Join() {
  for (auto& t : threads_) t.join();
  threads_.clear();
  for (auto& inst : instances_) max_end_ = sim::MaxT(max_end_, inst->clock());
}

sim::CostStats WorkerGroup::total_stats() const {
  sim::CostStats total;
  for (const auto& inst : instances_) total.Add(inst->stats());
  return total;
}

SourceDriver::SourceDriver(System* system, const storage::Table* table,
                           std::vector<int> col_indices, uint64_t block_rows,
                           Edge* out, sim::VTime initial_clock,
                           double per_block_cost)
    : system_(system),
      table_(table),
      col_indices_(std::move(col_indices)),
      block_rows_(block_rows),
      out_(out),
      clock_(initial_clock),
      per_block_cost_(per_block_cost) {
  HETEX_CHECK(table_->placed()) << "table " << table_->name() << " not placed";
  HETEX_CHECK(block_rows_ > 0);
}

SourceDriver::~SourceDriver() { Join(); }

void SourceDriver::Start() {
  out_->AddProducer();
  started_ = true;
  thread_ = std::thread([this] { Run(); });
}

void SourceDriver::Join() {
  if (thread_.joinable()) thread_.join();
}

void SourceDriver::Run() {
  const sim::MemNodeId producer_node = system_->topology().socket(0).mem;
  for (const auto& chunk : table_->chunks()) {
    if (control_ != nullptr && !control_->CheckLive(clock_).ok()) break;
    for (uint64_t off = 0; off < chunk.rows; off += block_rows_) {
      if (control_ != nullptr && !control_->CheckLive(clock_).ok()) break;
      const uint64_t rows = std::min(block_rows_, chunk.rows - off);
      DataMsg msg;
      msg.rows = rows;
      msg.cols.reserve(col_indices_.size());
      for (int ci : col_indices_) {
        const auto& col = table_->column(ci);
        foreign_blocks_.emplace_back();
        memory::Block& block = foreign_blocks_.back();
        block.data = chunk.col_data[ci] + off * col.width();
        block.capacity = rows * col.width();
        block.node = chunk.node;
        block.owner = nullptr;
        block.pinned = table_->pinned();
        memory::BlockHandle handle;
        handle.block = &block;
        handle.bytes = rows * col.width();
        handle.rows = rows;
        handle.ready_at = clock_;
        msg.cols.push_back(handle);
      }
      clock_ += per_block_cost_;
      msg.ready_at = clock_;
      out_->Push(std::move(msg), producer_node);
    }
  }
  out_->CloseProducer();
}

}  // namespace hetex::core
