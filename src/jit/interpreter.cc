#include "jit/interpreter.h"

#include "common/hash.h"
#include "jit/codegen.h"
#include "jit/vectorizer.h"

namespace hetex::jit {

namespace {

/// Bumps the random-access counter matching a size class.
inline void CountAccess(sim::CostStats* stats, uint8_t cls, uint64_t n = 1) {
  switch (cls) {
    case 0: stats->near_accesses += n; break;
    case 1: stats->mid_accesses += n; break;
    default: stats->far_accesses += n; break;
  }
}

}  // namespace

Status RunRows(const PipelineProgram& program, ExecCtx& ctx, uint64_t rows) {
  HETEX_CHECK(program.finalized) << "pipeline '" << program.label
                                 << "' executed before ConvertToMachineCode";
  const Instr* code = program.code.data();
  sim::CostStats* stats = ctx.stats;
  int64_t* regs = ctx.regs;
  uint64_t ops = 0;
  uint64_t tuples = 0;
  Status status;

  for (uint64_t row = ctx.row_begin; row < rows; row += ctx.row_step) {
    ++tuples;
    int pc = 0;
    while (true) {
      const Instr& in = code[pc];
      ++ops;
      switch (in.op) {
        case OpCode::kConst:
          regs[in.a] = in.imm;
          ++pc;
          break;
        case OpCode::kLoadCol: {
          const ColumnBinding& col = ctx.cols[in.b];
          regs[in.a] = col.Load(row);
          stats->bytes_read += col.width;
          ++pc;
          break;
        }
        case OpCode::kAdd: regs[in.a] = regs[in.b] + regs[in.c]; ++pc; break;
        case OpCode::kSub: regs[in.a] = regs[in.b] - regs[in.c]; ++pc; break;
        case OpCode::kMul: regs[in.a] = regs[in.b] * regs[in.c]; ++pc; break;
        case OpCode::kDiv:
          if (regs[in.c] == 0) {
            status =
                Status::Internal("division by zero in pipeline '" + program.label +
                                 "'");
            goto done;
          }
          regs[in.a] = regs[in.b] / regs[in.c];
          ++pc;
          break;
        case OpCode::kShl: regs[in.a] = regs[in.b] << in.imm; ++pc; break;
        case OpCode::kCmpLt: regs[in.a] = regs[in.b] < regs[in.c]; ++pc; break;
        case OpCode::kCmpLe: regs[in.a] = regs[in.b] <= regs[in.c]; ++pc; break;
        case OpCode::kCmpGt: regs[in.a] = regs[in.b] > regs[in.c]; ++pc; break;
        case OpCode::kCmpGe: regs[in.a] = regs[in.b] >= regs[in.c]; ++pc; break;
        case OpCode::kCmpEq: regs[in.a] = regs[in.b] == regs[in.c]; ++pc; break;
        case OpCode::kCmpNe: regs[in.a] = regs[in.b] != regs[in.c]; ++pc; break;
        case OpCode::kAnd: regs[in.a] = (regs[in.b] != 0) && (regs[in.c] != 0); ++pc; break;
        case OpCode::kOr: regs[in.a] = (regs[in.b] != 0) || (regs[in.c] != 0); ++pc; break;
        case OpCode::kNot: regs[in.a] = regs[in.b] == 0; ++pc; break;
        case OpCode::kHash:
          regs[in.a] =
              static_cast<int64_t>(HashMix64(static_cast<uint64_t>(regs[in.b])));
          ++pc;
          break;
        case OpCode::kFilter:
          if (regs[in.a] == 0) goto next_tuple;
          ++pc;
          break;
        case OpCode::kJmp: pc = in.a; break;
        case OpCode::kJmpIfFalse:
          pc = (regs[in.a] == 0) ? in.b : pc + 1;
          break;
        case OpCode::kJmpIfNeg:
          pc = (regs[in.a] < 0) ? in.b : pc + 1;
          break;
        case OpCode::kHtInsert: {
          auto* ht = static_cast<JoinHashTable*>(ctx.ht_slots[in.a]);
          ht->Insert(regs[in.b], &regs[in.c]);
          CountAccess(stats, in.cls);
          // Worker-scoped atomics are elided by the CPU provider (single thread
          // per worker, paper Fig. 3); GPUs pay for the CAS.
          if (ctx.atomic_group_update) ++stats->atomics;
          stats->bytes_written += (2 + in.d) * sizeof(int64_t);
          ++pc;
          break;
        }
        case OpCode::kHtProbeInit: {
          auto* ht = static_cast<JoinHashTable*>(ctx.ht_slots[in.c]);
          uint64_t hops = 0;
          regs[in.a] = ht->FindKeyFrom(ht->ProbeHead(regs[in.b]), regs[in.b], &hops);
          CountAccess(stats, in.cls, 1 + hops);
          ++pc;
          break;
        }
        case OpCode::kHtIterNext: {
          auto* ht = static_cast<JoinHashTable*>(ctx.ht_slots[in.c]);
          uint64_t hops = 0;
          regs[in.a] =
              ht->FindKeyFrom(ht->NextEntry(regs[in.a]), regs[in.b], &hops);
          CountAccess(stats, in.cls, hops);
          ++pc;
          break;
        }
        case OpCode::kHtLoadPayload: {
          auto* ht = static_cast<JoinHashTable*>(ctx.ht_slots[in.c]);
          const int64_t* payload = ht->PayloadOf(regs[in.b]);
          for (int i = 0; i < in.d; ++i) regs[in.a + i] = payload[i];
          ++pc;
          break;
        }
        case OpCode::kAggLocal:
          AggApply(static_cast<AggFunc>(in.c), &ctx.local_accs[in.a], regs[in.b]);
          ++pc;
          break;
        case OpCode::kGroupByAgg: {
          auto* ht = static_cast<AggHashTable*>(ctx.ht_slots[in.a]);
          uint64_t probes = 0;
          ht->Update(regs[in.b], &regs[in.c], ctx.atomic_group_update, &probes);
          CountAccess(stats, in.cls, probes);
          if (ctx.atomic_group_update) stats->atomics += in.d;
          ++pc;
          break;
        }
        case OpCode::kEmit: {
          EmitTarget* target = ctx.emit;
          if (in.d != 0) {
            // Hash-pack: the tag register selects the bucket, keeping each block
            // hash-homogeneous for downstream hash routing (paper §3.2).
            target = ctx.emit_targets[static_cast<uint64_t>(regs[in.c]) %
                                      static_cast<uint64_t>(ctx.n_emit_targets)];
          }
          target->Append(&regs[in.a], in.b, stats);
          ++pc;
          break;
        }
        case OpCode::kEnd:
          goto next_tuple;
      }
    }
  next_tuple:;
  }

done:
  stats->ops += ops;
  stats->tuples += tuples;
  return status;
}

Status Run(const PipelineProgram& program, ExecCtx& ctx, uint64_t rows) {
  // Tier-up check: a background compile publishes the native entry point with
  // a release store; observing it here (acquire) hot-swaps execution to the
  // compiled kernel without blocking any query on the compiler.
  if (program.native != nullptr && program.native->ready()) {
    return RunNative(program, ctx, rows);
  }
  if (program.tier == ExecTier::kVectorized && program.vec != nullptr) {
    return RunRowsVectorized(program, ctx, rows);
  }
  return RunRows(program, ctx, rows);
}

void FlushLocalAccsAtomic(const PipelineProgram& program, const int64_t* local_accs,
                          std::atomic<int64_t>* shared_accs, bool count_atomic_cost,
                          sim::CostStats* stats) {
  for (int i = 0; i < program.n_local_accs; ++i) {
    // Partial accumulators merge, they don't re-apply: a COUNT partial is a
    // value to SUM into the shared counter, not one more element to count.
    const AggFunc f = program.local_acc_funcs[i] == AggFunc::kCount
                          ? AggFunc::kSum
                          : program.local_acc_funcs[i];
    AggApplyAtomic(f, &shared_accs[i], local_accs[i]);
  }
  if (count_atomic_cost) {
    stats->atomics += static_cast<uint64_t>(program.n_local_accs);
  }
}

}  // namespace hetex::jit
