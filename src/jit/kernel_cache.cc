#include "jit/kernel_cache.h"

#include <dlfcn.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace hetex::jit {

namespace fs = std::filesystem;

namespace {

constexpr char kDefaultCompilerCmd[] = "c++ -O3 -march=native -fPIC -shared";
// -march=native is best-effort: a compiler that rejects it (cross toolchains,
// exotic hosts) gets one retry with the portable flag set.
constexpr char kNoMarchCompilerCmd[] = "c++ -O3 -fPIC -shared";

uint64_t Fnv1a(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::string Hex16(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return in.good() || in.eof();
}

/// Writes via a unique temp file + atomic rename so concurrent processes
/// racing on the same kernel dir only ever observe complete files.
bool WriteFileAtomic(const std::string& path, const std::string& data) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out.good()) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) fs::remove(tmp, ec);
  return !ec;
}

std::string TailOf(const std::string& text, size_t max_bytes = 512) {
  if (text.size() <= max_bytes) return text;
  return "..." + text.substr(text.size() - max_bytes);
}

}  // namespace

KernelCache::KernelCache(CodegenOptions options) : options_(std::move(options)) {
  if (options_.kernel_dir.empty()) {
    std::error_code ec;
    fs::path tmp = fs::temp_directory_path(ec);
    if (ec) tmp = "/tmp";
    options_.kernel_dir = (tmp / "hetex-kernels").string();
  }
  if (options_.compiler_cmd.empty()) options_.compiler_cmd = kDefaultCompilerCmd;
  if (options_.compile_threads < 1) options_.compile_threads = 1;
  if (options_.async) {
    workers_.reserve(options_.compile_threads);
    for (int i = 0; i < options_.compile_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

KernelCache::~KernelCache() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Builds that never ran fail closed: their programs keep serving the
  // fallback tier, and nothing waits on a kernel that can no longer arrive.
  for (auto& [sig, chain] : entries_) {
    for (Entry& e : chain) {
      int expected = NativeKernel::kPending;
      if (e.kernel->state.compare_exchange_strong(expected,
                                                  NativeKernel::kFailed)) {
        e.kernel->error = "kernel cache shut down before compile";
      }
    }
  }
}

std::string KernelCache::Stem(uint64_t signature) const {
  return (fs::path(options_.kernel_dir) / ("hx_" + Hex16(signature))).string();
}

std::shared_ptr<NativeKernel> KernelCache::GetOrBuild(const GenerateResult& gen,
                                                      const std::string& label) {
  HETEX_CHECK(!gen.source.empty()) << "GetOrBuild on a fallback GenerateResult";
  std::shared_ptr<NativeKernel> kernel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.requests;
    std::vector<Entry>& chain = entries_[gen.signature];
    for (const Entry& e : chain) {
      if (e.source == gen.source) {
        ++counters_.in_process_hits;
        return e.kernel;
      }
    }
    kernel = std::make_shared<NativeKernel>();
    kernel->signature = gen.signature;
    kernel->label = label;
    kernel->join_slot_mask = gen.join_slot_mask;
    chain.push_back(Entry{gen.source, kernel});
    if (options_.async) {
      queue_.emplace_back(
          [this, kernel, source = gen.source] { Build(kernel, source); });
      work_cv_.notify_one();
      return kernel;
    }
  }
  Build(kernel, gen.source);
  return kernel;
}

void KernelCache::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      if (inflight_ == 0 && queue_.empty()) idle_cv_.notify_all();
    }
  }
}

void KernelCache::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
}

KernelCache::Counters KernelCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void KernelCache::Build(const std::shared_ptr<NativeKernel>& kernel,
                        const std::string& source) {
  if (fault_ != nullptr && fault_->enabled()) {
    // Injected compile/load failure: identical consequence to a real compiler
    // failure — the program keeps its fallback tier, queries stay correct.
    Status st = fault_->OnKernelCompile(kernel->label);
    if (!st.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.compile_failures;
      }
      internal::CountCompileFailure();
      internal::CountCodegenFallback();
      HETEX_LOG(Warning) << "native compile failed for pipeline '"
                         << kernel->label << "': " << st.ToString()
                         << " (serving fallback tier)";
      kernel->error = st.ToString();
      kernel->state.store(NativeKernel::kFailed, std::memory_order_release);
      return;
    }
  }
  if (TryLoadFromDisk(kernel.get(), source)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.compiles;
  }
  if (!CompileToDisk(kernel.get(), source)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.compile_failures;
    }
    internal::CountCompileFailure();
    internal::CountCodegenFallback();
    HETEX_LOG(Warning) << "native compile failed for pipeline '"
                       << kernel->label << "': " << kernel->error
                       << " (serving fallback tier)";
    kernel->state.store(NativeKernel::kFailed, std::memory_order_release);
    return;
  }
  EvictIfNeeded(Stem(kernel->signature));
}

bool KernelCache::TryLoadFromDisk(NativeKernel* kernel,
                                  const std::string& source) {
  const std::string stem = Stem(kernel->signature);
  const std::string so_path = stem + ".so";
  std::error_code ec;
  const bool so_exists = fs::exists(so_path, ec) && !ec;
  if (!so_exists) return false;

  const auto reject = [&](const std::string& why) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.rejected_objects;
    }
    internal::CountRejectedObject();
    HETEX_LOG(Warning) << "kernel cache: rejecting " << so_path << " (" << why
                       << "); recompiling";
    return false;
  };

  std::string meta;
  if (!ReadFile(stem + ".meta", &meta)) return reject("missing meta sidecar");
  uint64_t abi = 0, source_hash = 0, source_size = 0, so_size = 0, so_hash = 0;
  {
    std::istringstream in(meta);
    std::string key;
    while (in >> key) {
      if (key == "abi") in >> abi;
      else if (key == "source_hash") in >> std::hex >> source_hash >> std::dec;
      else if (key == "source_size") in >> source_size;
      else if (key == "so_size") in >> so_size;
      else if (key == "so_hash") in >> std::hex >> so_hash >> std::dec;
      else in.ignore(4096, '\n');
    }
  }
  if (abi != kCodegenAbiVersion) return reject("ABI version mismatch");
  if (source_size != source.size() ||
      source_hash != Fnv1a(source.data(), source.size())) {
    return reject("source hash mismatch");
  }
  std::string object;
  if (!ReadFile(so_path, &object)) return reject("unreadable object");
  if (object.size() != so_size) return reject("object truncated");
  if (Fnv1a(object.data(), object.size()) != so_hash) {
    return reject("object hash mismatch");
  }

  std::string error;
  if (!LoadObject(kernel, so_path, &error)) return reject(error);
  kernel->origin = NativeKernel::Origin::kDisk;
  kernel->state.store(NativeKernel::kReady, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.disk_hits;
  }
  internal::CountDiskHit();
  return true;
}

bool KernelCache::CompileToDisk(NativeKernel* kernel,
                                const std::string& source) {
  const std::string stem = Stem(kernel->signature);
  const std::string cc_path = stem + ".cc";
  const std::string so_path = stem + ".so";
  const std::string log_path = stem + ".log";

  std::error_code ec;
  fs::create_directories(options_.kernel_dir, ec);
  if (ec) {
    kernel->error = "cannot create kernel dir " + options_.kernel_dir;
    return false;
  }
  if (!WriteFileAtomic(cc_path, source)) {
    kernel->error = "cannot write " + cc_path;
    return false;
  }

  const std::string so_tmp =
      so_path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const auto invoke = [&](const std::string& cmd_prefix) {
    const std::string cmd =
        cmd_prefix + " " + cc_path + " -o " + so_tmp + " 2> " + log_path;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.compiler_invocations;
    }
    internal::CountCompilerInvocation();
    return std::system(cmd.c_str());
  };

  int rc = invoke(options_.compiler_cmd);
  if (rc != 0 && options_.compiler_cmd == kDefaultCompilerCmd) {
    rc = invoke(kNoMarchCompilerCmd);
  }
  if (rc != 0) {
    std::string log;
    ReadFile(log_path, &log);
    kernel->error = "compiler exited with status " + std::to_string(rc) +
                    (log.empty() ? "" : ": " + TailOf(log));
    fs::remove(so_tmp, ec);
    return false;
  }

  std::string object;
  if (!ReadFile(so_tmp, &object) || object.empty()) {
    kernel->error = "compiler produced no object";
    fs::remove(so_tmp, ec);
    return false;
  }
  fs::rename(so_tmp, so_path, ec);
  if (ec) {
    kernel->error = "cannot move object into place: " + ec.message();
    fs::remove(so_tmp, ec);
    return false;
  }

  std::ostringstream meta;
  meta << "abi " << kCodegenAbiVersion << "\n"
       << "source_hash " << std::hex << Fnv1a(source.data(), source.size())
       << std::dec << "\n"
       << "source_size " << source.size() << "\n"
       << "so_size " << object.size() << "\n"
       << "so_hash " << std::hex << Fnv1a(object.data(), object.size())
       << std::dec << "\n";
  if (!WriteFileAtomic(stem + ".meta", meta.str())) {
    kernel->error = "cannot write meta sidecar";
    return false;
  }

  std::string error;
  if (!LoadObject(kernel, so_path, &error)) {
    kernel->error = error;
    return false;
  }
  kernel->origin = NativeKernel::Origin::kCompiled;
  kernel->state.store(NativeKernel::kReady, std::memory_order_release);
  return true;
}

void KernelCache::EvictIfNeeded(const std::string& protect_stem) {
  if (options_.max_dir_bytes == 0) return;

  struct Triple {
    std::string stem;
    uint64_t bytes = 0;
    fs::file_time_type built_at = fs::file_time_type::min();
  };
  std::unordered_map<std::string, Triple> triples;
  uint64_t total = 0;
  std::error_code ec;
  fs::directory_iterator it(options_.kernel_dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const fs::path& p = entry.path();
    std::string stem = (p.parent_path() / p.stem()).string();
    const std::string name = p.filename().string();
    if (name.rfind("hx_", 0) != 0) continue;
    // In-flight temp files (hx_<sig>.so.tmp.<pid>) belong to a racing compile,
    // not to a finished triple; leave them alone.
    if (name.find(".tmp.") != std::string::npos) continue;
    const uint64_t bytes = entry.file_size(ec);
    if (ec) continue;
    Triple& t = triples[stem];
    t.stem = stem;
    t.bytes += bytes;
    total += bytes;
    if (p.extension() == ".so") t.built_at = entry.last_write_time(ec);
  }
  if (total <= options_.max_dir_bytes) return;

  std::vector<Triple> victims;
  victims.reserve(triples.size());
  for (auto& [stem, t] : triples) {
    if (stem != protect_stem) victims.push_back(std::move(t));
  }
  std::sort(victims.begin(), victims.end(),
            [](const Triple& a, const Triple& b) {
              return a.built_at < b.built_at;  // oldest build evicts first
            });
  for (const Triple& victim : victims) {
    if (total <= options_.max_dir_bytes) break;
    for (const char* ext : {".so", ".meta", ".cc", ".log"}) {
      fs::remove(victim.stem + ext, ec);
    }
    total -= victim.bytes < total ? victim.bytes : total;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.evictions;
    }
    HETEX_LOG(Info) << "kernel cache: evicted " << victim.stem
                    << ".* (dir over " << options_.max_dir_bytes << " bytes)";
  }
}

bool KernelCache::LoadObject(NativeKernel* kernel, const std::string& so_path,
                             std::string* error) {
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = dlerror();
    *error = "dlopen failed: " + std::string(err != nullptr ? err : "unknown");
    return false;
  }
  const auto* abi = static_cast<const unsigned*>(dlsym(handle, "hx_abi_version"));
  if (abi == nullptr || *abi != kCodegenAbiVersion) {
    dlclose(handle);
    *error = "object exports no matching hx_abi_version";
    return false;
  }
  void* fn = dlsym(handle, "hx_kernel");
  if (fn == nullptr) {
    dlclose(handle);
    *error = "object exports no hx_kernel entry point";
    return false;
  }
  kernel->dl_handle = handle;
  kernel->fn = reinterpret_cast<NativeKernelFn>(fn);
  return true;
}

}  // namespace hetex::jit
