#ifndef HETEX_JIT_DEVICE_PROVIDER_H_
#define HETEX_JIT_DEVICE_PROVIDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "jit/exec_ctx.h"
#include "jit/interpreter.h"
#include "jit/program.h"
#include "memory/block_manager.h"
#include "memory/memory_manager.h"
#include "sim/fault.h"
#include "sim/gpu_device.h"
#include "sim/topology.h"

namespace hetex::jit {

class KernelCache;

/// \brief One pipeline execution request: a block of rows to push through a
/// compiled program, together with the pipeline's bound state.
struct ExecRequest {
  const ColumnBinding* cols = nullptr;
  int n_cols = 0;
  uint64_t rows = 0;
  EmitTarget* emit = nullptr;
  EmitTarget** emit_targets = nullptr;  ///< hash-pack buckets (optional)
  int n_emit_targets = 0;
  void** ht_slots = nullptr;
  int64_t* instance_accs = nullptr;            ///< CPU: instance-persistent accumulators
  std::atomic<int64_t>* shared_accs = nullptr; ///< GPU: device-resident accumulators
  sim::VTime earliest = 0;                     ///< input availability (virtual time)
};

/// Result of executing one block through a pipeline.
struct ExecResult {
  Status status;           ///< runtime failure (e.g. division by zero)
  sim::VTime end = 0;      ///< modeled completion time
  sim::CostStats stats;    ///< work performed
};

/// \brief Standalone program verification used by ConvertToMachineCode:
/// kEnd-termination, jump targets in range and label-patched, register operands
/// (including windows) within n_regs, hash-table slots and accumulator indices
/// bound, and rejection of programs whose divisor register can hold a zero
/// constant.
Status ValidateProgram(const PipelineProgram& program);

/// \brief Device provider: the device-independent utility interface of the
/// paper's Table 1.
///
/// Every operator's produce()/consume() is written once against this interface;
/// the device-crossing operators decide which provider each pipeline is
/// instantiated with, and that choice alone specializes the generated pipeline to
/// a CPU worker or a GPU kernel (paper §4.1, Fig. 3).
///
/// Table 1 mapping:
///  - allocStateVar/freeStateVar        -> AllocStateVar / FreeStateVar
///  - load/storeStateVar                -> pipeline state slots bound via ExecRequest
///  - get/releaseBuffer, malloc/free    -> GetBuffer / ReleaseBuffer (block arena)
///  - #threadsInWorker, threadIdInWorker-> WorkerThreads() and the grid-stride
///                                         bounds installed into each ExecCtx
///  - workerScopedAtomic<T, Op>         -> atomic accumulation / HT CAS enabled
///                                         (GPU) or elided (CPU single thread)
///  - convertToMachineCode/loadMachineCode -> ConvertToMachineCode (finalize +
///                                         validate; our VM "machine code")
class DeviceProvider {
 public:
  virtual ~DeviceProvider() = default;

  virtual sim::DeviceType type() const = 0;
  virtual sim::DeviceId device() const = 0;
  virtual sim::MemNodeId mem_node() const = 0;

  /// Number of concurrent worker threads inside one pipeline execution: 1 for a
  /// CPU worker, the kernel grid size for a GPU. The CPU provider's answer lets
  /// codegen elide neighborhood reductions and worker-scoped atomics (Fig. 3).
  virtual int WorkerThreads() const = 0;

  /// Allocates pipeline state (hash tables, accumulators) on the local node.
  virtual void* AllocStateVar(uint64_t bytes) = 0;
  virtual void FreeStateVar(void* ptr) = 0;

  /// Acquires/releases a staging block from the local block arena.
  virtual memory::Block* GetBuffer() = 0;
  virtual void ReleaseBuffer(memory::Block* block) = 0;

  /// \brief Finalizes ("compiles") a generated program for this device — the
  /// tiering point of the JIT layer.
  ///
  /// Validates the code (ValidateProgram), then attempts to lower it to the
  /// vectorized batch tier; program shapes the vectorizer cannot prove fall
  /// back to the row interpreter (tracked and logged, never silent). When a
  /// kernel cache is attached (tier 2 enabled), the program is additionally
  /// handed to the C++ codegen backend: the compiled kernel hot-swaps in once
  /// ready, with the tier chosen here serving until then. Mirrors IR
  /// verification + backend lowering.
  virtual Status ConvertToMachineCode(PipelineProgram* program);

  /// Executes one block through a finalized program, advancing virtual time.
  /// Dispatches to the tier ConvertToMachineCode installed on the program.
  virtual ExecResult Execute(const PipelineProgram& program, ExecRequest& req) = 0;

  /// The memory manager backing AllocStateVar.
  virtual memory::MemoryManager& memory_manager() = 0;

  /// Tier selection override (kForceInterpreter pins tier 0, kForceVectorized
  /// caps at tier 1 — used by the differential parity suites and benchmarks).
  void set_tier_policy(TierPolicy policy) { tier_policy_ = policy; }
  TierPolicy tier_policy() const { return tier_policy_; }

  /// Attaches the tier-2 kernel cache (null = codegen disabled). Owned by the
  /// System; shared by all providers so kernels dedup across devices — the
  /// generated source is device-independent (atomicity is a runtime argument).
  void set_kernel_cache(KernelCache* cache) { kernel_cache_ = cache; }
  KernelCache* kernel_cache() const { return kernel_cache_; }

  /// Absolute virtual arrival time of the query session this provider executes
  /// for. All ExecRequest/ExecResult times stay session-local; the epoch anchors
  /// reservations on shared resources (the GPU kernel stream) so concurrent
  /// sessions contend on one absolute timeline.
  void set_session_epoch(sim::VTime epoch) { session_epoch_ = epoch; }
  sim::VTime session_epoch() const { return session_epoch_; }

  /// Query id of the owning session. Identifies this provider's query in the
  /// cross-session resource registries (a CPU worker's DRAM fluid share
  /// divides by its own group's worker count plus every *other* session's
  /// registered workers on the socket — never double-counting itself).
  void set_session_id(uint64_t id) { session_id_ = id; }
  uint64_t session_id() const { return session_id_; }

  /// Attaches the System's fault plane. GpuProvider::Execute consults it for
  /// scripted device loss and transient kernel-launch failures; null or
  /// disabled = no checks (byte-identical fault-free behavior).
  void set_fault_injector(sim::FaultInjector* fault) { fault_ = fault; }
  sim::FaultInjector* fault_injector() const { return fault_; }

 private:
  TierPolicy tier_policy_ = TierPolicy::kAuto;
  KernelCache* kernel_cache_ = nullptr;
  sim::VTime session_epoch_ = 0.0;
  uint64_t session_id_ = 0;
  sim::FaultInjector* fault_ = nullptr;
};

/// CPU provider: single-threaded worker pinned to one socket; streaming bandwidth
/// comes from the socket's fluid share.
class CpuProvider : public DeviceProvider {
 public:
  CpuProvider(int socket, sim::Topology* topo, memory::MemoryRegistry* mem,
              memory::BlockRegistry* blocks)
      : socket_(socket),
        topo_(topo),
        mem_(mem),
        blocks_(blocks),
        node_(topo->socket(socket).mem) {}

  sim::DeviceType type() const override { return sim::DeviceType::kCpu; }
  sim::DeviceId device() const override { return sim::DeviceId::Cpu(socket_); }
  sim::MemNodeId mem_node() const override { return node_; }
  int WorkerThreads() const override { return 1; }

  void* AllocStateVar(uint64_t bytes) override;
  void FreeStateVar(void* ptr) override;
  memory::Block* GetBuffer() override;
  void ReleaseBuffer(memory::Block* block) override;
  ExecResult Execute(const PipelineProgram& program, ExecRequest& req) override;
  memory::MemoryManager& memory_manager() override { return mem_->manager(node_); }

  int socket() const { return socket_; }

  /// Number of workers configured on this socket for the running query: the
  /// deterministic fluid-share divisor (all workers are concurrently active in
  /// virtual time during the streaming phase).
  void set_socket_concurrency(int n) { socket_concurrency_ = n < 1 ? 1 : n; }
  int socket_concurrency() const { return socket_concurrency_; }

 private:
  int socket_;
  int socket_concurrency_ = 1;
  sim::Topology* topo_;
  memory::MemoryRegistry* mem_;
  memory::BlockRegistry* blocks_;
  sim::MemNodeId node_;
};

/// GPU provider: pipelines execute as kernels over a logical thread grid with
/// device atomics; state and buffers live in the GPU's device memory.
class GpuProvider : public DeviceProvider {
 public:
  GpuProvider(sim::GpuDevice* gpu, sim::Topology* topo, memory::MemoryRegistry* mem,
              memory::BlockRegistry* blocks)
      : gpu_(gpu),
        topo_(topo),
        mem_(mem),
        blocks_(blocks),
        node_(gpu->mem_node()) {}

  sim::DeviceType type() const override { return sim::DeviceType::kGpu; }
  sim::DeviceId device() const override { return sim::DeviceId::Gpu(gpu_->id()); }
  sim::MemNodeId mem_node() const override { return node_; }
  int WorkerThreads() const override { return gpu_->default_grid(); }

  void* AllocStateVar(uint64_t bytes) override;
  void FreeStateVar(void* ptr) override;
  memory::Block* GetBuffer() override;
  void ReleaseBuffer(memory::Block* block) override;
  ExecResult Execute(const PipelineProgram& program, ExecRequest& req) override;
  memory::MemoryManager& memory_manager() override { return mem_->manager(node_); }

  sim::GpuDevice* gpu() const { return gpu_; }

  /// UVA/zero-copy mode: kernels read host-resident blocks in place over the
  /// GPU's PCIe link, and their streamed bytes reserve real occupancy on that
  /// link's BandwidthServer (epoch-anchored, first-fit, exactly like DMA) —
  /// concurrent sessions' transfers queue behind the kernel and vice versa.
  /// (Replaces the old stream-bandwidth discount: GpuDevice::LaunchOptions
  /// still takes a raw stream_bw for occupancy-limited kernel emulations.)
  void set_uva(bool uva) { uva_ = uva; }
  bool uva() const { return uva_; }

 private:
  sim::GpuDevice* gpu_;
  sim::Topology* topo_;
  memory::MemoryRegistry* mem_;
  memory::BlockRegistry* blocks_;
  sim::MemNodeId node_;
  bool uva_ = false;
};

}  // namespace hetex::jit

#endif  // HETEX_JIT_DEVICE_PROVIDER_H_
