#include "jit/device_provider.h"

#include <algorithm>
#include <array>
#include <mutex>

#include "common/logging.h"
#include "jit/codegen.h"
#include "jit/kernel_cache.h"
#include "jit/vectorizer.h"

namespace hetex::jit {

namespace {

/// True when the opcode computes regs[a] = f(regs[b], regs[c]).
bool IsBinaryAluOp(OpCode op) {
  switch (op) {
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
    case OpCode::kCmpLt:
    case OpCode::kCmpLe:
    case OpCode::kCmpGt:
    case OpCode::kCmpGe:
    case OpCode::kCmpEq:
    case OpCode::kCmpNe:
    case OpCode::kAnd:
    case OpCode::kOr:
      return true;
    default:
      return false;
  }
}

}  // namespace

Status ValidateProgram(const PipelineProgram& program) {
  const int n = static_cast<int>(program.code.size());
  const int n_regs = program.n_regs;
  auto err = [&program](const std::string& what, int pc) {
    return Status::Internal("pipeline '" + program.label + "': " + what +
                            " at pc " + std::to_string(pc));
  };
  if (n == 0 || program.code.back().op != OpCode::kEnd) {
    return Status::Internal("pipeline '" + program.label + "' missing kEnd");
  }
  if (n_regs < 0 || n_regs > kMaxRegs) {
    return Status::Internal("pipeline '" + program.label +
                            "': register pressure exceeds VM register file");
  }
  if (program.n_local_accs < 0 || program.n_local_accs > kMaxLocalAccs) {
    return Status::Internal("pipeline '" + program.label +
                            "': local accumulator count out of range");
  }

  auto reg_ok = [n_regs](int r) { return r >= 0 && r < n_regs; };
  auto window_ok = [n_regs](int first, int count) {
    return count >= 0 && first >= 0 && first + count <= n_regs;
  };
  auto slot_ok = [](int s) { return s >= 0 && s < kMaxHtSlots; };

  // Registers that can hold a zero constant (conservative: any kConst 0 ever
  // written to the register taints it for the whole program, so a jump cannot
  // smuggle a zero past a linear scan).
  std::array<bool, kMaxRegs> zero_const{};
  for (const Instr& in : program.code) {
    if (in.op == OpCode::kConst && in.imm == 0 && in.a >= 0 && in.a < kMaxRegs) {
      zero_const[in.a] = true;
    }
  }

  for (int pc = 0; pc < n; ++pc) {
    const Instr& in = program.code[pc];
    switch (in.op) {
      case OpCode::kConst:
        if (!reg_ok(in.a)) return err("register out of range", pc);
        break;
      case OpCode::kLoadCol:
        if (!reg_ok(in.a)) return err("register out of range", pc);
        if (in.b < 0) return err("negative input column", pc);
        break;
      case OpCode::kShl:
      case OpCode::kNot:
      case OpCode::kHash:
        if (!reg_ok(in.a) || !reg_ok(in.b)) {
          return err("register out of range", pc);
        }
        break;
      case OpCode::kFilter:
        if (!reg_ok(in.a)) return err("register out of range", pc);
        break;
      case OpCode::kJmp:
        if (in.a < 0) return err("jump to unbound label", pc);
        if (in.a >= n) return err("jump out of range", pc);
        break;
      case OpCode::kJmpIfFalse:
      case OpCode::kJmpIfNeg:
        if (!reg_ok(in.a)) return err("register out of range", pc);
        if (in.b < 0) return err("jump to unbound label", pc);
        if (in.b >= n) return err("jump out of range", pc);
        break;
      case OpCode::kHtInsert:
        if (!slot_ok(in.a)) return err("hash-table slot out of range", pc);
        if (!reg_ok(in.b)) return err("register out of range", pc);
        if (in.d > 8 || !window_ok(in.c, in.d)) {
          return err("payload register window out of range", pc);
        }
        break;
      case OpCode::kHtProbeInit:
      case OpCode::kHtIterNext:
        if (!reg_ok(in.a) || !reg_ok(in.b)) {
          return err("register out of range", pc);
        }
        if (!slot_ok(in.c)) return err("hash-table slot out of range", pc);
        break;
      case OpCode::kHtLoadPayload:
        if (!reg_ok(in.b)) return err("register out of range", pc);
        if (!slot_ok(in.c)) return err("hash-table slot out of range", pc);
        if (in.d > 8 || !window_ok(in.a, in.d)) {
          return err("payload register window out of range", pc);
        }
        break;
      case OpCode::kAggLocal:
        if (in.a < 0 || in.a >= program.n_local_accs) {
          return err("local accumulator out of range", pc);
        }
        if (!reg_ok(in.b)) return err("register out of range", pc);
        break;
      case OpCode::kGroupByAgg:
        if (!slot_ok(in.a)) return err("hash-table slot out of range", pc);
        if (!reg_ok(in.b)) return err("register out of range", pc);
        if (in.d < 1 || in.d > 8 || !window_ok(in.c, in.d)) {
          return err("aggregate register window out of range", pc);
        }
        break;
      case OpCode::kEmit:
        if (!window_ok(in.a, in.b)) {
          return err("emit register window out of range", pc);
        }
        if (in.d != 0 && !reg_ok(in.c)) {
          return err("register out of range", pc);
        }
        break;
      case OpCode::kEnd:
        break;
      default:
        if (IsBinaryAluOp(in.op)) {
          if (!reg_ok(in.a) || !reg_ok(in.b) || !reg_ok(in.c)) {
            return err("register out of range", pc);
          }
          if (in.op == OpCode::kDiv && zero_const[in.c]) {
            return err("divisor register can hold a zero constant", pc);
          }
        } else {
          return err("unknown opcode", pc);
        }
        break;
    }
  }
  return Status::OK();
}

Status DeviceProvider::ConvertToMachineCode(PipelineProgram* program) {
  // IR verification before backend lowering.
  HETEX_RETURN_NOT_OK(ValidateProgram(*program));
  program->finalized = true;

  // Tier selection: attempt the vectorized batch backend; fall back to the row
  // interpreter for shapes the vectorizer cannot prove.
  program->tier = ExecTier::kInterpreter;
  program->vec.reset();
  program->native.reset();
  if (tier_policy() == TierPolicy::kForceInterpreter) {
    program->tier_reason = "interpreter: tier policy forces tier 0";
    return Status::OK();
  }

  VectorizeResult vec = TryVectorize(*program);
  if (vec.program != nullptr) {
    program->tier = ExecTier::kVectorized;
    program->vec = std::move(vec.program);
    program->tier_reason = "vectorized";
  } else {
    program->tier_reason = "interpreter: " + vec.reason;
  }
  if (tier_policy() == TierPolicy::kForceVectorized) {
    program->tier_reason += " (tier policy caps at tier 1)";
    return Status::OK();
  }

  // Tier 2: hand the program to the C++ codegen backend when a kernel cache is
  // attached. Unprovable shapes and compile failures fall back to the tier
  // chosen above with a counted, named reason; a still-compiling kernel serves
  // that tier too until Run() observes the published entry point.
  if (KernelCache* cache = kernel_cache(); cache != nullptr) {
    GenerateResult gen = GenerateSource(*program);
    if (gen.source.empty()) {
      program->tier_reason += "; codegen fallback: " + gen.reason;
    } else {
      program->native = cache->GetOrBuild(gen, program->label);
      if (program->native->ready()) {
        program->tier = ExecTier::kNative;
        program->tier_reason = program->EffectiveTierReason();
      }
    }
  }
  return Status::OK();
}

void* CpuProvider::AllocStateVar(uint64_t bytes) {
  auto r = mem_->manager(node_).Allocate(bytes);
  HETEX_CHECK(r.ok()) << r.status().ToString();
  return r.value();
}

void CpuProvider::FreeStateVar(void* ptr) { mem_->manager(node_).Free(ptr); }

memory::Block* CpuProvider::GetBuffer() { return blocks_->Acquire(node_, node_); }

void CpuProvider::ReleaseBuffer(memory::Block* block) {
  blocks_->Release(block, node_);
}

ExecResult CpuProvider::Execute(const PipelineProgram& program, ExecRequest& req) {
  ExecCtx ctx;
  ctx.cols = req.cols;
  ctx.n_cols = req.n_cols;
  ctx.emit = req.emit;
  ctx.emit_targets = req.emit_targets;
  ctx.n_emit_targets = req.n_emit_targets;
  ctx.local_accs = req.instance_accs;
  ctx.ht_slots = req.ht_slots;
  ctx.atomic_group_update = false;  // single thread per worker: atomics elided
  ExecResult result;
  ctx.stats = &result.stats;
  ctx.row_begin = 0;   // threadIdInWorker -> 0
  ctx.row_step = 1;    // #threadsInWorker -> 1

  result.status = Run(program, ctx, req.rows);

  const sim::CostModel& cm = topo_->cost_model();
  // Fluid share of the socket's DRAM bandwidth: the block's bytes drain
  // against every execution-phase interval overlapping it *in virtual time*
  // on the socket's timeline — this query's own workers (the deterministic
  // per-group count) plus whichever other sessions' intervals the block
  // actually crosses, integrated piecewise as the overlap changes
  // (sim::DramServer::BlockEnd). When nothing overlaps, the closed-form solo
  // arithmetic below is used verbatim, so uncontended results stay
  // bit-identical to the within-query fluid share.
  const sim::DramServer& dram = topo_->socket_dram(socket_);
  const sim::VTime start_abs = session_epoch() + req.earliest;
  sim::VTime end_abs;
  if (dram.BlockEnd(session_id(), socket_concurrency_,
                    cm.BandwidthBytes(result.stats, cm.cpu),
                    cm.ComputeTime(result.stats, cm.cpu), start_abs,
                    &end_abs)) {
    result.end = req.earliest + (end_abs - start_abs);
  } else {
    const double bw =
        std::min(cm.cpu_core_bw, cm.cpu_socket_bw / socket_concurrency_);
    result.end = req.earliest + cm.WorkCost(result.stats, cm.cpu, bw);
  }
  return result;
}

void* GpuProvider::AllocStateVar(uint64_t bytes) {
  auto r = mem_->manager(node_).Allocate(bytes);
  HETEX_CHECK(r.ok()) << r.status().ToString();
  return r.value();
}

void GpuProvider::FreeStateVar(void* ptr) { mem_->manager(node_).Free(ptr); }

memory::Block* GpuProvider::GetBuffer() { return blocks_->Acquire(node_, node_); }

void GpuProvider::ReleaseBuffer(memory::Block* block) {
  blocks_->Release(block, node_);
}

ExecResult GpuProvider::Execute(const PipelineProgram& program, ExecRequest& req) {
  if (sim::FaultInjector* fault = fault_injector();
      fault != nullptr && fault->enabled()) {
    // Device loss / transient launch failure fires before the kernel reserves
    // anything on the device stream: a failed launch leaves no timeline
    // residue, and the error drains through the worker group like any runtime
    // failure.
    Status st = fault->OnGpuExecute(gpu_->id(), session_epoch() + req.earliest);
    if (!st.ok()) {
      ExecResult result;
      result.status = std::move(st);
      result.end = req.earliest;
      return result;
    }
  }
  if (req.emit != nullptr) {
    HETEX_CHECK(req.emit->atomic_append)
        << "GPU pipelines append to output blocks with device atomics";
  }
  std::mutex err_mu;
  Status first_error;
  auto kernel = [&](const sim::KernelCtx& kctx) {
    ExecCtx ctx;
    ctx.cols = req.cols;
    ctx.n_cols = req.n_cols;
    ctx.emit = req.emit;
    ctx.emit_targets = req.emit_targets;
    ctx.n_emit_targets = req.n_emit_targets;
    ctx.ht_slots = req.ht_slots;
    ctx.atomic_group_update = true;  // workerScopedAtomic -> device atomic
    ctx.stats = kctx.stats;
    ctx.row_begin = static_cast<uint64_t>(kctx.thread_id);   // threadIdInWorker
    ctx.row_step = static_cast<uint64_t>(kctx.num_threads);  // #threadsInWorker

    int64_t local_accs[kMaxLocalAccs];
    for (int i = 0; i < program.n_local_accs; ++i) {
      local_accs[i] = AggIdentity(program.local_acc_funcs[i]);
    }
    ctx.local_accs = local_accs;

    const Status st = Run(program, ctx, req.rows);
    if (!st.ok()) {
      std::lock_guard<std::mutex> lock(err_mu);
      if (first_error.ok()) first_error = st;
      return;
    }

    if (program.n_local_accs > 0) {
      HETEX_CHECK(req.shared_accs != nullptr)
          << "GPU pipeline with accumulators needs device-resident state";
      // Neighborhood (thread-block) reduction: every thread folds its value, only
      // the leader's atomic is charged — the Fig. 3 cost profile.
      FlushLocalAccsAtomic(program, local_accs, req.shared_accs,
                           /*count_atomic_cost=*/kctx.lane == 0, kctx.stats);
    }
  };

  sim::GpuDevice::LaunchOptions opts;
  opts.earliest = req.earliest;
  opts.epoch = session_epoch();
  if (uva_) {
    // Zero-copy reads stream over this GPU's PCIe link: charge the bytes as
    // real link occupancy so concurrent sessions contend with them.
    opts.uva_link = &topo_->pcie_link(topo_->PcieLinkOf(gpu_->id()));
  }
  auto launch = gpu_->LaunchKernel(kernel, gpu_->default_grid(),
                                   sim::GpuDevice::kDefaultBlockDim, opts);
  ExecResult result;
  result.status = std::move(first_error);
  result.stats = launch.stats;
  result.end = launch.end;
  return result;
}

}  // namespace hetex::jit
