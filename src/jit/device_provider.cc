#include "jit/device_provider.h"

#include <algorithm>

#include "common/logging.h"

namespace hetex::jit {

Status DeviceProvider::ConvertToMachineCode(PipelineProgram* program) {
  // Validate register and jump ranges — the moral equivalent of IR verification
  // before backend lowering.
  const int n = static_cast<int>(program->code.size());
  if (n == 0 || program->code.back().op != OpCode::kEnd) {
    return Status::Internal("pipeline '" + program->label + "' missing kEnd");
  }
  for (const Instr& in : program->code) {
    switch (in.op) {
      case OpCode::kJmp:
        if (in.a < 0 || in.a >= n) return Status::Internal("jump out of range");
        break;
      case OpCode::kJmpIfFalse:
      case OpCode::kJmpIfNeg:
        if (in.b < 0 || in.b >= n) return Status::Internal("jump out of range");
        break;
      default:
        break;
    }
  }
  if (program->n_regs > kMaxRegs) {
    return Status::Internal("register pressure exceeds VM register file");
  }
  program->finalized = true;
  return Status::OK();
}

void* CpuProvider::AllocStateVar(uint64_t bytes) {
  auto r = mem_->manager(node_).Allocate(bytes);
  HETEX_CHECK(r.ok()) << r.status().ToString();
  return r.value();
}

void CpuProvider::FreeStateVar(void* ptr) { mem_->manager(node_).Free(ptr); }

memory::Block* CpuProvider::GetBuffer() { return blocks_->Acquire(node_, node_); }

void CpuProvider::ReleaseBuffer(memory::Block* block) {
  blocks_->Release(block, node_);
}

ExecResult CpuProvider::Execute(const PipelineProgram& program, ExecRequest& req) {
  ExecCtx ctx;
  ctx.cols = req.cols;
  ctx.n_cols = req.n_cols;
  ctx.emit = req.emit;
  ctx.emit_targets = req.emit_targets;
  ctx.n_emit_targets = req.n_emit_targets;
  ctx.local_accs = req.instance_accs;
  ctx.ht_slots = req.ht_slots;
  ctx.atomic_group_update = false;  // single thread per worker: atomics elided
  ExecResult result;
  ctx.stats = &result.stats;
  ctx.row_begin = 0;   // threadIdInWorker -> 0
  ctx.row_step = 1;    // #threadsInWorker -> 1

  RunRows(program, ctx, req.rows);

  const sim::CostModel& cm = topo_->cost_model();
  // Fluid share of the socket's DRAM bandwidth across this query's workers.
  const double bw = std::min(cm.cpu_core_bw,
                             cm.cpu_socket_bw / socket_concurrency_);
  result.end = req.earliest + cm.WorkCost(result.stats, cm.cpu, bw);
  return result;
}

void* GpuProvider::AllocStateVar(uint64_t bytes) {
  auto r = mem_->manager(node_).Allocate(bytes);
  HETEX_CHECK(r.ok()) << r.status().ToString();
  return r.value();
}

void GpuProvider::FreeStateVar(void* ptr) { mem_->manager(node_).Free(ptr); }

memory::Block* GpuProvider::GetBuffer() { return blocks_->Acquire(node_, node_); }

void GpuProvider::ReleaseBuffer(memory::Block* block) {
  blocks_->Release(block, node_);
}

ExecResult GpuProvider::Execute(const PipelineProgram& program, ExecRequest& req) {
  if (req.emit != nullptr) {
    HETEX_CHECK(req.emit->atomic_append)
        << "GPU pipelines append to output blocks with device atomics";
  }
  auto kernel = [&](const sim::KernelCtx& kctx) {
    ExecCtx ctx;
    ctx.cols = req.cols;
    ctx.n_cols = req.n_cols;
    ctx.emit = req.emit;
    ctx.emit_targets = req.emit_targets;
    ctx.n_emit_targets = req.n_emit_targets;
    ctx.ht_slots = req.ht_slots;
    ctx.atomic_group_update = true;  // workerScopedAtomic -> device atomic
    ctx.stats = kctx.stats;
    ctx.row_begin = static_cast<uint64_t>(kctx.thread_id);   // threadIdInWorker
    ctx.row_step = static_cast<uint64_t>(kctx.num_threads);  // #threadsInWorker

    int64_t local_accs[kMaxLocalAccs];
    for (int i = 0; i < program.n_local_accs; ++i) {
      local_accs[i] = AggIdentity(program.local_acc_funcs[i]);
    }
    ctx.local_accs = local_accs;

    RunRows(program, ctx, req.rows);

    if (program.n_local_accs > 0) {
      HETEX_CHECK(req.shared_accs != nullptr)
          << "GPU pipeline with accumulators needs device-resident state";
      // Neighborhood (thread-block) reduction: every thread folds its value, only
      // the leader's atomic is charged — the Fig. 3 cost profile.
      FlushLocalAccsAtomic(program, local_accs, req.shared_accs,
                           /*count_atomic_cost=*/kctx.lane == 0, kctx.stats);
    }
  };

  auto launch = gpu_->LaunchKernel(kernel, gpu_->default_grid(),
                                   sim::GpuDevice::kDefaultBlockDim, req.earliest,
                                   stream_bw_);
  ExecResult result;
  result.stats = launch.stats;
  result.end = launch.end;
  return result;
}

}  // namespace hetex::jit
