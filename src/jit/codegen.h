#ifndef HETEX_JIT_CODEGEN_H_
#define HETEX_JIT_CODEGEN_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "jit/exec_ctx.h"
#include "jit/program.h"

namespace hetex::jit {

/// \brief Tier-2 codegen backend: translates a validated PipelineProgram into a
/// self-contained C++ translation unit, specialized to the span:
///
///  - column loads are typed to the binding schema's widths (no per-row width
///    branch),
///  - constants propagate through the straight-line code, so filters against
///    literals compile to immediate compares and constant-true/false filters
///    disappear (their cost accounting does not — all tiers charge identical
///    CostStats),
///  - the canonical probe-loop idiom is unrolled into an inline bucket-chain
///    walk over the hash table's raw arrays (no per-entry virtual dispatch),
///  - pipeline breakers that need engine state (emit, HT insert, group-by
///    update) go through a small C hook table the host passes in.
///
/// The kernel cache (jit/kernel_cache.h) compiles the unit out of process,
/// dlopens the object and persists the .cc/.so pair on disk.

/// ABI version stamped into every generated TU (exported as `hx_abi_version`)
/// and into the kernel cache's .meta sidecars. Objects built against another
/// version are never loaded — they recompile instead.
/// v2: hook table grew kHookEmitBatch (batched emit for single-emit shapes).
inline constexpr uint32_t kCodegenAbiVersion = 2;

/// Indices into the flat `stats` counter array a generated kernel accumulates
/// into. Flat arrays (not structs) keep the generated code free of any layout
/// coupling with engine headers; codegen emits these indices as literals.
enum : int {
  kStatTuples = 0,
  kStatOps,
  kStatBytesRead,
  kStatBytesWritten,
  kStatAtomics,
  kStatNear,
  kStatMid,
  kStatFar,
  kStatCount,
};

/// Indices into the hook (C function pointer) table.
enum : int {
  kHookEmit = 0,     ///< void(void* EmitTarget, const int64_t* vals, int n, uint64_t* bytes_written)
  kHookHtInsert,     ///< void(void* JoinHashTable, int64_t key, const int64_t* payload)
  kHookGroupBy,      ///< void(void* AggHashTable, int64_t key, const int64_t* vals, int atomic, uint64_t* probes)
  kHookEmitBatch,    ///< void(void* EmitTarget, const int64_t* const* vals (column-major), int n_vals, uint64_t n, uint64_t* bytes_written)
  kHookCount,
};

extern "C" {
/// Entry point of a generated kernel (`hx_kernel` in the shared object).
/// Everything crosses as flat arrays/scalars so the generated source never
/// includes an engine header. Returns 0 on success, 1 on division by zero
/// (partial counters are already written back).
typedef int (*NativeKernelFn)(
    const void* const* cols,           // input column base pointers
    void* emit0,                       // EmitTarget* (nullable)
    void* const* emit_targets,         // hash-pack bucket targets (nullable)
    int64_t n_emit_targets,
    int64_t* local_accs,               // instance/thread-local accumulators
    const int64_t* const* ht_heads,    // per HT slot: bucket-head array (join slots)
    const int64_t* const* ht_entries,  // per HT slot: entry storage
    const uint64_t* ht_masks,          // per HT slot: bucket mask
    const uint64_t* ht_strides,        // per HT slot: int64 slots per entry
    void* const* ht_objs,              // raw ht_slots, for insert/group-by hooks
    uint64_t* stats,                   // kStat* counters (accumulated into)
    uint64_t row_begin, uint64_t row_step, uint64_t rows,
    int atomic_mode,                   // ExecCtx::atomic_group_update
    const void* const* hooks);         // kHook* function table
}

/// \brief A dlopen-ed (or still-compiling) tier-2 kernel.
///
/// Shared between the kernel cache and every finalized program that keys to the
/// same signature. Compilation may run on a background thread: the program
/// serves its fallback tier until `state` publishes kReady (release), at which
/// point Run() hot-swaps to `fn` (acquire) — the tier-up never blocks a query.
struct NativeKernel {
  enum State : int { kPending = 0, kReady = 1, kFailed = 2 };
  enum class Origin : uint8_t { kNone, kCompiled, kDisk };

  ~NativeKernel();  // dlcloses the handle

  bool ready() const { return state.load(std::memory_order_acquire) == kReady; }
  bool failed() const { return state.load(std::memory_order_acquire) == kFailed; }

  std::atomic<int> state{kPending};
  NativeKernelFn fn = nullptr;
  void* dl_handle = nullptr;
  Origin origin = Origin::kNone;
  uint64_t signature = 0;       ///< content hash of the generated source
  std::string label;            ///< pipeline label (diagnostics)
  std::string error;            ///< compile/load failure detail (state == kFailed)
  uint32_t join_slot_mask = 0;  ///< HT slots probed inline (RunNative marshaling)
};

/// Result of a codegen attempt: either the full translation unit, or the named
/// reason the program shape could not be proven compilable (fallback is never
/// silent — the caller logs it and GetCodegenCounters records it).
struct GenerateResult {
  std::string source;           ///< empty on fallback
  std::string reason;           ///< fallback reason when source is empty
  uint64_t signature = 0;       ///< content hash of `source` (cache key)
  uint32_t join_slot_mask = 0;  ///< HT slots the kernel probes inline
};

/// Attempts to translate a validated program into a self-contained C++ TU.
/// Requires `program.input_widths` to cover `n_input_cols` (the binding schema
/// is what the loads specialize to); programs without it fall back.
GenerateResult GenerateSource(const PipelineProgram& program);

/// Executes one block through the program's ready native kernel. Produces
/// identical results and identical CostStats to RunRows()/RunRowsVectorized()
/// on the same program; returns a runtime error (e.g. division by zero)
/// instead of invoking UB. The caller must have checked native->ready().
Status RunNative(const PipelineProgram& program, ExecCtx& ctx, uint64_t rows);

/// Process-wide tier-2 telemetry (Reset is for tests). Compiler invocations and
/// disk traffic live here too so a warm-cache run is provably compile-free.
struct CodegenCounters {
  uint64_t attempts = 0;             ///< GenerateSource calls
  uint64_t generated = 0;            ///< sources successfully generated
  uint64_t fallbacks = 0;            ///< named codegen fallbacks (incl. compile failures)
  uint64_t compiler_invocations = 0; ///< out-of-process compiler runs
  uint64_t compile_failures = 0;     ///< compiler or dlopen failures
  uint64_t disk_hits = 0;            ///< kernels loaded from the on-disk cache
  uint64_t rejected_objects = 0;     ///< stale/corrupt objects refused by hash check
  uint64_t native_invocations = 0;   ///< blocks (CPU) / logical threads (GPU) run natively
};
CodegenCounters GetCodegenCounters();
void ResetCodegenCounters();

namespace internal {
/// Counter mutation hooks for the kernel cache (same process-wide registry).
void CountCompilerInvocation();
void CountCompileFailure();
void CountDiskHit();
void CountRejectedObject();
void CountCodegenFallback();
}  // namespace internal

/// \brief Tier-2 configuration, resolved once per System.
///
/// Env knobs:
///  - HETEX_KERNEL_DIR: persistent kernel directory; setting it enables tier 2.
///  - HETEX_COMPILER_CMD: out-of-process compiler command prefix (appended with
///    `<src.cc> -o <out.so>`). A nonexistent command degrades to the
///    vectorizer with a counted reason — never an error.
///  - HETEX_TIER2: "0" force-disables tier 2, any other value force-enables it
///    (with a default kernel dir when HETEX_KERNEL_DIR is unset).
///  - HETEX_KERNEL_DIR_MAX_MB: size cap on the kernel directory in MiB; after
///    every compile the cache evicts whole kernel triples, oldest build first,
///    until the directory fits. Unset or 0 = unbounded.
struct CodegenOptions {
  bool enabled = false;
  bool async = true;           ///< compile on the background pool (tests pin sync)
  int compile_threads = 2;
  std::string kernel_dir;      ///< empty = <tmp>/hetex-kernels
  std::string compiler_cmd;    ///< empty = "c++ -O3 -march=native -fPIC -shared"
  uint64_t max_dir_bytes = 0;  ///< kernel-dir size cap; 0 = unbounded

  static CodegenOptions FromEnv();
};

}  // namespace hetex::jit

#endif  // HETEX_JIT_CODEGEN_H_
