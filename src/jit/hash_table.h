#ifndef HETEX_JIT_HASH_TABLE_H_
#define HETEX_JIT_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "memory/memory_manager.h"

namespace hetex::jit {

/// Aggregation functions supported by generated pipelines.
enum class AggFunc : uint8_t { kSum, kCount, kMin, kMax };

/// Applies an aggregation function to an accumulator (non-atomic flavor).
inline void AggApply(AggFunc f, int64_t* acc, int64_t v) {
  switch (f) {
    case AggFunc::kSum: *acc += v; break;
    case AggFunc::kCount: *acc += 1; break;
    case AggFunc::kMin: if (v < *acc) *acc = v; break;
    case AggFunc::kMax: if (v > *acc) *acc = v; break;
  }
}

/// Atomic flavor, used by GPU kernels (worker-scoped atomics, Table 1).
inline void AggApplyAtomic(AggFunc f, std::atomic<int64_t>* acc, int64_t v) {
  switch (f) {
    case AggFunc::kSum: acc->fetch_add(v, std::memory_order_relaxed); break;
    case AggFunc::kCount: acc->fetch_add(1, std::memory_order_relaxed); break;
    case AggFunc::kMin: {
      int64_t cur = acc->load(std::memory_order_relaxed);
      while (v < cur && !acc->compare_exchange_weak(cur, v)) {
      }
      break;
    }
    case AggFunc::kMax: {
      int64_t cur = acc->load(std::memory_order_relaxed);
      while (v > cur && !acc->compare_exchange_weak(cur, v)) {
      }
      break;
    }
  }
}

/// Identity element of an aggregation function.
inline int64_t AggIdentity(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
    case AggFunc::kCount: return 0;
    case AggFunc::kMin: return INT64_MAX;
    case AggFunc::kMax: return INT64_MIN;
  }
  return 0;
}

/// \brief Chained hash table for joins: int64 key -> fixed-width int64 payload.
///
/// Build is lock-free (atomic CAS on bucket heads, atomic bump allocation of
/// entries) so the same structure serves CPU task-parallel builds and simulated
/// GPU kernels — generated code only differs in which provider supplied the
/// atomics, exactly as in the paper's Fig. 3. Probing is wait-free.
class JoinHashTable {
 public:
  /// \param capacity maximum number of entries (known from table stats at plan
  ///        time; the prototype does not rehash, matching typical codegen engines)
  /// \param payload_width int64 payload values carried per entry
  JoinHashTable(memory::MemoryManager* mm, uint64_t capacity, int payload_width);
  ~JoinHashTable();

  JoinHashTable(const JoinHashTable&) = delete;
  JoinHashTable& operator=(const JoinHashTable&) = delete;

  /// Inserts key + payload; thread-safe.
  void Insert(int64_t key, const int64_t* payload);

  /// Returns the first entry index of the chain for `key`'s bucket (-1 if empty).
  int64_t ProbeHead(int64_t key) const {
    const uint64_t b = HashMix64(static_cast<uint64_t>(key)) & bucket_mask_;
    return heads_[b].load(std::memory_order_acquire);
  }

  /// Batched-probe decomposition: the vectorized tier hashes a whole batch of
  /// keys in one pass (BucketOf), then resolves heads with software-pipelined
  /// prefetching — the lookahead a tuple-at-a-time interpreter cannot do.
  uint64_t BucketOf(int64_t key) const {
    return HashMix64(static_cast<uint64_t>(key)) & bucket_mask_;
  }
  int64_t HeadOfBucket(uint64_t bucket) const {
    return heads_[bucket].load(std::memory_order_acquire);
  }
  void PrefetchBucketSlot(uint64_t bucket) const {
    __builtin_prefetch(&heads_[bucket], 0, 1);
  }
  void PrefetchEntry(int64_t entry) const {
    if (entry >= 0) __builtin_prefetch(EntryAt(entry), 0, 1);
  }

  /// Follows the chain from `entry` to the first entry with key == `key`
  /// (including `entry` itself); returns -1 when exhausted. `hops` counts chain
  /// links traversed (cost accounting).
  int64_t FindKeyFrom(int64_t entry, int64_t key, uint64_t* hops) const {
    while (entry >= 0) {
      const int64_t* e = EntryAt(entry);
      ++*hops;
      if (e[0] == key) return entry;
      entry = e[1];
    }
    return entry;
  }

  /// Next chain entry after `entry`.
  int64_t NextEntry(int64_t entry) const { return EntryAt(entry)[1]; }

  const int64_t* PayloadOf(int64_t entry) const { return EntryAt(entry) + 2; }

  uint64_t size() const { return cursor_.load(std::memory_order_relaxed); }
  uint64_t capacity() const { return capacity_; }
  int payload_width() const { return payload_width_; }

  /// Total footprint in bytes — drives the random-access size class in the cost
  /// model (cache-resident dimension tables probe fast; DRAM-sized ones do not).
  uint64_t bytes() const { return bytes_; }

  /// Raw layout accessors for the tier-2 codegen backend, which unrolls probe
  /// loops into inline bucket-chain walks over these arrays (jit/codegen.cc).
  /// `raw_heads()` is bit-compatible with a plain int64_t array (asserted at
  /// the single cast site); entries are `stride()` int64 slots each:
  /// [key, next, payload...].
  const std::atomic<int64_t>* raw_heads() const { return heads_; }
  const int64_t* raw_entries() const { return entries_; }
  uint64_t bucket_mask() const { return bucket_mask_; }
  uint64_t stride() const { return stride_; }

 private:
  const int64_t* EntryAt(int64_t i) const {
    return entries_ + static_cast<uint64_t>(i) * stride_;
  }
  int64_t* EntryAt(int64_t i) {
    return entries_ + static_cast<uint64_t>(i) * stride_;
  }

  memory::MemoryManager* mm_;
  uint64_t capacity_;
  int payload_width_;
  uint64_t stride_;       ///< int64 slots per entry: key, next, payload...
  uint64_t bucket_mask_;
  uint64_t bytes_ = 0;
  std::atomic<int64_t>* heads_ = nullptr;
  int64_t* entries_ = nullptr;
  std::atomic<uint64_t> cursor_{0};
  void* raw_ = nullptr;
};

/// \brief Open-addressing aggregation hash table: int64 key -> N accumulators.
///
/// Supports both a non-atomic mode (one table per CPU pipeline instance; the CPU
/// provider elides atomics since #threadsInWorker == 1) and an atomic mode (one
/// table per GPU shared by all kernel threads).
class AggHashTable {
 public:
  AggHashTable(memory::MemoryManager* mm, uint64_t capacity, int n_aggs,
               const AggFunc* funcs);
  ~AggHashTable();

  AggHashTable(const AggHashTable&) = delete;
  AggHashTable& operator=(const AggHashTable&) = delete;

  /// Finds or creates the group for `key` and folds `vals` in.
  /// \param probes incremented once per slot inspected (cost accounting)
  void Update(int64_t key, const int64_t* vals, bool atomic, uint64_t* probes);

  /// Number of occupied groups.
  uint64_t size() const { return used_.load(std::memory_order_relaxed); }
  uint64_t bytes() const { return bytes_; }
  int n_aggs() const { return n_aggs_; }

  /// Iteration over groups for the pipeline-breaker flush.
  /// Visits each group as (key, accumulator array).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t i = 0; i < slots_; ++i) {
      const int64_t key = keys_[i].load(std::memory_order_relaxed);
      if (key != kEmpty) fn(key, accs_ + i * n_aggs_);
    }
  }

  static constexpr int64_t kEmpty = INT64_MIN;

 private:
  memory::MemoryManager* mm_;
  uint64_t slots_;
  uint64_t slot_mask_;
  int n_aggs_;
  AggFunc funcs_[8];
  uint64_t bytes_ = 0;
  std::atomic<int64_t>* keys_ = nullptr;
  int64_t* accs_ = nullptr;  ///< also aliased as std::atomic<int64_t> in atomic mode
  std::atomic<uint64_t> used_{0};
  void* raw_keys_ = nullptr;
  void* raw_accs_ = nullptr;
};

}  // namespace hetex::jit

#endif  // HETEX_JIT_HASH_TABLE_H_
